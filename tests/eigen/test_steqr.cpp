// Symmetric tridiagonal eigensolver and the full symmetric pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "eigen/hseqr.hpp"
#include "eigen/steqr.hpp"
#include "fault/injector.hpp"
#include "ft/ft_sytrd.hpp"
#include "la/generate.hpp"
#include "lapack/sytrd.hpp"
#include "test_utils.hpp"

namespace fth::eigen {
namespace {

using test::cvec;
using test::vec;

TEST(Steqr, EmptyAndSingle) {
  auto r0 = steqr(VectorView<const double>(), VectorView<const double>());
  EXPECT_TRUE(r0.converged);
  EXPECT_TRUE(r0.eigenvalues.empty());

  std::vector<double> d = {4.2};
  auto r1 = steqr(cvec(d), VectorView<const double>());
  ASSERT_EQ(r1.eigenvalues.size(), 1u);
  EXPECT_EQ(r1.eigenvalues[0], 4.2);
}

TEST(Steqr, TwoByTwoExact) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  std::vector<double> d = {2.0, 2.0};
  std::vector<double> e = {1.0};
  auto r = steqr(cvec(d), cvec(e));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalues[0], 1.0, 1e-14);
  EXPECT_NEAR(r.eigenvalues[1], 3.0, 1e-14);
}

TEST(Steqr, LaplacianHasKnownSpectrum) {
  // The 1-D Laplacian tridiag(−1, 2, −1) of size n has eigenvalues
  // 2 − 2cos(kπ/(n+1)), k = 1..n.
  const index_t n = 50;
  std::vector<double> d(static_cast<std::size_t>(n), 2.0);
  std::vector<double> e(static_cast<std::size_t>(n - 1), -1.0);
  auto r = steqr(cvec(d), cvec(e));
  ASSERT_TRUE(r.converged);
  for (index_t k = 1; k <= n; ++k) {
    const double expect = 2.0 - 2.0 * std::cos(M_PI * static_cast<double>(k) /
                                               static_cast<double>(n + 1));
    EXPECT_NEAR(r.eigenvalues[static_cast<std::size_t>(k - 1)], expect, 1e-12) << k;
  }
}

TEST(Steqr, AlreadyDiagonal) {
  std::vector<double> d = {5.0, -3.0, 0.5, 9.0};
  std::vector<double> e = {0.0, 0.0, 0.0};
  auto r = steqr(cvec(d), cvec(e));
  auto sorted = d;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < d.size(); ++i) EXPECT_EQ(r.eigenvalues[i], sorted[i]);
  EXPECT_EQ(r.sweeps, 0);
}

TEST(Steqr, AgreesWithHseqrOnDenseTridiagonal) {
  const index_t n = 40;
  Rng rng(3);
  std::vector<double> d(static_cast<std::size_t>(n)), e(static_cast<std::size_t>(n - 1));
  for (auto& v : d) v = rng.uniform(-2.0, 2.0);
  for (auto& v : e) v = rng.uniform(-1.0, 1.0);
  auto ql = steqr(cvec(d), cvec(e));
  ASSERT_TRUE(ql.converged);

  Matrix<double> t = lapack::tridiagonal_from(cvec(d), cvec(e));
  auto qr = hseqr(t.view());
  ASSERT_TRUE(qr.converged);
  std::vector<double> qr_vals;
  for (const auto& l : qr.eigenvalues) qr_vals.push_back(l.real());
  std::sort(qr_vals.begin(), qr_vals.end());
  for (std::size_t i = 0; i < qr_vals.size(); ++i)
    EXPECT_NEAR(ql.eigenvalues[i], qr_vals[i], 1e-10);
}

class SteqrInvariants : public ::testing::TestWithParam<index_t> {};

TEST_P(SteqrInvariants, TraceAndFrobenius) {
  const index_t n = GetParam();
  Rng rng(7 + static_cast<std::uint64_t>(n));
  std::vector<double> d(static_cast<std::size_t>(n)), e(static_cast<std::size_t>(n - 1));
  for (auto& v : d) v = rng.uniform(-2.0, 2.0);
  for (auto& v : e) v = rng.uniform(-1.0, 1.0);
  auto r = steqr(cvec(d), cvec(e));
  ASSERT_TRUE(r.converged);

  double tr = 0.0, fro2 = 0.0;
  for (double v : d) {
    tr += v;
    fro2 += v * v;
  }
  for (double v : e) fro2 += 2.0 * v * v;
  double sum = 0.0, sq = 0.0;
  for (double l : r.eigenvalues) {
    sum += l;
    sq += l * l;
  }
  EXPECT_NEAR(sum, tr, 1e-11 * std::max(1.0, std::abs(tr)) * n);
  EXPECT_NEAR(sq, fro2, 1e-10 * std::max(1.0, fro2));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SteqrInvariants, ::testing::Values<index_t>(2, 5, 17, 64, 200));

TEST(SymmetricEigenvalues, MatchesDensePath) {
  const index_t n = 60;
  Matrix<double> a = random_symmetric_matrix(n, 9);
  auto r = symmetric_eigenvalues(a.cview());
  ASSERT_TRUE(r.converged);
  auto dense = eigenvalues(a.cview());  // gehrd + hseqr on the same matrix
  ASSERT_TRUE(dense.converged);
  std::vector<double> dv;
  for (const auto& l : dense.eigenvalues) dv.push_back(l.real());
  std::sort(dv.begin(), dv.end());
  for (std::size_t i = 0; i < dv.size(); ++i)
    EXPECT_NEAR(r.eigenvalues[i], dv[i], 1e-9 * std::max(1.0, std::abs(dv[i])));
}

TEST(SymmetricEigenvalues, FtSytrdPipelineUnderFault) {
  // The complete symmetric story: A → ft_sytrd under injection → steqr
  // gives the same spectrum as the fault-free pipeline.
  const index_t n = 96, nb = 32;
  hybrid::Device dev;
  Matrix<double> a = random_symmetric_matrix(n, 10);
  auto reference = symmetric_eigenvalues(a.cview());
  ASSERT_TRUE(reference.converged);

  Matrix<double> work(a.cview());
  std::vector<double> d(static_cast<std::size_t>(n)), e(static_cast<std::size_t>(n - 1)),
      tau(static_cast<std::size_t>(n - 1));
  fault::FaultSpec spec;
  spec.area = fault::Area::LowerTrailing;
  spec.moment = fault::Moment::Middle;
  fault::Injector inj(spec, 4);
  ft::ft_sytrd(dev, work.view(), vec(d), vec(e), vec(tau), {.nb = nb}, &inj);

  auto recovered = steqr(cvec(d), cvec(e));
  ASSERT_TRUE(recovered.converged);
  for (std::size_t i = 0; i < reference.eigenvalues.size(); ++i)
    EXPECT_NEAR(recovered.eigenvalues[i], reference.eigenvalues[i], 1e-8);
}

}  // namespace
}  // namespace fth::eigen

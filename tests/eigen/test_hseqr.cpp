// Hessenberg QR eigenvalue solver.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>

#include "eigen/hseqr.hpp"
#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"
#include "la/generate.hpp"
#include "lapack/gehrd.hpp"

namespace fth::eigen {
namespace {

std::vector<double> sorted_reals(const HseqrResult& r) {
  std::vector<double> v;
  for (const auto& l : r.eigenvalues) v.push_back(l.real());
  std::sort(v.begin(), v.end());
  return v;
}

TEST(Hseqr, EmptyAndTiny) {
  Matrix<double> e(0, 0);
  auto r0 = hseqr(e.view());
  EXPECT_TRUE(r0.converged);
  EXPECT_TRUE(r0.eigenvalues.empty());

  Matrix<double> one(1, 1);
  one(0, 0) = 3.5;
  auto r1 = hseqr(one.view());
  ASSERT_EQ(r1.eigenvalues.size(), 1u);
  EXPECT_EQ(r1.eigenvalues[0], std::complex<double>(3.5, 0.0));

  Matrix<double> two(2, 2);
  two(0, 0) = 1.0;
  two(0, 1) = 2.0;
  two(1, 0) = 2.0;
  two(1, 1) = 1.0;  // eigenvalues 3 and −1
  auto r2 = hseqr(two.view());
  auto v = sorted_reals(r2);
  EXPECT_NEAR(v[0], -1.0, 1e-13);
  EXPECT_NEAR(v[1], 3.0, 1e-13);
}

TEST(Hseqr, KnownRootsViaCompanion) {
  std::vector<double> roots = {-3.0, -1.5, 0.5, 2.0, 4.25, 8.0};
  Matrix<double> c = companion_matrix(VectorView<const double>(roots.data(), 6));
  auto r = hseqr(c.view());  // companion is already Hessenberg
  ASSERT_TRUE(r.converged);
  auto got = sorted_reals(r);
  std::sort(roots.begin(), roots.end());
  for (std::size_t i = 0; i < roots.size(); ++i) {
    EXPECT_NEAR(got[i], roots[i], 1e-8 * std::max(1.0, std::abs(roots[i])));
    EXPECT_NEAR(r.eigenvalues[i].imag(), 0.0, 1e-8);
  }
}

TEST(Hseqr, ComplexPairFromRotation) {
  // 2×2 rotation-like block embedded in 4×4: eigenvalues cosθ ± i·sinθ.
  Matrix<double> h(4, 4);
  const double c = std::cos(0.7), s = std::sin(0.7);
  h(0, 0) = 5.0;
  h(1, 1) = c;  h(1, 2) = -s;
  h(2, 1) = s;  h(2, 2) = c;
  h(3, 3) = -2.0;
  auto r = hseqr(h.view());
  ASSERT_TRUE(r.converged);
  int complex_count = 0;
  for (const auto& l : r.eigenvalues) {
    if (std::abs(l.imag()) > 1e-12) {
      ++complex_count;
      EXPECT_NEAR(std::abs(l), 1.0, 1e-10);  // |cos + i·sin| = 1
      EXPECT_NEAR(l.real(), c, 1e-10);
    }
  }
  EXPECT_EQ(complex_count, 2);
}

TEST(Hseqr, RejectsNonSquare) {
  Matrix<double> bad(3, 4);
  EXPECT_THROW(hseqr(bad.view()), precondition_error);
}

class EigParam : public ::testing::TestWithParam<index_t> {};

TEST_P(EigParam, TraceAndConjugateInvariants) {
  const index_t n = GetParam();
  Matrix<double> a = random_matrix(n, n, 41 + static_cast<std::uint64_t>(n));
  auto r = eigenvalues(a.cview());
  ASSERT_TRUE(r.converged) << "n=" << n;
  ASSERT_EQ(r.eigenvalues.size(), static_cast<std::size_t>(n));

  // Trace invariant.
  std::complex<double> sum = 0.0;
  for (const auto& l : r.eigenvalues) sum += l;
  double tr = 0.0;
  for (index_t i = 0; i < n; ++i) tr += a(i, i);
  EXPECT_NEAR(sum.real(), tr, 1e-10 * std::max(1.0, std::abs(tr)) * n);
  EXPECT_NEAR(sum.imag(), 0.0, 1e-10);

  // Complex eigenvalues of a real matrix come in conjugate pairs.
  std::vector<std::complex<double>> complex_ones;
  for (const auto& l : r.eigenvalues)
    if (std::abs(l.imag()) > 1e-12) complex_ones.push_back(l);
  EXPECT_EQ(complex_ones.size() % 2, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigParam, ::testing::Values<index_t>(3, 8, 25, 64, 120));

TEST(Eigenvalues, SymmetricMatrixAllReal) {
  const index_t n = 40;
  Matrix<double> a = random_symmetric_matrix(n, 50);
  auto r = eigenvalues(a.cview());
  ASSERT_TRUE(r.converged);
  for (const auto& l : r.eigenvalues) EXPECT_NEAR(l.imag(), 0.0, 1e-10);
}

TEST(Eigenvalues, DiagonalMatrixExact) {
  const index_t n = 10;
  Matrix<double> a(n, n);
  for (index_t i = 0; i < n; ++i) a(i, i) = static_cast<double>(i) - 4.5;
  auto r = eigenvalues(a.cview());
  auto got = sorted_reals(r);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(got[static_cast<std::size_t>(i)], static_cast<double>(i) - 4.5, 1e-12);
}

TEST(Eigenvalues, FullPipelineWithFaultTolerantReduction) {
  // A → FT-gehrd under injection → hseqr: eigenvalues must match the
  // fault-free pipeline. This is the end-to-end story of the paper.
  const index_t n = 96, nb = 32;
  hybrid::Device dev;
  Matrix<double> a = random_matrix(n, n, 51);

  auto reference = eigenvalues(a.cview());
  ASSERT_TRUE(reference.converged);

  Matrix<double> work(a.cview());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  fault::FaultSpec spec;
  spec.area = fault::Area::LowerTrailing;
  spec.moment = fault::Moment::Middle;
  fault::Injector inj(spec, 8);
  ft::ft_gehrd(dev, work.view(), VectorView<double>(tau.data(), n - 1), {.nb = nb}, &inj);

  Matrix<double> h = lapack::extract_hessenberg(work.cview());
  auto recovered = hseqr(h.view());
  ASSERT_TRUE(recovered.converged);

  auto ref_sorted = sorted_reals(reference);
  auto rec_sorted = sorted_reals(recovered);
  for (std::size_t i = 0; i < ref_sorted.size(); ++i)
    EXPECT_NEAR(rec_sorted[i], ref_sorted[i], 1e-6 * std::max(1.0, std::abs(ref_sorted[i])));
}

}  // namespace
}  // namespace fth::eigen

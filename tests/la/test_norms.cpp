// Norms and matrix comparison helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "la/generate.hpp"
#include "la/norms.hpp"

namespace fth {
namespace {

TEST(Norms, HandComputedExample) {
  Matrix<double> a(2, 3);
  a(0, 0) = 1;  a(0, 1) = -2; a(0, 2) = 3;
  a(1, 0) = -4; a(1, 1) = 5;  a(1, 2) = -6;
  EXPECT_EQ(norm_one(a.cview()), 9.0);   // max column abs sum: |3|+|−6|
  EXPECT_EQ(norm_inf(a.cview()), 15.0);  // max row abs sum: 4+5+6
  EXPECT_EQ(norm_max(a.cview()), 6.0);
  EXPECT_NEAR(norm_fro(a.cview()), std::sqrt(1.0 + 4 + 9 + 16 + 25 + 36), 1e-14);
}

TEST(Norms, EmptyAndZeroMatrices) {
  Matrix<double> e(0, 0);
  EXPECT_EQ(norm_one(e.cview()), 0.0);
  EXPECT_EQ(norm_fro(e.cview()), 0.0);
  Matrix<double> z(4, 4);
  EXPECT_EQ(norm_inf(z.cview()), 0.0);
  EXPECT_EQ(norm_fro(z.cview()), 0.0);
}

TEST(Norms, FrobeniusOverflowSafe) {
  Matrix<double> a(2, 2);
  a.fill(1e200);
  EXPECT_NEAR(norm_fro(a.cview()) / 1e200, 2.0, 1e-12);
}

TEST(Norms, OneInfDualUnderTranspose) {
  Matrix<double> a = random_matrix(13, 8, 3);
  Matrix<double> at(8, 13);
  for (index_t j = 0; j < 8; ++j)
    for (index_t i = 0; i < 13; ++i) at(j, i) = a(i, j);
  EXPECT_NEAR(norm_one(a.cview()), norm_inf(at.cview()), 1e-14);
  EXPECT_NEAR(norm_inf(a.cview()), norm_one(at.cview()), 1e-14);
}

TEST(Diff, MaxAbsDiffAndCount) {
  Matrix<double> a = random_matrix(10, 10, 4);
  Matrix<double> b(a.cview());
  EXPECT_EQ(max_abs_diff(a.cview(), b.cview()), 0.0);
  EXPECT_EQ(count_diff(a.cview(), b.cview(), 0.0), 0);
  b(3, 7) += 0.5;
  b(9, 0) -= 2.0;
  EXPECT_NEAR(max_abs_diff(a.cview(), b.cview()), 2.0, 1e-15);
  EXPECT_EQ(count_diff(a.cview(), b.cview(), 0.1), 2);
  EXPECT_EQ(count_diff(a.cview(), b.cview(), 1.0), 1);
}

TEST(Norms, TriangleInequalityProperty) {
  Matrix<double> a = random_matrix(20, 20, 5);
  Matrix<double> b = random_matrix(20, 20, 6);
  Matrix<double> s(20, 20);
  for (index_t j = 0; j < 20; ++j)
    for (index_t i = 0; i < 20; ++i) s(i, j) = a(i, j) + b(i, j);
  EXPECT_LE(norm_one(s.cview()), norm_one(a.cview()) + norm_one(b.cview()) + 1e-12);
  EXPECT_LE(norm_fro(s.cview()), norm_fro(a.cview()) + norm_fro(b.cview()) + 1e-12);
}

}  // namespace
}  // namespace fth

// Matrix container and view semantics.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "la/matrix.hpp"

namespace fth {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix<double> a(3, 4);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 3; ++i) EXPECT_EQ(a(i, j), 0.0);
}

TEST(Matrix, EmptyMatrix) {
  Matrix<double> a(0, 0);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.ld(), 1);  // LAPACK convention: ld >= max(1, rows)
  Matrix<double> b(0, 5);
  EXPECT_TRUE(b.empty());
  Matrix<double> c(5, 0);
  EXPECT_TRUE(c.empty());
}

TEST(Matrix, ColumnMajorLayout) {
  Matrix<double> a(3, 2);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(2, 0) = 3;
  a(0, 1) = 4;
  const double* d = a.data();
  EXPECT_EQ(d[0], 1);
  EXPECT_EQ(d[1], 2);
  EXPECT_EQ(d[2], 3);
  EXPECT_EQ(d[3], 4);  // first element of second column
}

TEST(Matrix, NegativeDimensionsThrow) {
  EXPECT_THROW(Matrix<double>(-1, 2), precondition_error);
  EXPECT_THROW(Matrix<double>(2, -1), precondition_error);
}

TEST(Matrix, FillAndAssign) {
  Matrix<double> a(4, 4);
  a.fill(2.5);
  EXPECT_EQ(a(3, 3), 2.5);
  Matrix<double> b(4, 4);
  b.assign(a.cview());
  EXPECT_EQ(b(0, 0), 2.5);
  Matrix<double> wrong(3, 4);
  EXPECT_THROW(wrong.assign(a.cview()), precondition_error);
}

TEST(Matrix, DeepCopyFromViewCompactsLd) {
  Matrix<double> big(10, 10);
  for (index_t j = 0; j < 10; ++j)
    for (index_t i = 0; i < 10; ++i) big(i, j) = static_cast<double>(i + 10 * j);
  Matrix<double> sub(big.block(2, 3, 4, 5));
  EXPECT_EQ(sub.rows(), 4);
  EXPECT_EQ(sub.cols(), 5);
  EXPECT_EQ(sub.ld(), 4);
  EXPECT_EQ(sub(0, 0), big(2, 3));
  EXPECT_EQ(sub(3, 4), big(5, 7));
}

TEST(MatrixView, BlockBoundsChecked) {
  Matrix<double> a(5, 5);
  EXPECT_NO_THROW((void)a.block(0, 0, 5, 5));
  EXPECT_NO_THROW((void)a.block(4, 4, 1, 1));
  EXPECT_NO_THROW((void)a.block(5, 5, 0, 0));  // empty block at the end is legal
  EXPECT_THROW((void)a.block(0, 0, 6, 5), precondition_error);
  EXPECT_THROW((void)a.block(3, 3, 3, 1), precondition_error);
  EXPECT_THROW((void)a.block(-1, 0, 1, 1), precondition_error);
}

TEST(MatrixView, BlockAliasesStorage) {
  Matrix<double> a(6, 6);
  auto blk = a.block(1, 2, 3, 3);
  blk(0, 0) = 42.0;
  EXPECT_EQ(a(1, 2), 42.0);
  EXPECT_EQ(blk.ld(), a.ld());
}

TEST(MatrixView, RowColDiagViews) {
  Matrix<double> a(4, 4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 4; ++i) a(i, j) = static_cast<double>(10 * i + j);
  auto r = a.view().row(2);
  ASSERT_EQ(r.size(), 4);
  EXPECT_EQ(r[1], 21.0);
  EXPECT_EQ(r.inc(), a.ld());
  auto c = a.view().col(3);
  ASSERT_EQ(c.size(), 4);
  EXPECT_EQ(c[2], 23.0);
  EXPECT_EQ(c.inc(), 1);
  auto d = a.view().diag();
  ASSERT_EQ(d.size(), 4);
  EXPECT_EQ(d[1], 11.0);
  EXPECT_EQ(d[3], 33.0);
}

TEST(MatrixView, ConstConversion) {
  Matrix<double> a(2, 2);
  MatrixView<double> mv = a.view();
  MatrixView<const double> cv = mv;  // implicit widening
  EXPECT_EQ(cv.rows(), 2);
  VectorView<double> v = mv.col(0);
  VectorView<const double> cvv = v;
  EXPECT_EQ(cvv.size(), 2);
}

TEST(VectorView, SubAndStride) {
  std::vector<double> buf(10);
  for (int i = 0; i < 10; ++i) buf[static_cast<std::size_t>(i)] = i;
  VectorView<double> v(buf.data(), 10);
  auto s = v.sub(3, 4);
  ASSERT_EQ(s.size(), 4);
  EXPECT_EQ(s[0], 3.0);
  EXPECT_EQ(s[3], 6.0);
  EXPECT_THROW((void)v.sub(8, 3), precondition_error);

  VectorView<double> strided(buf.data(), 5, 2);
  EXPECT_EQ(strided[2], 4.0);
}

TEST(FreeFunctions, CopyFillIdentity) {
  Matrix<double> a(3, 3);
  a.fill(7.0);
  Matrix<double> b(3, 3);
  copy(a.cview(), b.view());
  EXPECT_EQ(b(2, 2), 7.0);
  fill(b.view(), 0.5);
  EXPECT_EQ(b(0, 1), 0.5);
  set_identity(b.view());
  EXPECT_EQ(b(1, 1), 1.0);
  EXPECT_EQ(b(1, 0), 0.0);
  Matrix<double> c(2, 3);
  EXPECT_THROW(copy(a.cview(), c.view()), precondition_error);
}

TEST(FreeFunctions, CopyBetweenDifferentLd) {
  Matrix<double> big(8, 8);
  for (index_t j = 0; j < 8; ++j)
    for (index_t i = 0; i < 8; ++i) big(i, j) = static_cast<double>(i * 8 + j);
  Matrix<double> dst(3, 3);
  copy(MatrixView<const double>(big.block(1, 1, 3, 3)), dst.view());
  EXPECT_EQ(dst(2, 2), big(3, 3));
}

}  // namespace
}  // namespace fth

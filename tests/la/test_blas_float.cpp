// Single-precision instantiations of the templated BLAS.
//
// The kernels are templates; these tests pin down that the float
// instantiation compiles and is numerically sane (the library's LAPACK
// layer is double-only by design, but a float BLAS is part of the public
// surface).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/blas3.hpp"
#include "la/matrix.hpp"

namespace fth {
namespace {

Matrix<float> random_f(index_t m, index_t n, std::uint64_t seed) {
  Matrix<float> a(m, n);
  Rng rng(seed);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) a(i, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
  return a;
}

TEST(BlasFloat, DotAxpyNrm2) {
  std::vector<float> x = {1.0f, 2.0f, 3.0f};
  std::vector<float> y = {4.0f, -5.0f, 6.0f};
  VectorView<const float> xv(x.data(), 3);
  VectorView<float> yv(y.data(), 3);
  EXPECT_FLOAT_EQ(blas::dot(xv, VectorView<const float>(yv)), 4.0f - 10.0f + 18.0f);
  blas::axpy(2.0f, xv, yv);
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(blas::nrm2(xv), std::sqrt(14.0f));
  EXPECT_FLOAT_EQ(blas::sum(xv), 6.0f);
  EXPECT_EQ(blas::iamax(xv), 2);
}

TEST(BlasFloat, GemvMatchesManual) {
  Matrix<float> a = random_f(7, 5, 1);
  std::vector<float> x(5, 1.0f), y(7, 0.0f);
  blas::gemv(Trans::No, 1.0f, a.cview(), VectorView<const float>(x.data(), 5), 0.0f,
             VectorView<float>(y.data(), 7));
  for (index_t i = 0; i < 7; ++i) {
    float acc = 0.0f;
    for (index_t j = 0; j < 5; ++j) acc += a(i, j);
    ASSERT_NEAR(y[static_cast<std::size_t>(i)], acc, 1e-5f);
  }
}

TEST(BlasFloat, GemmBlockedPath) {
  const index_t n = 96;  // large enough to hit the packed kernel
  Matrix<float> a = random_f(n, n, 2);
  Matrix<float> b = random_f(n, n, 3);
  Matrix<float> c(n, n);
  blas::gemm(Trans::No, Trans::No, 1.0f, a.cview(), b.cview(), 0.0f, c.view());
  // Spot-check a handful of entries against the naive sum.
  Rng rng(4);
  for (int t = 0; t < 20; ++t) {
    const index_t i = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
    const index_t j = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
    float acc = 0.0f;
    for (index_t k = 0; k < n; ++k) acc += a(i, k) * b(k, j);
    ASSERT_NEAR(c(i, j), acc, 1e-3f) << i << "," << j;
  }
}

TEST(BlasFloat, TrmvTrsvRoundTrip) {
  const index_t n = 12;
  Matrix<float> a = random_f(n, n, 5);
  for (index_t i = 0; i < n; ++i) a(i, i) += 3.0f;
  std::vector<float> x(static_cast<std::size_t>(n), 1.0f);
  auto x0 = x;
  VectorView<float> xv(x.data(), n);
  blas::trmv(Uplo::Lower, Trans::No, Diag::NonUnit, a.cview(), xv);
  blas::trsv(Uplo::Lower, Trans::No, Diag::NonUnit, a.cview(), xv);
  for (std::size_t i = 0; i < x.size(); ++i) ASSERT_NEAR(x[i], x0[i], 1e-4f);
}

TEST(BlasFloat, SymvMatchesGemv) {
  const index_t n = 15;
  Matrix<float> s = random_f(n, n, 6);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i) s(i, j) = s(j, i);
  std::vector<float> x(static_cast<std::size_t>(n), 0.5f);
  std::vector<float> y1(static_cast<std::size_t>(n), 0.0f), y2 = y1;
  blas::symv(Uplo::Lower, 1.0f, s.cview(), VectorView<const float>(x.data(), n), 0.0f,
             VectorView<float>(y1.data(), n));
  blas::gemv(Trans::No, 1.0f, s.cview(), VectorView<const float>(x.data(), n), 0.0f,
             VectorView<float>(y2.data(), n));
  for (std::size_t i = 0; i < y1.size(); ++i) ASSERT_NEAR(y1[i], y2[i], 1e-4f);
}

TEST(BlasFloat, MatrixContainerWorksWithFloat) {
  Matrix<float> m(4, 4);
  set_identity(m.view());
  EXPECT_EQ(m(2, 2), 1.0f);
  Matrix<float> c(m.cview());
  fill(c.view(), 2.5f);
  EXPECT_EQ(c(3, 0), 2.5f);
  copy(m.cview(), c.view());
  EXPECT_EQ(c(3, 0), 0.0f);
}

}  // namespace
}  // namespace fth

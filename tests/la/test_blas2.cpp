// Level-2 BLAS kernels vs reference computations.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "la/blas2.hpp"
#include "la/generate.hpp"
#include "test_utils.hpp"

namespace fth {
namespace {

using test::cvec;
using test::vec;

std::vector<double> ref_gemv(Trans t, double alpha, MatrixView<const double> a,
                             const std::vector<double>& x, double beta,
                             const std::vector<double>& y) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t out_len = t == Trans::No ? m : n;
  std::vector<double> out(static_cast<std::size_t>(out_len));
  for (index_t i = 0; i < out_len; ++i) {
    double acc = 0.0;
    const index_t k = t == Trans::No ? n : m;
    for (index_t l = 0; l < k; ++l) {
      const double av = t == Trans::No ? a(i, l) : a(l, i);
      acc += av * x[static_cast<std::size_t>(l)];
    }
    out[static_cast<std::size_t>(i)] = alpha * acc + beta * y[static_cast<std::size_t>(i)];
  }
  return out;
}

class GemvParam : public ::testing::TestWithParam<std::tuple<index_t, index_t, int>> {};

TEST_P(GemvParam, MatchesReference) {
  const auto [m, n, tcase] = GetParam();
  const Trans t = tcase == 0 ? Trans::No : Trans::Yes;
  Matrix<double> a = random_matrix(m, n, 7 * static_cast<std::uint64_t>(m + 3 * n + tcase));
  const index_t xl = t == Trans::No ? n : m;
  const index_t yl = t == Trans::No ? m : n;
  std::vector<double> x(static_cast<std::size_t>(xl));
  std::vector<double> y(static_cast<std::size_t>(yl));
  Rng rng(5);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  for (auto& v : y) v = rng.uniform(-1.0, 1.0);

  auto expected = ref_gemv(t, 1.3, a.cview(), x, -0.7, y);
  blas::gemv(t, 1.3, a.cview(), cvec(x), -0.7, vec(y));
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], expected[i], 1e-12 * (1.0 + std::abs(expected[i])));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemvParam,
    ::testing::Combine(::testing::Values<index_t>(1, 3, 17, 64, 130),
                       ::testing::Values<index_t>(1, 5, 33, 64), ::testing::Values(0, 1)));

TEST(Gemv, BetaZeroOverwritesNaN) {
  // beta == 0 must not propagate pre-existing NaN in y (BLAS semantics).
  Matrix<double> a = random_matrix(4, 4, 1);
  std::vector<double> x(4, 1.0);
  std::vector<double> y(4, std::nan(""));
  blas::gemv(Trans::No, 1.0, a.cview(), cvec(x), 0.0, vec(y));
  for (double v : y) EXPECT_FALSE(std::isnan(v));
}

TEST(Gemv, DimensionMismatchThrows) {
  Matrix<double> a(3, 4);
  std::vector<double> x(3), y(3);
  EXPECT_THROW(blas::gemv(Trans::No, 1.0, a.cview(), cvec(x), 0.0, vec(y)),
               precondition_error);
}

TEST(Ger, MatchesReference) {
  Matrix<double> a = random_matrix(9, 7, 2);
  Matrix<double> a0(a.cview());
  std::vector<double> x(9), y(7);
  Rng rng(3);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  for (auto& v : y) v = rng.uniform(-1.0, 1.0);
  blas::ger(2.0, cvec(x), cvec(y), a.view());
  for (index_t j = 0; j < 7; ++j)
    for (index_t i = 0; i < 9; ++i)
      ASSERT_NEAR(a(i, j),
                  a0(i, j) + 2.0 * x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(j)],
                  1e-14);
}

class TriParam : public ::testing::TestWithParam<std::tuple<int, int, int, index_t>> {};

TEST_P(TriParam, TrmvMatchesDenseProduct) {
  const auto [u, t, d, n] = GetParam();
  const Uplo uplo = u == 0 ? Uplo::Upper : Uplo::Lower;
  const Trans trans = t == 0 ? Trans::No : Trans::Yes;
  const Diag diag = d == 0 ? Diag::NonUnit : Diag::Unit;

  Matrix<double> a = random_matrix(n, n, 11 + static_cast<std::uint64_t>(n));
  for (index_t i = 0; i < n; ++i) a(i, i) += 3.0;  // keep solves well-conditioned

  // Dense version of the referenced triangle.
  Matrix<double> tri(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const bool in_tri = uplo == Uplo::Lower ? i >= j : i <= j;
      if (!in_tri) continue;
      tri(i, j) = (i == j && diag == Diag::Unit) ? 1.0 : a(i, j);
    }
  }

  std::vector<double> x(static_cast<std::size_t>(n));
  Rng rng(17);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);

  auto y = x;
  blas::trmv(uplo, trans, diag, a.cview(), vec(y));
  std::vector<double> zeros(static_cast<std::size_t>(n), 0.0);
  auto expected = ref_gemv(trans, 1.0, tri.cview(), x, 0.0, zeros);
  for (std::size_t i = 0; i < y.size(); ++i) ASSERT_NEAR(y[i], expected[i], 1e-11);

  // trsv must invert trmv.
  blas::trsv(uplo, trans, diag, a.cview(), vec(y));
  for (std::size_t i = 0; i < y.size(); ++i) ASSERT_NEAR(y[i], x[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TriParam,
                         ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1),
                                            ::testing::Values(0, 1),
                                            ::testing::Values<index_t>(1, 2, 9, 40)));

TEST(Trsv, SingularDiagonalProducesInf) {
  Matrix<double> a(2, 2);
  a(0, 0) = 0.0;
  a(1, 1) = 1.0;
  std::vector<double> x = {1.0, 1.0};
  blas::trsv(Uplo::Upper, Trans::No, Diag::NonUnit, a.cview(), vec(x));
  EXPECT_TRUE(std::isinf(x[0]) || std::isnan(x[0]));
}

}  // namespace
}  // namespace fth

// Matrix generators: determinism, structure, documented properties.
#include <gtest/gtest.h>

#include <cmath>

#include "la/generate.hpp"
#include "la/norms.hpp"

namespace fth {
namespace {

TEST(Generate, Deterministic) {
  Matrix<double> a = random_matrix(16, 16, 1234);
  Matrix<double> b = random_matrix(16, 16, 1234);
  EXPECT_EQ(max_abs_diff(a.cview(), b.cview()), 0.0);
  Matrix<double> c = random_matrix(16, 16, 1235);
  EXPECT_GT(max_abs_diff(a.cview(), c.cview()), 0.0);
}

TEST(Generate, UniformRange) {
  Matrix<double> a = random_matrix(64, 64, 2);
  EXPECT_LE(norm_max(a.cview()), 1.0);
  // Mean should be near zero for a symmetric distribution.
  double sum = 0.0;
  for (index_t j = 0; j < 64; ++j)
    for (index_t i = 0; i < 64; ++i) sum += a(i, j);
  EXPECT_LT(std::abs(sum / (64.0 * 64.0)), 0.05);
}

TEST(Generate, NormalMoments) {
  Matrix<double> a = random_normal_matrix(100, 100, 3);
  double sum = 0.0, sq = 0.0;
  for (index_t j = 0; j < 100; ++j)
    for (index_t i = 0; i < 100; ++i) {
      sum += a(i, j);
      sq += a(i, j) * a(i, j);
    }
  const double mean = sum / 1e4;
  const double var = sq / 1e4 - mean * mean;
  EXPECT_LT(std::abs(mean), 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Generate, SymmetricIsSymmetric) {
  Matrix<double> a = random_symmetric_matrix(33, 4);
  for (index_t j = 0; j < 33; ++j)
    for (index_t i = 0; i < 33; ++i) ASSERT_EQ(a(i, j), a(j, i));
}

TEST(Generate, HessenbergStructure) {
  Matrix<double> a = random_hessenberg_matrix(20, 5);
  for (index_t j = 0; j < 20; ++j)
    for (index_t i = j + 2; i < 20; ++i) ASSERT_EQ(a(i, j), 0.0);
  // Subdiagonal itself should generally be nonzero.
  EXPECT_NE(a(1, 0), 0.0);
}

TEST(Generate, DiagDominant) {
  const index_t n = 25;
  Matrix<double> a = random_diag_dominant_matrix(n, 6);
  for (index_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (index_t j = 0; j < n; ++j)
      if (j != i) off += std::abs(a(i, j));
    ASSERT_GT(std::abs(a(i, i)), off - 1.0);  // n + U(-1,1) vs sum of n−1 U(−1,1)
  }
}

TEST(Generate, GradedSpansDecades) {
  Matrix<double> a = random_graded_matrix(50, 7, 8.0);
  double mn = 1e300, mx = 0.0;
  for (index_t j = 0; j < 50; ++j)
    for (index_t i = 0; i < 50; ++i) {
      const double v = std::abs(a(i, j));
      if (v > 0) {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
    }
  EXPECT_GT(mx / mn, 1e5);  // spans many orders of magnitude
}

TEST(Generate, CompanionMatrixStructure) {
  std::vector<double> roots = {2.0, -1.0, 0.5};
  Matrix<double> c = companion_matrix(VectorView<const double>(roots.data(), 3));
  ASSERT_EQ(c.rows(), 3);
  EXPECT_EQ(c(1, 0), 1.0);
  EXPECT_EQ(c(2, 1), 1.0);
  EXPECT_EQ(c(2, 0), 0.0);
  // p(x) = (x−2)(x+1)(x−0.5) = x³ −1.5x² −1.5x +1 ⇒ last col = −c0,−c1,−c2
  EXPECT_NEAR(c(0, 2), -1.0, 1e-14);
  EXPECT_NEAR(c(1, 2), 1.5, 1e-14);
  EXPECT_NEAR(c(2, 2), 1.5, 1e-14);
}

TEST(Generate, CompanionCharacteristicAtRoot) {
  // det(C − rI) = 0 for each root r; verify via p(r) reconstruction.
  std::vector<double> roots = {1.0, 2.0, 3.0, 4.0};
  Matrix<double> c = companion_matrix(VectorView<const double>(roots.data(), 4));
  for (double r : roots) {
    // p(r) from the stored coefficients: x⁴ + c3x³ + ... + c0 where the last
    // column holds −c0..−c3.
    double p = std::pow(r, 4);
    for (index_t i = 0; i < 4; ++i) p -= c(i, 3) * std::pow(r, static_cast<double>(i));
    EXPECT_NEAR(p, 0.0, 1e-10);
  }
}

}  // namespace
}  // namespace fth

// Level-3 BLAS kernels vs reference computations (all transpose cases,
// blocking-boundary sizes, alpha/beta special cases).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "la/blas3.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "test_utils.hpp"

namespace fth {
namespace {

class GemmParam
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t, int, int>> {};

TEST_P(GemmParam, MatchesReference) {
  const auto [m, n, k, tac, tbc] = GetParam();
  const Trans ta = tac == 0 ? Trans::No : Trans::Yes;
  const Trans tb = tbc == 0 ? Trans::No : Trans::Yes;
  Matrix<double> a = ta == Trans::No ? random_matrix(m, k, 1) : random_matrix(k, m, 1);
  Matrix<double> b = tb == Trans::No ? random_matrix(k, n, 2) : random_matrix(n, k, 2);
  Matrix<double> c = random_matrix(m, n, 3);
  Matrix<double> expected = test::ref_gemm(ta, tb, 1.7, a.cview(), b.cview(), -0.3, c.cview());
  blas::gemm(ta, tb, 1.7, a.cview(), b.cview(), -0.3, c.view());
  const double tol = 1e-12 * static_cast<double>(k + 1);
  test::expect_matrix_near(c.cview(), expected.cview(), tol, "gemm");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParam,
    ::testing::Combine(::testing::Values<index_t>(1, 5, 33, 130),  // spans micro/macro tiles
                       ::testing::Values<index_t>(1, 9, 64), ::testing::Values<index_t>(1, 17, 70),
                       ::testing::Values(0, 1), ::testing::Values(0, 1)));

TEST(Gemm, LargeCrossesAllBlockingBoundaries) {
  // Bigger than MC×KC×NC tile boundaries in at least one dimension each.
  const index_t m = 150, n = 90, k = 300;
  Matrix<double> a = random_matrix(m, k, 4);
  Matrix<double> b = random_matrix(k, n, 5);
  Matrix<double> c(m, n);
  Matrix<double> expected = test::ref_gemm(Trans::No, Trans::No, 1.0, a.cview(), b.cview(),
                                           0.0, c.cview());
  blas::gemm(Trans::No, Trans::No, 1.0, a.cview(), b.cview(), 0.0, c.view());
  test::expect_matrix_near(c.cview(), expected.cview(), 1e-11, "big gemm");
}

TEST(Gemm, SubmatrixViewsWithLd) {
  Matrix<double> big_a = random_matrix(40, 40, 6);
  Matrix<double> big_b = random_matrix(40, 40, 7);
  Matrix<double> big_c = random_matrix(40, 40, 8);
  auto a = big_a.block(3, 5, 20, 12);
  auto b = big_b.block(1, 2, 12, 18);
  auto c = big_c.block(7, 9, 20, 18);
  Matrix<double> expected = test::ref_gemm(Trans::No, Trans::No, 1.0,
                                           MatrixView<const double>(a),
                                           MatrixView<const double>(b), 1.0,
                                           MatrixView<const double>(c));
  blas::gemm(Trans::No, Trans::No, 1.0, MatrixView<const double>(a),
             MatrixView<const double>(b), 1.0, c);
  test::expect_matrix_near(MatrixView<const double>(c), expected.cview(), 1e-12, "view gemm");
}

TEST(Gemm, AlphaZeroScalesOnly) {
  Matrix<double> a = random_matrix(8, 8, 9);
  Matrix<double> b = random_matrix(8, 8, 10);
  Matrix<double> c = random_matrix(8, 8, 11);
  Matrix<double> c0(c.cview());
  blas::gemm(Trans::No, Trans::No, 0.0, a.cview(), b.cview(), 2.0, c.view());
  for (index_t j = 0; j < 8; ++j)
    for (index_t i = 0; i < 8; ++i) ASSERT_NEAR(c(i, j), 2.0 * c0(i, j), 1e-14);
}

TEST(Gemm, BetaZeroOverwritesNaN) {
  Matrix<double> a = random_matrix(50, 50, 12);
  Matrix<double> b = random_matrix(50, 50, 13);
  Matrix<double> c(50, 50);
  c.fill(std::nan(""));
  blas::gemm(Trans::No, Trans::No, 1.0, a.cview(), b.cview(), 0.0, c.view());
  EXPECT_FALSE(std::isnan(norm_fro(c.cview())));
}

TEST(Gemm, DimensionMismatchThrows) {
  Matrix<double> a(3, 4), b(5, 6), c(3, 6);
  EXPECT_THROW(blas::gemm(Trans::No, Trans::No, 1.0, a.cview(), b.cview(), 0.0, c.view()),
               precondition_error);
}

TEST(Gemm, EmptyDimensionsAreNoops) {
  Matrix<double> a(0, 0), b(0, 0), c(0, 0);
  EXPECT_NO_THROW(
      blas::gemm(Trans::No, Trans::No, 1.0, a.cview(), b.cview(), 0.0, c.view()));
  Matrix<double> a2(3, 0), b2(0, 4), c2 = random_matrix(3, 4, 14);
  Matrix<double> c0(c2.cview());
  // k == 0: C := beta·C only.
  blas::gemm(Trans::No, Trans::No, 1.0, a2.cview(), b2.cview(), 1.0, c2.view());
  test::expect_matrix_near(c2.cview(), c0.cview(), 0.0, "k=0 gemm");
}

class TrmmParam : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(TrmmParam, MatchesDenseProduct) {
  const auto [sc, uc, tc, dc] = GetParam();
  const Side side = sc == 0 ? Side::Left : Side::Right;
  const Uplo uplo = uc == 0 ? Uplo::Upper : Uplo::Lower;
  const Trans trans = tc == 0 ? Trans::No : Trans::Yes;
  const Diag diag = dc == 0 ? Diag::NonUnit : Diag::Unit;

  const index_t m = 13, n = 9;
  const index_t na = side == Side::Left ? m : n;
  Matrix<double> a = random_matrix(na, na, 15);
  for (index_t i = 0; i < na; ++i) a(i, i) += 2.0;
  Matrix<double> b = random_matrix(m, n, 16);
  Matrix<double> b0(b.cview());

  // Dense triangle.
  Matrix<double> tri(na, na);
  for (index_t j = 0; j < na; ++j)
    for (index_t i = 0; i < na; ++i) {
      const bool in_tri = uplo == Uplo::Lower ? i >= j : i <= j;
      if (in_tri) tri(i, j) = (i == j && diag == Diag::Unit) ? 1.0 : a(i, j);
    }

  Matrix<double> expected(m, n);
  if (side == Side::Left) {
    expected = test::ref_gemm(trans, Trans::No, 1.5, tri.cview(), b0.cview(), 0.0,
                              expected.cview());
  } else {
    expected = test::ref_gemm(Trans::No, trans, 1.5, b0.cview(), tri.cview(), 0.0,
                              expected.cview());
  }
  blas::trmm(side, uplo, trans, diag, 1.5, a.cview(), b.view());
  test::expect_matrix_near(b.cview(), expected.cview(), 1e-11, "trmm");

  // trsm must invert trmm (up to the alpha scaling).
  blas::trsm(side, uplo, trans, diag, 1.0 / 1.5, a.cview(), b.view());
  test::expect_matrix_near(b.cview(), b0.cview(), 1e-9, "trsm∘trmm");
}

INSTANTIATE_TEST_SUITE_P(AllCases, TrmmParam,
                         ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1),
                                            ::testing::Values(0, 1), ::testing::Values(0, 1)));

TEST(Trmm, UnitDiagIgnoresStoredDiagonalAndAbove) {
  // The Hessenberg code relies on trmm/Unit never reading the diagonal or
  // the upper part of V (which alias H data in LAPACK storage).
  Matrix<double> a(4, 4);
  a.fill(std::nan(""));
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = j + 1; i < 4; ++i) a(i, j) = 0.5;
  Matrix<double> b = random_matrix(2, 4, 17);
  Matrix<double> b0(b.cview());
  // Right / Lower / Transpose / Unit — exactly the dgehrd panel-fix call.
  EXPECT_NO_THROW(blas::trmm(Side::Right, Uplo::Lower, Trans::Yes, Diag::Unit, 1.0, a.cview(),
                             b.view()));
  EXPECT_FALSE(std::isnan(norm_fro(b.cview())));
}

TEST(Syrk, MatchesGemm) {
  const index_t n = 11, k = 7;
  Matrix<double> a = random_matrix(n, k, 18);
  Matrix<double> c = random_symmetric_matrix(n, 19);
  Matrix<double> full = test::ref_gemm(Trans::No, Trans::Yes, 2.0, a.cview(), a.cview(), 0.5,
                                       c.cview());
  Matrix<double> lower(c.cview());
  blas::syrk(Uplo::Lower, Trans::No, 2.0, a.cview(), 0.5, lower.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) ASSERT_NEAR(lower(i, j), full(i, j), 1e-12);

  Matrix<double> upper(c.cview());
  blas::syrk(Uplo::Upper, Trans::Yes, 1.0,
             MatrixView<const double>(random_matrix(k, n, 20).cview()), 0.0, upper.view());
  // Result must be symmetric on its referenced triangle vs a direct gemm.
  Matrix<double> at = random_matrix(k, n, 20);
  Matrix<double> ref(n, n);
  ref = test::ref_gemm(Trans::Yes, Trans::No, 1.0, at.cview(), at.cview(), 0.0, ref.cview());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i) ASSERT_NEAR(upper(i, j), ref(i, j), 1e-12);
}

}  // namespace
}  // namespace fth

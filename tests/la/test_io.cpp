// Textual output helpers (heat maps back the Fig. 2 reproduction).
#include <gtest/gtest.h>

#include <sstream>

#include "la/generate.hpp"
#include "la/io.hpp"

namespace fth {
namespace {

TEST(PrintMatrix, TruncatesLargeMatrices) {
  Matrix<double> a = random_matrix(30, 30, 1);
  std::ostringstream os;
  print_matrix(os, a.cview(), "A", 4);
  const std::string s = os.str();
  EXPECT_NE(s.find("30x30"), std::string::npos);
  EXPECT_NE(s.find("showing 4x4"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

TEST(AsciiHeatmap, ZeroMatrixAllDots) {
  Matrix<double> a(8, 8);
  const std::string map = ascii_heatmap(a.cview());
  for (char ch : map) EXPECT_TRUE(ch == '.' || ch == '\n');
}

TEST(AsciiHeatmap, SingleHotElementVisibleAfterDownsampling) {
  Matrix<double> a(200, 200);
  a(137, 42) = 1.0;  // one polluted element, like Fig. 2(b)
  const std::string map = ascii_heatmap(a.cview(), 50);
  // Exactly one non-dot cell survives the max-pooled downsampling.
  int hot = 0;
  for (char ch : map)
    if (ch != '.' && ch != '\n') ++hot;
  EXPECT_EQ(hot, 1);
}

TEST(AsciiHeatmap, RowPollutionShowsAsRow) {
  Matrix<double> a(64, 64);
  for (index_t j = 20; j < 64; ++j) a(10, j) = 1.0;  // Fig. 2(c) pattern
  const std::string map = ascii_heatmap(a.cview(), 64);
  std::istringstream is(map);
  std::string line;
  int lines_with_hot = 0;
  while (std::getline(is, line)) {
    if (line.find_first_not_of('.') != std::string::npos) ++lines_with_hot;
  }
  EXPECT_EQ(lines_with_hot, 1);
}

TEST(AsciiHeatmap, MagnitudeBinsAreOrdered) {
  Matrix<double> a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 1e-3;
  a(2, 2) = 1e-8;
  const std::string map = ascii_heatmap(a.cview(), 3);
  // Row 0 should show the strongest character, row 2 the weakest non-dot.
  std::istringstream is(map);
  std::string l0, l1, l2;
  std::getline(is, l0);
  std::getline(is, l1);
  std::getline(is, l2);
  EXPECT_EQ(l0[0], '9');
  EXPECT_GT(l0[0], l1[1]);
  EXPECT_GT(l1[1], l2[2]);
}

TEST(AsciiHeatmap, EmptyMatrix) {
  Matrix<double> a(0, 0);
  EXPECT_EQ(ascii_heatmap(a.cview()), "(empty)\n");
}

TEST(MagnitudeHistogram, CountsAllElements) {
  Matrix<double> a(4, 4);
  a(0, 0) = 1.0;
  a(1, 1) = 1e-4;
  const std::string h = magnitude_histogram(a.cview());
  EXPECT_NE(h.find("zero"), std::string::npos);
  EXPECT_NE(h.find("14"), std::string::npos);  // 14 zero elements
}

}  // namespace
}  // namespace fth

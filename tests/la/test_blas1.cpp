// Level-1 BLAS kernels vs reference computations, including stride cases.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/flops.hpp"
#include "common/rng.hpp"
#include "la/blas1.hpp"
#include "test_utils.hpp"

namespace fth {
namespace {

using test::cvec;
using test::vec;

std::vector<double> random_vec(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

TEST(Blas1, DotMatchesReference) {
  auto x = random_vec(101, 1);
  auto y = random_vec(101, 2);
  double ref = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) ref += x[i] * y[i];
  EXPECT_NEAR(blas::dot(cvec(x), cvec(y)), ref, 1e-13);
}

TEST(Blas1, DotEmpty) {
  std::vector<double> e;
  EXPECT_EQ(blas::dot(cvec(e), cvec(e)), 0.0);
}

TEST(Blas1, DotLengthMismatchThrows) {
  auto x = random_vec(4, 1);
  auto y = random_vec(5, 2);
  EXPECT_THROW(blas::dot(cvec(x), cvec(y)), precondition_error);
}

TEST(Blas1, AxpyAndScal) {
  auto x = random_vec(64, 3);
  auto y = random_vec(64, 4);
  auto y0 = y;
  blas::axpy(2.5, cvec(x), vec(y));
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], y0[i] + 2.5 * x[i], 1e-14);
  blas::scal(-0.5, vec(y));
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], -0.5 * (y0[i] + 2.5 * x[i]), 1e-14);
}

TEST(Blas1, AxpyAlphaZeroIsNoop) {
  auto x = random_vec(8, 5);
  auto y = random_vec(8, 6);
  auto y0 = y;
  blas::axpy(0.0, cvec(x), vec(y));
  EXPECT_EQ(y, y0);
}

TEST(Blas1, StridedViews) {
  std::vector<double> buf(12, 0.0);
  for (int i = 0; i < 12; ++i) buf[static_cast<std::size_t>(i)] = i;
  VectorView<double> even(buf.data(), 6, 2);  // 0 2 4 6 8 10
  VectorView<double> odd(buf.data() + 1, 6, 2);
  EXPECT_NEAR(blas::dot(VectorView<const double>(even), VectorView<const double>(odd)),
              0 * 1 + 2 * 3 + 4 * 5 + 6 * 7 + 8 * 9 + 10 * 11, 1e-12);
  blas::axpy(1.0, VectorView<const double>(even), odd);
  EXPECT_EQ(buf[1], 1.0 + 0.0);
  EXPECT_EQ(buf[11], 11.0 + 10.0);
}

TEST(Blas1, Nrm2MatchesHypot) {
  auto x = random_vec(257, 7);
  double ref = 0.0;
  for (double v : x) ref += v * v;
  ref = std::sqrt(ref);
  EXPECT_NEAR(blas::nrm2(cvec(x)), ref, 1e-12);
}

TEST(Blas1, Nrm2AvoidsOverflowAndUnderflow) {
  std::vector<double> big = {1e300, 1e300, 1e300};
  EXPECT_NEAR(blas::nrm2(cvec(big)) / 1e300, std::sqrt(3.0), 1e-12);
  std::vector<double> small = {1e-300, 1e-300, 1e-300, 1e-300};
  EXPECT_NEAR(blas::nrm2(cvec(small)) / 1e-300, 2.0, 1e-12);
  std::vector<double> zeros(5, 0.0);
  EXPECT_EQ(blas::nrm2(cvec(zeros)), 0.0);
}

TEST(Blas1, SumAsumIamax) {
  std::vector<double> x = {1.0, -5.0, 3.0, -2.0};
  EXPECT_EQ(blas::sum(cvec(x)), -3.0);
  EXPECT_EQ(blas::asum(cvec(x)), 11.0);
  EXPECT_EQ(blas::iamax(cvec(x)), 1);
  std::vector<double> e;
  EXPECT_EQ(blas::iamax(cvec(e)), -1);
}

TEST(Blas1, CopySwap) {
  auto x = random_vec(33, 8);
  auto y = random_vec(33, 9);
  auto x0 = x;
  auto y0 = y;
  blas::swap(vec(x), vec(y));
  EXPECT_EQ(x, y0);
  EXPECT_EQ(y, x0);
  blas::copy(cvec(x), vec(y));
  EXPECT_EQ(y, x);
}

TEST(Blas1, FlopCounting) {
  auto x = random_vec(100, 10);
  auto y = random_vec(100, 11);
  flops::reset();
  {
    flops::Scope scope;
    blas::dot(cvec(x), cvec(y));
    EXPECT_EQ(scope.delta(), 199u);  // 2n − 1
    blas::axpy(1.0, cvec(x), vec(y));
    EXPECT_EQ(scope.delta(), 199u + 200u);
  }
  // Counting disabled outside the scope.
  const auto before = flops::count();
  blas::dot(cvec(x), cvec(y));
  EXPECT_EQ(flops::count(), before);
}

// Property sweep: dot linearity across lengths.
class Blas1Param : public ::testing::TestWithParam<index_t> {};

TEST_P(Blas1Param, DotLinearity) {
  const index_t n = GetParam();
  auto x = random_vec(n, 20 + static_cast<std::uint64_t>(n));
  auto y = random_vec(n, 21 + static_cast<std::uint64_t>(n));
  auto z = random_vec(n, 22 + static_cast<std::uint64_t>(n));
  auto ypz = y;
  for (std::size_t i = 0; i < ypz.size(); ++i) ypz[i] += z[i];
  const double lhs = blas::dot(cvec(x), cvec(ypz));
  const double rhs = blas::dot(cvec(x), cvec(y)) + blas::dot(cvec(x), cvec(z));
  EXPECT_NEAR(lhs, rhs, 1e-12 * std::max<index_t>(n, 1));
}

TEST_P(Blas1Param, Nrm2ScaleInvariance) {
  const index_t n = GetParam();
  auto x = random_vec(n, 30 + static_cast<std::uint64_t>(n));
  const double base = blas::nrm2(cvec(x));
  auto x2 = x;
  blas::scal(-4.0, vec(x2));
  EXPECT_NEAR(blas::nrm2(cvec(x2)), 4.0 * base, 1e-12 * (base + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Lengths, Blas1Param,
                         ::testing::Values<index_t>(0, 1, 2, 7, 64, 255, 1000));

}  // namespace
}  // namespace fth

// fth::check::lint rules over seeded-bad and known-good snippets: every
// rule must fire on its seed (deterministically — the rules are pure
// functions of the source text) and stay quiet on the idiomatic spellings
// and on the allowlisted layers. The whole-tree gate is the `lint.repo`
// ctest (tools/fth_lint.cpp); this file proves each rule's edge behaviour.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/lint_rules.hpp"

namespace fth::check::lint {
namespace {

std::vector<Issue> run(const std::string& path, const std::string& content) {
  return lint_file(path, content);
}

bool has_rule(const std::vector<Issue>& issues, const std::string& rule) {
  for (const auto& i : issues)
    if (i.rule == rule) return true;
  return false;
}

// ---- scope ------------------------------------------------------------------

TEST(LintScope, OnlyCppSourcesUnderKnownRoots) {
  EXPECT_TRUE(in_scope("src/la/matrix.hpp"));
  EXPECT_TRUE(in_scope("tests/ft/test_ft_gehrd.cpp"));
  EXPECT_TRUE(in_scope("tools/fth_lint.cpp"));
  EXPECT_TRUE(in_scope("bench/bench_gehrd.cpp"));
  EXPECT_FALSE(in_scope("docs/DESIGN.md"));
  EXPECT_FALSE(in_scope("src/CMakeLists.txt"));
  EXPECT_FALSE(in_scope("build/src/generated.cpp"));
  EXPECT_TRUE(run("docs/notes.cpp", "auto p = x.unchecked_host_view();").empty())
      << "out-of-scope paths produce no issues at all";
}

// ---- device-unwrap ----------------------------------------------------------

TEST(LintDeviceUnwrap, FlagsEscapeHatchesOutsideAllowlist) {
  const std::string bad = "auto h = dv.unchecked_host_view();\n";
  const auto issues = run("src/ft/ft_gehrd.cpp", bad);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "device-unwrap");
  EXPECT_EQ(issues[0].line, 1);
  EXPECT_NE(issues[0].message.find("in_task"), std::string::npos)
      << "the report must point at the sanctioned gate";

  EXPECT_TRUE(has_rule(run("src/ft/x.cpp", "void* p = dv.raw_data();\n"),
                       "device-unwrap"));
  EXPECT_TRUE(has_rule(
      run("src/la/blas.hpp",
          "MatrixView<double> v(detail::unchecked_view, p, 1, 1, 1);\n"),
      "device-unwrap"));
  EXPECT_TRUE(has_rule(run("tests/ft/test_x.cpp",
                           "auto q = d.view().unchecked_host_view();\n"),
                       "device-unwrap"));
}

TEST(LintDeviceUnwrap, AllowlistedLayersPass) {
  const std::string content =
      "auto h = dv.unchecked_host_view();\n"
      "void* p = dv.raw_data();\n";
  EXPECT_TRUE(run("src/hybrid/device.cpp", content).empty());
  EXPECT_TRUE(run("src/hybrid/dev_blas.cpp", content).empty());
  EXPECT_TRUE(run("src/la/matrix.hpp", content).empty());
  EXPECT_TRUE(run("src/check/access.cpp", content).empty());
  EXPECT_TRUE(run("src/fault/fault_plane.hpp", content).empty());
  EXPECT_TRUE(run("tests/check/test_checker.cpp", content).empty())
      << "seeded-violation self-tests legitimately misuse the hatches";
  EXPECT_FALSE(run("src/fault/injector.cpp", content).empty())
      << "only the fault plane's worker-thread fire paths are allowlisted";
}

TEST(LintDeviceUnwrap, CheckedGatesAreNotFlagged) {
  EXPECT_TRUE(run("src/ft/ft_gehrd.cpp",
                  "auto eh = e.in_task();\n"
                  "auto hv = hybrid::host_view(d.view(), s);\n")
                  .empty());
}

// ---- comments / strings are not code ---------------------------------------

TEST(LintText, CommentsAndLiteralsDoNotFire) {
  EXPECT_TRUE(run("src/ft/x.cpp",
                  "// prefer .in_task() over .unchecked_host_view()\n"
                  "/* int n — see raw_data( in DESIGN */\n")
                  .empty());
  EXPECT_TRUE(run("src/ft/x.cpp",
                  "const char* doc = \"never call .raw_data( by hand\";\n")
                  .empty());
  // A token split across a line comment and live code still fires on the
  // live part.
  EXPECT_FALSE(run("src/ft/x.cpp",
                   "auto h = dv.unchecked_host_view();  // gated elsewhere\n")
                   .empty());
}

// ---- raw string literals ----------------------------------------------------

TEST(LintRawString, RawLiteralContentsAreBlankedToTheClosingDelimiter) {
  // Before the Raw state existed, the scanner left string mode at the first
  // interior '"', so the rest of the literal — here a rule token — was
  // mis-scanned as live code and fired device-unwrap.
  EXPECT_TRUE(run("src/ft/x.cpp",
                  "static const std::regex re(R\"re(say \" then .raw_data( wow)re\");\n")
                  .empty());
  // The delimiter must match: )x" inside an R"re( literal does not end it.
  EXPECT_TRUE(run("src/ft/x.cpp",
                  "auto s = R\"re(a )x\" b .unchecked_host_view( c)re\";\n")
                  .empty());
  // Multi-line raw literal: contents stay blanked across the newline.
  EXPECT_TRUE(run("src/ft/x.cpp",
                  "auto s = R\"(line one \"\n"
                  "dv.raw_data( on line two)\";\n")
                  .empty());
  // Encoding prefixes also open raw literals.
  EXPECT_TRUE(run("src/ft/x.cpp",
                  "auto s = u8R\"(quote \" then .raw_data( here)\";\n")
                  .empty());
}

TEST(LintRawString, CodeAfterAndAroundRawLiteralsStillFires) {
  // Live code after a closed raw literal is scanned normally again.
  EXPECT_TRUE(has_rule(run("src/ft/x.cpp",
                           "auto s = R\"re(text \" more)re\"; auto h = dv.raw_data();\n"),
                       "device-unwrap"));
  // An identifier merely *ending* in R does not open a raw literal: the
  // ordinary string that follows it terminates at its first '"'.
  EXPECT_TRUE(has_rule(run("src/ft/x.cpp",
                           "auto s = FOOR\"text\"; auto h = dv.raw_data();\n"),
                       "device-unwrap"));
}

// ---- int-index --------------------------------------------------------------

TEST(LintIntIndex, FlagsIntDimensionParams) {
  const auto issues =
      run("src/lapack/gehrd.hpp", "void gehrd(MatrixView<double> a, int nb);\n");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "int-index");
  EXPECT_TRUE(has_rule(
      run("src/hybrid/dev_blas.hpp", "void gemm(int m, index_t n, index_t k);\n"),
      "int-index"));
  EXPECT_TRUE(has_rule(run("src/ft/checksum.hpp",
                           "double col_sum(const double* a, const int lda);\n"),
                       "int-index"));
}

TEST(LintIntIndex, IdiomaticSpellingsPass) {
  EXPECT_TRUE(run("src/lapack/gehrd.hpp",
                  "void gehrd(index_t n, index_t ilo, index_t ihi, index_t lda);\n")
                  .empty());
  EXPECT_TRUE(run("src/lapack/reflectors.cpp",
                  "for (int k = 0; k < scale_count; ++k) beta *= safmin;\n")
                  .empty())
      << "loop counters carry an initializer and are not parameters";
  EXPECT_TRUE(run("src/ft/locate.hpp", "void set_bit(double* x, int bit);\n").empty())
      << "non-dimension int parameters are fine";
  EXPECT_TRUE(run("src/obs/profile.cpp", "void f(int n);\n").empty())
      << "the rule is scoped to the LAPACK-subset layers";
}

// ---- naked-new-array --------------------------------------------------------

TEST(LintNewArray, FlagsNakedArrayNew) {
  const auto issues = run("src/ft/ft_gehrd.cpp", "double* w = new double[n];\n");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "naked-new-array");
  EXPECT_TRUE(has_rule(run("tests/ft/test_x.cpp",
                           "auto* b = new std::complex<double>[2 * n];\n"),
                       "naked-new-array"));
}

TEST(LintNewArray, TrackedStoragePasses) {
  EXPECT_TRUE(run("src/ft/ft_gehrd.cpp",
                  "Matrix<double> w(n, nb);\n"
                  "std::vector<double> tau(n);\n"
                  "auto* p = static_cast<T*>(dev.raw_allocate(bytes, site));\n")
                  .empty());
}

// ---- panel-impl -------------------------------------------------------------

TEST(LintPanelImpl, FlagsPanelDefinitionOutsideImplHeader) {
  const std::string def =
      "void latrd_panel(MatrixView<double> a, index_t k, index_t nb) {\n";
  const auto issues = run("src/lapack/sytrd.cpp", def);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "panel-impl");
}

TEST(LintPanelImpl, QualifiedCallsAndImplHeadersPass) {
  EXPECT_TRUE(run("src/lapack/sytrd.cpp",
                  "detail::latrd_panel(a, k, nb, e, tau, w);\n")
                  .empty());
  EXPECT_TRUE(run("src/lapack/sytrd_impl.hpp",
                  "void latrd_panel(MatrixView<double> a, index_t k) {\n")
                  .empty());
  EXPECT_TRUE(run("src/ft/q_protect.cpp",
                  "PanelChecksums QProtector::compute_panel(MatrixView<const "
                  "double> a, index_t k) {\n")
                  .empty())
      << "the rule is scoped to src/lapack/";
}

// ---- report format ----------------------------------------------------------

TEST(LintFormat, CarriesFileLineRuleAndExcerpt) {
  const auto issues = run("src/ft/x.cpp", "\n\nauto h = dv.unchecked_host_view();\n");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].line, 3);
  const std::string s = format(issues[0]);
  EXPECT_NE(s.find("src/ft/x.cpp:3"), std::string::npos);
  EXPECT_NE(s.find("[device-unwrap]"), std::string::npos);
  EXPECT_NE(s.find("auto h = dv.unchecked_host_view();"), std::string::npos);
}

}  // namespace
}  // namespace fth::check::lint

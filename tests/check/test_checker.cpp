// fth::check runtime checker: seeded violations of the device-space and
// happens-before disciplines must be caught deterministically (100% of
// trials — detection keys off the happens-before graph, never off scheduler
// timing), with the allocation site and racing task label in the report;
// the sanctioned access patterns and full FT runs must stay violation-free.
//
// This file is on the tools/fth_lint device-unwrap allowlist: the seeds
// deliberately spell the unchecked escape hatches to construct the bugs the
// checker exists to catch.
//
// Every test skips in builds where the checker is compiled out (Release
// without -DFTH_CHECKER=ON): there is nothing to observe there, and
// run_benches.sh separately asserts that state via tools/fth_checkinfo.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "check/access.hpp"
#include "check/effects.hpp"
#include "fault/fault_plane.hpp"
#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"
#include "ft/ft_sytrd.hpp"
#include "hybrid/device.hpp"
#include "la/generate.hpp"

#define SKIP_UNLESS_CHECKED()                                   \
  do {                                                          \
    if (!fth::check::compiled_in())                             \
      GTEST_SKIP() << "checker compiled out of this build";     \
    fth::check::set_active(true);                               \
  } while (0)

namespace fth {
namespace {

using check::ExpectViolations;
using check::ViolationKind;

/// First violation of `kind` in `vs`, or nullptr.
const check::Violation* find_kind(const std::vector<check::Violation>& vs,
                                  ViolationKind kind) {
  for (const auto& v : vs)
    if (v.kind == kind) return &v;
  return nullptr;
}

// ---- device-space discipline ------------------------------------------------

TEST(CheckerSpace, HostViewOverDeviceMemoryReportsAllocationSite) {
  SKIP_UNLESS_CHECKED();
  hybrid::Device dev;
  hybrid::DeviceMatrix<double> dm(dev, 8, 8, "checker_test.d_a");
  double* p = dm.view().raw_data();

  ExpectViolations ex;
  MatrixView<double> bad(p, 8, 8, 8);  // host-space view over device memory
  (void)bad;
  const auto vs = ex.taken();
  const auto* v = find_kind(vs, ViolationKind::HostViewOverDevice);
  ASSERT_NE(v, nullptr);
  EXPECT_STREQ(v->alloc_site, "checker_test.d_a");
  EXPECT_NE(v->message.find("checker_test.d_a"), std::string::npos);
}

// Regression: the slow host-view path once re-locked the checker mutex when
// the pointer turned out to be ordinary host memory (host_view_slow →
// host_touch_slow), self-deadlocking the first host view built while any
// device allocation existed — i.e. the first line of every hybrid driver.
TEST(CheckerSpace, HostViewOverHostMemoryBesideDeviceAllocsIsCleanAndCheap) {
  SKIP_UNLESS_CHECKED();
  hybrid::Device dev;
  hybrid::DeviceMatrix<double> dm(dev, 8, 8, "checker_test.d_bystander");
  Matrix<double> host(8, 8);

  const auto before = check::violation_count();
  // Exercises the device-alloc-registered slow path end to end; must neither
  // hang nor report (reads and writes both — no transfer is in flight).
  MatrixView<double> w(host.data(), 8, 8, 8);
  w(3, 3) = 1.0;
  MatrixView<const double> r(host.data(), 8, 8, 8);
  (void)r(3, 3);
  EXPECT_EQ(check::violation_count(), before);
}

TEST(CheckerSpace, InTaskUnwrapOnHostThreadIsFlagged) {
  SKIP_UNLESS_CHECKED();
  hybrid::Device dev;
  hybrid::DeviceMatrix<double> dm(dev, 4, 4, "checker_test.d_unwrap");

  ExpectViolations ex;
  auto h = dm.view().in_task();  // not a stream worker
  (void)h;
  const auto vs = ex.taken();
  const auto* v = find_kind(vs, ViolationKind::HostDerefDevice);
  ASSERT_NE(v, nullptr);
  EXPECT_STREQ(v->alloc_site, "checker_test.d_unwrap");
  EXPECT_STREQ(v->task_label, "host");
}

TEST(CheckerSpace, InTaskUnwrapInsideStreamTaskIsClean) {
  SKIP_UNLESS_CHECKED();
  hybrid::Device dev;
  hybrid::DeviceMatrix<double> dm(dev, 4, 4, "checker_test.d_ok");
  const auto before = check::violation_count();
  auto dv = dm.view();
  dev.stream().enqueue("checker_test.kernel", [dv] {
    auto h = dv.in_task();
    h(1, 2) = 42.0;
  });
  dev.stream().synchronize();
  EXPECT_EQ(check::violation_count(), before);
}

TEST(CheckerSpace, StaleDeviceRangeIsFlaggedAsUnregistered) {
  SKIP_UNLESS_CHECKED();
  hybrid::Device dev;
  DMatrixView<double> stale;
  {
    hybrid::DeviceMatrix<double> tmp(dev, 4, 4, "checker_test.d_gone");
    stale = tmp.view();
  }  // backing allocation released
  ExpectViolations ex;
  auto h = stale.in_task();
  (void)h;
  const auto vs = ex.taken();
  const auto* v = find_kind(vs, ViolationKind::HostDerefDevice);
  ASSERT_NE(v, nullptr);
  EXPECT_STREQ(v->alloc_site, "<unregistered>");
}

TEST(CheckerSpace, HostViewGateFlagsBusyStreamAndPassesIdleStream) {
  SKIP_UNLESS_CHECKED();
  hybrid::Device dev;
  hybrid::DeviceMatrix<double> dm(dev, 4, 4, "checker_test.d_gate");
  std::atomic<bool> release{false};
  dev.stream().enqueue("checker_test.block", [&release] {
    while (!release.load()) std::this_thread::yield();
  });

  {
    ExpectViolations ex;
    auto h = hybrid::host_view(dm.view(), dev.stream());  // stream not idle
    (void)h;
    const auto vs = ex.taken();
    const auto* v = find_kind(vs, ViolationKind::StreamNotIdle);
    ASSERT_NE(v, nullptr);
    EXPECT_STREQ(v->alloc_site, "checker_test.d_gate");
  }
  release.store(true);
  dev.stream().synchronize();

  const auto before = check::violation_count();
  auto h = hybrid::host_view(dm.view(), dev.stream());  // idle: legitimate
  h(0, 0) = 1.0;
  EXPECT_EQ(check::violation_count(), before);
}

// ---- declared-effect conformance (FTH_CHECK_EFFECTS=1) ----------------------

TEST(CheckerEffects, UnwrapOutsideDeclaredSetIsFlagged) {
  SKIP_UNLESS_CHECKED();
  check::set_effects_active(true);
  hybrid::Device dev;
  hybrid::DeviceMatrix<double> declared(dev, 4, 4, "checker_test.d_declared");
  hybrid::DeviceMatrix<double> undeclared(dev, 4, 4, "checker_test.d_undeclared");

  ExpectViolations ex;
  auto dv_ok = declared.view();
  auto dv_bad = undeclared.view();
  dev.stream().enqueue("checker_test.narrow", FTH_TASK_EFFECTS(FTH_WRITES(dv_ok)),
                       [dv_ok, dv_bad] {
                         dv_ok.in_task()(0, 0) = 1.0;   // declared: fine
                         (void)dv_bad.in_task()(1, 1);  // undeclared: mismatch
                       });
  dev.stream().synchronize();
  check::set_effects_active(false);
  const auto vs = ex.taken();
  const auto* v = find_kind(vs, ViolationKind::EffectMismatch);
  ASSERT_NE(v, nullptr);
  EXPECT_STREQ(v->alloc_site, "checker_test.d_undeclared");
  EXPECT_STREQ(v->task_label, "checker_test.narrow");
  EXPECT_NE(v->message.find("FTH_READS/FTH_WRITES"), std::string::npos);
}

TEST(CheckerEffects, EmptyDeclarationRejectsAnyUnwrap) {
  SKIP_UNLESS_CHECKED();
  check::set_effects_active(true);
  hybrid::Device dev;
  hybrid::DeviceMatrix<double> dm(dev, 4, 4, "checker_test.d_marker");

  ExpectViolations ex;
  auto dv = dm.view();
  // A pure-marker declaration promises to touch nothing; touching
  // anything under it is exactly the drifted-annotation bug class.
  dev.stream().enqueue("checker_test.marker", FTH_TASK_EFFECTS(),
                       [dv] { (void)dv.in_task()(0, 0); });
  dev.stream().synchronize();
  check::set_effects_active(false);
  ASSERT_NE(find_kind(ex.taken(), ViolationKind::EffectMismatch), nullptr);
}

TEST(CheckerEffects, UndeclaredTasksAndInactiveModeStayUnchecked) {
  SKIP_UNLESS_CHECKED();
  check::set_effects_active(false);  // the env may have turned it on
  hybrid::Device dev;
  hybrid::DeviceMatrix<double> dm(dev, 4, 4, "checker_test.d_free");
  const auto before = check::violation_count();
  auto dv = dm.view();
  // Label-only overload: no declaration, nothing to conform to.
  dev.stream().enqueue("checker_test.legacy", [dv] { dv.in_task()(0, 0) = 1.0; });
  dev.stream().synchronize();
  // Declared but conformance mode off: declarations are documentation
  // for the static pass, not a runtime constraint.
  dev.stream().enqueue("checker_test.off", FTH_TASK_EFFECTS(),
                       [dv] { dv.in_task()(2, 2) = 1.0; });
  dev.stream().synchronize();
  EXPECT_EQ(check::violation_count(), before);
}

// ---- happens-before race detection ------------------------------------------

TEST(CheckerRace, HostWriteIntoInFlightH2DSourceIsFlagged) {
  SKIP_UNLESS_CHECKED();
  hybrid::Device dev;
  hybrid::Stream& s = dev.stream();
  hybrid::DeviceMatrix<double> d(dev, 16, 16, "checker_test.d_u2");
  Matrix<double> host(16, 16);

  hybrid::copy_h2d_async(s, host.view(), d.view());
  {
    ExpectViolations ex;
    host(3, 3) = 3.14;  // no Event / synchronize edge: the U2 bug class
    const auto vs = ex.taken();
    const auto* v = find_kind(vs, ViolationKind::TransferRace);
    ASSERT_NE(v, nullptr);
    EXPECT_STREQ(v->task_label, "h2d");
    EXPECT_STREQ(v->alloc_site, "checker_test.d_u2");
    EXPECT_GT(v->ticket, 0u);
    EXPECT_NE(v->missing_edge.find("ticket"), std::string::npos)
        << "the report must name the edge that fixes the race";
  }
  s.synchronize();
}

TEST(CheckerRace, HostReadOfInFlightH2DSourceIsAllowed) {
  SKIP_UNLESS_CHECKED();
  hybrid::Device dev;
  hybrid::Stream& s = dev.stream();
  hybrid::DeviceMatrix<double> d(dev, 8, 8, "checker_test.d_ro");
  Matrix<double> host(8, 8);

  hybrid::copy_h2d_async(s, host.view(), d.view());
  const auto before = check::violation_count();
  const double x = std::as_const(host)(2, 2);  // h2d only reads the host side
  (void)x;
  EXPECT_EQ(check::violation_count(), before);
  s.synchronize();
}

TEST(CheckerRace, HostReadOfInFlightD2HDestinationIsFlagged) {
  SKIP_UNLESS_CHECKED();
  hybrid::Device dev;
  hybrid::Stream& s = dev.stream();
  hybrid::DeviceMatrix<double> d(dev, 8, 8, "checker_test.d_back");
  Matrix<double> host(8, 8);

  hybrid::copy_d2h_async(s, d.view(), host.view());
  {
    ExpectViolations ex;
    const double x = std::as_const(host)(0, 0);  // d2h writes the host side
    (void)x;
    const auto vs = ex.taken();
    const auto* v = find_kind(vs, ViolationKind::TransferRace);
    ASSERT_NE(v, nullptr);
    EXPECT_STREQ(v->task_label, "d2h");
  }
  s.synchronize();
}

TEST(CheckerRace, EventWaitRetiresTheTransfer) {
  SKIP_UNLESS_CHECKED();
  hybrid::Device dev;
  hybrid::Stream& s = dev.stream();
  hybrid::DeviceMatrix<double> d(dev, 8, 8, "checker_test.d_wait");
  Matrix<double> host(8, 8);

  hybrid::copy_h2d_async(s, host.view(), d.view());
  hybrid::Event shipped = s.record();
  shipped.wait();  // the exact fix for the U2 race (DESIGN.md §7)
  const auto before = check::violation_count();
  host(3, 3) = 2.71;
  EXPECT_EQ(check::violation_count(), before);
  s.synchronize();
}

TEST(CheckerRace, EventReadyPollAlsoCountsAsAnEdge) {
  SKIP_UNLESS_CHECKED();
  hybrid::Device dev;
  hybrid::Stream& s = dev.stream();
  hybrid::DeviceMatrix<double> d(dev, 8, 8, "checker_test.d_poll");
  Matrix<double> host(8, 8);

  hybrid::copy_h2d_async(s, host.view(), d.view());
  hybrid::Event shipped = s.record();
  while (!shipped.ready()) std::this_thread::yield();
  const auto before = check::violation_count();
  host(0, 7) = 1.0;
  EXPECT_EQ(check::violation_count(), before);
  s.synchronize();
}

TEST(CheckerRace, DetectionIsDeterministicAcrossTrials) {
  SKIP_UNLESS_CHECKED();
  hybrid::Device dev;
  hybrid::Stream& s = dev.stream();
  hybrid::DeviceMatrix<double> d(dev, 8, 8, "checker_test.d_trials");
  // Detection must not depend on whether the worker already finished the
  // copy: the transfer stays live until the HOST observes an edge. Every
  // trial must flag, whatever the scheduler did.
  const int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    Matrix<double> host(8, 8);
    hybrid::copy_h2d_async(s, host.view(), d.view());
    if (t % 2 == 1) {
      // Odd trials: give the worker time to actually finish the copy first,
      // so both "still copying" and "copied but unordered" interleavings
      // are exercised.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ExpectViolations ex;
    host(t % 8, t % 8) = 1.0;
    EXPECT_EQ(ex.taken().empty(), false) << "trial " << t << " missed the race";
    s.synchronize();
  }
}

// ---- clean runs under the checker -------------------------------------------

TEST(CheckerClean, FtGehrdWithFaultsAndRecoveryIsViolationFree) {
  SKIP_UNLESS_CHECKED();
  const index_t n = 64, nb = 16;
  hybrid::Device dev;
  Matrix<double> a = random_matrix(n, n, 5);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  fault::FaultSpec spec;
  spec.area = fault::Area::LowerTrailing;
  fault::Injector inj(spec, 5);
  ft::FtReport rep;
  const auto before = check::violation_count();
  ft::ft_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1), {.nb = nb},
               &inj, &rep);
  EXPECT_GE(rep.detections, 1) << "the seeded fault must be seen (else the run "
                                  "exercised less than intended)";
  EXPECT_EQ(check::violation_count(), before)
      << "detection + rollback + re-execution must respect the disciplines";
}

TEST(CheckerClean, InFlightFaultPlaneSoakIsViolationFree) {
  SKIP_UNLESS_CHECKED();
  // Small soak trial (the CI Debug job runs this alongside the full suite):
  // in-flight strikes from the worker thread while the checker watches
  // every unwrap and transfer.
  const index_t n = 48, nb = 16;
  const auto before = check::violation_count();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    hybrid::Device dev;
    Matrix<double> a = random_matrix(n, n, 100 + static_cast<int>(seed));
    std::vector<double> tau(static_cast<std::size_t>(n - 1));
    fault::FaultPlane plane(seed);
    fault::InFlightFault f;
    f.when = fault::When::StreamTask;
    f.surface = fault::Surface::TrailingMatrix;
    f.countdown = 5 + seed;
    f.min_impact = 1e-6;
    plane.arm(f);
    ft::FtOptions opt;
    opt.nb = nb;
    opt.fault_plane = &plane;
    ft::FtReport rep;
    ft::ft_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1), opt,
                 nullptr, &rep);
    EXPECT_TRUE(plane.all_fired()) << "seed " << seed;
  }
  EXPECT_EQ(check::violation_count(), before);
}

TEST(CheckerClean, FtSytrdRunIsViolationFree) {
  SKIP_UNLESS_CHECKED();
  const index_t n = 48, nb = 16;
  hybrid::Device dev;
  Matrix<double> a = random_symmetric_matrix(n, 9);
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(n - 1));
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  ft::FtSytrdOptions opt;
  opt.nb = nb;
  ft::FtReport rep;
  const auto before = check::violation_count();
  ft::ft_sytrd(dev, a.view(), VectorView<double>(d.data(), n),
               VectorView<double>(e.data(), n - 1),
               VectorView<double>(tau.data(), n - 1), opt, nullptr, &rep);
  EXPECT_EQ(check::violation_count(), before);
}

}  // namespace
}  // namespace fth

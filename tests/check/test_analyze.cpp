// fth::analyze — the static transfer/Event-discipline pass (DESIGN.md §11).
//
// Two layers of proof:
//  1. Engine unit tests on synthetic snippets: every rule fires on its
//     seed and stays quiet on the idiomatic spelling (the analysis is a
//     pure function of the source text, so these are deterministic).
//  2. Seeded regressions on the REAL driver sources: load each hybrid/FT
//     driver from FTH_REPO_ROOT, delete exactly one ordering edge (the
//     Event wait or synchronize() the U2 discipline depends on), and
//     assert the analyzer reports exactly that missing edge at the known
//     access site — plus the clean-tree golden: the unmodified sources
//     produce zero findings. The whole-tree gate is the analyze.repo
//     ctest (tools/fth_analyze.cpp).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/analyze.hpp"

namespace fth::check::analyze {
namespace {

std::vector<Finding> run(const std::string& path, const std::string& content,
                         Stats* stats = nullptr) {
  return analyze_source(path, content, stats);
}

// ---- scope ------------------------------------------------------------------

TEST(AnalyzeScope, HybridFtAndUserFacingSurfacesOnly) {
  EXPECT_TRUE(in_scope("src/hybrid/hybrid_gehrd.cpp"));
  EXPECT_TRUE(in_scope("src/ft/ft_sytrd.cpp"));
  EXPECT_TRUE(in_scope("examples/ex_hybrid.cpp"));
  EXPECT_TRUE(in_scope("bench/bench_table1_platform.cpp"));
  EXPECT_FALSE(in_scope("src/lapack/gehrd.cpp"));
  EXPECT_FALSE(in_scope("tests/hybrid/test_stream.cpp"));
  EXPECT_FALSE(in_scope("src/hybrid/README.md"));
  EXPECT_TRUE(run("src/lapack/x.cpp", "void f(Stream& s) { dv.in_task(); }").empty())
      << "out-of-scope paths produce no findings at all";
}

// ---- transfer-race ----------------------------------------------------------

TEST(AnalyzeRace, D2hAnyMentionWithoutEdgeRaces) {
  const auto f = run("src/hybrid/x.cpp",
                     "void f(Stream& s) {\n"
                     "  copy_d2h_async(s, d_y.cview(), y.view());\n"
                     "  blas::trmm(y.view());\n"
                     "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "transfer-race");
  EXPECT_EQ(f[0].line, 3);
  EXPECT_NE(f[0].message.find("'y'"), std::string::npos);
  EXPECT_NE(f[0].message.find("d2h"), std::string::npos);
  EXPECT_NE(f[0].missing_edge.find("wait on an Event recorded at/after ticket 1"),
            std::string::npos)
      << "the fix-it edge mirrors the runtime checker's wording";
}

TEST(AnalyzeRace, H2dRacesHostWritesOnly) {
  // A live h2d only *reads* the host buffer: concurrent host reads are
  // fine, writes race — same asymmetry as the runtime checker.
  const auto f = run("src/hybrid/x.cpp",
                     "void f(Stream& s) {\n"
                     "  copy_h2d_async(s, y.cview(), d_y.view());\n"
                     "  double t = y(0, 0);\n"
                     "  y(0, 0) = 1.0;\n"
                     "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "transfer-race");
  EXPECT_EQ(f[0].line, 4);
  EXPECT_NE(f[0].message.find("write"), std::string::npos);
}

TEST(AnalyzeRace, EventWaitIsAnOrderingEdge) {
  EXPECT_TRUE(run("src/hybrid/x.cpp",
                  "void f(Stream& s) {\n"
                  "  copy_d2h_async(s, d_y.cview(), y.view());\n"
                  "  const Event done = s.record();\n"
                  "  done.wait();\n"
                  "  blas::trmm(y.view());\n"
                  "}\n")
                  .empty());
}

TEST(AnalyzeRace, EventRecordedBeforeTheTransferDoesNotCover) {
  const auto f = run("src/hybrid/x.cpp",
                     "void f(Stream& s) {\n"
                     "  const Event early = s.record();\n"
                     "  copy_d2h_async(s, d_y.cview(), y.view());\n"
                     "  early.wait();\n"
                     "  y(0, 0) = 1.0;\n"
                     "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "transfer-race");
  EXPECT_EQ(f[0].line, 5);
}

TEST(AnalyzeRace, SynchronizeAndSyncCopiesRetireEverything) {
  EXPECT_TRUE(run("src/hybrid/x.cpp",
                  "void f(Stream& s) {\n"
                  "  copy_d2h_async(s, d_y.cview(), y.view());\n"
                  "  s.synchronize();\n"
                  "  y(0, 0) = 1.0;\n"
                  "}\n")
                  .empty());
  EXPECT_TRUE(run("src/hybrid/x.cpp",
                  "void f(Stream& s) {\n"
                  "  copy_h2d_async(s, y.cview(), d_y.view());\n"
                  "  copy_d2h(s, d_z.cview(), z.view());\n"
                  "  y(0, 0) = 1.0;\n"
                  "}\n")
                  .empty())
      << "a synchronous copy is enqueue + synchronize";
}

TEST(AnalyzeRace, TransferAndKernelArgumentsAreNotHostAccesses) {
  // Mentioning the buffer inside another stream operation's argument
  // list is FIFO-ordered device work, not a host touch.
  EXPECT_TRUE(run("src/hybrid/x.cpp",
                  "void f(Stream& s) {\n"
                  "  copy_d2h_async(s, d_y.cview(), y.view());\n"
                  "  gemm_async(s, 1.0, y.cview(), d_b.cview(), 0.0, d_c.view());\n"
                  "  s.synchronize();\n"
                  "}\n")
                  .empty());
}

TEST(AnalyzeRace, FunctionBoundariesResetTheSymbolicStream) {
  // The pass is per-function: a transfer left pending at the end of one
  // function must not leak races into the next.
  EXPECT_TRUE(run("src/hybrid/x.cpp",
                  "void f(Stream& s) { copy_d2h_async(s, d_y.cview(), y.view()); }\n"
                  "void g(Stream& s) { y(0, 0) = 1.0; }\n")
                  .empty());
}

// ---- cross-stream-race ------------------------------------------------------

TEST(AnalyzeCross, WaitForOnARecordedEventIsAnOrderingEdge) {
  // The pool drivers' health-checked waits: wait_for's timeout path has
  // no edge, but every driver throws on it, so the continuation is
  // ordered exactly like wait().
  EXPECT_TRUE(run("src/ft/x.cpp",
                  "void f(Stream& sd) {\n"
                  "  copy_d2h_async(sd, d_y.cview(), y.view());\n"
                  "  const Event done = sd.record();\n"
                  "  if (!done.wait_for(timeout_)) throw device_lost{0};\n"
                  "  blas::trmm(y.view());\n"
                  "}\n")
                  .empty());
}

TEST(AnalyzeCross, EffectOnAnotherStreamsLiveTransferNeedsAWaitEventEdge) {
  const auto f = run("src/ft/x.cpp",
                     "void f(Stream& sd, Stream& sc) {\n"
                     "  copy_d2h_async(sd, d_g.cview(), stage_g_.view());\n"
                     "  const Event shard_done = sd.record();\n"
                     "  sc.enqueue(\"pool.reduce\", FTH_TASK_EFFECTS(FTH_READS(stage_g_)),\n"
                     "             [=] { g(); });\n"
                     "  sc.synchronize();\n"
                     "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "cross-stream-race");
  EXPECT_EQ(f[0].line, 4);
  EXPECT_NE(f[0].message.find("'stage_g_'"), std::string::npos);
  EXPECT_NE(f[0].message.find("'sd'"), std::string::npos);
  EXPECT_NE(f[0].missing_edge.find("wait_event"), std::string::npos);

  EXPECT_TRUE(run("src/ft/x.cpp",
                  "void f(Stream& sd, Stream& sc) {\n"
                  "  copy_d2h_async(sd, d_g.cview(), stage_g_.view());\n"
                  "  const Event shard_done = sd.record();\n"
                  "  sc.wait_event(shard_done);\n"
                  "  sc.enqueue(\"pool.reduce\", FTH_TASK_EFFECTS(FTH_READS(stage_g_)),\n"
                  "             [=] { g(); });\n"
                  "  sc.synchronize();\n"
                  "}\n")
                  .empty())
      << "the wait_event edge carries the producer's marker into the consumer";
}

TEST(AnalyzeCross, SameStreamPairsAreFifoOrdered) {
  EXPECT_TRUE(run("src/ft/x.cpp",
                  "void f(Stream& sd) {\n"
                  "  copy_d2h_async(sd, d_g.cview(), stage_g_.view());\n"
                  "  sd.enqueue(\"pool.reduce\", FTH_TASK_EFFECTS(FTH_READS(stage_g_)),\n"
                  "             [=] { g(); });\n"
                  "  sd.synchronize();\n"
                  "}\n")
                  .empty())
      << "a task behind its own stream's transfer needs no edge";
}

TEST(AnalyzeCross, AnEventRecordedBeforeTheTransferDoesNotCover) {
  const auto f = run("src/ft/x.cpp",
                     "void f(Stream& sd, Stream& sc) {\n"
                     "  const Event early = sd.record();\n"
                     "  copy_d2h_async(sd, d_g.cview(), stage_g_.view());\n"
                     "  sc.wait_event(early);\n"
                     "  sc.enqueue(\"pool.reduce\", FTH_TASK_EFFECTS(FTH_READS(stage_g_)),\n"
                     "             [=] { g(); });\n"
                     "  sc.synchronize();\n"
                     "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "cross-stream-race");
  EXPECT_EQ(f[0].line, 5);
}

// ---- function summaries (DESIGN.md §11.3a) ----------------------------------

TEST(AnalyzeSummaries, HelperTransfersSpliceIntoTheCallerWithArgSubstitution) {
  // The helper starts a d2h into its *parameter*; the caller touches the
  // buffer it actually passed. v1 skipped the call and saw nothing.
  const auto f = run("src/ft/x.cpp",
                     "void ship(Stream& s, MatrixView<double> host) {\n"
                     "  copy_d2h_async(s, d_y.cview(), host);\n"
                     "}\n"
                     "void f(Stream& s) {\n"
                     "  ship(s, y_host_.view());\n"
                     "  y_host_(0, 0) = 1.0;\n"
                     "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "transfer-race");
  EXPECT_EQ(f[0].line, 6);
  EXPECT_NE(f[0].message.find("'y_host_'"), std::string::npos)
      << "the callee's parameter root is substituted with the call-site argument";
  EXPECT_NE(f[0].message.find("line 2"), std::string::npos)
      << "the racing transfer is the one inside the helper";
}

TEST(AnalyzeSummaries, HelperWaitsRetireTheCallersTransfers) {
  EXPECT_TRUE(run("src/ft/x.cpp",
                  "void drain(Stream& s) { s.synchronize(); }\n"
                  "void f(Stream& s) {\n"
                  "  copy_d2h_async(s, d_y.cview(), y_host_.view());\n"
                  "  drain(s);\n"
                  "  y_host_(0, 0) = 1.0;\n"
                  "}\n")
                  .empty())
      << "a synchronize inside a helper is an ordering edge at the call site";
}

TEST(AnalyzeSummaries, CalleeInternalPairsAreNotReReportedAtTheCallSite) {
  // The helper races against ITSELF; the defect is reported once, at
  // the line inside the helper, not again for every call site.
  const auto f = run("src/ft/x.cpp",
                     "void bad(Stream& s) {\n"
                     "  copy_d2h_async(s, d_y.cview(), y_host_.view());\n"
                     "  y_host_(0, 0) = 1.0;\n"
                     "}\n"
                     "void f(Stream& s) {\n"
                     "  bad(s);\n"
                     "  s.synchronize();\n"
                     "  bad(s);\n"
                     "  s.synchronize();\n"
                     "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 3);
}

TEST(AnalyzeSummaries, ACrossCallRaceIsStillReportedAtTheSecondCallSite) {
  // ...but a SECOND call whose internal touch races the FIRST call's
  // still-live transfer is a genuine inter-call defect, anchored on the
  // call site that trips it.
  const auto f = run("src/ft/x.cpp",
                     "void bad(Stream& s) {\n"
                     "  copy_d2h_async(s, d_y.cview(), y_host_.view());\n"
                     "  y_host_(0, 0) = 1.0;\n"
                     "}\n"
                     "void f(Stream& s) {\n"
                     "  bad(s);\n"
                     "  bad(s);\n"
                     "}\n");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].line, 3) << "the internal pair, once";
  EXPECT_EQ(f[1].line, 7) << "call #2's touch against call #1's transfer";
}

TEST(AnalyzeSummaries, ConditionallyEnqueuingHelperSummarizesAsTheMayUnion) {
  // The branch may or may not run; the summary keeps the transfer, which
  // is the conservative direction for the race rules.
  const auto f = run("src/ft/x.cpp",
                     "void maybe_ship(Stream& s, int flag) {\n"
                     "  if (flag != 0) copy_d2h_async(s, d_y.cview(), y_host_.view());\n"
                     "}\n"
                     "void f(Stream& s) {\n"
                     "  maybe_ship(s, 1);\n"
                     "  y_host_(0, 0) = 1.0;\n"
                     "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "transfer-race");
  EXPECT_EQ(f[0].line, 6);
}

TEST(AnalyzeSummaries, SplicedCallSitesAccumulateCalleeStats) {
  // The Stats undercount fix: two call sites of a helper with one
  // transfer contribute two transfers on top of the definition's own.
  Stats stats;
  EXPECT_TRUE(run("src/ft/x.cpp",
                  "void ship(Stream& s) {\n"
                  "  copy_d2h_async(s, d_y.cview(), y_host_.view());\n"
                  "  s.synchronize();\n"
                  "}\n"
                  "void f(Stream& s) {\n"
                  "  ship(s);\n"
                  "  ship(s);\n"
                  "}\n",
                  &stats)
                  .empty());
  EXPECT_EQ(stats.calls, 2u);
  EXPECT_EQ(stats.transfers, 3u) << "once per definition + once per call site";
  EXPECT_EQ(stats.syncs, 3u);
}

// ---- loop-carried happens-before (DESIGN.md §11.3b) -------------------------

TEST(AnalyzeLoop, ATransferInFlightAcrossTheBackEdgeRacesTheNextIteration) {
  const auto f = run("src/hybrid/x.cpp",
                     "void f(Stream& s) {\n"
                     "  for (index_t i = 0; i < n; ++i) {\n"
                     "    y(0, 0) = 1.0;\n"
                     "    copy_d2h_async(s, d_y.cview(), y.view());\n"
                     "  }\n"
                     "  s.synchronize();\n"
                     "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "loop-carried-race");
  EXPECT_EQ(f[0].line, 3);
  EXPECT_NE(f[0].message.find("line 4"), std::string::npos)
      << "the message names the back-edge source (the transfer's enqueue line)";
  EXPECT_NE(f[0].message.find("previous loop iteration"), std::string::npos);
}

TEST(AnalyzeLoop, AnEventRecordedInIterationIAndWaitedInIPlusOneIsClean) {
  // The lookahead pattern: the wait at the top of the body retires the
  // transfer the BOTTOM of the previous iteration started.
  EXPECT_TRUE(run("src/hybrid/x.cpp",
                  "void f(Stream& s) {\n"
                  "  copy_d2h_async(s, d_y.cview(), y.view());\n"
                  "  Event ready = s.record();\n"
                  "  for (index_t i = 0; i < n; ++i) {\n"
                  "    ready.wait();\n"
                  "    y(0, 0) = 1.0;\n"
                  "    copy_d2h_async(s, d_y.cview(), y.view());\n"
                  "    ready = s.record();\n"
                  "  }\n"
                  "  s.synchronize();\n"
                  "}\n")
                  .empty());
}

TEST(AnalyzeLoop, APreLoopTransferRetiredInsideTheLoopIsClean) {
  EXPECT_TRUE(run("src/hybrid/x.cpp",
                  "void f(Stream& s) {\n"
                  "  copy_d2h_async(s, d_y.cview(), y.view());\n"
                  "  const Event done = s.record();\n"
                  "  for (index_t i = 0; i < n; ++i) {\n"
                  "    done.wait();\n"
                  "    y(0, 0) = 1.0;\n"
                  "  }\n"
                  "}\n")
                  .empty());
}

TEST(AnalyzeLoop, ABoundedWaitForIsACrossIterationEdgeToo) {
  // wait_for's timeout path has no edge, but every driver throws on it,
  // so the straight-line continuation is ordered — in loops as well.
  EXPECT_TRUE(run("src/ft/x.cpp",
                  "void f(Stream& s) {\n"
                  "  copy_d2h_async(s, d_y.cview(), y.view());\n"
                  "  Event ready = s.record();\n"
                  "  for (index_t i = 0; i < n; ++i) {\n"
                  "    if (!ready.wait_for(timeout_)) throw device_lost{0};\n"
                  "    y(0, 0) = 1.0;\n"
                  "    copy_d2h_async(s, d_y.cview(), y.view());\n"
                  "    ready = s.record();\n"
                  "  }\n"
                  "  s.synchronize();\n"
                  "}\n")
                  .empty());
}

TEST(AnalyzeLoop, ASelfSynchronizingBodyStaysCleanAndCountsOnce) {
  // The v1 drivers' shape: the sync at the bottom empties the live set,
  // so nothing crosses the back-edge; the second symbolic iteration
  // must not double-count stats.
  Stats stats;
  EXPECT_TRUE(run("src/hybrid/x.cpp",
                  "void f(Stream& s) {\n"
                  "  for (index_t i = 0; i < n; ++i) {\n"
                  "    copy_d2h_async(s, d_y.cview(), y.view());\n"
                  "    s.synchronize();\n"
                  "    y(0, 0) = 1.0;\n"
                  "  }\n"
                  "}\n",
                  &stats)
                  .empty());
  EXPECT_EQ(stats.transfers, 1u);
  EXPECT_EQ(stats.syncs, 1u);
}

TEST(AnalyzeLoop, ACarriedTransferRacesAHelperTouchAtTheCallSite) {
  // Loop-carried + summaries composed: the touch lives in a helper, the
  // transfer crosses the back-edge; the finding anchors on the call.
  const auto f = run("src/ft/x.cpp",
                     "void factor(MatrixView<double> panel) { panel(0, 0) = 1.0; }\n"
                     "void f(Stream& s) {\n"
                     "  for (index_t i = 0; i < n; ++i) {\n"
                     "    factor(y_host_.view());\n"
                     "    copy_d2h_async(s, d_y.cview(), y_host_.view());\n"
                     "  }\n"
                     "  s.synchronize();\n"
                     "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "loop-carried-race");
  EXPECT_EQ(f[0].line, 4);
}

// ---- unbounded-pool-wait ----------------------------------------------------

TEST(AnalyzePoolWait, PlainWaitOnAPoolMembersEventHangsOnALostDevice) {
  const auto f = run("src/ft/x.cpp",
                     "void f(DevicePool& pool) {\n"
                     "  Stream& sd = pool.stream(0);\n"
                     "  copy_d2h_async(sd, d_y.cview(), y.view());\n"
                     "  const Event done = sd.record();\n"
                     "  done.wait();\n"
                     "  y(0, 0) = 1.0;\n"
                     "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "unbounded-pool-wait");
  EXPECT_EQ(f[0].line, 5);
  EXPECT_NE(f[0].missing_edge.find("wait_for"), std::string::npos);

  EXPECT_TRUE(run("src/ft/x.cpp",
                  "void f(DevicePool& pool) {\n"
                  "  Stream& sd = pool.stream(0);\n"
                  "  copy_d2h_async(sd, d_y.cview(), y.view());\n"
                  "  const Event done = sd.record();\n"
                  "  if (!done.wait_for(timeout_)) throw device_lost{0};\n"
                  "  y(0, 0) = 1.0;\n"
                  "}\n")
                  .empty())
      << "the health-checked bounded wait is the sanctioned spelling";
}

TEST(AnalyzePoolWait, PlainWaitOnASingleDeviceStreamStaysLegal) {
  EXPECT_TRUE(run("src/hybrid/x.cpp",
                  "void f(Stream& s) {\n"
                  "  copy_d2h_async(s, d_y.cview(), y.view());\n"
                  "  const Event done = s.record();\n"
                  "  done.wait();\n"
                  "  y(0, 0) = 1.0;\n"
                  "}\n")
                  .empty())
      << "only DevicePool member streams can be lost";
}

// ---- stale-checksum-write ---------------------------------------------------

TEST(AnalyzeStaleChk, AWriteOverProtectedStorageNeedsADominatingReencode) {
  const auto f = run("src/ft/x.cpp",
                     "void f(Stream& s_) {\n"
                     "  s_.enqueue(\"ft.couple\", FTH_TASK_EFFECTS(FTH_WRITES(d_chke_.view())),\n"
                     "             [=] { g(); });\n"
                     "  s_.synchronize();\n"
                     "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "stale-checksum-write");
  EXPECT_EQ(f[0].line, 2);
  EXPECT_NE(f[0].message.find("'d_chke_'"), std::string::npos);
  EXPECT_NE(f[0].missing_edge.find("re-encode"), std::string::npos);
}

TEST(AnalyzeStaleChk, AnH2dRefreshFromHostTruthSanctionsTheWrite) {
  EXPECT_TRUE(run("src/ft/x.cpp",
                  "void f(Stream& s_) {\n"
                  "  copy_h2d_async(s_, seg.cview(), d_chke_.block(i, 0, ib, 1));\n"
                  "  s_.enqueue(\"ft.couple\", FTH_TASK_EFFECTS(FTH_WRITES(d_chke_.view())),\n"
                  "             [=] { g(); });\n"
                  "  s_.synchronize();\n"
                  "}\n")
                  .empty())
      << "the sytrd/gebrd couple-task pattern: re-encode then adjust";
}

TEST(AnalyzeStaleChk, AVerifyEndsTheSanction) {
  // After the next checksum comparison the old re-encode no longer
  // dominates: the write would drift from what verify just vouched for.
  const auto f = run("src/ft/x.cpp",
                     "void f(Stream& s_) {\n"
                     "  copy_h2d_async(s_, seg.cview(), d_chke_.block(i, 0, ib, 1));\n"
                     "  verify_checksums();\n"
                     "  s_.enqueue(\"ft.couple\", FTH_TASK_EFFECTS(FTH_WRITES(d_chke_.view())),\n"
                     "             [=] { g(); });\n"
                     "  s_.synchronize();\n"
                     "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "stale-checksum-write");
  EXPECT_EQ(f[0].line, 4);
}

TEST(AnalyzeStaleChk, AnEncodeCallSanctionsEverythingUntilTheNextVerify) {
  EXPECT_TRUE(run("src/ft/x.cpp",
                  "void f(Stream& s_) {\n"
                  "  encode();\n"
                  "  s_.enqueue(\"ft.couple\", FTH_TASK_EFFECTS(FTH_WRITES(d_chke_.view())),\n"
                  "             [=] { g(); });\n"
                  "  s_.synchronize();\n"
                  "}\n")
                  .empty());
}

TEST(AnalyzeStaleChk, ReadsOfProtectedStorageAreAlwaysLegal) {
  EXPECT_TRUE(run("src/ft/x.cpp",
                  "void f(Stream& s_) {\n"
                  "  s_.enqueue(\"ft.readback\", FTH_TASK_EFFECTS(FTH_READS(d_chke_.view())),\n"
                  "             [=] { g(); });\n"
                  "  s_.synchronize();\n"
                  "}\n")
                  .empty())
      << "detection reads the maintained code; only writes need a re-encode";
}

// ---- stream-not-idle --------------------------------------------------------

TEST(AnalyzeIdle, HostViewRequiresADrainedStream) {
  const auto f = run("src/hybrid/x.cpp",
                     "void f(Stream& s) {\n"
                     "  s.enqueue(\"dev.k\", FTH_TASK_EFFECTS(FTH_WRITES(d_y)),\n"
                     "            [=] { d_y.in_task()(0, 0) = 1.0; });\n"
                     "  auto h = host_view(d_y.view(), s);\n"
                     "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "stream-not-idle");
  EXPECT_EQ(f[0].line, 4);
  EXPECT_NE(f[0].missing_edge.find("synchronize()"), std::string::npos);

  EXPECT_TRUE(run("src/hybrid/x.cpp",
                  "void f(Stream& s) {\n"
                  "  s.enqueue(\"dev.k\", FTH_TASK_EFFECTS(), [=] { g(); });\n"
                  "  s.synchronize();\n"
                  "  auto h = host_view(d_y.view(), s);\n"
                  "}\n")
                  .empty());
}

// ---- in-task-context --------------------------------------------------------

TEST(AnalyzeInTask, UnwrapOutsideAnEnqueuedLambdaIsFlagged) {
  const auto f = run("src/ft/x.cpp", "void f() { auto h = dv.in_task(); }\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "in-task-context");
  // Inside the enqueued task lambda it is the sanctioned unwrap (the
  // AnalyzeIdle seed above already exercises that path staying quiet).
}

// ---- undeclared-task --------------------------------------------------------

TEST(AnalyzeEffects, TasksInTheDisciplinedLayersMustDeclare) {
  const std::string bare = "void f(Stream& s) { s.enqueue(\"ft.x\", [=] { g(); }); }\n";
  const auto f = run("src/ft/x.cpp", bare);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "undeclared-task");
  EXPECT_NE(f[0].message.find("\"ft.x\""), std::string::npos);
  EXPECT_NE(f[0].message.find("FTH_TASK_EFFECTS"), std::string::npos);

  EXPECT_TRUE(run("src/ft/x.cpp",
                  "void f(Stream& s) {\n"
                  "  s.enqueue(\"ft.x\", FTH_TASK_EFFECTS(FTH_READS(a)), [=] { g(); });\n"
                  "}\n")
                  .empty());
  EXPECT_TRUE(run("src/hybrid/stream.hpp", bare).empty())
      << "the label-only forwarder in stream.hpp is the sanctioned hatch";
  EXPECT_TRUE(run("bench/x.cpp", bare).empty())
      << "the declared-effect rule is scoped to src/hybrid + src/ft";
}

// ---- chkrow-reencode --------------------------------------------------------

TEST(AnalyzeChkrow, ChecksumRowWritesMustComeFromReencodeOrCheckpoint) {
  const auto f = run(
      "src/ft/x.cpp",
      "void f(Stream& s_) {\n"
      "  copy_h2d_async(s_, a_.block(0, 0, 1, ib), d_e_.block(n_, i, 1, ib));\n"
      "  s_.synchronize();\n"
      "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "chkrow-reencode");
  EXPECT_EQ(f[0].line, 2);
  EXPECT_NE(f[0].message.find("new_chkrow_"), std::string::npos);

  for (const char* good : {"new_chkrow_", "ckpt_chkrow_"}) {
    EXPECT_TRUE(run("src/ft/x.cpp",
                    "void f(Stream& s_) {\n  copy_h2d_async(s_, " + std::string(good) +
                        ".block(0, 0, 1, ib), d_e_.block(n_, i, 1, ib));\n"
                        "  s_.synchronize();\n}\n")
                    .empty())
        << good;
  }
}

// ---- the analysis reads code, not text --------------------------------------

TEST(AnalyzeLexing, CommentsStringsAndDeclarationsAreNotStreamOps) {
  Stats stats;
  EXPECT_TRUE(run("src/hybrid/x.cpp",
                  "// copy_d2h_async(s, d_y.cview(), y.view());\n"
                  "void copy_d2h_async(Stream& s, DMatrixView<const double> dev,\n"
                  "                    MatrixView<double> host);\n"
                  "void f(Stream& s) {\n"
                  "  const char* doc = \"copy_d2h_async(s, d.cview(), y.view())\";\n"
                  "  auto re = R\"(then y_upper_ready.wait(); fires)\";\n"
                  "  y(0, 0) = 1.0;\n"
                  "}\n",
                  &stats)
                  .empty());
  EXPECT_EQ(stats.transfers, 0u) << "neither the comment, the string, nor the "
                                    "declaration is a transfer call";
  EXPECT_EQ(stats.functions, 1u);
}

// ---- report format ----------------------------------------------------------

TEST(AnalyzeFormat, CarriesFileLineRuleAndRequiredEdge) {
  const auto f = run("src/hybrid/x.cpp",
                     "void f(Stream& s) {\n"
                     "  copy_d2h_async(s, d_y.cview(), y.view());\n"
                     "  y(0, 0) = 1.0;\n"
                     "}\n");
  ASSERT_EQ(f.size(), 1u);
  const std::string s = format(f[0]);
  EXPECT_NE(s.find("src/hybrid/x.cpp:3"), std::string::npos);
  EXPECT_NE(s.find("[transfer-race]"), std::string::npos);
  EXPECT_NE(s.find("required: wait on an Event"), std::string::npos);
}

// ---- seeded regressions on the real drivers ---------------------------------

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string repo_file(const std::string& rel) {
  const std::string content = slurp(fs::path(FTH_REPO_ROOT) / rel);
  EXPECT_FALSE(content.empty()) << rel;
  return content;
}

/// Delete the first occurrence of `needle` (the newline stays, so every
/// later line number is preserved).
std::string without(std::string content, const std::string& needle) {
  const std::size_t pos = content.find(needle);
  EXPECT_NE(pos, std::string::npos) << "seed not found: " << needle;
  if (pos != std::string::npos) content.erase(pos, needle.size());
  return content;
}

struct SeededEdge {
  const char* file;        ///< repo-relative driver source
  const char* deleted;     ///< the one ordering edge removed
  const char* rule;        ///< expected finding
  int line;                ///< expected access site
  const char* mentions;    ///< substring the message must carry
  std::size_t findings;    ///< total findings the deletion produces
};

// One entry per U2-critical edge in the hybrid and FT drivers. The line
// numbers are the actual access sites in the current sources; if a
// driver is edited these update with it (the clean-tree golden below
// catches drift the other way).
const SeededEdge kSeeds[] = {
    {"src/hybrid/hybrid_gehrd.cpp", "y_upper_ready.wait();", "transfer-race", 130, "'y_host'",
     1},
    {"src/hybrid/hybrid_gebrd.cpp", "operands_shipped.wait();", "transfer-race", 131, "'a'", 1},
    // The only synchronize() left in the de-over-synchronized driver is
    // the hook-branch drain; deleting it breaks the host_view unwrap.
    {"src/hybrid/hybrid_sytrd.cpp", "s.synchronize();", "stream-not-idle", 118, "host_view", 1},
    {"src/ft/ft_gehrd.cpp", "y_upper_ready.wait();", "transfer-race", 373, "'y_host_'", 1},
    // ft_gebrd: the wait also covers the fault-injection helper's host
    // write of a_, so its deletion surfaces that second race (at the
    // inject_at_boundary splice) alongside the pivot-restore one.
    {"src/ft/ft_gebrd.cpp", "operands_shipped.wait();", "transfer-race", 356, "'a_'", 2},
    // The one inter-device edge of the pool driver's Y-top reduction:
    // without it the collector task reads stage_g_ while the producers'
    // d2h copies are still in flight (ISSUE 7 / DESIGN.md §13).
    {"src/ft/pool_gehrd.cpp", "sc.wait_event(shard_done);", "cross-stream-race", 354,
     "'stage_g_'", 1},
};

TEST(AnalyzeSeeded, DeletingEachOrderingEdgeIsCaughtAtTheAccessSite) {
  for (const auto& seed : kSeeds) {
    const auto f = run(seed.file, without(repo_file(seed.file), seed.deleted));
    ASSERT_EQ(f.size(), seed.findings) << seed.file << " minus `" << seed.deleted << "`";
    const Finding* hit = nullptr;
    for (const auto& x : f)
      if (x.line == seed.line) hit = &x;
    ASSERT_NE(hit, nullptr) << seed.file << ": nothing anchored at line " << seed.line;
    EXPECT_EQ(hit->rule, seed.rule) << seed.file;
    EXPECT_EQ(hit->file, seed.file);
    EXPECT_NE(hit->message.find(seed.mentions), std::string::npos)
        << seed.file << ": " << hit->message;
    EXPECT_FALSE(hit->missing_edge.empty())
        << "every discipline finding names the edge that would fix it";
  }
}

TEST(AnalyzeSeeded, RetargetingTheChecksumRowReencodeIsCaught) {
  // The §7 gotcha, made structural: sourcing the checksum-row h2d from
  // the (stale) trailing matrix instead of the re-encoded row.
  const auto f = run("src/ft/ft_gehrd.cpp",
                     [] {
                       std::string c = repo_file("src/ft/ft_gehrd.cpp");
                       const std::string from = "MatrixView<const double>(new_chkrow_";
                       const std::size_t pos = c.find(from);
                       EXPECT_NE(pos, std::string::npos);
                       c.replace(pos, from.size(), "MatrixView<const double>(scratch_");
                       return c;
                     }());
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "chkrow-reencode");
}

TEST(AnalyzeSeeded, StrippingATaskEffectDeclarationIsCaught) {
  const auto f = run("src/hybrid/dev_blas.cpp",
                     without(repo_file("src/hybrid/dev_blas.cpp"), "FTH_TASK_EFFECTS"));
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "undeclared-task");
}

// ---- seeded regressions on the lookahead fixture ----------------------------
//
// examples/lookahead_pipeline.cpp is the shape ROADMAP item 1 will take:
// a d2h in flight across the loop back-edge, helper-factored pipeline
// stages, a cross-stream wait_event edge, pool-member health waits, and
// a checksum re-encode dominating a protected write. Each test deletes
// (or rewrites) exactly one of its ordering edges in memory and asserts
// the expected rule at the exact line.

const char* const kFixture = "examples/lookahead_pipeline.cpp";

/// Replace the first occurrence of `from` with `to` (both single-line,
/// so every line number is preserved).
std::string replaced(std::string content, const std::string& from, const std::string& to) {
  const std::size_t pos = content.find(from);
  EXPECT_NE(pos, std::string::npos) << "seed not found: " << from;
  if (pos != std::string::npos) content.replace(pos, from.size(), to);
  return content;
}

bool has_finding(const std::vector<Finding>& f, const char* rule, int line) {
  for (const auto& x : f)
    if (x.rule == rule && x.line == line) return true;
  return false;
}

TEST(AnalyzeFixture, TheCleanLookaheadPipelineIsProvenSafe) {
  EXPECT_TRUE(run(kFixture, repo_file(kFixture)).empty())
      << "the fixture is the clean spelling of the item-1 lookahead shape";
}

TEST(AnalyzeFixture, DeletingTheCrossIterationWaitIsALoopCarriedRace) {
  const auto f = run(
      kFixture,
      without(repo_file(kFixture),
              "if (!panel_ready_.wait_for(kHealthTimeout)) throw std::runtime_error(\"device "
              "0 lost\");"));
  // Both pipeline edges through that wait break: the priming transfer
  // (straight-line) and the back-edge one (loop-carried). Each is
  // reported once, at the factor_panel call that touches the panel.
  ASSERT_EQ(f.size(), 2u);
  EXPECT_TRUE(has_finding(f, "loop-carried-race", 80));
  EXPECT_TRUE(has_finding(f, "transfer-race", 80));
  for (const auto& x : f) {
    EXPECT_NE(x.message.find("'panel_host_'"), std::string::npos);
    EXPECT_NE(x.message.find("line 130"), std::string::npos)
        << "the racing transfer is the helper's d2h, seen through its summary";
  }
}

TEST(AnalyzeFixture, DeletingTheLookaheadRecordBreaksTheSameEdge) {
  // Without the record there is no marker for the top-of-loop wait to
  // retire through — the wait becomes a no-op on an unbound Event.
  const auto f = run(kFixture, without(repo_file(kFixture), "panel_ready_ = sc.record();"));
  EXPECT_TRUE(has_finding(f, "loop-carried-race", 80));
}

TEST(AnalyzeFixture, DeletingTheWaitEventEdgeIsACrossStreamRace) {
  const auto f = run(kFixture, without(repo_file(kFixture), "sc.wait_event(shard_done);"));
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "cross-stream-race");
  EXPECT_EQ(f[0].line, 152);
  EXPECT_NE(f[0].message.find("'stage_host_'"), std::string::npos);
  EXPECT_NE(f[0].missing_edge.find("wait_event"), std::string::npos);
}

TEST(AnalyzeFixture, DeletingTheChecksumReadbackWaitIsATransferRace) {
  const auto f = run(
      kFixture,
      without(repo_file(kFixture),
              "if (!chk_ready.wait_for(kHealthTimeout)) throw std::runtime_error(\"device 0 "
              "lost\");"));
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "transfer-race");
  EXPECT_EQ(f[0].line, 167);
  EXPECT_NE(f[0].message.find("'chk_host_'"), std::string::npos);
}

TEST(AnalyzeFixture, SwappingAPoolWaitForForPlainWaitIsCaught) {
  const auto f = run(kFixture,
                     replaced(repo_file(kFixture),
                              "if (!panel_ready_.wait_for(kHealthTimeout)) throw "
                              "std::runtime_error(\"device 0 lost\");",
                              "panel_ready_.wait();"));
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "unbounded-pool-wait");
  EXPECT_EQ(f[0].line, 78);
  EXPECT_NE(f[0].message.find("'panel_ready_'"), std::string::npos);
}

TEST(AnalyzeFixture, RemovingTheReencodeBeforeTheCoupleWriteIsCaught) {
  const auto f = run(
      kFixture,
      without(repo_file(kFixture),
              "copy_h2d_async(sc, chk_seg_.cview(), d_chk_.block(0, i, 1, nb_));"));
  // Reported in the helper's own body AND at the run()-loop call site
  // the summary splice anchors on — the write is unsanctioned in both
  // timelines.
  ASSERT_EQ(f.size(), 2u);
  EXPECT_TRUE(has_finding(f, "stale-checksum-write", 187));
  EXPECT_TRUE(has_finding(f, "stale-checksum-write", 92));
  for (const auto& x : f) EXPECT_NE(x.message.find("'d_chk_'"), std::string::npos);
}

// ---- SARIF ------------------------------------------------------------------

TEST(AnalyzeSarif, FindingsRenderAsSarif210WithTheRuleTable) {
  const auto f = run("src/hybrid/x.cpp",
                     "void f(Stream& s) {\n"
                     "  copy_d2h_async(s, d_y.cview(), y.view());\n"
                     "  y(0, 0) = 1.0;\n"
                     "}\n");
  ASSERT_EQ(f.size(), 1u);
  const std::string sarif = to_sarif(f);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"transfer-race\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/hybrid/x.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 3"), std::string::npos);
  EXPECT_NE(sarif.find("required:"), std::string::npos)
      << "the fix-it edge is folded into the result message";
  // The full §11.4 rule table ships in every log, findings or not.
  for (const char* rule :
       {"loop-carried-race", "unbounded-pool-wait", "stale-checksum-write", "chkrow-reencode"})
    EXPECT_NE(sarif.find(std::string("\"id\": \"") + rule + "\""), std::string::npos) << rule;
}

TEST(AnalyzeSarif, AnEmptyRunIsAWellFormedLog) {
  const std::string sarif = to_sarif({});
  EXPECT_NE(sarif.find("\"results\": [\n"), std::string::npos);
  EXPECT_EQ(sarif.find("\"ruleId\""), std::string::npos);
}

// ---- the performance plane (DESIGN.md §11.5) --------------------------------
//
// Same engine, perf switch on. Every rule gets the kSeeds treatment:
// a synthetic seed it must fire on at the exact line, the idiomatic
// spelling it must stay quiet on, and a mutation of the REAL sources
// re-introducing the over-synchronization this PR removed.

std::vector<Finding> run_perf(const std::string& path, const std::string& content) {
  return analyze_source(path, content, nullptr, Options{.perf = true});
}

bool has_perf(const std::vector<Finding>& f, const char* rule, int line) {
  for (const auto& x : f)
    if (x.perf && x.rule == rule && x.line == line) return true;
  return false;
}

std::size_t perf_count(const std::vector<Finding>& f) {
  std::size_t n = 0;
  for (const auto& x : f) n += x.perf ? 1 : 0;
  return n;
}

TEST(AnalyzePerf, OffByDefaultAndScopedToTheOverlapSurfaces) {
  // The record precedes the transfer, so the synchronize() is the d2h's
  // fetch-join (never coarse) and the wait's marker is already
  // host-ordered: exactly one advisory, the redundant wait.
  const std::string seed =
      "void f(Stream& s) {\n"
      "  const Event done = s.record();\n"
      "  copy_d2h_async(s, d_y.cview(), y.view());\n"
      "  s.synchronize();\n"
      "  done.wait();\n"
      "  y(0, 0) = 1.0;\n"
      "}\n";
  EXPECT_TRUE(run("src/ft/x.cpp", seed).empty())
      << "the default Options never even compute the plane";
  EXPECT_TRUE(run_perf("bench/x.cpp", seed).empty())
      << "bench/ is correctness-scoped but not an overlap surface";
  EXPECT_TRUE(run_perf("src/hybrid/stream.cpp", seed).empty())
      << "only the hybrid_* drivers opt into the perf plane under src/hybrid/";
  const auto f = run_perf("src/ft/x.cpp", seed);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_TRUE(f[0].perf);
  EXPECT_FALSE(f[0].expected);
}

TEST(AnalyzePerfRedundantWait, AWaitAlreadyHostOrderedOnEveryPathFires) {
  const auto f = run_perf("src/ft/x.cpp",
                          "void f(Stream& s) {\n"
                          "  const Event done = s.record();\n"
                          "  copy_d2h_async(s, d_y.cview(), y.view());\n"
                          "  s.synchronize();\n"
                          "  done.wait();\n"
                          "  y(0, 0) = 1.0;\n"
                          "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "redundant-wait");
  EXPECT_EQ(f[0].line, 5);
  EXPECT_TRUE(f[0].perf);
  EXPECT_NE(f[0].message.find("retires nothing"), std::string::npos);
  EXPECT_NE(f[0].missing_edge.find("drop the wait"), std::string::npos)
      << "perf findings carry the fix-it in the missing_edge slot";

  EXPECT_TRUE(run_perf("src/ft/x.cpp",
                       "void f(Stream& s) {\n"
                       "  copy_d2h_async(s, d_y.cview(), y.view());\n"
                       "  const Event done = s.record();\n"
                       "  done.wait();\n"
                       "  y(0, 0) = 1.0;\n"
                       "}\n")
                  .empty())
      << "a wait that is the one retiring edge is load-bearing, not redundant";
}

TEST(AnalyzePerfRedundantWait, ASameStreamWaitEventFires) {
  const auto f = run_perf("src/ft/x.cpp",
                          "void f(Stream& sc) {\n"
                          "  const Event e = sc.record();\n"
                          "  sc.wait_event(e);\n"
                          "  sc.synchronize();\n"
                          "}\n");
  ASSERT_TRUE(has_perf(f, "redundant-wait", 3));
  EXPECT_TRUE(run_perf("src/ft/x.cpp",
                       "void f(Stream& sd, Stream& sc) {\n"
                       "  copy_d2h_async(sd, d_g.cview(), stage_g_.view());\n"
                       "  const Event e = sd.record();\n"
                       "  sc.wait_event(e);\n"
                       "  sc.enqueue(\"pool.reduce\", FTH_TASK_EFFECTS(FTH_READS(stage_g_)),\n"
                       "             [=] { g(stage_g_); });\n"
                       "}\n")
                  .empty())
      << "a genuine cross-stream edge is justified, never redundant";
}

TEST(AnalyzePerfCoarseSync, ABarrierWiderThanTheNewestObligationFires) {
  const auto f = run_perf("src/hybrid/hybrid_x.cpp",
                          "void f(Stream& s) {\n"
                          "  copy_h2d_async(s, y.cview(), d_y.view());\n"
                          "  gemm_async(s, 1.0, d_a.cview(), d_b.cview(), 0.0, d_c.view());\n"
                          "  s.synchronize();\n"
                          "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "coarse-synchronize");
  EXPECT_EQ(f[0].line, 4);
  EXPECT_NE(f[0].message.find("line 2"), std::string::npos)
      << "the message names the transfer that is the real obligation";
  EXPECT_NE(f[0].missing_edge.find("record an Event"), std::string::npos)
      << "the fix-it names the narrower record()/wait pair";
}

TEST(AnalyzePerfCoarseSync, AHostViewInTheSameScopeJustifiesTheDrain) {
  EXPECT_TRUE(run_perf("src/hybrid/hybrid_x.cpp",
                       "void f(Stream& s) {\n"
                       "  copy_h2d_async(s, y.cview(), d_y.view());\n"
                       "  gemm_async(s, 1.0, d_a.cview(), d_b.cview(), 0.0, d_c.view());\n"
                       "  s.synchronize();\n"
                       "  auto h = host_view(d_y.view(), s);\n"
                       "}\n")
                  .empty())
      << "drain-before-unwrap is the discipline, not over-synchronization";
}

TEST(AnalyzePerfCoarseSync, AHostViewInsideABraceInitializerIsTheSameScope) {
  // The hybrid drivers' hook branch: the unwrap sits inside the
  // IterationHookContext{...} designated-initializer braces. Those are
  // expression braces, not a statement scope — the justification must
  // see through them (they bit the first rollout of the drivers' fix).
  EXPECT_TRUE(run_perf("src/hybrid/hybrid_x.cpp",
                       "void f(Stream& s, const IterationHook& hook) {\n"
                       "  copy_h2d_async(s, y.cview(), d_y.view());\n"
                       "  gemm_async(s, 1.0, d_a.cview(), d_b.cview(), 0.0, d_c.view());\n"
                       "  if (hook) {\n"
                       "    s.synchronize();\n"
                       "    hook(IterationHookContext{.dev_a = host_view(d_y.view(), s)});\n"
                       "  }\n"
                       "}\n")
                  .empty());
}

TEST(AnalyzePerfCoarseSync, ABarrierOutsideTheConsumingBranchStillFires) {
  const auto f = run_perf("src/hybrid/hybrid_x.cpp",
                          "void f(Stream& s, const IterationHook& hook) {\n"
                          "  copy_h2d_async(s, y.cview(), d_y.view());\n"
                          "  gemm_async(s, 1.0, d_a.cview(), d_b.cview(), 0.0, d_c.view());\n"
                          "  s.synchronize();\n"
                          "  if (hook) {\n"
                          "    hook(IterationHookContext{.dev_a = host_view(d_y.view(), s)});\n"
                          "  }\n"
                          "}\n");
  EXPECT_TRUE(has_perf(f, "coarse-synchronize", 4))
      << "the common path pays the drain the rare branch needs: movable";
}

TEST(AnalyzePerfCoarseSync, AnExpectMarkerTurnsTheFindingIntoAnExemplar) {
  const auto f = run_perf("src/ft/x.cpp",
                          "void f(Stream& s) {\n"
                          "  copy_h2d_async(s, y.cview(), d_y.view());\n"
                          "  gemm_async(s, 1.0, d_a.cview(), d_b.cview(), 0.0, d_c.view());\n"
                          "  // fth-perf: expect coarse-synchronize\n"
                          "  s.synchronize();\n"
                          "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "coarse-synchronize");
  EXPECT_TRUE(f[0].expected) << "the marker sanctions the barrier without hiding it";
}

TEST(AnalyzePerfFalseSerial, DisjointBackToBackTasksFire) {
  const auto f = run_perf(
      "src/ft/x.cpp",
      "void f(Stream& s) {\n"
      "  s.enqueue(\"ft.a\", FTH_TASK_EFFECTS(FTH_WRITES(d_y)), [=] { d_y.in_task(); });\n"
      "  s.enqueue(\"ft.b\", FTH_TASK_EFFECTS(FTH_WRITES(d_z)), [=] { d_z.in_task(); });\n"
      "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "false-serialization");
  EXPECT_EQ(f[0].line, 3);
  ASSERT_EQ(f[0].tasks.size(), 2u) << "the finding carries the pair for --dag pricing";
  EXPECT_EQ(f[0].tasks[0], "ft.a");
  EXPECT_EQ(f[0].tasks[1], "ft.b");
}

TEST(AnalyzePerfFalseSerial, ConflictingOrBatchSiblingsStayQuiet) {
  EXPECT_TRUE(run_perf("src/ft/x.cpp",
                       "void f(Stream& s) {\n"
                       "  s.enqueue(\"ft.a\", FTH_TASK_EFFECTS(FTH_WRITES(d_y)),\n"
                       "            [=] { d_y.in_task(); });\n"
                       "  s.enqueue(\"ft.b\", FTH_TASK_EFFECTS(FTH_READS(d_y)),\n"
                       "            [=] { d_y.in_task(); });\n"
                       "}\n")
                  .empty())
      << "a write-read pair on one root is a genuine FIFO dependence";
  EXPECT_TRUE(run_perf("src/ft/x.cpp",
                       "void f(Stream& s) {\n"
                       "  s.enqueue(\"ft.a\", FTH_TASK_EFFECTS(FTH_WRITES(d_y)),\n"
                       "            [=] { d_y.in_task(); });\n"
                       "  s.enqueue(\"ft.a\", FTH_TASK_EFFECTS(FTH_WRITES(d_z)),\n"
                       "            [=] { d_z.in_task(); });\n"
                       "}\n")
                  .empty())
      << "same-label neighbours are batch siblings: distributing them is "
         "the DevicePool's job, not a per-pair rewrite";
}

TEST(AnalyzePerfOverWide, ADeclaredRootTheBodyNeverMentionsFires) {
  const auto f = run_perf(
      "src/ft/x.cpp",
      "void f(Stream& s) {\n"
      "  s.enqueue(\"ft.k\", FTH_TASK_EFFECTS(FTH_READS(h_x) FTH_WRITES(d_y)),\n"
      "            [=] { d_y.in_task()(0, 0) = 1.0; });\n"
      "  s.synchronize();\n"
      "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "over-wide-effects");
  EXPECT_EQ(f[0].line, 2);
  EXPECT_NE(f[0].message.find("'h_x'"), std::string::npos);
}

TEST(AnalyzePerfOverWide, ALocalAliasOfTheRootCountsAsAMention) {
  EXPECT_TRUE(run_perf("src/ft/x.cpp",
                       "void f(Stream& s) {\n"
                       "  auto ce = d_chke_.view();\n"
                       "  encode();\n"
                       "  s.enqueue(\"ft.couple\", FTH_TASK_EFFECTS(FTH_WRITES(d_chke_.view())),\n"
                       "            [ce] { ce.in_task()(0, 0) += 1.0; });\n"
                       "  s.synchronize();\n"
                       "}\n")
                  .empty())
      << "capturing a view bound from the root IS a use of the root";
}

TEST(AnalyzePerfDeadTransfer, AnOverwrittenUnconsumedH2dFires) {
  const auto f = run_perf("src/ft/x.cpp",
                          "void f(Stream& s) {\n"
                          "  copy_h2d_async(s, y.cview(), d_y.view());\n"
                          "  copy_h2d_async(s, y.cview(), d_y.view());\n"
                          "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "dead-transfer");
  EXPECT_EQ(f[0].line, 2) << "the DEAD copy is the first one";
  EXPECT_NE(f[0].message.find("line 3"), std::string::npos);

  EXPECT_TRUE(run_perf("src/ft/x.cpp",
                       "void f(Stream& s) {\n"
                       "  copy_h2d_async(s, y.cview(), d_y.view());\n"
                       "  gemm_async(s, 1.0, d_y.cview(), d_b.cview(), 0.0, d_c.view());\n"
                       "  copy_h2d_async(s, y.cview(), d_y.view());\n"
                       "}\n")
                  .empty())
      << "a device op between the copies consumes the first payload";
}

TEST(AnalyzePerfDeadTransfer, AReFetchedUnreadD2hFires) {
  const auto f = run_perf("src/ft/x.cpp",
                          "void f(Stream& s) {\n"
                          "  copy_d2h(s, d_y.cview(), y.view());\n"
                          "  copy_d2h(s, d_y.cview(), y.view());\n"
                          "}\n");
  ASSERT_TRUE(has_perf(f, "dead-transfer", 2));
  EXPECT_TRUE(run_perf("src/ft/x.cpp",
                       "void f(Stream& s) {\n"
                       "  copy_d2h(s, d_y.cview(), y.view());\n"
                       "  double t = y(0, 0);\n"
                       "  copy_d2h(s, d_y.cview(), y.view());\n"
                       "}\n")
                  .empty())
      << "a host read between the fetches consumes the first payload";
}

// ---- perf plane, seeded on the real sources ---------------------------------
//
// Re-introduce the exact over-synchronization this PR removed from the
// drivers (or widen what it narrowed) and assert the advisory lands at
// the seeded line. `replaced` keeps one statement per line, so the
// mutation's line is the line the seed names.

TEST(AnalyzePerfSeeded, ReAddingTheGehrdLoopBottomBarrierIsCoarse) {
  const auto f = run_perf("src/hybrid/hybrid_gehrd.cpp",
                          replaced(repo_file("src/hybrid/hybrid_gehrd.cpp"), "++st.panels;",
                                   "++st.panels;\n        s.synchronize();"));
  EXPECT_TRUE(has_perf(f, "coarse-synchronize", 138))
      << "the pre-PR loop-bottom drain is re-flagged where it was removed";
}

TEST(AnalyzePerfSeeded, DoublingTheGebrdOperandsWaitIsRedundant) {
  const auto f =
      run_perf("src/hybrid/hybrid_gebrd.cpp",
               replaced(repo_file("src/hybrid/hybrid_gebrd.cpp"), "operands_shipped.wait();",
                        "operands_shipped.wait();\n        operands_shipped.wait();"));
  EXPECT_TRUE(has_perf(f, "redundant-wait", 130))
      << "the second wait's marker is already host-ordered by the first";
}

TEST(AnalyzePerfSeeded, DuplicatingTheGehrdTUploadIsADeadTransfer) {
  const std::string t_h2d =
      "copy_h2d_async(s, t_host.block(0, 0, ib, ib), d_t.block(0, 0, ib, ib));";
  const auto f = run_perf("src/hybrid/hybrid_gehrd.cpp",
                          replaced(repo_file("src/hybrid/hybrid_gehrd.cpp"), t_h2d,
                                   t_h2d + "\n        " + t_h2d));
  EXPECT_TRUE(has_perf(f, "dead-transfer", 92))
      << "the first T upload is overwritten before any device op reads it";
}

TEST(AnalyzePerfSeeded, WideningALookaheadTaskFootprintIsCaught) {
  const auto f = run_perf(
      kFixture, replaced(repo_file(kFixture), "FTH_TASK_EFFECTS(FTH_WRITES(d_w_.view()))",
                         "FTH_TASK_EFFECTS(FTH_READS(stage_host_.view()) "
                         "FTH_WRITES(d_w_.view()))"));
  ASSERT_TRUE(has_perf(f, "over-wide-effects", 110));
  for (const auto& x : f) {
    if (x.rule == "over-wide-effects") {
      EXPECT_FALSE(x.expected) << "the exemplar markers cover their own rules only";
    }
  }
}

TEST(AnalyzePerfSeeded, ThePristineFixtureCarriesExactlyTheTwoExemplars) {
  const auto f = run_perf(kFixture, repo_file(kFixture));
  ASSERT_EQ(perf_count(f), 2u);
  EXPECT_TRUE(has_perf(f, "redundant-wait", 109));
  EXPECT_TRUE(has_perf(f, "false-serialization", 115));
  for (const auto& x : f) {
    EXPECT_TRUE(x.expected) << format(x);
    EXPECT_FALSE(x.missing_edge.empty());
  }
}

TEST(AnalyzeGolden, CleanTreeHasZeroFindingsAndFullCoverage) {
  // One perf-enabled pass over the whole tree proves three goldens at
  // once: the correctness plane is empty, the perf plane reports ONLY
  // the committed `fth-perf: expect` exemplars, and the coverage stats
  // match the checked-in tests/check/analyze_golden.txt byte for byte.
  Stats stats;
  std::size_t files = 0;
  std::vector<Finding> findings;
  for (const char* dir : {"src/hybrid", "src/ft", "examples", "bench"}) {
    const fs::path top = fs::path(FTH_REPO_ROOT) / dir;
    if (!fs::exists(top)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(top)) {
      if (!entry.is_regular_file()) continue;
      const std::string rel =
          entry.path().lexically_relative(fs::path(FTH_REPO_ROOT)).generic_string();
      if (!in_scope(rel)) continue;
      ++files;
      auto found = analyze_source(rel, slurp(entry.path()), &stats, Options{.perf = true});
      findings.insert(findings.end(), found.begin(), found.end());
    }
  }
  std::size_t expected_exemplars = 0;
  for (const auto& finding : findings) {
    if (!finding.perf) {
      ADD_FAILURE() << "correctness: " << format(finding);
    } else if (finding.expected) {
      ++expected_exemplars;
    } else {
      ADD_FAILURE() << "unexpected advisory: " << format(finding);
    }
  }
  // The committed exemplar budget: the three FT encode() drains, the
  // two FT rollback drains, and the lookahead fixture's redundant-wait
  // + false-serialization pair. A new advisory is either a fix to make
  // or a marker (with rationale) to add — never silent drift.
  EXPECT_EQ(expected_exemplars, 7u);
  EXPECT_GE(files, 20u);
  // The pass must actually be *seeing* the discipline, not skipping it.
  // The exact whole-tree numbers (WITH summary splicing: every call
  // site of a helper with stream side-effects re-contributes the
  // callee's operations) live in tests/check/analyze_golden.txt, the
  // file `fth_analyze --stats-out` writes — regenerate it alongside any
  // driver/bench/example stream-traffic change:
  //   ./build/tools/fth_analyze --stats-out tests/check/analyze_golden.txt .
  // The analyze.repo ctest catches findings drift; this golden catches
  // *coverage* drift (a lexer or summary regression that silently stops
  // seeing half the tree).
  EXPECT_EQ(stats_lines(stats, files), repo_file("tests/check/analyze_golden.txt"));
  EXPECT_GE(stats.functions, 150u);
}

}  // namespace
}  // namespace fth::check::analyze

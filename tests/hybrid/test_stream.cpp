// Stream/event semantics: FIFO ordering, synchronization, exceptions,
// cross-stream dependencies.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "hybrid/stream.hpp"

namespace fth::hybrid {
namespace {

TEST(Stream, ExecutesTasksInOrder) {
  Stream s;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    s.enqueue([&order, i] { order.push_back(i); });
  }
  s.synchronize();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(s.tasks_executed(), 100u);
}

TEST(Stream, SynchronizeWaitsForCompletion) {
  Stream s;
  std::atomic<bool> done{false};
  s.enqueue([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done = true;
  });
  s.synchronize();
  EXPECT_TRUE(done.load());
}

TEST(Stream, SynchronizeRethrowsFirstTaskError) {
  Stream s;
  s.enqueue([] { throw std::runtime_error("first"); });
  s.enqueue([] { throw std::runtime_error("second"); });
  try {
    s.synchronize();
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  // Error is cleared; subsequent synchronizes succeed.
  s.enqueue([] {});
  EXPECT_NO_THROW(s.synchronize());
}

TEST(Stream, TasksAfterErrorStillRun) {
  Stream s;
  std::atomic<bool> later_ran{false};
  s.enqueue([] { throw std::logic_error("boom"); });
  s.enqueue([&] { later_ran = true; });
  EXPECT_THROW(s.synchronize(), std::logic_error);
  EXPECT_TRUE(later_ran.load());
}

TEST(Stream, NullTaskRejected) {
  Stream s;
  EXPECT_THROW(s.enqueue(nullptr), fth::precondition_error);
}

TEST(Event, DefaultEventIsReady) {
  Event e;
  EXPECT_TRUE(e.ready());
  e.wait();  // must not block
}

TEST(Event, RecordsCompletionPoint) {
  Stream s;
  std::atomic<int> stage{0};
  s.enqueue([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    stage = 1;
  });
  Event e = s.record();
  EXPECT_FALSE(e.ready());  // the sleeping task is still ahead of the marker
  e.wait();
  EXPECT_EQ(stage.load(), 1);
  EXPECT_TRUE(e.ready());
}

TEST(Event, CrossStreamDependency) {
  Stream producer;
  Stream consumer;
  std::atomic<int> value{0};
  producer.enqueue([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    value = 42;
  });
  Event ready = producer.record();
  consumer.wait_event(ready);
  int seen = -1;
  consumer.enqueue([&] { seen = value.load(); });
  consumer.synchronize();
  EXPECT_EQ(seen, 42);
}

TEST(Stream, HostOverlapsWithStreamWork) {
  // The FT driver's pattern: enqueue device work, do host work, then wait
  // on an event — host work must not be serialized behind the stream.
  Stream s;
  std::atomic<bool> device_running{false};
  std::atomic<bool> host_saw_device_running{false};
  s.enqueue([&] {
    device_running = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    device_running = false;
  });
  Event e = s.record();
  // Host-side "overlapped" work.
  for (int spin = 0; spin < 1000 && !device_running.load(); ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  if (device_running.load()) host_saw_device_running = true;
  e.wait();
  EXPECT_TRUE(host_saw_device_running.load());
}

TEST(Stream, DestructorDrainsCleanly) {
  std::atomic<int> count{0};
  {
    Stream s;
    for (int i = 0; i < 10; ++i) s.enqueue([&] { ++count; });
    s.synchronize();
  }  // destructor joins
  EXPECT_EQ(count.load(), 10);
}

TEST(Stream, ManySmallTasksStress) {
  Stream s;
  std::atomic<long> sum{0};
  constexpr int kTasks = 5000;
  for (int i = 0; i < kTasks; ++i) s.enqueue([&sum, i] { sum += i; });
  s.synchronize();
  EXPECT_EQ(sum.load(), static_cast<long>(kTasks) * (kTasks - 1) / 2);
}

}  // namespace
}  // namespace fth::hybrid

// DevicePool: D independent simulated devices with cross-device Event
// edges, per-ordinal memory identity, and the mark_lost quarantine the
// device-loss recovery protocol builds on (DESIGN.md §13).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "check/access.hpp"
#include "hybrid/pool.hpp"

namespace fth::hybrid {
namespace {

using namespace std::chrono_literals;

TEST(DevicePool, MembersAreIndependentDevicesWithTheirOwnOrdinals) {
  DevicePool pool({.devices = 3});
  ASSERT_EQ(pool.size(), 3);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(pool.device(d).config().ordinal, d);
    EXPECT_FALSE(pool.lost(d));
  }
  EXPECT_NE(&pool.stream(0), &pool.stream(1));
  EXPECT_EQ(pool.lost_count(), 0);
}

TEST(DevicePool, MembersRunConcurrentlyNotSerialized) {
  // Two members blocked on each other's side channel deadlock if the pool
  // shares one worker; with independent workers both tasks finish.
  DevicePool pool({.devices = 2});
  std::mutex m;
  std::condition_variable cv;
  int arrived = 0;
  auto rendezvous = [&] {
    std::unique_lock<std::mutex> lk(m);
    ++arrived;
    cv.notify_all();
    cv.wait(lk, [&] { return arrived == 2; });
  };
  pool.stream(0).enqueue("test.rendezvous", rendezvous);
  pool.stream(1).enqueue("test.rendezvous", rendezvous);
  pool.stream(0).synchronize();
  pool.stream(1).synchronize();
  EXPECT_EQ(arrived, 2);
}

TEST(DevicePool, CrossDeviceWaitEventOrdersConsumerAfterProducer) {
  DevicePool pool({.devices = 2});
  std::atomic<int> stage{0};
  pool.stream(0).enqueue("test.producer", [&] {
    std::this_thread::sleep_for(20ms);
    stage.store(1);
  });
  const Event done = pool.stream(0).record();
  pool.stream(1).wait_event(done);
  int seen = -1;
  pool.stream(1).enqueue("test.consumer", [&] { seen = stage.load(); });
  pool.stream(1).synchronize();
  EXPECT_EQ(seen, 1) << "consumer ran before the producer's Event marker";
  pool.stream(0).synchronize();
}

TEST(DevicePool, WaitForTimesOutOnABusyStreamThenSucceeds) {
  DevicePool pool({.devices = 1});
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  pool.stream(0).enqueue("test.slow", [&] {
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return release; });
  });
  const Event done = pool.stream(0).record();
  EXPECT_FALSE(done.wait_for(10ms)) << "timeout must not claim the edge";
  {
    std::lock_guard<std::mutex> lk(m);
    release = true;
  }
  cv.notify_all();
  EXPECT_TRUE(done.wait_for(5s));
  pool.stream(0).synchronize();
}

TEST(DevicePool, MarkLostDiscardsQueuedWorkButCompletesEventMarkers) {
  DevicePool pool({.devices = 2});
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> ran{0};
  Stream& s = pool.stream(1);
  s.enqueue("test.gate", [&] {
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return release; });
  });
  s.enqueue("test.doomed", [&] { ran.fetch_add(1); });
  const Event marker = s.record();
  pool.mark_lost(1);
  {
    std::lock_guard<std::mutex> lk(m);
    release = true;
  }
  cv.notify_all();
  // The marker must complete (host waits cannot hang on a dead member)…
  EXPECT_TRUE(marker.wait_for(5s));
  // …while the queued compute task was discarded, and the ledger updated.
  EXPECT_EQ(ran.load(), 0);
  EXPECT_TRUE(pool.lost(1));
  EXPECT_EQ(pool.lost_count(), 1);
  // Quarantine is idempotent and future work is refused silently.
  pool.mark_lost(1);
  s.enqueue("test.after_death", [&] { ran.fetch_add(1); });
  s.synchronize();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_FALSE(pool.lost(0)) << "quarantine must not leak across members";
}

// ---- per-ordinal memory identity (fth::check) -------------------------------

#define SKIP_UNLESS_CHECKED()                               \
  do {                                                      \
    if (!fth::check::compiled_in())                         \
      GTEST_SKIP() << "checker compiled out of this build"; \
    fth::check::set_active(true);                           \
  } while (0)

TEST(DevicePoolChecker, TaskUnwrappingAnotherOrdinalsMemoryIsFlagged) {
  SKIP_UNLESS_CHECKED();
  DevicePool pool({.devices = 2});
  DeviceMatrix<double> other(pool.device(1), 4, 4, "pool_test.d_other");

  check::ExpectViolations ex;
  pool.stream(0).enqueue("pool_test.cross", [dv = other.view()] {
    (void)dv.in_task()(0, 0);  // device 0 task touching device 1's shard
  });
  pool.stream(0).synchronize();
  const auto vs = ex.taken();
  bool cross = false;
  for (const auto& v : vs)
    if (v.kind == check::ViolationKind::CrossDeviceAccess) cross = true;
  EXPECT_TRUE(cross) << "CrossDeviceAccess not reported";
}

TEST(DevicePoolChecker, SameOrdinalUnwrapStaysViolationFree) {
  SKIP_UNLESS_CHECKED();
  DevicePool pool({.devices = 2});
  DeviceMatrix<double> mine(pool.device(1), 4, 4, "pool_test.d_mine");

  check::ExpectViolations ex;
  pool.stream(1).enqueue("pool_test.local", [dv = mine.view()] {
    dv.in_task()(0, 0) = 1.0;
  });
  pool.stream(1).synchronize();
  EXPECT_TRUE(ex.taken().empty());
}

}  // namespace
}  // namespace fth::hybrid

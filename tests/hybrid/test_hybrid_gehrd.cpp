// Hybrid (host+device) reduction vs the host reference, stats, and hooks.
#include <gtest/gtest.h>

#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lapack/gehrd.hpp"
#include "lapack/verify.hpp"
#include "hybrid/dev_blas.hpp"
#include "hybrid/hybrid_gehrd.hpp"
#include "test_utils.hpp"

namespace fth::hybrid {
namespace {

VectorView<double> tau_view(std::vector<double>& tau) {
  return VectorView<double>(tau.data(), static_cast<index_t>(tau.size()));
}
VectorView<const double> tau_cview(const std::vector<double>& tau) {
  return VectorView<const double>(tau.data(), static_cast<index_t>(tau.size()));
}

class HybridParam : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(HybridParam, MatchesHostReduction) {
  const auto [n, nb] = GetParam();
  Device dev;
  Matrix<double> a = random_matrix(n, n, 2 * static_cast<std::uint64_t>(n) + 5);
  Matrix<double> orig(a.cview());
  Matrix<double> host(a.cview());

  std::vector<double> tau_h(static_cast<std::size_t>(n - 1));
  lapack::gehrd(host.view(), tau_view(tau_h), {.nb = nb, .nx = nb});

  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  hybrid_gehrd(dev, a.view(), tau_view(tau), {.nb = nb, .nx = nb});

  // Same algorithm, same panel math: agreement to reassociation roundoff.
  EXPECT_LT(max_abs_diff(a.cview(), host.cview()), 1e-11);
  auto v = lapack::verify_reduction(orig.cview(), a.cview(), tau_cview(tau));
  EXPECT_TRUE(v.hessenberg);
  EXPECT_LT(v.residual, 1e-15);
  EXPECT_LT(v.orthogonality, 1e-14);
}

INSTANTIATE_TEST_SUITE_P(SizesAndBlocks, HybridParam,
                         ::testing::Combine(::testing::Values<index_t>(40, 96, 158, 250),
                                            ::testing::Values<index_t>(8, 16, 32)));

TEST(HybridGehrd, SmallMatrixFallsBackToHost) {
  Device dev;
  const index_t n = 20;
  Matrix<double> a = random_matrix(n, n, 1);
  Matrix<double> orig(a.cview());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  HybridGehrdStats st;
  hybrid_gehrd(dev, a.view(), tau_view(tau), {.nb = 32, .nx = 128}, &st);
  EXPECT_EQ(st.panels, 0);  // too small for the hybrid path
  auto v = lapack::verify_reduction(orig.cview(), a.cview(), tau_cview(tau));
  EXPECT_LT(v.residual, 1e-14);
}

TEST(HybridGehrd, StatsPopulated) {
  Device dev;
  const index_t n = 200;
  Matrix<double> a = random_matrix(n, n, 2);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  HybridGehrdStats st;
  hybrid_gehrd(dev, a.view(), tau_view(tau), {.nb = 32, .nx = 32}, &st);
  EXPECT_GT(st.panels, 0);
  EXPECT_GT(st.total_seconds, 0.0);
  EXPECT_GT(st.panel_seconds, 0.0);
  EXPECT_GT(st.update_seconds, 0.0);
  // At minimum the initial matrix upload.
  EXPECT_GE(st.h2d_bytes, static_cast<std::uint64_t>(n) * n * sizeof(double));
  EXPECT_GT(st.d2h_bytes, 0u);
}

TEST(HybridGehrd, HookCalledAtEveryBoundary) {
  Device dev;
  const index_t n = 200, nb = 32;
  Matrix<double> a = random_matrix(n, n, 3);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  std::vector<index_t> boundaries;
  std::vector<index_t> next_panels;
  hybrid_gehrd(dev, a.view(), tau_view(tau), {.nb = nb, .nx = nb},
               nullptr, [&](const IterationHookContext& ctx) {
                 boundaries.push_back(ctx.boundary);
                 next_panels.push_back(ctx.next_panel);
                 EXPECT_EQ(ctx.nb, nb);
                 EXPECT_EQ(ctx.host_a.rows(), n);
                 EXPECT_EQ(ctx.dev_a.rows(), n);
               });
  ASSERT_FALSE(boundaries.empty());
  for (std::size_t b = 0; b < boundaries.size(); ++b) {
    EXPECT_EQ(boundaries[b], static_cast<index_t>(b + 1));
    EXPECT_EQ(next_panels[b], static_cast<index_t>((b + 1) * nb));
  }
}

TEST(HybridGehrd, HookCanCorruptDeviceData) {
  // The Fig. 2 mechanism: a hook-injected device-side error must propagate
  // into the result (the baseline is NOT fault tolerant).
  Device dev;
  const index_t n = 158, nb = 32;
  Matrix<double> a = random_matrix(n, n, 4);
  Matrix<double> clean(a.cview());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  std::vector<double> tau_c(static_cast<std::size_t>(n - 1));
  hybrid_gehrd(dev, clean.view(), tau_view(tau_c), {.nb = nb, .nx = nb});

  hybrid_gehrd(dev, a.view(), tau_view(tau), {.nb = nb, .nx = nb}, nullptr,
               [&](const IterationHookContext& ctx) {
                 if (ctx.boundary == 1) ctx.dev_a(62, 126) += 100.0;  // area 2
               });
  EXPECT_GT(max_abs_diff(a.cview(), clean.cview()), 1.0);
}

TEST(DevBlas, AsyncKernelsMatchHostBlas) {
  Device dev;
  Stream& s = dev.stream();
  const index_t m = 30, n = 20, k = 25;
  Matrix<double> ha = random_matrix(m, k, 5);
  Matrix<double> hb = random_matrix(k, n, 6);
  Matrix<double> hc = random_matrix(m, n, 7);
  DeviceMatrix<double> da(dev, m, k), db(dev, k, n), dc(dev, m, n);
  copy_h2d_async(s, ha.cview(), da.view());
  copy_h2d_async(s, hb.cview(), db.view());
  copy_h2d_async(s, hc.cview(), dc.view());
  gemm_async(s, Trans::No, Trans::No, 1.5, da.view(),
             db.view(), 0.5, dc.view());
  Matrix<double> back(m, n);
  copy_d2h(s, dc.view(), back.view());

  Matrix<double> expected = test::ref_gemm(Trans::No, Trans::No, 1.5, ha.cview(), hb.cview(),
                                           0.5, hc.cview());
  test::expect_matrix_near(back.cview(), expected.cview(), 1e-11, "device gemm");
}

TEST(DevBlas, FillAsync) {
  Device dev;
  DeviceMatrix<double> d(dev, 6, 6);
  fill_async(dev.stream(), d.view(), 3.25);
  dev.stream().synchronize();
  Matrix<double> back(6, 6);
  copy_d2h(dev.stream(), d.view(), back.view());
  EXPECT_EQ(norm_max(back.cview()), 3.25);
  EXPECT_EQ(back(5, 5), 3.25);
}

}  // namespace
}  // namespace fth::hybrid

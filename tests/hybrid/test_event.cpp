// hybrid::Event semantics: record/wait ordering against the FIFO stream,
// idempotent waits, waiting before the marker task has run, cross-stream
// edges via wait_event, and the deterministic U2-race reproduction — the
// missing-Event bug from DESIGN.md §7 expressed as a checker violation, not
// as a timing-dependent data corruption.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "check/access.hpp"
#include "hybrid/device.hpp"
#include "hybrid/stream.hpp"

namespace fth::hybrid {
namespace {

TEST(Event, DefaultConstructedIsTriviallyReady) {
  Event e;
  EXPECT_TRUE(e.ready());
  e.wait();  // returns immediately, no stream attached
  e.wait();
}

TEST(Event, WaitObservesEveryTaskEnqueuedBeforeRecord) {
  Device dev;
  Stream& s = dev.stream();
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i)
    s.enqueue("tick", [&done] { done.fetch_add(1); });
  Event e = s.record();
  e.wait();
  // FIFO stream: the marker task runs only after all eight tasks.
  EXPECT_EQ(done.load(), 8);
  s.synchronize();
}

TEST(Event, WaitBeforeMarkerRunsBlocksUntilRecorded) {
  Device dev;
  Stream& s = dev.stream();
  std::atomic<bool> release{false};
  std::atomic<bool> task_ran{false};
  s.enqueue("gate", [&] {
    while (!release.load()) std::this_thread::yield();
    task_ran.store(true);
  });
  Event e = s.record();  // marker queued behind the gated task
  EXPECT_FALSE(e.ready()) << "marker cannot have run while the gate blocks";

  std::atomic<bool> waiter_done{false};
  std::thread waiter([&] {
    e.wait();
    // The wait returning proves the gated task finished first.
    EXPECT_TRUE(task_ran.load());
    waiter_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(waiter_done.load()) << "wait() must block until the marker runs";
  release.store(true);
  waiter.join();
  EXPECT_TRUE(waiter_done.load());
  s.synchronize();
}

TEST(Event, DoubleWaitAndReadyAreIdempotent) {
  Device dev;
  Stream& s = dev.stream();
  std::atomic<int> runs{0};
  s.enqueue("once", [&runs] { runs.fetch_add(1); });
  Event e = s.record();
  e.wait();
  e.wait();  // second wait is a no-op, not a hang or re-execution
  EXPECT_TRUE(e.ready());
  EXPECT_TRUE(e.ready());
  EXPECT_EQ(runs.load(), 1);
  // A copy shares the recorded state.
  Event copy = e;
  EXPECT_TRUE(copy.ready());
  copy.wait();
  s.synchronize();
}

TEST(Event, WaitEventOrdersAcrossStreams) {
  Device dev;
  Stream& a = dev.stream();
  Stream b(&dev);
  std::atomic<int> value{0};
  std::atomic<bool> release{false};
  a.enqueue("producer", [&] {
    while (!release.load()) std::this_thread::yield();
    value.store(7);
  });
  Event produced = a.record();
  b.wait_event(produced);
  std::atomic<int> seen{-1};
  b.enqueue("consumer", [&] { seen.store(value.load()); });
  release.store(true);
  b.synchronize();
  EXPECT_EQ(seen.load(), 7) << "wait_event must delay the consumer stream";
  a.synchronize();
}

// ---- the U2 race, reproduced deterministically ------------------------------

TEST(Event, MissingWaitIsACheckerViolationNotATimingBug) {
  if (!check::compiled_in()) GTEST_SKIP() << "checker compiled out of this build";
  check::set_active(true);
  Device dev;
  Stream& s = dev.stream();
  DeviceMatrix<double> d_u2(dev, 16, 16, "event_test.d_u2");
  Matrix<double> pivots(16, 16);

  // Buggy shape (the original U2 race): ship the operand, then update the
  // host copy without waiting. Flagged on every run — the transfer stays
  // live until the host observes an ordering edge, so detection does not
  // depend on whether the worker already finished the memcpy.
  copy_h2d_async(s, pivots.view(), d_u2.view());
  {
    check::ExpectViolations ex;
    pivots(0, 0) = 1.0;
    const auto vs = ex.taken();
    ASSERT_FALSE(vs.empty());
    EXPECT_EQ(vs[0].kind, check::ViolationKind::TransferRace);
    EXPECT_STREQ(vs[0].task_label, "h2d");
    EXPECT_STREQ(vs[0].alloc_site, "event_test.d_u2");
  }
  s.synchronize();

  // Fixed shape (ft_gebrd's operands_shipped pattern): record + wait, then
  // the host write is ordered after the transfer and nothing fires.
  copy_h2d_async(s, pivots.view(), d_u2.view());
  Event operands_shipped = s.record();
  operands_shipped.wait();
  const auto before = check::violation_count();
  pivots(0, 0) = 2.0;
  EXPECT_EQ(check::violation_count(), before);
  s.synchronize();
}

}  // namespace
}  // namespace fth::hybrid

// Device memory accounting, transfers, and the bandwidth cost model.
#include <gtest/gtest.h>

#include <new>

#include "common/timer.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "hybrid/device.hpp"

namespace fth::hybrid {
namespace {

TEST(Device, TracksAllocations) {
  Device dev;
  EXPECT_EQ(dev.bytes_in_use(), 0u);
  {
    DeviceMatrix<double> a(dev, 10, 10);
    EXPECT_EQ(dev.bytes_in_use(), 100 * sizeof(double));
    {
      DeviceMatrix<double> b(dev, 5, 5);
      EXPECT_EQ(dev.bytes_in_use(), 125 * sizeof(double));
      EXPECT_EQ(dev.peak_bytes(), 125 * sizeof(double));
    }
    EXPECT_EQ(dev.bytes_in_use(), 100 * sizeof(double));
  }
  EXPECT_EQ(dev.bytes_in_use(), 0u);
  EXPECT_EQ(dev.peak_bytes(), 125 * sizeof(double));
}

TEST(Device, MemoryLimitEnforced) {
  Device dev({.memory_limit = 1000});
  EXPECT_THROW(DeviceMatrix<double>(dev, 100, 100), std::bad_alloc);
  // Failed allocation must not leak accounting.
  EXPECT_EQ(dev.bytes_in_use(), 0u);
  DeviceMatrix<double> small(dev, 5, 5);  // 200 bytes: fits
  EXPECT_EQ(dev.bytes_in_use(), 200u);
}

TEST(Device, DeviceMatrixZeroInitialized) {
  Device dev;
  DeviceMatrix<double> a(dev, 7, 3);
  EXPECT_EQ(norm_max(MatrixView<const double>(host_view(a.view(), dev.stream()))), 0.0);
}

TEST(Device, DeviceMatrixMoveSemantics) {
  Device dev;
  DeviceMatrix<double> a(dev, 4, 4);
  host_view(a.view(), dev.stream())(1, 1) = 5.0;
  DeviceMatrix<double> b(std::move(a));
  EXPECT_EQ(host_view(b.view(), dev.stream())(1, 1), 5.0);
  EXPECT_EQ(dev.bytes_in_use(), 16 * sizeof(double));
  DeviceMatrix<double> c(dev, 2, 2);
  c = std::move(b);
  EXPECT_EQ(host_view(c.view(), dev.stream())(1, 1), 5.0);
  EXPECT_EQ(dev.bytes_in_use(), 16 * sizeof(double));
}

TEST(Transfers, RoundTripPreservesData) {
  Device dev;
  Matrix<double> host = random_matrix(23, 17, 1);
  DeviceMatrix<double> d(dev, 23, 17);
  copy_h2d(dev.stream(), host.cview(), d.view());
  Matrix<double> back(23, 17);
  copy_d2h(dev.stream(), d.view(), back.view());
  EXPECT_EQ(max_abs_diff(host.cview(), back.cview()), 0.0);
}

TEST(Transfers, SubBlockTransfers) {
  Device dev;
  Matrix<double> host = random_matrix(20, 20, 2);
  DeviceMatrix<double> d(dev, 20, 20);
  copy_h2d(dev.stream(), MatrixView<const double>(host.block(3, 4, 5, 6)),
           d.block(10, 10, 5, 6));
  Matrix<double> back(5, 6);
  copy_d2h(dev.stream(), d.block(10, 10, 5, 6), back.view());
  EXPECT_EQ(max_abs_diff(MatrixView<const double>(host.block(3, 4, 5, 6)), back.cview()),
            0.0);
}

TEST(Transfers, DimensionMismatchSurfacesOnSynchronize) {
  Device dev;
  Matrix<double> host(4, 4);
  DeviceMatrix<double> d(dev, 5, 5);
  copy_h2d_async(dev.stream(), host.cview(), d.view());
  EXPECT_THROW(dev.stream().synchronize(), precondition_error);
}

TEST(Transfers, StatsAccumulate) {
  Device dev;
  dev.reset_transfer_stats();
  Matrix<double> host = random_matrix(8, 8, 3);
  DeviceMatrix<double> d(dev, 8, 8);
  copy_h2d(dev.stream(), host.cview(), d.view());
  copy_h2d(dev.stream(), host.cview(), d.view());
  copy_d2h(dev.stream(), d.view(), host.view());
  EXPECT_EQ(dev.h2d_bytes(), 2 * 64 * sizeof(double));
  EXPECT_EQ(dev.d2h_bytes(), 64 * sizeof(double));
  EXPECT_EQ(dev.h2d_count(), 2u);
  EXPECT_EQ(dev.d2h_count(), 1u);
  dev.reset_transfer_stats();
  EXPECT_EQ(dev.h2d_bytes(), 0u);
}

TEST(Transfers, CostModelChargesTime) {
  // 1 MB at 0.01 GB/s ⇒ ≥ 100 ms simulated transfer time.
  Device dev({.h2d_gbps = 0.01});
  Matrix<double> host = random_matrix(362, 362, 4);  // ~1.05 MB
  DeviceMatrix<double> d(dev, 362, 362);
  WallTimer t;
  copy_h2d(dev.stream(), host.cview(), d.view());
  EXPECT_GT(t.seconds(), 0.08);
  // D2H bandwidth unset ⇒ no charge.
  WallTimer t2;
  copy_d2h(dev.stream(), d.view(), host.view());
  EXPECT_LT(t2.seconds(), 0.08);
}

TEST(Device, ConfigIsStored) {
  DeviceConfig cfg;
  cfg.name = "TestGPU";
  cfg.h2d_gbps = 12.0;
  Device dev(cfg);
  EXPECT_EQ(dev.config().name, "TestGPU");
  EXPECT_EQ(dev.config().h2d_gbps, 12.0);
}

}  // namespace
}  // namespace fth::hybrid

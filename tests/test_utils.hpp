// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "la/matrix.hpp"

namespace fth::test {

/// Wrap a std::vector as a VectorView.
inline VectorView<double> vec(std::vector<double>& v) {
  return VectorView<double>(v.data(), static_cast<index_t>(v.size()));
}
inline VectorView<const double> cvec(const std::vector<double>& v) {
  return VectorView<const double>(v.data(), static_cast<index_t>(v.size()));
}

/// Reference (naive triple-loop) GEMM for validation.
inline Matrix<double> ref_gemm(Trans ta, Trans tb, double alpha, MatrixView<const double> a,
                               MatrixView<const double> b, double beta,
                               MatrixView<const double> c) {
  Matrix<double> out(c);
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = (ta == Trans::No) ? a.cols() : a.rows();
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (index_t l = 0; l < k; ++l) {
        const double av = ta == Trans::No ? a(i, l) : a(l, i);
        const double bv = tb == Trans::No ? b(l, j) : b(j, l);
        acc += av * bv;
      }
      out(i, j) = alpha * acc + beta * c(i, j);
    }
  }
  return out;
}

/// Dense representation of an elementary reflector I − tau·v·vᵀ.
inline Matrix<double> reflector_matrix(VectorView<const double> v, double tau) {
  const index_t n = v.size();
  Matrix<double> h(n, n);
  set_identity(h.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) h(i, j) -= tau * v[i] * v[j];
  return h;
}

/// EXPECT all elements of two matrices to agree within tol.
inline void expect_matrix_near(MatrixView<const double> a, MatrixView<const double> b,
                               double tol, const char* what = "") {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i)
      ASSERT_NEAR(a(i, j), b(i, j), tol) << what << " at (" << i << "," << j << ")";
}

}  // namespace fth::test

// Common utilities: options parsing, RNG statistics/determinism, timers,
// FLOP accounting, and the error macros.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "common/error.hpp"
#include "common/flops.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace fth {
namespace {

// ---- Options ----------------------------------------------------------------

Options make_options(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return Options(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, KeyValueForms) {
  auto opt = make_options({"prog", "pos1", "--n", "42", "--name=foo", "--x", "1.5", "--flag"});
  EXPECT_EQ(opt.get_long("n", 0), 42);
  EXPECT_EQ(opt.get("name", ""), "foo");
  EXPECT_TRUE(opt.has("flag"));
  EXPECT_FALSE(opt.has("missing"));
  EXPECT_DOUBLE_EQ(opt.get_double("x", 0.0), 1.5);
  // A bare word before any option is positional; a word after `--flag`
  // would be consumed as the flag's value (documented greedy behaviour).
  ASSERT_EQ(opt.positional().size(), 1u);
  EXPECT_EQ(opt.positional()[0], "pos1");
  EXPECT_EQ(opt.program(), "prog");
}

TEST(Options, Defaults) {
  auto opt = make_options({"prog"});
  EXPECT_EQ(opt.get_long("n", 7), 7);
  EXPECT_EQ(opt.get("s", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(opt.get_double("d", 2.5), 2.5);
}

TEST(Options, SizeLists) {
  auto opt = make_options({"prog", "--sizes", "128,256,512"});
  auto v = opt.get_sizes("sizes", {1});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 128);
  EXPECT_EQ(v[2], 512);
  auto fallback = opt.get_sizes("other", {7, 9});
  ASSERT_EQ(fallback.size(), 2u);
  EXPECT_EQ(fallback[1], 9);
}

TEST(Options, FlagFollowedByFlag) {
  auto opt = make_options({"prog", "--paper", "--nb", "16"});
  EXPECT_TRUE(opt.has("paper"));
  EXPECT_EQ(opt.get("paper", "none"), "none");  // no value attached
  EXPECT_EQ(opt.get_long("nb", 0), 16);
}

// ---- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, UniformRangeAndMoments) {
  Rng rng(7);
  double sum = 0.0, mn = 1.0, mx = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    mn = std::min(mn, u);
    mx = std::max(mx, u);
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
  EXPECT_LT(mn, 0.01);
  EXPECT_GT(mx, 0.99);
}

TEST(Rng, BelowIsUnbiasedAndInRange) {
  Rng rng(9);
  int counts[10] = {};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(static_cast<double>(counts[b]) / kN, 0.1, 0.01) << "bucket " << b;
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

// ---- Timer -------------------------------------------------------------------

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const double s = t.seconds();
  EXPECT_GE(s, 0.025);
  EXPECT_LT(s, 2.0);
  t.reset();
  EXPECT_LT(t.seconds(), 0.02);
}

TEST(Accumulator, SumsIntervals) {
  Accumulator acc;
  for (int i = 0; i < 3; ++i) {
    acc.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    acc.stop();
  }
  EXPECT_GE(acc.total_seconds(), 0.025);
  EXPECT_EQ(acc.laps(), 3);
  acc.clear();
  EXPECT_EQ(acc.total_seconds(), 0.0);
  acc.stop();  // stop without start is a no-op
  EXPECT_EQ(acc.laps(), 0);
}

TEST(Accumulator, DoubleStartBanksRunningInterval) {
  // Regression: start() while running used to silently discard the
  // in-flight interval; it must bank it (as if stop() had been called).
  Accumulator acc;
  acc.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  acc.start();  // must bank the ~15 ms interval, not drop it
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  acc.stop();
  EXPECT_EQ(acc.laps(), 2);
  EXPECT_GE(acc.total_seconds(), 0.015);
}

// ---- Flops -------------------------------------------------------------------

TEST(Flops, ScopeEnablesAndRestores) {
  flops::enable(false);
  flops::reset();
  flops::add(100);  // disabled: ignored
  EXPECT_EQ(flops::count(), 0u);
  {
    flops::Scope scope;
    flops::add(100);
    EXPECT_EQ(scope.delta(), 100u);
    {
      flops::Scope inner;
      flops::add(50);
      EXPECT_EQ(inner.delta(), 50u);
    }
    EXPECT_TRUE(flops::enabled());  // inner scope restored outer's "on"
    EXPECT_EQ(scope.delta(), 150u);
  }
  EXPECT_FALSE(flops::enabled());
}

TEST(Flops, Models) {
  EXPECT_EQ(flops::gemm(10, 20, 30), 2ull * 10 * 20 * 30);
  EXPECT_EQ(flops::gemv(10, 20), 2ull * 10 * 20);
  EXPECT_NEAR(flops::gehrd(100), 10.0 / 3.0 * 1e6, 1.0);
}

// ---- Error macros -------------------------------------------------------------

TEST(Errors, CheckThrowsWithContext) {
  try {
    FTH_CHECK(1 == 2, "custom message");
    FAIL() << "expected throw";
  } catch (const precondition_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom message"), std::string::npos);
  }
  EXPECT_NO_THROW(FTH_CHECK(true, ""));
}

TEST(Errors, AssertThrowsInternal) {
  EXPECT_THROW(FTH_ASSERT(false, "bug"), internal_error);
  EXPECT_NO_THROW(FTH_ASSERT(true, ""));
}

TEST(Errors, EnvOr) {
  EXPECT_EQ(env_or("FTH_SURELY_UNSET_VARIABLE_12345", "dflt"), "dflt");
}

}  // namespace
}  // namespace fth

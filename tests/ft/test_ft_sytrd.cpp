// Fault-tolerant symmetric tridiagonal reduction (the paper's future-work
// extension) and its hybrid baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "fault/injector.hpp"
#include "ft/ft_sytrd.hpp"
#include "hybrid/hybrid_sytrd.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lapack/orghr.hpp"
#include "lapack/sytrd.hpp"
#include "lapack/verify.hpp"
#include "test_utils.hpp"

namespace fth::ft {
namespace {

using test::cvec;
using test::vec;

struct Out {
  Matrix<double> a{0, 0};
  std::vector<double> d, e, tau;
  FtReport rep;
  hybrid::HybridGehrdStats st;
};

Out run_ft(hybrid::Device& dev, const Matrix<double>& a0, const FtSytrdOptions& opt,
           fault::Injector* inj = nullptr) {
  const index_t n = a0.rows();
  Out o{Matrix<double>(a0.cview()), std::vector<double>(static_cast<std::size_t>(n)),
        std::vector<double>(static_cast<std::size_t>(n - 1)),
        std::vector<double>(static_cast<std::size_t>(n - 1)),
        {},
        {}};
  ft_sytrd(dev, o.a.view(), vec(o.d), vec(o.e), vec(o.tau), opt, inj, &o.rep, &o.st);
  return o;
}

void verify(const Matrix<double>& a0, const Out& o, double tol_res = 1e-13) {
  Matrix<double> t = lapack::tridiagonal_from(cvec(o.d), cvec(o.e));
  Matrix<double> q = lapack::orghr(o.a.cview(), cvec(o.tau));
  EXPECT_LT(lapack::hessenberg_residual(a0.cview(), q.cview(), t.cview()), tol_res);
  EXPECT_LT(lapack::orthogonality_residual(q.cview()), 1e-12);
}

TEST(HybridSytrd, MatchesHostReduction) {
  hybrid::Device dev;
  for (index_t n : {50, 96, 158}) {
    Matrix<double> a0 = random_symmetric_matrix(n, 5 + static_cast<std::uint64_t>(n));
    Matrix<double> host(a0.cview());
    std::vector<double> dh(static_cast<std::size_t>(n)), eh(static_cast<std::size_t>(n - 1)),
        th(static_cast<std::size_t>(n - 1));
    lapack::sytrd(host.view(), vec(dh), vec(eh), vec(th), {.nb = 16, .nx = 16});

    Matrix<double> hyb(a0.cview());
    std::vector<double> d(static_cast<std::size_t>(n)), e(static_cast<std::size_t>(n - 1)),
        tau(static_cast<std::size_t>(n - 1));
    hybrid::HybridGehrdStats st;
    hybrid::hybrid_sytrd(dev, hyb.view(), vec(d), vec(e), vec(tau), {.nb = 16, .nx = 16},
                         &st);
    EXPECT_LT(max_abs_diff(hyb.cview(), host.cview()), 1e-10);
    for (std::size_t k = 0; k < d.size(); ++k) ASSERT_NEAR(d[k], dh[k], 1e-10);
    EXPECT_GT(st.panels, 0);
    EXPECT_GT(st.h2d_bytes, 0u);
  }
}

class FtSytrdClean : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(FtSytrdClean, FaultFreeRunIsCorrectAndQuiet) {
  const auto [n, nb] = GetParam();
  hybrid::Device dev;
  Matrix<double> a0 = random_symmetric_matrix(n, 7 + static_cast<std::uint64_t>(n));
  Out o = run_ft(dev, a0, {.nb = nb});
  EXPECT_EQ(o.rep.detections, 0) << "false positive at n=" << n << " nb=" << nb;
  EXPECT_EQ(o.rep.rollbacks, 0);
  EXPECT_EQ(o.rep.q_corrections, 0);
  EXPECT_LT(o.rep.max_fault_free_gap, o.rep.threshold);
  verify(a0, o, 1e-15);
}

INSTANTIATE_TEST_SUITE_P(SizesAndBlocks, FtSytrdClean,
                         ::testing::Combine(::testing::Values<index_t>(16, 64, 96, 158),
                                            ::testing::Values<index_t>(8, 16, 32)));

TEST(FtSytrd, MatchesPlainReductionBitwiseClose) {
  const index_t n = 96;
  hybrid::Device dev;
  Matrix<double> a0 = random_symmetric_matrix(n, 8);
  Matrix<double> host(a0.cview());
  std::vector<double> dh(static_cast<std::size_t>(n)), eh(static_cast<std::size_t>(n - 1)),
      th(static_cast<std::size_t>(n - 1));
  lapack::sytrd(host.view(), vec(dh), vec(eh), vec(th), {.nb = 16, .nx = 16});
  Out o = run_ft(dev, a0, {.nb = 16});
  for (std::size_t k = 0; k < dh.size(); ++k) ASSERT_NEAR(o.d[k], dh[k], 1e-10);
  for (std::size_t k = 0; k < eh.size(); ++k) ASSERT_NEAR(std::abs(o.e[k]), std::abs(eh[k]), 1e-10);
}

class FtSytrdFault : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FtSytrdFault, InjectedFaultRecovered) {
  const auto [area_i, moment_i] = GetParam();
  const index_t n = 158, nb = 32;
  hybrid::Device dev;
  Matrix<double> a0 = random_symmetric_matrix(n, 31);

  Out clean = run_ft(dev, a0, {.nb = nb});

  fault::FaultSpec spec;
  spec.area = static_cast<fault::Area>(area_i);
  spec.moment = static_cast<fault::Moment>(moment_i);
  fault::Injector inj(spec, 11 + static_cast<std::uint64_t>(3 * area_i + moment_i));
  Out o = run_ft(dev, a0, {.nb = nb}, &inj);

  ASSERT_EQ(inj.history().size(), 1u);
  // Some handling mechanism must have fired.
  EXPECT_GE(o.rep.detections + o.rep.q_corrections + o.rep.final_sweep_corrections, 1)
      << "area " << area_i << " moment " << moment_i;
  // Result matches the fault-free run.
  for (std::size_t k = 0; k < clean.d.size(); ++k)
    ASSERT_NEAR(o.d[k], clean.d[k], 1e-8) << "d[" << k << "]";
  verify(a0, o);
}

// Area 1 folds onto the Householder storage in symmetric lower layout (a
// reduced row's trailing entries are logical zeros), so it behaves like
// area 3 — both are included to document that.
INSTANTIATE_TEST_SUITE_P(AreasByMoments, FtSytrdFault,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(0, 1, 2)));

TEST(FtSytrd, TrailingFaultDetectedOnline) {
  const index_t n = 128, nb = 32;
  hybrid::Device dev;
  Matrix<double> a0 = random_symmetric_matrix(n, 32);
  Out clean = run_ft(dev, a0, {.nb = nb});

  fault::FaultSpec spec;
  spec.row = 100;
  spec.col = 90;  // lower-triangle trailing element
  spec.boundary = 1;
  fault::Injector inj(spec);
  Out o = run_ft(dev, a0, {.nb = nb}, &inj);
  EXPECT_GE(o.rep.detections, 1);
  EXPECT_GE(o.rep.rollbacks, 1);
  EXPECT_EQ(o.rep.data_corrections, 1);
  for (std::size_t k = 0; k < clean.d.size(); ++k) ASSERT_NEAR(o.d[k], clean.d[k], 1e-9);
}

TEST(FtSytrd, DiagonalFaultLocatedByRatio) {
  // A diagonal error flags a single row; the two-code ratio must identify
  // the column as the row itself.
  const index_t n = 128, nb = 32;
  hybrid::Device dev;
  Matrix<double> a0 = random_symmetric_matrix(n, 33);
  Out clean = run_ft(dev, a0, {.nb = nb});

  fault::FaultSpec spec;
  spec.row = 80;
  spec.col = 80;
  spec.boundary = 1;
  fault::Injector inj(spec);
  Out o = run_ft(dev, a0, {.nb = nb}, &inj);
  EXPECT_GE(o.rep.detections, 1);
  ASSERT_FALSE(o.rep.events.empty());
  ASSERT_EQ(o.rep.events[0].errors.size(), 1u);
  EXPECT_EQ(o.rep.events[0].errors[0].row, 80);
  EXPECT_EQ(o.rep.events[0].errors[0].col, 80);
  for (std::size_t k = 0; k < clean.d.size(); ++k) ASSERT_NEAR(o.d[k], clean.d[k], 1e-9);
}

TEST(FtSytrd, TwoFaultsDistinctRowsRecovered) {
  const index_t n = 128, nb = 32;
  hybrid::Device dev;
  Matrix<double> a0 = random_symmetric_matrix(n, 34);
  Out clean = run_ft(dev, a0, {.nb = nb});

  std::vector<fault::FaultSpec> specs(2);
  specs[0].row = 90;
  specs[0].col = 70;
  specs[0].boundary = 1;
  specs[0].magnitude = 50.0;
  specs[1].row = 110;
  specs[1].col = 120;  // folds to (120, 110)
  specs[1].boundary = 1;
  specs[1].magnitude = 200.0;
  fault::Injector inj(specs);
  Out o = run_ft(dev, a0, {.nb = nb}, &inj);
  EXPECT_GE(o.rep.detections, 1);
  EXPECT_EQ(o.rep.data_corrections, 2);
  for (std::size_t k = 0; k < clean.d.size(); ++k) ASSERT_NEAR(o.d[k], clean.d[k], 1e-9);
}

TEST(FtSytrd, EqualMagnitudeFaultsStillLocated) {
  // The two-code (ratio) locator does not need distinct magnitudes — a
  // strength over pure pairing. Two equal faults in distinct rows/cols.
  const index_t n = 128, nb = 32;
  hybrid::Device dev;
  Matrix<double> a0 = random_symmetric_matrix(n, 35);
  Out clean = run_ft(dev, a0, {.nb = nb});

  std::vector<fault::FaultSpec> specs(2);
  specs[0].row = 90;
  specs[0].col = 70;
  specs[0].boundary = 2;
  specs[1].row = 120;
  specs[1].col = 100;
  specs[1].boundary = 2;
  fault::Injector inj(specs);
  Out o = run_ft(dev, a0, {.nb = nb}, &inj);
  EXPECT_EQ(o.rep.data_corrections, 2);
  for (std::size_t k = 0; k < clean.d.size(); ++k) ASSERT_NEAR(o.d[k], clean.d[k], 1e-9);
}

TEST(FtSytrd, DetectEveryAmortizesChecks) {
  const index_t n = 158, nb = 16;
  hybrid::Device dev;
  Matrix<double> a0 = random_symmetric_matrix(n, 36);
  FtSytrdOptions opt;
  opt.nb = nb;
  opt.detect_every = 4;
  Out o = run_ft(dev, a0, opt);
  EXPECT_EQ(o.rep.detections, 0);
  verify(a0, o, 1e-15);
}

TEST(FtSytrd, ReportPopulated) {
  const index_t n = 96, nb = 32;
  hybrid::Device dev;
  Matrix<double> a0 = random_symmetric_matrix(n, 37);
  Out o = run_ft(dev, a0, {.nb = nb});
  EXPECT_GT(o.rep.encode_seconds, 0.0);
  EXPECT_GT(o.rep.detect_seconds, 0.0);
  EXPECT_GT(o.rep.threshold, 0.0);
  EXPECT_EQ(o.st.panels, ft_sytrd_boundaries(n, nb));
}

TEST(FtSytrd, TinySizes) {
  hybrid::Device dev;
  for (index_t n : {1, 2, 3, 4}) {
    Matrix<double> a0 = random_symmetric_matrix(n, 38);
    std::vector<double> d(static_cast<std::size_t>(n));
    std::vector<double> e(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)));
    std::vector<double> tau(e.size());
    Matrix<double> a(a0.cview());
    EXPECT_NO_THROW(ft_sytrd(dev, a.view(), vec(d), vec(e), vec(tau), {.nb = 4}));
    EXPECT_NEAR(d[0], a0(0, 0), 1e-12);
  }
}

}  // namespace
}  // namespace fth::ft

// QR substrate and the post-processing ABFT baseline — including the
// capacity contrast the paper draws against it.
#include <gtest/gtest.h>

#include <cmath>

#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"
#include "ft/ftqr_post.hpp"
#include "la/blas3.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lapack/geqrf.hpp"
#include "lapack/verify.hpp"
#include "test_utils.hpp"

namespace fth {
namespace {

using test::vec;

double qr_reconstruction(const Matrix<double>& a0, MatrixView<const double> factored,
                         const std::vector<double>& tau, MatrixView<const double> r) {
  const index_t m = a0.rows();
  Matrix<double> q = lapack::orgqr(factored, VectorView<const double>(tau.data(),
                                                                      a0.cols()));
  Matrix<double> rec(m, a0.cols());
  blas::gemm(Trans::No, Trans::No, 1.0, q.cview(), r, 0.0, rec.view());
  return max_abs_diff(rec.cview(), a0.cview()) / std::max(1.0, norm_max(a0.cview()));
}

// ---- geqrf substrate ---------------------------------------------------------

class GeqrfParam : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {};

TEST_P(GeqrfParam, FactorizationReconstructs) {
  const auto [m, n, nb] = GetParam();
  Matrix<double> a0 = random_matrix(m, n, 3 * static_cast<std::uint64_t>(m + n));
  Matrix<double> a(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(n));
  lapack::geqrf(a.view(), vec(tau), {.nb = nb});

  Matrix<double> r = lapack::extract_r(a.cview());
  EXPECT_LT(qr_reconstruction(a0, a.cview(), tau, r.cview()), 1e-13);
  Matrix<double> q = lapack::orgqr(a.cview(), VectorView<const double>(tau.data(), n));
  EXPECT_LT(lapack::orthogonality_residual(q.cview()), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeqrfParam,
    ::testing::Values(std::make_tuple<index_t, index_t, index_t>(20, 20, 8),
                      std::make_tuple<index_t, index_t, index_t>(64, 20, 8),
                      std::make_tuple<index_t, index_t, index_t>(64, 64, 8),
                      std::make_tuple<index_t, index_t, index_t>(64, 64, 32),
                      std::make_tuple<index_t, index_t, index_t>(130, 64, 32),
                      std::make_tuple<index_t, index_t, index_t>(130, 130, 32)));

TEST(Geqrf, BlockedMatchesUnblocked) {
  const index_t m = 50, n = 40;
  Matrix<double> a0 = random_matrix(m, n, 5);
  Matrix<double> a1(a0.cview()), a2(a0.cview());
  std::vector<double> t1(static_cast<std::size_t>(n)), t2(static_cast<std::size_t>(n));
  lapack::geqr2(a1.view(), vec(t1));
  lapack::geqrf(a2.view(), vec(t2), {.nb = 8});
  EXPECT_LT(max_abs_diff(a1.cview(), a2.cview()), 1e-11);
}

TEST(Geqrf, HookFiresPerPanel) {
  const index_t m = 64, n = 64, nb = 16;
  Matrix<double> a = random_matrix(m, n, 6);
  std::vector<double> tau(static_cast<std::size_t>(n));
  std::vector<index_t> boundaries;
  lapack::geqrf(a.view(), vec(tau), {.nb = nb},
                [&](index_t b, index_t next, MatrixView<double>) {
                  boundaries.push_back(b);
                  EXPECT_EQ(next, b * nb);
                });
  EXPECT_EQ(boundaries.size(), 4u);
}

TEST(Geqrf, RejectsWideMatrices) {
  Matrix<double> a(3, 5);
  std::vector<double> tau(5);
  EXPECT_THROW(lapack::geqrf(a.view(), vec(tau)), precondition_error);
}

// ---- post-processing ABFT baseline --------------------------------------------

TEST(FtQrPost, CleanRunIsQuietAndCorrect) {
  const index_t n = 96;
  Matrix<double> a0 = random_matrix(n, n, 7);
  Matrix<double> a(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(n));
  ft::FtQrReport rep;
  ft::ftqr_post(a.view(), vec(tau), {}, &rep);
  EXPECT_FALSE(rep.fault_detected);
  EXPECT_LT(rep.gap, rep.threshold);
  EXPECT_LT(qr_reconstruction(a0, a.cview(), tau, rep.r.cview()), 1e-12);
}

TEST(FtQrPost, SingleTrailingFaultCorrected) {
  const index_t n = 96, nb = 32;
  Matrix<double> a0 = random_matrix(n, n, 8);
  Matrix<double> a(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(n));
  ft::FtQrReport rep;
  const double delta = 100.0 * norm_max(a0.cview());
  ft::ftqr_post(a.view(), vec(tau), {{.boundary = 1, .row = 60, .col = 70, .delta = delta}},
                &rep, nb);
  EXPECT_TRUE(rep.fault_detected);
  ASSERT_TRUE(rep.corrected) << rep.failure;
  EXPECT_EQ(rep.corrected_column, 70);
  // After repairing R, Q·R reconstructs the clean input.
  EXPECT_LT(qr_reconstruction(a0, a.cview(), tau, rep.r.cview()), 1e-11);
}

TEST(FtQrPost, FinishedRFaultCorrected) {
  const index_t n = 96, nb = 32;
  Matrix<double> a0 = random_matrix(n, n, 9);
  Matrix<double> a(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(n));
  ft::FtQrReport rep;
  // Element (5, 20) is final R data once two panels are done.
  ft::ftqr_post(a.view(), vec(tau), {{.boundary = 2, .row = 5, .col = 20, .delta = 7.0}},
                &rep, nb);
  ASSERT_TRUE(rep.corrected) << rep.failure;
  EXPECT_EQ(rep.corrected_column, 20);
  EXPECT_LT(qr_reconstruction(a0, a.cview(), tau, rep.r.cview()), 1e-11);
}

TEST(FtQrPost, TwoFaultsExceedTheCode) {
  // THE CONTRAST (paper Section I): two errors in different iterations
  // defeat the post-processing scheme, while ft_gehrd handles one per
  // boundary indefinitely (see Stress.GehrdFaultAtEveryBoundary).
  const index_t n = 128, nb = 32;
  Matrix<double> a0 = random_matrix(n, n, 10);
  Matrix<double> a(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(n));
  ft::FtQrReport rep;
  ft::ftqr_post(a.view(), vec(tau),
                {{.boundary = 1, .row = 60, .col = 70, .delta = 50.0},
                 {.boundary = 2, .row = 90, .col = 100, .delta = 120.0}},
                &rep, nb);
  EXPECT_TRUE(rep.fault_detected);
  EXPECT_FALSE(rep.corrected);
  EXPECT_FALSE(rep.failure.empty());
}

TEST(FtQrPost, OnlineSchemeHandlesWhatPostProcessingCannot) {
  // Same double-fault pressure, via the paper's on-line algorithm: fully
  // recovered. (Different factorization, same failure model — this is the
  // qualitative comparison of Section I.)
  const index_t n = 128, nb = 32;
  hybrid::Device dev;
  Matrix<double> a0 = random_matrix(n, n, 10);
  Matrix<double> clean(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  ft::ft_gehrd(dev, clean.view(), vec(tau), {.nb = nb});

  std::vector<fault::FaultSpec> specs(2);
  specs[0].boundary = 1;
  specs[0].area = fault::Area::LowerTrailing;
  specs[0].magnitude = 50.0;
  specs[1].boundary = 2;
  specs[1].area = fault::Area::LowerTrailing;
  specs[1].magnitude = 120.0;
  fault::Injector inj(specs, 11);
  Matrix<double> a(a0.cview());
  ft::FtReport rep;
  ft::ft_gehrd(dev, a.view(), vec(tau), {.nb = nb}, &inj, &rep);
  EXPECT_GE(rep.detections, 2);
  EXPECT_LT(max_abs_diff(a.cview(), clean.cview()), 1e-8);
}

TEST(FtQrPost, RectangularInput) {
  const index_t m = 120, n = 60;
  Matrix<double> a0 = random_matrix(m, n, 12);
  Matrix<double> a(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(n));
  ft::FtQrReport rep;
  ft::ftqr_post(a.view(), vec(tau), {{.boundary = 1, .row = 80, .col = 40, .delta = 30.0}},
                &rep);
  ASSERT_TRUE(rep.corrected) << rep.failure;
  EXPECT_LT(qr_reconstruction(a0, a.cview(), tau, rep.r.cview()), 1e-11);
}

}  // namespace
}  // namespace fth

// The acceptance soak: a randomized in-flight campaign across every fault
// class — bit flips incl. NaN/Inf, checksum strikes, checkpoint strikes,
// transfer corruption, faults during recovery — demanding 100% detection,
// ≥95% full recovery, zero crashes/hangs, structured outcomes for every
// abandoned trial, and obs counters consistent with the campaign's books.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>

#include "fault/campaign.hpp"
#include "obs/metrics.hpp"

namespace fth::fault {
namespace {

TEST(Soak, InFlightCampaignMeetsTheAcceptanceBar) {
  obs::Registry::global().reset();

  CampaignConfig cfg;
  cfg.algorithm = Algorithm::Gehrd;
  cfg.n = 256;
  cfg.nb = 32;
  cfg.trials = 56;  // 7 full passes over the eight-class mix
  cfg.in_flight = true;
  cfg.seed = 20260805;
  const CampaignResult res = run_campaign(cfg);  // a hang here IS the failure

  ASSERT_EQ(res.trials.size(), 56u);
  // Every armed fault must actually have struck, or the trial tested nothing.
  EXPECT_EQ(res.fired_count, cfg.trials);
  // 100% detection.
  EXPECT_EQ(res.detected_count, cfg.trials);
  // ≥95% full recovery with a correct result.
  EXPECT_GE(res.recovered_count, (cfg.trials * 95 + 99) / 100);
  EXPECT_EQ(res.correct_count, res.recovered_count);

  std::size_t fired_total = 0;
  int detections_total = 0;
  for (const auto& t : res.trials) {
    fired_total += t.in_flight_fired.size();
    detections_total += t.detections;
    if (t.recovered) continue;
    // Every non-recovered trial must carry a structured outcome, not a
    // bare exception string.
    EXPECT_EQ(t.outcome.status, ft::RecoveryStatus::Unrecoverable)
        << to_string(t.fault_class) << ": " << t.failure;
    EXPECT_NE(t.outcome.reason, ft::AbortReason::None) << to_string(t.fault_class);
    EXPECT_GE(t.outcome.boundary, 0) << to_string(t.fault_class);
    EXPECT_GE(t.outcome.attempts, 1) << to_string(t.fault_class);
    EXPECT_FALSE(t.failure.empty()) << to_string(t.fault_class);
  }
  EXPECT_EQ(res.aborted_count, cfg.trials - res.recovered_count)
      << "a non-recovered trial ended without a structured abort";

  // The obs layer must tell the same story as the campaign's bookkeeping.
  EXPECT_EQ(obs::counter_metric("fault.inflight_fired").value(),
            static_cast<std::uint64_t>(fired_total));
  EXPECT_EQ(obs::counter_metric("ft.detections").value(),
            static_cast<std::uint64_t>(detections_total));
  EXPECT_EQ(obs::counter_metric("ft.unrecoverable").value(),
            static_cast<std::uint64_t>(res.aborted_count));
}

}  // namespace
}  // namespace fth::fault

// Fault-tolerant bidiagonal reduction and its hybrid baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "fault/injector.hpp"
#include "ft/ft_gebrd.hpp"
#include "hybrid/hybrid_gebrd.hpp"
#include "la/blas3.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lapack/gebrd.hpp"
#include "lapack/verify.hpp"
#include "test_utils.hpp"

namespace fth::ft {
namespace {

using test::cvec;
using test::vec;

struct Out {
  Matrix<double> a{0, 0};
  std::vector<double> d, e, tauq, taup;
  FtReport rep;
  hybrid::HybridGehrdStats st;
};

Out run_ft(hybrid::Device& dev, const Matrix<double>& a0, const FtGebrdOptions& opt,
           fault::Injector* inj = nullptr) {
  const index_t n = a0.rows();
  Out o{Matrix<double>(a0.cview()), std::vector<double>(static_cast<std::size_t>(n)),
        std::vector<double>(static_cast<std::size_t>(n - 1)),
        std::vector<double>(static_cast<std::size_t>(n)),
        std::vector<double>(static_cast<std::size_t>(n - 1)),
        {},
        {}};
  ft_gebrd(dev, o.a.view(), vec(o.d), vec(o.e), vec(o.tauq), vec(o.taup), opt, inj, &o.rep,
           &o.st);
  return o;
}

double reconstruction_residual(const Matrix<double>& a0, const Out& o) {
  const index_t n = a0.rows();
  Matrix<double> b = lapack::bidiagonal_from(cvec(o.d), cvec(o.e));
  Matrix<double> q = lapack::orgbr_q(o.a.cview(), cvec(o.tauq));
  Matrix<double> p = lapack::orgbr_p(o.a.cview(), cvec(o.taup));
  Matrix<double> qb(n, n), rec(n, n);
  blas::gemm(Trans::No, Trans::No, 1.0, q.cview(), b.cview(), 0.0, qb.view());
  blas::gemm(Trans::No, Trans::Yes, 1.0, qb.cview(), p.cview(), 0.0, rec.view());
  return max_abs_diff(rec.cview(), a0.cview()) / std::max(1.0, norm_max(a0.cview()));
}

TEST(HybridGebrd, MatchesHostReduction) {
  hybrid::Device dev;
  for (index_t n : {60, 100, 158}) {
    Matrix<double> a0 = random_matrix(n, n, 5 + static_cast<std::uint64_t>(n));
    Matrix<double> host(a0.cview());
    std::vector<double> dh(static_cast<std::size_t>(n)), eh(static_cast<std::size_t>(n - 1)),
        tqh(static_cast<std::size_t>(n)), tph(static_cast<std::size_t>(n - 1));
    lapack::gebrd(host.view(), vec(dh), vec(eh), vec(tqh), vec(tph), {.nb = 16, .nx = 16});

    Matrix<double> hyb(a0.cview());
    std::vector<double> d(static_cast<std::size_t>(n)), e(static_cast<std::size_t>(n - 1)),
        tq(static_cast<std::size_t>(n)), tp(static_cast<std::size_t>(n - 1));
    hybrid::HybridGehrdStats st;
    hybrid::hybrid_gebrd(dev, hyb.view(), vec(d), vec(e), vec(tq), vec(tp),
                         {.nb = 16, .nx = 16}, &st);
    EXPECT_LT(max_abs_diff(hyb.cview(), host.cview()), 1e-10) << "n=" << n;
    EXPECT_GT(st.panels, 0);
  }
}

TEST(HybridGebrd, RepeatedRunsDeterministic) {
  // Regression for the U2-transfer race: the host pivot restore must not
  // overlap the async operand upload.
  hybrid::Device dev;
  const index_t n = 100;
  Matrix<double> a0 = random_matrix(n, n, 6);
  Matrix<double> first(0, 0);
  for (int rep = 0; rep < 5; ++rep) {
    Matrix<double> a(a0.cview());
    std::vector<double> d(static_cast<std::size_t>(n)), e(static_cast<std::size_t>(n - 1)),
        tq(static_cast<std::size_t>(n)), tp(static_cast<std::size_t>(n - 1));
    hybrid::hybrid_gebrd(dev, a.view(), vec(d), vec(e), vec(tq), vec(tp),
                         {.nb = 16, .nx = 16});
    if (rep == 0) {
      first = Matrix<double>(a.cview());
    } else {
      ASSERT_EQ(max_abs_diff(a.cview(), first.cview()), 0.0) << "run " << rep;
    }
  }
}

class FtGebrdClean : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(FtGebrdClean, FaultFreeRunIsCorrectAndQuiet) {
  const auto [n, nb] = GetParam();
  hybrid::Device dev;
  Matrix<double> a0 = random_matrix(n, n, 7 + static_cast<std::uint64_t>(n));
  Out o = run_ft(dev, a0, {.nb = nb});
  EXPECT_EQ(o.rep.detections, 0) << "false positive at n=" << n << " nb=" << nb;
  EXPECT_EQ(o.rep.rollbacks, 0);
  EXPECT_EQ(o.rep.q_corrections, 0);
  EXPECT_LT(o.rep.max_fault_free_gap, o.rep.threshold);
  EXPECT_LT(reconstruction_residual(a0, o), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(SizesAndBlocks, FtGebrdClean,
                         ::testing::Combine(::testing::Values<index_t>(16, 64, 100, 158),
                                            ::testing::Values<index_t>(8, 16, 32)));

class FtGebrdFault : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FtGebrdFault, InjectedFaultRecovered) {
  const auto [area_i, moment_i] = GetParam();
  const index_t n = 158, nb = 32;
  hybrid::Device dev;
  Matrix<double> a0 = random_matrix(n, n, 31);
  Out clean = run_ft(dev, a0, {.nb = nb});

  fault::FaultSpec spec;
  spec.area = static_cast<fault::Area>(area_i);
  spec.moment = static_cast<fault::Moment>(moment_i);
  fault::Injector inj(spec, 17 + static_cast<std::uint64_t>(3 * area_i + moment_i));
  Out o = run_ft(dev, a0, {.nb = nb}, &inj);

  ASSERT_EQ(inj.history().size(), 1u);
  EXPECT_GE(o.rep.detections + o.rep.q_corrections + o.rep.final_sweep_corrections, 1)
      << "area " << area_i << " moment " << moment_i;
  for (std::size_t k = 0; k < clean.d.size(); ++k)
    ASSERT_NEAR(o.d[k], clean.d[k], 1e-8) << "d[" << k << "]";
  EXPECT_LT(reconstruction_residual(a0, o), 1e-11);
}

// Area semantics for the bidiagonal reduction: area 1 (finished rows ×
// trailing columns) is P's Householder storage, area 3 is Q's, area 4 the
// finished band; area 2 is the live trailing matrix.
INSTANTIATE_TEST_SUITE_P(AreasByMoments, FtGebrdFault,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(0, 1, 2)));

TEST(FtGebrd, TrailingFaultLocatedExactly) {
  const index_t n = 128, nb = 32;
  hybrid::Device dev;
  Matrix<double> a0 = random_matrix(n, n, 33);
  Out clean = run_ft(dev, a0, {.nb = nb});

  fault::FaultSpec spec;
  spec.row = 70;
  spec.col = 100;
  spec.boundary = 1;
  fault::Injector inj(spec);
  Out o = run_ft(dev, a0, {.nb = nb}, &inj);
  EXPECT_GE(o.rep.detections, 1);
  ASSERT_FALSE(o.rep.events.empty());
  ASSERT_EQ(o.rep.events[0].errors.size(), 1u);
  EXPECT_EQ(o.rep.events[0].errors[0].row, 70);
  EXPECT_EQ(o.rep.events[0].errors[0].col, 100);
  for (std::size_t k = 0; k < clean.d.size(); ++k) ASSERT_NEAR(o.d[k], clean.d[k], 1e-9);
}

TEST(FtGebrd, TwoTrailingFaultsDistinctMagnitudes) {
  const index_t n = 128, nb = 32;
  hybrid::Device dev;
  Matrix<double> a0 = random_matrix(n, n, 34);
  Out clean = run_ft(dev, a0, {.nb = nb});

  std::vector<fault::FaultSpec> specs(2);
  specs[0].row = 60;
  specs[0].col = 80;
  specs[0].boundary = 1;
  specs[0].magnitude = 40.0;
  specs[1].row = 90;
  specs[1].col = 110;
  specs[1].boundary = 1;
  specs[1].magnitude = 150.0;
  fault::Injector inj(specs);
  Out o = run_ft(dev, a0, {.nb = nb}, &inj);
  EXPECT_EQ(o.rep.data_corrections, 2);
  for (std::size_t k = 0; k < clean.d.size(); ++k) ASSERT_NEAR(o.d[k], clean.d[k], 1e-9);
}

TEST(FtGebrd, DetectEveryAmortizes) {
  const index_t n = 130, nb = 16;
  hybrid::Device dev;
  Matrix<double> a0 = random_matrix(n, n, 35);
  FtGebrdOptions opt;
  opt.nb = nb;
  opt.detect_every = 4;
  Out o = run_ft(dev, a0, opt);
  EXPECT_EQ(o.rep.detections, 0);
  EXPECT_LT(reconstruction_residual(a0, o), 1e-12);
}

TEST(FtGebrd, TinySizes) {
  hybrid::Device dev;
  for (index_t n : {1, 2, 3, 5}) {
    Matrix<double> a0 = random_matrix(n, n, 36);
    std::vector<double> d(static_cast<std::size_t>(n));
    std::vector<double> e(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)));
    std::vector<double> tq(static_cast<std::size_t>(n));
    std::vector<double> tp(e.size());
    Matrix<double> a(a0.cview());
    EXPECT_NO_THROW(
        ft_gebrd(dev, a.view(), vec(d), vec(e), vec(tq), vec(tp), {.nb = 4}));
  }
}

TEST(FtGebrd, ReportPopulated) {
  const index_t n = 96, nb = 32;
  hybrid::Device dev;
  Matrix<double> a0 = random_matrix(n, n, 37);
  Out o = run_ft(dev, a0, {.nb = nb});
  EXPECT_GT(o.rep.encode_seconds, 0.0);
  EXPECT_GT(o.rep.detect_seconds, 0.0);
  EXPECT_GT(o.rep.threshold, 0.0);
  EXPECT_EQ(o.st.panels, ft_gebrd_boundaries(n, nb));
  EXPECT_GT(o.st.h2d_bytes, 0u);
}

}  // namespace
}  // namespace fth::ft

// Error location: single/multiple errors, checksum-element errors, and the
// rectangle-ambiguity failure mode the paper excludes.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ft/checksum.hpp"
#include "ft/locate.hpp"
#include "la/generate.hpp"

namespace fth::ft {
namespace {

/// Build discrepancy machinery from an extended matrix with injected data
/// errors: fresh sums see the errors, maintained checksums do not.
struct Scenario {
  Matrix<double> ext{0, 0};
  Matrix<double> host{0, 0};

  explicit Scenario(index_t n, std::uint64_t seed = 1)
      : ext(encode_extended(random_matrix(n, n, seed).cview())), host(n, n) {}

  LocateResult run(double tol = 1e-9) {
    const FreshSums fs = fresh_logical_sums(host.cview(), ext.cview(), 0);
    const Discrepancy d = compare_checksums(fs, ext.cview(), tol);
    return locate(d, fs, tol);
  }
};

TEST(Locate, NothingWhenClean) {
  Scenario s(10);
  const LocateResult r = s.run();
  EXPECT_TRUE(r.data_errors.empty());
  EXPECT_TRUE(r.chk_col_errors.empty());
  EXPECT_TRUE(r.chk_row_errors.empty());
}

TEST(Locate, SingleDataError) {
  Scenario s(12);
  s.ext(4, 9) += 3.75;
  const LocateResult r = s.run();
  ASSERT_EQ(r.data_errors.size(), 1u);
  EXPECT_EQ(r.data_errors[0].row, 4);
  EXPECT_EQ(r.data_errors[0].col, 9);
  EXPECT_NEAR(r.data_errors[0].delta, 3.75, 1e-10);
  // Applying the correction restores the element.
  s.ext(4, 9) -= r.data_errors[0].delta;
  EXPECT_TRUE(s.run().data_errors.empty());
}

TEST(Locate, TwoErrorsDistinctMagnitudes) {
  Scenario s(16);
  s.ext(2, 5) += 1.0;
  s.ext(9, 13) += 4.0;
  const LocateResult r = s.run();
  ASSERT_EQ(r.data_errors.size(), 2u);
  // Sorted by row by construction of the discrepancy scan.
  EXPECT_EQ(r.data_errors[0].row, 2);
  EXPECT_EQ(r.data_errors[0].col, 5);
  EXPECT_NEAR(r.data_errors[0].delta, 1.0, 1e-10);
  EXPECT_EQ(r.data_errors[1].row, 9);
  EXPECT_EQ(r.data_errors[1].col, 13);
  EXPECT_NEAR(r.data_errors[1].delta, 4.0, 1e-10);
}

TEST(Locate, ThreeErrorsNonRectangle) {
  Scenario s(20);
  s.ext(1, 2) += 1.0;
  s.ext(5, 7) += 2.0;
  s.ext(11, 15) += -3.0;
  const LocateResult r = s.run();
  ASSERT_EQ(r.data_errors.size(), 3u);
  for (const auto& e : r.data_errors) {
    s.ext(e.row, e.col) -= e.delta;
  }
  EXPECT_TRUE(s.run().data_errors.empty());
}

TEST(Locate, RectangleWithEqualMagnitudesIsAmbiguous) {
  // Two errors with identical deltas at (r1,c1) and (r2,c2): the pairing
  // {(r1,c1),(r2,c2)} vs {(r1,c2),(r2,c1)} cannot be resolved — exactly the
  // paper's "positions form a rectangle" exclusion.
  Scenario s(14);
  s.ext(3, 4) += 2.0;
  s.ext(8, 11) += 2.0;
  EXPECT_THROW(s.run(), recovery_error);
}

TEST(Locate, SameRowTwoErrorsRecoveredFromColumnDeltas) {
  // One mismatched row, two mismatched columns. The shared row's delta is
  // the sum of the column deltas, and each column delta is itself the exact
  // per-element correction — line-confined patterns stay within the code
  // distance of the orthogonal code.
  Scenario s(14);
  s.ext(6, 3) += 1.0;
  s.ext(6, 10) += 2.0;
  const LocateResult r = s.run();
  ASSERT_EQ(r.data_errors.size(), 2u);
  for (const auto& e : r.data_errors) s.ext(e.row, e.col) -= e.delta;
  EXPECT_TRUE(s.run().data_errors.empty());
}

TEST(Locate, SameColumnTwoErrorsRecoveredFromRowDeltas) {
  Scenario s(14);
  s.ext(2, 8) += 1.0;
  s.ext(9, 8) += 2.0;
  const LocateResult r = s.run();
  ASSERT_EQ(r.data_errors.size(), 2u);
  for (const auto& e : r.data_errors) s.ext(e.row, e.col) -= e.delta;
  EXPECT_TRUE(s.run().data_errors.empty());
}

TEST(Locate, SameColumnThreeErrorsRecovered) {
  // Rectangle faults stay excluded, but k errors confined to one line are
  // now corrected element-wise.
  Scenario s(16);
  s.ext(1, 5) += 1.5;
  s.ext(7, 5) += -2.0;
  s.ext(12, 5) += 4.25;
  const LocateResult r = s.run();
  ASSERT_EQ(r.data_errors.size(), 3u);
  for (const auto& e : r.data_errors) s.ext(e.row, e.col) -= e.delta;
  EXPECT_TRUE(s.run().data_errors.empty());
}

TEST(Locate, ChecksumColumnErrorIdentified) {
  Scenario s(12);
  s.ext(5, 12) += 9.0;  // corrupt a checksum-column element itself
  const LocateResult r = s.run();
  EXPECT_TRUE(r.data_errors.empty());
  ASSERT_EQ(r.chk_col_errors.size(), 1u);
  EXPECT_EQ(r.chk_col_errors[0].index, 5);
  // The reported fresh value repairs the checksum.
  s.ext(5, 12) = r.chk_col_errors[0].fresh;
  EXPECT_TRUE(s.run().chk_col_errors.empty());
}

TEST(Locate, ChecksumRowErrorIdentified) {
  Scenario s(12);
  s.ext(12, 7) += -4.0;
  const LocateResult r = s.run();
  EXPECT_TRUE(r.data_errors.empty());
  ASSERT_EQ(r.chk_row_errors.size(), 1u);
  EXPECT_EQ(r.chk_row_errors[0].index, 7);
}

TEST(Locate, MismatchedCountsThrowWhenSumsDisagree) {
  // Three rows vs one column is only a line-confined pattern if the row
  // deltas add up to the column's delta; an inconsistent total means the
  // pattern cannot be explained by errors in one column and must be
  // rejected.
  Discrepancy d;
  d.rows = {1, 2, 3};
  d.row_delta = {1.0, 2.0, 3.0};
  d.cols = {4};
  d.col_delta = {10.0};  // ≠ 1+2+3
  FreshSums fs;
  fs.row.assign(10, 0.0);
  fs.col.assign(10, 0.0);
  EXPECT_THROW(locate(d, fs, 1e-9), recovery_error);
}

TEST(Locate, MismatchedCountsRecoveredWhenSumsAgree) {
  Discrepancy d;
  d.rows = {1, 2, 3};
  d.row_delta = {1.0, 2.0, 3.0};
  d.cols = {4};
  d.col_delta = {6.0};
  FreshSums fs;
  fs.row.assign(10, 0.0);
  fs.col.assign(10, 0.0);
  const LocateResult r = locate(d, fs, 1e-9);
  ASSERT_EQ(r.data_errors.size(), 3u);
  EXPECT_EQ(r.data_errors[0].row, 1);
  EXPECT_EQ(r.data_errors[0].col, 4);
  EXPECT_NEAR(r.data_errors[0].delta, 1.0, 1e-12);
  EXPECT_EQ(r.data_errors[2].row, 3);
  EXPECT_NEAR(r.data_errors[2].delta, 3.0, 1e-12);
}

TEST(Locate, TooManyErrorsRejected) {
  Discrepancy d;
  for (index_t k = 0; k < 9; ++k) {
    d.rows.push_back(k);
    d.row_delta.push_back(static_cast<double>(k + 1));
    d.cols.push_back(k + 20);
    d.col_delta.push_back(static_cast<double>(k + 1));
  }
  FreshSums fs;
  fs.row.assign(40, 0.0);
  fs.col.assign(40, 0.0);
  EXPECT_THROW(locate(d, fs, 1e-9), recovery_error);
}

TEST(Locate, PermutedMagnitudeMatching) {
  // Deltas deliberately ordered so that row order ≠ column order: the
  // matcher must pair by magnitude, not by position.
  Scenario s(18);
  s.ext(2, 14) += 5.0;   // row 2 ↔ col 14
  s.ext(10, 3) += -1.0;  // row 10 ↔ col 3
  const LocateResult r = s.run();
  ASSERT_EQ(r.data_errors.size(), 2u);
  EXPECT_EQ(r.data_errors[0].row, 2);
  EXPECT_EQ(r.data_errors[0].col, 14);
  EXPECT_EQ(r.data_errors[1].row, 10);
  EXPECT_EQ(r.data_errors[1].col, 3);
}

}  // namespace
}  // namespace fth::ft

// Structured recovery escalation: patterns beyond the code's correction
// capability must end in a recovery_error carrying boundary/attempts/gap/
// threshold — and a matching RecoveryOutcome in FtReport — never a hang,
// never a bare abort.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"
#include "la/generate.hpp"

namespace fth::ft {
namespace {

constexpr index_t kN = 96;
constexpr index_t kNb = 32;

struct Attempt {
  bool threw = false;
  recovery_error err{"", -1, 0, 0.0, 0.0};
  FtReport rep;
};

Attempt run_gehrd(const Matrix<double>& a0, const FtOptions& opt, fault::Injector* inj) {
  hybrid::Device dev;
  Attempt out;
  Matrix<double> a(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(kN - 1));
  try {
    ft_gehrd(dev, a.view(), VectorView<double>(tau.data(), kN - 1), opt, inj, &out.rep);
  } catch (const recovery_error& e) {
    out.threw = true;
    out.err = e;
  }
  return out;
}

// Satellite: two equal-magnitude faults at (r1,c1),(r2,c2) with distinct
// rows and columns form the paper's rectangle pattern — row and column
// deltas pair two ways, so locate() cannot resolve the positions. The run
// must fail gracefully within max_retries with structured fields set.
TEST(Escalation, RectanglePatternAbortsWithStructuredError) {
  Matrix<double> a0 = random_matrix(kN, kN, 401);

  std::vector<fault::FaultSpec> specs(2);
  specs[0].row = 50;
  specs[0].col = 60;
  specs[1].row = 70;
  specs[1].col = 80;
  for (auto& s : specs) {
    s.boundary = 1;
    s.magnitude = 1000.0;
    s.relative = false;  // identical deltas → ambiguous matching
  }
  fault::Injector inj(specs, 7);

  FtOptions opt;
  opt.nb = kNb;
  opt.max_retries = 3;
  const Attempt out = run_gehrd(a0, opt, &inj);

  ASSERT_TRUE(out.threw) << "rectangle pattern must not be silently 'corrected'";
  // Boundary-1 faults are planted after boundary 1's comparison, so the
  // detection that abandons the run fires at boundary 2.
  EXPECT_EQ(out.err.boundary(), 2);
  EXPECT_GE(out.err.attempts(), 1);
  EXPECT_LE(out.err.attempts(), opt.max_retries);
  EXPECT_GT(out.err.gap(), 0.0);
  EXPECT_GT(out.err.threshold(), 0.0);
  EXPECT_GT(out.err.gap(), out.err.threshold());

  EXPECT_EQ(out.rep.outcome.status, RecoveryStatus::Unrecoverable);
  EXPECT_EQ(out.rep.outcome.reason, AbortReason::AmbiguousPattern);
  EXPECT_EQ(out.rep.outcome.boundary, out.err.boundary());
  EXPECT_FALSE(out.rep.outcome.detail.empty());
  EXPECT_GE(out.rep.detections, 1);
  // The abandoned attempt is on record as an event with its error noted.
  ASSERT_FALSE(out.rep.events.empty());
  EXPECT_EQ(out.rep.events.back().boundary, out.err.boundary());
}

// A detection that locate() cannot act on (tolerance swallows the deltas)
// keeps re-firing; the ladder must cut it off after max_retries attempts
// with RetriesExhausted rather than looping forever.
TEST(Escalation, UncorrectableDetectionExhaustsRetries) {
  Matrix<double> a0 = random_matrix(kN, kN, 402);

  fault::FaultSpec spec;
  spec.area = fault::Area::LowerTrailing;
  spec.boundary = 1;
  fault::Injector inj(spec, 11);

  FtOptions opt;
  opt.nb = kNb;
  opt.max_retries = 2;
  opt.locate_tol = 1e9;  // locate sees a clean delta → nothing gets fixed
  const Attempt out = run_gehrd(a0, opt, &inj);

  ASSERT_TRUE(out.threw);
  EXPECT_EQ(out.rep.outcome.status, RecoveryStatus::Unrecoverable);
  EXPECT_EQ(out.rep.outcome.reason, AbortReason::RetriesExhausted);
  EXPECT_EQ(out.err.attempts(), opt.max_retries);
  EXPECT_EQ(out.rep.outcome.attempts, out.err.attempts());
  EXPECT_EQ(out.rep.outcome.boundary, out.err.boundary());
  EXPECT_EQ(out.rep.outcome.gap, out.err.gap());
  EXPECT_EQ(out.rep.outcome.threshold, out.err.threshold());
}

}  // namespace
}  // namespace fth::ft

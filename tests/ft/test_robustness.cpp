// Robustness of the FT drivers at API boundaries: degenerate shapes,
// hostile options, resource pressure, and failure-path behaviour.
#include <gtest/gtest.h>

#include <new>

#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"
#include "ft/ft_sytrd.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lapack/verify.hpp"
#include "test_utils.hpp"

namespace fth::ft {
namespace {

using test::vec;

TEST(Robustness, BlockLargerThanMatrix) {
  hybrid::Device dev;
  const index_t n = 20;
  Matrix<double> a0 = random_matrix(n, n, 1);
  Matrix<double> a(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  FtReport rep;
  ft_gehrd(dev, a.view(), vec(tau), {.nb = 64}, nullptr, &rep);  // nb ≫ n
  auto v = lapack::verify_reduction(a0.cview(), a.cview(),
                                    VectorView<const double>(tau.data(), n - 1));
  EXPECT_TRUE(v.hessenberg);
  EXPECT_LT(v.residual, 1e-14);
}

TEST(Robustness, BlockSizeOne) {
  // nb = 1 degenerates every panel to a single reflector; the extended
  // updates and detection must still hold together.
  hybrid::Device dev;
  const index_t n = 24;
  Matrix<double> a0 = random_matrix(n, n, 2);
  Matrix<double> a(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  FtReport rep;
  fault::FaultSpec spec;
  spec.area = fault::Area::LowerTrailing;
  spec.boundary = 5;
  fault::Injector inj(spec);
  ft_gehrd(dev, a.view(), vec(tau), {.nb = 1}, &inj, &rep);
  EXPECT_GE(rep.detections, 1);
  auto v = lapack::verify_reduction(a0.cview(), a.cview(),
                                    VectorView<const double>(tau.data(), n - 1));
  EXPECT_LT(v.residual, 1e-14);
}

TEST(Robustness, InvalidOptionsRejected) {
  hybrid::Device dev;
  Matrix<double> a(8, 8);
  std::vector<double> tau(7);
  EXPECT_THROW(ft_gehrd(dev, a.view(), vec(tau), {.nb = 0}), precondition_error);
  std::vector<double> d(8), e(7);
  FtSytrdOptions bad;
  bad.detect_every = 0;
  EXPECT_THROW(ft_sytrd(dev, a.view(), vec(d), vec(e), vec(tau), bad), precondition_error);
}

TEST(Robustness, DeviceMemoryLimitSurfacesAsBadAlloc) {
  hybrid::Device dev({.memory_limit = 1 << 14});  // far too small for n = 64
  Matrix<double> a = random_matrix(64, 64, 3);
  std::vector<double> tau(63);
  EXPECT_THROW(ft_gehrd(dev, a.view(), vec(tau), {.nb = 16}), std::bad_alloc);
  // The failed run must not leak device memory.
  EXPECT_EQ(dev.bytes_in_use(), 0u);
}

TEST(Robustness, MaxRetriesZeroFailsFastOnFault) {
  hybrid::Device dev;
  const index_t n = 96;
  Matrix<double> a = random_matrix(n, n, 4);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  fault::FaultSpec spec;
  spec.area = fault::Area::LowerTrailing;
  spec.boundary = 1;
  fault::Injector inj(spec);
  FtOptions opt;
  opt.nb = 32;
  opt.max_retries = 0;
  EXPECT_THROW(ft_gehrd(dev, a.view(), vec(tau), opt, &inj), recovery_error);
}

TEST(Robustness, ExplicitThresholdHonored) {
  hybrid::Device dev;
  const index_t n = 64;
  Matrix<double> a = random_matrix(n, n, 5);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  FtOptions opt;
  opt.nb = 16;
  opt.threshold = 1e6;  // absurdly lax: nothing can trip it
  opt.final_sweep = false;
  fault::FaultSpec spec;
  spec.area = fault::Area::LowerTrailing;
  spec.boundary = 1;
  spec.relative = false;
  spec.magnitude = 1.0;  // below the lax threshold
  fault::Injector inj(spec);
  FtReport rep;
  ft_gehrd(dev, a.view(), vec(tau), opt, &inj, &rep);
  EXPECT_EQ(rep.detections, 0);
  EXPECT_EQ(rep.threshold, 1e6);
}

TEST(Robustness, SameDeviceReusedAcrossManyRuns) {
  // Device state (memory accounting, stream) must be clean across runs.
  hybrid::Device dev;
  for (int rep = 0; rep < 8; ++rep) {
    const index_t n = 48 + 8 * rep;
    Matrix<double> a = random_matrix(n, n, 10 + static_cast<std::uint64_t>(rep));
    std::vector<double> tau(static_cast<std::size_t>(n - 1));
    ft_gehrd(dev, a.view(), vec(tau), {.nb = 16});
  }
  EXPECT_EQ(dev.bytes_in_use(), 0u);
  EXPECT_GT(dev.peak_bytes(), 0u);
}

TEST(Robustness, ZeroMatrixFactorizes) {
  hybrid::Device dev;
  const index_t n = 32;
  Matrix<double> a(n, n);  // all zeros
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  FtReport rep;
  EXPECT_NO_THROW(ft_gehrd(dev, a.view(), vec(tau), {.nb = 8}, nullptr, &rep));
  EXPECT_EQ(rep.detections, 0);
  EXPECT_EQ(norm_max(a.cview()), 0.0);
}

TEST(Robustness, IdentityMatrixFactorizes) {
  hybrid::Device dev;
  const index_t n = 32;
  Matrix<double> a(n, n);
  set_identity(a.view());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  ft_gehrd(dev, a.view(), vec(tau), {.nb = 8});
  for (double t : tau) EXPECT_EQ(t, 0.0);  // already Hessenberg: trivial reflectors
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(a(i, i), 1.0);
}

}  // namespace
}  // namespace fth::ft

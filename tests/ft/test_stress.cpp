// Stress tests: sustained fault pressure across the whole factorization —
// the paper's "highly volatile environments" claim ("it can detect and
// correct more than one consecutive error") pushed to one fault at EVERY
// iteration boundary, for all three fault-tolerant factorizations.
#include <gtest/gtest.h>

#include "fault/campaign.hpp"
#include "fault/injector.hpp"
#include "ft/ft_gebrd.hpp"
#include "ft/ft_gehrd.hpp"
#include "ft/ft_sytrd.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "test_utils.hpp"

namespace fth::ft {
namespace {

using test::vec;

std::vector<fault::FaultSpec> one_fault_per_boundary(index_t boundaries,
                                                     fault::Area area) {
  std::vector<fault::FaultSpec> specs;
  for (index_t b = 1; b < boundaries; ++b) {  // last boundary has no trailing area 2
    fault::FaultSpec s;
    s.area = area;
    s.boundary = b;
    s.magnitude = 50.0 + 13.0 * static_cast<double>(b);  // distinct magnitudes
    specs.push_back(s);
  }
  return specs;
}

TEST(Stress, GehrdFaultAtEveryBoundary) {
  const index_t n = 160, nb = 32;
  hybrid::Device dev;
  Matrix<double> a0 = random_matrix(n, n, 1);
  Matrix<double> clean(a0.cview());
  std::vector<double> tau_c(static_cast<std::size_t>(n - 1));
  ft_gehrd(dev, clean.view(), vec(tau_c), {.nb = nb});

  const index_t boundaries = ft_total_boundaries(n, nb);
  fault::Injector inj(one_fault_per_boundary(boundaries, fault::Area::LowerTrailing), 5);
  Matrix<double> a(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  FtReport rep;
  ft_gehrd(dev, a.view(), vec(tau), {.nb = nb}, &inj, &rep);

  EXPECT_EQ(static_cast<index_t>(inj.history().size()), boundaries - 1);
  EXPECT_GE(rep.detections, boundaries - 1);
  EXPECT_LT(max_abs_diff(a.cview(), clean.cview()), 1e-8);
}

TEST(Stress, SytrdFaultAtEveryBoundary) {
  const index_t n = 160, nb = 32;
  hybrid::Device dev;
  Matrix<double> a0 = random_symmetric_matrix(n, 2);
  std::vector<double> dc(static_cast<std::size_t>(n)), ec(static_cast<std::size_t>(n - 1)),
      tc(static_cast<std::size_t>(n - 1));
  Matrix<double> clean(a0.cview());
  ft_sytrd(dev, clean.view(), vec(dc), vec(ec), vec(tc), {.nb = nb});

  const index_t boundaries = ft_sytrd_boundaries(n, nb);
  fault::Injector inj(one_fault_per_boundary(boundaries, fault::Area::LowerTrailing), 6);
  Matrix<double> a(a0.cview());
  std::vector<double> d(static_cast<std::size_t>(n)), e(static_cast<std::size_t>(n - 1)),
      tau(static_cast<std::size_t>(n - 1));
  FtReport rep;
  ft_sytrd(dev, a.view(), vec(d), vec(e), vec(tau), {.nb = nb}, &inj, &rep);
  EXPECT_GE(rep.detections, boundaries - 1);
  for (std::size_t k = 0; k < dc.size(); ++k) ASSERT_NEAR(d[k], dc[k], 1e-8);
}

TEST(Stress, GebrdFaultAtEveryBoundary) {
  const index_t n = 160, nb = 32;
  hybrid::Device dev;
  Matrix<double> a0 = random_matrix(n, n, 3);
  std::vector<double> dc(static_cast<std::size_t>(n)), ec(static_cast<std::size_t>(n - 1)),
      tqc(static_cast<std::size_t>(n)), tpc(static_cast<std::size_t>(n - 1));
  Matrix<double> clean(a0.cview());
  ft_gebrd(dev, clean.view(), vec(dc), vec(ec), vec(tqc), vec(tpc), {.nb = nb});

  const index_t boundaries = ft_gebrd_boundaries(n, nb);
  fault::Injector inj(one_fault_per_boundary(boundaries, fault::Area::LowerTrailing), 7);
  Matrix<double> a(a0.cview());
  std::vector<double> d(static_cast<std::size_t>(n)), e(static_cast<std::size_t>(n - 1)),
      tq(static_cast<std::size_t>(n)), tp(static_cast<std::size_t>(n - 1));
  FtReport rep;
  ft_gebrd(dev, a.view(), vec(d), vec(e), vec(tq), vec(tp), {.nb = nb}, &inj, &rep);
  EXPECT_GE(rep.detections, boundaries - 1);
  for (std::size_t k = 0; k < dc.size(); ++k) ASSERT_NEAR(d[k], dc[k], 1e-8);
}

TEST(Stress, GehrdRecoveryEventsAreSelfConsistent) {
  const index_t n = 128, nb = 16;
  hybrid::Device dev;
  Matrix<double> a0 = random_matrix(n, n, 4);
  const index_t boundaries = ft_total_boundaries(n, nb);
  fault::Injector inj(one_fault_per_boundary(boundaries, fault::Area::LowerTrailing), 8);
  Matrix<double> a(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  FtReport rep;
  ft_gehrd(dev, a.view(), vec(tau), {.nb = nb}, &inj, &rep);
  // Every event carries a positive gap and at least one action.
  for (const auto& ev : rep.events) {
    EXPECT_GT(ev.gap, rep.threshold);
    EXPECT_GE(ev.data_corrections + ev.checksum_corrections +
                  static_cast<int>(ev.checkpoint_only),
              1);
  }
  EXPECT_EQ(rep.rollbacks, static_cast<int>(rep.events.size()));
}

// ---- Campaigns across all three algorithms ----------------------------------

class CampaignAlgo : public ::testing::TestWithParam<int> {};

TEST_P(CampaignAlgo, SingleFaultCampaignRecovers) {
  fault::CampaignConfig cfg;
  cfg.algorithm = static_cast<fault::Algorithm>(GetParam());
  cfg.n = 96;
  cfg.nb = 16;
  cfg.trials = 4;
  cfg.faults_per_trial = 1;
  cfg.area = fault::Area::LowerTrailing;
  const fault::CampaignResult res = fault::run_campaign(cfg);
  EXPECT_EQ(res.recovered_count, 4) << fault::to_string(cfg.algorithm);
  EXPECT_EQ(res.correct_count, 4) << fault::to_string(cfg.algorithm);
  for (const auto& t : res.trials) EXPECT_GE(t.detections, 1);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CampaignAlgo, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace fth::ft

// Checksum encoding, fresh-sum computation, and Theorem 1 as an executable
// property: the extended right/left block updates preserve both checksums.
#include <gtest/gtest.h>

#include <cmath>

#include "ft/checksum.hpp"
#include "la/blas3.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "common/rng.hpp"

namespace fth::ft {
namespace {

TEST(Encode, ChecksumsAreRowAndColumnSums) {
  Matrix<double> a = random_matrix(9, 9, 1);
  Matrix<double> ext = encode_extended(a.cview());
  ASSERT_EQ(ext.rows(), 10);
  ASSERT_EQ(ext.cols(), 10);
  for (index_t i = 0; i < 9; ++i) {
    double rs = 0.0;
    for (index_t j = 0; j < 9; ++j) {
      EXPECT_EQ(ext(i, j), a(i, j));
      rs += a(i, j);
    }
    EXPECT_NEAR(ext(i, 9), rs, 1e-14);
  }
  double total = 0.0;
  for (index_t j = 0; j < 9; ++j) {
    double cs = 0.0;
    for (index_t i = 0; i < 9; ++i) cs += a(i, j);
    EXPECT_NEAR(ext(9, j), cs, 1e-14);
    total += cs;
  }
  EXPECT_NEAR(ext(9, 9), total, 1e-12);
}

TEST(Encode, DetectionGapSmallWhenClean) {
  Matrix<double> a = random_matrix(64, 64, 2);
  Matrix<double> ext = encode_extended(a.cview());
  EXPECT_LT(detection_gap(ext.cview()), default_threshold(norm_fro(a.cview()), 64));
}

TEST(Encode, DetectionGapSeesCorruptedChecksum) {
  Matrix<double> a = random_matrix(32, 32, 3);
  Matrix<double> ext = encode_extended(a.cview());
  ext(5, 32) += 7.0;  // corrupt the checksum column
  EXPECT_NEAR(detection_gap(ext.cview()), 7.0, 1e-10);
}

TEST(FreshSums, SplitAcrossMemoriesMatchesDefinition) {
  // host_a holds finished columns (< i) in factored form; ext holds live
  // trailing columns. Construct both from a known logical matrix.
  const index_t n = 12, i = 5;
  Matrix<double> logical = random_matrix(n, n, 4);
  // Zero below the subdiagonal of finished columns (the logical content).
  for (index_t c = 0; c < i; ++c)
    for (index_t r = c + 2; r < n; ++r) logical(r, c) = 0.0;

  Matrix<double> host_a(logical.cview());
  // Host below-subdiagonal of finished columns stores Householder garbage
  // that must be IGNORED by the fresh sums.
  for (index_t c = 0; c < i; ++c)
    for (index_t r = c + 2; r < n; ++r) host_a(r, c) = 99.0;

  Matrix<double> ext(n + 1, n + 1);
  for (index_t c = 0; c < n; ++c)
    for (index_t r = 0; r < n; ++r) ext(r, c) = logical(r, c);
  // Finished columns on the "device" hold stale pre-iteration data that
  // must also be ignored.
  for (index_t c = 0; c < i; ++c)
    for (index_t r = 0; r < n; ++r) ext(r, c) = -77.0;

  const FreshSums fs = fresh_logical_sums(host_a.cview(), ext.cview(), i);
  for (index_t r = 0; r < n; ++r) {
    double expect = 0.0;
    for (index_t c = 0; c < n; ++c) expect += logical(r, c);
    EXPECT_NEAR(fs.row[static_cast<std::size_t>(r)], expect, 1e-13) << "row " << r;
  }
  for (index_t c = 0; c < n; ++c) {
    double expect = 0.0;
    for (index_t r = 0; r < n; ++r) expect += logical(r, c);
    EXPECT_NEAR(fs.col[static_cast<std::size_t>(c)], expect, 1e-13) << "col " << c;
  }
}

TEST(Compare, FlagsExactlyTheCorruptedLines) {
  Matrix<double> a = random_matrix(16, 16, 5);
  Matrix<double> ext = encode_extended(a.cview());
  ext(3, 7) += 2.5;  // data corruption
  const FreshSums fs = fresh_logical_sums(a.cview(), ext.cview(), 0);
  // Wait: fresh sums read ext's trailing columns, which include the error,
  // while the maintained checksums do not ⇒ row 3 and column 7 mismatch.
  const Discrepancy d = compare_checksums(fs, ext.cview(), 1e-9);
  ASSERT_EQ(d.rows.size(), 1u);
  ASSERT_EQ(d.cols.size(), 1u);
  EXPECT_EQ(d.rows[0], 3);
  EXPECT_EQ(d.cols[0], 7);
  EXPECT_NEAR(d.row_delta[0], 2.5, 1e-10);
  EXPECT_NEAR(d.col_delta[0], 2.5, 1e-10);
}

TEST(Compare, CleanWhenUncorrupted) {
  Matrix<double> a = random_matrix(20, 20, 6);
  Matrix<double> ext = encode_extended(a.cview());
  const FreshSums fs = fresh_logical_sums(a.cview(), ext.cview(), 0);
  EXPECT_TRUE(compare_checksums(fs, ext.cview(), 1e-10).clean());
}

// ---- Theorem 1 as an executable property -----------------------------------
//
// Build a random extended matrix, a random unit-lower-trapezoidal V with a
// proper T (from larft-style construction — here simply a random upper
// triangular T works for checksum *consistency*, which is a linear-algebra
// identity independent of T's meaning), apply the extended right and left
// updates exactly as the driver does, and check both checksum identities
// still hold on the trailing region.

class Theorem1 : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {};

TEST_P(Theorem1, ChecksumsSurviveExtendedUpdates) {
  const auto [n, i, ib] = GetParam();
  ASSERT_LT(i + ib, n);
  Rng rng(99);

  // Finished columns (< i) are logically zero below the subdiagonal — the
  // reason the left update (rows ≥ i+1) never needs to touch them. The
  // synthetic matrix must respect that invariant for the checksum algebra
  // to close, exactly as in the real factorization.
  Matrix<double> base = random_matrix(n, n, 7);
  for (index_t c = 0; c < i; ++c)
    for (index_t r = i + 1; r < n; ++r) base(r, c) = 0.0;
  Matrix<double> ext = encode_extended(base.cview());
  const index_t vrows = n - i - 1;

  // Random V (unit lower trapezoid) + random upper triangular T.
  Matrix<double> vce(vrows + 1, ib);  // last row = column checksums of V
  for (index_t j = 0; j < ib; ++j) {
    vce(j, j) = 1.0;
    for (index_t r = j + 1; r < vrows; ++r) vce(r, j) = rng.uniform(-1.0, 1.0);
    double cs = 0.0;
    for (index_t r = 0; r < vrows; ++r) cs += vce(r, j);
    vce(vrows, j) = cs;
  }
  Matrix<double> t(ib, ib);
  for (index_t j = 0; j < ib; ++j)
    for (index_t r = 0; r <= j; ++r) t(r, j) = rng.uniform(-1.0, 1.0);

  // Yce = E(0:n+1, i+1:n)·V·T — all rows including the checksum row, so the
  // update is checksum-consistent by construction (as in the driver).
  Matrix<double> yv(n + 1, ib);
  blas::gemm(Trans::No, Trans::No, 1.0,
             MatrixView<const double>(ext.block(0, i + 1, n + 1, vrows)),
             MatrixView<const double>(vce.block(0, 0, vrows, ib)), 0.0, yv.view());
  Matrix<double> yce(n + 1, ib);
  blas::gemm(Trans::No, Trans::No, 1.0, yv.cview(), t.cview(), 0.0, yce.view());

  // Extended right update over EVERY column the transform touches
  // (i+1..n−1 plus the checksum column); column i is never right-updated
  // because V carries no row for it. Yce has n+1 rows, so the checksum row
  // is maintained by the same GEMM — exactly Theorem 1's construction.
  const index_t rwidth = n - i;  // columns i+1..n−1 and the checksum column
  blas::gemm(Trans::No, Trans::Yes, -1.0, yce.cview(),
             MatrixView<const double>(vce.block(0, 0, vrows + 1, ib)), 1.0,
             ext.block(0, i + 1, n + 1, rwidth));

  // Extended left update over columns i..n (data + checksum column), with
  // Vce maintaining the checksum row: W = Tᵀ·Vᵀ·E; E −= Vce·W.
  const index_t lwidth = n + 1 - i;
  Matrix<double> w(ib, lwidth);
  blas::gemm(Trans::Yes, Trans::No, 1.0, MatrixView<const double>(vce.block(0, 0, vrows, ib)),
             MatrixView<const double>(ext.block(i + 1, i, vrows, lwidth)), 0.0, w.view());
  blas::trmm(Side::Left, Uplo::Upper, Trans::Yes, Diag::NonUnit, 1.0, t.cview(), w.view());
  blas::gemm(Trans::No, Trans::No, -1.0, MatrixView<const double>(vce.block(0, 0, vrows + 1, ib)),
             w.cview(), 1.0, ext.block(i + 1, i, vrows + 1, lwidth));

  // THE PROPERTY (Theorem 1): both checksum vectors remain valid for the
  // transformed matrix.
  const double tol = 1e-9 * static_cast<double>(n);
  for (index_t r = 0; r < n; ++r) {
    double rs = 0.0;
    for (index_t c = 0; c < n; ++c) rs += ext(r, c);
    ASSERT_NEAR(ext(r, n), rs, tol) << "checksum column broken at row " << r;
  }
  for (index_t c = i; c < n; ++c) {
    double cs = 0.0;
    for (index_t r = 0; r < n; ++r) cs += ext(r, c);
    ASSERT_NEAR(ext(n, c), cs, tol) << "checksum row broken at column " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, Theorem1,
                         ::testing::Values(std::make_tuple<index_t, index_t, index_t>(20, 0, 4),
                                           std::make_tuple<index_t, index_t, index_t>(20, 5, 4),
                                           std::make_tuple<index_t, index_t, index_t>(33, 8, 8),
                                           std::make_tuple<index_t, index_t, index_t>(16, 10, 1),
                                           std::make_tuple<index_t, index_t, index_t>(40, 16, 8)));

TEST(Threshold, ScalesWithSizeAndNorm) {
  EXPECT_GT(default_threshold(10.0, 100), default_threshold(10.0, 10));
  EXPECT_GT(default_threshold(100.0, 50), default_threshold(1.0, 50));
  EXPECT_GT(default_threshold(0.0, 50), 0.0);  // floor at norm 1
}

}  // namespace
}  // namespace fth::ft

// End-to-end fault-tolerant Hessenberg reduction (Algorithm 3).
#include <gtest/gtest.h>

#include <cmath>

#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lapack/gehrd.hpp"
#include "lapack/verify.hpp"

namespace fth::ft {
namespace {

VectorView<double> tau_view(std::vector<double>& tau) {
  return VectorView<double>(tau.data(), static_cast<index_t>(tau.size()));
}
VectorView<const double> tau_cview(const std::vector<double>& tau) {
  return VectorView<const double>(tau.data(), static_cast<index_t>(tau.size()));
}

TEST(FtGehrd, TotalBoundariesCountsPanels) {
  EXPECT_EQ(ft_total_boundaries(158, 32), 5);  // 32+32+32+32+29 = 157 = n−1
  EXPECT_EQ(ft_total_boundaries(65, 32), 2);
  EXPECT_EQ(ft_total_boundaries(33, 32), 1);
  EXPECT_EQ(ft_total_boundaries(10, 32), 1);
  EXPECT_EQ(ft_total_boundaries(2, 32), 1);
  EXPECT_EQ(ft_total_boundaries(1, 32), 0);
}

class FtCleanParam : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(FtCleanParam, FaultFreeRunMatchesHostReduction) {
  const auto [n, nb] = GetParam();
  hybrid::Device dev;
  Matrix<double> a = random_matrix(n, n, 11 * static_cast<std::uint64_t>(n) + 3);
  Matrix<double> orig(a.cview());
  Matrix<double> host(a.cview());

  std::vector<double> tau_h(static_cast<std::size_t>(n - 1));
  lapack::gehrd(host.view(), tau_view(tau_h), {.nb = nb, .nx = nb});

  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  FtReport rep;
  ft_gehrd(dev, a.view(), tau_view(tau), {.nb = nb}, nullptr, &rep);

  EXPECT_EQ(rep.detections, 0) << "false positive on clean data";
  EXPECT_EQ(rep.rollbacks, 0);
  EXPECT_EQ(rep.q_corrections, 0);
  EXPECT_LT(rep.max_fault_free_gap, rep.threshold)
      << "threshold margin exhausted at n=" << n;
  // Same mathematical algorithm as the host reduction.
  EXPECT_LT(max_abs_diff(a.cview(), host.cview()), 1e-10);
  auto v = lapack::verify_reduction(orig.cview(), a.cview(), tau_cview(tau));
  EXPECT_TRUE(v.hessenberg);
  EXPECT_LT(v.residual, 1e-15);
  EXPECT_LT(v.orthogonality, 1e-14);
}

INSTANTIATE_TEST_SUITE_P(SizesAndBlocks, FtCleanParam,
                         ::testing::Combine(::testing::Values<index_t>(16, 40, 96, 158, 230),
                                            ::testing::Values<index_t>(8, 16, 32)));

TEST(FtGehrd, TinySizes) {
  hybrid::Device dev;
  for (index_t n : {0, 1, 2, 3, 4}) {
    Matrix<double> a = random_matrix(n, n, 5);
    Matrix<double> orig(a.cview());
    std::vector<double> tau(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)));
    EXPECT_NO_THROW(ft_gehrd(dev, a.view(), tau_view(tau), {.nb = 4}));
    if (n >= 3) {
      auto v = lapack::verify_reduction(orig.cview(), a.cview(), tau_cview(tau));
      EXPECT_LT(v.residual, 1e-14);
    }
  }
}

// The Table II / Fig. 6 grid: every area × every moment must recover.
class FtFaultParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FtFaultParam, InjectedFaultRecovered) {
  const auto [area_i, moment_i] = GetParam();
  const auto area = static_cast<fault::Area>(area_i);
  const auto moment = static_cast<fault::Moment>(moment_i);
  const index_t n = 158, nb = 32;

  hybrid::Device dev;
  Matrix<double> a = random_matrix(n, n, 21);
  Matrix<double> orig(a.cview());
  Matrix<double> clean(a.cview());
  std::vector<double> tau_c(static_cast<std::size_t>(n - 1));
  ft_gehrd(dev, clean.view(), tau_view(tau_c), {.nb = nb});

  fault::FaultSpec spec;
  spec.area = area;
  spec.moment = moment;
  fault::Injector inj(spec, 7 + static_cast<std::uint64_t>(area_i * 3 + moment_i));

  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  FtReport rep;
  ft_gehrd(dev, a.view(), tau_view(tau), {.nb = nb}, &inj, &rep);

  ASSERT_EQ(inj.history().size(), 1u);
  // The result matches the fault-free run to recovery roundoff.
  EXPECT_LT(max_abs_diff(a.cview(), clean.cview()), 1e-9)
      << "area " << area_i << " moment " << moment_i << " at ("
      << inj.history()[0].row << "," << inj.history()[0].col << ")";
  auto v = lapack::verify_reduction(orig.cview(), a.cview(), tau_cview(tau));
  EXPECT_TRUE(v.hessenberg);
  EXPECT_LT(v.residual, 1e-13);       // Table II: stability preserved
  EXPECT_LT(v.orthogonality, 1e-12);  // Table III: orthogonality preserved

  // Mechanism sanity: trailing-area faults are caught on-line; Q faults by
  // the end-of-run Q verification; finished-H faults by the final sweep.
  switch (area) {
    case fault::Area::UpperTrailing:
    case fault::Area::LowerTrailing:
      if (moment == fault::Moment::End) {
        // Injected at the final boundary: no further iteration runs, so the
        // on-line check never sees it — the final sweep corrects it instead.
        EXPECT_GE(rep.detections + rep.final_sweep_corrections, 1);
      } else {
        EXPECT_GE(rep.detections, 1);
        EXPECT_GE(rep.rollbacks, 1);
      }
      break;
    case fault::Area::QPanel:
      EXPECT_EQ(rep.detections, 0);
      EXPECT_EQ(rep.q_corrections, 1);
      break;
    case fault::Area::FinishedH:
      EXPECT_GE(rep.final_sweep_corrections + rep.detections, 1);
      break;
    default:
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AreasByMoments, FtFaultParam,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(0, 1, 2)));

TEST(FtGehrd, TwoSimultaneousErrorsDistinctMagnitudes) {
  const index_t n = 128, nb = 32;
  hybrid::Device dev;
  Matrix<double> a = random_matrix(n, n, 31);
  Matrix<double> clean(a.cview());
  std::vector<double> tau_c(static_cast<std::size_t>(n - 1));
  ft_gehrd(dev, clean.view(), tau_view(tau_c), {.nb = nb});

  std::vector<fault::FaultSpec> specs(2);
  specs[0].area = fault::Area::LowerTrailing;
  specs[0].boundary = 2;
  specs[0].magnitude = 50.0;
  specs[1].area = fault::Area::LowerTrailing;
  specs[1].boundary = 2;
  specs[1].magnitude = 200.0;
  fault::Injector inj(specs, 9);

  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  FtReport rep;
  ft_gehrd(dev, a.view(), tau_view(tau), {.nb = nb}, &inj, &rep);
  EXPECT_GE(rep.detections, 1);
  // Both errors corrected in one recovery episode (same boundary).
  EXPECT_LT(max_abs_diff(a.cview(), clean.cview()), 1e-9);
}

TEST(FtGehrd, ErrorsInConsecutiveIterations) {
  // "Once the algorithm has corrected the simultaneous errors, it continues
  // as normal and is ready to detect and correct subsequent soft errors."
  const index_t n = 160, nb = 32;
  hybrid::Device dev;
  Matrix<double> a = random_matrix(n, n, 32);
  Matrix<double> clean(a.cview());
  std::vector<double> tau_c(static_cast<std::size_t>(n - 1));
  ft_gehrd(dev, clean.view(), tau_view(tau_c), {.nb = nb});

  std::vector<fault::FaultSpec> specs(2);
  specs[0].area = fault::Area::LowerTrailing;
  specs[0].boundary = 1;
  specs[1].area = fault::Area::UpperTrailing;
  specs[1].boundary = 3;
  fault::Injector inj(specs, 10);

  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  FtReport rep;
  ft_gehrd(dev, a.view(), tau_view(tau), {.nb = nb}, &inj, &rep);
  EXPECT_GE(rep.detections, 2);
  EXPECT_EQ(rep.events.size(), static_cast<std::size_t>(rep.rollbacks));
  EXPECT_LT(max_abs_diff(a.cview(), clean.cview()), 1e-9);
}

TEST(FtGehrd, ChecksumElementFaultRepaired) {
  // A fault can hit the redundancy itself: the checksum column lives at
  // device column n, which the injector cannot address, so corrupt a
  // checksum-row entry through an explicit-coordinate data fault instead:
  // nothing to do — instead verify via the final sweep path using a fault
  // in the last trailing column (never re-checked per-iteration after the
  // final boundary).
  const index_t n = 96, nb = 32;
  hybrid::Device dev;
  Matrix<double> a = random_matrix(n, n, 33);
  Matrix<double> clean(a.cview());
  std::vector<double> tau_c(static_cast<std::size_t>(n - 1));
  ft_gehrd(dev, clean.view(), tau_view(tau_c), {.nb = nb});

  fault::FaultSpec spec;
  spec.row = 40;
  spec.col = n - 1;  // the one column that is never part of a panel
  spec.boundary = ft_total_boundaries(n, nb);
  fault::Injector inj(spec);

  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  FtReport rep;
  ft_gehrd(dev, a.view(), tau_view(tau), {.nb = nb}, &inj, &rep);
  EXPECT_GE(rep.final_sweep_corrections, 1);
  EXPECT_LT(max_abs_diff(a.cview(), clean.cview()), 1e-9);
}

TEST(FtGehrd, SmallMagnitudeFaultBelowThresholdIsBenign) {
  // A disturbance below the detection threshold escapes detection — and by
  // construction it is also too small to matter (this documents the
  // designed behaviour rather than an aspiration).
  const index_t n = 96, nb = 32;
  hybrid::Device dev;
  Matrix<double> a = random_matrix(n, n, 34);
  Matrix<double> clean(a.cview());
  std::vector<double> tau_c(static_cast<std::size_t>(n - 1));
  ft_gehrd(dev, clean.view(), tau_view(tau_c), {.nb = nb});

  fault::FaultSpec spec;
  spec.area = fault::Area::LowerTrailing;
  spec.boundary = 1;
  spec.relative = false;
  spec.magnitude = 1e-14;
  fault::Injector inj(spec);

  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  FtReport rep;
  FtOptions opt;
  opt.nb = nb;
  opt.final_sweep = false;  // the sweep would flag it at locate tolerance
  ft_gehrd(dev, a.view(), tau_view(tau), opt, &inj, &rep);
  EXPECT_EQ(rep.detections, 0);
  EXPECT_LT(max_abs_diff(a.cview(), clean.cview()), 1e-10);
}

TEST(FtGehrd, MagnitudeSweepDetectionBoundary) {
  // Faults orders of magnitude above the threshold must always be caught.
  const index_t n = 96, nb = 32;
  hybrid::Device dev;
  for (double mag : {1e-6, 1e-2, 1.0, 1e4}) {
    Matrix<double> a = random_matrix(n, n, 35);
    fault::FaultSpec spec;
    spec.area = fault::Area::LowerTrailing;
    spec.boundary = 1;
    spec.relative = false;
    spec.magnitude = mag;
    fault::Injector inj(spec, 60);
    std::vector<double> tau(static_cast<std::size_t>(n - 1));
    FtReport rep;
    ft_gehrd(dev, a.view(), tau_view(tau), {.nb = nb}, &inj, &rep);
    EXPECT_GE(rep.detections + rep.final_sweep_corrections, 1)
        << "fault of magnitude " << mag << " escaped";
  }
}

TEST(FtGehrd, ReportTimersPopulated) {
  const index_t n = 128, nb = 32;
  hybrid::Device dev;
  Matrix<double> a = random_matrix(n, n, 36);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  FtReport rep;
  hybrid::HybridGehrdStats st;
  ft_gehrd(dev, a.view(), tau_view(tau), {.nb = nb}, nullptr, &rep, &st);
  EXPECT_GT(rep.encode_seconds, 0.0);
  EXPECT_GT(rep.detect_seconds, 0.0);
  EXPECT_GT(rep.q_seconds, 0.0);
  EXPECT_GT(rep.threshold, 0.0);
  EXPECT_EQ(rep.recovery_seconds, 0.0);  // no faults
  EXPECT_GT(st.total_seconds, 0.0);
  EXPECT_EQ(st.panels, ft_total_boundaries(n, nb));
  EXPECT_GT(st.h2d_bytes, 0u);
  EXPECT_GT(st.d2h_bytes, 0u);
}

TEST(FtGehrd, ProtectQDisabledSkipsQWork) {
  const index_t n = 96, nb = 32;
  hybrid::Device dev;
  Matrix<double> a = random_matrix(n, n, 37);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  FtReport rep;
  FtOptions opt;
  opt.nb = nb;
  opt.protect_q = false;
  ft_gehrd(dev, a.view(), tau_view(tau), opt, nullptr, &rep);
  EXPECT_EQ(rep.q_seconds, 0.0);
  EXPECT_EQ(rep.q_corrections, 0);
}

TEST(FtGehrd, GradedMatrixThresholdStillClean) {
  // Entries spanning several orders of magnitude stress the scaled
  // threshold: no false positives allowed.
  const index_t n = 128, nb = 32;
  hybrid::Device dev;
  Matrix<double> a = random_graded_matrix(n, 38, 6.0);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  FtReport rep;
  ft_gehrd(dev, a.view(), tau_view(tau), {.nb = nb}, nullptr, &rep);
  EXPECT_EQ(rep.detections, 0);
  EXPECT_LT(rep.max_fault_free_gap, rep.threshold);
}

}  // namespace
}  // namespace fth::ft

// Multi-device sharded Hessenberg reduction (ft::pool_gehrd): clean runs
// must match the host reference at every pool size, a single device loss
// of any kind must be absorbed by the coded redundancy group without
// rollback, and losses beyond the correction radius must escalate
// deterministically (ISSUE 7).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <tuple>
#include <vector>

#include "fault/fault_plane.hpp"
#include "ft/pool_gehrd.hpp"
#include "obs/health.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lapack/gehrd.hpp"
#include "lapack/verify.hpp"
#include "test_utils.hpp"

namespace fth::ft {
namespace {

VectorView<double> tau_view(std::vector<double>& tau) {
  return VectorView<double>(tau.data(), static_cast<index_t>(tau.size()));
}
VectorView<const double> tau_cview(const std::vector<double>& tau) {
  return VectorView<const double>(tau.data(), static_cast<index_t>(tau.size()));
}

// ---- clean runs across pool geometries --------------------------------------

class PoolParam : public ::testing::TestWithParam<std::tuple<index_t, index_t, int>> {};

TEST_P(PoolParam, MatchesHostReduction) {
  const auto [n, nb, devices] = GetParam();
  hybrid::DevicePool pool({.devices = devices});
  Matrix<double> a = random_matrix(n, n, 3 * static_cast<std::uint64_t>(n) + devices);
  Matrix<double> orig(a.cview());
  Matrix<double> host(a.cview());

  std::vector<double> tau_h(static_cast<std::size_t>(n - 1));
  lapack::gehrd(host.view(), tau_view(tau_h), {.nb = nb, .nx = nb});

  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  PoolGehrdReport rep;
  pool_gehrd(pool, a.view(), tau_view(tau), {.nb = nb, .nx = nb}, &rep);

  EXPECT_EQ(rep.outcome.status, RecoveryStatus::Clean);
  EXPECT_EQ(rep.devices, devices);
  EXPECT_EQ(rep.data_shards, devices > 1 ? devices - 1 : 1);
  EXPECT_EQ(rep.losses, 0);
  EXPECT_FALSE(rep.degraded);
  // Same panel math as the host algorithm: agreement to reassociation
  // roundoff, like hybrid_gehrd.
  EXPECT_LT(max_abs_diff(a.cview(), host.cview()), 1e-10);
  auto v = lapack::verify_reduction(orig.cview(), a.cview(), tau_cview(tau));
  EXPECT_TRUE(v.hessenberg);
  EXPECT_LT(v.residual, 1e-14);
  EXPECT_LT(v.orthogonality, 1e-13);
}

INSTANTIATE_TEST_SUITE_P(SizesBlocksDevices, PoolParam,
                         ::testing::Values(std::tuple<index_t, index_t, int>{96, 16, 1},
                                           std::tuple<index_t, index_t, int>{96, 16, 3},
                                           std::tuple<index_t, index_t, int>{130, 16, 2},
                                           std::tuple<index_t, index_t, int>{130, 32, 4},
                                           std::tuple<index_t, index_t, int>{250, 32, 3}));

TEST(PoolGehrd, SmallMatrixFallsBackToHost) {
  hybrid::DevicePool pool({.devices = 3});
  const index_t n = 24;
  Matrix<double> a = random_matrix(n, n, 9);
  Matrix<double> orig(a.cview());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  PoolGehrdReport rep;
  pool_gehrd(pool, a.view(), tau_view(tau), {.nb = 32, .nx = 128}, &rep);
  EXPECT_EQ(rep.outcome.status, RecoveryStatus::Clean);
  auto v = lapack::verify_reduction(orig.cview(), a.cview(), tau_cview(tau));
  EXPECT_LT(v.residual, 1e-14);
}

// ---- single-loss recovery ---------------------------------------------------

struct LossCase {
  fault::LossKind kind;
  int device;              ///< pool ordinal struck (2 = parity at D=3)
  std::uint64_t countdown; ///< post-encode tasks on that member before firing
};

class PoolLoss : public ::testing::TestWithParam<LossCase> {};

TEST_P(PoolLoss, OneLossIsAbsorbedWithoutRollback) {
  const LossCase lc = GetParam();
  const index_t n = 160;
  hybrid::DevicePool pool({.devices = 3});
  Matrix<double> a = random_matrix(n, n, 42);
  Matrix<double> orig(a.cview());
  Matrix<double> host(a.cview());
  std::vector<double> tau_h(static_cast<std::size_t>(n - 1));
  lapack::gehrd(host.view(), tau_view(tau_h), {.nb = 16, .nx = 16});

  fault::FaultPlane plane(0xD15EA5Eull);
  plane.arm_device_loss({.kind = lc.kind, .device = lc.device, .countdown = lc.countdown});

  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  PoolGehrdReport rep;
  PoolGehrdOptions opt{.nb = 16, .nx = 16, .plane = &plane};
  if (lc.kind == fault::LossKind::SilentStall) opt.timeout_ms = 250.0;
  pool_gehrd(pool, a.view(), tau_view(tau), opt, &rep);

  ASSERT_EQ(plane.fired_losses().size(), 1u) << "the strike never fired";
  EXPECT_EQ(rep.outcome.status, RecoveryStatus::Recovered);
  EXPECT_EQ(rep.losses, 1);
  EXPECT_TRUE(rep.degraded);
  EXPECT_EQ(rep.lost_device, lc.device);
  if (lc.device == 2) {
    // Parity member: nothing to reconstruct, the group just degrades.
    EXPECT_EQ(rep.reconstructions, 0);
    EXPECT_EQ(rep.remaps, 0);
  } else {
    EXPECT_EQ(rep.reconstructions, 1);
    EXPECT_EQ(rep.remaps, 1);
  }

  // The survivors + code gave back the exact factorization: same bar as a
  // clean run, no fault-shaped error left behind.
  EXPECT_LT(max_abs_diff(a.cview(), host.cview()), 1e-10);
  auto v = lapack::verify_reduction(orig.cview(), a.cview(), tau_cview(tau));
  EXPECT_TRUE(v.hessenberg);
  EXPECT_LT(v.residual, 1e-14);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndMembers, PoolLoss,
    ::testing::Values(LossCase{fault::LossKind::HardDeath, 0, 9},
                      LossCase{fault::LossKind::HardDeath, 2, 4},
                      LossCase{fault::LossKind::PoisonOutput, 1, 7},
                      LossCase{fault::LossKind::PoisonOutput, 0, 25},
                      LossCase{fault::LossKind::SilentStall, 1, 12},
                      LossCase{fault::LossKind::SilentStall, 2, 6}));

// ---- health plane: slow-but-alive is never a loss ---------------------------

// ISSUE 8 satellite: a member whose tasks land just under the timeout must
// NOT be declared lost — the health monitor reads it as Degraded (a
// near-miss) and the run stays Clean. Member 1 stalls 80 ms on every 32nd
// task against a 150 ms allowance, so several host waits land in the
// near-miss band (≥ 30% of the allowance) without ever timing out. Runs
// under FTH_CHECK=1 with the rest of the Debug suite.
TEST(PoolHealth, SlowButAliveMemberIsDegradedNotLost) {
  const index_t n = 96;
  const int devices = 3;
  hybrid::DevicePool pool({.devices = devices});
  pool.stream(1).set_task_hook([](std::uint64_t idx) {
    if (idx % 32 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(80));
  });

  obs::HealthConfig hc;
  hc.base_timeout_ms = 150.0;  // the 80 ms stall stays under the allowance
  hc.adaptive = false;         // pin it: the near-miss band must be exact
  hc.degraded_frac = 0.3;      // stalled waits (~80 ms ≥ 45 ms) are near-misses
  hc.degraded_hold = 1 << 20;  // keep Degraded sticky for the final assertion
  obs::HealthMonitor health(devices, hc);

  Matrix<double> a = random_matrix(n, n, 1234);
  Matrix<double> orig(a.cview());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  PoolGehrdReport rep;
  PoolGehrdOptions opt{.nb = 16, .nx = 16};
  opt.health = &health;
  pool_gehrd(pool, a.view(), tau_view(tau), opt, &rep);

  EXPECT_EQ(rep.outcome.status, RecoveryStatus::Clean) << "a slow member is not a loss";
  EXPECT_EQ(rep.losses, 0);
  EXPECT_FALSE(rep.degraded) << "the redundancy group keeps its parity member";
  EXPECT_NE(health.state(1), obs::DeviceState::Lost);
  EXPECT_EQ(health.state(1), obs::DeviceState::Degraded);
  EXPECT_GE(health.snapshot(1).near_misses, 1u);
  EXPECT_EQ(health.state(0), obs::DeviceState::Healthy);
  EXPECT_EQ(health.snapshot(1).timeouts, 0u);
  ASSERT_EQ(rep.health.size(), static_cast<std::size_t>(devices));
  EXPECT_EQ(rep.health[1].state, obs::DeviceState::Degraded);

  auto v = lapack::verify_reduction(orig.cview(), a.cview(), tau_cview(tau));
  EXPECT_TRUE(v.hessenberg);
  EXPECT_LT(v.residual, 1e-14);
}

// ---- escalation beyond the correction radius --------------------------------

TEST(PoolLossEscalation, TwoLossesInOneGroupEscalateDeterministically) {
  const index_t n = 130;
  hybrid::DevicePool pool({.devices = 3});
  Matrix<double> a = random_matrix(n, n, 77);
  fault::FaultPlane plane;
  plane.arm_device_loss({.kind = fault::LossKind::HardDeath, .device = 0, .countdown = 8});
  plane.arm_device_loss({.kind = fault::LossKind::HardDeath, .device = 1, .countdown = 30});

  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  PoolGehrdReport rep;
  EXPECT_THROW(
      pool_gehrd(pool, a.view(), tau_view(tau), {.nb = 16, .nx = 16, .plane = &plane}, &rep),
      recovery_error);
  EXPECT_EQ(rep.outcome.status, RecoveryStatus::Unrecoverable);
  EXPECT_EQ(rep.outcome.reason, AbortReason::DeviceLost);
  EXPECT_GE(rep.losses, 1);
}

TEST(PoolLossEscalation, SingleDevicePoolHasNoRedundancyToSpend) {
  const index_t n = 96;
  hybrid::DevicePool pool({.devices = 1});
  Matrix<double> a = random_matrix(n, n, 5);
  fault::FaultPlane plane;
  plane.arm_device_loss({.kind = fault::LossKind::HardDeath, .device = 0, .countdown = 6});

  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  PoolGehrdReport rep;
  EXPECT_THROW(
      pool_gehrd(pool, a.view(), tau_view(tau), {.nb = 16, .nx = 16, .plane = &plane}, &rep),
      recovery_error);
  EXPECT_EQ(rep.outcome.reason, AbortReason::DeviceLost);
}

}  // namespace
}  // namespace fth::ft

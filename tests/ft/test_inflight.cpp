// In-flight fault injection through the FaultPlane: strikes mid-task,
// mid-transfer, between the block updates, into checksums and checkpoints,
// and during an ongoing recovery — for all three FT drivers.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fault/fault_plane.hpp"
#include "fault/injector.hpp"
#include "ft/ft_gebrd.hpp"
#include "ft/ft_gehrd.hpp"
#include "ft/ft_sytrd.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"

namespace fth::ft {
namespace {

constexpr index_t kN = 96;
constexpr index_t kNb = 32;

struct RunResult {
  Matrix<double> a{0, 0};
  FtReport rep;
};

RunResult run_gehrd(const Matrix<double>& a0, fault::FaultPlane* plane,
                    fault::Injector* inj = nullptr) {
  hybrid::Device dev;
  RunResult r;
  r.a = Matrix<double>(a0.cview());
  const index_t n = a0.rows();
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  FtOptions o;
  o.nb = kNb;
  o.fault_plane = plane;
  ft_gehrd(dev, r.a.view(), VectorView<double>(tau.data(), n - 1), o, inj, &r.rep);
  return r;
}

RunResult run_sytrd(const Matrix<double>& a0, fault::FaultPlane* plane,
                    fault::Injector* inj = nullptr) {
  hybrid::Device dev;
  RunResult r;
  r.a = Matrix<double>(a0.cview());
  const index_t n = a0.rows();
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(n - 1));
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  FtSytrdOptions o;
  o.nb = kNb;
  o.fault_plane = plane;
  ft_sytrd(dev, r.a.view(), VectorView<double>(d.data(), n),
           VectorView<double>(e.data(), n - 1), VectorView<double>(tau.data(), n - 1), o, inj,
           &r.rep);
  return r;
}

RunResult run_gebrd(const Matrix<double>& a0, fault::FaultPlane* plane,
                    fault::Injector* inj = nullptr) {
  hybrid::Device dev;
  RunResult r;
  r.a = Matrix<double>(a0.cview());
  const index_t n = a0.rows();
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(n - 1));
  std::vector<double> tauq(static_cast<std::size_t>(n));
  std::vector<double> taup(static_cast<std::size_t>(n - 1));
  FtGebrdOptions o;
  o.nb = kNb;
  o.fault_plane = plane;
  ft_gebrd(dev, r.a.view(), VectorView<double>(d.data(), n),
           VectorView<double>(e.data(), n - 1), VectorView<double>(tauq.data(), n),
           VectorView<double>(taup.data(), n - 1), o, inj, &r.rep);
  return r;
}

using Runner = RunResult (*)(const Matrix<double>&, fault::FaultPlane*, fault::Injector*);

/// Task count of a clean run, for aiming countdowns mid-factorization.
std::uint64_t clean_tasks(Runner run, const Matrix<double>& a0) {
  fault::FaultPlane counter(1);
  (void)run(a0, &counter, nullptr);
  return counter.trigger_counts().tasks;
}

fault::InFlightFault trailing_fault(fault::FaultKind kind, std::uint64_t countdown,
                                    double min_impact = 0.0) {
  fault::InFlightFault f;
  f.when = fault::When::StreamTask;
  f.surface = fault::Surface::TrailingMatrix;
  f.kind = kind;
  f.countdown = countdown;
  f.min_impact = min_impact;
  return f;
}

/// One in-flight fault of the given kind at mid-run; the result must match
/// the clean factorization and the plane must report the strike.
void expect_recovers(Runner run, const Matrix<double>& a0, const fault::InFlightFault& f,
                     const char* what) {
  const RunResult clean = run(a0, nullptr, nullptr);
  fault::FaultPlane plane(0xD15EA5Eull);
  plane.arm(f);
  const RunResult faulty = run(a0, &plane, nullptr);
  EXPECT_TRUE(plane.all_fired()) << what << ": armed fault never struck";
  // Some mechanism must have seen it...
  EXPECT_GE(faulty.rep.detections + faulty.rep.final_sweep_corrections +
                faulty.rep.reconstructions + faulty.rep.ckpt_rederivations,
            1)
      << what;
  // ...and the result must match the fault-free run.
  EXPECT_LT(max_abs_diff(faulty.a.cview(), clean.a.cview()), 1e-8) << what;
  EXPECT_EQ(faulty.rep.outcome.status, RecoveryStatus::Recovered) << what;
}

// ---- gehrd: every fault class --------------------------------------------

TEST(InFlight, GehrdExponentFlipMidRun) {
  Matrix<double> a0 = random_matrix(kN, kN, 301);
  const std::uint64_t tasks = clean_tasks(&run_gehrd, a0);
  expect_recovers(&run_gehrd, a0,
                  trailing_fault(fault::FaultKind::ExponentFlip, tasks / 2, 1.0),
                  "gehrd exponent flip");
}

TEST(InFlight, GehrdSignFlipEarly) {
  Matrix<double> a0 = random_matrix(kN, kN, 302);
  const std::uint64_t tasks = clean_tasks(&run_gehrd, a0);
  expect_recovers(&run_gehrd, a0, trailing_fault(fault::FaultKind::SignFlip, tasks / 5, 1.0),
                  "gehrd sign flip");
}

TEST(InFlight, GehrdQuietNaNMidRun) {
  Matrix<double> a0 = random_matrix(kN, kN, 303);
  const std::uint64_t tasks = clean_tasks(&run_gehrd, a0);
  Matrix<double> clean = run_gehrd(a0, nullptr, nullptr).a;
  fault::FaultPlane plane(0xAB1Eull);
  plane.arm(trailing_fault(fault::FaultKind::QuietNaN, tasks / 2));
  const RunResult faulty = run_gehrd(a0, &plane, nullptr);
  EXPECT_TRUE(plane.all_fired());
  // NaN cannot be rolled back: it must have been reconstructed (or the
  // panel tripwire caught it before it spread).
  EXPECT_GE(faulty.rep.reconstructions + faulty.rep.panel_aborts, 1);
  EXPECT_LT(max_abs_diff(faulty.a.cview(), clean.cview()), 1e-8);
  for (index_t j = 0; j < kN; ++j)
    for (index_t i = 0; i < kN; ++i)
      ASSERT_TRUE(std::isfinite(faulty.a(i, j))) << "NaN survived at " << i << "," << j;
}

TEST(InFlight, GehrdInfinityMidRun) {
  Matrix<double> a0 = random_matrix(kN, kN, 304);
  const std::uint64_t tasks = clean_tasks(&run_gehrd, a0);
  expect_recovers(&run_gehrd, a0, trailing_fault(fault::FaultKind::Infinity, tasks / 3),
                  "gehrd infinity");
}

TEST(InFlight, GehrdChecksumRowStrike) {
  Matrix<double> a0 = random_matrix(kN, kN, 305);
  const std::uint64_t tasks = clean_tasks(&run_gehrd, a0);
  fault::InFlightFault f;
  f.when = fault::When::StreamTask;
  f.surface = fault::Surface::ChecksumRow;
  f.kind = fault::FaultKind::ExponentFlip;
  f.countdown = tasks / 2;
  f.min_impact = 1.0;
  expect_recovers(&run_gehrd, a0, f, "gehrd checksum-row strike");
}

TEST(InFlight, GehrdChecksumColStrike) {
  Matrix<double> a0 = random_matrix(kN, kN, 306);
  const std::uint64_t tasks = clean_tasks(&run_gehrd, a0);
  fault::InFlightFault f;
  f.when = fault::When::StreamTask;
  f.surface = fault::Surface::ChecksumCol;
  f.kind = fault::FaultKind::ExponentFlip;
  f.countdown = tasks / 2;
  f.min_impact = 1.0;
  expect_recovers(&run_gehrd, a0, f, "gehrd checksum-col strike");
}

TEST(InFlight, GehrdBetweenUpdatesStrike) {
  Matrix<double> a0 = random_matrix(kN, kN, 307);
  fault::InFlightFault f;
  f.when = fault::When::BetweenUpdates;
  f.surface = fault::Surface::TrailingMatrix;
  f.kind = fault::FaultKind::ExponentFlip;
  f.countdown = 2;  // the second iteration's right/left seam
  f.min_impact = 1.0;
  expect_recovers(&run_gehrd, a0, f, "gehrd between-updates strike");
}

TEST(InFlight, GehrdTransferStrikeIntoCheckpoint) {
  Matrix<double> a0 = random_matrix(kN, kN, 308);
  fault::FaultPlane counter(1);
  (void)run_gehrd(a0, &counter, nullptr);
  const fault::TriggerCounts counts = counter.trigger_counts();
  ASSERT_GT(counts.d2h, 0u) << "driver ships no fault-eligible d2h transfers";

  Matrix<double> clean = run_gehrd(a0, nullptr, nullptr).a;
  fault::FaultPlane plane(0xC0FEull);
  fault::InFlightFault f;
  f.when = fault::When::TransferD2H;
  f.kind = fault::FaultKind::ExponentFlip;
  f.countdown = counts.d2h / 2 + 1;
  f.min_impact = 1.0;
  plane.arm(f);
  const RunResult faulty = run_gehrd(a0, &plane, nullptr);
  EXPECT_TRUE(plane.all_fired());
  // A corrupted checkpoint pre-image is caught by the save-time bitwise
  // verification against the device's maintained data.
  EXPECT_GE(faulty.rep.ckpt_rederivations + faulty.rep.detections, 1);
  EXPECT_LT(max_abs_diff(faulty.a.cview(), clean.cview()), 1e-8);
}

// Satellite: a fault into the host checkpoint buffer, paired with a
// trailing-matrix fault in the SAME iteration so the rollback that follows
// must consume (and therefore verify and re-derive) the struck checkpoint.
TEST(InFlight, GehrdCheckpointStrikeIsRederived) {
  Matrix<double> a0 = random_matrix(kN, kN, 309);
  Matrix<double> clean = run_gehrd(a0, nullptr, nullptr).a;

  fault::FaultPlane plane(0xBADCull);
  fault::InFlightFault f;
  f.when = fault::When::StreamTask;
  f.surface = fault::Surface::Checkpoint;
  f.kind = fault::FaultKind::ExponentFlip;
  f.countdown = 1;  // retries until iteration 0's checkpoint exists, then fires
  f.min_impact = 1.0;
  plane.arm(f);
  // Second strike: trailing data early in iteration 0 → detection at
  // boundary 1 → rollback of iteration 0 reads the corrupted checkpoint.
  fault::InFlightFault g;
  g.when = fault::When::StreamTask;
  g.surface = fault::Surface::TrailingMatrix;
  g.kind = fault::FaultKind::ExponentFlip;
  g.bit = 52;
  g.countdown = 2;
  g.min_impact = 0.1;
  plane.arm(g);

  const RunResult faulty = run_gehrd(a0, &plane, nullptr);
  EXPECT_TRUE(plane.all_fired());
  EXPECT_GE(faulty.rep.detections, 1);
  EXPECT_GE(faulty.rep.ckpt_rederivations, 1)
      << "corrupted checkpoint restored without re-derivation";
  EXPECT_LT(max_abs_diff(faulty.a.cview(), clean.cview()), 1e-8);
  EXPECT_EQ(faulty.rep.outcome.status, RecoveryStatus::Recovered);
}

// Satellite: a second fault strikes while the first recovery re-executes;
// the next detect/rollback round must absorb it and FtReport.events must
// record both episodes.
TEST(InFlight, GehrdFaultDuringRecovery) {
  Matrix<double> a0 = random_matrix(kN, kN, 310);
  Matrix<double> clean = run_gehrd(a0, nullptr, nullptr).a;

  fault::FaultPlane plane(0x5EC0ull);
  fault::InFlightFault f;
  f.when = fault::When::DuringRecovery;
  f.surface = fault::Surface::TrailingMatrix;
  f.kind = fault::FaultKind::ExponentFlip;
  f.countdown = 1;
  f.min_impact = 1.0;
  plane.arm(f);

  fault::FaultSpec spec;
  spec.area = fault::Area::LowerTrailing;
  spec.boundary = 2;
  fault::Injector inj(spec, 43);

  const RunResult faulty = run_gehrd(a0, &plane, &inj);
  EXPECT_TRUE(plane.all_fired()) << "no recovery happened, or the bracket never opened";
  EXPECT_GE(faulty.rep.detections, 2) << "second strike not detected";
  EXPECT_GE(faulty.rep.events.size(), 2u) << "both episodes must be recorded";
  EXPECT_LT(max_abs_diff(faulty.a.cview(), clean.cview()), 1e-8);
  EXPECT_EQ(faulty.rep.outcome.status, RecoveryStatus::Recovered);
}

// ---- sytrd / gebrd: the hardening is uniform -----------------------------

TEST(InFlight, SytrdExponentFlipMidRun) {
  Matrix<double> a0 = random_symmetric_matrix(kN, 311);
  const std::uint64_t tasks = clean_tasks(&run_sytrd, a0);
  // Pin the lowest exponent bit (×2 / ÷2): a high exponent bit can blow the
  // element to ~1e300 and overflow the whole symmetric update to Inf, which
  // is a legitimately unrecoverable pattern — the escalation tests' job.
  fault::InFlightFault f = trailing_fault(fault::FaultKind::ExponentFlip, tasks / 2, 0.1);
  f.bit = 52;
  expect_recovers(&run_sytrd, a0, f, "sytrd exponent flip");
}

TEST(InFlight, SytrdQuietNaNMidRun) {
  Matrix<double> a0 = random_symmetric_matrix(kN, 312);
  const std::uint64_t tasks = clean_tasks(&run_sytrd, a0);
  Matrix<double> clean = run_sytrd(a0, nullptr, nullptr).a;
  fault::FaultPlane plane(0x7E57ull);
  plane.arm(trailing_fault(fault::FaultKind::QuietNaN, tasks / 2));
  const RunResult faulty = run_sytrd(a0, &plane, nullptr);
  EXPECT_TRUE(plane.all_fired());
  EXPECT_GE(faulty.rep.reconstructions + faulty.rep.panel_aborts, 1);
  EXPECT_LT(max_abs_diff(faulty.a.cview(), clean.cview()), 1e-8);
  EXPECT_EQ(faulty.rep.outcome.status, RecoveryStatus::Recovered);
}

TEST(InFlight, SytrdDuringRecoveryStrike) {
  Matrix<double> a0 = random_symmetric_matrix(kN, 313);
  Matrix<double> clean = run_sytrd(a0, nullptr, nullptr).a;
  fault::FaultPlane plane(0x90DAull);
  fault::InFlightFault f;
  f.when = fault::When::DuringRecovery;
  f.surface = fault::Surface::TrailingMatrix;
  f.kind = fault::FaultKind::ExponentFlip;
  f.bit = 52;  // bounded flip: an overflow-to-Inf cross is unrecoverable by design
  f.countdown = 1;
  f.min_impact = 0.1;
  plane.arm(f);
  fault::FaultSpec spec;
  spec.area = fault::Area::LowerTrailing;
  spec.boundary = 2;
  fault::Injector inj(spec, 47);
  const RunResult faulty = run_sytrd(a0, &plane, &inj);
  EXPECT_TRUE(plane.all_fired());
  EXPECT_GE(faulty.rep.detections, 2);
  EXPECT_GE(faulty.rep.events.size(), 2u);
  EXPECT_LT(max_abs_diff(faulty.a.cview(), clean.cview()), 1e-8);
}

TEST(InFlight, GebrdExponentFlipMidRun) {
  Matrix<double> a0 = random_matrix(kN, kN, 314);
  const std::uint64_t tasks = clean_tasks(&run_gebrd, a0);
  expect_recovers(&run_gebrd, a0,
                  trailing_fault(fault::FaultKind::ExponentFlip, tasks / 2, 1.0),
                  "gebrd exponent flip");
}

TEST(InFlight, GebrdQuietNaNMidRun) {
  Matrix<double> a0 = random_matrix(kN, kN, 315);
  const std::uint64_t tasks = clean_tasks(&run_gebrd, a0);
  Matrix<double> clean = run_gebrd(a0, nullptr, nullptr).a;
  fault::FaultPlane plane(0x6EB2ull);
  plane.arm(trailing_fault(fault::FaultKind::QuietNaN, tasks / 2));
  const RunResult faulty = run_gebrd(a0, &plane, nullptr);
  EXPECT_TRUE(plane.all_fired());
  EXPECT_GE(faulty.rep.reconstructions + faulty.rep.panel_aborts, 1);
  EXPECT_LT(max_abs_diff(faulty.a.cview(), clean.cview()), 1e-8);
  EXPECT_EQ(faulty.rep.outcome.status, RecoveryStatus::Recovered);
}

TEST(InFlight, GebrdChecksumStrike) {
  Matrix<double> a0 = random_matrix(kN, kN, 316);
  const std::uint64_t tasks = clean_tasks(&run_gebrd, a0);
  fault::InFlightFault f;
  f.when = fault::When::StreamTask;
  f.surface = fault::Surface::ChecksumCol;
  f.kind = fault::FaultKind::ExponentFlip;
  f.countdown = tasks / 2;
  f.min_impact = 1.0;
  expect_recovers(&run_gebrd, a0, f, "gebrd checksum strike");
}

}  // namespace
}  // namespace fth::ft

// Coded shard layout + redundancy group in isolation (ISSUE 7 S3): the
// reconstruction math must recover a dropped shard exactly (to fp
// reassociation) at several n/Ddata geometries, and a second loss in the
// same group must be a provable escalation, never silent garbage.
#include <gtest/gtest.h>

#include <vector>

#include "ft/shard_code.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "test_utils.hpp"

namespace fth::ft {
namespace {

// ---- layout geometry --------------------------------------------------------

TEST(ShardLayout, RoundRobinGeometryIsABijectionOverColumns) {
  for (const int dd : {1, 2, 3, 5}) {
    for (const index_t n : {index_t{7}, index_t{12}, index_t{33}}) {
      const ShardLayout lay = make_shard_layout(n, dd);
      EXPECT_EQ(lay.rows(), n + 1);
      EXPECT_EQ(lay.w_max, (n + dd - 1) / dd);
      index_t covered = 0;
      for (int s = 0; s < dd; ++s) covered += lay.owned_cols(s);
      EXPECT_EQ(covered, n) << "dd=" << dd << " n=" << n;
      for (index_t c = 0; c < n; ++c) {
        const int s = lay.slot_of(c);
        const index_t l = lay.local_of(c);
        EXPECT_EQ(lay.global_of(s, l), c);
        EXPECT_LT(l, lay.owned_cols(s));
      }
    }
  }
}

TEST(ShardLayout, DomainStartCoversEveryTrailingColumnOnEverySlot) {
  const ShardLayout lay = make_shard_layout(33, 3);
  for (index_t c = 0; c <= 33; ++c) {
    const index_t d0 = lay.domain_start(c);
    // No trailing column may live below the lockstep domain…
    for (index_t cc = c; cc < lay.n; ++cc) EXPECT_GE(lay.local_of(cc), d0) << c;
    // …and the domain is tight: some slot owns a trailing column at d0.
    if (c < lay.n) {
      bool tight = false;
      for (int s = 0; s < lay.data_shards; ++s)
        if (lay.global_of(s, d0) >= c && lay.global_of(s, d0) < lay.n) tight = true;
      EXPECT_TRUE(tight) << c;
    }
  }
}

// ---- scatter / code row / gather -------------------------------------------

TEST(ShardCode, ScatterFillsTheCodeRowAndGatherRoundTrips) {
  const index_t n = 29;
  const Matrix<double> a = random_matrix(n, n, 7);
  const ShardLayout lay = make_shard_layout(n, 3);
  std::vector<Matrix<double>> shards;
  scatter_shards(a.cview(), lay, shards);
  ASSERT_EQ(shards.size(), 3u);
  for (const auto& sh : shards) EXPECT_LT(code_row_gap(sh.cview()), 1e-13);

  Matrix<double> back(n, n);
  gather_shards(lay, shards, back.view(), 0);
  test::expect_matrix_near(back.cview(), a.cview(), 0.0, "gather(scatter(a))");
}

TEST(ShardCode, CodeRowGapSeesASingleCorruptElement)  {
  const index_t n = 16;
  const Matrix<double> a = random_matrix(n, n, 3);
  const ShardLayout lay = make_shard_layout(n, 2);
  std::vector<Matrix<double>> shards;
  scatter_shards(a.cview(), lay, shards);
  shards[1](4, 2) += 0.5;
  EXPECT_LT(code_row_gap(shards[0].cview()), 1e-13);
  EXPECT_GT(code_row_gap(shards[1].cview()), 0.4);
  // Restricting the scan to columns before the corruption stays clean.
  EXPECT_LT(code_row_gap(shards[1].cview(), 2), 1e-13);
}

// ---- reconstruction ---------------------------------------------------------

TEST(ShardCode, ReconstructsADroppedShardAtSeveralGeometries) {
  for (const int dd : {2, 3, 4}) {
    for (const index_t n : {index_t{24}, index_t{65}}) {
      const Matrix<double> a = random_matrix(n, n, 11 * dd + n);
      const ShardLayout lay = make_shard_layout(n, dd);
      std::vector<Matrix<double>> shards;
      scatter_shards(a.cview(), lay, shards);
      Matrix<double> parity;
      encode_parity(lay, shards, parity);

      for (int lost = 0; lost < dd; ++lost) {
        const Matrix<double> truth(shards[static_cast<std::size_t>(lost)].cview());
        // The lost shard's bytes are garbage — reconstruction must not read them.
        for (index_t j = 0; j < lay.w_max; ++j)
          for (index_t i = 0; i < lay.rows(); ++i)
            shards[static_cast<std::size_t>(lost)](i, j) = 1e30;
        Matrix<double> rec;
        reconstruct_shard(lay, shards, parity.cview(), lost, rec);
        test::expect_matrix_near(rec.cview(), truth.cview(), 1e-12,
                                 "parity - sum(survivors)");
        EXPECT_LT(code_row_gap(rec.cview()), 1e-11);
        copy(truth.cview(), shards[static_cast<std::size_t>(lost)].view());
      }
    }
  }
}

TEST(ShardCode, ReconstructionCommutesWithALinearLockstepUpdate) {
  // The driver's no-rollback guarantee rests on linearity: updating every
  // member (parity included) in lockstep keeps parity = Σ shards exactly,
  // so a post-update reconstruction yields the post-update lost shard.
  const index_t n = 20;
  const int dd = 2;
  const Matrix<double> a = random_matrix(n, n, 5);
  const ShardLayout lay = make_shard_layout(n, dd);
  std::vector<Matrix<double>> shards;
  scatter_shards(a.cview(), lay, shards);
  Matrix<double> parity;
  encode_parity(lay, shards, parity);

  // E := E - v·(wᵀ·E) on rows 0..n (code row rides along), every member.
  const Matrix<double> v = random_matrix(n + 1, 1, 17);
  const Matrix<double> w = random_matrix(n + 1, 1, 19);
  auto apply = [&](Matrix<double>& e) {
    for (index_t j = 0; j < e.cols(); ++j) {
      double dot = 0.0;
      for (index_t i = 0; i < e.rows(); ++i) dot += w(i, 0) * e(i, j);
      for (index_t i = 0; i < e.rows(); ++i) e(i, j) -= v(i, 0) * dot;
    }
  };
  for (auto& sh : shards) apply(sh);
  apply(parity);

  const Matrix<double> truth(shards[1].cview());
  for (index_t j = 0; j < lay.w_max; ++j)
    for (index_t i = 0; i < lay.rows(); ++i) shards[1](i, j) = -7e33;
  Matrix<double> rec;
  reconstruct_shard(lay, shards, parity.cview(), 1, rec);
  test::expect_matrix_near(rec.cview(), truth.cview(), 1e-10, "post-update reconstruction");
}

// ---- redundancy-group accounting -------------------------------------------

TEST(RedundancyGroup, SecondLossExceedsTheCorrectionRadius) {
  RedundancyGroup g(3);
  EXPECT_FALSE(g.degraded());
  EXPECT_TRUE(g.declare_lost(1));  // first loss: reconstructible
  EXPECT_TRUE(g.degraded());
  EXPECT_EQ(g.losses(), 1);
  EXPECT_FALSE(g.declare_lost(2));  // second loss: escalate
  EXPECT_EQ(g.losses(), 2);
}

TEST(RedundancyGroup, RedetectingTheSameLossDoesNotInflateTheLedger) {
  RedundancyGroup g(2);
  EXPECT_TRUE(g.declare_lost(0));
  // The slot is already charged: its reconstruction spent the parity, so a
  // re-detection (the remapped replacement dying) cannot reconstruct again —
  // but it is still one loss in the ledger, not two.
  EXPECT_FALSE(g.declare_lost(0));
  EXPECT_EQ(g.losses(), 1);
  EXPECT_FALSE(g.declare_lost(g.parity_slot()));
  EXPECT_EQ(g.losses(), 2);
}

TEST(RedundancyGroup, ParityLossAloneDegradesWithoutEscalation) {
  RedundancyGroup g(4);
  EXPECT_EQ(g.parity_slot(), 4);
  EXPECT_TRUE(g.declare_lost(g.parity_slot()));
  EXPECT_TRUE(g.degraded());
}

}  // namespace
}  // namespace fth::ft

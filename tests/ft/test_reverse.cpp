// Reverse computation: adding back the retained products must restore the
// pre-update state to within one rounding per element.
#include <gtest/gtest.h>

#include "ft/reverse.hpp"
#include "la/blas3.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"

namespace fth::ft {
namespace {

TEST(Reverse, RightUpdateRestoresState) {
  const index_t rows = 21, cols = 13, k = 4;
  Matrix<double> ext = random_matrix(rows, cols, 1);
  Matrix<double> before(ext.cview());
  Matrix<double> yce = random_matrix(rows, k, 2);
  Matrix<double> vtail = random_matrix(cols, k, 3);

  // Forward: ext −= yce·vtailᵀ.
  blas::gemm(Trans::No, Trans::Yes, -1.0, yce.cview(), vtail.cview(), 1.0, ext.view());
  EXPECT_GT(max_abs_diff(ext.cview(), before.cview()), 0.1);

  reverse_right_update(ext.view(), yce.cview(), vtail.cview());
  EXPECT_LT(max_abs_diff(ext.cview(), before.cview()), 1e-13);
}

TEST(Reverse, LeftUpdateRestoresState) {
  const index_t rows = 17, cols = 11, k = 3;
  Matrix<double> ext = random_matrix(rows, cols, 4);
  Matrix<double> before(ext.cview());
  Matrix<double> vce = random_matrix(rows, k, 5);
  Matrix<double> w = random_matrix(k, cols, 6);

  blas::gemm(Trans::No, Trans::No, -1.0, vce.cview(), w.cview(), 1.0, ext.view());
  reverse_left_update(ext.view(), vce.cview(), w.cview());
  EXPECT_LT(max_abs_diff(ext.cview(), before.cview()), 1e-13);
}

TEST(Reverse, ComposedUpdatesReverseInLifoOrder) {
  const index_t n = 25, k = 5;
  Matrix<double> ext = random_matrix(n, n, 7);
  Matrix<double> before(ext.cview());
  Matrix<double> yce = random_matrix(n, k, 8);
  Matrix<double> vtail = random_matrix(n, k, 9);
  Matrix<double> vce = random_matrix(n, k, 10);
  Matrix<double> w = random_matrix(k, n, 11);

  // Forward: right then left (as in the iteration).
  blas::gemm(Trans::No, Trans::Yes, -1.0, yce.cview(), vtail.cview(), 1.0, ext.view());
  blas::gemm(Trans::No, Trans::No, -1.0, vce.cview(), w.cview(), 1.0, ext.view());
  // Reverse: left first, then right.
  reverse_left_update(ext.view(), vce.cview(), w.cview());
  reverse_right_update(ext.view(), yce.cview(), vtail.cview());
  EXPECT_LT(max_abs_diff(ext.cview(), before.cview()), 1e-12);
}

TEST(Reverse, ErrorSurvivesRollbackConfined) {
  // The property recovery depends on: corrupt one element, apply updates,
  // reverse them — the state equals "before + the single error".
  const index_t n = 30, k = 6;
  Matrix<double> ext = random_matrix(n, n, 12);
  Matrix<double> before(ext.cview());
  Matrix<double> vtail = random_matrix(n, k, 14);
  Matrix<double> vce = random_matrix(n, k, 15);

  // Inject the error BEFORE computing the update products, as when a fault
  // strikes the trailing matrix between iterations.
  ext(7, 19) += 100.0;
  Matrix<double> corrupted(ext.cview());

  // Update products computed FROM the corrupted data (as the driver would).
  Matrix<double> yce(n, k);
  blas::gemm(Trans::No, Trans::No, 1.0, ext.cview(), vce.cview(), 0.0, yce.view());
  Matrix<double> w(k, n);
  blas::gemm(Trans::Yes, Trans::No, 1.0, vce.cview(), ext.cview(), 0.0, w.view());

  blas::gemm(Trans::No, Trans::Yes, -1.0, yce.cview(), vtail.cview(), 1.0, ext.view());
  blas::gemm(Trans::No, Trans::No, -1.0, vce.cview(), w.cview(), 1.0, ext.view());

  reverse_left_update(ext.view(), vce.cview(), w.cview());
  reverse_right_update(ext.view(), yce.cview(), vtail.cview());

  // The error is confined to (7, 19) again.
  EXPECT_LT(max_abs_diff(ext.cview(), corrupted.cview()), 1e-9);
  Matrix<double> diff(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) diff(i, j) = ext(i, j) - before(i, j);
  EXPECT_NEAR(diff(7, 19), 100.0, 1e-9);
  diff(7, 19) = 0.0;
  EXPECT_LT(norm_max(diff.cview()), 1e-9);
}

TEST(Reverse, DimensionChecks) {
  Matrix<double> ext(5, 5), y(5, 2), v(4, 2), w(2, 5), vce(5, 3);
  EXPECT_THROW(reverse_right_update(ext.view(), y.cview(), v.cview()), precondition_error);
  EXPECT_THROW(reverse_left_update(ext.view(), vce.cview(), w.cview()), precondition_error);
}

}  // namespace
}  // namespace fth::ft

// Q-factor protection: panel checksum accumulation, end-of-run verification
// and correction, and the commit discipline that rollback relies on.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ft/q_protect.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lapack/gehrd.hpp"

namespace fth::ft {
namespace {

/// Factorize a random matrix so the Householder storage is realistic.
Matrix<double> factored(index_t n, std::uint64_t seed) {
  Matrix<double> a = random_matrix(n, n, seed);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  lapack::gehrd(a.view(), VectorView<double>(tau.data(), n - 1), {.nb = 8, .nx = 8});
  return a;
}

/// Absorb all panels of a factored matrix.
QProtector protect_all(MatrixView<const double> a, index_t nb) {
  const index_t n = a.rows();
  QProtector qp(n);
  index_t k = 0;
  while (k < n - 1) {
    const index_t ib = std::min(nb, n - 1 - k);
    qp.commit(qp.compute_panel(a, k, ib));
    k += ib;
  }
  return qp;
}

TEST(QProtect, CleanStorageVerifies) {
  Matrix<double> a = factored(40, 1);
  QProtector qp = protect_all(a.cview(), 8);
  EXPECT_EQ(qp.committed_columns(), 39);
  const auto res = qp.verify_and_correct(a.view(), 39, 1e-10);
  EXPECT_EQ(res.corrections, 0);
  EXPECT_LT(res.max_row_gap, 1e-12);
  EXPECT_LT(res.max_col_gap, 1e-12);
}

TEST(QProtect, SingleCorruptionLocatedAndFixed) {
  Matrix<double> a = factored(40, 2);
  Matrix<double> clean(a.cview());
  QProtector qp = protect_all(a.cview(), 8);
  a(20, 5) += 3.0;  // a v-entry: row 20 > 5+1
  const auto res = qp.verify_and_correct(a.view(), 39, 1e-8);
  EXPECT_EQ(res.corrections, 1);
  EXPECT_LT(max_abs_diff(a.cview(), clean.cview()), 1e-10);
}

TEST(QProtect, TwoCorruptionsDistinctMagnitudes) {
  Matrix<double> a = factored(48, 3);
  Matrix<double> clean(a.cview());
  QProtector qp = protect_all(a.cview(), 8);
  a(30, 4) += 2.0;
  a(41, 17) += -5.0;
  const auto res = qp.verify_and_correct(a.view(), 47, 1e-8);
  EXPECT_EQ(res.corrections, 2);
  EXPECT_LT(max_abs_diff(a.cview(), clean.cview()), 1e-10);
}

TEST(QProtect, EqualMagnitudeRectangleAmbiguous) {
  Matrix<double> a = factored(48, 4);
  QProtector qp = protect_all(a.cview(), 8);
  a(30, 4) += 2.0;
  a(41, 17) += 2.0;
  EXPECT_THROW(qp.verify_and_correct(a.view(), 47, 1e-8), recovery_error);
}

TEST(QProtect, SameRowErrorsUnrecoverable) {
  Matrix<double> a = factored(48, 5);
  QProtector qp = protect_all(a.cview(), 8);
  a(40, 4) += 2.0;
  a(40, 17) += 3.0;
  EXPECT_THROW(qp.verify_and_correct(a.view(), 47, 1e-8), recovery_error);
}

TEST(QProtect, UncommittedPanelNotDoubleCounted) {
  // The driver computes panel checksums before the iteration's error check
  // and commits only afterwards; a recomputed (retried) panel must yield
  // identical state, and verifying uncommitted columns must be rejected.
  Matrix<double> a = factored(32, 6);
  QProtector qp(32);
  auto pc1 = qp.compute_panel(a.cview(), 0, 8);
  auto pc1_again = qp.compute_panel(a.cview(), 0, 8);  // "retry"
  qp.commit(pc1_again);
  EXPECT_EQ(qp.committed_columns(), 8);
  for (std::size_t r = 0; r < pc1.row_partial.size(); ++r)
    EXPECT_EQ(pc1.row_partial[r], pc1_again.row_partial[r]);
  EXPECT_THROW(qp.verify_and_correct(a.view(), 16, 1e-8), precondition_error);
  // Out-of-order commits rejected.
  auto pc3 = qp.compute_panel(a.cview(), 16, 8);
  EXPECT_THROW(qp.commit(pc3), precondition_error);
}

TEST(QProtect, ColumnSegmentsAreFinal) {
  // Column checksums are emitted per panel and never change afterwards
  // (Section IV-E: "This segment is never changed once generated").
  Matrix<double> a = factored(32, 7);
  QProtector qp(32);
  qp.commit(qp.compute_panel(a.cview(), 0, 8));
  const std::vector<double> after_first = qp.col_chk();
  qp.commit(qp.compute_panel(a.cview(), 8, 8));
  for (index_t c = 0; c < 8; ++c)
    EXPECT_EQ(qp.col_chk()[static_cast<std::size_t>(c)],
              after_first[static_cast<std::size_t>(c)]);
}

TEST(QProtect, SubdiagonalBetaNotProtected) {
  // The subdiagonal element A(c+1, c) is an H entry, not a v entry; the Q
  // checksums must ignore it (it is covered by the H checksums instead).
  Matrix<double> a = factored(32, 8);
  QProtector qp = protect_all(a.cview(), 8);
  a(5, 4) += 10.0;  // subdiagonal: H data
  const auto res = qp.verify_and_correct(a.view(), 31, 1e-8);
  EXPECT_EQ(res.corrections, 0);
}

}  // namespace
}  // namespace fth::ft

// Monte-Carlo campaign driver: end-to-end recovery statistics.
#include <gtest/gtest.h>

#include "fault/campaign.hpp"

namespace fth::fault {
namespace {

TEST(Campaign, SingleFaultAlwaysRecovered) {
  CampaignConfig cfg;
  cfg.n = 96;
  cfg.nb = 16;
  cfg.trials = 6;
  cfg.faults_per_trial = 1;
  cfg.area = Area::Any;
  const CampaignResult res = run_campaign(cfg);
  ASSERT_EQ(res.trials.size(), 6u);
  EXPECT_EQ(res.recovered_count, 6);
  EXPECT_EQ(res.correct_count, 6);
  EXPECT_LT(res.worst_error_vs_clean, 1e-9);
  for (const auto& t : res.trials) {
    EXPECT_EQ(t.injected.size(), 1u);
    // Every fault must be handled by *some* mechanism: per-iteration
    // detection, the final sweep, or Q protection.
    EXPECT_GE(t.corrections + t.detections, 1) << t.failure;
  }
}

TEST(Campaign, PerTrialMetricDeltasMatchReports) {
  CampaignConfig cfg;
  cfg.n = 96;
  cfg.nb = 16;
  cfg.trials = 5;
  cfg.area = Area::LowerTrailing;  // online-detectable: every trial detects
  const CampaignResult res = run_campaign(cfg);
  ASSERT_EQ(res.trials.size(), 5u);
  for (const auto& t : res.trials) {
    // The Registry snapshot-delta around the faulty run must agree with
    // the per-run report — the whole point of the scoping is that global,
    // cumulative counters become attributable to one trial.
    const auto it = t.metric_deltas.find("ft.detections");
    ASSERT_NE(it, t.metric_deltas.end());
    EXPECT_EQ(it->second, static_cast<std::uint64_t>(t.detections));
    // Unchanged counters are omitted from the delta entirely.
    EXPECT_EQ(t.metric_deltas.count("ft.unrecoverable"), 0u);
  }
}

TEST(Campaign, TrailingAreaFaultsDetectedOnline) {
  CampaignConfig cfg;
  cfg.n = 96;
  cfg.nb = 16;
  cfg.trials = 5;
  cfg.area = Area::LowerTrailing;
  const CampaignResult res = run_campaign(cfg);
  EXPECT_EQ(res.recovered_count, 5);
  for (const auto& t : res.trials) {
    EXPECT_GE(t.detections, 1);  // area 2 propagates ⇒ caught the same iteration
    EXPECT_TRUE(t.result_correct);
  }
}

TEST(Campaign, QAreaFaultsCorrectedAtEnd) {
  CampaignConfig cfg;
  cfg.n = 96;
  cfg.nb = 16;
  cfg.trials = 5;
  cfg.area = Area::QPanel;
  const CampaignResult res = run_campaign(cfg);
  EXPECT_EQ(res.recovered_count, 5);
  for (const auto& t : res.trials) {
    EXPECT_EQ(t.detections, 0);  // Q faults don't trip the H checksums
    EXPECT_GE(t.corrections, 1);
    EXPECT_TRUE(t.result_correct);
  }
}

TEST(Campaign, DeterministicGivenSeed) {
  CampaignConfig cfg;
  cfg.n = 64;
  cfg.nb = 16;
  cfg.trials = 3;
  cfg.seed = 77;
  const CampaignResult a = run_campaign(cfg);
  const CampaignResult b = run_campaign(cfg);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    ASSERT_EQ(a.trials[i].injected.size(), b.trials[i].injected.size());
    for (std::size_t f = 0; f < a.trials[i].injected.size(); ++f) {
      EXPECT_EQ(a.trials[i].injected[f].row, b.trials[i].injected[f].row);
      EXPECT_EQ(a.trials[i].injected[f].col, b.trials[i].injected[f].col);
    }
  }
}

TEST(Campaign, InFlightModePopulatesSoakFields) {
  CampaignConfig cfg;
  cfg.n = 96;
  cfg.nb = 16;
  cfg.trials = 8;  // one trial per soak class
  cfg.in_flight = true;
  cfg.seed = 505;
  const CampaignResult res = run_campaign(cfg);
  ASSERT_EQ(res.trials.size(), 8u);
  EXPECT_EQ(res.fired_count, 8);
  EXPECT_EQ(res.detected_count, 8);
  for (const auto& t : res.trials) {
    EXPECT_TRUE(t.detected) << to_string(t.fault_class);
    if (t.fault_class == SoakClass::BoundaryDelta) {
      EXPECT_FALSE(t.injected.empty());
    } else if (t.fault_class != SoakClass::CheckpointStrike &&
               t.fault_class != SoakClass::DuringRecovery) {
      // Pure in-flight classes plant no boundary faults.
      EXPECT_TRUE(t.injected.empty()) << to_string(t.fault_class);
      EXPECT_FALSE(t.in_flight_fired.empty()) << to_string(t.fault_class);
    }
    if (t.recovered) {
      EXPECT_EQ(t.outcome.status == ft::RecoveryStatus::Unrecoverable, false);
      EXPECT_TRUE(t.result_correct) << to_string(t.fault_class);
    } else {
      EXPECT_EQ(t.outcome.status, ft::RecoveryStatus::Unrecoverable);
      EXPECT_NE(t.outcome.reason, ft::AbortReason::None);
    }
  }
}

TEST(Campaign, InFlightModeDeterministicGivenSeed) {
  CampaignConfig cfg;
  cfg.n = 64;
  cfg.nb = 16;
  cfg.trials = 8;
  cfg.in_flight = true;
  cfg.seed = 99;
  const CampaignResult a = run_campaign(cfg);
  const CampaignResult b = run_campaign(cfg);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].fault_class, b.trials[i].fault_class);
    ASSERT_EQ(a.trials[i].in_flight_fired.size(), b.trials[i].in_flight_fired.size());
    for (std::size_t f = 0; f < a.trials[i].in_flight_fired.size(); ++f) {
      EXPECT_EQ(a.trials[i].in_flight_fired[f].row, b.trials[i].in_flight_fired[f].row);
      EXPECT_EQ(a.trials[i].in_flight_fired[f].col, b.trials[i].in_flight_fired[f].col);
      EXPECT_EQ(a.trials[i].in_flight_fired[f].trigger_index,
                b.trials[i].in_flight_fired[f].trigger_index);
    }
    EXPECT_EQ(a.trials[i].recovered, b.trials[i].recovered);
    EXPECT_EQ(a.trials[i].detections, b.trials[i].detections);
  }
}

TEST(Campaign, BadConfigRejected) {
  CampaignConfig cfg;
  cfg.n = 2;
  EXPECT_THROW(run_campaign(cfg), precondition_error);
  cfg.n = 64;
  cfg.trials = 0;
  EXPECT_THROW(run_campaign(cfg), precondition_error);
}

}  // namespace
}  // namespace fth::fault

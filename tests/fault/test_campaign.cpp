// Monte-Carlo campaign driver: end-to-end recovery statistics.
#include <gtest/gtest.h>

#include "fault/campaign.hpp"

namespace fth::fault {
namespace {

TEST(Campaign, SingleFaultAlwaysRecovered) {
  CampaignConfig cfg;
  cfg.n = 96;
  cfg.nb = 16;
  cfg.trials = 6;
  cfg.faults_per_trial = 1;
  cfg.area = Area::Any;
  const CampaignResult res = run_campaign(cfg);
  ASSERT_EQ(res.trials.size(), 6u);
  EXPECT_EQ(res.recovered_count, 6);
  EXPECT_EQ(res.correct_count, 6);
  EXPECT_LT(res.worst_error_vs_clean, 1e-9);
  for (const auto& t : res.trials) {
    EXPECT_EQ(t.injected.size(), 1u);
    // Every fault must be handled by *some* mechanism: per-iteration
    // detection, the final sweep, or Q protection.
    EXPECT_GE(t.corrections + t.detections, 1) << t.failure;
  }
}

TEST(Campaign, TrailingAreaFaultsDetectedOnline) {
  CampaignConfig cfg;
  cfg.n = 96;
  cfg.nb = 16;
  cfg.trials = 5;
  cfg.area = Area::LowerTrailing;
  const CampaignResult res = run_campaign(cfg);
  EXPECT_EQ(res.recovered_count, 5);
  for (const auto& t : res.trials) {
    EXPECT_GE(t.detections, 1);  // area 2 propagates ⇒ caught the same iteration
    EXPECT_TRUE(t.result_correct);
  }
}

TEST(Campaign, QAreaFaultsCorrectedAtEnd) {
  CampaignConfig cfg;
  cfg.n = 96;
  cfg.nb = 16;
  cfg.trials = 5;
  cfg.area = Area::QPanel;
  const CampaignResult res = run_campaign(cfg);
  EXPECT_EQ(res.recovered_count, 5);
  for (const auto& t : res.trials) {
    EXPECT_EQ(t.detections, 0);  // Q faults don't trip the H checksums
    EXPECT_GE(t.corrections, 1);
    EXPECT_TRUE(t.result_correct);
  }
}

TEST(Campaign, DeterministicGivenSeed) {
  CampaignConfig cfg;
  cfg.n = 64;
  cfg.nb = 16;
  cfg.trials = 3;
  cfg.seed = 77;
  const CampaignResult a = run_campaign(cfg);
  const CampaignResult b = run_campaign(cfg);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    ASSERT_EQ(a.trials[i].injected.size(), b.trials[i].injected.size());
    for (std::size_t f = 0; f < a.trials[i].injected.size(); ++f) {
      EXPECT_EQ(a.trials[i].injected[f].row, b.trials[i].injected[f].row);
      EXPECT_EQ(a.trials[i].injected[f].col, b.trials[i].injected[f].col);
    }
  }
}

TEST(Campaign, BadConfigRejected) {
  CampaignConfig cfg;
  cfg.n = 2;
  EXPECT_THROW(run_campaign(cfg), precondition_error);
  cfg.n = 64;
  cfg.trials = 0;
  EXPECT_THROW(run_campaign(cfg), precondition_error);
}

}  // namespace
}  // namespace fth::fault

// Fault injector: area geometry, scheduling, determinism.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "fault/injector.hpp"

namespace fth::fault {
namespace {

TEST(Classify, MatchesPaperFig2Examples) {
  // N = 158, nb = 32, injected after iteration 1 ⇒ next panel i = 32.
  // The paper's (1-based) coordinates map to 0-based as shown.
  const index_t i = 32;
  EXPECT_EQ(classify(52, 15, i), Area::QPanel);          // (53,16): area 3
  EXPECT_EQ(classify(30, 126, i), Area::UpperTrailing);  // (31,127): area 1
  EXPECT_EQ(classify(62, 126, i), Area::LowerTrailing);  // (63,127): area 2
}

TEST(Classify, BoundaryRows) {
  const index_t i = 10;
  EXPECT_EQ(classify(9, 10, i), Area::UpperTrailing);   // row i−1 is area 1
  EXPECT_EQ(classify(10, 10, i), Area::LowerTrailing);  // row i starts area 2
  EXPECT_EQ(classify(0, 0, i), Area::FinishedH);        // finished H entry
  EXPECT_EQ(classify(1, 0, i), Area::FinishedH);        // subdiagonal is H
  EXPECT_EQ(classify(2, 0, i), Area::QPanel);           // below subdiag is Q
}

TEST(MomentBoundary, Mapping) {
  EXPECT_EQ(moment_boundary(Moment::Beginning, 10), 1);
  EXPECT_EQ(moment_boundary(Moment::Middle, 10), 5);
  EXPECT_EQ(moment_boundary(Moment::End, 10), 10);
  EXPECT_EQ(moment_boundary(Moment::Middle, 1), 1);
  EXPECT_THROW(moment_boundary(Moment::Middle, 0), precondition_error);
}

TEST(Injector, FiresAtRequestedBoundary) {
  FaultSpec spec;
  spec.area = Area::LowerTrailing;
  spec.boundary = 3;
  spec.magnitude = 5.0;
  spec.relative = false;
  Injector inj(spec);
  EXPECT_TRUE(inj.due(1, 10, 32, 158, 1.0).empty());
  EXPECT_TRUE(inj.due(2, 10, 64, 158, 1.0).empty());
  auto due = inj.due(3, 10, 96, 158, 1.0);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].delta, 5.0);
  EXPECT_EQ(due[0].area, Area::LowerTrailing);
  EXPECT_GE(due[0].row, 96);
  EXPECT_GE(due[0].col, 96);
  EXPECT_TRUE(inj.all_fired());
  EXPECT_TRUE(inj.due(4, 10, 128, 158, 1.0).empty());  // fires once
}

TEST(Injector, MomentResolution) {
  FaultSpec spec;
  spec.moment = Moment::Middle;
  Injector inj(spec);
  EXPECT_TRUE(inj.due(1, 9, 32, 300, 1.0).empty());
  EXPECT_FALSE(inj.due(5, 9, 160, 300, 1.0).empty());
}

TEST(Injector, RelativeMagnitudeScales) {
  FaultSpec spec;
  spec.boundary = 1;
  spec.magnitude = 10.0;
  spec.relative = true;
  Injector inj(spec);
  auto due = inj.due(1, 4, 32, 128, 0.5);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].delta, 5.0);
}

TEST(Injector, ExplicitCoordinatesRespected) {
  FaultSpec spec;
  spec.boundary = 2;
  spec.row = 7;
  spec.col = 90;
  spec.relative = false;
  spec.magnitude = 1.0;
  Injector inj(spec);
  auto due = inj.due(2, 5, 64, 128, 1.0);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].row, 7);
  EXPECT_EQ(due[0].col, 90);
  EXPECT_EQ(due[0].area, Area::UpperTrailing);
}

TEST(Injector, AreaGeometryRespected) {
  for (int rep = 0; rep < 50; ++rep) {
    for (Area area : {Area::UpperTrailing, Area::LowerTrailing, Area::QPanel}) {
      FaultSpec spec;
      spec.area = area;
      spec.boundary = 2;
      Injector inj(spec, 100 + static_cast<std::uint64_t>(rep));
      auto due = inj.due(2, 6, 64, 200, 1.0);
      ASSERT_EQ(due.size(), 1u);
      const auto& f = due[0];
      EXPECT_EQ(classify(f.row, f.col, 64), area)
          << "rep " << rep << " area " << to_string(area) << " got (" << f.row << ","
          << f.col << ")";
      EXPECT_GE(f.row, 0);
      EXPECT_LT(f.row, 200);
      EXPECT_GE(f.col, 0);
      EXPECT_LT(f.col, 200);
    }
  }
}

TEST(Injector, DeterministicForFixedSeed) {
  FaultSpec spec;
  spec.area = Area::LowerTrailing;
  spec.boundary = 1;
  Injector a(spec, 42), b(spec, 42), c(spec, 43);
  auto da = a.due(1, 4, 32, 128, 1.0);
  auto db = b.due(1, 4, 32, 128, 1.0);
  auto dc = c.due(1, 4, 32, 128, 1.0);
  EXPECT_EQ(da[0].row, db[0].row);
  EXPECT_EQ(da[0].col, db[0].col);
  EXPECT_TRUE(dc[0].row != da[0].row || dc[0].col != da[0].col);
}

TEST(Injector, MultipleFaultsSameBoundary) {
  std::vector<FaultSpec> specs(3);
  for (auto& s : specs) {
    s.area = Area::LowerTrailing;
    s.boundary = 2;
  }
  Injector inj(specs);
  auto due = inj.due(2, 5, 64, 256, 1.0);
  EXPECT_EQ(due.size(), 3u);
}

TEST(Injector, HistoryRecords) {
  FaultSpec spec;
  spec.boundary = 1;
  Injector inj(spec);
  auto due = inj.due(1, 3, 32, 96, 2.0);
  ASSERT_EQ(due.size(), 1u);
  inj.record(1, due[0]);
  ASSERT_EQ(inj.history().size(), 1u);
  EXPECT_EQ(inj.history()[0].boundary, 1);
  EXPECT_EQ(inj.history()[0].row, due[0].row);
}

TEST(Injector, EmptyAreaThrows) {
  FaultSpec spec;
  spec.area = Area::QPanel;
  spec.boundary = 1;
  Injector inj(spec);
  // i = 0: no finished columns yet ⇒ area 3 is empty.
  EXPECT_THROW(inj.due(1, 3, 0, 96, 1.0), precondition_error);
}

}  // namespace
}  // namespace fth::fault

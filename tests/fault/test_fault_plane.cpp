// FaultPlane unit tests: corruption primitives, countdown semantics,
// surface targeting, transfer eligibility, recovery gating, determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "fault/fault_plane.hpp"
#include "hybrid/device.hpp"
#include "la/generate.hpp"

namespace fth::fault {
namespace {

// ---- corruption primitives ------------------------------------------------

TEST(Corrupt, FlipBitIsInvolutive) {
  const double x = 3.14159265358979;
  for (int bit : {0, 17, 51, 52, 62, 63}) {
    const double y = flip_bit(x, bit);
    EXPECT_NE(y, x) << "bit " << bit;
    EXPECT_EQ(flip_bit(y, bit), x) << "bit " << bit;
  }
}

TEST(Corrupt, SignFlipNegates) {
  EXPECT_EQ(flip_bit(2.5, 63), -2.5);
  EXPECT_EQ(flip_bit(-7.0, 63), 7.0);
}

TEST(Corrupt, KindsProduceTheirEncoding) {
  Rng rng(42);
  const double nanv = corrupt_value(1.0, FaultKind::QuietNaN, -1, 0.0, rng);
  EXPECT_TRUE(std::isnan(nanv));
  const double pinf = corrupt_value(2.0, FaultKind::Infinity, -1, 0.0, rng);
  EXPECT_TRUE(std::isinf(pinf));
  EXPECT_GT(pinf, 0.0);  // sign preserved
  const double ninf = corrupt_value(-2.0, FaultKind::Infinity, -1, 0.0, rng);
  EXPECT_TRUE(std::isinf(ninf));
  EXPECT_LT(ninf, 0.0);
  const double add = corrupt_value(1.5, FaultKind::AddDelta, -1, 10.0, rng);
  EXPECT_DOUBLE_EQ(add, 11.5);
  // Exponent flips always change magnitude (bits 52..62 of a normal value).
  for (int trial = 0; trial < 16; ++trial) {
    const double e = corrupt_value(1.75, FaultKind::ExponentFlip, -1, 0.0, rng);
    EXPECT_NE(e, 1.75);
  }
}

// ---- countdown + surface semantics ---------------------------------------

/// Count the elements of `m` differing from `ref`.
int diff_count(MatrixView<const double> m, MatrixView<const double> ref) {
  int c = 0;
  for (index_t j = 0; j < m.cols(); ++j)
    for (index_t r = 0; r < m.rows(); ++r)
      if (std::memcmp(&m(r, j), &ref(r, j), sizeof(double)) != 0) ++c;
  return c;
}

TEST(FaultPlane, FiresOnTheCountdownthTask) {
  hybrid::Device dev;
  Matrix<double> surf = random_matrix(8, 8, 7);
  Matrix<double> ref(surf.cview());

  FaultPlane plane(11);
  InFlightFault f;
  f.when = When::StreamTask;
  f.surface = Surface::TrailingMatrix;
  f.kind = FaultKind::ExponentFlip;
  f.countdown = 3;
  plane.arm(f);
  plane.bind(dev);
  plane.register_surface(Surface::TrailingMatrix, surf.view());
  plane.mark_encoded();

  for (int t = 0; t < 2; ++t) dev.stream().enqueue([] {});
  dev.stream().synchronize();
  EXPECT_TRUE(plane.fired().empty()) << "fired before the countdown elapsed";
  EXPECT_EQ(plane.armed_remaining(), 1);

  dev.stream().enqueue([] {});
  dev.stream().synchronize();
  const auto fired = plane.fired();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].trigger_index, 3u);
  EXPECT_TRUE(plane.all_fired());
  EXPECT_EQ(diff_count(surf.cview(), ref.cview()), 1);
  EXPECT_EQ(surf(fired[0].row, fired[0].col), fired[0].after);
  plane.unbind();
}

TEST(FaultPlane, GatedUntilEncoded) {
  hybrid::Device dev;
  Matrix<double> surf = random_matrix(6, 6, 3);

  FaultPlane plane(5);
  InFlightFault f;
  f.countdown = 1;
  plane.arm(f);
  plane.bind(dev);
  plane.register_surface(Surface::TrailingMatrix, surf.view());

  for (int t = 0; t < 5; ++t) dev.stream().enqueue([] {});
  dev.stream().synchronize();
  EXPECT_TRUE(plane.fired().empty()) << "fired before mark_encoded()";

  plane.mark_encoded();
  dev.stream().enqueue([] {});
  dev.stream().synchronize();
  EXPECT_EQ(plane.fired().size(), 1u);
  plane.unbind();
}

TEST(FaultPlane, RetriesUntilSurfaceRegistered) {
  hybrid::Device dev;
  Matrix<double> ckpt = random_matrix(5, 5, 9);

  FaultPlane plane(17);
  InFlightFault f;
  f.surface = Surface::Checkpoint;
  f.countdown = 1;
  plane.arm(f);
  plane.bind(dev);
  plane.mark_encoded();

  // Countdown expires with no Checkpoint surface: the fault must stay
  // armed instead of being silently dropped.
  for (int t = 0; t < 4; ++t) dev.stream().enqueue([] {});
  dev.stream().synchronize();
  EXPECT_TRUE(plane.fired().empty());
  EXPECT_EQ(plane.armed_remaining(), 1);

  plane.register_surface(Surface::Checkpoint, ckpt.view());
  dev.stream().enqueue([] {});
  dev.stream().synchronize();
  EXPECT_EQ(plane.fired().size(), 1u);
  plane.unbind();
}

TEST(FaultPlane, LowerTriangleShapeRespected) {
  hybrid::Device dev;
  Matrix<double> surf = random_matrix(12, 12, 21);

  FaultPlane plane(31);
  for (int k = 0; k < 6; ++k) {
    InFlightFault f;
    f.kind = FaultKind::SignFlip;
    f.countdown = static_cast<std::uint64_t>(k + 1);
    plane.arm(f);
  }
  plane.bind(dev);
  plane.register_surface(Surface::TrailingMatrix, surf.view(), SurfaceShape::LowerTriangle);
  plane.mark_encoded();
  for (int t = 0; t < 6; ++t) dev.stream().enqueue([] {});
  dev.stream().synchronize();
  const auto fired = plane.fired();
  ASSERT_EQ(fired.size(), 6u);
  for (const auto& rec : fired) EXPECT_GE(rec.row, rec.col);
  plane.unbind();
}

TEST(FaultPlane, DuringRecoveryOnlyCountsInsideTheBracket) {
  hybrid::Device dev;
  Matrix<double> surf = random_matrix(6, 6, 13);

  FaultPlane plane(23);
  InFlightFault f;
  f.when = When::DuringRecovery;
  f.countdown = 2;
  plane.arm(f);
  plane.bind(dev);
  plane.register_surface(Surface::TrailingMatrix, surf.view());
  plane.mark_encoded();

  for (int t = 0; t < 10; ++t) dev.stream().enqueue([] {});
  dev.stream().synchronize();
  EXPECT_TRUE(plane.fired().empty()) << "DuringRecovery fault fired outside recovery";

  plane.set_in_recovery(true);
  for (int t = 0; t < 2; ++t) dev.stream().enqueue([] {});
  dev.stream().synchronize();
  ASSERT_EQ(plane.fired().size(), 1u);
  EXPECT_EQ(plane.fired()[0].when, When::DuringRecovery);
  plane.set_in_recovery(false);
  plane.unbind();
}

TEST(FaultPlane, TransferFaultsRequireAProtectedDestination) {
  hybrid::Device dev;
  hybrid::DeviceMatrix<double> d_src(dev, 6, 6);
  Matrix<double> protected_dst(6, 6);
  Matrix<double> operand_dst(6, 6);

  FaultPlane plane(29);
  InFlightFault f;
  f.when = When::TransferD2H;
  f.kind = FaultKind::SignFlip;
  f.countdown = 1;
  plane.arm(f);
  plane.bind(dev);
  plane.add_transfer_target(Surface::Checkpoint, protected_dst.view());
  plane.mark_encoded();

  // A transfer into unprotected memory (a shipped-operand stand-in) is not
  // an eligible trigger: the countdown must not move.
  hybrid::copy_d2h(dev.stream(), d_src.view(), operand_dst.view());
  EXPECT_TRUE(plane.fired().empty());
  EXPECT_EQ(plane.trigger_counts().d2h, 0u);

  hybrid::copy_d2h(dev.stream(), d_src.view(), protected_dst.view());
  const auto fired = plane.fired();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].when, When::TransferD2H);
  EXPECT_EQ(fired[0].surface, Surface::Checkpoint);
  plane.unbind();
}

TEST(FaultPlane, CountsTriggersWhenNothingIsArmed) {
  hybrid::Device dev;
  hybrid::DeviceMatrix<double> d(dev, 4, 4);
  Matrix<double> host(4, 4);

  FaultPlane plane(1);
  plane.bind(dev);
  plane.register_surface(Surface::TrailingMatrix, d.view());
  plane.mark_encoded();
  for (int t = 0; t < 3; ++t) dev.stream().enqueue([] {});
  hybrid::copy_d2h(dev.stream(), d.view(), host.view());
  plane.add_transfer_target(Surface::Checkpoint, host.view());
  hybrid::copy_d2h(dev.stream(), d.view(), host.view());
  dev.stream().synchronize();
  const TriggerCounts c = plane.trigger_counts();
  EXPECT_GE(c.tasks, 3u);
  // First d2h landed on an unprotected host buffer (not yet a target); only
  // the second was eligible... unless the d2h dst overlapped the registered
  // device surface, which it cannot (separate address spaces here).
  EXPECT_EQ(c.d2h, 1u);
  plane.unbind();
}

TEST(FaultPlane, MinImpactRedrawsWeakFlips) {
  hybrid::Device dev;
  Matrix<double> surf = random_matrix(16, 16, 77);

  FaultPlane plane(3);
  InFlightFault f;
  f.kind = FaultKind::MantissaFlip;  // unconstrained, usually a tiny change
  f.countdown = 1;
  f.min_impact = 0.05;  // reachable on a [-1,1) surface only via high mantissa bits
  plane.arm(f);
  plane.bind(dev);
  plane.register_surface(Surface::TrailingMatrix, surf.view());
  plane.mark_encoded();
  dev.stream().enqueue([] {});
  dev.stream().synchronize();
  const auto fired = plane.fired();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_GE(std::abs(fired[0].after - fired[0].before), 0.05);
  plane.unbind();
}

TEST(FaultPlane, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    hybrid::Device dev;
    Matrix<double> surf = random_matrix(10, 10, 5);
    FaultPlane plane(seed);
    for (int k = 0; k < 3; ++k) {
      InFlightFault f;
      f.kind = FaultKind::BitFlip;
      f.countdown = static_cast<std::uint64_t>(2 * k + 1);
      plane.arm(f);
    }
    plane.bind(dev);
    plane.register_surface(Surface::TrailingMatrix, surf.view());
    plane.mark_encoded();
    for (int t = 0; t < 8; ++t) dev.stream().enqueue([] {});
    dev.stream().synchronize();
    plane.unbind();
    return plane.fired();
  };
  const auto a = run_once(99);
  const auto b = run_once(99);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 3u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].row, b[i].row);
    EXPECT_EQ(a[i].col, b[i].col);
    EXPECT_EQ(a[i].bit, b[i].bit);
    EXPECT_EQ(a[i].trigger_index, b[i].trigger_index);
  }
}

}  // namespace
}  // namespace fth::fault

// Device-loss soak acceptance (ISSUE 7): n=256, D=3, one injected loss per
// trial cycling silent-stall / poisoned-output / hard-death across random
// victims and strike times. Every strike must land, every run must finish
// (one loss is inside the code's correction radius), and the result must
// match the fault-free factorization to roundoff — i.e. recovery leaves no
// fault-shaped error and no cross-shard corruption behind.
#include <gtest/gtest.h>

#include "fault/campaign.hpp"

namespace fth::fault {
namespace {

TEST(DeviceLossSoak, OneLossPerTrialIsAlwaysAbsorbedAtN256D3) {
  DeviceLossSoakConfig cfg;
  cfg.n = 256;
  cfg.nb = 32;
  cfg.devices = 3;
  cfg.trials = 9;  // 3 full cycles through the three loss kinds
  cfg.seed = 0x5eed2026ull;
  cfg.timeout_ms = 400.0;

  const DeviceLossSoakResult r = run_device_loss_soak(cfg);
  ASSERT_EQ(r.trials.size(), 9u);
  EXPECT_EQ(r.fired_count, 9) << "a countdown drawn inside the schedule must fire";
  EXPECT_EQ(r.recovered_count, 9);
  EXPECT_EQ(r.correct_count, 9);

  for (const auto& t : r.trials) {
    EXPECT_TRUE(t.failure.empty()) << to_string(t.kind) << " dev" << t.device << ": "
                                   << t.failure;
    EXPECT_TRUE(t.result_correct)
        << to_string(t.kind) << " dev" << t.device << " countdown=" << t.countdown
        << " err=" << t.max_error_vs_clean;
    // The loss is charged once: detected, the group degraded, and — for a
    // data member — exactly one reconstruction and one remap, no rollback
    // beyond at most the in-flight panel.
    EXPECT_EQ(t.report.losses, 1);
    EXPECT_TRUE(t.report.degraded);
    EXPECT_EQ(t.report.lost_device, t.device);
    if (t.device != 2) {
      EXPECT_EQ(t.report.reconstructions, 1);
      EXPECT_EQ(t.report.remaps, 1);
    }
    EXPECT_EQ(t.report.outcome.status, ft::RecoveryStatus::Recovered);
  }
}

TEST(DeviceLossSoak, WiderPoolsAbsorbALossToo) {
  DeviceLossSoakConfig cfg;
  cfg.n = 128;
  cfg.nb = 16;
  cfg.devices = 4;
  cfg.trials = 3;
  cfg.seed = 0xD4ull;
  const DeviceLossSoakResult r = run_device_loss_soak(cfg);
  EXPECT_EQ(r.fired_count, 3);
  EXPECT_EQ(r.correct_count, 3);
}

}  // namespace
}  // namespace fth::fault

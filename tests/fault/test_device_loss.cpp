// Device-loss soak acceptance (ISSUE 7): n=256, D=3, one injected loss per
// trial cycling silent-stall / poisoned-output / hard-death across random
// victims and strike times. Every strike must land, every run must finish
// (one loss is inside the code's correction radius), and the result must
// match the fault-free factorization to roundoff — i.e. recovery leaves no
// fault-shaped error and no cross-shard corruption behind.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/json.hpp"
#include "fault/campaign.hpp"
#include "obs/incident.hpp"
#include "obs/journal.hpp"

namespace fth::fault {
namespace {

TEST(DeviceLossSoak, OneLossPerTrialIsAlwaysAbsorbedAtN256D3) {
  DeviceLossSoakConfig cfg;
  cfg.n = 256;
  cfg.nb = 32;
  cfg.devices = 3;
  cfg.trials = 9;  // 3 full cycles through the three loss kinds
  cfg.seed = 0x5eed2026ull;
  cfg.timeout_ms = 400.0;

  const DeviceLossSoakResult r = run_device_loss_soak(cfg);
  ASSERT_EQ(r.trials.size(), 9u);
  EXPECT_EQ(r.fired_count, 9) << "a countdown drawn inside the schedule must fire";
  EXPECT_EQ(r.recovered_count, 9);
  EXPECT_EQ(r.correct_count, 9);

  for (const auto& t : r.trials) {
    EXPECT_TRUE(t.failure.empty()) << to_string(t.kind) << " dev" << t.device << ": "
                                   << t.failure;
    EXPECT_TRUE(t.result_correct)
        << to_string(t.kind) << " dev" << t.device << " countdown=" << t.countdown
        << " err=" << t.max_error_vs_clean;
    // The loss is charged once: detected, the group degraded, and — for a
    // data member — exactly one reconstruction and one remap, no rollback
    // beyond at most the in-flight panel.
    EXPECT_EQ(t.report.losses, 1);
    EXPECT_TRUE(t.report.degraded);
    EXPECT_EQ(t.report.lost_device, t.device);
    if (t.device != 2) {
      EXPECT_EQ(t.report.reconstructions, 1);
      EXPECT_EQ(t.report.remaps, 1);
    }
    EXPECT_EQ(t.report.outcome.status, ft::RecoveryStatus::Recovered);
  }
}

// Incident forensics acceptance (ISSUE 8): with capsule emission armed,
// the n=256 D=3 soak must write exactly one valid capsule per injected
// loss, and fth_incident's timing derivation must see a nonzero detection
// latency (strike → loss_detected) and recovery cost (loss_detected →
// repair_done) in each. One cycle through the three loss kinds keeps the
// runtime bounded; the 9-trial soak above covers the absorption maths.
TEST(DeviceLossSoak, EveryInjectedLossYieldsAValidCapsuleWithTimings) {
  const std::string dir = ::testing::TempDir() + "fth_soak_capsules";
  std::filesystem::remove_all(dir);
  obs::incident_set_dir(dir);

  DeviceLossSoakConfig cfg;
  cfg.n = 256;
  cfg.nb = 32;
  cfg.devices = 3;
  cfg.trials = 3;  // one silent-stall, one poisoned-output, one hard-death
  cfg.seed = 0xCAB5013ull;
  cfg.timeout_ms = 400.0;
  const DeviceLossSoakResult r = run_device_loss_soak(cfg);

  obs::incident_stop();
  obs::journal_stop();

  ASSERT_EQ(r.trials.size(), 3u);
  EXPECT_EQ(r.fired_count, 3);
  EXPECT_EQ(r.recovered_count, 3);
  for (const auto& t : r.trials) {
    EXPECT_GT(t.report.run_id, 0u) << "the faulty run must stamp a journal run";
    ASSERT_EQ(t.report.incidents.size(), 1u)
        << to_string(t.kind) << " dev" << t.device << ": one capsule per absorbed loss";
    const json::Value capsule = json::parse_file(t.report.incidents[0]);
    EXPECT_EQ(obs::incident_validate(capsule), "") << t.report.incidents[0];
    EXPECT_EQ(capsule.at("trigger").as_string(), "device_loss");
    EXPECT_EQ(capsule.at("device").as_number(), static_cast<double>(t.device));
    const obs::IncidentTiming tm = obs::incident_timing(capsule);
    EXPECT_GT(tm.detection_latency_us, 0.0)
        << to_string(t.kind) << ": the strike precedes its detection";
    EXPECT_GT(tm.recovery_cost_us, 0.0)
        << to_string(t.kind) << ": reconstruction happens after detection";
  }
  std::filesystem::remove_all(dir);
}

TEST(DeviceLossSoak, WiderPoolsAbsorbALossToo) {
  DeviceLossSoakConfig cfg;
  cfg.n = 128;
  cfg.nb = 16;
  cfg.devices = 4;
  cfg.trials = 3;
  cfg.seed = 0xD4ull;
  const DeviceLossSoakResult r = run_device_loss_soak(cfg);
  EXPECT_EQ(r.fired_count, 3);
  EXPECT_EQ(r.correct_count, 3);
}

}  // namespace
}  // namespace fth::fault

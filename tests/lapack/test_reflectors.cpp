// Householder reflector kernels: algebraic properties and consistency with
// explicitly-formed dense reflectors.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "la/blas3.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lapack/reflectors.hpp"
#include "test_utils.hpp"

namespace fth {
namespace {

/// Build the full reflector vector [1; x] after larfg.
std::vector<double> full_v(double /*beta*/, const std::vector<double>& x) {
  std::vector<double> v(x.size() + 1);
  v[0] = 1.0;
  std::copy(x.begin(), x.end(), v.begin() + 1);
  return v;
}

TEST(Larfg, AnnihilatesAndPreservesNorm) {
  Rng rng(1);
  for (index_t n : {2, 3, 10, 100}) {
    std::vector<double> x(static_cast<std::size_t>(n - 1));
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    double alpha = rng.uniform(-1.0, 1.0);
    const double norm_before = std::sqrt(
        alpha * alpha +
        std::inner_product(x.begin(), x.end(), x.begin(), 0.0));

    auto xv = x;
    double tau = 0.0;
    lapack::larfg(alpha, test::vec(xv), tau);

    // |beta| equals the norm of the original vector.
    EXPECT_NEAR(std::abs(alpha), norm_before, 1e-13);

    // Applying H = I − tau·v·vᵀ to the original vector yields [beta; 0].
    auto v = full_v(alpha, xv);
    std::vector<double> orig(static_cast<std::size_t>(n));
    orig[0] = rng.uniform(0, 0);  // placeholder; rebuilt below
    // Rebuild original: we saved alpha/x before the call.
    // (recompute from the returned data instead: H·[beta;0] = original)
    Matrix<double> h = test::reflector_matrix(test::cvec(v), tau);
    std::vector<double> beta_e1(static_cast<std::size_t>(n), 0.0);
    beta_e1[0] = alpha;
    std::vector<double> reconstructed(static_cast<std::size_t>(n), 0.0);
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < n; ++j)
        reconstructed[static_cast<std::size_t>(i)] +=
            h(i, j) * beta_e1[static_cast<std::size_t>(j)];
    // H is an involution (H² = I), so H·[beta;0] must be the input vector;
    // we verify its norm and its tail against x (pre-call values lost, so
    // check the tail ratio structure instead):
    double rec_norm = 0.0;
    for (double r : reconstructed) rec_norm += r * r;
    EXPECT_NEAR(std::sqrt(rec_norm), norm_before, 1e-12);
  }
}

TEST(Larfg, ZeroTailGivesIdentity) {
  std::vector<double> x(5, 0.0);
  double alpha = 3.0;
  double tau = 1.0;
  lapack::larfg(alpha, test::vec(x), tau);
  EXPECT_EQ(tau, 0.0);
  EXPECT_EQ(alpha, 3.0);
}

TEST(Larfg, EmptyTail) {
  double alpha = 2.0;
  double tau = 1.0;
  VectorView<double> empty;
  lapack::larfg(alpha, empty, tau);
  EXPECT_EQ(tau, 0.0);
}

TEST(Larfg, TauRangeAndOrthogonality) {
  // For real reflectors, 1 ≤ tau ≤ 2, and H must be orthogonal.
  Rng rng(2);
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<double> x(7);
    for (auto& v : x) v = rng.uniform(-2.0, 2.0);
    double alpha = rng.uniform(-2.0, 2.0);
    double tau = 0.0;
    lapack::larfg(alpha, test::vec(x), tau);
    EXPECT_GE(tau, 1.0 - 1e-12);
    EXPECT_LE(tau, 2.0 + 1e-12);
    auto v = full_v(alpha, x);
    Matrix<double> h = test::reflector_matrix(test::cvec(v), tau);
    Matrix<double> hht(8, 8);
    blas::gemm(Trans::No, Trans::Yes, 1.0, h.cview(), h.cview(), 0.0, hht.view());
    Matrix<double> eye(8, 8);
    set_identity(eye.view());
    test::expect_matrix_near(hht.cview(), eye.cview(), 1e-13, "H orthogonal");
  }
}

TEST(Larfg, TinyValuesRescaledSafely) {
  std::vector<double> x = {1e-300, 2e-300};
  double alpha = 3e-300;
  double tau = 0.0;
  lapack::larfg(alpha, test::vec(x), tau);
  EXPECT_TRUE(std::isfinite(alpha));
  EXPECT_TRUE(std::isfinite(x[0]) && std::isfinite(x[1]));
  EXPECT_NEAR(std::abs(alpha) / 1e-300, std::sqrt(9.0 + 1.0 + 4.0), 1e-10);
}

TEST(Larf, MatchesExplicitReflector) {
  Rng rng(3);
  const index_t m = 9, n = 6;
  std::vector<double> v(static_cast<std::size_t>(m));
  v[0] = 1.0;
  for (std::size_t i = 1; i < v.size(); ++i) v[i] = rng.uniform(-1.0, 1.0);
  const double tau = 1.3;
  Matrix<double> c = random_matrix(m, n, 4);
  Matrix<double> h = test::reflector_matrix(test::cvec(v), tau);
  Matrix<double> expected = test::ref_gemm(Trans::No, Trans::No, 1.0, h.cview(), c.cview(),
                                           0.0, c.cview());
  std::vector<double> work(static_cast<std::size_t>(std::max(m, n)));
  lapack::larf(Side::Left, test::cvec(v), tau, c.view(), test::vec(work));
  test::expect_matrix_near(c.cview(), expected.cview(), 1e-12, "larf left");

  // Right application on a fresh matrix.
  Matrix<double> c2 = random_matrix(n, m, 5);
  Matrix<double> expected2 = test::ref_gemm(Trans::No, Trans::No, 1.0, c2.cview(), h.cview(),
                                            0.0, c2.cview());
  lapack::larf(Side::Right, test::cvec(v), tau, c2.view(), test::vec(work));
  test::expect_matrix_near(c2.cview(), expected2.cview(), 1e-12, "larf right");
}

TEST(Larf, TauZeroIsNoop) {
  Matrix<double> c = random_matrix(5, 5, 6);
  Matrix<double> c0(c.cview());
  std::vector<double> v(5, 1.0), work(5);
  lapack::larf(Side::Left, test::cvec(v), 0.0, c.view(), test::vec(work));
  EXPECT_EQ(max_abs_diff(c.cview(), c0.cview()), 0.0);
}

/// Build a random unit-lower-trapezoidal V (m×k) with taus, plus the dense
/// product H = H(0)·H(1)···H(k−1).
struct BlockReflector {
  Matrix<double> v;
  std::vector<double> tau;
  Matrix<double> dense;  // m×m
};

BlockReflector make_block(index_t m, index_t k, std::uint64_t seed) {
  Rng rng(seed);
  BlockReflector b{Matrix<double>(m, k), std::vector<double>(static_cast<std::size_t>(k)),
                   Matrix<double>(m, m)};
  set_identity(b.dense.view());
  std::vector<double> work(static_cast<std::size_t>(m));
  for (index_t j = 0; j < k; ++j) {
    b.v(j, j) = 1.0;
    for (index_t i = j + 1; i < m; ++i) b.v(i, j) = rng.uniform(-1.0, 1.0);
    b.tau[static_cast<std::size_t>(j)] = rng.uniform(1.0, 2.0);
    // dense := dense · H(j)
    Matrix<double> hj = test::reflector_matrix(
        VectorView<const double>(b.v.block(0, j, m, 1).col(0)), b.tau[static_cast<std::size_t>(j)]);
    Matrix<double> tmp(m, m);
    blas::gemm(Trans::No, Trans::No, 1.0, b.dense.cview(), hj.cview(), 0.0, tmp.view());
    b.dense.assign(tmp.cview());
  }
  return b;
}

TEST(Larft, CompactWYMatchesProductOfReflectors) {
  for (auto [m, k] : {std::pair<index_t, index_t>{8, 3}, {20, 7}, {5, 5}, {12, 1}}) {
    BlockReflector b = make_block(m, k, 7 + static_cast<std::uint64_t>(m));
    Matrix<double> t(k, k);
    lapack::larft(Direction::Forward, StoreV::Columnwise, b.v.cview(),
                  test::cvec(b.tau), t.view());
    // I − V·T·Vᵀ must equal the dense product.
    Matrix<double> vt(m, k);
    blas::gemm(Trans::No, Trans::No, 1.0, b.v.cview(), t.cview(), 0.0, vt.view());
    Matrix<double> h(m, m);
    set_identity(h.view());
    blas::gemm(Trans::No, Trans::Yes, -1.0, vt.cview(), b.v.cview(), 1.0, h.view());
    test::expect_matrix_near(h.cview(), b.dense.cview(), 1e-12, "compact WY");
    // T must be upper triangular.
    for (index_t j = 0; j < k; ++j)
      for (index_t i = j + 1; i < k; ++i) EXPECT_EQ(t(i, j), 0.0);
  }
}

class LarfbParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LarfbParam, MatchesDenseApplication) {
  const auto [sc, tc] = GetParam();
  const Side side = sc == 0 ? Side::Left : Side::Right;
  const Trans trans = tc == 0 ? Trans::No : Trans::Yes;
  const index_t m = 14, n = 9, k = 4;
  const index_t vlen = side == Side::Left ? m : n;

  BlockReflector b = make_block(vlen, k, 42);
  Matrix<double> t(k, k);
  lapack::larft(Direction::Forward, StoreV::Columnwise, b.v.cview(), test::cvec(b.tau),
                t.view());

  Matrix<double> c = random_matrix(m, n, 43);
  Matrix<double> expected(m, n);
  if (side == Side::Left) {
    expected = test::ref_gemm(trans, Trans::No, 1.0, b.dense.cview(), c.cview(), 0.0,
                              c.cview());
  } else {
    expected = test::ref_gemm(Trans::No, trans, 1.0, c.cview(), b.dense.cview(), 0.0,
                              c.cview());
  }
  Matrix<double> work(std::max(m, n), k);
  lapack::larfb(side, trans, Direction::Forward, StoreV::Columnwise, b.v.cview(), t.cview(),
                c.view(), work.view());
  test::expect_matrix_near(c.cview(), expected.cview(), 1e-11, "larfb");
}

INSTANTIATE_TEST_SUITE_P(AllSidesTrans, LarfbParam,
                         ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1)));

TEST(Larfb, IgnoresGarbageAboveVDiagonal) {
  // In LAPACK storage, V aliases the factored panel: entries on/above the
  // diagonal belong to H. larfb must never read them.
  const index_t m = 10, k = 3;
  BlockReflector b = make_block(m, k, 44);
  Matrix<double> t(k, k);
  lapack::larft(Direction::Forward, StoreV::Columnwise, b.v.cview(), test::cvec(b.tau),
                t.view());
  Matrix<double> c = random_matrix(m, 6, 45);
  Matrix<double> expected(c.cview());
  Matrix<double> work(10, k);
  lapack::larfb(Side::Left, Trans::Yes, Direction::Forward, StoreV::Columnwise, b.v.cview(),
                t.cview(), expected.view(), work.view());

  Matrix<double> vpoisoned(b.v.cview());
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i < j; ++i) vpoisoned(i, j) = std::nan("");
  // NOTE: the unit diagonal itself IS read by larft but larfb's trmm path
  // uses Diag::Unit; poison strictly-above only.
  lapack::larfb(Side::Left, Trans::Yes, Direction::Forward, StoreV::Columnwise,
                vpoisoned.cview(), t.cview(), c.view(), work.view());
  test::expect_matrix_near(c.cview(), expected.cview(), 0.0, "poisoned V");
}

TEST(Larfb, RejectsUnsupportedStorage) {
  Matrix<double> v(4, 2), t(2, 2), c(4, 4), work(4, 2);
  EXPECT_THROW(lapack::larfb(Side::Left, Trans::No, Direction::Backward, StoreV::Columnwise,
                             v.cview(), t.cview(), c.view(), work.view()),
               precondition_error);
  EXPECT_THROW(lapack::larfb(Side::Left, Trans::No, Direction::Forward, StoreV::Rowwise,
                             v.cview(), t.cview(), c.view(), work.view()),
               precondition_error);
}

}  // namespace
}  // namespace fth

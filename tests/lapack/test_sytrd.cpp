// Symmetric tridiagonal reduction: structure, residuals, blocked/unblocked
// agreement, and the new symmetric BLAS kernels it depends on.
#include <gtest/gtest.h>

#include <cmath>

#include "la/blas2.hpp"
#include "la/blas3.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lapack/orghr.hpp"
#include "lapack/sytrd.hpp"
#include "lapack/verify.hpp"
#include "test_utils.hpp"

namespace fth {
namespace {

using test::cvec;
using test::vec;

// ---- symv / syr2 / syr2k ----------------------------------------------------

TEST(Symv, MatchesDenseGemv) {
  const index_t n = 37;
  Matrix<double> s = random_symmetric_matrix(n, 1);
  std::vector<double> x(static_cast<std::size_t>(n)), y0(static_cast<std::size_t>(n));
  Rng rng(2);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  for (auto& v : y0) v = rng.uniform(-1.0, 1.0);

  for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
    auto y = y0;
    blas::symv(uplo, 1.5, s.cview(), cvec(x), -0.5, vec(y));
    auto expected = y0;
    blas::gemv(Trans::No, 1.5, s.cview(), cvec(x), -0.5, vec(expected));
    for (std::size_t i = 0; i < y.size(); ++i) ASSERT_NEAR(y[i], expected[i], 1e-12);
  }
}

TEST(Symv, OnlyReferencedTriangleRead) {
  const index_t n = 8;
  Matrix<double> s = random_symmetric_matrix(n, 3);
  Matrix<double> poisoned(s.cview());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i) poisoned(i, j) = std::nan("");  // poison upper
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  blas::symv(Uplo::Lower, 1.0, poisoned.cview(), cvec(x), 0.0, vec(y));
  for (double v : y) EXPECT_FALSE(std::isnan(v));
}

TEST(Symv, OnesVectorGivesSymmetrizedRowSums) {
  // The FT detection path: symv(Lower, A, e) must equal the row sums of
  // the full symmetric matrix.
  const index_t n = 25;
  Matrix<double> s = random_symmetric_matrix(n, 4);
  std::vector<double> ones(static_cast<std::size_t>(n), 1.0);
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  blas::symv(Uplo::Lower, 1.0, s.cview(), cvec(ones), 0.0, vec(y));
  for (index_t r = 0; r < n; ++r) {
    double expect = 0.0;
    for (index_t c = 0; c < n; ++c) expect += s(r, c);
    ASSERT_NEAR(y[static_cast<std::size_t>(r)], expect, 1e-12);
  }
}

TEST(Syr2, MatchesDenseUpdate) {
  const index_t n = 13;
  Matrix<double> s = random_symmetric_matrix(n, 5);
  Matrix<double> full(s.cview());
  std::vector<double> x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(n));
  Rng rng(6);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  for (auto& v : y) v = rng.uniform(-1.0, 1.0);

  blas::syr2(Uplo::Lower, -2.0, cvec(x), cvec(y), s.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      ASSERT_NEAR(s(i, j),
                  full(i, j) - 2.0 * (x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(j)] +
                                      y[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(j)]),
                  1e-13);
  // Upper triangle untouched.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i) ASSERT_EQ(s(i, j), full(i, j));
}

class Syr2kParam : public ::testing::TestWithParam<std::tuple<index_t, index_t, int>> {};

TEST_P(Syr2kParam, MatchesGemmPair) {
  const auto [n, k, uc] = GetParam();
  const Uplo uplo = uc == 0 ? Uplo::Lower : Uplo::Upper;
  Matrix<double> a = random_matrix(n, k, 7);
  Matrix<double> b = random_matrix(n, k, 8);
  Matrix<double> c = random_symmetric_matrix(n, 9);

  Matrix<double> expected(c.cview());
  blas::gemm(Trans::No, Trans::Yes, -1.0, a.cview(), b.cview(), 1.0, expected.view());
  blas::gemm(Trans::No, Trans::Yes, -1.0, b.cview(), a.cview(), 1.0, expected.view());

  Matrix<double> got(c.cview());
  blas::syr2k(uplo, Trans::No, -1.0, a.cview(), b.cview(), 1.0, got.view());
  for (index_t j = 0; j < n; ++j) {
    const index_t ilo = uplo == Uplo::Lower ? j : 0;
    const index_t ihi = uplo == Uplo::Lower ? n : j + 1;
    for (index_t i = ilo; i < ihi; ++i)
      ASSERT_NEAR(got(i, j), expected(i, j), 1e-11) << i << "," << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, Syr2kParam,
                         ::testing::Combine(::testing::Values<index_t>(5, 31, 64, 130),
                                            ::testing::Values<index_t>(1, 8, 32),
                                            ::testing::Values(0, 1)));

// ---- sytd2 / latrd / sytrd ---------------------------------------------------

struct SytrdOut {
  Matrix<double> factored{0, 0};
  std::vector<double> d, e, tau;
};

SytrdOut run_sytrd(const Matrix<double>& a0, index_t nb, index_t nx) {
  const index_t n = a0.rows();
  SytrdOut out{Matrix<double>(a0.cview()),
               std::vector<double>(static_cast<std::size_t>(n)),
               std::vector<double>(static_cast<std::size_t>(n - 1)),
               std::vector<double>(static_cast<std::size_t>(n - 1))};
  lapack::sytrd(out.factored.view(), vec(out.d), vec(out.e), vec(out.tau),
                {.nb = nb, .nx = nx});
  return out;
}

void verify_sytrd(const Matrix<double>& a0, const SytrdOut& out, double tol_res = 1e-15,
                  double tol_orth = 1e-14) {
  const index_t n = a0.rows();
  Matrix<double> t = lapack::tridiagonal_from(cvec(out.d), cvec(out.e));
  EXPECT_TRUE(lapack::is_tridiagonal(t.cview()));
  Matrix<double> q = lapack::orghr(out.factored.cview(), cvec(out.tau));
  EXPECT_LT(lapack::orthogonality_residual(q.cview()), tol_orth);
  EXPECT_LT(lapack::hessenberg_residual(a0.cview(), q.cview(), t.cview()), tol_res)
      << "n=" << n;
}

TEST(Sytd2, SmallKnownMatrix) {
  // [[4,1,2],[1,2,0],[2,0,3]]: one reflector zeroing A(2,0).
  Matrix<double> a(3, 3);
  a(0, 0) = 4; a(1, 0) = 1; a(2, 0) = 2;
  a(0, 1) = 1; a(1, 1) = 2; a(2, 1) = 0;
  a(0, 2) = 2; a(1, 2) = 0; a(2, 2) = 3;
  Matrix<double> orig(a.cview());
  std::vector<double> d(3), e(2), tau(2);
  lapack::sytd2(a.view(), vec(d), vec(e), vec(tau));
  EXPECT_NEAR(std::abs(e[0]), std::sqrt(5.0), 1e-13);  // ||(1,2)||
  EXPECT_NEAR(d[0], 4.0, 1e-13);                       // A(0,0) untouched
  // Trace preserved: d sums to the original trace.
  EXPECT_NEAR(d[0] + d[1] + d[2], 9.0, 1e-12);
}

TEST(Sytd2, TinySizes) {
  for (index_t n : {1, 2}) {
    Matrix<double> a = random_symmetric_matrix(n, 1);
    std::vector<double> d(static_cast<std::size_t>(n));
    std::vector<double> e(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)));
    std::vector<double> tau(e.size());
    EXPECT_NO_THROW(lapack::sytd2(a.view(), vec(d), vec(e), vec(tau)));
    EXPECT_EQ(d[0], a(0, 0));
  }
}

class SytrdParam : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {};

TEST_P(SytrdParam, ResidualAndOrthogonality) {
  const auto [n, nb, nx] = GetParam();
  Matrix<double> a0 = random_symmetric_matrix(n, 17 + static_cast<std::uint64_t>(n));
  verify_sytrd(a0, run_sytrd(a0, nb, nx));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBlocks, SytrdParam,
    ::testing::Combine(::testing::Values<index_t>(10, 33, 96, 158),
                       ::testing::Values<index_t>(4, 8, 32),
                       ::testing::Values<index_t>(8, 48)));

TEST(Sytrd, BlockedMatchesUnblocked) {
  const index_t n = 80;
  Matrix<double> a0 = random_symmetric_matrix(n, 2);
  Matrix<double> a1(a0.cview());
  std::vector<double> d1(static_cast<std::size_t>(n)), e1(static_cast<std::size_t>(n - 1)),
      t1(static_cast<std::size_t>(n - 1));
  lapack::sytd2(a1.view(), vec(d1), vec(e1), vec(t1));

  SytrdOut out = run_sytrd(a0, 16, 16);
  for (std::size_t i = 0; i < d1.size(); ++i) ASSERT_NEAR(out.d[i], d1[i], 1e-10);
  for (std::size_t i = 0; i < e1.size(); ++i) ASSERT_NEAR(out.e[i], e1[i], 1e-10);
  EXPECT_LT(max_abs_diff(out.factored.cview(), a1.cview()), 1e-10);
}

TEST(Sytrd, TracePreserved) {
  const index_t n = 67;
  Matrix<double> a0 = random_symmetric_matrix(n, 3);
  double tr = 0.0;
  for (index_t i = 0; i < n; ++i) tr += a0(i, i);
  SytrdOut out = run_sytrd(a0, 8, 8);
  double td = 0.0;
  for (double v : out.d) td += v;
  EXPECT_NEAR(td, tr, 1e-11 * std::max(1.0, std::abs(tr)));
}

TEST(Sytrd, DiagonalMatrixIsFixedPoint) {
  const index_t n = 20;
  Matrix<double> a(n, n);
  for (index_t i = 0; i < n; ++i) a(i, i) = static_cast<double>(i + 1);
  SytrdOut out = run_sytrd(a, 8, 8);
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(out.d[static_cast<std::size_t>(i)], i + 1.0);
  for (double v : out.e) EXPECT_EQ(v, 0.0);
}

TEST(Sytrd, UpperTriangleNeverTouched) {
  const index_t n = 40;
  Matrix<double> a0 = random_symmetric_matrix(n, 4);
  Matrix<double> a(a0.cview());
  std::vector<double> d(static_cast<std::size_t>(n)), e(static_cast<std::size_t>(n - 1)),
      tau(static_cast<std::size_t>(n - 1));
  lapack::sytrd(a.view(), vec(d), vec(e), vec(tau), {.nb = 8, .nx = 8});
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i) ASSERT_EQ(a(i, j), a0(i, j));
}

TEST(Sytrd, PreconditionChecks) {
  Matrix<double> rect(4, 5);
  std::vector<double> d(5), e(4), tau(4);
  EXPECT_THROW(lapack::sytrd(rect.view(), vec(d), vec(e), vec(tau)), precondition_error);
  Matrix<double> sq(6, 6);
  std::vector<double> shortd(2);
  EXPECT_THROW(lapack::sytrd(sq.view(), vec(shortd), vec(e), vec(tau)), precondition_error);
}

TEST(TridiagonalFrom, BuildsSymmetricBand) {
  std::vector<double> d = {1, 2, 3};
  std::vector<double> e = {4, 5};
  Matrix<double> t = lapack::tridiagonal_from(cvec(d), cvec(e));
  EXPECT_EQ(t(0, 0), 1.0);
  EXPECT_EQ(t(1, 0), 4.0);
  EXPECT_EQ(t(0, 1), 4.0);
  EXPECT_EQ(t(2, 1), 5.0);
  EXPECT_EQ(t(2, 0), 0.0);
  EXPECT_TRUE(lapack::is_tridiagonal(t.cview()));
  t(2, 0) = 1e-8;
  EXPECT_FALSE(lapack::is_tridiagonal(t.cview()));
  EXPECT_TRUE(lapack::is_tridiagonal(t.cview(), 1e-7));
}

}  // namespace
}  // namespace fth

// Bidiagonal reduction: structure, residuals, blocked/unblocked agreement,
// and Q/P formation.
#include <gtest/gtest.h>

#include <cmath>

#include "la/blas3.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lapack/gebrd.hpp"
#include "lapack/verify.hpp"
#include "test_utils.hpp"

namespace fth {
namespace {

using test::cvec;
using test::vec;

struct GebrdOut {
  Matrix<double> factored{0, 0};
  std::vector<double> d, e, tauq, taup;
};

GebrdOut run_gebrd(const Matrix<double>& a0, index_t nb, index_t nx, bool blocked = true) {
  const index_t n = a0.rows();
  GebrdOut out{Matrix<double>(a0.cview()),
               std::vector<double>(static_cast<std::size_t>(n)),
               std::vector<double>(static_cast<std::size_t>(std::max<index_t>(n - 1, 0))),
               std::vector<double>(static_cast<std::size_t>(n)),
               std::vector<double>(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)))};
  if (blocked) {
    lapack::gebrd(out.factored.view(), vec(out.d), vec(out.e), vec(out.tauq), vec(out.taup),
                  {.nb = nb, .nx = nx});
  } else {
    lapack::gebd2(out.factored.view(), vec(out.d), vec(out.e), vec(out.tauq), vec(out.taup));
  }
  return out;
}

/// ‖A − Q·B·Pᵀ‖max / ‖A‖max.
double reconstruction_residual(const Matrix<double>& a0, const GebrdOut& out) {
  const index_t n = a0.rows();
  Matrix<double> b = lapack::bidiagonal_from(cvec(out.d), cvec(out.e));
  Matrix<double> q = lapack::orgbr_q(out.factored.cview(), cvec(out.tauq));
  Matrix<double> p = lapack::orgbr_p(out.factored.cview(), cvec(out.taup));
  Matrix<double> qb(n, n), rec(n, n);
  blas::gemm(Trans::No, Trans::No, 1.0, q.cview(), b.cview(), 0.0, qb.view());
  blas::gemm(Trans::No, Trans::Yes, 1.0, qb.cview(), p.cview(), 0.0, rec.view());
  return max_abs_diff(rec.cview(), a0.cview()) / std::max(1.0, norm_max(a0.cview()));
}

TEST(Gebd2, TinySizes) {
  for (index_t n : {1, 2, 3}) {
    Matrix<double> a0 = random_matrix(n, n, 1);
    GebrdOut out = run_gebrd(a0, 4, 4, /*blocked=*/false);
    EXPECT_LT(reconstruction_residual(a0, out), 1e-13) << "n=" << n;
  }
}

TEST(Gebd2, BidiagonalInputIsNearFixedPoint) {
  // d values may flip sign (larfg normalization) but magnitudes persist.
  const index_t n = 10;
  Matrix<double> a(n, n);
  for (index_t i = 0; i < n; ++i) {
    a(i, i) = static_cast<double>(i + 1);
    if (i + 1 < n) a(i, i + 1) = 0.5;
  }
  GebrdOut out = run_gebrd(a, 4, 4, false);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(out.d[static_cast<std::size_t>(i)]), i + 1.0, 1e-12);
}

class GebrdParam : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {};

TEST_P(GebrdParam, ReconstructionAndOrthogonality) {
  const auto [n, nb, nx] = GetParam();
  Matrix<double> a0 = random_matrix(n, n, 13 + static_cast<std::uint64_t>(n));
  GebrdOut out = run_gebrd(a0, nb, nx);

  Matrix<double> b = lapack::bidiagonal_from(cvec(out.d), cvec(out.e));
  EXPECT_TRUE(lapack::is_upper_bidiagonal(b.cview()));
  Matrix<double> q = lapack::orgbr_q(out.factored.cview(), cvec(out.tauq));
  Matrix<double> p = lapack::orgbr_p(out.factored.cview(), cvec(out.taup));
  EXPECT_LT(lapack::orthogonality_residual(q.cview()), 1e-13);
  EXPECT_LT(lapack::orthogonality_residual(p.cview()), 1e-13);
  EXPECT_LT(reconstruction_residual(a0, out), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBlocks, GebrdParam,
    ::testing::Combine(::testing::Values<index_t>(8, 33, 96, 130),
                       ::testing::Values<index_t>(4, 8, 32),
                       ::testing::Values<index_t>(8, 48)));

TEST(Gebrd, BlockedMatchesUnblocked) {
  const index_t n = 70;
  Matrix<double> a0 = random_matrix(n, n, 2);
  GebrdOut unb = run_gebrd(a0, 8, 8, false);
  GebrdOut blk = run_gebrd(a0, 16, 16);
  EXPECT_LT(max_abs_diff(blk.factored.cview(), unb.factored.cview()), 1e-10);
  for (std::size_t i = 0; i < unb.d.size(); ++i) ASSERT_NEAR(blk.d[i], unb.d[i], 1e-10);
  for (std::size_t i = 0; i < unb.e.size(); ++i) ASSERT_NEAR(blk.e[i], unb.e[i], 1e-10);
}

TEST(Gebrd, SingularValuesPreserved) {
  // Frobenius norm is invariant under the two-sided orthogonal transform:
  // Σd² + Σe² = ‖A‖F².
  const index_t n = 50;
  Matrix<double> a0 = random_matrix(n, n, 3);
  GebrdOut out = run_gebrd(a0, 8, 8);
  double sum = 0.0;
  for (double v : out.d) sum += v * v;
  for (double v : out.e) sum += v * v;
  const double fro = norm_fro(a0.cview());
  EXPECT_NEAR(std::sqrt(sum), fro, 1e-11 * fro);
}

TEST(Gebrd, PreconditionChecks) {
  Matrix<double> rect(4, 5);
  std::vector<double> d(5), e(4), tq(5), tp(4);
  EXPECT_THROW(lapack::gebrd(rect.view(), vec(d), vec(e), vec(tq), vec(tp)),
               precondition_error);
  Matrix<double> sq(6, 6);
  std::vector<double> shortd(2);
  EXPECT_THROW(lapack::gebrd(sq.view(), vec(shortd), vec(e), vec(tq), vec(tp)),
               precondition_error);
}

TEST(BidiagonalFrom, Structure) {
  std::vector<double> d = {1, 2, 3};
  std::vector<double> e = {4, 5};
  Matrix<double> b = lapack::bidiagonal_from(cvec(d), cvec(e));
  EXPECT_EQ(b(0, 0), 1.0);
  EXPECT_EQ(b(0, 1), 4.0);
  EXPECT_EQ(b(1, 2), 5.0);
  EXPECT_EQ(b(1, 0), 0.0);
  EXPECT_TRUE(lapack::is_upper_bidiagonal(b.cview()));
  b(2, 0) = 1e-9;
  EXPECT_FALSE(lapack::is_upper_bidiagonal(b.cview()));
  EXPECT_TRUE(lapack::is_upper_bidiagonal(b.cview(), 1e-8));
}

}  // namespace
}  // namespace fth

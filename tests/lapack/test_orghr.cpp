// orghr: explicit Q formation and the verification helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "la/blas3.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lapack/gehrd.hpp"
#include "lapack/orghr.hpp"
#include "lapack/verify.hpp"
#include "test_utils.hpp"

namespace fth {
namespace {

VectorView<double> tau_view(std::vector<double>& tau) {
  return VectorView<double>(tau.data(), static_cast<index_t>(tau.size()));
}
VectorView<const double> tau_cview(const std::vector<double>& tau) {
  return VectorView<const double>(tau.data(), static_cast<index_t>(tau.size()));
}

class OrghrParam : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(OrghrParam, QIsOrthogonalAndReconstructs) {
  const auto [n, nb] = GetParam();
  Matrix<double> a = random_matrix(n, n, 3 * static_cast<std::uint64_t>(n) + 1);
  Matrix<double> orig(a.cview());
  std::vector<double> tau(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)));
  lapack::gehrd(a.view(), tau_view(tau), {.nb = 8, .nx = 16});

  Matrix<double> q = lapack::orghr(a.cview(), tau_cview(tau), nb);
  EXPECT_LT(lapack::orthogonality_residual(q.cview()), 1e-14);

  Matrix<double> h = lapack::extract_hessenberg(a.cview());
  EXPECT_LT(lapack::hessenberg_residual(orig.cview(), q.cview(), h.cview()), 1e-15);

  // Q must have first row/column e1 (Q = diag(1, Q̃)).
  if (n > 0) {
    EXPECT_EQ(q(0, 0), 1.0);
    for (index_t i = 1; i < n; ++i) {
      EXPECT_EQ(q(i, 0), 0.0);
      EXPECT_EQ(q(0, i), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SizesAndBlocks, OrghrParam,
                         ::testing::Combine(::testing::Values<index_t>(1, 2, 3, 17, 64, 129),
                                            ::testing::Values<index_t>(1, 7, 32)));

TEST(Orghr, MatchesAccumulatedReflectors) {
  // Q from orghr must equal the product of explicitly-formed reflectors.
  const index_t n = 16;
  Matrix<double> a = random_matrix(n, n, 5);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  lapack::gehd2(a.view(), tau_view(tau));

  Matrix<double> q_ref(n, n);
  set_identity(q_ref.view());
  std::vector<double> v(static_cast<std::size_t>(n));
  for (index_t i = 0; i + 2 < n; ++i) {
    // Dense H(i) acting on rows/cols i+1..n−1.
    Matrix<double> hi(n, n);
    set_identity(hi.view());
    v.assign(static_cast<std::size_t>(n), 0.0);
    v[static_cast<std::size_t>(i + 1)] = 1.0;
    for (index_t r = i + 2; r < n; ++r) v[static_cast<std::size_t>(r)] = a(r, i);
    for (index_t c = 0; c < n; ++c)
      for (index_t r = 0; r < n; ++r)
        hi(r, c) -= tau[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(r)] *
                    v[static_cast<std::size_t>(c)];
    Matrix<double> tmp(n, n);
    blas::gemm(Trans::No, Trans::No, 1.0, q_ref.cview(), hi.cview(), 0.0, tmp.view());
    q_ref.assign(tmp.cview());
  }
  Matrix<double> q = lapack::orghr(a.cview(), tau_cview(tau), 4);
  test::expect_matrix_near(q.cview(), q_ref.cview(), 1e-12, "orghr vs product");
}

TEST(Verify, ResidualDetectsCorruption) {
  const index_t n = 30;
  Matrix<double> a = random_matrix(n, n, 6);
  Matrix<double> orig(a.cview());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  lapack::gehrd(a.view(), tau_view(tau), {.nb = 4, .nx = 8});
  auto good = lapack::verify_reduction(orig.cview(), a.cview(), tau_cview(tau));
  EXPECT_LT(good.residual, 1e-15);

  // Corrupt one H element: residual must jump by orders of magnitude.
  Matrix<double> bad(a.cview());
  bad(2, 5) += 1.0;
  auto b = lapack::verify_reduction(orig.cview(), bad.cview(), tau_cview(tau));
  EXPECT_GT(b.residual, 1e-5);
}

TEST(Verify, OrthogonalityDetectsCorruptedReflector) {
  const index_t n = 30;
  Matrix<double> a = random_matrix(n, n, 7);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  lapack::gehrd(a.view(), tau_view(tau), {.nb = 4, .nx = 8});
  Matrix<double> bad(a.cview());
  bad(10, 2) += 1.0;  // a Householder-vector entry (below subdiagonal)
  Matrix<double> q = lapack::orghr(bad.cview(), tau_cview(tau));
  EXPECT_GT(lapack::orthogonality_residual(q.cview()), 1e-6);
}

TEST(Verify, IsUpperHessenberg) {
  Matrix<double> h = random_hessenberg_matrix(12, 8);
  EXPECT_TRUE(lapack::is_upper_hessenberg(h.cview()));
  h(5, 2) = 1e-13;
  EXPECT_FALSE(lapack::is_upper_hessenberg(h.cview()));
  EXPECT_TRUE(lapack::is_upper_hessenberg(h.cview(), 1e-12));
}

}  // namespace
}  // namespace fth

// Hessenberg reduction drivers: structure, residuals, blocked/unblocked
// agreement, and the lahr2 panel contract.
#include <gtest/gtest.h>

#include <cmath>

#include "la/blas3.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lapack/gehrd.hpp"
#include "lapack/orghr.hpp"
#include "lapack/verify.hpp"
#include "test_utils.hpp"

namespace fth {
namespace {

VectorView<double> tau_view(std::vector<double>& tau) {
  return VectorView<double>(tau.data(), static_cast<index_t>(tau.size()));
}
VectorView<const double> tau_cview(const std::vector<double>& tau) {
  return VectorView<const double>(tau.data(), static_cast<index_t>(tau.size()));
}

TEST(Gehd2, SmallKnownCase) {
  // 3×3: one reflector; verify H = QᵀAQ directly.
  Matrix<double> a(3, 3);
  a(0, 0) = 4; a(0, 1) = 1; a(0, 2) = -2;
  a(1, 0) = 1; a(1, 1) = 2; a(1, 2) = 0;
  a(2, 0) = 3; a(2, 1) = 0; a(2, 2) = 1;
  Matrix<double> orig(a.cview());
  std::vector<double> tau(2);
  lapack::gehd2(a.view(), tau_view(tau));
  auto v = lapack::verify_reduction(orig.cview(), a.cview(), tau_cview(tau));
  EXPECT_TRUE(v.hessenberg);
  EXPECT_LT(v.residual, 1e-14);
  EXPECT_LT(v.orthogonality, 1e-14);
  // Subdiagonal magnitude: |beta| = ||(1,3)|| = sqrt(10).
  EXPECT_NEAR(std::abs(a(1, 0)), std::sqrt(10.0), 1e-13);
}

TEST(Gehd2, TinySizes) {
  for (index_t n : {0, 1, 2}) {
    Matrix<double> a = random_matrix(n, n, 1);
    Matrix<double> orig(a.cview());
    std::vector<double> tau(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)));
    EXPECT_NO_THROW(lapack::gehd2(a.view(), tau_view(tau)));
    // n ≤ 2 is already Hessenberg; the matrix must be unchanged.
    EXPECT_EQ(max_abs_diff(a.cview(), orig.cview()), 0.0);
  }
}

TEST(Gehd2, AlreadyHessenbergStaysClose) {
  const index_t n = 24;
  Matrix<double> a = random_hessenberg_matrix(n, 2);
  Matrix<double> orig(a.cview());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  lapack::gehd2(a.view(), tau_view(tau));
  // All reflectors should be trivial: the matrix is untouched.
  for (double t : tau) EXPECT_EQ(t, 0.0);
  EXPECT_EQ(max_abs_diff(a.cview(), orig.cview()), 0.0);
}

class GehrdParam : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {};

TEST_P(GehrdParam, ResidualAndOrthogonality) {
  const auto [n, nb, nx] = GetParam();
  Matrix<double> a = random_matrix(n, n, 31 + static_cast<std::uint64_t>(n));
  Matrix<double> orig(a.cview());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  lapack::gehrd(a.view(), tau_view(tau), {.nb = nb, .nx = nx});
  auto v = lapack::verify_reduction(orig.cview(), a.cview(), tau_cview(tau));
  EXPECT_TRUE(v.hessenberg);
  EXPECT_LT(v.residual, 1e-15);        // Table II territory
  EXPECT_LT(v.orthogonality, 1e-14);   // Table III territory
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBlocks, GehrdParam,
    ::testing::Combine(::testing::Values<index_t>(10, 33, 96, 158, 200),
                       ::testing::Values<index_t>(4, 8, 32),
                       ::testing::Values<index_t>(8, 48)));

TEST(Gehrd, BlockedMatchesUnblocked) {
  const index_t n = 90;
  Matrix<double> a = random_matrix(n, n, 5);
  Matrix<double> b(a.cview());
  std::vector<double> tau_a(static_cast<std::size_t>(n - 1));
  std::vector<double> tau_b(static_cast<std::size_t>(n - 1));
  lapack::gehd2(a.view(), tau_view(tau_a));
  lapack::gehrd(b.view(), tau_view(tau_b), {.nb = 16, .nx = 16});
  // Same reflectors up to roundoff (identical mathematical algorithm).
  EXPECT_LT(max_abs_diff(a.cview(), b.cview()), 1e-10);
  for (std::size_t i = 0; i < tau_a.size(); ++i)
    EXPECT_NEAR(tau_a[i], tau_b[i], 1e-10);
}

TEST(Gehrd, SimilarityPreservesTrace) {
  const index_t n = 77;
  Matrix<double> a = random_matrix(n, n, 6);
  double trace_before = 0.0;
  for (index_t i = 0; i < n; ++i) trace_before += a(i, i);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  lapack::gehrd(a.view(), tau_view(tau), {.nb = 8, .nx = 16});
  Matrix<double> h = lapack::extract_hessenberg(a.cview());
  double trace_after = 0.0;
  for (index_t i = 0; i < n; ++i) trace_after += h(i, i);
  EXPECT_NEAR(trace_before, trace_after, 1e-11 * std::max(1.0, std::abs(trace_before)));
}

TEST(Gehrd, SymmetricInputGivesTridiagonal) {
  // QᵀAQ of a symmetric A is symmetric Hessenberg ⇒ tridiagonal.
  const index_t n = 40;
  Matrix<double> a = random_symmetric_matrix(n, 7);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  lapack::gehrd(a.view(), tau_view(tau), {.nb = 8, .nx = 8});
  Matrix<double> h = lapack::extract_hessenberg(a.cview());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i + 1 < j; ++i) ASSERT_LT(std::abs(h(i, j)), 1e-12);
}

TEST(Gehrd, PreconditionChecks) {
  Matrix<double> rect(4, 5);
  std::vector<double> tau(4);
  EXPECT_THROW(lapack::gehrd(rect.view(), tau_view(tau)), precondition_error);
  Matrix<double> sq(6, 6);
  std::vector<double> short_tau(2);
  EXPECT_THROW(lapack::gehrd(sq.view(), tau_view(short_tau)), precondition_error);
  EXPECT_THROW(lapack::gehd2(sq.view(), tau_view(short_tau)), precondition_error);
}

TEST(Lahr2, PanelContract) {
  // After lahr2 on the first panel: Y = A·V·T over the full height, and the
  // panel columns carry the partially-updated factorization.
  const index_t n = 30, nb = 5;
  Matrix<double> a = random_matrix(n, n, 8);
  Matrix<double> orig(a.cview());
  Matrix<double> t(nb, nb);
  Matrix<double> y(n, nb);
  std::vector<double> tau(nb);
  lapack::lahr2(a.view(), 0, nb, t.view(), y.view(), tau_view(tau));

  Matrix<double> v = lapack::materialize_v(a.cview(), 0, nb);
  // Y must equal A_orig·[0; V]·T — wait: Y = A(:, k+1:n)·V·T with A the
  // *current* matrix; for the first panel the columns k+1:n have received
  // only in-panel updates for columns inside the panel. Verify instead the
  // defining recurrence on the fully-updated trailing columns, using the
  // identity Y·Vᵀ = A·(V·T·Vᵀ) applied to the original matrix for columns
  // beyond the panel (those are untouched by lahr2):
  // Y(:, :)·T⁻¹ = A(:, 1:n)·V  restricted to untouched columns of A.
  // Simpler robust check: columns beyond the panel of A are untouched.
  for (index_t j = nb + 1; j < n; ++j)
    for (index_t i = 0; i < n; ++i) ASSERT_EQ(a(i, j), orig(i, j));

  // And the full gehrd continuation from this panel state must verify,
  // which exercises the V/T/Y contract end to end (done in GehrdParam).
  // Here additionally check T is upper triangular with tau on the diagonal.
  for (index_t j = 0; j < nb; ++j) {
    EXPECT_EQ(t(j, j), tau[static_cast<std::size_t>(j)]);
    for (index_t i = j + 1; i < nb; ++i) ASSERT_EQ(t(i, j), 0.0);
  }
}

TEST(Lahr2, YMatchesDefinitionOnFirstColumn) {
  // For the first panel column (j = 0): Y(:, 0) = tau0·A(:, 1:n)·v0 with
  // A the original matrix — verifiable exactly.
  const index_t n = 20, nb = 3;
  Matrix<double> a = random_matrix(n, n, 9);
  Matrix<double> orig(a.cview());
  Matrix<double> t(nb, nb), y(n, nb);
  std::vector<double> tau(nb);
  lapack::lahr2(a.view(), 0, nb, t.view(), y.view(), tau_view(tau));
  Matrix<double> v = lapack::materialize_v(a.cview(), 0, nb);

  std::vector<double> expect(static_cast<std::size_t>(n - 1), 0.0);
  for (index_t i = 1; i < n; ++i) {
    double acc = 0.0;
    for (index_t c = 1; c < n; ++c) acc += orig(i, c) * v(c - 1, 0);
    expect[static_cast<std::size_t>(i - 1)] = tau[0] * acc;
  }
  for (index_t i = 1; i < n; ++i)
    ASSERT_NEAR(y(i, 0), expect[static_cast<std::size_t>(i - 1)], 1e-12);
}

TEST(MaterializeV, Layout) {
  const index_t n = 12, nb = 4;
  Matrix<double> a = random_matrix(n, n, 10);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  lapack::gehrd(a.view(), tau_view(tau), {.nb = nb, .nx = nb});
  Matrix<double> v = lapack::materialize_v(a.cview(), 0, nb);
  ASSERT_EQ(v.rows(), n - 1);
  ASSERT_EQ(v.cols(), nb);
  for (index_t j = 0; j < nb; ++j) {
    for (index_t i = 0; i < j; ++i) ASSERT_EQ(v(i, j), 0.0);  // zeros above
    ASSERT_EQ(v(j, j), 1.0);                                  // unit diagonal
    for (index_t i = j + 1; i < n - 1; ++i) ASSERT_EQ(v(i, j), a(i + 1, j));
  }
  EXPECT_THROW(lapack::materialize_v(a.cview(), n - 1, 2), precondition_error);
}

TEST(ExtractHessenberg, ZeroesBelowSubdiagonal) {
  Matrix<double> a = random_matrix(10, 10, 11);
  Matrix<double> h = lapack::extract_hessenberg(a.cview());
  for (index_t j = 0; j < 10; ++j) {
    for (index_t i = 0; i <= std::min<index_t>(j + 1, 9); ++i) ASSERT_EQ(h(i, j), a(i, j));
    for (index_t i = j + 2; i < 10; ++i) ASSERT_EQ(h(i, j), 0.0);
  }
}

}  // namespace
}  // namespace fth

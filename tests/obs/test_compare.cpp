// fth::obs bench-report comparison: glob matching, report flattening,
// threshold parsing, and the regression verdicts the CI gate relies on —
// in particular that a >10% slowdown against a baseline is a violation and
// a within-tolerance wobble is not.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/json.hpp"
#include "obs/compare.hpp"

namespace fth::obs {
namespace {

// ---- glob -------------------------------------------------------------------

TEST(CompareGlob, StarQuestionAndLiterals) {
  EXPECT_TRUE(glob_match("rows.*.seconds", "rows.0.seconds"));
  EXPECT_TRUE(glob_match("rows.*.seconds", "rows.12.seconds"));
  EXPECT_FALSE(glob_match("rows.*.seconds", "rows.0.gflops"));
  EXPECT_TRUE(glob_match("*", "anything.at.all"));
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("rows.?.n", "rows.3.n"));
  EXPECT_FALSE(glob_match("rows.?.n", "rows.12.n"));
  EXPECT_TRUE(glob_match("a*b*c", "a-xx-b-yy-c"));
  EXPECT_FALSE(glob_match("a*b*c", "a-xx-c"));
  EXPECT_TRUE(glob_match("metrics.counters.ft.*", "metrics.counters.ft.detections"));
  EXPECT_FALSE(glob_match("exact", "exactly"));
  EXPECT_FALSE(glob_match("exactly", "exact"));
}

// ---- flatten ----------------------------------------------------------------

TEST(CompareFlatten, DottedPathsNumbersOnly) {
  const json::Value v = json::parse(
      R"({"bench":"x","notes":{"nb":32},"rows":[{"n":128,"gflops":1.5},{"n":256,"gflops":2.5}],)"
      R"("flag":true,"nothing":null})");
  std::map<std::string, double> flat;
  flatten_numbers(v, "", flat);
  EXPECT_EQ(flat.size(), 5u);  // strings, bools and nulls are skipped
  EXPECT_EQ(flat.at("notes.nb"), 32.0);
  EXPECT_EQ(flat.at("rows.0.n"), 128.0);
  EXPECT_EQ(flat.at("rows.0.gflops"), 1.5);
  EXPECT_EQ(flat.at("rows.1.n"), 256.0);
  EXPECT_EQ(flat.at("rows.1.gflops"), 2.5);
  EXPECT_EQ(flat.count("bench"), 0u);
  EXPECT_EQ(flat.count("flag"), 0u);
}

// ---- threshold parsing ------------------------------------------------------

TEST(CompareThresholds, ParsesModesCommentsAndBlanks) {
  std::istringstream in(
      "# perf gate\n"
      "rows.*.gflops  max_decrease 0.10\n"
      "\n"
      "rows.*.seconds max_increase 0.10   # inline comment\n"
      "notes.*        ignore\n"
      "*.exact        abs 0.0\n"
      "*              rel 0.25\n");
  const auto rules = parse_thresholds(in);
  ASSERT_EQ(rules.size(), 5u);
  EXPECT_EQ(rules[0].pattern, "rows.*.gflops");
  EXPECT_EQ(rules[0].mode, ThresholdRule::Mode::MaxDecrease);
  EXPECT_DOUBLE_EQ(rules[0].tol, 0.10);
  EXPECT_EQ(rules[1].mode, ThresholdRule::Mode::MaxIncrease);
  EXPECT_EQ(rules[2].mode, ThresholdRule::Mode::Ignore);
  EXPECT_EQ(rules[3].mode, ThresholdRule::Mode::Abs);
  EXPECT_EQ(rules[4].mode, ThresholdRule::Mode::Rel);
}

TEST(CompareThresholds, RejectsMalformedLines) {
  std::istringstream bad_mode("rows.* sideways 0.1\n");
  EXPECT_THROW({ auto r = parse_thresholds(bad_mode); }, json::parse_error);
  std::istringstream no_tol("rows.* rel\n");
  EXPECT_THROW({ auto r = parse_thresholds(no_tol); }, json::parse_error);
}

// ---- comparison verdicts ----------------------------------------------------

std::vector<ThresholdRule> gate_rules() {
  std::istringstream in(
      "rows.*.seconds max_increase 0.10\n"
      "rows.*.gflops  max_decrease 0.10\n");
  return parse_thresholds(in);
}

TEST(CompareReports, TenPercentSlowdownViolates) {
  const json::Value base =
      json::parse(R"({"rows":[{"seconds":1.00,"gflops":20.0},{"seconds":2.00,"gflops":10.0}]})");
  // Row 0 slows down 15% and loses 15% throughput; row 1 is unchanged.
  const json::Value cand =
      json::parse(R"({"rows":[{"seconds":1.15,"gflops":17.0},{"seconds":2.00,"gflops":10.0}]})");
  const CompareResult res = compare_reports(base, cand, gate_rules());
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.violations, 2);
  ASSERT_EQ(res.gated.size(), 4u);
  for (const auto& g : res.gated) {
    const bool should_violate = g.path.rfind("rows.0", 0) == 0;
    EXPECT_EQ(g.violated, should_violate) << g.path;
  }
}

TEST(CompareReports, WithinToleranceAndImprovementsPass) {
  const json::Value base = json::parse(R"({"rows":[{"seconds":1.00,"gflops":20.0}]})");
  // 8% slower is inside the 10% gate; faster/higher is always fine under
  // the one-sided modes.
  const json::Value ok = json::parse(R"({"rows":[{"seconds":1.08,"gflops":19.0}]})");
  EXPECT_TRUE(compare_reports(base, ok, gate_rules()).ok());
  const json::Value better = json::parse(R"({"rows":[{"seconds":0.50,"gflops":40.0}]})");
  EXPECT_TRUE(compare_reports(base, better, gate_rules()).ok());
}

TEST(CompareReports, MissingGatedMetricIsAViolation) {
  const json::Value base = json::parse(R"({"rows":[{"seconds":1.0},{"seconds":2.0}]})");
  const json::Value cand = json::parse(R"({"rows":[{"seconds":1.0}]})");
  const CompareResult res = compare_reports(base, cand, gate_rules());
  EXPECT_EQ(res.violations, 1);
  ASSERT_EQ(res.gated.size(), 2u);
  EXPECT_TRUE(res.gated[1].missing);
  EXPECT_TRUE(res.gated[1].violated);
}

TEST(CompareReports, AbsentRooflineFracAgainstZeroBaseIsNotARegression) {
  // Legacy baselines recorded roofline_frac=0 when no roofline was set;
  // newer reports omit the key entirely. Absent-vs-0 must not gate, but a
  // measured baseline fraction disappearing still must.
  const json::Value base = json::parse(
      R"({"profile":{"phases":[{"gflops":1.0,"roofline_frac":0.0},)"
      R"({"gflops":2.0,"roofline_frac":0.5}]}})");
  const json::Value cand =
      json::parse(R"({"profile":{"phases":[{"gflops":1.0},{"gflops":2.0}]}})");
  std::istringstream in("profile.phases.*.roofline_frac max_decrease 0.10\n");
  const CompareResult res = compare_reports(base, cand, parse_thresholds(in));
  ASSERT_EQ(res.gated.size(), 1u) << "the zero-base absent key is skipped entirely";
  EXPECT_EQ(res.gated[0].path, "profile.phases.1.roofline_frac");
  EXPECT_TRUE(res.gated[0].missing);
  EXPECT_TRUE(res.gated[0].violated);
}

TEST(CompareReports, LegacyScalarStreamOccupancyIsTheDOneArrayForm) {
  // stream_occupancy grew from a scalar into a per-device array with the
  // device pool. A legacy scalar baseline vs a new single-entry array (and
  // the reverse) is the same D=1 metric, not a schema regression — but the
  // value itself still gates, and array entries beyond .0 have no legacy
  // counterpart so their disappearance still violates.
  std::istringstream in("profile.overlap.stream_occupancy* max_decrease 0.10\n");
  const auto rules = parse_thresholds(in);

  const json::Value scalar =
      json::parse(R"({"profile":{"overlap":{"stream_occupancy":0.5}}})");
  const json::Value arr1 =
      json::parse(R"({"profile":{"overlap":{"stream_occupancy":[0.5]}}})");
  const json::Value arr1_slow =
      json::parse(R"({"profile":{"overlap":{"stream_occupancy":[0.2]}}})");
  const json::Value arr3 = json::parse(
      R"({"profile":{"overlap":{"stream_occupancy":[0.5,0.4,0.3]}}})");

  EXPECT_EQ(compare_reports(scalar, arr1, rules).violations, 0);
  EXPECT_EQ(compare_reports(arr1, scalar, rules).violations, 0);
  EXPECT_EQ(compare_reports(scalar, arr3, rules).violations, 0)
      << "widening the pool keeps entry 0 comparable";
  EXPECT_EQ(compare_reports(scalar, arr1_slow, rules).violations, 1)
      << "the carve-out maps the path, it does not waive the threshold";
  const CompareResult narrowed = compare_reports(arr3, arr1, rules);
  EXPECT_EQ(narrowed.violations, 2) << "entries .1/.2 vanishing still gate";
}

TEST(CompareReports, FirstMatchWinsAndUnmatchedIgnored) {
  const json::Value base = json::parse(R"({"a":1.0,"b":1.0,"c":1.0})");
  const json::Value cand = json::parse(R"({"a":5.0,"b":5.0})");  // c missing too
  std::istringstream in(
      "a ignore\n"
      "a rel 0.0\n"  // shadowed by the ignore above: first match wins
      "b rel 0.5\n");
  const CompareResult res = compare_reports(base, cand, parse_thresholds(in));
  // a: ignored (despite the later strict rule); b: gated and violated;
  // c: matched by nothing, so its disappearance is not judged at all.
  ASSERT_EQ(res.gated.size(), 1u);
  EXPECT_EQ(res.gated[0].path, "b");
  EXPECT_TRUE(res.gated[0].violated);
  EXPECT_EQ(res.violations, 1);
}

TEST(CompareReports, RelAndAbsModes) {
  const json::Value base = json::parse(R"({"x":100.0,"y":0.001})");
  const json::Value cand = json::parse(R"({"x":104.0,"y":0.003})");
  {
    std::istringstream in("x rel 0.05\ny abs 0.005\n");
    EXPECT_TRUE(compare_reports(base, cand, parse_thresholds(in)).ok());
  }
  {
    std::istringstream in("x rel 0.01\ny abs 0.001\n");
    const CompareResult res = compare_reports(base, cand, parse_thresholds(in));
    EXPECT_EQ(res.violations, 2);
  }
}

}  // namespace
}  // namespace fth::obs

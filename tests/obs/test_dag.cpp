// fth::obs::dag — the execution-DAG recorder and its offline analyses:
// hand-computable CPM/attribution/what-if numbers over synthetic graphs,
// structural determinism of two identical recorded runs (the golden-graph
// property the bench gate's `dag.tasks`/`dag.waits` thresholds rely on),
// the to_json/parse_graph round trip through the in-repo json reader, and
// the zero-cost-when-off guarantee (no allocations on the disabled hooks).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <tuple>
#include <vector>

#include "common/json.hpp"
#include "hybrid/hybrid_gehrd.hpp"
#include "la/generate.hpp"
#include "obs/dag.hpp"

// ---- global allocation counter (for the zero-overhead-off test) -------------
//
// Replaceable global operator new/delete, counting every allocation made by
// this binary. The disabled dag hooks must not show up here at all.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded == 0 ? a : rounded)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace fth {
namespace {

using obs::dag::EdgeKind;
using obs::dag::Graph;
using obs::dag::Node;
using obs::dag::NodeKind;

Node make_node(NodeKind kind, const std::string& label, double t0, double t1) {
  Node nd;
  nd.kind = kind;
  nd.label = label;
  nd.t0_us = t0;
  nd.t1_us = t1;
  return nd;
}

// ---- analyze(): hand-computable CPM, slack, and attribution -----------------
//
// Work[0,100) --Enq--> Task dev.gemm[100,300) --Cause--> Wait sync[150,300)
//      |                    |--Fifo--> Task dev.aux[300,320)      |
//      +-------------Seq-------------------------------->--------+--Seq--> Work[300,350)
//
// Full and data-only critical path: Work(100) + dev.gemm(200) + Wait(0) +
// Work(50) = 350 µs = the wall. dev.aux hangs off the side with 230 µs of
// data slack (its only non-Fifo path is Work(100)+aux(20)=120 µs through).

Graph hand_graph() {
  Graph g;
  g.t0_us = 0.0;
  g.t1_us = 350.0;
  g.nodes.push_back(make_node(NodeKind::Work, "host", 0.0, 100.0));  // 0
  Node gemm = make_node(NodeKind::Task, "dev.gemm", 100.0, 300.0);   // 1
  gemm.stream = 1;
  gemm.ticket = 1;
  gemm.enq_us = 90.0;
  gemm.enq_after = 0;
  g.nodes.push_back(gemm);
  Node wait = make_node(NodeKind::Wait, "synchronize", 150.0, 300.0);  // 2
  wait.site = "synchronize@x.cpp:5";
  wait.stream = 1;
  wait.ticket = 1;
  wait.cause = 1;
  g.nodes.push_back(wait);
  g.nodes.push_back(make_node(NodeKind::Work, "host", 300.0, 350.0));  // 3
  Node aux = make_node(NodeKind::Task, "dev.aux", 300.0, 320.0);       // 4
  aux.stream = 1;
  aux.ticket = 2;
  aux.enq_us = 95.0;
  aux.enq_after = 0;
  g.nodes.push_back(aux);
  g.edges.push_back({0, 2, EdgeKind::Seq});
  g.edges.push_back({0, 1, EdgeKind::Enq});
  g.edges.push_back({0, 4, EdgeKind::Enq});
  g.edges.push_back({1, 2, EdgeKind::Cause});
  g.edges.push_back({2, 3, EdgeKind::Seq});
  g.edges.push_back({1, 4, EdgeKind::Fifo});
  g.host_order = {0, 2, 3};
  return g;
}

TEST(DagAnalyze, HandComputableCriticalPathSlackAndAttribution) {
  const Graph g = hand_graph();
  EXPECT_EQ(g.count(NodeKind::Task), 2u);
  EXPECT_EQ(g.count(NodeKind::Wait), 1u);
  EXPECT_EQ(g.count(EdgeKind::Fifo), 1u);

  const obs::dag::Analysis an = obs::dag::analyze(g);
  EXPECT_NEAR(an.wall_s, 350e-6, 1e-15);
  EXPECT_NEAR(an.critical_path_s, 350e-6, 1e-15);
  EXPECT_NEAR(an.critical_path_data_s, 350e-6, 1e-15);
  EXPECT_LE(an.critical_path_s, an.wall_s + 1e-15);

  // The one wait is 150 µs, fully attributed to its cause task + site.
  EXPECT_NEAR(an.host_blocked_s, 150e-6, 1e-15);
  EXPECT_NEAR(an.attributed_s, 150e-6, 1e-15);
  EXPECT_DOUBLE_EQ(an.attributed_frac, 1.0);
  ASSERT_EQ(an.blocking.size(), 1u);
  EXPECT_EQ(an.blocking[0].site, "synchronize@x.cpp:5");
  EXPECT_EQ(an.blocking[0].kind, "synchronize");
  EXPECT_EQ(an.blocking[0].waiting_on, "dev.gemm");
  EXPECT_EQ(an.blocking[0].count, 1u);
  EXPECT_NEAR(an.blocking[0].seconds, 150e-6, 1e-15);

  // Path composition, sorted by seconds: gemm 200 µs, host 2×150 µs, the
  // zero-duration wait point.
  ASSERT_EQ(an.path.size(), 3u);
  EXPECT_EQ(an.path[0].label, "dev.gemm");
  EXPECT_NEAR(an.path[0].seconds, 200e-6, 1e-15);
  EXPECT_EQ(an.path[1].label, "host");
  EXPECT_EQ(an.path[1].count, 2u);
  EXPECT_NEAR(an.path[1].seconds, 150e-6, 1e-15);
  EXPECT_EQ(an.path[2].label, "synchronize@x.cpp:5");
  EXPECT_NEAR(an.path[2].seconds, 0.0, 1e-15);

  // Slack: everything on the path is tight; dev.aux could slip 230 µs.
  ASSERT_EQ(an.slack_s.size(), g.nodes.size());
  EXPECT_NEAR(an.slack_s[0], 0.0, 1e-15);
  EXPECT_NEAR(an.slack_s[1], 0.0, 1e-15);
  EXPECT_NEAR(an.slack_s[3], 0.0, 1e-15);
  EXPECT_NEAR(an.slack_s[4], 230e-6, 1e-15);
}

// ---- simulate(): the lookahead pipeline model -------------------------------
//
// Panel work enqueues one iteration-0 update gemm, the next panel's
// synchronize blocks on it (the recorded pipeline bubble); under 1-panel
// lookahead the newest update generation may stay in flight and the bubble
// disappears — unless the in-flight task is a d2h, which lands host data
// and must keep draining (DESIGN.md §12).

Graph pipeline_graph(bool with_d2h) {
  Graph g;
  g.t0_us = 0.0;
  g.t1_us = 120.0;
  Node w0 = make_node(NodeKind::Work, "host", 0.0, 10.0);  // 0: panel 0
  w0.phase = 1;
  w0.iter = 0;
  g.nodes.push_back(w0);
  Node gemm = make_node(NodeKind::Task, "dev.gemm", 10.0, 110.0);  // 1: update 0
  gemm.phase = 2;
  gemm.iter = 0;
  gemm.stream = 7;
  gemm.ticket = 1;
  gemm.enq_us = 5.0;
  gemm.enq_after = 0;
  g.nodes.push_back(gemm);
  Node w2 = make_node(NodeKind::Work, "host", 10.0, 20.0);  // 2: panel 1
  w2.phase = 1;
  w2.iter = 1;
  g.nodes.push_back(w2);
  Node wait = make_node(NodeKind::Wait, "synchronize", 20.0, 110.0);  // 3
  wait.site = "synchronize@p.cpp:9";
  wait.phase = 1;
  wait.iter = 1;
  wait.stream = 7;
  wait.ticket = with_d2h ? 2 : 1;
  wait.cause = 1;
  g.nodes.push_back(wait);
  g.nodes.push_back(make_node(NodeKind::Work, "host", 110.0, 120.0));  // 4
  g.edges.push_back({0, 1, EdgeKind::Enq});
  g.edges.push_back({0, 2, EdgeKind::Seq});
  g.edges.push_back({2, 3, EdgeKind::Seq});
  g.edges.push_back({1, 3, EdgeKind::Cause});
  g.edges.push_back({3, 4, EdgeKind::Seq});
  if (with_d2h) {
    Node d2h = make_node(NodeKind::Task, "d2h", 110.0, 115.0);  // 5
    d2h.phase = 2;
    d2h.iter = 0;
    d2h.stream = 7;
    d2h.ticket = 2;
    d2h.enq_us = 6.0;
    d2h.enq_after = 0;
    d2h.bytes = 1024.0;
    g.nodes.push_back(d2h);
    g.edges.push_back({0, 5, EdgeKind::Enq});
    g.edges.push_back({1, 5, EdgeKind::Fifo});
  }
  g.host_order = {0, 2, 3, 4};
  return g;
}

TEST(DagSimulate, ReplayReproducesTheRecordedPipelineBubble) {
  const Graph g = pipeline_graph(/*with_d2h=*/false);
  const obs::dag::Prediction p = obs::dag::simulate(g, {"replay", 0, 1, 1.0});
  // t: 10 (panel 0) + 10 (panel 1), sync drains the 100 µs gemm ending at
  // 110, tail work to 120.
  EXPECT_NEAR(p.wall_s, 120e-6, 1e-15);
  EXPECT_NEAR(p.host_blocked_s, 90e-6, 1e-15);
  EXPECT_NEAR(p.device_busy_s, 100e-6, 1e-15);
  // Busy [10,110) ∩ blocked [20,110) = 90 µs → 10 µs of hidden device work.
  EXPECT_NEAR(p.overlap_fraction, 0.1, 1e-12);
  EXPECT_NEAR(p.speedup, 1.0, 1e-12);
}

TEST(DagSimulate, OnePanelLookaheadElidesTheUpdateDrain) {
  const Graph g = pipeline_graph(/*with_d2h=*/false);
  const obs::dag::Prediction p =
      obs::dag::simulate(g, {"lookahead1_streams2", 1, 2, 1.0});
  // During panel 1 the newest update generation in flight is iteration 0;
  // with 1-panel lookahead the synchronize leaves it in flight, the host
  // never blocks, and the wall is the gemm finishing on its own stream.
  EXPECT_NEAR(p.wall_s, 110e-6, 1e-15);
  EXPECT_NEAR(p.host_blocked_s, 0.0, 1e-15);
  EXPECT_NEAR(p.overlap_fraction, 1.0, 1e-12);
  EXPECT_NEAR(p.speedup, 120.0 / 110.0, 1e-12);
}

TEST(DagSimulate, LandedD2hStaysAHardDependencyUnderLookahead) {
  const Graph g = pipeline_graph(/*with_d2h=*/true);
  const obs::dag::Prediction p =
      obs::dag::simulate(g, {"lookahead1_streams2", 1, 2, 1.0});
  // The update-phase d2h may not be elided: the host reads its landed data
  // right after the wait. It queues behind the gemm (ends 115), the sync
  // drains to it, and the tail work pushes the wall to 125.
  EXPECT_NEAR(p.wall_s, 125e-6, 1e-15);
  EXPECT_NEAR(p.host_blocked_s, 95e-6, 1e-15);
}

TEST(DagSimulate, DevScaleShrinksOnlyDeviceCompute) {
  const Graph g = pipeline_graph(/*with_d2h=*/false);
  const obs::dag::Prediction p = obs::dag::simulate(g, {"fast_gemm", 0, 1, 0.5});
  // gemm 100 → 50 µs; replay then blocks [20,60) and ends at 70.
  EXPECT_NEAR(p.wall_s, 70e-6, 1e-15);
  EXPECT_NEAR(p.device_busy_s, 50e-6, 1e-15);
  EXPECT_NEAR(p.host_blocked_s, 40e-6, 1e-15);
}

// ---- recorded runs: golden determinism, round trip, what-if sanity ----------

Graph record_small_run() {
  const index_t n = 48, nb = 16;
  hybrid::Device dev;
  Matrix<double> a = random_matrix(n, n, 7);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  obs::dag::start();
  obs::dag::mark("test.begin");
  hybrid::hybrid_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1),
                       {.nb = nb, .nx = nb}, nullptr);
  return obs::dag::stop();
}

// Structure with run-varying fields (timestamps, tids, the process-global
// stream ids) normalized away; stream ids map to first-appearance order.
struct GraphShape {
  std::vector<std::tuple<int, int, int, int, std::uint64_t, std::string, std::string,
                         double, std::int64_t, std::int64_t>>
      nodes;
  std::vector<std::tuple<std::int64_t, std::int64_t, int>> edges;
  std::vector<std::int64_t> host_order;
  bool operator==(const GraphShape&) const = default;
};

GraphShape shape_of(const Graph& g) {
  GraphShape s;
  std::vector<std::uint64_t> streams;
  const auto norm_stream = [&](std::uint64_t id) -> int {
    if (id == 0) return -1;
    for (std::size_t i = 0; i < streams.size(); ++i)
      if (streams[i] == id) return static_cast<int>(i);
    streams.push_back(id);
    return static_cast<int>(streams.size() - 1);
  };
  for (const Node& nd : g.nodes)
    s.nodes.emplace_back(static_cast<int>(nd.kind), nd.phase, nd.iter,
                         norm_stream(nd.stream), nd.ticket, nd.label, nd.site, nd.bytes,
                         nd.cause, nd.enq_after);
  for (const obs::dag::Edge& e : g.edges)
    s.edges.emplace_back(e.src, e.dst, static_cast<int>(e.kind));
  s.host_order = g.host_order;
  return s;
}

TEST(DagRecord, TwoIdenticalRunsYieldTheSameGraphShape) {
  const Graph a = record_small_run();
  const Graph b = record_small_run();
  ASSERT_GT(a.count(NodeKind::Task), 0u);
  ASSERT_GT(a.count(NodeKind::Wait), 0u);
  ASSERT_GT(a.count(NodeKind::Span), 0u);
  EXPECT_EQ(a.count(NodeKind::Mark), 1u);
  EXPECT_GT(a.count(EdgeKind::Fifo), 0u);
  EXPECT_GT(a.count(EdgeKind::Cause), 0u);
  EXPECT_GT(a.count(EdgeKind::Enq), 0u);
  EXPECT_EQ(shape_of(a), shape_of(b))
      << "the DAG of a fixed-seed run must be structurally deterministic "
         "(the bench gate pins dag.tasks/dag.waits to abs 0)";
}

TEST(DagRecord, EdgesRespectRecordedTime) {
  const Graph g = record_small_run();
  // Every happens-before edge must satisfy pred.t1 ≤ succ's CPM position
  // (a Wait sits at its end) — the invariant that makes CP ≤ wall a
  // theorem rather than an observation.
  for (const obs::dag::Edge& e : g.edges) {
    const Node& src = g.nodes[static_cast<std::size_t>(e.src)];
    const Node& dst = g.nodes[static_cast<std::size_t>(e.dst)];
    const double dst_at = dst.kind == NodeKind::Wait ? dst.t1_us : dst.t0_us;
    EXPECT_LE(src.t1_us, dst_at + 1e-6)
        << "edge " << e.src << "->" << e.dst << " kind "
        << static_cast<int>(e.kind);
  }
}

TEST(DagRecord, JsonRoundTripIsExact) {
  const Graph g = record_small_run();
  json::Value v;
  ASSERT_NO_THROW(v = json::parse(g.to_json()));
  const Graph r = obs::dag::parse_graph(v);
  EXPECT_EQ(r.t0_us, g.t0_us);
  EXPECT_EQ(r.t1_us, g.t1_us);
  EXPECT_EQ(r.host_order, g.host_order);
  ASSERT_EQ(r.nodes.size(), g.nodes.size());
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    EXPECT_EQ(static_cast<int>(r.nodes[i].kind), static_cast<int>(g.nodes[i].kind));
    EXPECT_EQ(r.nodes[i].label, g.nodes[i].label);
    EXPECT_EQ(r.nodes[i].site, g.nodes[i].site);
    EXPECT_EQ(r.nodes[i].ticket, g.nodes[i].ticket);
    EXPECT_EQ(r.nodes[i].cause, g.nodes[i].cause);
    EXPECT_EQ(r.nodes[i].enq_after, g.nodes[i].enq_after);
    EXPECT_EQ(r.nodes[i].t0_us, g.nodes[i].t0_us) << "%.17g timestamps round-trip";
    EXPECT_EQ(r.nodes[i].t1_us, g.nodes[i].t1_us);
  }
  ASSERT_EQ(r.edges.size(), g.edges.size());
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    EXPECT_EQ(r.edges[i].src, g.edges[i].src);
    EXPECT_EQ(r.edges[i].dst, g.edges[i].dst);
    EXPECT_EQ(static_cast<int>(r.edges[i].kind), static_cast<int>(g.edges[i].kind));
  }
}

TEST(DagRecord, MalformedNodeRowIsRejected) {
  const json::Value v = json::parse(
      R"({"version":1,"t0_us":0,"t1_us":1,"host_order":[],)"
      R"("nodes":[[0,0,-1,0,0,0,0.0,1.0,-1.0,0.0,-1,-1,"host"]],"edges":[]})");
  EXPECT_THROW({ const Graph g = obs::dag::parse_graph(v); }, json::parse_error);
}

TEST(DagWhatIf, PredictionsAreSane) {
  const Graph g = record_small_run();
  const obs::dag::Analysis an = obs::dag::analyze(g);
  EXPECT_GT(an.critical_path_s, 0.0);
  EXPECT_LE(an.critical_path_s, an.wall_s + 1e-12);
  EXPECT_LE(an.critical_path_data_s, an.critical_path_s + 1e-12);
  EXPECT_GE(an.attributed_frac, 0.0);
  EXPECT_LE(an.attributed_frac, 1.0);
  EXPECT_LE(an.attributed_s, an.host_blocked_s + 1e-12);

  const obs::dag::Prediction replay = obs::dag::simulate(g, {"replay", 0, 1, 1.0});
  const obs::dag::Prediction inf = obs::dag::simulate(
      g, {"infinite_streams", 0, obs::dag::kInfiniteStreams, 1.0});
  // The replay compresses untracked host gaps but honours every recorded
  // dependency, so it lands between the data-only critical path and the
  // recorded wall; extra streams can only help.
  EXPECT_LE(replay.wall_s, g.wall_s() + 1e-9);
  EXPECT_GE(replay.wall_s, an.critical_path_data_s - 1e-9);
  EXPECT_LE(inf.wall_s, replay.wall_s + 1e-9);
  EXPECT_GE(inf.wall_s, 0.0);
  for (const obs::dag::Prediction* p : {&replay, &inf}) {
    EXPECT_GE(p->overlap_fraction, 0.0);
    EXPECT_LE(p->overlap_fraction, 1.0);
    EXPECT_GT(p->speedup, 0.0);
  }

  // default_scenarios: the roofline-gemm entry appears only for a real
  // sub-unity scale.
  EXPECT_EQ(obs::dag::default_scenarios(1.0).size(), 4u);
  EXPECT_EQ(obs::dag::default_scenarios(0.0).size(), 4u);
  const auto with_roof = obs::dag::default_scenarios(0.5);
  ASSERT_EQ(with_roof.size(), 5u);
  EXPECT_EQ(with_roof.back().name, "lookahead1_roofline_gemm");
  EXPECT_DOUBLE_EQ(with_roof.back().dev_scale, 0.5);

  // The bench-report section parses and exposes the gated keys.
  std::vector<obs::dag::Prediction> what_if = {replay, inf};
  json::Value sec;
  ASSERT_NO_THROW(sec = json::parse(obs::dag::section_json(g, an, what_if)));
  EXPECT_GT(sec.at("tasks").as_number(), 0.0);
  EXPECT_GT(sec.at("waits").as_number(), 0.0);
  EXPECT_GT(sec.at("critical_path_s").as_number(), 0.0);
  EXPECT_EQ(sec.at("what_if").as_array().size(), 2u);
}

// ---- disabled recorder: zero cost -------------------------------------------

TEST(DagOff, DisabledHooksRecordNothingAndNeverAllocate) {
  ASSERT_FALSE(obs::dag::enabled());
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    obs::dag::detail::on_enqueue(1, i, "dev.gemm");
    obs::dag::detail::on_task_begin(1, i, "dev.gemm");
    obs::dag::detail::on_transfer(1, i, 4096.0);
    obs::dag::detail::on_task_end(1, i);
    obs::dag::detail::on_wait_begin("synchronize", "synchronize@x.cpp:1", 1, i);
    obs::dag::detail::on_wait_end();
    obs::dag::detail::on_span('B', "hybrid", "panel", 1.0);
    obs::dag::detail::on_span('E', "", "", 2.0);
    obs::dag::mark("test.mark");
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "FTH_DAG=0 hooks must be a relaxed load and nothing else";
  const Graph g = obs::dag::stop();
  EXPECT_TRUE(g.nodes.empty()) << "disabled hooks must not buffer events";
  EXPECT_EQ(g.wall_s(), 0.0);
}

}  // namespace
}  // namespace fth

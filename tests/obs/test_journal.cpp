// fth::obs journal: the bounded structured event log behind incident
// capsules. The contract under test: off by default with a free off path,
// bounded ring (oldest records overwritten), run-id slicing, and JSONL
// rendering that round-trips through the repo's own JSON reader.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/json.hpp"
#include "obs/journal.hpp"

namespace fth::obs {
namespace {

/// Every test leaves the journal off — it is process-global state.
struct JournalGuard {
  ~JournalGuard() { journal_stop(); }
};

TEST(Journal, OffByDefaultAndLogIsANoOp) {
  JournalGuard guard;
  journal_stop();
  EXPECT_FALSE(journal_enabled());
  journal_log(JournalSeverity::Info, "ft", "detect", 0, 1.0, 2);
  EXPECT_TRUE(journal_snapshot().empty());
}

TEST(Journal, RecordsRoundTripWithAllFields) {
  JournalGuard guard;
  journal_start(128);
  ASSERT_TRUE(journal_enabled());
  const std::uint64_t run = journal_new_run();
  journal_log(JournalSeverity::Warn, "pool", "loss_detected", 2, 3.5, 7);
  journal_log(JournalSeverity::Error, "fault", "strike", 1, 0.0, -1,
              std::string("exponent-flip @ trailing-matrix"));

  const std::vector<JournalEvent> events = journal_snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].run_id, run);
  EXPECT_STREQ(events[0].component, "pool");
  EXPECT_STREQ(events[0].event, "loss_detected");
  EXPECT_EQ(events[0].device, 2);
  EXPECT_DOUBLE_EQ(events[0].value, 3.5);
  EXPECT_EQ(events[0].boundary, 7);
  EXPECT_EQ(events[0].severity, JournalSeverity::Warn);
  EXPECT_TRUE(events[0].detail.empty());
  EXPECT_EQ(events[1].detail, "exponent-flip @ trailing-matrix");
  EXPECT_GE(events[1].t_us, events[0].t_us) << "records must be time-ordered";
}

TEST(Journal, RingIsBoundedOldestFirst) {
  JournalGuard guard;
  journal_start(64);
  for (int i = 0; i < 200; ++i)
    journal_log(JournalSeverity::Info, "ft", "detect", -1, static_cast<double>(i));
  const std::vector<JournalEvent> events = journal_snapshot();
  ASSERT_EQ(events.size(), 64u) << "capacity bounds the ring";
  EXPECT_DOUBLE_EQ(events.front().value, 136.0) << "oldest surviving record";
  EXPECT_DOUBLE_EQ(events.back().value, 199.0);
}

TEST(Journal, RunIdSlicesTheSharedRing) {
  JournalGuard guard;
  journal_start(128);
  const std::uint64_t first = journal_new_run();
  journal_log(JournalSeverity::Info, "ft", "rollback");
  const std::uint64_t second = journal_new_run();
  ASSERT_GT(second, first);
  EXPECT_EQ(journal_run(), second);
  journal_log(JournalSeverity::Info, "ft", "reexec");
  journal_log(JournalSeverity::Info, "ft", "detect");
  EXPECT_EQ(journal_snapshot(first).size(), 1u);
  EXPECT_EQ(journal_snapshot(second).size(), 2u);
  journal_set_run(first);
  EXPECT_EQ(journal_run(), first);
}

TEST(Journal, JsonRendersEveryFieldAndParses) {
  JournalGuard guard;
  journal_start(64);
  journal_new_run();
  journal_log(JournalSeverity::Error, "check", "TransferRace", 1, 9.0, 3,
              std::string("host read of \"u2\" before event"));
  const std::vector<JournalEvent> events = journal_snapshot();
  ASSERT_EQ(events.size(), 1u);
  const json::Value v = json::parse(journal_event_json(events[0]));
  EXPECT_EQ(v.at("severity").as_string(), "error");
  EXPECT_EQ(v.at("component").as_string(), "check");
  EXPECT_EQ(v.at("event").as_string(), "TransferRace");
  EXPECT_EQ(v.at("device").as_number(), 1.0);
  EXPECT_EQ(v.at("value").as_number(), 9.0);
  EXPECT_EQ(v.at("boundary").as_number(), 3.0);
  EXPECT_EQ(v.at("detail").as_string(), "host read of \"u2\" before event");
  EXPECT_GT(v.at("t_us").as_number(), 0.0);
  EXPECT_GT(v.at("run").as_number(), 0.0);
}

TEST(Journal, JsonlDumpWritesOneLinePerRecord) {
  JournalGuard guard;
  journal_start(64);
  journal_log(JournalSeverity::Info, "pool", "started");
  journal_log(JournalSeverity::Info, "pool", "finished");
  const std::string jsonl = journal_to_jsonl(journal_snapshot());
  ASSERT_FALSE(jsonl.empty());
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 1) << "2 records, 1 separator";

  const std::string path = ::testing::TempDir() + "fth_journal_test.jsonl";
  ASSERT_TRUE(journal_write(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[512];
  ASSERT_NE(std::fgets(line, sizeof line, f), nullptr);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NO_THROW((void)json::parse(line)) << "each JSONL line is one JSON object";
}

TEST(Journal, StopDisarmsAndDropsTheRing) {
  JournalGuard guard;
  journal_start(64);
  journal_log(JournalSeverity::Info, "ft", "detect");
  journal_stop();
  EXPECT_FALSE(journal_enabled());
  EXPECT_TRUE(journal_snapshot().empty());
  EXPECT_FALSE(journal_write(::testing::TempDir() + "fth_journal_off.jsonl"));
}

}  // namespace
}  // namespace fth::obs

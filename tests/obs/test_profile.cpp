// fth::obs profiler: the offline aggregation core (ProfileBuilder over
// synthetic timestamps, where every expected number can be computed by
// hand), the live window around a real FT run, name interning, and the
// JSON emission round-tripped through the in-repo json reader.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hpp"
#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"
#include "ft/pool_gehrd.hpp"
#include "hybrid/hybrid_gehrd.hpp"
#include "hybrid/pool.hpp"
#include "la/generate.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace fth {
namespace {

const obs::ProfilePhase* find_phase(const obs::ProfileReport& rep, const std::string& track,
                                    const std::string& cat, const std::string& name) {
  for (const auto& p : rep.phases) {
    if (p.track == track && p.cat == cat && p.name == name) return &p;
  }
  return nullptr;
}

// ---- ProfileBuilder: hand-computable synthetic trace ------------------------

TEST(ProfileBuilder, AttributionOverlapAndCriticalPath) {
  obs::ProfileBuilder b;
  // Host track (tid 0): panel [0,100), then update [100,300) with a nested
  // synchronize [150,200). Device track (tid 1): one task [50,250).
  b.begin(0, "hybrid", "panel", 0.0);
  b.end(0, 100.0);
  b.begin(0, "hybrid", "update", 100.0);
  b.begin(0, "stream", "synchronize", 150.0);
  b.end(0, 200.0);
  b.end(0, 300.0);
  b.begin(1, "stream", "task", 50.0, /*arg=*/0.0, /*flops=*/0);
  b.end(1, 250.0, /*flops=*/2000000);

  const obs::ProfileReport rep = b.finish(/*roofline=*/1.0);

  // Window length derives from the event range: 300 µs.
  EXPECT_NEAR(rep.wall_s, 300e-6, 1e-12);

  // Per-phase inclusive/self times.
  const auto* panel = find_phase(rep, "host", "hybrid", "panel");
  ASSERT_NE(panel, nullptr);
  EXPECT_EQ(panel->calls, 1u);
  EXPECT_NEAR(panel->wall_s, 100e-6, 1e-12);
  EXPECT_NEAR(panel->self_s, 100e-6, 1e-12);

  const auto* update = find_phase(rep, "host", "hybrid", "update");
  ASSERT_NE(update, nullptr);
  EXPECT_NEAR(update->wall_s, 200e-6, 1e-12);
  EXPECT_NEAR(update->self_s, 150e-6, 1e-12);  // minus the nested synchronize

  const auto* task = find_phase(rep, "device", "stream", "task");
  ASSERT_NE(task, nullptr);
  EXPECT_NEAR(task->wall_s, 200e-6, 1e-12);
  EXPECT_EQ(task->flops, 2000000u);
  // 2 MFLOP in 200 µs = 10 GF/s; against a 1 GF/s roofline that is 10x.
  EXPECT_NEAR(task->gflops, 0.01 * 1000.0, 1e-6);
  EXPECT_NEAR(task->roofline_frac, task->gflops, 1e-9);

  // Overlap: device busy [50,250) = 200 µs; host waits [150,200) = 50 µs of
  // it, so 150 µs of device work overlapped useful host work.
  EXPECT_NEAR(rep.device_busy_s, 200e-6, 1e-12);
  EXPECT_NEAR(rep.host_wait_s, 50e-6, 1e-12);
  EXPECT_NEAR(rep.overlapped_s, 150e-6, 1e-12);
  EXPECT_NEAR(rep.overlap_fraction, 0.75, 1e-9);
  EXPECT_NEAR(rep.stream_occupancy, 200.0 / 300.0, 1e-9);
  // One device track → one per-device entry, equal to the aggregate.
  ASSERT_EQ(rep.per_device_occupancy.size(), 1u);
  EXPECT_NEAR(rep.per_device_occupancy[0], rep.stream_occupancy, 1e-9);

  // Critical path: panel begin (0) → update end (300).
  EXPECT_EQ(rep.iterations, 1u);
  EXPECT_NEAR(rep.iter_avg_s, 300e-6, 1e-12);
  EXPECT_NEAR(rep.iter_max_s, 300e-6, 1e-12);
  EXPECT_NEAR(rep.iter_avg_panel_s, 100e-6, 1e-12);
  EXPECT_NEAR(rep.iter_avg_update_s, 200e-6, 1e-12);
}

TEST(ProfileBuilder, PerDeviceOccupancySplitsAcrossDeviceTracks) {
  // Two device workers with very different duty cycles inside a 400 µs
  // window: the aggregate occupancy unions them, the per-device entries keep
  // them apart (sorted descending) so an idle pool member is visible.
  obs::ProfileBuilder b;
  b.begin(0, "hybrid", "panel", 0.0);
  b.end(0, 400.0);
  b.begin(1, "stream", "task", 0.0);  // busy 300/400
  b.end(1, 300.0);
  b.begin(2, "stream", "task", 100.0);  // busy 100/400, overlapping track 1
  b.end(2, 200.0);
  const obs::ProfileReport rep = b.finish(0.0);
  EXPECT_NEAR(rep.wall_s, 400e-6, 1e-12);
  EXPECT_NEAR(rep.device_busy_s, 300e-6, 1e-12);  // union, not sum
  EXPECT_NEAR(rep.stream_occupancy, 0.75, 1e-9);
  ASSERT_EQ(rep.per_device_occupancy.size(), 2u);
  EXPECT_NEAR(rep.per_device_occupancy[0], 0.75, 1e-9);
  EXPECT_NEAR(rep.per_device_occupancy[1], 0.25, 1e-9);

  // JSON spells the metric as an array, one entry per device track.
  const json::Value v = json::parse(rep.to_json());
  const auto& occ = v.at("overlap").at("stream_occupancy");
  ASSERT_TRUE(occ.is_array());
  ASSERT_EQ(occ.as_array().size(), 2u);
  EXPECT_NEAR(occ.as_array()[0].as_number(), 0.75, 1e-9);
  EXPECT_NEAR(occ.as_array()[1].as_number(), 0.25, 1e-9);

  // A replayed trace has no ordinal channel: the ordinal-keyed map stays
  // empty and its JSON key is omitted (legacy baselines gate untouched).
  EXPECT_TRUE(rep.per_device_by_ordinal.empty());
  EXPECT_EQ(v.at("overlap").find("stream_occupancy_by_device"), nullptr);
}

TEST(ProfileBuilder, HostOnlyWindowStillEmitsTheOccupancyArray) {
  obs::ProfileBuilder b;
  b.begin(0, "test", "work", 0.0);
  b.end(0, 100.0);
  const obs::ProfileReport rep = b.finish(0.0);
  EXPECT_TRUE(rep.per_device_occupancy.empty());
  const json::Value v = json::parse(rep.to_json());
  const auto& occ = v.at("overlap").at("stream_occupancy");
  ASSERT_TRUE(occ.is_array());
  ASSERT_EQ(occ.as_array().size(), 1u) << "aggregate scalar rides as entry 0";
  EXPECT_EQ(occ.as_array()[0].as_number(), 0.0);
}

TEST(ProfileBuilder, UnmatchedEndsIgnoredAndLiteralInternedNamesMerge) {
  obs::ProfileBuilder b;
  b.end(0, 5.0);  // stray end before any begin: dropped, not a crash
  // Same (cat, name) content through a literal and an interned copy must
  // aggregate into one phase (pointer identity is not the key).
  b.begin(0, "test", "phase", 10.0);
  b.end(0, 20.0);
  b.begin(0, obs::intern_name(std::string("te") + "st"),
          obs::intern_name(std::string("pha") + "se"), 30.0);
  b.end(0, 40.0);
  const obs::ProfileReport rep = b.finish(0.0);
  ASSERT_EQ(rep.phases.size(), 1u);
  EXPECT_EQ(rep.phases[0].calls, 2u);
  EXPECT_NEAR(rep.phases[0].wall_s, 20e-6, 1e-12);
}

TEST(ProfileBuilder, OpenSpansAreClosedAtFinish) {
  obs::ProfileBuilder b;
  b.begin(0, "test", "open", 0.0);
  b.begin(0, "test", "inner", 40.0);
  // finish() with no explicit wall hint closes both at the last seen ts.
  const obs::ProfileReport rep = b.finish(0.0);
  const auto* open = find_phase(rep, "host", "test", "open");
  const auto* inner = find_phase(rep, "host", "test", "inner");
  ASSERT_NE(open, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(open->calls, 1u);
  EXPECT_EQ(inner->calls, 1u);
}

// ---- name interning ---------------------------------------------------------

TEST(InternName, StableAndDeduplicated) {
  const std::string dynamic = "n=" + std::to_string(128);
  const char* a = obs::intern_name(dynamic);
  const char* b = obs::intern_name("n=128");
  const char* c = obs::intern_name("n=256");
  EXPECT_STREQ(a, "n=128");
  EXPECT_EQ(a, b) << "equal content must intern to one pointer";
  EXPECT_NE(a, c);
  // The pointer outlives the source string (copied into interned storage).
  EXPECT_NE(static_cast<const void*>(a), static_cast<const void*>(dynamic.c_str()));
}

// ---- live profiler over a real FT run ---------------------------------------

TEST(ProfileLive, FtRunProducesAttributedReport) {
  const index_t n = 64, nb = 16;
  hybrid::Device dev;
  Matrix<double> a = random_matrix(n, n, 5);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  fault::FaultSpec spec;
  spec.area = fault::Area::LowerTrailing;
  fault::Injector inj(spec, 5);
  ft::FtReport ftrep;

  obs::set_profile_roofline(25.0);
  obs::profile_start();
  ASSERT_TRUE(obs::profile_enabled());
  ft::ft_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1), {.nb = nb}, &inj, &ftrep);
  const obs::ProfileReport rep = obs::profile_stop();
  EXPECT_FALSE(obs::profile_enabled());
  ASSERT_GE(ftrep.detections, 1);

  EXPECT_GT(rep.wall_s, 0.0);
  EXPECT_GT(rep.total_flops, 0u);
  EXPECT_DOUBLE_EQ(rep.roofline_gflops, 25.0);
  ASSERT_FALSE(rep.phases.empty());

  // The driver's panel/update loop and the device worker must both show up.
  EXPECT_NE(find_phase(rep, "host", "hybrid", "panel"), nullptr);
  EXPECT_NE(find_phase(rep, "host", "hybrid", "update"), nullptr);
  // Device worker spans land on a device track, one phase per task label
  // ("dev.gemm", "h2d", "ft.detect", ...).
  std::uint64_t dev_calls = 0;
  std::uint64_t dev_flops = 0;
  bool dev_any_throughput = false;
  for (const auto& p : rep.phases) {
    if (p.track != "device" || p.cat != "stream") continue;
    dev_calls += p.calls;
    dev_flops += p.flops;
    if (p.gflops > 0.0 && p.roofline_frac > 0.0) dev_any_throughput = true;
  }
  EXPECT_GT(dev_calls, 0u) << "device worker spans must land on a device track";
  EXPECT_GT(dev_flops, 0u) << "trailing-update FLOPs execute inside stream tasks";
  EXPECT_TRUE(dev_any_throughput);
  EXPECT_NE(find_phase(rep, "device", "stream", "dev.gemm"), nullptr)
      << "per-label attribution of device kernels";

  // Overlap quantities are well-formed.
  EXPECT_GT(rep.device_busy_s, 0.0);
  EXPECT_GE(rep.overlap_fraction, 0.0);
  EXPECT_LE(rep.overlap_fraction, 1.0);
  EXPECT_GT(rep.stream_occupancy, 0.0);
  EXPECT_LE(rep.overlapped_s, rep.device_busy_s + 1e-12);

  // One blocked iteration per panel, and the critical path bounds its parts.
  EXPECT_GT(rep.iterations, 0u);
  EXPECT_GT(rep.iter_avg_s, 0.0);
  EXPECT_GE(rep.iter_max_s, rep.iter_avg_s - 1e-12);

  // Self time never exceeds inclusive time.
  for (const auto& p : rep.phases) {
    EXPECT_LE(p.self_s, p.wall_s + 1e-9) << p.cat << "/" << p.name;
    EXPECT_GT(p.calls, 0u);
  }

  // The emitted JSON parses with the repo's reader and carries the schema
  // EXPERIMENTS.md documents.
  json::Value v;
  ASSERT_NO_THROW(v = json::parse(rep.to_json()));
  EXPECT_GT(v.at("wall_s").as_number(), 0.0);
  EXPECT_EQ(v.at("roofline_gflops").as_number(), 25.0);
  EXPECT_GT(v.at("total_flops").as_number(), 0.0);
  EXPECT_GE(v.at("overlap").at("overlap_fraction").as_number(), 0.0);
  EXPECT_GT(v.at("iterations").at("count").as_number(), 0.0);
  ASSERT_TRUE(v.at("phases").is_array());
  EXPECT_EQ(v.at("phases").as_array().size(), rep.phases.size());
}

TEST(ProfileLive, OrdinalKeyedOccupancyAttributesPoolMembers) {
  // A live pool run: each member's worker self-reports its pool ordinal, so
  // the report carries occupancy both as the anonymous sorted array (the
  // gating metric) and keyed by ordinal (the attribution map, ISSUE 8).
  const index_t n = 96;
  hybrid::DevicePool pool({.devices = 2});
  Matrix<double> a = random_matrix(n, n, 11);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  obs::profile_start();
  ft::pool_gehrd(pool, a.view(), VectorView<double>(tau.data(), n - 1), {.nb = 16, .nx = 16});
  const obs::ProfileReport rep = obs::profile_stop();

  ASSERT_EQ(rep.per_device_by_ordinal.size(), 2u);
  EXPECT_EQ(rep.per_device_by_ordinal[0].first, 0);
  EXPECT_EQ(rep.per_device_by_ordinal[1].first, 1);
  double sum_by_ordinal = 0.0;
  for (const auto& [ordinal, occ] : rep.per_device_by_ordinal) {
    EXPECT_GT(occ, 0.0) << "dev" << ordinal;
    EXPECT_LE(occ, 1.0) << "dev" << ordinal;
    sum_by_ordinal += occ;
  }
  // Same per-track quantities as the sorted array, just attributed.
  ASSERT_EQ(rep.per_device_occupancy.size(), 2u);
  double sum_sorted = 0.0;
  for (const double occ : rep.per_device_occupancy) sum_sorted += occ;
  EXPECT_NEAR(sum_by_ordinal, sum_sorted, 1e-9);

  const json::Value v = json::parse(rep.to_json());
  const json::Value* by_dev = v.at("overlap").find("stream_occupancy_by_device");
  ASSERT_NE(by_dev, nullptr);
  ASSERT_TRUE(by_dev->is_object());
  ASSERT_EQ(by_dev->as_object().size(), 2u);
  EXPECT_NEAR(by_dev->at("0").as_number(), rep.per_device_by_ordinal[0].second, 1e-9);
  EXPECT_NEAR(by_dev->at("1").as_number(), rep.per_device_by_ordinal[1].second, 1e-9);
}

TEST(ProfileLive, WaitPhasesSplitByCallSite) {
  const index_t n = 48, nb = 16;
  hybrid::Device dev;
  Matrix<double> a = random_matrix(n, n, 9);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  obs::profile_start();
  hybrid::hybrid_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1),
                       {.nb = nb, .nx = nb}, nullptr);
  const obs::ProfileReport rep = obs::profile_stop();

  // With an observability window open, host wait spans carry their interned
  // call-site label ("synchronize@file:line"), so the formerly aggregated
  // stream.synchronize phase splits per site — and the prefix-matched wait
  // classification still counts every one of them as blocked host time.
  bool split = false;
  for (const auto& p : rep.phases) {
    if (p.track != "host" || p.cat != "stream") continue;
    if (p.name.rfind("synchronize@", 0) == 0 &&
        p.name.find(':') != std::string::npos)
      split = true;
  }
  EXPECT_TRUE(split) << "synchronize phases must be keyed by call site";
  EXPECT_EQ(find_phase(rep, "host", "stream", "synchronize"), nullptr)
      << "no aggregated site-less synchronize phase should remain";
  EXPECT_GT(rep.host_wait_s, 0.0)
      << "per-site wait names must still classify as waits";
}

TEST(ProfileJson, RooflineFracOmittedWhenNoRooflineConfigured) {
  obs::ProfileBuilder b;
  b.begin(0, "stream", "task", 0.0, /*arg=*/0.0, /*flops=*/0);
  b.end(0, 100.0, /*flops=*/1000);
  {
    const obs::ProfileReport rep = b.finish(/*roofline=*/0.0);
    const json::Value v = json::parse(rep.to_json());
    ASSERT_FALSE(v.at("phases").as_array().empty());
    EXPECT_EQ(v.at("phases").as_array()[0].find("roofline_frac"), nullptr)
        << "a meaningless roofline_frac=0 would gate as a catastrophic "
           "regression in bench_compare";
  }
  obs::ProfileBuilder b2;
  b2.begin(0, "stream", "task", 0.0, 0.0, 0);
  b2.end(0, 100.0, 1000);
  {
    const obs::ProfileReport rep = b2.finish(/*roofline=*/25.0);
    const json::Value v = json::parse(rep.to_json());
    ASSERT_FALSE(v.at("phases").as_array().empty());
    EXPECT_NE(v.at("phases").as_array()[0].find("roofline_frac"), nullptr)
        << "with a roofline the fraction is still emitted";
  }
}

TEST(ProfileLive, WindowsAreIndependent) {
  obs::profile_start();
  {
    obs::TraceSpan span("test", "first-window");
  }
  const obs::ProfileReport first = obs::profile_stop();
  EXPECT_NE(find_phase(first, "host", "test", "first-window"), nullptr);

  obs::profile_start();
  const obs::ProfileReport second = obs::profile_stop();
  EXPECT_EQ(find_phase(second, "host", "test", "first-window"), nullptr)
      << "a new window must not inherit the previous window's spans";

  // Stopping without a window open is a harmless no-op.
  const obs::ProfileReport none = obs::profile_stop();
  EXPECT_TRUE(none.phases.empty());
}

}  // namespace
}  // namespace fth

// fth::obs tracing: the Chrome/Perfetto trace_event JSON recorder.
//
// Parses the emitted file with a minimal JSON reader (no third-party
// dependency) and validates event structure (ph/ts/pid/tid), begin/end
// nesting per thread track, thread_name metadata, and that one traced FT
// run produces spans from all three layers (ft / hybrid / stream+device).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"
#include "la/generate.hpp"
#include "obs/trace.hpp"

namespace fth {
namespace {

// ---- minimal JSON reader -----------------------------------------------------

struct Json {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  [[nodiscard]] bool has(const std::string& key) const {
    return type == Type::Object && obj.count(key) > 0;
  }
  [[nodiscard]] const Json& at(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("missing key: " + key);
    return obj.at(key);
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : s_(std::move(text)) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (i_ != s_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error("JSON error at byte " + std::to_string(i_) + ": " + msg);
  }

  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  char peek() {
    skip_ws();
    if (i_ >= s_.size()) fail("unexpected end of input");
    return s_[i_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', got '" + s_[i_] + "'");
    ++i_;
  }

  void literal(const char* word) {
    for (; *word != '\0'; ++word) {
      if (i_ >= s_.size() || s_[i_] != *word) fail("bad literal");
      ++i_;
    }
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (i_ >= s_.size()) fail("unterminated string");
      const char c = s_[i_++];
      if (c == '"') break;
      if (c == '\\') {
        if (i_ >= s_.size()) fail("dangling escape");
        const char e = s_[i_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u':
            if (i_ + 4 > s_.size()) fail("short \\u escape");
            i_ += 4;  // the recorder only emits \u00XX control escapes
            out.push_back('?');
            break;
          default: fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Json value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Json j;
        j.type = Json::Type::String;
        j.str = string_body();
        return j;
      }
      case 't': {
        literal("true");
        Json j;
        j.type = Json::Type::Bool;
        j.boolean = true;
        return j;
      }
      case 'f': {
        literal("false");
        Json j;
        j.type = Json::Type::Bool;
        return j;
      }
      case 'n': {
        literal("null");
        return {};
      }
      default: return number_value();
    }
  }

  Json number_value() {
    const std::size_t start = i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 || s_[i_] == '-' ||
            s_[i_] == '+' || s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
    }
    if (i_ == start) fail("expected a value");
    Json j;
    j.type = Json::Type::Number;
    j.number = std::strtod(s_.substr(start, i_ - start).c_str(), nullptr);
    return j;
  }

  Json array() {
    expect('[');
    Json j;
    j.type = Json::Type::Array;
    if (peek() == ']') {
      ++i_;
      return j;
    }
    while (true) {
      j.arr.push_back(value());
      const char c = peek();
      ++i_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return j;
  }

  Json object() {
    expect('{');
    Json j;
    j.type = Json::Type::Object;
    if (peek() == '}') {
      ++i_;
      return j;
    }
    while (true) {
      std::string key = string_body();
      expect(':');
      j.obj.emplace(std::move(key), value());
      const char c = peek();
      ++i_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return j;
  }

  std::string s_;
  std::size_t i_ = 0;
};

Json parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return JsonParser(ss.str()).parse();
}

std::string temp_path(const char* name) { return ::testing::TempDir() + name; }

// ---- format validation -------------------------------------------------------

struct TraceSummary {
  std::set<std::string> cats;
  std::set<std::string> names;
  std::set<std::string> thread_names;
  std::set<double> tids;
  std::size_t events = 0;  // non-metadata events
};

/// Walks the trace, asserting the per-event invariants the trace_event
/// format requires (and this recorder promises): ph/pid/tid everywhere,
/// ts on every non-metadata event and globally sorted, instants
/// thread-scoped, counters valued, and B/E strictly nested per tid.
void validate_trace(const Json& root, TraceSummary& out) {
  ASSERT_EQ(root.type, Json::Type::Object);
  ASSERT_TRUE(root.has("displayTimeUnit"));
  EXPECT_EQ(root.at("displayTimeUnit").str, "ms");
  ASSERT_TRUE(root.has("traceEvents"));
  const Json& events = root.at("traceEvents");
  ASSERT_EQ(events.type, Json::Type::Array);

  std::map<double, int> depth;  // tid -> open span count
  double last_ts = -1.0;
  for (const Json& ev : events.arr) {
    ASSERT_EQ(ev.type, Json::Type::Object);
    ASSERT_TRUE(ev.has("ph"));
    const std::string& ph = ev.at("ph").str;
    ASSERT_EQ(ph.size(), 1u);
    ASSERT_TRUE(ph == "B" || ph == "E" || ph == "i" || ph == "C" || ph == "M")
        << "unknown phase " << ph;
    ASSERT_TRUE(ev.has("pid"));
    EXPECT_EQ(ev.at("pid").number, 1.0);
    ASSERT_TRUE(ev.has("tid"));
    const double tid = ev.at("tid").number;
    out.tids.insert(tid);

    if (ph == "M") {
      EXPECT_EQ(ev.at("name").str, "thread_name");
      out.thread_names.insert(ev.at("args").at("name").str);
      continue;
    }
    ++out.events;
    ASSERT_TRUE(ev.has("ts")) << "event without timestamp";
    const double ts = ev.at("ts").number;
    EXPECT_GE(ts, 0.0);
    EXPECT_GE(ts, last_ts) << "trace not sorted by ts";
    last_ts = ts;

    if (ph == "E") {
      ASSERT_GT(depth[tid], 0) << "span end without begin on tid " << tid;
      --depth[tid];
      continue;
    }
    ASSERT_TRUE(ev.has("cat"));
    ASSERT_TRUE(ev.has("name"));
    EXPECT_FALSE(ev.at("name").str.empty());
    out.cats.insert(ev.at("cat").str);
    out.names.insert(ev.at("name").str);
    if (ph == "B") ++depth[tid];
    if (ph == "i") {
      EXPECT_EQ(ev.at("s").str, "t");
    }
    if (ph == "C") {
      EXPECT_EQ(ev.at("cat").str, "counter");
      EXPECT_EQ(ev.at("args").at("value").type, Json::Type::Number);
    }
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced spans on tid " << tid;
  }
}

// ---- tests -------------------------------------------------------------------

TEST(Trace, DisabledPathIsInert) {
  if (std::getenv("FTH_TRACE") != nullptr) {
    GTEST_SKIP() << "FTH_TRACE set: process-wide tracing active";
  }
  EXPECT_FALSE(obs::trace_enabled());
  // All recording entry points must be no-ops when disabled.
  {
    obs::TraceSpan span("test", "noop");
    obs::instant("test", "noop");
    obs::counter("test.noop", 1.0);
  }
  EXPECT_EQ(obs::trace_stop(), 0u);
}

TEST(Trace, EventFormatAndNesting) {
  const std::string path = temp_path("fth_trace_format.json");
  obs::trace_start(path);
  obs::set_thread_name("gtest-main");
  {
    obs::TraceSpan outer("test", "outer", "n", 42.0);
    {
      obs::TraceSpan inner("test", "inner");
    }
    obs::instant("test", "ping");
    obs::counter("test.queue", 3.0);
  }
  std::thread worker([] {
    obs::set_thread_name("gtest-worker");
    obs::TraceSpan span("test", "job");
  });
  worker.join();
  // 2 nested spans (4 events) + instant + counter + the worker span (2).
  EXPECT_EQ(obs::trace_stop(), 8u);

  TraceSummary sum;
  Json root;
  ASSERT_NO_THROW(root = parse_file(path));
  validate_trace(root, sum);
  EXPECT_EQ(sum.events, 8u);
  EXPECT_EQ(sum.cats, (std::set<std::string>{"test", "counter"}));
  EXPECT_TRUE(sum.names.count("outer") == 1 && sum.names.count("inner") == 1);
  EXPECT_TRUE(sum.names.count("ping") == 1 && sum.names.count("test.queue") == 1);
  EXPECT_TRUE(sum.thread_names.count("gtest-main") == 1);
  EXPECT_TRUE(sum.thread_names.count("gtest-worker") == 1);
  EXPECT_GE(sum.tids.size(), 2u) << "worker events must land on their own track";

  // The span argument survives the round trip.
  bool saw_arg = false;
  for (const Json& ev : root.at("traceEvents").arr) {
    if (ev.has("ph") && ev.at("ph").str == "B" && ev.at("name").str == "outer") {
      EXPECT_EQ(ev.at("args").at("n").number, 42.0);
      saw_arg = true;
    }
  }
  EXPECT_TRUE(saw_arg);
}

TEST(Trace, FtRunCoversAllThreeLayers) {
  const index_t n = 64, nb = 16;
  hybrid::Device dev;
  Matrix<double> a = random_matrix(n, n, 3);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  fault::FaultSpec spec;
  spec.area = fault::Area::LowerTrailing;
  fault::Injector inj(spec, 3);
  ft::FtReport rep;

  const std::string path = temp_path("fth_trace_ft_run.json");
  obs::trace_start(path);
  ft::ft_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1), {.nb = nb}, &inj, &rep);
  const std::size_t count = obs::trace_stop();
  ASSERT_GE(rep.detections, 1);
  EXPECT_GT(count, 100u);

  TraceSummary sum;
  Json root;
  ASSERT_NO_THROW(root = parse_file(path));
  validate_trace(root, sum);

  // One trace, all layers: FT machinery, hybrid driver, software device.
  for (const char* cat : {"ft", "hybrid", "stream", "device", "dev_blas", "counter"}) {
    EXPECT_EQ(sum.cats.count(cat), 1u) << "missing category " << cat;
  }
  for (const char* name : {"sytrd", "gebrd"}) {
    EXPECT_EQ(sum.names.count(name), 0u) << "unexpected driver span " << name;
  }
  for (const char* name : {"gehrd", "encode", "checkpoint_save", "panel", "update", "detect",
                           "detection", "rollback", "locate", "reexec", "final_sweep",
                           "q_verify", "h2d", "d2h", "stream.queue_depth"}) {
    EXPECT_EQ(sum.names.count(name), 1u) << "missing event " << name;
  }
  EXPECT_EQ(sum.thread_names.count("device-stream"), 1u);
  EXPECT_GE(sum.tids.size(), 2u) << "device-stream work must be on its own track";
}

}  // namespace
}  // namespace fth

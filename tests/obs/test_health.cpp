// fth::obs health: the per-device monitor deriving the pool driver's
// adaptive wait allowance. Latencies are injected by back-dating t0 (the
// monitor only ever computes now − t0), so every scenario is deterministic
// and instant — no sleeps.
#include <gtest/gtest.h>

#include <cstdlib>

#include "obs/health.hpp"
#include "obs/metrics.hpp"

namespace fth::obs {
namespace {

/// Record one completed wait of `latency_ms` on `device`.
bool feed_wait(HealthMonitor& m, int device, double latency_ms, bool ok = true) {
  return m.wait_end(device, m.wait_begin() - latency_ms, ok);
}

TEST(Health, AllowanceIsTheCeilingUntilEnoughSamples) {
  HealthConfig cfg;
  cfg.base_timeout_ms = 1000.0;
  cfg.min_samples = 8;
  HealthMonitor m(2, cfg);
  EXPECT_DOUBLE_EQ(m.allowed_ms(0), 1000.0);
  for (int i = 0; i < 7; ++i) feed_wait(m, 0, 1.0);
  EXPECT_DOUBLE_EQ(m.allowed_ms(0), 1000.0) << "still below min_samples";
  feed_wait(m, 0, 1.0);
  EXPECT_LT(m.allowed_ms(0), 1000.0) << "adapts once min_samples waits are in";
  EXPECT_DOUBLE_EQ(m.allowed_ms(1), 1000.0) << "per-member: device 1 saw nothing";
}

TEST(Health, AdaptiveAllowanceIsClampedBetweenFloorAndCeiling) {
  HealthConfig cfg;
  cfg.base_timeout_ms = 1000.0;
  cfg.floor_ms = 100.0;
  cfg.margin_mult = 32.0;
  cfg.min_samples = 4;
  HealthMonitor m(1, cfg);
  // Sub-millisecond waits: 32 × max would be < floor — the floor wins.
  for (int i = 0; i < 8; ++i) feed_wait(m, 0, 0.01);
  EXPECT_DOUBLE_EQ(m.allowed_ms(0), 100.0);
  // A 5 ms wait enters the window: allowance = 32 × 5 = 160 ms (the real
  // clock adds a few µs between wait_begin and wait_end on top of the
  // back-dated latency, so the product is near-exact, not exact).
  feed_wait(m, 0, 5.0);
  EXPECT_NEAR(m.allowed_ms(0), 160.0, 2.0);
  // A huge wait can never push the allowance above the configured ceiling.
  feed_wait(m, 0, 900.0);
  EXPECT_DOUBLE_EQ(m.allowed_ms(0), 1000.0);
  EXPECT_EQ(m.allowed(0).count(), static_cast<long long>(1000.0 * 1e6));
}

TEST(Health, NonAdaptiveConfigPinsTheCeiling) {
  HealthConfig cfg;
  cfg.base_timeout_ms = 250.0;
  cfg.adaptive = false;
  cfg.min_samples = 1;
  HealthMonitor m(1, cfg);
  for (int i = 0; i < 16; ++i) feed_wait(m, 0, 0.1);
  EXPECT_DOUBLE_EQ(m.allowed_ms(0), 250.0);
}

TEST(Health, NearMissDegradesAndCleanWaitsRecover) {
  HealthConfig cfg;
  cfg.base_timeout_ms = 200.0;
  cfg.adaptive = false;  // fixed allowance makes the near-miss bar exact
  cfg.degraded_frac = 0.5;
  cfg.degraded_hold = 4;
  HealthMonitor m(1, cfg);
  EXPECT_EQ(m.state(0), DeviceState::Healthy);
  feed_wait(m, 0, 150.0);  // 75% of the 200 ms allowance
  EXPECT_EQ(m.state(0), DeviceState::Degraded);
  const DeviceHealthSnapshot s = m.snapshot(0);
  EXPECT_EQ(s.near_misses, 1u);
  EXPECT_NEAR(s.worst_frac, 0.75, 0.05);
  for (int i = 0; i < 3; ++i) feed_wait(m, 0, 1.0);
  EXPECT_EQ(m.state(0), DeviceState::Degraded) << "hold not yet served";
  feed_wait(m, 0, 1.0);
  EXPECT_EQ(m.state(0), DeviceState::Healthy) << "degraded_hold clean waits clear it";
}

TEST(Health, TimeoutMarksLostAndPassesOkThrough) {
  HealthMonitor m(2, {});
  EXPECT_TRUE(feed_wait(m, 0, 1.0, true));
  EXPECT_FALSE(feed_wait(m, 1, 2000.0, false)) << "wait_end returns ok unchanged";
  EXPECT_EQ(m.state(1), DeviceState::Lost);
  EXPECT_EQ(m.snapshot(1).timeouts, 1u);
  EXPECT_EQ(m.state(0), DeviceState::Healthy);
  // Quarantine without a timed-out wait (poison detection path).
  m.mark_lost(0);
  EXPECT_EQ(m.state(0), DeviceState::Lost);
}

TEST(Health, WaitsFeedTheMarginHistograms) {
  Registry::global().histogram("fault.device_loss.wait_ms").reset();
  Registry::global().histogram("fault.device_loss.wait_margin").reset();
  HealthConfig cfg;
  cfg.base_timeout_ms = 100.0;
  cfg.adaptive = false;
  HealthMonitor m(1, cfg);
  feed_wait(m, 0, 10.0);
  feed_wait(m, 0, 20.0);
  const Histogram::Snapshot waits =
      Registry::global().histogram("fault.device_loss.wait_ms").snapshot();
  const Histogram::Snapshot margin =
      Registry::global().histogram("fault.device_loss.wait_margin").snapshot();
  EXPECT_EQ(waits.count, 2u);
  EXPECT_GE(waits.max, 15.0);
  EXPECT_EQ(margin.count, 2u);
  // Margin = allowed − waited: both waits left most of the 100 ms budget.
  EXPECT_GE(margin.min, 50.0);
  EXPECT_LE(margin.max, 100.0);
}

TEST(Health, SnapshotCarriesOccupancyAndHeartbeat) {
  HealthMonitor m(2, {});
  m.sample_occupancy(0, true);
  m.sample_occupancy(0, true);
  m.sample_occupancy(1, false);
  feed_wait(m, 0, 1.0);
  const std::vector<DeviceHealthSnapshot> all = m.snapshot();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].device, 0);
  EXPECT_GT(all[0].occupancy_ewma, 0.5);
  EXPECT_DOUBLE_EQ(all[1].occupancy_ewma, 0.0);
  EXPECT_EQ(all[0].waits, 1u);
  EXPECT_GE(all[0].heartbeat_age_ms, 0.0);
}

TEST(Health, EnvOverridesTheBaseTimeout) {
  ASSERT_EQ(::setenv("FTH_POOL_TIMEOUT_MS", "1234.5", 1), 0);
  EXPECT_DOUBLE_EQ(HealthMonitor::env_base_timeout_ms(2000.0), 1234.5);
  ASSERT_EQ(::setenv("FTH_POOL_TIMEOUT_MS", "nonsense", 1), 0);
  EXPECT_DOUBLE_EQ(HealthMonitor::env_base_timeout_ms(2000.0), 2000.0);
  ASSERT_EQ(::unsetenv("FTH_POOL_TIMEOUT_MS"), 0);
  EXPECT_DOUBLE_EQ(HealthMonitor::env_base_timeout_ms(750.0), 750.0);
}

}  // namespace
}  // namespace fth::obs

// fth::obs flight recorder: bounded per-thread rings (newest events win),
// multi-thread capacity enforcement, and the automatic dump when a
// recovery escalates to a structured abort (recovery_error). Dumps are
// parsed back with the repo's json reader and checked against the trace
// format the post-mortem tools expect.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"
#include "la/generate.hpp"
#include "obs/trace.hpp"

namespace fth {
namespace {

std::string temp_path(const char* name) { return ::testing::TempDir() + name; }

/// Arm FTH_FLIGHT_PATH for one test and clean up the previous dump.
void set_dump_path(const std::string& path) {
  ::setenv("FTH_FLIGHT_PATH", path.c_str(), 1);
  std::remove(path.c_str());
}

struct DumpSummary {
  std::map<double, std::size_t> events_per_tid;  // non-metadata, non-"flight"
  std::string reason;
  std::vector<std::string> names;  // in file order
};

DumpSummary parse_dump(const std::string& path) {
  DumpSummary out;
  const json::Value root = json::parse_file(path);
  const json::Value& events = root.at("traceEvents");
  double last_ts = -1.0;
  for (const json::Value& ev : events.as_array()) {
    const std::string& ph = ev.at("ph").as_string();
    if (ph == "M") continue;
    const double ts = ev.at("ts").as_number();
    EXPECT_GE(ts, last_ts) << "dump must be sorted by timestamp";
    last_ts = ts;
    if (ph != "E" && ev.find("cat") != nullptr && ev.at("cat").as_string() == "flight") {
      out.reason = ev.at("name").as_string();
      continue;
    }
    out.events_per_tid[ev.at("tid").as_number()]++;
    if (ph != "E") out.names.push_back(ev.at("name").as_string());
  }
  return out;
}

TEST(Flight, RingKeepsOnlyNewestEvents) {
  constexpr std::size_t kCapacity = 32;
  const std::string path = temp_path("fth_flight_wrap.json");
  set_dump_path(path);
  obs::flight_start(kCapacity);
  ASSERT_TRUE(obs::flight_active());
  ASSERT_TRUE(obs::trace_enabled()) << "an armed flight ring is a live sink";

  constexpr int kEvents = 200;  // > capacity: the ring must wrap repeatedly
  for (int i = 0; i < kEvents; ++i) {
    obs::instant("test", obs::intern_name("e" + std::to_string(i)));
  }
  const std::string dumped = obs::flight_dump("wrap-test");
  obs::flight_stop();
  EXPECT_FALSE(obs::flight_active());
  ASSERT_EQ(dumped, path);

  const DumpSummary sum = parse_dump(path);
  EXPECT_EQ(sum.reason, "wrap-test");
  ASSERT_EQ(sum.events_per_tid.size(), 1u);
  EXPECT_EQ(sum.events_per_tid.begin()->second, kCapacity);
  // Newest-wins: exactly the last kCapacity instants, oldest-first.
  ASSERT_EQ(sum.names.size(), kCapacity);
  for (std::size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(sum.names[i], "e" + std::to_string(kEvents - kCapacity + i));
  }
}

TEST(Flight, PerThreadCapacityUnderConcurrency) {
  constexpr std::size_t kCapacity = 50;
  constexpr int kThreads = 3, kSpans = 100;  // 200 events per thread
  const std::string path = temp_path("fth_flight_mt.json");
  set_dump_path(path);
  obs::flight_start(kCapacity);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        obs::TraceSpan span("test", "mt-span");
      }
    });
  }
  for (auto& w : workers) w.join();

  const std::string dumped = obs::flight_dump("mt-test");
  obs::flight_stop();
  ASSERT_EQ(dumped, path);

  const DumpSummary sum = parse_dump(path);
  EXPECT_EQ(sum.reason, "mt-test");
  // Every worker filled its ring; no track may exceed the per-thread bound.
  EXPECT_GE(sum.events_per_tid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, count] : sum.events_per_tid) {
    EXPECT_LE(count, kCapacity) << "tid " << tid << " exceeded its ring capacity";
    EXPECT_GT(count, 0u);
  }
}

TEST(Flight, CapacityIsClampedToMinimum) {
  const std::string path = temp_path("fth_flight_clamp.json");
  set_dump_path(path);
  obs::flight_start(1);  // clamped up to 16: a 1-slot ring is useless
  for (int i = 0; i < 40; ++i) {
    obs::instant("test", obs::intern_name("c" + std::to_string(i)));
  }
  ASSERT_EQ(obs::flight_dump("clamp-test"), path);
  obs::flight_stop();
  const DumpSummary sum = parse_dump(path);
  EXPECT_EQ(sum.events_per_tid.begin()->second, 16u);
}

TEST(Flight, DumpWithoutArmedRingIsEmpty) {
  ASSERT_FALSE(obs::flight_active());
  EXPECT_EQ(obs::flight_dump("nothing-armed"), "");
}

// The acceptance scenario: a recovery that escalates to a structured abort
// must leave a flight dump behind, without the caller doing anything —
// recovery_error's constructor triggers it.
TEST(Flight, RecoveryAbortAutoDumpsTheRing) {
  const std::string path = temp_path("fth_flight_abort.json");
  set_dump_path(path);
  obs::flight_start(2048);

  // The rectangle pattern: two equal-magnitude faults whose row/column
  // deltas pair both ways, which locate() provably cannot resolve
  // (tests/ft/test_recovery_escalation.cpp studies the escalation itself).
  const index_t n = 96, nb = 32;
  Matrix<double> a0 = random_matrix(n, n, 401);
  std::vector<fault::FaultSpec> specs(2);
  specs[0].row = 50;
  specs[0].col = 60;
  specs[1].row = 70;
  specs[1].col = 80;
  for (auto& s : specs) {
    s.boundary = 1;
    s.magnitude = 1000.0;
    s.relative = false;
  }
  fault::Injector inj(specs, 7);

  hybrid::Device dev;
  Matrix<double> a(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  ft::FtOptions opt;
  opt.nb = nb;
  opt.max_retries = 3;
  bool threw = false;
  try {
    ft::ft_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1), opt, &inj, nullptr);
  } catch (const recovery_error&) {
    threw = true;
  }
  obs::flight_stop();
  ASSERT_TRUE(threw) << "rectangle pattern must escalate to recovery_error";

  // The dump exists, parses as trace JSON, names its trigger, and holds the
  // FT machinery's last actions before the abort.
  DumpSummary sum;
  ASSERT_NO_THROW(sum = parse_dump(path));
  EXPECT_EQ(sum.reason, "recovery_error");
  std::size_t total = 0;
  bool saw_ft = false;
  for (const auto& [tid, count] : sum.events_per_tid) total += count;
  for (const auto& name : sum.names) {
    if (name == "detection" || name == "rollback" || name == "locate") saw_ft = true;
  }
  EXPECT_GT(total, 0u);
  EXPECT_TRUE(saw_ft) << "the ring should hold the detection/recovery events leading up "
                         "to the abort";
}

}  // namespace
}  // namespace fth

// fth::obs incident: capsule rendering, schema validation, atomic writing,
// and the timing derivation (detection latency / recovery cost) that
// fth_incident and the EXPERIMENTS.md tables are built on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/json.hpp"
#include "obs/incident.hpp"
#include "obs/journal.hpp"

namespace fth::obs {
namespace {

/// Every test leaves the journal and capsule emission disarmed.
struct ObsGuard {
  ~ObsGuard() {
    incident_stop();
    journal_stop();
  }
};

IncidentReport sample_report() {
  IncidentReport rep;
  rep.trigger = "device_loss";
  rep.who = "pool_gehrd";
  rep.run_id = 7;
  rep.device = 1;
  rep.boundary = 3;
  rep.outcome.status = "recovered";
  rep.outcome.reason = "device_lost";
  rep.outcome.detail = "loss absorbed by coded reconstruction";
  rep.outcome.attempts = 1;
  rep.metrics_delta.emplace_back("fault.device_loss.detected", 1);
  rep.metrics_delta.emplace_back("fault.device_loss.reconstructions", 1);
  JournalEvent strike;
  strike.t_us = 1000.0;
  strike.run_id = 7;
  strike.component = "fault";
  strike.event = "device_loss";
  strike.device = 1;
  strike.severity = JournalSeverity::Error;
  JournalEvent detect = strike;
  detect.t_us = 1450.0;
  detect.component = "pool";
  detect.event = "loss_detected";
  detect.severity = JournalSeverity::Warn;
  JournalEvent repair = strike;
  repair.t_us = 3200.0;
  repair.component = "pool";
  repair.event = "repair_done";
  repair.severity = JournalSeverity::Info;
  rep.journal = {strike, detect, repair};
  DeviceHealthSnapshot h;
  h.device = 1;
  h.state = DeviceState::Lost;
  rep.health.push_back(h);
  rep.strikes_json = R"({"faults":[],"losses":[{"kind":"hard-death","device":1,"trigger_index":12}]})";
  return rep;
}

TEST(Incident, RenderedCapsuleParsesAndValidates) {
  const std::string body = render_incident_json(sample_report());
  const json::Value capsule = json::parse(body);
  EXPECT_EQ(incident_validate(capsule), "");
  EXPECT_EQ(capsule.at("schema").as_string(), "fth-incident-v1");
  EXPECT_EQ(capsule.at("trigger").as_string(), "device_loss");
  EXPECT_EQ(capsule.at("who").as_string(), "pool_gehrd");
  EXPECT_EQ(capsule.at("run").as_number(), 7.0);
  EXPECT_EQ(capsule.at("device").as_number(), 1.0);
  EXPECT_EQ(capsule.at("outcome").at("status").as_string(), "recovered");
  EXPECT_EQ(capsule.at("metrics_delta").at("fault.device_loss.detected").as_number(), 1.0);
  EXPECT_EQ(capsule.at("journal").as_array().size(), 3u);
  EXPECT_EQ(capsule.at("health").as_array().size(), 1u);
  EXPECT_EQ(capsule.at("health").as_array()[0].at("state").as_string(), "lost");
  EXPECT_EQ(capsule.at("strikes").at("losses").as_array().size(), 1u);
}

TEST(Incident, ValidateRejectsMalformedCapsules) {
  EXPECT_NE(incident_validate(json::parse("[]")), "");
  EXPECT_NE(incident_validate(json::parse(R"({"schema":"other"})")), "");
  // Valid capsule with the trigger blanked out.
  IncidentReport rep = sample_report();
  rep.trigger = "";
  EXPECT_NE(incident_validate(json::parse(render_incident_json(rep))), "");
  // Journal entries must be structured records, not bare strings.
  std::string body = render_incident_json(sample_report());
  const std::string::size_type at = body.find("\"journal\":[");
  ASSERT_NE(at, std::string::npos);
  body.replace(at, 11, "\"journal\":[\"x\",");
  EXPECT_NE(incident_validate(json::parse(body)), "");
}

TEST(Incident, TimingDerivesLatencyAndCostFromTheJournal) {
  const json::Value capsule = json::parse(render_incident_json(sample_report()));
  const IncidentTiming t = incident_timing(capsule);
  EXPECT_DOUBLE_EQ(t.strike_us, 1000.0);
  EXPECT_DOUBLE_EQ(t.detect_us, 1450.0);
  EXPECT_DOUBLE_EQ(t.repair_done_us, 3200.0);
  EXPECT_DOUBLE_EQ(t.detection_latency_us, 450.0);
  EXPECT_DOUBLE_EQ(t.recovery_cost_us, 1750.0);
}

TEST(Incident, TimingIsUndefinedWithoutTheMarkers) {
  IncidentReport rep = sample_report();
  rep.journal.clear();
  const IncidentTiming t = incident_timing(json::parse(render_incident_json(rep)));
  EXPECT_LT(t.strike_us, 0.0);
  EXPECT_LT(t.detection_latency_us, 0.0);
  EXPECT_LT(t.recovery_cost_us, 0.0);
}

TEST(Incident, WriteIsArmedByDirAndLandsAValidFile) {
  ObsGuard guard;
  EXPECT_FALSE(incident_enabled());
  EXPECT_EQ(write_incident(sample_report()), "") << "disarmed: no file, no path";

  const std::string dir = ::testing::TempDir() + "fth_incident_test_dir";
  std::filesystem::remove_all(dir);
  incident_set_dir(dir);
  EXPECT_TRUE(incident_enabled());
  EXPECT_TRUE(journal_enabled()) << "arming incidents arms the journal too";
  EXPECT_EQ(incident_dir(), dir);

  const std::string path = write_incident(sample_report());
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.rfind(dir + "/fth_incident_run7_", 0), 0u) << path;
  const json::Value capsule = json::parse_file(path);
  EXPECT_EQ(incident_validate(capsule), "");

  // A second capsule gets a fresh sequence number, not an overwrite.
  const std::string path2 = write_incident(sample_report());
  ASSERT_FALSE(path2.empty());
  EXPECT_NE(path2, path);

  incident_stop();
  EXPECT_FALSE(incident_enabled());
  EXPECT_EQ(incident_dir(), "");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fth::obs

// fth::obs metrics: counter/histogram semantics, the global registry, the
// JSON snapshot, and the fault-injection campaign cross-check that the
// always-on metrics agree with the per-run FtReport / HybridGehrdStats.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"
#include "hybrid/hybrid_gehrd.hpp"
#include "la/generate.hpp"
#include "obs/metrics.hpp"

namespace fth {
namespace {

using obs::Counter;
using obs::Histogram;
using obs::Registry;

VectorView<double> vec_view(std::vector<double>& v) {
  return VectorView<double>(v.data(), static_cast<index_t>(v.size()));
}

// ---- Counter ----------------------------------------------------------------

TEST(ObsCounter, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, ConcurrentAddsDoNotLoseIncrements) {
  Counter c;
  constexpr int kThreads = 4, kAdds = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

// ---- Histogram --------------------------------------------------------------

TEST(ObsHistogram, BucketOfEdges) {
  // Zero, negatives and NaN land in the underflow bucket.
  EXPECT_EQ(Histogram::bucket_of(0.0), 0);
  EXPECT_EQ(Histogram::bucket_of(-3.5), 0);
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<double>::quiet_NaN()), 0);
  // Below the smallest resolved decade: underflow.
  EXPECT_EQ(Histogram::bucket_of(2e-19), 0);
  EXPECT_EQ(Histogram::bucket_of(9e-19), 0);
  // Inside the smallest decade, and exactly on its lower boundary: a decade
  // bucket is [10^e, 10^(e+1)), so 1e-18 itself belongs to bucket 1.
  EXPECT_EQ(Histogram::bucket_of(2e-18), 1);
  EXPECT_EQ(Histogram::bucket_of(1e-18), 1);
  // Exponent 0 sits at offset -kMinExp + 1.
  EXPECT_EQ(Histogram::bucket_of(1.0), -Histogram::kMinExp + 1);
  EXPECT_EQ(Histogram::bucket_of(5.0), -Histogram::kMinExp + 1);
  // The largest resolved decade [1e12, 1e13) is a real bucket of its own
  // (kBuckets - 2); only values ≥ 1e13 overflow-clamp.
  EXPECT_EQ(Histogram::bucket_of(1e12), Histogram::kBuckets - 2);
  EXPECT_EQ(Histogram::bucket_of(5e12), Histogram::kBuckets - 2);
  EXPECT_EQ(Histogram::bucket_of(1e13), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_of(2e13), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<double>::infinity()),
            Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_of(-std::numeric_limits<double>::infinity()), 0);
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<double>::denorm_min()), 0);
}

TEST(ObsRegistry, CounterValuesAndDelta) {
  Registry r;
  r.counter("a").add(3);
  r.counter("b").add(5);
  const auto base = r.counter_values();
  EXPECT_EQ(base.at("a"), 3u);
  EXPECT_EQ(base.at("b"), 5u);
  r.counter("b").add(2);
  r.counter("c").add(1);
  const auto delta = Registry::counter_delta(r.counter_values(), base);
  // Unchanged counters are omitted; new and bumped ones report the delta.
  EXPECT_EQ(delta.count("a"), 0u);
  EXPECT_EQ(delta.at("b"), 2u);
  EXPECT_EQ(delta.at("c"), 1u);
}

TEST(ObsHistogram, ObserveSnapshotReset) {
  Histogram h;
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 55.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 50.0);
  std::uint64_t total = 0;
  for (const auto b : s.buckets) total += b;
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(s.buckets[static_cast<std::size_t>(Histogram::bucket_of(0.5))], 1u);
  EXPECT_EQ(s.buckets[static_cast<std::size_t>(Histogram::bucket_of(5.0))], 1u);
  EXPECT_EQ(s.buckets[static_cast<std::size_t>(Histogram::bucket_of(50.0))], 1u);
  h.reset();
  const auto z = h.snapshot();
  EXPECT_EQ(z.count, 0u);
  EXPECT_DOUBLE_EQ(z.sum, 0.0);
}

// ---- Registry ---------------------------------------------------------------

TEST(ObsRegistry, ReturnsStableReferences) {
  Registry r;
  Counter& a = r.counter("x");
  a.add(7);
  Counter& b = r.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 7u);
  Histogram& h1 = r.histogram("h");
  Histogram& h2 = r.histogram("h");
  EXPECT_EQ(&h1, &h2);
}

TEST(ObsRegistry, ResetZeroesEveryInstrument) {
  Registry r;
  r.counter("a").add(3);
  r.histogram("h").observe(1.5);
  r.reset();
  EXPECT_EQ(r.counter("a").value(), 0u);
  EXPECT_EQ(r.histogram("h").snapshot().count, 0u);
}

TEST(ObsRegistry, JsonSnapshotShape) {
  Registry r;
  r.counter("runs").add(2);
  r.counter("we\"ird\\name").add(1);
  r.histogram("gap").observe(0.25);
  const std::string json = r.to_json();
  // Counters section, with escaping applied to hostile names.
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"runs\":2"), std::string::npos);
  EXPECT_NE(json.find("\"we\\\"ird\\\\name\":1"), std::string::npos);
  // Histogram section carries the decode key (min_exp) and the bucket array.
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gap\":{\"count\":1,\"sum\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"min_exp\":-18"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":["), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// ---- Driver stats surfacing (Device/Stream footprint) ------------------------

TEST(HybridStats, TransferFootprintSurfaced) {
  const index_t n = 96, nb = 16;
  hybrid::Device dev;
  Matrix<double> a0 = random_matrix(n, n, 21);

  Matrix<double> a(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  hybrid::HybridGehrdStats st;
  hybrid::hybrid_gehrd(dev, a.view(), vec_view(tau), {.nb = nb, .nx = nb}, &st);

  // The whole matrix goes down at least once and the factored columns come
  // back; every field the drivers surface from Device/Stream must be live.
  const auto matrix_bytes = static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) * 8;
  EXPECT_GE(st.h2d_bytes, matrix_bytes);
  EXPECT_GT(st.d2h_bytes, 0u);
  EXPECT_GT(st.h2d_count, 0u);
  EXPECT_GT(st.d2h_count, 0u);
  EXPECT_GE(st.dev_peak_bytes, static_cast<std::size_t>(matrix_bytes));
  EXPECT_GE(st.peak_queue_depth, 1u);

  // A second identical run on the same device reports per-run deltas, not
  // device-lifetime totals.
  Matrix<double> b(a0.cview());
  hybrid::HybridGehrdStats st2;
  hybrid::hybrid_gehrd(dev, b.view(), vec_view(tau), {.nb = nb, .nx = nb}, &st2);
  EXPECT_EQ(st2.h2d_bytes, st.h2d_bytes);
  EXPECT_EQ(st2.d2h_bytes, st.d2h_bytes);
  EXPECT_EQ(st2.h2d_count, st.h2d_count);
  EXPECT_EQ(st2.d2h_count, st.d2h_count);
}

// ---- Fault-injection campaign: metrics vs FtReport ---------------------------

TEST(FtCampaign, MetricsAgreeWithReports) {
  const index_t n = 96, nb = 16;
  hybrid::Device dev;
  Registry::global().reset();

  int detections = 0, rollbacks = 0, data_corrections = 0, checksum_corrections = 0;
  int q_corrections = 0, checkpoint_only = 0;
  std::uint64_t h2d_bytes = 0, d2h_bytes = 0, h2d_count = 0, d2h_count = 0;
  std::size_t online_injections = 0;

  auto accumulate = [&](const ft::FtReport& rep, const hybrid::HybridGehrdStats& st) {
    detections += rep.detections;
    rollbacks += rep.rollbacks;
    data_corrections += rep.data_corrections;
    checksum_corrections += rep.checksum_corrections;
    q_corrections += rep.q_corrections;
    for (const auto& ev : rep.events) checkpoint_only += ev.checkpoint_only ? 1 : 0;
    h2d_bytes += st.h2d_bytes;
    d2h_bytes += st.d2h_bytes;
    h2d_count += st.h2d_count;
    d2h_count += st.d2h_count;
  };

  // On-line detectable campaign: trailing-matrix faults at moments the
  // per-iteration check sees (End-moment faults fall to the final sweep).
  const fault::Area areas[] = {fault::Area::LowerTrailing, fault::Area::UpperTrailing};
  const fault::Moment moments[] = {fault::Moment::Beginning, fault::Moment::Middle};
  std::uint64_t seed = 100;
  for (const auto area : areas) {
    for (const auto moment : moments) {
      fault::FaultSpec spec;
      spec.area = area;
      spec.moment = moment;
      fault::Injector inj(spec, ++seed);
      Matrix<double> a = random_matrix(n, n, seed);
      std::vector<double> tau(static_cast<std::size_t>(n - 1));
      ft::FtReport rep;
      hybrid::HybridGehrdStats st;
      ft::ft_gehrd(dev, a.view(), vec_view(tau), {.nb = nb}, &inj, &rep, &st);
      EXPECT_EQ(inj.history().size(), 1u);
      online_injections += inj.history().size();
      accumulate(rep, st);
    }
  }

  // One Q-panel fault (caught by the end-of-run Q verification, not the
  // per-iteration check) and one clean run (nothing may fire).
  {
    fault::FaultSpec spec;
    spec.area = fault::Area::QPanel;
    fault::Injector inj(spec, ++seed);
    Matrix<double> a = random_matrix(n, n, seed);
    std::vector<double> tau(static_cast<std::size_t>(n - 1));
    ft::FtReport rep;
    hybrid::HybridGehrdStats st;
    ft::ft_gehrd(dev, a.view(), vec_view(tau), {.nb = nb}, &inj, &rep, &st);
    EXPECT_EQ(rep.detections, 0);
    EXPECT_GE(rep.q_corrections, 1);
    accumulate(rep, st);
  }
  {
    Matrix<double> a = random_matrix(n, n, ++seed);
    std::vector<double> tau(static_cast<std::size_t>(n - 1));
    ft::FtReport rep;
    hybrid::HybridGehrdStats st;
    ft::ft_gehrd(dev, a.view(), vec_view(tau), {.nb = nb}, nullptr, &rep, &st);
    EXPECT_EQ(rep.detections, 0);
    accumulate(rep, st);
  }

  // Every on-line-visible injection was detected, exactly once.
  EXPECT_EQ(detections, static_cast<int>(online_injections));
  EXPECT_GE(rollbacks, static_cast<int>(online_injections));
  EXPECT_GT(data_corrections + checksum_corrections + checkpoint_only, 0);

  // The global metrics saw exactly what the per-run reports saw.
  EXPECT_EQ(obs::counter_metric("ft.detections").value(),
            static_cast<std::uint64_t>(detections));
  EXPECT_EQ(obs::counter_metric("ft.rollbacks").value(),
            static_cast<std::uint64_t>(rollbacks));
  EXPECT_EQ(obs::counter_metric("ft.data_corrections").value(),
            static_cast<std::uint64_t>(data_corrections));
  EXPECT_EQ(obs::counter_metric("ft.checksum_corrections").value(),
            static_cast<std::uint64_t>(checksum_corrections));
  EXPECT_EQ(obs::counter_metric("ft.q_corrections").value(),
            static_cast<std::uint64_t>(q_corrections));
  EXPECT_EQ(obs::counter_metric("ft.checkpoint_only_recoveries").value(),
            static_cast<std::uint64_t>(checkpoint_only));
  // One re-execution per rollback, by construction of the retry loop.
  EXPECT_EQ(obs::counter_metric("ft.reexecutions").value(),
            obs::counter_metric("ft.rollbacks").value());

  // The drift histogram sampled every per-iteration check, detections included.
  const auto gap = obs::histogram_metric("ft.detect_gap").snapshot();
  EXPECT_GT(gap.count, 0u);
  EXPECT_GE(gap.count, static_cast<std::uint64_t>(detections));
  EXPECT_GE(gap.max, 0.0);

  // Device transfer counters match the per-run deltas the drivers surfaced.
  EXPECT_EQ(obs::counter_metric("device.h2d_bytes").value(), h2d_bytes);
  EXPECT_EQ(obs::counter_metric("device.d2h_bytes").value(), d2h_bytes);
  EXPECT_EQ(obs::counter_metric("device.h2d_count").value(), h2d_count);
  EXPECT_EQ(obs::counter_metric("device.d2h_count").value(), d2h_count);
}

}  // namespace
}  // namespace fth

// Monte-Carlo fault-injection campaign: hammer the FT reduction with
// randomized soft errors and report detection / correction statistics —
// the kind of study Section VI runs per-area, here automated across areas,
// moments, and magnitudes.
//
//   ./fault_campaign [--n 128] [--nb 32] [--trials 10] [--faults 1] [--area 0..4]
#include <cstdio>

#include "common/options.hpp"
#include "fault/campaign.hpp"

using namespace fth;

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  fault::CampaignConfig cfg;
  cfg.n = opt.get_long("n", 128);
  cfg.nb = opt.get_long("nb", 32);
  cfg.trials = static_cast<int>(opt.get_long("trials", 10));
  cfg.faults_per_trial = static_cast<int>(opt.get_long("faults", 1));
  cfg.area = static_cast<fault::Area>(opt.get_long("area", 0));
  cfg.magnitude = opt.get_double("magnitude", 100.0);
  cfg.seed = static_cast<std::uint64_t>(opt.get_long("seed", 2026));

  std::printf("Fault-injection campaign: n=%lld nb=%lld trials=%d faults/trial=%d area=%s\n\n",
              static_cast<long long>(cfg.n), static_cast<long long>(cfg.nb), cfg.trials,
              cfg.faults_per_trial, fault::to_string(cfg.area).c_str());

  const fault::CampaignResult res = fault::run_campaign(cfg);

  std::printf("%6s %28s %6s %6s %10s %14s %s\n", "trial", "fault(s) (row,col)@boundary",
              "det", "corr", "recovered", "max |Δ|", "note");
  int t = 0;
  for (const auto& trial : res.trials) {
    std::string where;
    for (const auto& f : trial.injected) {
      where += "(" + std::to_string(f.row) + "," + std::to_string(f.col) + ")@" +
               std::to_string(f.boundary) + " ";
    }
    std::printf("%6d %28s %6d %6d %10s %14.3e %s\n", t++, where.c_str(), trial.detections,
                trial.corrections, trial.recovered ? "yes" : "NO",
                trial.max_error_vs_clean,
                trial.failure.empty() ? (trial.result_correct ? "" : "RESIDUAL DRIFT")
                                      : trial.failure.c_str());
  }

  std::printf("\nsummary: %d/%zu recovered, %d/%zu bit-correct vs fault-free run, "
              "worst drift %.3e\n",
              res.recovered_count, res.trials.size(), res.correct_count, res.trials.size(),
              res.worst_error_vs_clean);
  return res.recovered_count == static_cast<int>(res.trials.size()) ? 0 : 1;
}

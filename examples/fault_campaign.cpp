// Monte-Carlo fault-injection campaign: hammer the FT reduction with
// randomized soft errors and report detection / correction statistics —
// the kind of study Section VI runs per-area, here automated across areas,
// moments, and magnitudes.
//
//   ./fault_campaign [--n 128] [--nb 32] [--trials 10] [--faults 1] [--area 0..4]
//                    [--inflight] [--alg 0..2] [--report <path>]
//
// With --inflight the campaign arms asynchronous FaultPlane faults instead
// of boundary-only deltas: IEEE-754 bit flips, NaN/Inf poisoning, checksum
// and checkpoint strikes, transfer corruption, and faults during an ongoing
// recovery, cycling through all eight soak classes (DESIGN.md §9). With
// --report the run also writes the soak-campaign JSON documented in
// EXPERIMENTS.md (one row per trial, obs metrics snapshot in the footer).
#include <cstdio>
#include <memory>
#include <optional>

#include "../bench/bench_common.hpp"
#include "common/options.hpp"
#include "fault/campaign.hpp"

using namespace fth;

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  fault::CampaignConfig cfg;
  cfg.algorithm = static_cast<fault::Algorithm>(opt.get_long("alg", 0));
  cfg.n = opt.get_long("n", 128);
  cfg.nb = opt.get_long("nb", 32);
  cfg.trials = static_cast<int>(opt.get_long("trials", 10));
  cfg.faults_per_trial = static_cast<int>(opt.get_long("faults", 1));
  cfg.area = static_cast<fault::Area>(opt.get_long("area", 0));
  cfg.magnitude = opt.get_double("magnitude", 100.0);
  cfg.seed = static_cast<std::uint64_t>(opt.get_long("seed", 2026));
  cfg.in_flight = opt.has("inflight");

  std::printf("Fault-injection campaign: alg=%s n=%lld nb=%lld trials=%d faults/trial=%d %s\n\n",
              fault::to_string(cfg.algorithm).c_str(), static_cast<long long>(cfg.n),
              static_cast<long long>(cfg.nb), cfg.trials, cfg.faults_per_trial,
              cfg.in_flight ? "mode=in-flight soak"
                            : ("area=" + fault::to_string(cfg.area)).c_str());

  // Construct the report before the campaign so its --trace window and
  // profile section cover the runs themselves, not just the summary.
  std::optional<bench::Report> report_holder;
  if (opt.has("report")) report_holder.emplace(opt, "fault_campaign");

  const fault::CampaignResult res = fault::run_campaign(cfg);

  if (report_holder.has_value()) {
    bench::Report& report = *report_holder;
    report.note("alg", fault::to_string(cfg.algorithm));
    report.note("n", cfg.n);
    report.note("nb", cfg.nb);
    report.note("trials", cfg.trials);
    report.note("seed", static_cast<long long>(cfg.seed));
    report.note("mode", cfg.in_flight ? "in-flight" : "boundary");
    report.note("detected", res.detected_count);
    report.note("recovered", res.recovered_count);
    report.note("correct", res.correct_count);
    report.note("aborted", res.aborted_count);
    report.note("fired", res.fired_count);
    report.note("worst_error_vs_clean", res.worst_error_vs_clean);
    int trial = 0;
    for (const auto& t : res.trials) {
      auto& row = report.row();
      row.set("trial", trial++)
          .set("class", fault::to_string(t.fault_class))
          .set("injected", static_cast<long long>(t.injected.size()))
          .set("fired", static_cast<long long>(t.in_flight_fired.size()))
          .set("detections", t.detections)
          .set("corrections", t.corrections)
          .set("detected", static_cast<int>(t.detected))
          .set("recovered", static_cast<int>(t.recovered))
          .set("result_correct", static_cast<int>(t.result_correct))
          .set("max_error_vs_clean", t.max_error_vs_clean)
          .set("status", ft::to_string(t.outcome.status))
          .set("abort_reason", ft::to_string(t.outcome.reason))
          .set("abort_boundary", static_cast<long long>(t.outcome.boundary))
          .set("attempts", t.outcome.attempts)
          .set("failure", t.failure);
      // Per-trial counter deltas (snapshot around the faulty run), so the
      // footer's cumulative metrics can be attributed to individual trials.
      const auto delta = [&t](const char* name) -> long long {
        const auto it = t.metric_deltas.find(name);
        return it == t.metric_deltas.end() ? 0 : static_cast<long long>(it->second);
      };
      row.set("d_ft_detections", delta("ft.detections"))
          .set("d_ft_rollbacks", delta("ft.rollbacks"))
          .set("d_ft_data_corrections", delta("ft.data_corrections"))
          .set("d_ft_unrecoverable", delta("ft.unrecoverable"));
    }
  }

  std::printf("%6s %-18s %28s %6s %6s %10s %14s %s\n", "trial", "class",
              "fault(s) (row,col)@boundary", "det", "corr", "recovered", "max |Δ|", "note");
  int t = 0;
  for (const auto& trial : res.trials) {
    std::string where;
    for (const auto& f : trial.injected) {
      where += "(" + std::to_string(f.row) + "," + std::to_string(f.col) + ")@" +
               std::to_string(f.boundary) + " ";
    }
    for (const auto& f : trial.in_flight_fired) {
      where += "(" + std::to_string(f.row) + "," + std::to_string(f.col) + ")#" +
               std::to_string(f.trigger_index) + " ";
    }
    std::printf("%6d %-18s %28s %6d %6d %10s %14.3e %s\n", t++,
                cfg.in_flight ? fault::to_string(trial.fault_class).c_str() : "boundary",
                where.c_str(), trial.detections, trial.corrections,
                trial.recovered ? "yes" : "NO", trial.max_error_vs_clean,
                trial.failure.empty() ? (trial.result_correct ? "" : "RESIDUAL DRIFT")
                                      : trial.failure.c_str());
  }

  std::printf("\nsummary: %d/%zu detected, %d/%zu recovered, %d/%zu bit-correct vs "
              "fault-free run, %d structured aborts, worst drift %.3e\n",
              res.detected_count, res.trials.size(), res.recovered_count, res.trials.size(),
              res.correct_count, res.trials.size(), res.aborted_count,
              res.worst_error_vs_clean);
  return res.recovered_count + res.aborted_count == static_cast<int>(res.trials.size()) ? 0 : 1;
}

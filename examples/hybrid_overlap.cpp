// Anatomy of the hybrid execution: where the time goes, what moves over
// the (simulated) PCIe bus, and what the resilience machinery costs —
// including a run with a non-zero transfer cost model to show how the
// asynchronous design hides communication.
//
//   ./hybrid_overlap [--n 512] [--nb 32] [--gbps 0] [--dag]
//
// --dag records the FT run's execution DAG (obs/dag.hpp) and prints the
// critical path, the top host-blocking edges (which synchronize/event
// wait, at which call site, waiting on which task), and the what-if
// overlap predictions — the interactive twin of `fth_why` on a bench dump.
#include <cstdio>

#include "common/options.hpp"
#include "ft/ft_gehrd.hpp"
#include "hybrid/hybrid_gehrd.hpp"
#include "la/generate.hpp"
#include "obs/dag.hpp"

using namespace fth;

namespace {

void report(const char* label, const hybrid::HybridGehrdStats& st) {
  std::printf("%-26s total %7.3f s | panels(host) %7.3f s | updates(dev) %7.3f s | "
              "h2d %6.1f MB | d2h %6.1f MB\n",
              label, st.total_seconds, st.panel_seconds, st.update_seconds,
              static_cast<double>(st.h2d_bytes) / 1e6,
              static_cast<double>(st.d2h_bytes) / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const index_t n = opt.get_long("n", 512);
  const index_t nb = opt.get_long("nb", 32);
  const double gbps = opt.get_double("gbps", 0.0);

  std::printf("Hybrid execution anatomy: n = %lld, nb = %lld\n\n",
              static_cast<long long>(n), static_cast<long long>(nb));

  Matrix<double> a0 = random_matrix(n, n, 11);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));

  // Baseline hybrid run.
  {
    hybrid::Device dev;
    Matrix<double> a(a0.cview());
    hybrid::HybridGehrdStats st;
    hybrid::hybrid_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1),
                         {.nb = nb, .nx = nb}, &st);
    report("hybrid (fault-prone)", st);
  }

  // FT run: same skeleton + checksums; the paper's claim is that the extra
  // work hides behind the device updates and the idle CPU.
  {
    const bool dag = opt.has("dag");
    if (dag) obs::dag::start();
    hybrid::Device dev;
    Matrix<double> a(a0.cview());
    hybrid::HybridGehrdStats st;
    ft::FtReport rep;
    ft::ft_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1), {.nb = nb}, nullptr,
                 &rep, &st);
    report("FT-Hess (no faults)", st);
    std::printf("%-26s encode %.4f s | Vce/Yce %.4f s | detect %.4f s | Q chks %.4f s\n",
                "  resilience breakdown:", rep.encode_seconds,
                rep.checksum_update_seconds, rep.detect_seconds, rep.q_seconds);
    if (dag) {
      const obs::dag::Graph g = obs::dag::stop();
      const obs::dag::Analysis an = obs::dag::analyze(g);
      std::vector<obs::dag::Prediction> what_if;
      for (const obs::dag::Scenario& sc : obs::dag::default_scenarios(1.0))
        what_if.push_back(obs::dag::simulate(g, sc));
      std::printf("\nexecution DAG of the FT run (critical path / blocking / what-if):\n");
      obs::dag::print_analysis(g, an, what_if, stdout);
    }
  }

  // With a simulated transfer cost: the per-column panel exchanges become
  // visible in the panel time, the bulk updates stay device-bound.
  if (gbps > 0.0) {
    hybrid::Device dev({.h2d_gbps = gbps, .d2h_gbps = gbps, .latency_us = 5.0});
    Matrix<double> a(a0.cview());
    hybrid::HybridGehrdStats st;
    hybrid::hybrid_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1),
                         {.nb = nb, .nx = nb}, &st);
    std::printf("\nwith a %.1f GB/s simulated bus:\n", gbps);
    report("hybrid + cost model", st);
  } else {
    std::printf("\n(tip: rerun with --gbps 8 to simulate a PCIe-3-like bus)\n");
  }

  // Block-size sweep: the panel/update balance shifts with nb.
  std::printf("\nblock-size sweep (FT, no faults):\n");
  for (index_t b : {8, 16, 32, 64}) {
    hybrid::Device dev;
    Matrix<double> a(a0.cview());
    hybrid::HybridGehrdStats st;
    ft::ft_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1), {.nb = b}, nullptr,
                 nullptr, &st);
    std::printf("  nb=%-4lld", static_cast<long long>(b));
    report("", st);
  }
  return 0;
}

// Singular values under soft errors — the SVD pipeline on the resilient
// bidiagonal reduction.
//
// σ(A) are computed as sqrt(eig(BᵀB)) where B = QᵀAP is the bidiagonal
// factor: BᵀB is symmetric tridiagonal, so the library's Hessenberg QR
// iteration finishes the job. Three runs on the same matrix:
//   1. fault-free             (ground truth),
//   2. fault-prone + fault    (silently wrong spectrum),
//   3. FT-gebrd + same fault  (recovered spectrum).
//
//   ./singular_values_under_faults [--n 160] [--nb 32]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/options.hpp"
#include "eigen/hseqr.hpp"
#include "fault/injector.hpp"
#include "ft/ft_gebrd.hpp"
#include "hybrid/hybrid_gebrd.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lapack/gebrd.hpp"

using namespace fth;

namespace {

/// Singular values from the bidiagonal factor (descending).
std::vector<double> singular_values(const std::vector<double>& d,
                                    const std::vector<double>& e) {
  const index_t n = static_cast<index_t>(d.size());
  // T = BᵀB is symmetric tridiagonal:
  //   T(i,i) = d_i² + e_{i−1}², T(i,i+1) = d_i·e_i.
  Matrix<double> t(n, n);
  for (index_t i = 0; i < n; ++i) {
    t(i, i) = d[static_cast<std::size_t>(i)] * d[static_cast<std::size_t>(i)] +
              (i > 0 ? e[static_cast<std::size_t>(i - 1)] * e[static_cast<std::size_t>(i - 1)]
                     : 0.0);
    if (i + 1 < n) {
      const double od = d[static_cast<std::size_t>(i)] * e[static_cast<std::size_t>(i)];
      t(i + 1, i) = od;
      t(i, i + 1) = od;
    }
  }
  auto r = eigen::hseqr(t.view());
  std::vector<double> sv;
  for (const auto& l : r.eigenvalues) sv.push_back(std::sqrt(std::max(0.0, l.real())));
  std::sort(sv.rbegin(), sv.rend());
  return sv;
}

double max_rel_err(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]) / std::max(1.0, a[0]));
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const index_t n = opt.get_long("n", 160);
  const index_t nb = opt.get_long("nb", 32);

  std::printf("Singular values under soft errors: n = %lld, nb = %lld\n\n",
              static_cast<long long>(n), static_cast<long long>(nb));

  Matrix<double> a0 = random_matrix(n, n, 17);
  const double scale = norm_max(a0.cview());
  std::vector<double> d(static_cast<std::size_t>(n)), e(static_cast<std::size_t>(n - 1)),
      tq(static_cast<std::size_t>(n)), tp(static_cast<std::size_t>(n - 1));
  hybrid::Device dev;

  // 1. Ground truth.
  Matrix<double> truth(a0.cview());
  hybrid::hybrid_gebrd(dev, truth.view(), VectorView<double>(d.data(), n),
                       VectorView<double>(e.data(), n - 1), VectorView<double>(tq.data(), n),
                       VectorView<double>(tp.data(), n - 1), {.nb = nb, .nx = nb});
  const auto sv_ref = singular_values(d, e);

  // 2. Fault-prone pipeline with one device-side error mid-run.
  Matrix<double> corrupted(a0.cview());
  hybrid::hybrid_gebrd(dev, corrupted.view(), VectorView<double>(d.data(), n),
                       VectorView<double>(e.data(), n - 1), VectorView<double>(tq.data(), n),
                       VectorView<double>(tp.data(), n - 1), {.nb = nb, .nx = nb}, nullptr,
                       [&](const hybrid::IterationHookContext& ctx) {
                         if (ctx.boundary == 2)
                           ctx.dev_a(ctx.next_panel + 5, ctx.next_panel + 9) += 100.0 * scale;
                       });
  const auto sv_bad = singular_values(d, e);

  // 3. FT pipeline with the same fault.
  fault::FaultSpec spec;
  spec.area = fault::Area::LowerTrailing;
  spec.boundary = 2;
  spec.magnitude = 100.0;
  fault::Injector inj(spec);
  Matrix<double> protected_run(a0.cview());
  ft::FtReport rep;
  ft::ft_gebrd(dev, protected_run.view(), VectorView<double>(d.data(), n),
               VectorView<double>(e.data(), n - 1), VectorView<double>(tq.data(), n),
               VectorView<double>(tp.data(), n - 1), {.nb = nb}, &inj, &rep);
  const auto sv_good = singular_values(d, e);

  const double err_bad = max_rel_err(sv_ref, sv_bad);
  const double err_good = max_rel_err(sv_ref, sv_good);
  std::printf("max relative singular-value error vs fault-free pipeline:\n");
  std::printf("  fault-prone + 1 soft error : %.6e   <-- silent corruption\n", err_bad);
  std::printf("  FT-gebrd    + 1 soft error : %.6e   (detections %d, corrections %d)\n",
              err_good, rep.detections,
              rep.data_corrections + rep.q_corrections + rep.final_sweep_corrections);
  std::printf("\nlargest 5 singular values (truth vs FT):\n");
  for (int i = 0; i < 5 && i < static_cast<int>(sv_ref.size()); ++i)
    std::printf("  %18.12f   %18.12f\n", sv_ref[static_cast<std::size_t>(i)],
                sv_good[static_cast<std::size_t>(i)]);

  const bool ok = err_good < 1e-8 && err_bad > 1e-4;
  std::printf("\n%s\n", ok ? "OK: the FT pipeline preserved the spectrum; the unprotected "
                             "one corrupted it."
                           : "unexpected outcome — inspect the numbers above");
  return ok ? 0 : 1;
}

// Two-stream lookahead pipeline — the seeded fth_analyze v2 fixture.
//
// This is the shape ROADMAP item 1 (the paper's Algorithm 2/3 lookahead)
// will take, distilled: the NEXT panel's d2h is started at the bottom of
// each iteration and stays in flight ACROSS the loop back-edge, retired
// by an Event wait at the top of the next iteration; pipeline stages are
// factored into helper member functions (analyzed via interprocedural
// summaries, DESIGN.md §11.3); a second DevicePool member stages shard
// results into the compute stream through a wait_event edge; and a
// checksum stage re-encodes FT-protected device storage from host truth
// before a task writes the coupling entry. Every host wait on a pool
// member's Event is a bounded wait_for (DESIGN.md §13).
//
// `fth_analyze examples/lookahead_pipeline.cpp` proves all of this clean.
// tests/check/test_analyze.cpp deletes each ordering edge of this file in
// memory and asserts the expected rule fires at the exact line — so the
// fixture is also the regression suite for the loop-carried pass. Keep
// edits here in sync with the kFixtureSeeds table there. The tail of
// run() additionally carries two `fth-perf: expect` exemplars (a
// redundant same-stream Event edge and a false-serialized task pair)
// that pin the advisory plane's marker machinery (DESIGN.md §11.5).
//
//   ./lookahead_pipeline [--n 96] [--nb 16]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "check/effects.hpp"
#include "common/options.hpp"
#include "hybrid/dev_blas.hpp"
#include "hybrid/device.hpp"
#include "hybrid/pool.hpp"
#include "la/generate.hpp"
#include "la/matrix.hpp"

using namespace fth;

namespace {

constexpr std::chrono::milliseconds kHealthTimeout{2000};

/// A toy two-device lookahead pipeline over the columns of an n×n
/// matrix: host "factorization" of panel i overlapped with the device
/// trailing update and with the d2h of panel i+1.
class LookaheadPipeline {
 public:
  LookaheadPipeline(hybrid::DevicePool& pool, index_t n, index_t nb)
      : pool_(&pool),
        n_(n),
        nb_(nb),
        d_a_(pool.device(0), n, n, "look.d_a"),
        d_w_(pool.device(0), nb, n, "look.d_w"),
        d_chk_(pool.device(0), 1, n, "look.d_chk"),
        d_g_(pool.device(1), 1, n, "look.d_g"),
        panel_host_(n, nb),
        stage_host_(1, n),
        y_host_(1, n),
        chk_host_(1, n),
        chk_seg_(1, nb),
        expected_(1, n) {}

  void run(MatrixView<double> a) {
    hybrid::Stream& sc = pool_->stream(0);
    hybrid::Stream& sd = pool_->stream(1);
    copy_h2d(sc, MatrixView<const double>(a), d_a_.view());

    // Prime the pipeline: panel 0 starts travelling before the loop.
    start_panel_d2h(sc, 0);

    index_t panels = 0;
    for (index_t i = 0; i < n_; i += nb_) {
      // The cross-iteration edge: the d2h started at the bottom of the
      // previous iteration (or the priming copy) must land before the
      // host factors the panel it wrote. Deleting this wait is a
      // loop-carried-race, not a straight-line one — the transfer is
      // only in flight here via the loop back-edge.
      if (!panel_ready_.wait_for(kHealthTimeout)) throw std::runtime_error("device 0 lost");

      factor_panel(panel_host_.view(), i);
      copy_h2d_async(sc, panel_host_.cview(), d_a_.block(0, i, n_, nb_));

      // Device trailing update, FIFO-ordered after the panel h2d.
      const index_t tn = n_ - (i + nb_);
      if (tn > 0) {
        hybrid::gemm_async(sc, Trans::No, Trans::No, -1.0, d_a_.block(0, i, n_, nb_),
                           d_w_.block(0, i + nb_, nb_, tn), 1.0, d_a_.block(0, i + nb_, n_, tn));
      }

      stage_shard(sd, sc, i);
      verify_checksum(sc);
      refresh_checksum(sc, i);

      // Lookahead: ship the NEXT panel while the update still runs. The
      // transfer crosses the back-edge in flight; iteration i+1's
      // wait_for above is the edge that retires it.
      if (i + nb_ < n_) start_panel_d2h(sc, i + nb_);
      ++panels;
    }

    // Two deliberately mis-scheduled exemplars the perf plane must keep
    // reporting (tests/check/test_analyze.cpp pins these exact lines):
    // a same-stream Event edge that FIFO order already provides, and two
    // disjoint-footprint tasks serialized back-to-back. Both are benign
    // at runtime (the edge is a no-op, the tasks scale by 1.0), so the
    // example still runs clean under FTH_CHECK=1.
    const hybrid::Event fifo_already = sc.record();
    // fth-perf: expect redundant-wait
    sc.wait_event(fifo_already);
    sc.enqueue("look.scale_w", FTH_TASK_EFFECTS(FTH_WRITES(d_w_.view())),
               [w = d_w_.view(), nb = nb_] {
                 for (index_t j = 0; j < nb; ++j) w.in_task()(0, j) *= 1.0;
               });
    // fth-perf: expect false-serialization
    sc.enqueue("look.scale_y", FTH_TASK_EFFECTS(FTH_WRITES(y_host_.view())),
               [yh = y_host_.view(), n = n_] {
                 for (index_t c = 0; c < n; ++c) yh(0, c) *= 1.0;
               });
    sc.synchronize();
    std::printf("lookahead pipeline: %lld panels of %lld columns, all edges held\n",
                static_cast<long long>(panels), static_cast<long long>(nb_));
  }

 private:
  /// Start the asynchronous d2h of panel `i` into panel_host_ and
  /// record the Event the next iteration's top-of-loop wait retires it
  /// with. Stream side-effects of a helper are spliced into the caller
  /// by fth_analyze's function summaries — this stays fully analyzed.
  void start_panel_d2h(hybrid::Stream& sc, index_t i) {
    copy_d2h_async(sc, d_a_.block(0, i, n_, nb_), panel_host_.view());
    panel_ready_ = sc.record();
  }

  /// Host "factorization" of one panel: scale each column by its
  /// leading entry. Stands in for the LAPACK panel kernel.
  void factor_panel(MatrixView<double> panel, index_t i) {
    for (index_t j = 0; j < nb_; ++j) {
      const double head = panel(i + j, j);
      const double inv = std::abs(head) > 1.0 ? 1.0 / head : 1.0;
      for (index_t r = 0; r < n_; ++r) panel(r, j) *= inv;
    }
  }

  /// Shard stage on the second pool member: d2h its row into host
  /// staging, then reduce into y_host_ on the COMPUTE stream. The
  /// wait_event edge is what orders the reduce after the transfer —
  /// FIFO order only covers same-stream pairs (DESIGN.md §13).
  void stage_shard(hybrid::Stream& sd, hybrid::Stream& sc, index_t i) {
    copy_d2h_async(sd, d_g_.view(), stage_host_.view());
    const hybrid::Event shard_done = sd.record();
    sc.wait_event(shard_done);
    sc.enqueue("look.reduce", FTH_TASK_EFFECTS(FTH_READS(stage_host_.view()) FTH_WRITES(y_host_.view())),
               [sg = stage_host_.cview(), yh = y_host_.view(), n = n_] {
                 for (index_t c = 0; c < n; ++c) yh(0, c) += sg(0, c);
               });
    if (!shard_done.wait_for(kHealthTimeout)) throw std::runtime_error("device 1 lost");
  }

  /// Compare the maintained device checksum against the host-kept
  /// expectation. The bounded wait is the edge that lets the host read
  /// chk_host_; deleting it races the readback d2h.
  void verify_checksum(hybrid::Stream& sc) {
    copy_d2h_async(sc, d_chk_.view(), chk_host_.view());
    const hybrid::Event chk_ready = sc.record();
    if (!chk_ready.wait_for(kHealthTimeout)) throw std::runtime_error("device 0 lost");
    double drift = 0.0;
    for (index_t c = 0; c < n_; ++c) drift = std::max(drift, std::abs(chk_host_(0, c) - expected_(0, c)));
    if (drift > 1e-9) throw std::runtime_error("checksum drift — transient error");
  }

  /// Re-encode the finished panel's checksum segment from host truth,
  /// then couple the trailing entry in a device task. The h2d re-encode
  /// is what sanctions the task's FTH_WRITES over the protected d_chk_
  /// storage — without it the write is a stale-checksum-write.
  void refresh_checksum(hybrid::Stream& sc, index_t i) {
    double e_last = 0.0;
    for (index_t j = 0; j < nb_; ++j) {
      double colsum = 0.0;
      for (index_t r = 0; r < n_; ++r) colsum += panel_host_(r, j);
      chk_seg_(0, j) = colsum;
      expected_(0, i + j) = colsum;
      e_last = colsum;
    }
    copy_h2d_async(sc, chk_seg_.cview(), d_chk_.block(0, i, 1, nb_));
    if (i + nb_ < n_) {
      auto c = d_chk_.view();
      sc.enqueue("look.chk_couple", FTH_TASK_EFFECTS(FTH_WRITES(d_chk_.view())),
                 [c, i, nb = nb_, e_last] { c.in_task()(0, i + nb) += e_last; });
      expected_(0, i + nb_) += e_last;
    }
  }

  hybrid::DevicePool* pool_;
  index_t n_;
  index_t nb_;
  hybrid::DeviceMatrix<double> d_a_;
  hybrid::DeviceMatrix<double> d_w_;
  hybrid::DeviceMatrix<double> d_chk_;
  hybrid::DeviceMatrix<double> d_g_;
  Matrix<double> panel_host_;
  Matrix<double> stage_host_;
  Matrix<double> y_host_;
  Matrix<double> chk_host_;
  Matrix<double> chk_seg_;
  Matrix<double> expected_;
  hybrid::Event panel_ready_;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const index_t n = opt.get_long("n", 96);
  const index_t nb = opt.get_long("nb", 16);
  if (n % nb != 0 || nb <= 0) {
    std::fprintf(stderr, "lookahead_pipeline: n must be a positive multiple of nb\n");
    return 1;
  }
  hybrid::DevicePool pool({.devices = 2});
  Matrix<double> a = random_matrix(n, n, 7);
  LookaheadPipeline pipe(pool, n, nb);
  pipe.run(a.view());
  return 0;
}

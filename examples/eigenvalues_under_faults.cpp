// End-to-end eigenvalue pipeline under soft errors — the workload the
// paper's introduction motivates: Hessenberg reduction is the intermediate
// step of the eigensolver, and a single undetected bit flip can silently
// change every computed eigenvalue.
//
// This example runs the pipeline three ways on the same matrix:
//   1. fault-free                 (ground truth),
//   2. fault-prone hybrid + fault (shows silent corruption),
//   3. FT-Hess + the same fault   (shows full recovery),
// and prints the eigenvalue error of runs 2 and 3 against run 1.
//
//   ./eigenvalues_under_faults [--n 200] [--nb 32]
#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdio>
#include <vector>

#include "common/options.hpp"
#include "eigen/hseqr.hpp"
#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"
#include "hybrid/hybrid_gehrd.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lapack/gehrd.hpp"

using namespace fth;

namespace {

/// Sort complex values for pairwise comparison (by real, then imaginary).
void sort_eigs(std::vector<std::complex<double>>& v) {
  std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    return a.real() != b.real() ? a.real() < b.real() : a.imag() < b.imag();
  });
}

double max_eig_error(std::vector<std::complex<double>> a,
                     std::vector<std::complex<double>> b) {
  sort_eigs(a);
  sort_eigs(b);
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

std::vector<std::complex<double>> eigs_of_factored(MatrixView<const double> factored) {
  Matrix<double> h = lapack::extract_hessenberg(factored);
  auto r = eigen::hseqr(h.view());
  if (!r.converged) std::printf("  (warning: QR iteration did not converge)\n");
  return r.eigenvalues;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const index_t n = opt.get_long("n", 200);
  const index_t nb = opt.get_long("nb", 32);
  const index_t fault_row = opt.get_long("row", n / 2);
  const index_t fault_col = opt.get_long("col", n - n / 4);

  std::printf("Eigenvalues under soft errors: n = %lld, fault at (%lld, %lld)\n\n",
              static_cast<long long>(n), static_cast<long long>(fault_row),
              static_cast<long long>(fault_col));

  Matrix<double> a0 = random_matrix(n, n, 7);
  const double scale = norm_max(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  hybrid::Device dev;

  // 1. Ground truth.
  Matrix<double> truth(a0.cview());
  hybrid::hybrid_gehrd(dev, truth.view(), VectorView<double>(tau.data(), n - 1),
                       {.nb = nb, .nx = nb});
  const auto ref = eigs_of_factored(truth.cview());

  // 2. Fault-prone pipeline with one injected error.
  Matrix<double> corrupted(a0.cview());
  hybrid::hybrid_gehrd(dev, corrupted.view(), VectorView<double>(tau.data(), n - 1),
                       {.nb = nb, .nx = nb}, nullptr,
                       [&](const hybrid::IterationHookContext& ctx) {
                         if (ctx.boundary == 2 && fault_col >= ctx.next_panel)
                           ctx.dev_a(fault_row, fault_col) += 100.0 * scale;
                       });
  const auto bad = eigs_of_factored(corrupted.cview());

  // 3. FT pipeline with the same fault.
  fault::FaultSpec spec;
  spec.row = fault_row;
  spec.col = fault_col;
  spec.boundary = 2;
  spec.magnitude = 100.0;
  fault::Injector inj(spec);
  Matrix<double> protected_run(a0.cview());
  ft::FtReport rep;
  ft::ft_gehrd(dev, protected_run.view(), VectorView<double>(tau.data(), n - 1), {.nb = nb},
               &inj, &rep);
  const auto good = eigs_of_factored(protected_run.cview());

  const double err_bad = max_eig_error(ref, bad);
  const double err_good = max_eig_error(ref, good);
  std::printf("max |eigenvalue error| vs fault-free pipeline:\n");
  std::printf("  fault-prone hybrid + 1 soft error : %.6e   <-- silent corruption\n",
              err_bad);
  std::printf("  FT-Hess            + 1 soft error : %.6e   (detections: %d, corrections: %d)\n",
              err_good, rep.detections,
              rep.data_corrections + rep.q_corrections + rep.final_sweep_corrections);
  std::printf("\nfirst 5 eigenvalues (truth vs FT):\n");
  auto r = ref;
  auto g = good;
  sort_eigs(r);
  sort_eigs(g);
  for (int i = 0; i < 5 && i < static_cast<int>(r.size()); ++i)
    std::printf("  %+.12f%+.12fi   %+.12f%+.12fi\n", r[static_cast<std::size_t>(i)].real(),
                r[static_cast<std::size_t>(i)].imag(), g[static_cast<std::size_t>(i)].real(),
                g[static_cast<std::size_t>(i)].imag());

  const bool ok = err_good < 1e-6 && err_bad > 1e-3;
  std::printf("\n%s\n", ok ? "OK: the FT pipeline returned the true spectrum; the "
                             "unprotected one did not."
                           : "unexpected outcome — inspect the numbers above");
  return ok ? 0 : 1;
}

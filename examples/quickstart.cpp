// Quickstart: reduce a matrix to Hessenberg form with transient-error
// resilience, inject a soft error mid-factorization, and watch the library
// detect, roll back, and correct it on the fly.
//
//   ./quickstart [--n 256] [--nb 32]
#include <cstdio>

#include "common/options.hpp"
#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lapack/verify.hpp"

int main(int argc, char** argv) {
  using namespace fth;
  const Options opt(argc, argv);
  const index_t n = opt.get_long("n", 256);
  const index_t nb = opt.get_long("nb", 32);

  std::printf("FT-Hessenberg quickstart: n = %lld, nb = %lld\n\n",
              static_cast<long long>(n), static_cast<long long>(nb));

  // 1. A random input matrix; keep a copy for verification.
  Matrix<double> a = random_matrix(n, n, /*seed=*/42);
  const Matrix<double> a_orig(a.cview());

  // 2. The simulated accelerator (the paper's K40c counterpart).
  hybrid::Device dev;

  // 3. Plant one soft error: a trailing-matrix element silently changes
  //    value in the middle of the factorization (Area 2 of Fig. 2(a)).
  fault::FaultSpec fault;
  fault.area = fault::Area::LowerTrailing;
  fault.moment = fault::Moment::Middle;
  fault.magnitude = 100.0;  // 100× the matrix scale — a hard hit
  fault::Injector injector(fault);

  // 4. Run the fault-tolerant reduction.
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  ft::FtReport report;
  hybrid::HybridGehrdStats stats;
  ft::ft_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1), {.nb = nb}, &injector,
               &report, &stats);

  // 5. What happened?
  const auto& hist = injector.history();
  std::printf("injected : %zu fault(s)", hist.size());
  for (const auto& f : hist)
    std::printf("  [boundary %lld, (%lld,%lld), delta %.3g, %s]",
                static_cast<long long>(f.boundary), static_cast<long long>(f.row),
                static_cast<long long>(f.col), f.delta, fault::to_string(f.area).c_str());
  std::printf("\ndetected : %d (threshold %.3e, clean-run gap %.3e)\n", report.detections,
              report.threshold, report.max_fault_free_gap);
  std::printf("recovered: %d rollback(s), %d data correction(s), %d checksum fix(es)\n",
              report.rollbacks, report.data_corrections, report.checksum_corrections);
  std::printf("time     : %.3f s total (%.3f s panels, %.3f s updates, %.3f s recovery)\n\n",
              stats.total_seconds, stats.panel_seconds, stats.update_seconds,
              report.recovery_seconds);

  // 6. Verify the result against the original matrix.
  const auto v = lapack::verify_reduction(a_orig.cview(), a.cview(),
                                          VectorView<const double>(tau.data(), n - 1));
  std::printf("residual ||A - QHQ^T||_1/(N||A||_1) = %.3e\n", v.residual);
  std::printf("orthogonality ||QQ^T - I||_1/N      = %.3e\n", v.orthogonality);
  std::printf("upper Hessenberg structure          = %s\n", v.hessenberg ? "yes" : "NO");
  std::printf("\n%s\n", v.residual < 1e-13 && v.hessenberg
                            ? "OK: the soft error left no trace in the result."
                            : "FAILED: result degraded!");
  return v.residual < 1e-13 && v.hessenberg ? 0 : 1;
}

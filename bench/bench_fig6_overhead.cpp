// Fig. 6 reproduction: performance overhead of FT-Hess vs the fault-prone
// hybrid (MAGMA-style) Hessenberg reduction, across matrix sizes, with one
// soft error injected in Area 1 / 2 / 3 at the Beginning / Middle / End of
// the factorization.
//
// Prints, per size: the baseline and FT GFLOP/s, the no-fault overhead
// (the blue line of Fig. 6), and the min–max overhead band over the three
// injection moments (the gray band of Fig. 6).
//
// Measurement discipline: all variants of one size are timed inside the
// same trial loop (so machine noise hits them equally) and the minimum
// over trials is used — the standard robust estimator on shared machines.
//
//   --area 1|2|3   which Fig. 6 panel (default: all three in sequence)
//   --area 0       no-fault overhead curve only
//   --sizes a,b,c  size sweep; --paper for the paper's sizes
//   --nb           panel width (default 32)
//   --trials       timing repetitions per point (default 5, min taken)
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"
#include "hybrid/hybrid_gehrd.hpp"
#include "la/generate.hpp"

using namespace fth;

namespace {

constexpr int kVariants = 5;  // baseline, FT-nofault, FT-B, FT-M, FT-E

double run_baseline(hybrid::Device& dev, const Matrix<double>& a0, index_t nb) {
  Matrix<double> a(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(a0.rows() - 1));
  hybrid::HybridGehrdStats st;
  hybrid::hybrid_gehrd(dev, a.view(), VectorView<double>(tau.data(), a0.rows() - 1),
                       {.nb = nb, .nx = nb}, &st);
  return st.total_seconds;
}

double run_ft(hybrid::Device& dev, const Matrix<double>& a0, index_t nb,
              const fault::FaultSpec* spec, std::uint64_t seed) {
  Matrix<double> a(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(a0.rows() - 1));
  hybrid::HybridGehrdStats st;
  if (spec != nullptr) {
    fault::Injector inj(*spec, seed);
    ft::ft_gehrd(dev, a.view(), VectorView<double>(tau.data(), a0.rows() - 1), {.nb = nb},
                 &inj, nullptr, &st);
  } else {
    ft::ft_gehrd(dev, a.view(), VectorView<double>(tau.data(), a0.rows() - 1), {.nb = nb},
                 nullptr, nullptr, &st);
  }
  return st.total_seconds;
}

void run_panel(int area, const std::vector<index_t>& sizes, index_t nb, int trials,
               std::uint64_t seed, bench::Report& report) {
  if (area == 0) {
    std::printf("\n-- no-fault overhead (blue line of every Fig. 6 panel) --\n");
  } else {
    std::printf("\n-- Fig. 6(%c): one soft error in Area %d --\n",
                static_cast<char>('a' + area - 1), area);
  }
  std::printf("%8s %12s %12s %12s %12s %12s %12s %14s\n", "N", "MAGMA GF/s", "FT GF/s",
              "ovh0 (%)", "ovh B (%)", "ovh M (%)", "ovh E (%)", "band (%)");

  const fault::Moment moments[3] = {fault::Moment::Beginning, fault::Moment::Middle,
                                    fault::Moment::End};
  for (const index_t n : sizes) {
    // Dynamically built label: intern_name gives it the process lifetime the
    // recorder's pointer contract requires (a temporary's c_str() would
    // dangle by write time).
    const obs::TraceSpan size_span("bench", obs::intern_name("n=" + std::to_string(n)));
    hybrid::Device dev;
    Matrix<double> a0 = random_matrix(n, n, seed + static_cast<std::uint64_t>(n));

    double best[kVariants];
    std::fill(best, best + kVariants, 1e300);
    for (int rep = 0; rep < trials; ++rep) {
      best[0] = std::min(best[0], run_baseline(dev, a0, nb));
      best[1] = std::min(best[1], run_ft(dev, a0, nb, nullptr, 0));
      if (area >= 1 && area <= 3) {
        for (int m = 0; m < 3; ++m) {
          fault::FaultSpec spec;
          spec.area = static_cast<fault::Area>(area);
          spec.moment = moments[m];
          best[2 + m] = std::min(best[2 + m],
                                 run_ft(dev, a0, nb, &spec,
                                        seed + static_cast<std::uint64_t>(17 * m + n)));
        }
      }
    }

    auto ovh = [&](int v) { return 100.0 * (best[v] - best[0]) / best[0]; };
    const bool faults = area >= 1 && area <= 3;
    const double lo = faults ? std::min({ovh(2), ovh(3), ovh(4)}) : 0.0;
    const double hi = faults ? std::max({ovh(2), ovh(3), ovh(4)}) : 0.0;
    std::printf("%8lld %12.2f %12.2f %12.2f", static_cast<long long>(n),
                bench::gehrd_gflops(n, best[0]), bench::gehrd_gflops(n, best[1]), ovh(1));
    auto& row = report.row()
                    .set("area", area)
                    .set("n", n)
                    .set("magma_gflops", bench::gehrd_gflops(n, best[0]))
                    .set("ft_gflops", bench::gehrd_gflops(n, best[1]))
                    .set("overhead_nofault_pct", ovh(1));
    if (faults) {
      std::printf(" %12.2f %12.2f %12.2f %6.2f–%-6.2f\n", ovh(2), ovh(3), ovh(4), lo, hi);
      row.set("overhead_beginning_pct", ovh(2))
          .set("overhead_middle_pct", ovh(3))
          .set("overhead_end_pct", ovh(4));
    } else {
      std::printf(" %12s %12s %12s %14s\n", "-", "-", "-", "-");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto sizes = bench::sweep_sizes(opt);
  const index_t nb = opt.get_long("nb", 32);
  const int trials = static_cast<int>(opt.get_long("trials", 5));
  const long area = opt.get_long("area", -1);
  const std::uint64_t seed = static_cast<std::uint64_t>(opt.get_long("seed", 2016));

  bench::Report report(opt);
  report.note("nb", nb);
  report.note("trials", trials);
  report.note("seed", static_cast<long long>(seed));

  bench::banner("Fig. 6 — overhead of FT-Hess vs fault-prone hybrid Hessenberg",
                "Figure 6 (a)(b)(c), Section VI-A");
  std::printf("nb = %lld, trials = %d (minimum taken). Expected shape: overhead\n"
              "decreases with N (Section V: extra work is O(N^2) vs O(N^3)); Area 3\n"
              "cheapest with a flat band (recovery is one end-of-run pass).\n",
              static_cast<long long>(nb), trials);

  if (area >= 0) {
    run_panel(static_cast<int>(area), sizes, nb, trials, seed, report);
  } else {
    for (int a = 1; a <= 3; ++a) run_panel(a, sizes, nb, trials, seed, report);
  }
  return 0;
}

// Shared helpers for the experiment-reproduction benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <fstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/options.hpp"
#include "common/timer.hpp"
#include "la/matrix.hpp"
#include "obs/dag.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace fth::bench {

/// Default size sweep. The paper runs 1022..10110 on a 1.4 TFLOP/s GPU;
/// this container build scales the sweep down (see DESIGN.md §2) — the
/// overhead trend is O(1/N) and reproduces at any scale. `--paper`
/// restores the original sizes, `--sizes a,b,c` overrides explicitly.
inline std::vector<index_t> sweep_sizes(const Options& opt) {
  std::vector<index_t> fallback = {128, 192, 256, 384, 512, 768};
  if (opt.has("paper")) {
    fallback = {1022, 2046, 3070, 4030, 5182, 6014, 7038, 8062, 9086, 10110};
  }
  return opt.get_sizes("sizes", fallback);
}

/// Sizes for the (more expensive) residual studies: each run also forms Q.
inline std::vector<index_t> residual_sizes(const Options& opt) {
  std::vector<index_t> fallback = {128, 192, 256, 384, 512};
  if (opt.has("paper")) {
    fallback = {1022, 2046, 3070, 4030, 5182, 6014, 7038, 8062, 9086, 10110};
  }
  return opt.get_sizes("sizes", fallback);
}

/// Median of a (small) sample.
inline double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

/// GFLOP/s of a Hessenberg reduction that took `seconds`.
inline double gehrd_gflops(index_t n, double seconds) {
  const double dn = static_cast<double>(n);
  return seconds > 0 ? 10.0 / 3.0 * dn * dn * dn / seconds / 1e9 : 0.0;
}

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

/// Strip directories (and a Windows-style extension, defensively) from the
/// program path so reports are named after the binary.
inline std::string program_basename(const std::string& program) {
  const std::size_t slash = program.find_last_of('/');
  std::string name = slash == std::string::npos ? program : program.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  return name.empty() ? "bench" : name;
}

}  // namespace detail

/// Structured JSON run report. Every bench owns one: rows mirror the
/// printed tables, and the report footer embeds a snapshot of the global
/// fth::obs metrics registry plus a `profile` section (per-phase times,
/// host/device overlap, GF/s attribution — obs/profile.hpp), so a run
/// leaves a machine-readable `<bench-name>.json` next to bench_output.txt.
/// The profile window opens at construction and closes at the first
/// write(), so it covers exactly the measured run.
///
/// Shared flags handled here so every bench speaks the same vocabulary:
///   --report <path>    override the JSON output path
///   --trace [path]     record a Chrome/Perfetto trace of the whole run
///                      (default path `<bench-name>_trace.json`)
///   --profile          also print the attribution table to stdout
///   --dag [path]       record the execution DAG (obs/dag.hpp): dumps the
///                      full graph to `<bench-name>_dag.json` (for
///                      tools/fth_why), prints the critical-path/blocking
///                      summary, and embeds the `dag` section in the report
///   --roofline <gf/s>  dgemm roofline used as the GF/s denominator
///                      (FTH_ROOFLINE_GFLOPS env works too; run_benches.sh
///                      measures it once via tools/fth_roofline)
class Report {
 public:
  /// One measurement row: ordered key → JSON value. set() returns *this so
  /// call sites can chain one row per table line.
  class Row {
   public:
    template <class T, std::enable_if_t<std::is_arithmetic_v<T>, int> = 0>
    Row& set(const std::string& key, T value) {
      if constexpr (std::is_floating_point_v<T>) {
        fields_.emplace_back(key, detail::json_number(static_cast<double>(value)));
      } else {
        fields_.emplace_back(key, std::to_string(static_cast<long long>(value)));
      }
      return *this;
    }
    Row& set(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, "\"" + detail::json_escape(value) + "\"");
      return *this;
    }
    Row& set(const std::string& key, const char* value) {
      return set(key, std::string(value));
    }

   private:
    friend class Report;
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  Report(const Options& opt, const std::string& name)
      : name_(name),
        path_(opt.get("report", name + ".json")),
        print_profile_(opt.has("profile")) {
    if (opt.has("trace")) {
      obs::trace_start(opt.get("trace", name + "_trace.json"));
      started_trace_ = true;
    }
    if (opt.has("dag")) {
      dag_path_ = opt.get("dag", name + "_dag.json");
      obs::dag::start();
      started_dag_ = true;
    }
    obs::profile_start();  // the FTH_ROOFLINE_GFLOPS env is read here
    if (const double roof = opt.get_double("roofline", 0.0); roof > 0.0)
      obs::set_profile_roofline(roof);
  }
  explicit Report(const Options& opt)
      : Report(opt, detail::program_basename(opt.program())) {}

  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  ~Report() {
    write();
    if (started_trace_) obs::trace_stop();
  }

  /// Top-level annotation (run parameters: nb, trials, seed, ...).
  template <class T>
  void note(const std::string& key, T value) {
    notes_.set(key, value);
  }

  /// Append a measurement row. The reference stays valid for the lifetime
  /// of the report (deque storage).
  Row& row() { return rows_.emplace_back(); }

  /// Write the report JSON (also called by the destructor; idempotent by
  /// overwrite). Schema: {"bench", "notes", "rows", "metrics", "profile"}.
  /// The first write() closes the profile window (and prints the table
  /// under --profile); later writes reuse the captured section.
  void write() const {
    if (profile_json_.empty() && obs::profile_enabled()) {
      const obs::ProfileReport prof = obs::profile_stop();
      profile_json_ = prof.to_json();
      if (print_profile_) prof.print_table(stdout);
      if (started_dag_) capture_dag(prof);
    }
    std::ofstream os(path_);
    if (!os) return;
    os << "{\n  \"bench\": \"" << detail::json_escape(name_) << "\",\n";
    os << "  \"notes\": ";
    write_fields(os, notes_);
    os << ",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      os << (i == 0 ? "\n    " : ",\n    ");
      write_fields(os, rows_[i]);
    }
    os << (rows_.empty() ? "]" : "\n  ]") << ",\n  \"metrics\": "
       << obs::Registry::global().to_json() << ",\n  \"profile\": "
       << (profile_json_.empty() ? "{}" : profile_json_) << ",\n  \"dag\": "
       << (dag_json_.empty() ? "{}" : dag_json_) << "\n}\n";
  }

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static void write_fields(std::ostream& os, const Row& row) {
    os << "{";
    for (std::size_t i = 0; i < row.fields_.size(); ++i) {
      if (i > 0) os << ", ";
      os << "\"" << detail::json_escape(row.fields_[i].first)
         << "\": " << row.fields_[i].second;
    }
    os << "}";
  }

  /// Stop the DAG recorder, dump the full graph for fth_why, and build the
  /// report's `dag` section (analysis + standard what-if table). The
  /// roofline-gemm scenario compares against the measured device dgemm
  /// rate when both it and a roofline are available.
  void capture_dag(const obs::ProfileReport& prof) const {
    const obs::dag::Graph g = obs::dag::stop();
    if (!dag_path_.empty()) {
      std::ofstream dos(dag_path_);
      if (dos) dos << g.to_json() << "\n";
    }
    double dev_scale = 1.0;
    if (prof.roofline_gflops > 0.0)
      for (const obs::ProfilePhase& p : prof.phases)
        if (p.name == "gemm" && p.gflops > 0.0) dev_scale = p.gflops / prof.roofline_gflops;
    const obs::dag::Analysis analysis = obs::dag::analyze(g);
    std::vector<obs::dag::Prediction> what_if;
    for (const obs::dag::Scenario& sc : obs::dag::default_scenarios(dev_scale))
      what_if.push_back(obs::dag::simulate(g, sc));
    dag_json_ = obs::dag::section_json(g, analysis, what_if);
    obs::dag::print_analysis(g, analysis, what_if, stdout);
  }

  std::string name_;
  std::string path_;
  std::string dag_path_;
  Row notes_;
  std::deque<Row> rows_;
  bool started_trace_ = false;
  bool started_dag_ = false;
  bool print_profile_ = false;
  mutable std::string profile_json_;  // captured at the first write()
  mutable std::string dag_json_;      // `dag` section, captured with it
};

/// Standard bench banner.
inline void banner(const char* title, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("Jia, Luszczek, Dongarra — \"Hessenberg Reduction with Transient\n");
  std::printf("Error Resilience on GPU-Based Hybrid Architectures\", IPDPSW'16\n");
  std::printf("================================================================\n");
}

}  // namespace fth::bench

// Shared helpers for the experiment-reproduction benches.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "common/timer.hpp"
#include "la/matrix.hpp"

namespace fth::bench {

/// Default size sweep. The paper runs 1022..10110 on a 1.4 TFLOP/s GPU;
/// this container build scales the sweep down (see DESIGN.md §2) — the
/// overhead trend is O(1/N) and reproduces at any scale. `--paper`
/// restores the original sizes, `--sizes a,b,c` overrides explicitly.
inline std::vector<index_t> sweep_sizes(const Options& opt) {
  std::vector<index_t> fallback = {128, 192, 256, 384, 512, 768};
  if (opt.has("paper")) {
    fallback = {1022, 2046, 3070, 4030, 5182, 6014, 7038, 8062, 9086, 10110};
  }
  return opt.get_sizes("sizes", fallback);
}

/// Sizes for the (more expensive) residual studies: each run also forms Q.
inline std::vector<index_t> residual_sizes(const Options& opt) {
  std::vector<index_t> fallback = {128, 192, 256, 384, 512};
  if (opt.has("paper")) {
    fallback = {1022, 2046, 3070, 4030, 5182, 6014, 7038, 8062, 9086, 10110};
  }
  return opt.get_sizes("sizes", fallback);
}

/// Median of a (small) sample.
inline double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

/// GFLOP/s of a Hessenberg reduction that took `seconds`.
inline double gehrd_gflops(index_t n, double seconds) {
  const double dn = static_cast<double>(n);
  return seconds > 0 ? 10.0 / 3.0 * dn * dn * dn / seconds / 1e9 : 0.0;
}

/// Standard bench banner.
inline void banner(const char* title, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("Jia, Luszczek, Dongarra — \"Hessenberg Reduction with Transient\n");
  std::printf("Error Resilience on GPU-Based Hybrid Architectures\", IPDPSW'16\n");
  std::printf("================================================================\n");
}

}  // namespace fth::bench

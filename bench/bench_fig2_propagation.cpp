// Fig. 2 reproduction: propagation pattern of soft errors injected at three
// locations of a 158×158 reduction (nb = 32), after the first iteration.
//
// The paper renders heat maps of |faulty result − fault-free result|; here
// each panel prints an ASCII heat map (max-pooled, log-magnitude ramp) plus
// the polluted-element count, demonstrating the three regimes:
//   area 3 (Q storage)      — the error does not propagate (one hot pixel),
//   area 1 (upper trailing) — row-wise pollution,
//   area 2 (lower trailing) — pollution of the whole trailing matrix.
#include <cstdio>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "fault/injector.hpp"
#include "hybrid/hybrid_gehrd.hpp"
#include "la/generate.hpp"
#include "la/io.hpp"
#include "la/norms.hpp"

using namespace fth;

namespace {

struct Case {
  const char* label;
  index_t row, col;  // 0-based (the paper quotes 1-based coordinates)
  const char* expectation;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const index_t n = opt.get_long("n", 158);
  const index_t nb = opt.get_long("nb", 32);
  const std::uint64_t seed = static_cast<std::uint64_t>(opt.get_long("seed", 2016));
  const double magnitude = opt.get_double("magnitude", 100.0);

  bench::banner("Fig. 2 — propagation pattern of errors at different locations",
                "Figure 2 (a)-(d), Section IV-A");

  bench::Report report(opt);
  report.note("n", n);
  report.note("nb", nb);
  report.note("magnitude", magnitude);
  std::printf("N = %lld, nb = %lld, error injected after iteration 1, delta = %g*max|A|\n\n",
              static_cast<long long>(n), static_cast<long long>(nb), magnitude);

  // Paper coordinates (1-based): (53,16) area 3, (31,127) area 1, (63,127) area 2.
  const Case cases[] = {
      {"Fig 2(b): error in area 3 (Q storage)", 52, 15, "single polluted element"},
      {"Fig 2(c): error in area 1 (upper trailing)", 30, 126, "row-wise pollution"},
      {"Fig 2(d): error in area 2 (lower trailing)", 62, 126, "trailing-matrix pollution"},
  };

  Matrix<double> a0 = random_matrix(n, n, seed);
  const double scale = norm_max(a0.cview());

  // Fault-free reference with the NON fault tolerant hybrid algorithm.
  Matrix<double> clean(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  hybrid::Device dev;
  hybrid::hybrid_gehrd(dev, clean.view(), VectorView<double>(tau.data(), n - 1),
                       {.nb = nb, .nx = nb});

  for (const Case& c : cases) {
    Matrix<double> a(a0.cview());
    hybrid::hybrid_gehrd(
        dev, a.view(), VectorView<double>(tau.data(), n - 1), {.nb = nb, .nx = nb}, nullptr,
        [&](const hybrid::IterationHookContext& ctx) {
          if (ctx.boundary != 1) return;
          // Area 3 data lives on the host (Householder storage); trailing
          // data lives on the device.
          if (c.col < ctx.next_panel) {
            ctx.host_a(c.row, c.col) += magnitude * scale;
          } else {
            ctx.dev_a(c.row, c.col) += magnitude * scale;
          }
        });

    Matrix<double> diff(n, n);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i) diff(i, j) = a(i, j) - clean(i, j);

    const index_t polluted = count_diff(a.cview(), clean.cview(), 1e-10 * scale);
    report.row()
        .set("label", c.label)
        .set("row", c.row)
        .set("col", c.col)
        .set("area", fault::to_string(fault::classify(c.row, c.col, nb)))
        .set("polluted_elements", polluted)
        .set("polluted_pct",
             100.0 * static_cast<double>(polluted) / static_cast<double>(n * n));
    std::printf("---- %s ----\n", c.label);
    std::printf("injected at (%lld, %lld) [paper 1-based: (%lld, %lld)], area %s\n",
                static_cast<long long>(c.row), static_cast<long long>(c.col),
                static_cast<long long>(c.row + 1), static_cast<long long>(c.col + 1),
                fault::to_string(fault::classify(c.row, c.col, nb)).c_str());
    std::printf("expected: %s; polluted elements: %lld / %lld (%.2f%%)\n", c.expectation,
                static_cast<long long>(polluted), static_cast<long long>(n * n),
                100.0 * static_cast<double>(polluted) / static_cast<double>(n * n));
    std::printf("|diff| heat map ('.'=clean, '1'..'9' = log-magnitude):\n%s\n",
                ascii_heatmap(diff.cview(), 52).c_str());
  }

  std::printf("Series summary (pollution %% of matrix): area3 ≈ 0, area1 ≈ one row of the\n");
  std::printf("trailing part, area2 ≈ the entire trailing block — matching Fig. 2(b)-(d).\n");
  return 0;
}

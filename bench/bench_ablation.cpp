// Ablation studies for the design choices DESIGN.md calls out.
//
//  (1) Detection-threshold sweep: the paper prescribes a threshold "2 to 3
//      orders of magnitude above machine epsilon" — large enough to avoid
//      false positives from round-off, small enough to catch real faults.
//      This study measures, per threshold factor, the fault-free gap
//      margin and the smallest injected magnitude still detected.
//  (2) Block-size sweep: overhead vs nb (the panel width trades panel
//      serialization against update efficiency; the checksum work is
//      O(N²) regardless).
//  (3) Q-protection on/off: the cost of the Section IV-E machinery that
//      the paper hides on the idle CPU.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"
#include "hybrid/hybrid_gehrd.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"

using namespace fth;

namespace {

double run_ft(hybrid::Device& dev, const Matrix<double>& a0, const ft::FtOptions& opt,
              fault::Injector* inj, ft::FtReport* rep) {
  const index_t n = a0.rows();
  Matrix<double> a(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  hybrid::HybridGehrdStats st;
  ft::ft_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1), opt, inj, rep, &st);
  return st.total_seconds;
}

void threshold_sweep(index_t n, index_t nb, bench::Report& report) {
  std::printf("\n-- (1) detection-threshold sweep (n = %lld, nb = %lld) --\n",
              static_cast<long long>(n), static_cast<long long>(nb));
  std::printf("%12s %14s %14s %22s\n", "factor", "threshold", "clean gap", "min detected |delta|");
  hybrid::Device dev;
  Matrix<double> a0 = random_matrix(n, n, 99);

  for (double factor : {10.0, 100.0, 500.0, 1e4, 1e6, 1e8}) {
    ft::FtOptions opt;
    opt.nb = nb;
    opt.threshold_factor = factor;
    opt.final_sweep = false;  // isolate the per-iteration detector

    ft::FtReport clean_rep;
    run_ft(dev, a0, opt, nullptr, &clean_rep);
    const bool false_positive = clean_rep.detections > 0;

    // Bisect the smallest absolute fault magnitude that still trips the
    // per-iteration check (coarse decade scan is plenty here).
    double min_detected = -1.0;
    for (double mag = 1e-14; mag <= 1e2; mag *= 10.0) {
      fault::FaultSpec spec;
      spec.area = fault::Area::LowerTrailing;
      spec.boundary = 1;
      spec.relative = false;
      spec.magnitude = mag;
      fault::Injector inj(spec, 5);
      ft::FtReport rep;
      run_ft(dev, a0, opt, &inj, &rep);
      if (rep.detections > 0) {
        min_detected = mag;
        break;
      }
    }
    std::printf("%12.0e %14.3e %14.3e %22.1e%s\n", factor, clean_rep.threshold,
                clean_rep.max_fault_free_gap, min_detected,
                false_positive ? "   FALSE POSITIVES on clean data!" : "");
    report.row()
        .set("study", "threshold_sweep")
        .set("factor", factor)
        .set("threshold", clean_rep.threshold)
        .set("clean_gap", clean_rep.max_fault_free_gap)
        .set("min_detected_delta", min_detected)
        .set("false_positive", false_positive ? 1 : 0);
  }
  std::printf("take-away: factors ~1e2–1e4 leave orders of magnitude between the\n");
  std::printf("round-off gap and the smallest meaningful fault — the paper's guidance.\n");
}

void nb_sweep(index_t n, int trials, bench::Report& report) {
  std::printf("\n-- (2) block-size sweep (n = %lld, min of %d) --\n",
              static_cast<long long>(n), trials);
  std::printf("%8s %12s %12s %12s\n", "nb", "base (s)", "FT (s)", "overhead %");
  for (index_t nb : {8, 16, 32, 64, 128}) {
    hybrid::Device dev;
    Matrix<double> a0 = random_matrix(n, n, 7);
    double best_base = 1e300, best_ft = 1e300;
    for (int rep = 0; rep < trials; ++rep) {
      {
        Matrix<double> a(a0.cview());
        std::vector<double> tau(static_cast<std::size_t>(n - 1));
        hybrid::HybridGehrdStats st;
        hybrid::hybrid_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1),
                             {.nb = nb, .nx = nb}, &st);
        best_base = std::min(best_base, st.total_seconds);
      }
      best_ft = std::min(best_ft, run_ft(dev, a0, {.nb = nb}, nullptr, nullptr));
    }
    std::printf("%8lld %12.4f %12.4f %12.2f\n", static_cast<long long>(nb), best_base,
                best_ft, 100.0 * (best_ft - best_base) / best_base);
    report.row()
        .set("study", "nb_sweep")
        .set("nb", nb)
        .set("base_seconds", best_base)
        .set("ft_seconds", best_ft)
        .set("overhead_pct", 100.0 * (best_ft - best_base) / best_base);
  }
}

void q_protection_cost(index_t n, int trials, bench::Report& report) {
  std::printf("\n-- (3) Q-protection cost (n = %lld, min of %d) --\n",
              static_cast<long long>(n), trials);
  hybrid::Device dev;
  Matrix<double> a0 = random_matrix(n, n, 8);
  double with_q = 1e300, without_q = 1e300;
  for (int rep = 0; rep < trials; ++rep) {
    ft::FtOptions on;
    on.nb = 32;
    with_q = std::min(with_q, run_ft(dev, a0, on, nullptr, nullptr));
    ft::FtOptions off;
    off.nb = 32;
    off.protect_q = false;
    without_q = std::min(without_q, run_ft(dev, a0, off, nullptr, nullptr));
  }
  report.row()
      .set("study", "q_protection")
      .set("with_q_seconds", with_q)
      .set("without_q_seconds", without_q)
      .set("marginal_cost_pct", 100.0 * (with_q - without_q) / without_q);
  std::printf("with Q protection   : %.4f s\n", with_q);
  std::printf("without Q protection: %.4f s\n", without_q);
  std::printf("marginal cost       : %.2f%%  (the paper hides this on the idle CPU;\n"
              "                      on a shared single core it is visible but small)\n",
              100.0 * (with_q - without_q) / without_q);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const index_t n = opt.get_long("n", 256);
  const index_t nb = opt.get_long("nb", 32);
  const int trials = static_cast<int>(opt.get_long("trials", 3));

  bench::banner("Ablations — threshold factor, block size, Q protection",
                "Section IV-C threshold guidance; Section IV-E overlap; design choices");
  bench::Report report(opt);
  report.note("n", n);
  report.note("nb", nb);
  report.note("trials", trials);
  threshold_sweep(n, nb, report);
  nb_sweep(n, trials, report);
  q_protection_cost(n, trials, report);
  return 0;
}

// Table III reproduction: orthogonality of the recovered Q under one
// injected soft error, per area × moment, vs the fault-prone baseline.
// Residual: ‖QQᵀ − I‖₁ / N.
//
// Expected shape (paper Section VI-C): Areas 1/2 identical order to the
// baseline (~1e-17 on the paper's testbed); Area 3 larger but comparable —
// "the orthogonality of Q is not damaged after the recovery from an error".
#include <cstdio>

#include "residual_study.hpp"

using namespace fth;

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto sizes = bench::residual_sizes(opt);
  const index_t nb = opt.get_long("nb", 32);
  const std::uint64_t seed = static_cast<std::uint64_t>(opt.get_long("seed", 2016));

  bench::banner("Table III — orthogonality of Q, r = ||Q Q^T - I||_1 / N",
                "Table III, Section VI-C");
  std::printf("nb = %lld; one soft error per run (B/M/E = beginning/middle/end)\n\n",
              static_cast<long long>(nb));

  bench::Report report(opt);
  report.note("nb", nb);
  report.note("residual", "||Q Q^T - I||_1 / N");

  std::vector<bench::ResidualRow> rows;
  for (const index_t n : sizes)
    rows.push_back(bench::run_residual_row(n, nb, seed + static_cast<std::uint64_t>(n)));
  bench::print_residual_table(rows, 1);
  bench::report_residual_rows(report, rows, 1);

  std::printf("\nshape check: A1/A2 columns ~ MAGMA column; A3 larger but comparable\n");
  return 0;
}

// Shared driver for the Table II / Table III reproductions: run the
// baseline and the FT algorithm with one fault per (area × moment) cell
// and collect both result-quality residuals.
#pragma once

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"
#include "hybrid/hybrid_gehrd.hpp"
#include "la/generate.hpp"
#include "lapack/verify.hpp"

namespace fth::bench {

struct ResidualRow {
  index_t n = 0;
  lapack::VerifyResult magma;            // fault-prone hybrid baseline
  lapack::VerifyResult ft[3][3];         // [area-1][moment] with one fault
};

inline ResidualRow run_residual_row(index_t n, index_t nb, std::uint64_t seed) {
  ResidualRow row;
  row.n = n;
  hybrid::Device dev;
  Matrix<double> a0 = random_matrix(n, n, seed);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));

  {
    Matrix<double> a(a0.cview());
    hybrid::hybrid_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1),
                         {.nb = nb, .nx = nb});
    row.magma = lapack::verify_reduction(a0.cview(), a.cview(),
                                         VectorView<const double>(tau.data(), n - 1));
  }

  const fault::Moment moments[3] = {fault::Moment::Beginning, fault::Moment::Middle,
                                    fault::Moment::End};
  for (int area = 1; area <= 3; ++area) {
    for (int m = 0; m < 3; ++m) {
      fault::FaultSpec spec;
      spec.area = static_cast<fault::Area>(area);
      spec.moment = moments[m];
      fault::Injector inj(spec, seed + static_cast<std::uint64_t>(area * 31 + m * 7));
      Matrix<double> a(a0.cview());
      ft::ft_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1), {.nb = nb}, &inj);
      row.ft[area - 1][m] = lapack::verify_reduction(
          a0.cview(), a.cview(), VectorView<const double>(tau.data(), n - 1));
    }
  }
  return row;
}

/// which = 0 → Table II (backward-stability residual ‖A−QHQᵀ‖₁/(N‖A‖₁));
/// which = 1 → Table III (orthogonality ‖QQᵀ−I‖₁/N).
inline void print_residual_table(const std::vector<ResidualRow>& rows, int which) {
  auto pick = [&](const lapack::VerifyResult& v) {
    return which == 0 ? v.residual : v.orthogonality;
  };
  std::printf("%7s %12s | %12s %12s %12s | %12s %12s %12s | %12s\n", "N", "MAGMA",
              "A1 FT-B", "A1 FT-M", "A1 FT-E", "A2 FT-B", "A2 FT-M", "A2 FT-E",
              "A3 FT-B/M/E");
  for (const auto& r : rows) {
    std::printf("%7lld %12.4e | %12.4e %12.4e %12.4e | %12.4e %12.4e %12.4e | %12.4e\n",
                static_cast<long long>(r.n), pick(r.magma), pick(r.ft[0][0]),
                pick(r.ft[0][1]), pick(r.ft[0][2]), pick(r.ft[1][0]), pick(r.ft[1][1]),
                pick(r.ft[1][2]), pick(r.ft[2][1]));
  }
}

/// Mirror one residual table into the JSON report (same `which` selector).
inline void report_residual_rows(Report& report, const std::vector<ResidualRow>& rows,
                                 int which) {
  auto pick = [&](const lapack::VerifyResult& v) {
    return which == 0 ? v.residual : v.orthogonality;
  };
  static const char* kMoments[3] = {"beginning", "middle", "end"};
  for (const auto& r : rows) {
    report.row().set("n", r.n).set("variant", "magma").set("value", pick(r.magma));
    for (int area = 1; area <= 3; ++area) {
      for (int m = 0; m < 3; ++m) {
        report.row()
            .set("n", r.n)
            .set("variant", "ft")
            .set("area", area)
            .set("moment", kMoments[m])
            .set("value", pick(r.ft[area - 1][m]));
      }
    }
  }
}

}  // namespace fth::bench

// Pool scaling study: the sharded multi-device reduction (ft::pool_gehrd)
// across pool widths D, clean and while absorbing one injected device loss.
//
// Not a paper figure — the paper's platform is a single GPU. This bench
// extends its Section VI methodology to the coded multi-device driver
// (DESIGN.md §13): per (D, N) it reports the clean pool rate, the rate with
// one mid-run hard-death loss, the loss overhead, and the driver's
// deterministic recovery ledger (losses / reconstructions / remaps), which
// the CI gate pins exactly. D=1 is the degenerate pool (no parity member,
// a loss would escalate), so its loss columns are dashes.
//
//   --devices a,b,c  pool widths to sweep (default 1,3)
//   --sizes a,b,c    matrix sizes (default 128,256)
//   --nb             panel width (default 32)
//   --trials         timing repetitions per point (default 3, min taken)
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "fault/fault_plane.hpp"
#include "ft/pool_gehrd.hpp"
#include "hybrid/pool.hpp"
#include "la/generate.hpp"

using namespace fth;

namespace {

double run_pool(int devices, const Matrix<double>& a0, index_t nb,
                fault::FaultPlane* plane, ft::PoolGehrdReport* rep) {
  hybrid::DevicePool pool({.devices = devices});
  Matrix<double> a(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(a0.rows() - 1));
  ft::PoolGehrdOptions opt;
  opt.nb = nb;
  opt.nx = nb;  // force the pool path even at bench-scale sizes
  opt.plane = plane;
  WallTimer t;
  ft::pool_gehrd(pool, a.view(), VectorView<double>(tau.data(), a0.rows() - 1), opt, rep);
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto devices = opt.get_sizes("devices", {1, 3});
  const auto sizes = opt.get_sizes("sizes", {128, 256});
  const index_t nb = opt.get_long("nb", 32);
  const int trials = static_cast<int>(opt.get_long("trials", 3));
  const std::uint64_t seed = static_cast<std::uint64_t>(opt.get_long("seed", 2016));

  bench::Report report(opt);
  report.note("nb", nb);
  report.note("trials", trials);
  report.note("seed", static_cast<long long>(seed));

  bench::banner("Pool scaling — sharded multi-device reduction under device loss",
                "extension of Section VI to the coded device pool (DESIGN.md §13)");
  std::printf("nb = %lld, trials = %d (minimum taken). The loss run arms one\n"
              "hard-death strike mid-schedule on device 0; recovery reconstructs\n"
              "the shard from parity + survivors and remaps it — no rollback.\n",
              static_cast<long long>(nb), trials);
  std::printf("\n%4s %8s %12s %12s %12s %8s %8s %8s\n", "D", "N", "clean GF/s",
              "loss GF/s", "loss ovh (%)", "losses", "rebuilt", "remaps");

  for (const index_t d : devices) {
    const int dd = static_cast<int>(d);
    for (const index_t n : sizes) {
      const obs::TraceSpan span(
          "bench", obs::intern_name("d=" + std::to_string(dd) + ",n=" + std::to_string(n)));
      const Matrix<double> a0 =
          random_matrix(n, n, seed + static_cast<std::uint64_t>(13 * dd + n));

      // Clean timing — the first rep doubles as the strike-schedule
      // calibration run (an idle plane rides along counting tasks).
      double clean_best = 1e300;
      std::uint64_t victim_tasks = 0;
      ft::PoolGehrdReport crep;
      for (int rep = 0; rep < trials; ++rep) {
        if (rep == 0 && dd >= 2) {
          fault::FaultPlane counter(seed);
          clean_best = std::min(clean_best, run_pool(dd, a0, nb, &counter, &crep));
          victim_tasks = counter.pool_task_count(0);
        } else {
          clean_best = std::min(clean_best, run_pool(dd, a0, nb, nullptr, &crep));
        }
      }

      auto& row = report.row()
                      .set("devices", dd)
                      .set("n", n)
                      .set("clean_seconds", clean_best)
                      .set("clean_gflops", bench::gehrd_gflops(n, clean_best));
      std::printf("%4d %8lld %12.2f", dd, static_cast<long long>(n),
                  bench::gehrd_gflops(n, clean_best));

      if (dd >= 2 && victim_tasks >= 2) {
        // One hard death on device 0 halfway through its schedule, every rep.
        double loss_best = 1e300;
        ft::PoolGehrdReport lrep;
        for (int rep = 0; rep < trials; ++rep) {
          fault::FaultPlane plane(seed ^ 0xDEADull);
          plane.arm_device_loss({.kind = fault::LossKind::HardDeath,
                                 .device = 0,
                                 .countdown = victim_tasks / 2});
          loss_best = std::min(loss_best, run_pool(dd, a0, nb, &plane, &lrep));
        }
        const double ovh = 100.0 * (loss_best - clean_best) / clean_best;
        std::printf(" %12.2f %12.2f %8d %8d %8d\n", bench::gehrd_gflops(n, loss_best), ovh,
                    lrep.losses, lrep.reconstructions, lrep.remaps);
        row.set("loss_seconds", loss_best)
            .set("loss_gflops", bench::gehrd_gflops(n, loss_best))
            .set("loss_overhead_pct", ovh)
            .set("losses", lrep.losses)
            .set("reconstructions", lrep.reconstructions)
            .set("remaps", lrep.remaps)
            .set("degraded", lrep.degraded ? 1 : 0);
      } else {
        std::printf(" %12s %12s %8s %8s %8s\n", "-", "-", "-", "-", "-");
      }
    }
  }
  return 0;
}

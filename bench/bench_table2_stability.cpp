// Table II reproduction: numerical stability of FT-Hess under one injected
// soft error, per area × moment, vs the fault-prone hybrid baseline.
// Residual: ‖A − QHQᵀ‖₁ / (N·‖A‖₁).
//
// Expected shape (paper Section VI-B): Area 1 and Area 2 residuals match
// the baseline's order of magnitude; Area 3 (recovery through the Q
// checksums) is a few orders larger but still acceptable — the extra error
// comes from the dot-product encode/recover arithmetic.
#include <cstdio>

#include "residual_study.hpp"

using namespace fth;

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto sizes = bench::residual_sizes(opt);
  const index_t nb = opt.get_long("nb", 32);
  const std::uint64_t seed = static_cast<std::uint64_t>(opt.get_long("seed", 2016));

  bench::banner("Table II — numerical stability, r = ||A - Q H Q^T||_1 / (N ||A||_1)",
                "Table II, Section VI-B");
  std::printf("nb = %lld; one soft error per run (B/M/E = beginning/middle/end)\n\n",
              static_cast<long long>(nb));

  bench::Report report(opt);
  report.note("nb", nb);
  report.note("residual", "||A - Q H Q^T||_1 / (N ||A||_1)");

  std::vector<bench::ResidualRow> rows;
  for (const index_t n : sizes)
    rows.push_back(bench::run_residual_row(n, nb, seed + static_cast<std::uint64_t>(n)));
  bench::print_residual_table(rows, 0);
  bench::report_residual_rows(report, rows, 0);

  std::printf("\nshape check: A1/A2 columns ~ MAGMA column; A3 column larger but bounded\n");
  return 0;
}

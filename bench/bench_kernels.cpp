// google-benchmark microbenchmarks for the kernels the reduction is built
// from — useful when tuning block sizes or porting the BLAS.
#include <benchmark/benchmark.h>

#include "ft/checksum.hpp"
#include "la/blas2.hpp"
#include "la/blas3.hpp"
#include "la/generate.hpp"
#include "lapack/gehrd.hpp"
#include "lapack/orghr.hpp"
#include "lapack/reflectors.hpp"

using namespace fth;

namespace {

void BM_gemm(benchmark::State& state) {
  const index_t n = state.range(0);
  Matrix<double> a = random_matrix(n, n, 1);
  Matrix<double> b = random_matrix(n, n, 2);
  Matrix<double> c(n, n);
  for (auto _ : state) {
    blas::gemm(Trans::No, Trans::No, 1.0, a.cview(), b.cview(), 0.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  const double dn = static_cast<double>(n);
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * dn * dn * dn * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_gemv(benchmark::State& state) {
  const index_t n = state.range(0);
  Matrix<double> a = random_matrix(n, n, 3);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  for (auto _ : state) {
    blas::gemv(Trans::No, 1.0, a.cview(), VectorView<const double>(x.data(), n), 0.0,
               VectorView<double>(y.data(), n));
    benchmark::DoNotOptimize(y.data());
  }
  const double dn = static_cast<double>(n);
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * dn * dn * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_gemv)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMicrosecond);

void BM_larfb(benchmark::State& state) {
  const index_t m = state.range(0);
  const index_t k = 32;
  Matrix<double> a = random_matrix(m + 1, m + 1, 4);
  std::vector<double> tau(static_cast<std::size_t>(m));
  lapack::gehrd(a.view(), VectorView<double>(tau.data(), m), {.nb = k, .nx = k});
  Matrix<double> v = lapack::materialize_v(a.cview(), 0, k);
  Matrix<double> t(k, k);
  lapack::larft(Direction::Forward, StoreV::Columnwise, v.cview(),
                VectorView<const double>(tau.data(), k), t.view());
  Matrix<double> c = random_matrix(m, m, 5);
  Matrix<double> work(m, k);
  for (auto _ : state) {
    lapack::larfb(Side::Left, Trans::Yes, Direction::Forward, StoreV::Columnwise, v.cview(),
                  t.cview(), c.view(), work.view());
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_larfb)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_lahr2_panel(benchmark::State& state) {
  const index_t n = state.range(0);
  const index_t nb = 32;
  Matrix<double> a0 = random_matrix(n, n, 6);
  Matrix<double> t(nb, nb);
  Matrix<double> y(n, nb);
  std::vector<double> tau(static_cast<std::size_t>(nb));
  for (auto _ : state) {
    state.PauseTiming();
    Matrix<double> a(a0.cview());
    state.ResumeTiming();
    lapack::lahr2(a.view(), 0, nb, t.view(), y.view(),
                  VectorView<double>(tau.data(), nb));
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_lahr2_panel)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_gehrd(benchmark::State& state) {
  const index_t n = state.range(0);
  Matrix<double> a0 = random_matrix(n, n, 7);
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  for (auto _ : state) {
    state.PauseTiming();
    Matrix<double> a(a0.cview());
    state.ResumeTiming();
    lapack::gehrd(a.view(), VectorView<double>(tau.data(), n - 1), {});
    benchmark::DoNotOptimize(a.data());
  }
  const double dn = static_cast<double>(n);
  state.counters["GFLOP/s"] = benchmark::Counter(
      10.0 / 3.0 * dn * dn * dn * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_gehrd)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_encode_extended(benchmark::State& state) {
  const index_t n = state.range(0);
  Matrix<double> a = random_matrix(n, n, 8);
  for (auto _ : state) {
    Matrix<double> ext = ft::encode_extended(a.cview());
    benchmark::DoNotOptimize(ext.data());
  }
}
BENCHMARK(BM_encode_extended)->Arg(256)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_detection_gap(benchmark::State& state) {
  const index_t n = state.range(0);
  Matrix<double> ext = ft::encode_extended(random_matrix(n, n, 9).cview());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ft::detection_gap(ext.cview()));
  }
}
BENCHMARK(BM_detection_gap)->Arg(1024)->Arg(4096)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();

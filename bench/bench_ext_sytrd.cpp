// Extension bench: the paper's future-work claim, made concrete.
//
// Section VII: "the methodology highlighted in this paper is generic
// enough to be applicable to the entire spectrum of two-sided
// factorizations ... we plan to provide soft error resilience for the
// rest of the hybrid two-sided factorizations in MAGMA." This bench
// measures the FT symmetric tridiagonal reduction (ft_sytrd) against its
// fault-prone hybrid baseline the same way Fig. 6 measures ft_gehrd, and
// sweeps the detect_every knob that amortizes the symmetric scheme's
// SYMV-priced detection.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "fault/injector.hpp"
#include "ft/ft_sytrd.hpp"
#include "hybrid/hybrid_sytrd.hpp"
#include "la/generate.hpp"

using namespace fth;

namespace {

double run_baseline(hybrid::Device& dev, const Matrix<double>& a0, index_t nb) {
  const index_t n = a0.rows();
  Matrix<double> a(a0.cview());
  std::vector<double> d(static_cast<std::size_t>(n)), e(static_cast<std::size_t>(n - 1)),
      tau(static_cast<std::size_t>(n - 1));
  hybrid::HybridGehrdStats st;
  hybrid::hybrid_sytrd(dev, a.view(), VectorView<double>(d.data(), n),
                       VectorView<double>(e.data(), n - 1),
                       VectorView<double>(tau.data(), n - 1), {.nb = nb, .nx = nb}, &st);
  return st.total_seconds;
}

double run_ft(hybrid::Device& dev, const Matrix<double>& a0, const ft::FtSytrdOptions& opt,
              const fault::FaultSpec* spec, std::uint64_t seed) {
  const index_t n = a0.rows();
  Matrix<double> a(a0.cview());
  std::vector<double> d(static_cast<std::size_t>(n)), e(static_cast<std::size_t>(n - 1)),
      tau(static_cast<std::size_t>(n - 1));
  hybrid::HybridGehrdStats st;
  if (spec != nullptr) {
    fault::Injector inj(*spec, seed);
    ft::ft_sytrd(dev, a.view(), VectorView<double>(d.data(), n),
                 VectorView<double>(e.data(), n - 1), VectorView<double>(tau.data(), n - 1),
                 opt, &inj, nullptr, &st);
  } else {
    ft::ft_sytrd(dev, a.view(), VectorView<double>(d.data(), n),
                 VectorView<double>(e.data(), n - 1), VectorView<double>(tau.data(), n - 1),
                 opt, nullptr, nullptr, &st);
  }
  return st.total_seconds;
}

double sytrd_gflops(index_t n, double seconds) {
  const double dn = static_cast<double>(n);
  return seconds > 0 ? 4.0 / 3.0 * dn * dn * dn / seconds / 1e9 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto sizes = opt.get_sizes("sizes", {128, 256, 384, 512, 768});
  const index_t nb = opt.get_long("nb", 32);
  const int trials = static_cast<int>(opt.get_long("trials", 5));
  const std::uint64_t seed = static_cast<std::uint64_t>(opt.get_long("seed", 2016));

  bench::banner("Extension — FT symmetric tridiagonal reduction (sytrd)",
                "Section VII future work: resilience for the other two-sided factorizations");
  std::printf("nb = %lld, trials = %d (minimum). Same protocol as Fig. 6: one fault\n"
              "in area 2 at B/M/E; overhead vs the fault-prone hybrid sytrd.\n",
              static_cast<long long>(nb), trials);

  bench::Report report(opt);
  report.note("nb", nb);
  report.note("trials", trials);

  std::printf("\n%8s %12s %12s %12s %12s %14s\n", "N", "hybrid GF/s", "FT GF/s", "ovh0 (%)",
              "ovh k=4 (%)", "fault band (%)");
  const fault::Moment moments[3] = {fault::Moment::Beginning, fault::Moment::Middle,
                                    fault::Moment::End};
  for (const index_t n : sizes) {
    hybrid::Device dev;
    Matrix<double> a0 = random_symmetric_matrix(n, seed + static_cast<std::uint64_t>(n));

    double best_base = 1e300, best_ft = 1e300, best_ft4 = 1e300;
    double best_fault[3] = {1e300, 1e300, 1e300};
    for (int rep = 0; rep < trials; ++rep) {
      best_base = std::min(best_base, run_baseline(dev, a0, nb));
      best_ft = std::min(best_ft, run_ft(dev, a0, {.nb = nb}, nullptr, 0));
      ft::FtSytrdOptions amortized;
      amortized.nb = nb;
      amortized.detect_every = 4;
      best_ft4 = std::min(best_ft4, run_ft(dev, a0, amortized, nullptr, 0));
      for (int m = 0; m < 3; ++m) {
        fault::FaultSpec spec;
        spec.area = fault::Area::LowerTrailing;
        spec.moment = moments[m];
        best_fault[m] = std::min(
            best_fault[m],
            run_ft(dev, a0, {.nb = nb}, &spec, seed + static_cast<std::uint64_t>(m)));
      }
    }
    auto ovh = [&](double t) { return 100.0 * (t - best_base) / best_base; };
    const double lo = std::min({ovh(best_fault[0]), ovh(best_fault[1]), ovh(best_fault[2])});
    const double hi = std::max({ovh(best_fault[0]), ovh(best_fault[1]), ovh(best_fault[2])});
    std::printf("%8lld %12.2f %12.2f %12.2f %12.2f %6.2f–%-6.2f\n",
                static_cast<long long>(n), sytrd_gflops(n, best_base),
                sytrd_gflops(n, best_ft), ovh(best_ft), ovh(best_ft4), lo, hi);
    report.row()
        .set("n", n)
        .set("hybrid_gflops", sytrd_gflops(n, best_base))
        .set("ft_gflops", sytrd_gflops(n, best_ft))
        .set("overhead_nofault_pct", ovh(best_ft))
        .set("overhead_detect_every4_pct", ovh(best_ft4))
        .set("fault_band_lo_pct", lo)
        .set("fault_band_hi_pct", hi);
  }
  std::printf("\nshape check: overhead decreasing with N; detect_every=4 below the\n");
  std::printf("per-iteration column; fault band near the no-fault line (one rollback).\n");
  return 0;
}

// Section V reproduction: the analytic overhead model.
//
// The paper derives FLOP_extra = O(N²) for the resilience machinery
// (encode, V/Y checksums, checksum-extended updates, detection) against
// FLOP_orig ≈ 10/3·N³ for the reduction, so the relative overhead decays
// as O(1/N). This bench *measures* both FLOP counts with the library's
// kernel-level counters and checks the decay, plus the storage formula
// S = nb·N + 4N.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/flops.hpp"
#include "common/options.hpp"
#include "ft/ft_gehrd.hpp"
#include "hybrid/hybrid_gehrd.hpp"
#include "la/generate.hpp"

using namespace fth;

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto sizes = opt.get_sizes("sizes", {128, 192, 256, 384, 512, 768});
  const index_t nb = opt.get_long("nb", 32);

  bench::banner("Section V — measured extra FLOPs of the fault-tolerant algorithm",
                "Section V analysis (FLOP_extra = O(N^2), overhead -> 0)");
  std::printf("nb = %lld\n\n", static_cast<long long>(nb));

  bench::Report report(opt);
  report.note("nb", nb);
  std::printf("%8s %16s %16s %14s %12s %12s %14s\n", "N", "FLOP base", "FLOP FT", "extra",
              "extra/N^2", "overhead %", "model 10/3N^3");

  double prev_ratio = -1.0;
  bool decays = true;
  for (const index_t n : sizes) {
    hybrid::Device dev;
    Matrix<double> a0 = random_matrix(n, n, 7);
    std::vector<double> tau(static_cast<std::size_t>(n - 1));

    flops::reset();
    std::uint64_t base = 0, ftc = 0;
    {
      Matrix<double> a(a0.cview());
      flops::Scope scope;
      hybrid::hybrid_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1),
                           {.nb = nb, .nx = nb});
      base = scope.delta();
    }
    {
      Matrix<double> a(a0.cview());
      flops::Scope scope;
      ft::ft_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1), {.nb = nb});
      ftc = scope.delta();
    }
    const double extra = static_cast<double>(ftc) - static_cast<double>(base);
    const double dn = static_cast<double>(n);
    const double ratio = 100.0 * extra / static_cast<double>(base);
    std::printf("%8lld %16llu %16llu %14.0f %12.3f %12.3f %14.3e\n",
                static_cast<long long>(n), static_cast<unsigned long long>(base),
                static_cast<unsigned long long>(ftc), extra, extra / (dn * dn), ratio,
                10.0 / 3.0 * dn * dn * dn);
    report.row()
        .set("n", n)
        .set("flop_base", base)
        .set("flop_ft", ftc)
        .set("flop_extra", extra)
        .set("extra_per_n2", extra / (dn * dn))
        .set("overhead_pct", ratio);
    if (prev_ratio >= 0.0 && ratio > prev_ratio * 1.05) decays = false;
    prev_ratio = ratio;
  }

  std::printf("\nmodel check: extra/N^2 should be roughly flat (extra work is O(N^2) with\n");
  std::printf("an O(N^2 * nb/nb) term) and the relative overhead column must decay: %s\n",
              decays ? "DECAYS — matches Section V" : "does NOT decay — investigate");

  std::printf("\nStorage model S = nb*N + 4N doubles (Section V):\n");
  std::printf("%8s %14s %16s %12s\n", "N", "S (bytes)", "matrix (bytes)", "ratio %");
  for (const index_t n : sizes) {
    const double s = static_cast<double>(nb * n + 4 * n) * sizeof(double);
    const double m = static_cast<double>(n) * static_cast<double>(n) * sizeof(double);
    std::printf("%8lld %14.0f %16.0f %12.3f\n", static_cast<long long>(n), s, m,
                100.0 * s / m);
  }
  return 0;
}

// Related-work comparison: on-line detection (this paper) vs the
// post-processing ABFT of Du et al. for one-sided factorizations.
//
// Section I: "the above mentioned post-processing scheme can only correct
// up to two soft errors total during the course of the entire LU or QR
// factorization, [while] our fault tolerant Hessenberg algorithm ...
// continues as normal and is ready to detect and correct subsequent soft
// errors as they occur."
//
// This bench applies increasing fault pressure (k faults, one per panel
// boundary, distinct columns) to both schemes and reports recovery, plus
// the overhead both pay when nothing goes wrong.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"
#include "ft/ftqr_post.hpp"
#include "la/blas3.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lapack/geqrf.hpp"

using namespace fth;

namespace {

/// Post-processing QR under k boundary faults: returns "recovered fully".
bool run_post_qr(const Matrix<double>& a0, int k, index_t nb, double scale,
                 ft::FtQrReport* rep) {
  const index_t n = a0.rows();
  Matrix<double> a(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(n));
  std::vector<ft::QrFault> faults;
  for (int f = 0; f < k; ++f) {
    faults.push_back({.boundary = static_cast<index_t>(f + 1),
                      .row = n / 2 + 3 * f,
                      .col = n / 2 + 7 * f + 1,
                      .delta = (50.0 + 20.0 * f) * scale});
  }
  ft::ftqr_post(a.view(), VectorView<double>(tau.data(), n), faults, rep, nb);
  if (k == 0) return rep->gap <= rep->threshold;
  if (!rep->corrected && k > 0) return false;
  // Verify the reconstruction really is clean.
  Matrix<double> q = lapack::orgqr(a.cview(), VectorView<const double>(tau.data(), n));
  Matrix<double> rec(n, n);
  blas::gemm(Trans::No, Trans::No, 1.0, q.cview(), rep->r.cview(), 0.0, rec.view());
  return max_abs_diff(rec.cview(), a0.cview()) <= 1e-8 * std::max(1.0, norm_max(a0.cview()));
}

/// On-line FT Hessenberg under k boundary faults: returns "recovered fully".
bool run_online_hess(hybrid::Device& dev, const Matrix<double>& a0, int k, index_t nb,
                     ft::FtReport* rep) {
  const index_t n = a0.rows();
  Matrix<double> clean(a0.cview());
  std::vector<double> tau(static_cast<std::size_t>(n - 1));
  ft::ft_gehrd(dev, clean.view(), VectorView<double>(tau.data(), n - 1), {.nb = nb});

  std::vector<fault::FaultSpec> specs;
  for (int f = 0; f < k; ++f) {
    fault::FaultSpec s;
    s.area = fault::Area::LowerTrailing;
    s.boundary = f + 1;
    s.magnitude = 50.0 + 20.0 * f;
    specs.push_back(s);
  }
  fault::Injector inj(specs, 77);
  Matrix<double> a(a0.cview());
  try {
    ft::ft_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1), {.nb = nb}, &inj, rep);
  } catch (const recovery_error&) {
    return false;
  }
  return max_abs_diff(a.cview(), clean.cview()) <= 1e-8 * std::max(1.0, norm_max(a0.cview()));
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const index_t n = opt.get_long("n", 256);
  const index_t nb = opt.get_long("nb", 32);

  bench::banner("Related work — on-line detection vs post-processing ABFT (Du et al.)",
                "Section I / II contrast claims");
  std::printf("n = %lld, nb = %lld. k faults, one per panel boundary, distinct columns.\n\n",
              static_cast<long long>(n), static_cast<long long>(nb));

  bench::Report report(opt);
  report.note("n", n);
  report.note("nb", nb);

  hybrid::Device dev;
  Matrix<double> a0 = random_matrix(n, n, 2016);
  const double scale = norm_max(a0.cview());

  std::printf("%4s | %-34s | %-34s\n", "k", "post-processing FT-QR (2 codes)",
              "on-line FT-Hess (this paper)");
  const index_t max_k = std::min<index_t>(ft::ft_total_boundaries(n, nb) - 1, 6);
  for (int k = 0; k <= static_cast<int>(max_k); ++k) {
    ft::FtQrReport qrep;
    const bool qr_ok = run_post_qr(a0, k, nb, scale, &qrep);
    ft::FtReport hrep;
    const bool h_ok = run_online_hess(dev, a0, k, nb, &hrep);
    char qmsg[64], hmsg[64];
    std::snprintf(qmsg, sizeof qmsg, "%s%s", qr_ok ? "RECOVERED" : "FAILED",
                  qrep.failure.empty() ? "" : " (code exceeded)");
    std::snprintf(hmsg, sizeof hmsg, "%s (det %d, corr %d)",
                  h_ok ? "RECOVERED" : "FAILED", hrep.detections, hrep.data_corrections);
    std::printf("%4d | %-34s | %-34s\n", k, qmsg, hmsg);
    report.row()
        .set("k", k)
        .set("post_qr_recovered", qr_ok ? 1 : 0)
        .set("online_hess_recovered", h_ok ? 1 : 0)
        .set("online_detections", hrep.detections)
        .set("online_data_corrections", hrep.data_corrections);
  }

  std::printf("\nexpected shape (the paper's Section I claim): the post-processing scheme\n");
  std::printf("handles k <= 1 with its two carried codes and fails beyond; the on-line\n");
  std::printf("scheme corrects one error per iteration indefinitely.\n");
  return 0;
}

// Table I counterpart: the platform this reproduction runs on.
//
// The paper's testbed is an Intel Xeon E5-2670 + NVIDIA Tesla K40c with
// MKL/cuBLAS. This build substitutes a software device (see DESIGN.md §2);
// the bench prints the host description, the simulated-device
// configuration, and *measured* roofline points for the kernels the
// algorithm is built from, so absolute numbers in the other benches can be
// put in context.
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/timer.hpp"
#include "la/blas2.hpp"
#include "la/blas3.hpp"
#include "la/generate.hpp"
#include "hybrid/dev_blas.hpp"
#include "hybrid/device.hpp"

using namespace fth;

namespace {

std::string cpu_model() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) return line.substr(colon + 2);
    }
  }
  return "(unknown)";
}

double bench_gemm(index_t n, int reps) {
  Matrix<double> a = random_matrix(n, n, 1);
  Matrix<double> b = random_matrix(n, n, 2);
  Matrix<double> c(n, n);
  std::vector<double> t;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    blas::gemm(Trans::No, Trans::No, 1.0, a.cview(), b.cview(), 0.0, c.view());
    t.push_back(timer.seconds());
  }
  const double dn = static_cast<double>(n);
  return 2.0 * dn * dn * dn / bench::median(t) / 1e9;
}

double bench_gemv(index_t n, int reps) {
  Matrix<double> a = random_matrix(n, n, 3);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  std::vector<double> t;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    blas::gemv(Trans::No, 1.0, a.cview(), VectorView<const double>(x.data(), n), 0.0,
               VectorView<double>(y.data(), n));
    t.push_back(timer.seconds());
  }
  const double dn = static_cast<double>(n);
  return 2.0 * dn * dn / bench::median(t) / 1e9;
}

double bench_transfer(hybrid::Device& dev, index_t n, int reps) {
  Matrix<double> host = random_matrix(n, n, 4);
  hybrid::DeviceMatrix<double> d(dev, n, n);
  std::vector<double> t;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    hybrid::copy_h2d(dev.stream(), host.cview(), d.view());
    t.push_back(timer.seconds());
  }
  const double bytes = static_cast<double>(n) * static_cast<double>(n) * sizeof(double);
  return bytes / bench::median(t) / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const int reps = static_cast<int>(opt.get_long("trials", 5));

  bench::banner("Table I — test platform specification (+ measured rooflines)",
                "Table I, Section VI");

  bench::Report report(opt);
  report.note("trials", reps);
  report.note("cpu", cpu_model());

  hybrid::Device dev;
  std::printf("\n%-22s | %-34s | %-34s\n", "", "Host (this machine)", "Device (simulated)");
  std::printf("%-22s | %-34s | %-34s\n", "Processor model", cpu_model().c_str(),
              dev.config().name.c_str());
  std::printf("%-22s | %-34u | %-34s\n", "Hardware threads",
              std::thread::hardware_concurrency(), "1 stream worker");
  std::printf("%-22s | %-34s | %-34s\n", "BLAS", "fth::blas (this library)",
              "fth::hybrid::dev_blas (stream kernels)");
  std::printf("%-22s | %-34s | %-34s\n", "Paper counterpart",
              "Intel Xeon E5-2670, MKL 11.2", "NVIDIA Tesla K40c, CUBLAS 7.0");

  std::printf("\nMeasured kernel rooflines (median of %d):\n", reps);
  std::printf("%-28s %12s\n", "kernel", "GF/s or GB/s");
  for (index_t n : opt.get_sizes("sizes", {256, 512, 1024})) {
    const double gf = bench_gemm(n, reps);
    std::printf("  dgemm  n=%-17lld %12.2f GF/s\n", static_cast<long long>(n), gf);
    report.row().set("kernel", "dgemm").set("n", n).set("gflops", gf);
  }
  const double gemv_gf = bench_gemv(1024, reps);
  const double h2d_gb = bench_transfer(dev, 1024, reps);
  std::printf("  dgemv  n=%-17d %12.2f GF/s\n", 1024, gemv_gf);
  std::printf("  h2d    n=%-17d %12.2f GB/s (memcpy; cost model off)\n", 1024, h2d_gb);
  report.row().set("kernel", "dgemv").set("n", 1024).set("gflops", gemv_gf);
  report.row().set("kernel", "h2d").set("n", 1024).set("gbps", h2d_gb);

  std::printf("\nFT storage overhead at n=4096, nb=32 (Section V: S = nb*N + 4N):\n");
  const double s = (32.0 * 4096 + 4 * 4096) * sizeof(double) / 1e6;
  const double full = 4096.0 * 4096.0 * sizeof(double) / 1e6;
  std::printf("  %.1f MB extra vs %.1f MB matrix = %.2f%%\n", s, full, 100.0 * s / full);
  return 0;
}

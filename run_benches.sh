#!/bin/sh
# Regenerates every table/figure of the paper plus the extension and
# ablation studies. Output: bench_output.txt (see EXPERIMENTS.md for the
# paper-vs-measured comparison) plus one bench_*.json structured report per
# bench (measurement rows + fth::obs metrics snapshot; schema in
# EXPERIMENTS.md).
set -e
cd "$(dirname "$0")"
{
  ./build/bench/bench_table1_platform --trials 5
  ./build/bench/bench_fig2_propagation
  ./build/bench/bench_fig6_overhead --sizes 128,256,512,768,1022 --trials 5
  ./build/bench/bench_table2_stability --sizes 128,192,256,384,512
  ./build/bench/bench_table3_orthogonality --sizes 128,192,256,384,512
  ./build/bench/bench_overhead_model --sizes 128,192,256,384,512,768
  ./build/bench/bench_ablation --n 256 --trials 3
  ./build/bench/bench_ext_sytrd --sizes 128,256,384,512 --trials 3
  ./build/bench/bench_ext_gebrd --sizes 128,256,384 --trials 3
  ./build/bench/bench_related_qr --n 256
  ./build/bench/bench_kernels --benchmark_min_time=0.2 \
      --benchmark_out=bench_kernels.json --benchmark_out_format=json
} 2>&1

#!/bin/sh
# Regenerates every table/figure of the paper plus the extension and
# ablation studies. Output: bench_output.txt (see EXPERIMENTS.md for the
# paper-vs-measured comparison) plus one bench_*.json structured report per
# bench (measurement rows + fth::obs metrics snapshot + profile section;
# schema in EXPERIMENTS.md).
#
# Pass-through observability flags for the whole sweep:
#   ./run_benches.sh --profile            # print attribution tables too
#   ./run_benches.sh --trace              # one Chrome trace per bench
#   ./run_benches.sh --dag                # one execution DAG per bench, plus
#                                         # an fth_why critical-path/what-if
#                                         # report for the fig6 run
#   ./run_benches.sh --devices 1,3,5      # pool widths for the device-pool
#                                         # scaling bench (default 1,3)
set -e
cd "$(dirname "$0")"

EXTRA=""
DEVICES="1,3"
expect_devices=""
for arg in "$@"; do
  if [ -n "$expect_devices" ]; then
    DEVICES="$arg"; expect_devices=""; continue
  fi
  case "$arg" in
    --profile) EXTRA="$EXTRA --profile" ;;
    --trace)   TRACE=1 ;;
    --dag)     DAG=1 ;;
    --devices) expect_devices=1 ;;       # pool widths for bench_pool_devices
    --devices=*) DEVICES="${arg#--devices=}" ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done
if [ -n "$expect_devices" ]; then echo "--devices needs a value" >&2; exit 2; fi

# Zero-overhead guard: every number below is meaningless if the fth::check
# access/race checker is compiled into this tree (it must exist only in
# Debug builds / -DFTH_CHECKER=ON trees, never where the benches run).
./build/tools/fth_checkinfo --expect-off

# Measure the dgemm roofline once so every bench attributes per-phase GF/s
# against the same denominator (profile section / --profile tables).
FTH_ROOFLINE_GFLOPS="$(./build/tools/fth_roofline)"
export FTH_ROOFLINE_GFLOPS
echo "dgemm roofline: ${FTH_ROOFLINE_GFLOPS} GF/s (shared profile denominator)"

run() {
  name="$(basename "$1")"
  flags="$EXTRA"
  if [ -n "$TRACE" ]; then flags="$flags --trace ${name}_trace.json"; fi
  if [ -n "$DAG" ]; then flags="$flags --dag ${name}_dag.json"; fi
  "$@" $flags
}

{
  run ./build/bench/bench_table1_platform --trials 5
  run ./build/bench/bench_fig2_propagation
  run ./build/bench/bench_fig6_overhead --sizes 128,256,512,768,1022 --trials 5
  run ./build/bench/bench_table2_stability --sizes 128,192,256,384,512
  run ./build/bench/bench_table3_orthogonality --sizes 128,192,256,384,512
  run ./build/bench/bench_overhead_model --sizes 128,192,256,384,512,768
  run ./build/bench/bench_ablation --n 256 --trials 3
  run ./build/bench/bench_ext_sytrd --sizes 128,256,384,512 --trials 3
  run ./build/bench/bench_ext_gebrd --sizes 128,256,384 --trials 3
  run ./build/bench/bench_related_qr --n 256
  run ./build/bench/bench_pool_devices --devices "$DEVICES" --sizes 128,256 --trials 3
  ./build/bench/bench_kernels --benchmark_min_time=0.2 \
      --benchmark_out=bench_kernels.json --benchmark_out_format=json
  if [ -n "$DAG" ]; then
    echo ""
    echo "== fth_why: offline critical-path / what-if replay (fig6 DAG) =="
    ./build/tools/fth_why bench_fig6_overhead_dag.json
  fi
} 2>&1

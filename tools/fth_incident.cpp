// fth_incident — render and check the incident capsules the obs layer
// writes (obs/incident.hpp). A capsule is one JSON document bundling the
// journal slice, health timeline, strike ledger, metrics deltas and the
// flight/DAG fragments around one FT incident; this tool turns it back
// into a causal story and the two numbers EXPERIMENTS.md tables:
// detection latency (first strike → first detection) and recovery cost
// (first detection → last repair record).
//
//   fth_incident <capsule.json | dir>...    causal timeline per capsule +
//                                           an aggregate latency/cost table
//   fth_incident --check <paths...>         schema-validate only; exit 1 on
//                                           any invalid/unreadable capsule
//                                           (the CI gate over soak output)
//   fth_incident --json <paths...>          machine-readable summary
//
// Directories are scanned (non-recursively) for fth_incident_*.json, so
// pointing the tool at FTH_INCIDENT's directory consumes a whole soak.
// Exit status is nonzero whenever any capsule fails to parse or validate,
// in every mode.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/incident.hpp"

namespace {

using fth::json::Value;

struct CapsuleSummary {
  std::string path;
  std::string trigger;
  std::string who;
  std::string status;
  std::uint64_t run = 0;
  int device = -1;
  fth::obs::IncidentTiming timing;
};

/// Expand an argument into capsule paths: files pass through, directories
/// are scanned for the writer's fth_incident_*.json naming scheme.
void expand_arg(const std::string& arg, std::vector<std::string>& out) {
  std::error_code ec;
  if (std::filesystem::is_directory(arg, ec)) {
    std::vector<std::string> found;
    for (const auto& entry : std::filesystem::directory_iterator(arg, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("fth_incident_", 0) == 0 && name.size() > 5 &&
          name.compare(name.size() - 5, 5, ".json") == 0)
        found.push_back(entry.path().string());
    }
    std::sort(found.begin(), found.end());
    out.insert(out.end(), found.begin(), found.end());
  } else {
    out.push_back(arg);
  }
}

std::string string_or(const Value& v, const char* key, const char* fallback) {
  const Value* f = v.find(key);
  return f != nullptr && f->is_string() ? f->as_string() : fallback;
}

double number_or(const Value& v, const char* key, double fallback) {
  const Value* f = v.find(key);
  return f != nullptr && f->is_number() ? f->as_number() : fallback;
}

/// One journal record's role in the causal chain, for the timeline gutter.
const char* role_of(const std::string& component, const std::string& event) {
  if (component == "fault") return "strike";
  if ((component == "pool" && event == "loss_detected") ||
      (component == "ft" && event == "detect") ||
      (component == "health" && event == "wait_timeout"))
    return "detect";
  if (component == "pool" &&
      (event == "reconstructed" || event == "remapped" || event == "parity_degraded" ||
       event == "repair_done" || event == "panel_retry"))
    return "repair";
  if (component == "ft" &&
      (event == "rollback" || event == "reexec" || event == "ckpt_rederived"))
    return "repair";
  if (component == "pool" && event == "finished") return "verify";
  return "";
}

void print_timeline(const Value& capsule, const CapsuleSummary& s) {
  std::printf("== %s ==\n", s.path.c_str());
  std::printf("trigger %s by %s, run %llu, device %d, outcome %s",
              s.trigger.c_str(), s.who.c_str(), static_cast<unsigned long long>(s.run),
              s.device, s.status.c_str());
  const Value* outcome = capsule.find("outcome");
  if (outcome != nullptr && outcome->is_object()) {
    const std::string reason = string_or(*outcome, "reason", "");
    if (!reason.empty()) std::printf(" (%s)", reason.c_str());
  }
  std::printf("\n");

  const Value* journal = capsule.find("journal");
  if (journal != nullptr && journal->is_array() && !journal->as_array().empty()) {
    // Anchor the timeline at the earliest record so times read as +ms.
    double t0 = 0.0;
    bool have_t0 = false;
    for (const Value& e : journal->as_array()) {
      const double t = number_or(e, "t_us", -1.0);
      if (t >= 0.0 && (!have_t0 || t < t0)) {
        t0 = t;
        have_t0 = true;
      }
    }
    std::printf("timeline (%zu records):\n", journal->as_array().size());
    for (const Value& e : journal->as_array()) {
      if (!e.is_object()) continue;
      const std::string component = string_or(e, "component", "?");
      const std::string event = string_or(e, "event", "?");
      const double t = number_or(e, "t_us", -1.0);
      const int device = static_cast<int>(number_or(e, "device", -1.0));
      const char* role = role_of(component, event);
      char dev[16] = "";
      if (device >= 0) std::snprintf(dev, sizeof dev, " dev%d", device);
      std::printf("  %+10.3f ms  %-7s %-5s %s/%s%s", have_t0 ? (t - t0) / 1e3 : 0.0,
                  role[0] != '\0' ? role : "", string_or(e, "severity", "?").c_str(),
                  component.c_str(), event.c_str(), dev);
      const std::string detail = string_or(e, "detail", "");
      if (!detail.empty()) std::printf("  %s", detail.c_str());
      std::printf("\n");
    }
  }

  const Value* health = capsule.find("health");
  if (health != nullptr && health->is_array() && !health->as_array().empty()) {
    std::printf("health:");
    for (const Value& h : health->as_array()) {
      if (!h.is_object()) continue;
      std::printf(" dev%d=%s", static_cast<int>(number_or(h, "device", -1.0)),
                  string_or(h, "state", "?").c_str());
    }
    std::printf("\n");
  }

  if (s.timing.detection_latency_us >= 0.0)
    std::printf("detection latency: %.3f ms\n", s.timing.detection_latency_us / 1e3);
  if (s.timing.recovery_cost_us >= 0.0)
    std::printf("recovery cost:     %.3f ms\n", s.timing.recovery_cost_us / 1e3);
  std::printf("\n");
}

void print_aggregate(const std::vector<CapsuleSummary>& all) {
  std::vector<double> lat, cost;
  for (const CapsuleSummary& s : all) {
    if (s.timing.detection_latency_us >= 0.0) lat.push_back(s.timing.detection_latency_us);
    if (s.timing.recovery_cost_us >= 0.0) cost.push_back(s.timing.recovery_cost_us);
  }
  const auto stats = [](std::vector<double>& v, double& mn, double& avg, double& mx) {
    mn = avg = mx = 0.0;
    if (v.empty()) return;
    std::sort(v.begin(), v.end());
    mn = v.front();
    mx = v.back();
    for (const double x : v) avg += x;
    avg /= static_cast<double>(v.size());
  };
  double lmn, lavg, lmx, cmn, cavg, cmx;
  stats(lat, lmn, lavg, lmx);
  stats(cost, cmn, cavg, cmx);
  std::printf("-- aggregate over %zu capsule(s) --\n", all.size());
  std::printf("%-22s %8s %10s %10s %10s\n", "metric", "n", "min (ms)", "avg (ms)", "max (ms)");
  std::printf("%-22s %8zu %10.3f %10.3f %10.3f\n", "detection latency", lat.size(), lmn / 1e3,
              lavg / 1e3, lmx / 1e3);
  std::printf("%-22s %8zu %10.3f %10.3f %10.3f\n", "recovery cost", cost.size(), cmn / 1e3,
              cavg / 1e3, cmx / 1e3);
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof hex, "\\u%04x", c);
      out += hex;
    } else {
      out.push_back(c);
    }
  }
}

void print_json(const std::vector<CapsuleSummary>& all) {
  std::string out = "[";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const CapsuleSummary& s = all[i];
    if (i > 0) out += ',';
    out += "{\"path\":\"";
    append_escaped(out, s.path);
    out += "\",\"trigger\":\"";
    append_escaped(out, s.trigger);
    out += "\",\"who\":\"";
    append_escaped(out, s.who);
    out += "\",\"status\":\"";
    append_escaped(out, s.status);
    out += "\",\"run\":" + std::to_string(s.run);
    out += ",\"device\":" + std::to_string(s.device);
    char buf[64];
    std::snprintf(buf, sizeof buf, ",\"detection_latency_us\":%.9g",
                  s.timing.detection_latency_us);
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"recovery_cost_us\":%.9g", s.timing.recovery_cost_us);
    out += buf;
    out += "}";
  }
  out += "]\n";
  std::fputs(out.c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bool check_only = false;
  bool as_json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check_only = true;
    else if (std::strcmp(argv[i], "--json") == 0) as_json = true;
    else expand_arg(argv[i], paths);
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: fth_incident [--check] [--json] <capsule.json | dir>...\n"
                 "(directories are scanned for fth_incident_*.json)\n");
    return 2;
  }

  int bad = 0;
  std::vector<CapsuleSummary> all;
  for (const std::string& path : paths) {
    Value capsule;
    try {
      capsule = fth::json::parse_file(path);
    } catch (const fth::json::parse_error& e) {
      std::fprintf(stderr, "fth_incident: %s: %s\n", path.c_str(), e.what());
      ++bad;
      continue;
    }
    const std::string err = fth::obs::incident_validate(capsule);
    if (!err.empty()) {
      std::fprintf(stderr, "fth_incident: %s: invalid capsule: %s\n", path.c_str(),
                   err.c_str());
      ++bad;
      continue;
    }
    CapsuleSummary s;
    s.path = path;
    s.trigger = string_or(capsule, "trigger", "?");
    s.who = string_or(capsule, "who", "?");
    s.run = static_cast<std::uint64_t>(number_or(capsule, "run", 0.0));
    s.device = static_cast<int>(number_or(capsule, "device", -1.0));
    const fth::json::Value* outcome = capsule.find("outcome");
    s.status = outcome != nullptr && outcome->is_object() ? string_or(*outcome, "status", "?")
                                                          : "?";
    s.timing = fth::obs::incident_timing(capsule);
    all.push_back(s);
    if (check_only) std::printf("%s: ok (%s, run %llu)\n", path.c_str(), s.trigger.c_str(),
                                static_cast<unsigned long long>(s.run));
    else if (!as_json) print_timeline(capsule, s);
  }

  if (as_json) print_json(all);
  else if (!check_only && all.size() > 1) print_aggregate(all);
  if (bad > 0) {
    std::fprintf(stderr, "fth_incident: %d invalid capsule(s)\n", bad);
    return 1;
  }
  return 0;
}

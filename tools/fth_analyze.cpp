// fth_analyze — static transfer/Event-discipline gate (engine in
// src/check/analyze.hpp, rules in DESIGN.md §11).
//
//   fth_analyze [--sarif out.json] [--perf] [--perf-error] [--rule=<name>]
//               [--dag graph.json] [--stats-out stats.txt] [repo-root]
//
// Walks src/hybrid/, src/ft/, examples/, bench/ under the given root
// (default: the current directory), runs the fth::analyze symbolic
// dataflow pass over every .hpp/.cpp, prints each finding as
// file:line: [rule] message (+ the happens-before edge that would fix
// it), and exits non-zero when anything fired. Registered as the
// `analyze.repo` ctest: deleting an Event wait, a synchronize(), or a
// task's FTH_TASK_EFFECTS declaration fails the suite before any test
// executes the broken path. `--sarif` additionally writes the findings
// as a SARIF 2.1.0 log (for CI upload / inline annotations); the text
// output is unchanged by the flag.
//
// The §11.5 performance plane:
//   --perf        also compute the advisory overlap rules
//                 (redundant-wait, coarse-synchronize,
//                 false-serialization, over-wide-effects,
//                 dead-transfer). Perf findings print with a
//                 `suggested:` fix-it and NEVER change the exit code;
//                 without the flag the output is byte-identical to the
//                 correctness gate.
//   --perf-error  promote *unexpected* perf findings (no matching
//                 `// fth-perf: expect` marker) to the exit code.
//   --rule=<name> print only findings of one rule (display filter; the
//                 exit code is still computed from the full set).
//   --dag <file>  a recorded execution DAG (fth_why / Graph::to_json):
//                 false-serialization findings are annotated with the
//                 measured duration of the named task pair — the
//                 critical-path savings an overlap could buy.
//   --stats-out <file>  write the whole-tree stats as key=value lines
//                 (the tests/check/analyze_golden.txt format).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "check/analyze.hpp"
#include "common/json.hpp"
#include "obs/dag.hpp"

namespace fs = std::filesystem;

namespace {

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Repo-relative path with forward slashes.
std::string rel_slash(const fs::path& p, const fs::path& root) {
  return p.lexically_relative(root).generic_string();
}

/// Total measured duration per task label in a recorded DAG.
std::map<std::string, double> label_durations(const std::string& dag_text) {
  std::map<std::string, double> dur;
  const fth::obs::dag::Graph g = fth::obs::dag::parse_graph(fth::json::parse(dag_text));
  for (const auto& node : g.nodes)
    if (!node.label.empty()) dur[node.label] += node.dur_us();
  return dur;
}

int usage() {
  std::fprintf(stderr,
               "fth_analyze: usage: fth_analyze [--sarif out.json] [--perf] [--perf-error] "
               "[--rule=<name>] [--dag graph.json] [--stats-out stats.txt] [repo-root]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root;
  std::string sarif_path, dag_path, stats_path, rule_filter;
  fth::check::analyze::Options opts;
  bool perf_error = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sarif") == 0 && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (std::strcmp(argv[i], "--perf") == 0) {
      opts.perf = true;
    } else if (std::strcmp(argv[i], "--perf-error") == 0) {
      opts.perf = true;
      perf_error = true;
    } else if (std::strncmp(argv[i], "--rule=", 7) == 0) {
      rule_filter = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--dag") == 0 && i + 1 < argc) {
      dag_path = argv[++i];
    } else if (std::strcmp(argv[i], "--stats-out") == 0 && i + 1 < argc) {
      stats_path = argv[++i];
    } else if (root.empty() && argv[i][0] != '-') {
      root = fs::path(argv[i]);
    } else {
      return usage();
    }
  }
  if (root.empty()) root = fs::current_path();
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "fth_analyze: %s does not look like the repo root (no src/)\n",
                 root.string().c_str());
    return 2;
  }

  std::vector<fth::check::analyze::Finding> findings;
  fth::check::analyze::Stats stats;
  std::size_t files = 0;
  for (const char* dir : {"src/hybrid", "src/ft", "examples", "bench"}) {
    const fs::path top = root / dir;
    if (!fs::exists(top)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(top)) {
      if (!entry.is_regular_file()) continue;
      const std::string rel = rel_slash(entry.path(), root);
      if (!fth::check::analyze::in_scope(rel)) continue;
      ++files;
      auto found = fth::check::analyze::analyze_source(rel, slurp(entry.path()), &stats, opts);
      findings.insert(findings.end(), found.begin(), found.end());
    }
  }

  // --dag: price each false-serialization pair from the recorded graph.
  if (opts.perf && !dag_path.empty()) {
    std::map<std::string, double> dur;
    try {
      dur = label_durations(slurp(dag_path));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fth_analyze: cannot read DAG %s: %s\n", dag_path.c_str(),
                   e.what());
      return 2;
    }
    for (auto& f : findings) {
      if (!f.perf || f.rule != "false-serialization" || f.tasks.size() != 2) continue;
      const auto a = dur.find(f.tasks[0]);
      const auto b = dur.find(f.tasks[1]);
      if (a == dur.end() || b == dur.end()) continue;
      // Overlapping the pair saves up to the shorter side's time.
      const double saved = std::min(a->second, b->second);
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    " [measured: \"%s\" %.1f us, \"%s\" %.1f us; overlap saves up to "
                    "%.1f us/occurrence on the critical path]",
                    f.tasks[0].c_str(), a->second, f.tasks[1].c_str(), b->second, saved);
      f.message += buf;
    }
  }

  std::size_t correctness = 0, perf_expected = 0, perf_unexpected = 0;
  for (const auto& finding : findings) {
    if (finding.perf) {
      ++(finding.expected ? perf_expected : perf_unexpected);
    } else {
      ++correctness;
    }
    if (!rule_filter.empty() && finding.rule != rule_filter) continue;
    std::fprintf(stderr, "%s\n", fth::check::analyze::format(finding).c_str());
  }
  std::printf(
      "fth_analyze: %zu file(s), %zu function(s), %zu task(s), %zu transfer(s), "
      "%zu event(s)/%zu wait(s), %zu sync(s), %zu spliced call(s) analyzed, %zu finding(s)\n",
      files, stats.functions, stats.enqueues, stats.transfers, stats.records, stats.waits,
      stats.syncs, stats.calls, correctness);
  if (opts.perf)
    std::printf("fth_analyze: perf plane: %zu advisory finding(s), %zu expected exemplar(s)\n",
                perf_unexpected, perf_expected);

  if (!stats_path.empty()) {
    std::ofstream out(stats_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "fth_analyze: cannot write %s\n", stats_path.c_str());
      return 2;
    }
    out << fth::check::analyze::stats_lines(stats, files);
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "fth_analyze: cannot write %s\n", sarif_path.c_str());
      return 2;
    }
    out << fth::check::analyze::to_sarif(findings);
  }
  if (correctness > 0) return 1;
  return perf_error && perf_unexpected > 0 ? 1 : 0;
}

// fth_analyze — static transfer/Event-discipline gate (engine in
// src/check/analyze.hpp, rules in DESIGN.md §11).
//
//   fth_analyze [--sarif out.json] [repo-root]
//
// Walks src/hybrid/, src/ft/, examples/, bench/ under the given root
// (default: the current directory), runs the fth::analyze symbolic
// dataflow pass over every .hpp/.cpp, prints each finding as
// file:line: [rule] message (+ the happens-before edge that would fix
// it), and exits non-zero when anything fired. Registered as the
// `analyze.repo` ctest: deleting an Event wait, a synchronize(), or a
// task's FTH_TASK_EFFECTS declaration fails the suite before any test
// executes the broken path. `--sarif` additionally writes the findings
// as a SARIF 2.1.0 log (for CI upload / inline annotations); the text
// output is unchanged by the flag.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/analyze.hpp"

namespace fs = std::filesystem;

namespace {

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Repo-relative path with forward slashes.
std::string rel_slash(const fs::path& p, const fs::path& root) {
  return p.lexically_relative(root).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root;
  std::string sarif_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sarif") == 0 && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (root.empty()) {
      root = fs::path(argv[i]);
    } else {
      std::fprintf(stderr, "fth_analyze: usage: fth_analyze [--sarif out.json] [repo-root]\n");
      return 2;
    }
  }
  if (root.empty()) root = fs::current_path();
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "fth_analyze: %s does not look like the repo root (no src/)\n",
                 root.string().c_str());
    return 2;
  }

  std::vector<fth::check::analyze::Finding> findings;
  fth::check::analyze::Stats stats;
  std::size_t files = 0;
  for (const char* dir : {"src/hybrid", "src/ft", "examples", "bench"}) {
    const fs::path top = root / dir;
    if (!fs::exists(top)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(top)) {
      if (!entry.is_regular_file()) continue;
      const std::string rel = rel_slash(entry.path(), root);
      if (!fth::check::analyze::in_scope(rel)) continue;
      ++files;
      auto found = fth::check::analyze::analyze_source(rel, slurp(entry.path()), &stats);
      findings.insert(findings.end(), found.begin(), found.end());
    }
  }

  for (const auto& finding : findings)
    std::fprintf(stderr, "%s\n", fth::check::analyze::format(finding).c_str());
  std::printf(
      "fth_analyze: %zu file(s), %zu function(s), %zu task(s), %zu transfer(s), "
      "%zu event(s)/%zu wait(s), %zu sync(s), %zu spliced call(s) analyzed, %zu finding(s)\n",
      files, stats.functions, stats.enqueues, stats.transfers, stats.records, stats.waits,
      stats.syncs, stats.calls, findings.size());

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "fth_analyze: cannot write %s\n", sarif_path.c_str());
      return 2;
    }
    out << fth::check::analyze::to_sarif(findings);
  }
  return findings.empty() ? 0 : 1;
}

// fth_checkinfo — reports whether the fth::check access/race checker (and
// its declared-effect conformance layer) is compiled into this build.
// run_benches.sh uses it to assert both are compiled OUT of the Release
// tree the benches run in (the zero-overhead guarantee of check/hooks.hpp
// and check/effects.hpp); CI uses it to assert they are compiled IN for
// the Debug + FTH_CHECK=1 job.
//
//   fth_checkinfo             prints key=value lines, exits 0
//   fth_checkinfo --expect-off  exits 1 if the checker or the effects
//                               layer is compiled in
//   fth_checkinfo --expect-on   exits 1 if either is compiled out
#include <cstdio>
#include <cstring>

#include "check/access.hpp"
#include "check/effects.hpp"
#include "obs/dag.hpp"
#include "obs/incident.hpp"
#include "obs/journal.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  fth::obs::trace_init_from_env();  // arm FTH_DAG exactly as a bench would
  fth::obs::journal_init_from_env();    // FTH_JOURNAL
  fth::obs::incident_init_from_env();   // FTH_INCIDENT (also arms the journal)
  const bool in = fth::check::compiled_in();
  const bool eff_in = fth::check::effects_compiled_in();
  const bool dag_on = fth::obs::dag::enabled();
  const bool journal_on = fth::obs::journal_enabled();
  const bool incident_on = fth::obs::incident_enabled();
  std::printf("checker_compiled_in=%d\n", in ? 1 : 0);
  std::printf("checker_active=%d\n", fth::check::active() ? 1 : 0);
  std::printf("effects_compiled_in=%d\n", eff_in ? 1 : 0);
  std::printf("effects_active=%d\n", fth::check::effects_active() ? 1 : 0);
  std::printf("dag_enabled=%d\n", dag_on ? 1 : 0);
  std::printf("journal_enabled=%d\n", journal_on ? 1 : 0);
  std::printf("incident_enabled=%d\n", incident_on ? 1 : 0);
#ifdef NDEBUG
  std::printf("build_ndebug=1\n");
#else
  std::printf("build_ndebug=0\n");
#endif
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--expect-off") == 0 && (journal_on || incident_on)) {
      std::fprintf(stderr,
                   "fth_checkinfo: %s is armed in this environment but "
                   "--expect-off was given (Release bench numbers must run "
                   "with the journal/incident hooks on the one-relaxed-load "
                   "off path)\n",
                   incident_on ? "FTH_INCIDENT" : "FTH_JOURNAL");
      return 1;
    }
    if (std::strcmp(argv[i], "--expect-off") == 0 && (in || eff_in || dag_on)) {
      if (dag_on) {
        std::fprintf(stderr,
                     "fth_checkinfo: FTH_DAG is armed in this environment but "
                     "--expect-off was given (the DAG recorder must be the "
                     "zero-overhead stub for Release bench numbers)\n");
        return 1;
      }
      std::fprintf(stderr,
                   "fth_checkinfo: %s compiled in but --expect-off was given "
                   "(Release benches must run checker-free)\n",
                   in ? "checker is" : "effects layer is");
      return 1;
    }
    if (std::strcmp(argv[i], "--expect-on") == 0 && (!in || !eff_in)) {
      std::fprintf(stderr,
                   "fth_checkinfo: %s compiled out but --expect-on was given "
                   "(the checked CI job would be vacuous)\n",
                   !in ? "checker is" : "effects layer is");
      return 1;
    }
  }
  return 0;
}

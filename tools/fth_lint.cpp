// fth_lint — repo source lint gate (rules in src/check/lint_rules.hpp).
//
//   fth_lint [repo-root]
//
// Walks src/, tests/, tools/, examples/, bench/ under the given root
// (default: the current directory), applies the fth::check::lint rules to
// every .hpp/.cpp, prints each finding as file:line: [rule] message, and
// exits non-zero when anything fired. Registered as the `lint.repo` ctest,
// so a discipline regression fails the suite, not just a review.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/lint_rules.hpp"

namespace fs = std::filesystem;

namespace {

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Repo-relative path with forward slashes.
std::string rel_slash(const fs::path& p, const fs::path& root) {
  std::string s = p.lexically_relative(root).generic_string();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::current_path();
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "fth_lint: %s does not look like the repo root (no src/)\n",
                 root.string().c_str());
    return 2;
  }

  std::vector<fth::check::lint::Issue> issues;
  std::size_t files = 0;
  for (const char* dir : {"src", "tests", "tools", "examples", "bench"}) {
    const fs::path top = root / dir;
    if (!fs::exists(top)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(top)) {
      if (!entry.is_regular_file()) continue;
      const std::string rel = rel_slash(entry.path(), root);
      if (!fth::check::lint::in_scope(rel)) continue;
      ++files;
      auto found = fth::check::lint::lint_file(rel, slurp(entry.path()));
      issues.insert(issues.end(), found.begin(), found.end());
    }
  }

  for (const auto& issue : issues)
    std::fprintf(stderr, "%s\n", fth::check::lint::format(issue).c_str());
  std::printf("fth_lint: %zu file(s) scanned, %zu finding(s)\n", files, issues.size());
  return issues.empty() ? 0 : 1;
}

// fth_roofline — measure the dgemm roofline (GF/s) of this machine/build
// once and print a single number, so every bench in a run_benches.sh sweep
// shares the same per-phase GF/s denominator:
//
//   export FTH_ROOFLINE_GFLOPS=$(./tools/fth_roofline)
//
//   --n <size>   matrix size (default 512 — big enough to saturate the
//                blocked kernel, small enough to stay under a second here)
//   --trials     repetitions, median taken (default 3)
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/options.hpp"
#include "common/timer.hpp"
#include "la/blas3.hpp"
#include "la/generate.hpp"
#include "la/matrix.hpp"

using namespace fth;

namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const index_t n = opt.get_long("n", 512);
  const int trials = static_cast<int>(opt.get_long("trials", 3));

  Matrix<double> a = random_matrix(n, n, 1);
  Matrix<double> b = random_matrix(n, n, 2);
  Matrix<double> c(n, n);
  std::vector<double> t;
  for (int r = 0; r < trials; ++r) {
    WallTimer timer;
    blas::gemm(Trans::No, Trans::No, 1.0, a.cview(), b.cview(), 0.0, c.view());
    t.push_back(timer.seconds());
  }
  const double dn = static_cast<double>(n);
  std::printf("%.2f\n", 2.0 * dn * dn * dn / median(t) / 1e9);
  return 0;
}

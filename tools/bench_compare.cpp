// bench_compare — diff two bench report JSON files (or any JSON documents)
// under a threshold file and exit non-zero when a gated metric regresses.
// This is the CI perf gate: the committed BENCH_baseline.json is the
// baseline, the freshly produced smoke-bench report the candidate, and
// tools/thresholds_*.txt decide which metrics are gated and how tightly
// (format documented in EXPERIMENTS.md).
//
//   bench_compare <baseline.json> <candidate.json> [--thresholds <file>]
//                 [--quiet]
//
// Exit status: 0 all gated metrics within tolerance, 1 at least one
// violation, 2 usage / unreadable input.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.hpp"
#include "common/options.hpp"
#include "obs/compare.hpp"

using namespace fth;

namespace {

// Default gate when no --thresholds file is given: times may grow ≤10%,
// GF/s may drop ≤10%, everything else is informational.
constexpr const char* kDefaultThresholds =
    "rows.*.seconds    max_increase 0.10\n"
    "rows.*.gflops     max_decrease 0.10\n"
    "rows.*.*_gflops   max_decrease 0.10\n";

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  if (opt.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <candidate.json>"
                 " [--thresholds <file>] [--quiet]\n");
    return 2;
  }

  json::Value base, cand;
  try {
    base = json::parse_file(opt.positional()[0]);
    cand = json::parse_file(opt.positional()[1]);
  } catch (const json::parse_error& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }

  std::vector<obs::ThresholdRule> rules;
  try {
    if (opt.has("thresholds")) {
      const std::string path = opt.get("thresholds", "");
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "bench_compare: cannot open thresholds file '%s'\n", path.c_str());
        return 2;
      }
      rules = obs::parse_thresholds(in);
    } else {
      std::istringstream in(kDefaultThresholds);
      rules = obs::parse_thresholds(in);
    }
  } catch (const json::parse_error& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }

  const obs::CompareResult res = obs::compare_reports(base, cand, rules);
  if (!opt.has("quiet")) obs::print_comparison(res, stdout);
  return res.ok() ? 0 : 1;
}

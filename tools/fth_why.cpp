// fth_why — offline analyzer for a recorded execution DAG (the *_dag.json a
// bench dumps under --dag, or FTH_DAG=<path>). Answers "why was the host
// blocked": critical path with per-kind composition, the top blocking edges
// attributing host_wait_s to file:line call sites, and the what-if list
// scheduler's predictions under hypothetical lookahead/stream/roofline
// configurations (DESIGN.md §12).
//
//   fth_why <run_dag.json> [--lookahead <k> --streams <s>] [--dev-scale <x>]
//           [--json]
//
// Without --lookahead/--streams the standard scenario table is simulated
// (--dev-scale < 1 adds the roofline-gemm scenario); with them, a single
// custom scenario is appended.
#include <cstdio>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/options.hpp"
#include "obs/dag.hpp"

using namespace fth;

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  if (opt.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: fth_why <run_dag.json> [--lookahead <k> --streams <s>] "
                 "[--dev-scale <x>] [--json]\n");
    return 2;
  }

  obs::dag::Graph g;
  try {
    g = obs::dag::parse_graph(json::parse_file(opt.positional()[0]));
  } catch (const json::parse_error& e) {
    std::fprintf(stderr, "fth_why: %s: %s\n", opt.positional()[0].c_str(), e.what());
    return 2;
  }

  const obs::dag::Analysis analysis = obs::dag::analyze(g);

  const double dev_scale = opt.get_double("dev-scale", 1.0);
  std::vector<obs::dag::Scenario> scenarios = obs::dag::default_scenarios(dev_scale);
  if (opt.has("lookahead") || opt.has("streams")) {
    obs::dag::Scenario custom;
    custom.name = "custom";
    custom.lookahead = static_cast<int>(opt.get_double("lookahead", 0.0));
    custom.streams = static_cast<int>(opt.get_double("streams", 1.0));
    custom.dev_scale = dev_scale;
    scenarios.push_back(std::move(custom));
  }
  std::vector<obs::dag::Prediction> what_if;
  what_if.reserve(scenarios.size());
  for (const obs::dag::Scenario& sc : scenarios) what_if.push_back(obs::dag::simulate(g, sc));

  if (opt.has("json")) {
    std::printf("%s\n", obs::dag::section_json(g, analysis, what_if).c_str());
  } else {
    obs::dag::print_analysis(g, analysis, what_if, stdout);
  }
  return 0;
}

// fth_prof — replay a recorded trace file (--trace / FTH_TRACE output, or a
// flight-recorder dump) through the same aggregation core the live profiler
// uses, and print the attribution report: per-phase wall/self time,
// host/device overlap, stream occupancy, and the per-iteration critical
// path. FLOP attribution is live-only (the trace does not carry FLOP
// counts), so GF/s columns read "-" here.
//
//   fth_prof <trace.json> [--roofline <gf/s>] [--json]
#include <cstdio>
#include <string>

#include "common/json.hpp"
#include "common/options.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

using namespace fth;

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  if (opt.positional().size() != 1) {
    std::fprintf(stderr, "usage: fth_prof <trace.json> [--roofline <gf/s>] [--json]\n");
    return 2;
  }

  json::Value root;
  try {
    root = json::parse_file(opt.positional()[0]);
  } catch (const json::parse_error& e) {
    std::fprintf(stderr, "fth_prof: %s: %s\n", opt.positional()[0].c_str(), e.what());
    return 2;
  }

  const json::Value* events = root.find("traceEvents");
  if (events == nullptr || events->type() != json::Type::Array) {
    std::fprintf(stderr, "fth_prof: %s: no traceEvents array\n", opt.positional()[0].c_str());
    return 2;
  }

  obs::ProfileBuilder builder;
  for (const json::Value& ev : events->as_array()) {
    if (ev.type() != json::Type::Object) continue;
    const json::Value* ph = ev.find("ph");
    const json::Value* tid = ev.find("tid");
    const json::Value* ts = ev.find("ts");
    if (ph == nullptr || tid == nullptr || ph->type() != json::Type::String) continue;
    const std::string& kind = ph->as_string();
    const auto t = static_cast<std::uint64_t>(tid->as_number());
    if (kind == "B") {
      const json::Value* cat = ev.find("cat");
      const json::Value* name = ev.find("name");
      if (cat == nullptr || name == nullptr || ts == nullptr) continue;
      double arg = 0.0;
      if (const json::Value* args = ev.find("args");
          args != nullptr && args->type() == json::Type::Object && !args->as_object().empty())
        if (const json::Value& first = args->as_object().front().second;
            first.type() == json::Type::Number)
          arg = first.as_number();
      // Parsed strings are temporaries; intern them to satisfy the
      // builder's pointer-lifetime contract (and to merge repeats).
      builder.begin(t, obs::intern_name(cat->as_string()), obs::intern_name(name->as_string()),
                    ts->as_number(), arg);
    } else if (kind == "E") {
      if (ts != nullptr) builder.end(t, ts->as_number());
    }
    // 'M' thread_name metadata, 'i' instants and 'C' counters carry no
    // duration; the builder classifies tracks behaviorally (stream/task
    // spans), so thread names are not needed for the report.
  }

  const obs::ProfileReport report = builder.finish(opt.get_double("roofline", 0.0));
  if (opt.has("json")) {
    std::printf("%s\n", report.to_json().c_str());
  } else {
    report.print_table(stdout);
  }
  return 0;
}

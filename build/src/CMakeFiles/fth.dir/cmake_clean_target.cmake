file(REMOVE_RECURSE
  "libfth.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/flops.cpp" "src/CMakeFiles/fth.dir/common/flops.cpp.o" "gcc" "src/CMakeFiles/fth.dir/common/flops.cpp.o.d"
  "/root/repo/src/common/options.cpp" "src/CMakeFiles/fth.dir/common/options.cpp.o" "gcc" "src/CMakeFiles/fth.dir/common/options.cpp.o.d"
  "/root/repo/src/eigen/hseqr.cpp" "src/CMakeFiles/fth.dir/eigen/hseqr.cpp.o" "gcc" "src/CMakeFiles/fth.dir/eigen/hseqr.cpp.o.d"
  "/root/repo/src/eigen/steqr.cpp" "src/CMakeFiles/fth.dir/eigen/steqr.cpp.o" "gcc" "src/CMakeFiles/fth.dir/eigen/steqr.cpp.o.d"
  "/root/repo/src/fault/campaign.cpp" "src/CMakeFiles/fth.dir/fault/campaign.cpp.o" "gcc" "src/CMakeFiles/fth.dir/fault/campaign.cpp.o.d"
  "/root/repo/src/fault/injector.cpp" "src/CMakeFiles/fth.dir/fault/injector.cpp.o" "gcc" "src/CMakeFiles/fth.dir/fault/injector.cpp.o.d"
  "/root/repo/src/ft/checksum.cpp" "src/CMakeFiles/fth.dir/ft/checksum.cpp.o" "gcc" "src/CMakeFiles/fth.dir/ft/checksum.cpp.o.d"
  "/root/repo/src/ft/ft_gebrd.cpp" "src/CMakeFiles/fth.dir/ft/ft_gebrd.cpp.o" "gcc" "src/CMakeFiles/fth.dir/ft/ft_gebrd.cpp.o.d"
  "/root/repo/src/ft/ft_gehrd.cpp" "src/CMakeFiles/fth.dir/ft/ft_gehrd.cpp.o" "gcc" "src/CMakeFiles/fth.dir/ft/ft_gehrd.cpp.o.d"
  "/root/repo/src/ft/ft_sytrd.cpp" "src/CMakeFiles/fth.dir/ft/ft_sytrd.cpp.o" "gcc" "src/CMakeFiles/fth.dir/ft/ft_sytrd.cpp.o.d"
  "/root/repo/src/ft/ftqr_post.cpp" "src/CMakeFiles/fth.dir/ft/ftqr_post.cpp.o" "gcc" "src/CMakeFiles/fth.dir/ft/ftqr_post.cpp.o.d"
  "/root/repo/src/ft/locate.cpp" "src/CMakeFiles/fth.dir/ft/locate.cpp.o" "gcc" "src/CMakeFiles/fth.dir/ft/locate.cpp.o.d"
  "/root/repo/src/ft/q_protect.cpp" "src/CMakeFiles/fth.dir/ft/q_protect.cpp.o" "gcc" "src/CMakeFiles/fth.dir/ft/q_protect.cpp.o.d"
  "/root/repo/src/ft/reverse.cpp" "src/CMakeFiles/fth.dir/ft/reverse.cpp.o" "gcc" "src/CMakeFiles/fth.dir/ft/reverse.cpp.o.d"
  "/root/repo/src/hybrid/dev_blas.cpp" "src/CMakeFiles/fth.dir/hybrid/dev_blas.cpp.o" "gcc" "src/CMakeFiles/fth.dir/hybrid/dev_blas.cpp.o.d"
  "/root/repo/src/hybrid/device.cpp" "src/CMakeFiles/fth.dir/hybrid/device.cpp.o" "gcc" "src/CMakeFiles/fth.dir/hybrid/device.cpp.o.d"
  "/root/repo/src/hybrid/hybrid_gebrd.cpp" "src/CMakeFiles/fth.dir/hybrid/hybrid_gebrd.cpp.o" "gcc" "src/CMakeFiles/fth.dir/hybrid/hybrid_gebrd.cpp.o.d"
  "/root/repo/src/hybrid/hybrid_gehrd.cpp" "src/CMakeFiles/fth.dir/hybrid/hybrid_gehrd.cpp.o" "gcc" "src/CMakeFiles/fth.dir/hybrid/hybrid_gehrd.cpp.o.d"
  "/root/repo/src/hybrid/hybrid_sytrd.cpp" "src/CMakeFiles/fth.dir/hybrid/hybrid_sytrd.cpp.o" "gcc" "src/CMakeFiles/fth.dir/hybrid/hybrid_sytrd.cpp.o.d"
  "/root/repo/src/hybrid/stream.cpp" "src/CMakeFiles/fth.dir/hybrid/stream.cpp.o" "gcc" "src/CMakeFiles/fth.dir/hybrid/stream.cpp.o.d"
  "/root/repo/src/la/generate.cpp" "src/CMakeFiles/fth.dir/la/generate.cpp.o" "gcc" "src/CMakeFiles/fth.dir/la/generate.cpp.o.d"
  "/root/repo/src/la/io.cpp" "src/CMakeFiles/fth.dir/la/io.cpp.o" "gcc" "src/CMakeFiles/fth.dir/la/io.cpp.o.d"
  "/root/repo/src/lapack/gebrd.cpp" "src/CMakeFiles/fth.dir/lapack/gebrd.cpp.o" "gcc" "src/CMakeFiles/fth.dir/lapack/gebrd.cpp.o.d"
  "/root/repo/src/lapack/gehrd.cpp" "src/CMakeFiles/fth.dir/lapack/gehrd.cpp.o" "gcc" "src/CMakeFiles/fth.dir/lapack/gehrd.cpp.o.d"
  "/root/repo/src/lapack/geqrf.cpp" "src/CMakeFiles/fth.dir/lapack/geqrf.cpp.o" "gcc" "src/CMakeFiles/fth.dir/lapack/geqrf.cpp.o.d"
  "/root/repo/src/lapack/orghr.cpp" "src/CMakeFiles/fth.dir/lapack/orghr.cpp.o" "gcc" "src/CMakeFiles/fth.dir/lapack/orghr.cpp.o.d"
  "/root/repo/src/lapack/reflectors.cpp" "src/CMakeFiles/fth.dir/lapack/reflectors.cpp.o" "gcc" "src/CMakeFiles/fth.dir/lapack/reflectors.cpp.o.d"
  "/root/repo/src/lapack/sytrd.cpp" "src/CMakeFiles/fth.dir/lapack/sytrd.cpp.o" "gcc" "src/CMakeFiles/fth.dir/lapack/sytrd.cpp.o.d"
  "/root/repo/src/lapack/verify.cpp" "src/CMakeFiles/fth.dir/lapack/verify.cpp.o" "gcc" "src/CMakeFiles/fth.dir/lapack/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for fth.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/eigenvalues_under_faults.dir/eigenvalues_under_faults.cpp.o"
  "CMakeFiles/eigenvalues_under_faults.dir/eigenvalues_under_faults.cpp.o.d"
  "eigenvalues_under_faults"
  "eigenvalues_under_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eigenvalues_under_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for eigenvalues_under_faults.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hybrid_overlap.dir/hybrid_overlap.cpp.o"
  "CMakeFiles/hybrid_overlap.dir/hybrid_overlap.cpp.o.d"
  "hybrid_overlap"
  "hybrid_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/singular_values_under_faults.dir/singular_values_under_faults.cpp.o"
  "CMakeFiles/singular_values_under_faults.dir/singular_values_under_faults.cpp.o.d"
  "singular_values_under_faults"
  "singular_values_under_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/singular_values_under_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for singular_values_under_faults.
# This may be replaced when dependencies are built.

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for singular_values_under_faults.

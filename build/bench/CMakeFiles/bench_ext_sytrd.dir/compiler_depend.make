# Empty compiler generated dependencies file for bench_ext_sytrd.
# This may be replaced when dependencies are built.

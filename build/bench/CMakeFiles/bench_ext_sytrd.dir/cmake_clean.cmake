file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sytrd.dir/bench_ext_sytrd.cpp.o"
  "CMakeFiles/bench_ext_sytrd.dir/bench_ext_sytrd.cpp.o.d"
  "bench_ext_sytrd"
  "bench_ext_sytrd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sytrd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_related_qr.dir/bench_related_qr.cpp.o"
  "CMakeFiles/bench_related_qr.dir/bench_related_qr.cpp.o.d"
  "bench_related_qr"
  "bench_related_qr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_qr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_related_qr.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_orthogonality.dir/bench_table3_orthogonality.cpp.o"
  "CMakeFiles/bench_table3_orthogonality.dir/bench_table3_orthogonality.cpp.o.d"
  "bench_table3_orthogonality"
  "bench_table3_orthogonality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_orthogonality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

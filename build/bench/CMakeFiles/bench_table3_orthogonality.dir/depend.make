# Empty dependencies file for bench_table3_orthogonality.
# This may be replaced when dependencies are built.

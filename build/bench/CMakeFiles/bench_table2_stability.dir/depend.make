# Empty dependencies file for bench_table2_stability.
# This may be replaced when dependencies are built.

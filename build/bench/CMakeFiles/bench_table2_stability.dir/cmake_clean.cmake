file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_stability.dir/bench_table2_stability.cpp.o"
  "CMakeFiles/bench_table2_stability.dir/bench_table2_stability.cpp.o.d"
  "bench_table2_stability"
  "bench_table2_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ext_gebrd.
# This may be replaced when dependencies are built.

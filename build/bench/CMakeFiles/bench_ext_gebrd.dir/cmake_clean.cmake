file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_gebrd.dir/bench_ext_gebrd.cpp.o"
  "CMakeFiles/bench_ext_gebrd.dir/bench_ext_gebrd.cpp.o.d"
  "bench_ext_gebrd"
  "bench_ext_gebrd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_gebrd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_overhead_model.
# This may be replaced when dependencies are built.

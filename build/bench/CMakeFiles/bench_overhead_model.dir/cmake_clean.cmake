file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_model.dir/bench_overhead_model.cpp.o"
  "CMakeFiles/bench_overhead_model.dir/bench_overhead_model.cpp.o.d"
  "bench_overhead_model"
  "bench_overhead_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

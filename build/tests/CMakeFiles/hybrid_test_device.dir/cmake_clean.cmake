file(REMOVE_RECURSE
  "CMakeFiles/hybrid_test_device.dir/hybrid/test_device.cpp.o"
  "CMakeFiles/hybrid_test_device.dir/hybrid/test_device.cpp.o.d"
  "hybrid_test_device"
  "hybrid_test_device.pdb"
  "hybrid_test_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_test_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

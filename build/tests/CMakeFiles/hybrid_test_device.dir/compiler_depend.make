# Empty compiler generated dependencies file for hybrid_test_device.
# This may be replaced when dependencies are built.

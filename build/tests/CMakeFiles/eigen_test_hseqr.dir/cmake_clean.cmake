file(REMOVE_RECURSE
  "CMakeFiles/eigen_test_hseqr.dir/eigen/test_hseqr.cpp.o"
  "CMakeFiles/eigen_test_hseqr.dir/eigen/test_hseqr.cpp.o.d"
  "eigen_test_hseqr"
  "eigen_test_hseqr.pdb"
  "eigen_test_hseqr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eigen_test_hseqr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

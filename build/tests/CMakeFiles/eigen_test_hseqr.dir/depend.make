# Empty dependencies file for eigen_test_hseqr.
# This may be replaced when dependencies are built.

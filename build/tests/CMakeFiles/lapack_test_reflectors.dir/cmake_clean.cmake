file(REMOVE_RECURSE
  "CMakeFiles/lapack_test_reflectors.dir/lapack/test_reflectors.cpp.o"
  "CMakeFiles/lapack_test_reflectors.dir/lapack/test_reflectors.cpp.o.d"
  "lapack_test_reflectors"
  "lapack_test_reflectors.pdb"
  "lapack_test_reflectors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapack_test_reflectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

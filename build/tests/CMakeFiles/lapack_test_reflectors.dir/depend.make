# Empty dependencies file for lapack_test_reflectors.
# This may be replaced when dependencies are built.

# Empty dependencies file for la_test_blas2.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/la_test_blas2.dir/la/test_blas2.cpp.o"
  "CMakeFiles/la_test_blas2.dir/la/test_blas2.cpp.o.d"
  "la_test_blas2"
  "la_test_blas2.pdb"
  "la_test_blas2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_test_blas2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fault_test_injector.
# This may be replaced when dependencies are built.

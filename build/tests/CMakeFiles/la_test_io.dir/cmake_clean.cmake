file(REMOVE_RECURSE
  "CMakeFiles/la_test_io.dir/la/test_io.cpp.o"
  "CMakeFiles/la_test_io.dir/la/test_io.cpp.o.d"
  "la_test_io"
  "la_test_io.pdb"
  "la_test_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_test_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

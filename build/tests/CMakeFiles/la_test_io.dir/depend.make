# Empty dependencies file for la_test_io.
# This may be replaced when dependencies are built.

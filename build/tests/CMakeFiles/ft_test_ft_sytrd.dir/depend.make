# Empty dependencies file for ft_test_ft_sytrd.
# This may be replaced when dependencies are built.

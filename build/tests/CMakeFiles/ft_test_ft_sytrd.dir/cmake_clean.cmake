file(REMOVE_RECURSE
  "CMakeFiles/ft_test_ft_sytrd.dir/ft/test_ft_sytrd.cpp.o"
  "CMakeFiles/ft_test_ft_sytrd.dir/ft/test_ft_sytrd.cpp.o.d"
  "ft_test_ft_sytrd"
  "ft_test_ft_sytrd.pdb"
  "ft_test_ft_sytrd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_test_ft_sytrd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

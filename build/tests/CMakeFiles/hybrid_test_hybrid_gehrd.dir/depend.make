# Empty dependencies file for hybrid_test_hybrid_gehrd.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hybrid_test_hybrid_gehrd.dir/hybrid/test_hybrid_gehrd.cpp.o"
  "CMakeFiles/hybrid_test_hybrid_gehrd.dir/hybrid/test_hybrid_gehrd.cpp.o.d"
  "hybrid_test_hybrid_gehrd"
  "hybrid_test_hybrid_gehrd.pdb"
  "hybrid_test_hybrid_gehrd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_test_hybrid_gehrd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ft_test_ftqr_post.dir/ft/test_ftqr_post.cpp.o"
  "CMakeFiles/ft_test_ftqr_post.dir/ft/test_ftqr_post.cpp.o.d"
  "ft_test_ftqr_post"
  "ft_test_ftqr_post.pdb"
  "ft_test_ftqr_post[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_test_ftqr_post.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

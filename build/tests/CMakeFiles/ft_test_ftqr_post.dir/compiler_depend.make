# Empty compiler generated dependencies file for ft_test_ftqr_post.
# This may be replaced when dependencies are built.

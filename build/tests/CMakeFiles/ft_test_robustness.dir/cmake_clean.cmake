file(REMOVE_RECURSE
  "CMakeFiles/ft_test_robustness.dir/ft/test_robustness.cpp.o"
  "CMakeFiles/ft_test_robustness.dir/ft/test_robustness.cpp.o.d"
  "ft_test_robustness"
  "ft_test_robustness.pdb"
  "ft_test_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_test_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

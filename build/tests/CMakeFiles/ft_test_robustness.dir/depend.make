# Empty dependencies file for ft_test_robustness.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/la_test_norms.dir/la/test_norms.cpp.o"
  "CMakeFiles/la_test_norms.dir/la/test_norms.cpp.o.d"
  "la_test_norms"
  "la_test_norms.pdb"
  "la_test_norms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_test_norms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for la_test_norms.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/la_test_blas_float.dir/la/test_blas_float.cpp.o"
  "CMakeFiles/la_test_blas_float.dir/la/test_blas_float.cpp.o.d"
  "la_test_blas_float"
  "la_test_blas_float.pdb"
  "la_test_blas_float[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_test_blas_float.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for la_test_blas_float.
# This may be replaced when dependencies are built.

# Empty dependencies file for ft_test_locate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ft_test_locate.dir/ft/test_locate.cpp.o"
  "CMakeFiles/ft_test_locate.dir/ft/test_locate.cpp.o.d"
  "ft_test_locate"
  "ft_test_locate.pdb"
  "ft_test_locate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_test_locate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/la_test_matrix.dir/la/test_matrix.cpp.o"
  "CMakeFiles/la_test_matrix.dir/la/test_matrix.cpp.o.d"
  "la_test_matrix"
  "la_test_matrix.pdb"
  "la_test_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_test_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

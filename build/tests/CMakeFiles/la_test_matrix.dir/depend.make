# Empty dependencies file for la_test_matrix.
# This may be replaced when dependencies are built.

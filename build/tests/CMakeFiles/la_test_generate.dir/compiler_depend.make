# Empty compiler generated dependencies file for la_test_generate.
# This may be replaced when dependencies are built.

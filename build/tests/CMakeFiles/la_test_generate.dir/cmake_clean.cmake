file(REMOVE_RECURSE
  "CMakeFiles/la_test_generate.dir/la/test_generate.cpp.o"
  "CMakeFiles/la_test_generate.dir/la/test_generate.cpp.o.d"
  "la_test_generate"
  "la_test_generate.pdb"
  "la_test_generate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_test_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fault_test_campaign.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fault_test_campaign.dir/fault/test_campaign.cpp.o"
  "CMakeFiles/fault_test_campaign.dir/fault/test_campaign.cpp.o.d"
  "fault_test_campaign"
  "fault_test_campaign.pdb"
  "fault_test_campaign[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_test_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lapack_test_gebrd.
# This may be replaced when dependencies are built.

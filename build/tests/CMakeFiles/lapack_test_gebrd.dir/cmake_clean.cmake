file(REMOVE_RECURSE
  "CMakeFiles/lapack_test_gebrd.dir/lapack/test_gebrd.cpp.o"
  "CMakeFiles/lapack_test_gebrd.dir/lapack/test_gebrd.cpp.o.d"
  "lapack_test_gebrd"
  "lapack_test_gebrd.pdb"
  "lapack_test_gebrd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapack_test_gebrd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

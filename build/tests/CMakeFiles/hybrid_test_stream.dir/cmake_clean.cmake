file(REMOVE_RECURSE
  "CMakeFiles/hybrid_test_stream.dir/hybrid/test_stream.cpp.o"
  "CMakeFiles/hybrid_test_stream.dir/hybrid/test_stream.cpp.o.d"
  "hybrid_test_stream"
  "hybrid_test_stream.pdb"
  "hybrid_test_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_test_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for hybrid_test_stream.
# This may be replaced when dependencies are built.

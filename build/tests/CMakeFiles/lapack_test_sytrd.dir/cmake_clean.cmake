file(REMOVE_RECURSE
  "CMakeFiles/lapack_test_sytrd.dir/lapack/test_sytrd.cpp.o"
  "CMakeFiles/lapack_test_sytrd.dir/lapack/test_sytrd.cpp.o.d"
  "lapack_test_sytrd"
  "lapack_test_sytrd.pdb"
  "lapack_test_sytrd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapack_test_sytrd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

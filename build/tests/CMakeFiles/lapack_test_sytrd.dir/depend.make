# Empty dependencies file for lapack_test_sytrd.
# This may be replaced when dependencies are built.

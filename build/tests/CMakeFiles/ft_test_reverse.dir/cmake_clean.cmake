file(REMOVE_RECURSE
  "CMakeFiles/ft_test_reverse.dir/ft/test_reverse.cpp.o"
  "CMakeFiles/ft_test_reverse.dir/ft/test_reverse.cpp.o.d"
  "ft_test_reverse"
  "ft_test_reverse.pdb"
  "ft_test_reverse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_test_reverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

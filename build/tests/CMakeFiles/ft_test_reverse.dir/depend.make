# Empty dependencies file for ft_test_reverse.
# This may be replaced when dependencies are built.

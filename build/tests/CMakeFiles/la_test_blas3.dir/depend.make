# Empty dependencies file for la_test_blas3.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/la_test_blas3.dir/la/test_blas3.cpp.o"
  "CMakeFiles/la_test_blas3.dir/la/test_blas3.cpp.o.d"
  "la_test_blas3"
  "la_test_blas3.pdb"
  "la_test_blas3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_test_blas3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ft_test_stress.dir/ft/test_stress.cpp.o"
  "CMakeFiles/ft_test_stress.dir/ft/test_stress.cpp.o.d"
  "ft_test_stress"
  "ft_test_stress.pdb"
  "ft_test_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_test_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

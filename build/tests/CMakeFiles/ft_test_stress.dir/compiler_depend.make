# Empty compiler generated dependencies file for ft_test_stress.
# This may be replaced when dependencies are built.

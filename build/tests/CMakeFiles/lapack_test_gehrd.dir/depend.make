# Empty dependencies file for lapack_test_gehrd.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lapack_test_gehrd.dir/lapack/test_gehrd.cpp.o"
  "CMakeFiles/lapack_test_gehrd.dir/lapack/test_gehrd.cpp.o.d"
  "lapack_test_gehrd"
  "lapack_test_gehrd.pdb"
  "lapack_test_gehrd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapack_test_gehrd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

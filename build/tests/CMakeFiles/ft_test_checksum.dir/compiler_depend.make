# Empty compiler generated dependencies file for ft_test_checksum.
# This may be replaced when dependencies are built.

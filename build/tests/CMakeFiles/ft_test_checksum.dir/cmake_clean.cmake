file(REMOVE_RECURSE
  "CMakeFiles/ft_test_checksum.dir/ft/test_checksum.cpp.o"
  "CMakeFiles/ft_test_checksum.dir/ft/test_checksum.cpp.o.d"
  "ft_test_checksum"
  "ft_test_checksum.pdb"
  "ft_test_checksum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_test_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

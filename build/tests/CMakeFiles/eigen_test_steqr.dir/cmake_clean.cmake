file(REMOVE_RECURSE
  "CMakeFiles/eigen_test_steqr.dir/eigen/test_steqr.cpp.o"
  "CMakeFiles/eigen_test_steqr.dir/eigen/test_steqr.cpp.o.d"
  "eigen_test_steqr"
  "eigen_test_steqr.pdb"
  "eigen_test_steqr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eigen_test_steqr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for eigen_test_steqr.
# This may be replaced when dependencies are built.

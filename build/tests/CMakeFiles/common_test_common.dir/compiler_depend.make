# Empty compiler generated dependencies file for common_test_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/common_test_common.dir/common/test_common.cpp.o"
  "CMakeFiles/common_test_common.dir/common/test_common.cpp.o.d"
  "common_test_common"
  "common_test_common.pdb"
  "common_test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

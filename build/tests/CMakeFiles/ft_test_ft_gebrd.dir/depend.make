# Empty dependencies file for ft_test_ft_gebrd.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ft_test_ft_gebrd.dir/ft/test_ft_gebrd.cpp.o"
  "CMakeFiles/ft_test_ft_gebrd.dir/ft/test_ft_gebrd.cpp.o.d"
  "ft_test_ft_gebrd"
  "ft_test_ft_gebrd.pdb"
  "ft_test_ft_gebrd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_test_ft_gebrd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/la_test_blas1.dir/la/test_blas1.cpp.o"
  "CMakeFiles/la_test_blas1.dir/la/test_blas1.cpp.o.d"
  "la_test_blas1"
  "la_test_blas1.pdb"
  "la_test_blas1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_test_blas1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for la_test_blas1.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ft_test_ft_gehrd.dir/ft/test_ft_gehrd.cpp.o"
  "CMakeFiles/ft_test_ft_gehrd.dir/ft/test_ft_gehrd.cpp.o.d"
  "ft_test_ft_gehrd"
  "ft_test_ft_gehrd.pdb"
  "ft_test_ft_gehrd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_test_ft_gehrd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ft_test_ft_gehrd.
# This may be replaced when dependencies are built.

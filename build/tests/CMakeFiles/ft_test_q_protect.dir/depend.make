# Empty dependencies file for ft_test_q_protect.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ft_test_q_protect.dir/ft/test_q_protect.cpp.o"
  "CMakeFiles/ft_test_q_protect.dir/ft/test_q_protect.cpp.o.d"
  "ft_test_q_protect"
  "ft_test_q_protect.pdb"
  "ft_test_q_protect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_test_q_protect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

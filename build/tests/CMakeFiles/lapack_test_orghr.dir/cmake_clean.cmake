file(REMOVE_RECURSE
  "CMakeFiles/lapack_test_orghr.dir/lapack/test_orghr.cpp.o"
  "CMakeFiles/lapack_test_orghr.dir/lapack/test_orghr.cpp.o.d"
  "lapack_test_orghr"
  "lapack_test_orghr.pdb"
  "lapack_test_orghr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapack_test_orghr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lapack_test_orghr.
# This may be replaced when dependencies are built.

#include "ft/q_protect.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace fth::ft {

QProtector::QProtector(index_t n, index_t row_offset) : n_(n), off_(row_offset) {
  FTH_CHECK(n >= 0, "QProtector: negative dimension");
  FTH_CHECK(row_offset >= 1, "QProtector: row offset must be at least 1");
  row_chk_.assign(static_cast<std::size_t>(n), 0.0);
  col_chk_.assign(static_cast<std::size_t>(n), 0.0);
}

QProtector::PanelChecksums QProtector::compute_panel(MatrixView<const double> a, index_t k,
                                                     index_t ib) const {
  FTH_CHECK(a.rows() == n_ && a.cols() == n_, "QProtector: matrix dimension mismatch");
  FTH_CHECK(k >= 0 && ib >= 0 && k + ib <= n_, "QProtector: panel out of range");
  PanelChecksums pc;
  pc.k = k;
  pc.ib = ib;
  pc.row_partial.assign(static_cast<std::size_t>(n_), 0.0);
  pc.col_segment.assign(static_cast<std::size_t>(ib), 0.0);
  for (index_t j = 0; j < ib; ++j) {
    const index_t c = k + j;
    double cs = 0.0;
    for (index_t r = c + off_; r < n_; ++r) {
      const double v = a(r, c);
      pc.row_partial[static_cast<std::size_t>(r)] += v;
      cs += v;
    }
    pc.col_segment[static_cast<std::size_t>(j)] = cs;
  }
  return pc;
}

void QProtector::commit(const PanelChecksums& pc) {
  FTH_CHECK(pc.k == committed_, "QProtector: panels must be committed in order");
  for (index_t r = 0; r < n_; ++r)
    row_chk_[static_cast<std::size_t>(r)] += pc.row_partial[static_cast<std::size_t>(r)];
  for (index_t j = 0; j < pc.ib; ++j)
    col_chk_[static_cast<std::size_t>(pc.k + j)] = pc.col_segment[static_cast<std::size_t>(j)];
  committed_ = pc.k + pc.ib;
}

QProtector::Result QProtector::verify_and_correct(MatrixView<double> a, index_t upto,
                                                  double tol) const {
  FTH_CHECK(a.rows() == n_ && a.cols() == n_, "QProtector: matrix dimension mismatch");
  FTH_CHECK(upto <= committed_, "QProtector: verifying uncommitted columns");
  Result res;

  // Fresh sums over the protected trapezoid.
  std::vector<double> fresh_row(static_cast<std::size_t>(n_), 0.0);
  std::vector<double> fresh_col(static_cast<std::size_t>(n_), 0.0);
  for (index_t c = 0; c < upto; ++c) {
    double cs = 0.0;
    for (index_t r = c + off_; r < n_; ++r) {
      const double v = a(r, c);
      fresh_row[static_cast<std::size_t>(r)] += v;
      cs += v;
    }
    fresh_col[static_cast<std::size_t>(c)] = cs;
  }

  // Locate: a single corrupted element (p, q) perturbs fresh_row[p] and
  // fresh_col[q] by the same delta. Pair them greedily by magnitude.
  std::vector<std::pair<index_t, double>> bad_rows;
  std::vector<std::pair<index_t, double>> bad_cols;
  for (index_t r = 0; r < n_; ++r) {
    const double gap = fresh_row[static_cast<std::size_t>(r)] - row_chk_[static_cast<std::size_t>(r)];
    res.max_row_gap = std::max(res.max_row_gap, std::abs(gap));
    if (std::abs(gap) > tol) bad_rows.emplace_back(r, gap);
  }
  for (index_t c = 0; c < upto; ++c) {
    const double gap = fresh_col[static_cast<std::size_t>(c)] - col_chk_[static_cast<std::size_t>(c)];
    res.max_col_gap = std::max(res.max_col_gap, std::abs(gap));
    if (std::abs(gap) > tol) bad_cols.emplace_back(c, gap);
  }
  if (bad_rows.empty() && bad_cols.empty()) return res;
  if (bad_rows.size() != bad_cols.size()) {
    throw recovery_error("Q protection: row/column mismatch counts differ — errors share a "
                         "row or column of the Householder storage");
  }

  for (auto& [r, rgap] : bad_rows) {
    // Find the unique column whose gap matches this row's gap.
    index_t match = -1;
    int candidates = 0;
    for (auto& [c, cgap] : bad_cols) {
      if (std::abs(rgap - cgap) <= 2.0 * tol + 1e-9 * std::abs(rgap)) {
        ++candidates;
        match = c;
      }
    }
    if (candidates == 0) throw recovery_error("Q protection: unmatched row discrepancy");
    if (candidates > 1) {
      throw recovery_error("Q protection: ambiguous (rectangle) error pattern");
    }
    FTH_ASSERT(r >= match + off_, "Q protection: located element outside the trapezoid");
    a(r, match) -= rgap;
    ++res.corrections;
  }
  return res;
}

}  // namespace fth::ft

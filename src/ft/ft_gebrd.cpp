#include "ft/ft_gebrd.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "fault/fault_plane.hpp"
#include "ft/checksum.hpp"
#include "ft/locate.hpp"
#include "ft/q_protect.hpp"
#include "ft/recovery.hpp"
#include "hybrid/dev_blas.hpp"
#include "la/blas1.hpp"
#include "la/norms.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "lapack/gebrd.hpp"
#include "lapack/gebrd_impl.hpp"

namespace fth::ft {

index_t ft_gebrd_boundaries(index_t n, index_t nb) {
  index_t count = 0;
  index_t i = 0;
  while (i < n - 1) {
    i += std::min(nb, n - 1 - i);
    ++count;
  }
  return count;
}

namespace {

using hybrid::copy_d2h;
using hybrid::copy_d2h_async;
using hybrid::copy_h2d;
using hybrid::copy_h2d_async;

/// Thrown by the panel tripwires when a device-assisted product comes back
/// non-finite: applying the reflector pair would smear NaN/Inf across the
/// whole trailing matrix, so the panel is abandoned before any update.
struct panel_poisoned_error {};

/// RAII bracket telling the fault plane a recovery re-execution is active
/// (DuringRecovery faults only count triggers inside the bracket).
class RecoveryScope {
 public:
  explicit RecoveryScope(fault::FaultPlane* p) : p_(p) {
    if (p_ != nullptr) p_->set_in_recovery(true);
  }
  ~RecoveryScope() {
    if (p_ != nullptr) p_->set_in_recovery(false);
  }
  RecoveryScope(const RecoveryScope&) = delete;
  RecoveryScope& operator=(const RecoveryScope&) = delete;

 private:
  fault::FaultPlane* p_;
};

class FtGebrdDriver {
 public:
  FtGebrdDriver(hybrid::Device& dev, MatrixView<double> a, VectorView<double> d,
                VectorView<double> e, VectorView<double> tauq, VectorView<double> taup,
                const FtGebrdOptions& opt, fault::Injector* inj, FtReport& rep,
                hybrid::HybridGehrdStats& st)
      : s_(dev.stream()),
        a_(a),
        d_(d),
        e_(e),
        tauq_(tauq),
        taup_(taup),
        opt_(opt),
        inj_(inj),
        rep_(rep),
        st_(st),
        n_(a.rows()),
        d_a_(dev, n_, n_, "gebrd.ft.d_a"),
        d_v2_(dev, n_, std::max<index_t>(opt.nb, 1), "gebrd.ft.d_v2"),
        d_y2_(dev, n_, std::max<index_t>(opt.nb, 1), "gebrd.ft.d_y2"),
        d_x2_(dev, n_, std::max<index_t>(opt.nb, 1), "gebrd.ft.d_x2"),
        d_u2_(dev, std::max<index_t>(opt.nb, 1), n_, "gebrd.ft.d_u2"),
        d_chkc_(dev, n_, 1, "gebrd.ft.d_chkc"),
        d_chkr_(dev, n_, 1, "gebrd.ft.d_chkr"),
        d_ones_(dev, n_, 1, "gebrd.ft.d_ones"),
        d_vec_(dev, n_, 1, "gebrd.ft.d_vec"),
        d_res_(dev, n_, 1, "gebrd.ft.d_res"),
        d_sums_(dev, std::max<index_t>(opt.nb, 1), 4, "gebrd.ft.d_sums"),
        d_pc_(dev, n_, 2, "gebrd.ft.d_pc"),
        d_fresh_(dev, n_, 2, "gebrd.ft.d_fresh"),
        x_host_(n_, std::max<index_t>(opt.nb, 1)),
        y_host_(n_, std::max<index_t>(opt.nb, 1)),
        ckpt_cols_(n_, std::max<index_t>(opt.nb, 1)),
        ckpt_rows_(std::max<index_t>(opt.nb, 1), n_),
        ckpt_chkc_(n_, 1),
        ckpt_chkr_(n_, 1),
        seg_(std::max<index_t>(opt.nb, 1), 2),
        at_mirror_(n_, n_),
        qp_v_(n_, /*row_offset=*/1),
        qp_u_(n_, /*row_offset=*/2) {
    const double fro = norm_fro(MatrixView<const double>(a_));
    scale_max_ = norm_max(MatrixView<const double>(a_));
    threshold_ = opt.threshold > 0
                     ? opt.threshold
                     : 50.0 * default_threshold(fro, n_, opt.threshold_factor) /
                           static_cast<double>(std::max<index_t>(n_, 1));
    total_boundaries_ = ft_gebrd_boundaries(n_, opt.nb);
    rep_.threshold = threshold_;
    plane_ = opt.fault_plane;
    if (plane_ != nullptr) plane_->bind(dev);
  }

  ~FtGebrdDriver() {
    if (plane_ != nullptr) {
      // Drain the stream so no hook invocation is in flight when the hooks
      // come down (the plane may be destroyed right after the driver).
      try {
        s_.synchronize();
      } catch (...) {  // NOLINT(bugprone-empty-catch): unwinding already
      }
      plane_->unbind();
    }
  }

  void run() {
    encode();
    index_t i = 0;
    index_t boundary = 0;
    while (i < n_ - 1) {
      const index_t ib = std::min(opt_.nb, n_ - 1 - i);
      const bool completed = run_iteration(i, ib);
      ++boundary;
      if (inj_ != nullptr) inject_at_boundary(boundary, i + ib);
      const bool check_now = opt_.detect_every <= 1 ||
                             boundary % opt_.detect_every == 0 || i + ib >= n_ - 1;
      // A poisoned panel forces a check regardless of the amortization
      // knob: the next iteration would otherwise consume the damage.
      if (check_now || !completed) ensure_clean(boundary, i, ib, completed);
      if (opt_.protect_qp) {
        qp_v_.commit(pending_v_);
        qp_u_.commit(pending_u_);
      }
      ++st_.panels;
      i += ib;
    }
    final_phase();
    // Clean means NOTHING fired: a run that survived only because a
    // checkpoint was re-derived, a non-finite element reconstructed, or a
    // poisoned panel abandoned was still a recovery.
    rep_.outcome.status = (rep_.detections > 0 || rep_.final_sweep_corrections > 0 ||
                           rep_.q_corrections > 0 || rep_.ckpt_rederivations > 0 ||
                           rep_.reconstructions > 0 || rep_.panel_aborts > 0)
                              ? RecoveryStatus::Recovered
                              : RecoveryStatus::Clean;
  }

 private:
  void encode() {
    WallTimer t;
    obs::TraceSpan span("ft", "encode", "n", static_cast<double>(n_));
    copy_h2d_async(s_, MatrixView<const double>(a_), d_a_.view());
    hybrid::fill_async(s_, d_ones_.view(), 1.0);
    auto ones = d_ones_.view().col(0);
    hybrid::gemv_async(s_, Trans::No, 1.0, d_a_.view(), ones, 0.0, d_chkc_.view().col(0));
    hybrid::gemv_async(s_, Trans::Yes, 1.0, d_a_.view(), ones, 0.0, d_chkr_.view().col(0));
    // Intentional full barrier, once per run: mark_encoded() below opens
    // the fault gate, and both codes must exist on the device before any
    // strike is allowed. fth-perf: expect coarse-synchronize
    s_.synchronize();
    rep_.encode_seconds += t.seconds();
    // Faults are gated until the codes exist: an earlier strike would be
    // encoded consistently and become a different (but protected) input.
    if (plane_ != nullptr) plane_->mark_encoded();
  }

  // Returns false if a panel tripwire abandoned the iteration before any
  // update touched the trailing matrix (caller rolls back and redoes).
  bool run_iteration(index_t i, index_t ib) {
    const index_t tn = n_ - i - ib;

    // Re-aim the fault plane at this iteration's live regions. The device
    // panel column/row blocks are excluded: their truth lives on the host
    // during the iteration and the finished segments are re-encoded from
    // host data, so a strike there is consistent-wrong dead storage the
    // accounting cannot see. The checkpoint surface is registered only
    // after its integrity sums are taken.
    if (plane_ != nullptr) {
      plane_->register_surface(fault::Surface::TrailingMatrix,
                               d_a_.block(i + ib, i + ib, tn, tn));
      // Trailing segments only: the panel segments [i, i+ib) are re-encoded
      // from host data at the end of the iteration, so a strike there before
      // the re-encode is dead storage the comparison can never see.
      plane_->register_surface(fault::Surface::ChecksumCol,
                               d_chkc_.block(i + ib, 0, tn, 1));
      plane_->register_surface(fault::Surface::ChecksumRow,
                               d_chkr_.block(i + ib, 0, tn, 1));
      plane_->clear_surface(fault::Surface::Checkpoint);
      plane_->clear_transfer_targets();
      // Fault-eligible transfer destinations inside the protected domain:
      // the checkpointed checksum-vector pre-images (d2h, checkpoint save).
      // The panel d2h lands in host a_, the reliable domain by the paper's
      // model — corrupting it would be a silently wrong result everywhere.
      plane_->add_transfer_target(fault::Surface::Checkpoint, ckpt_chkc_.view());
      plane_->add_transfer_target(fault::Surface::Checkpoint, ckpt_chkr_.view());
    }

    // Column panel, row panel, and both checksum vectors to the host;
    // checkpoint all four (diskless checkpointing).
    WallTimer panel_timer;
    {
      obs::TraceSpan ckpt_span("ft", "checkpoint_save", "col", static_cast<double>(i));
      // Column panel rows ≥ i only: the rows above hold finished host data
      // (P's Householder storage and the superdiagonal) whose device copy is
      // stale by design.
      copy_d2h_async(s_, d_a_.block(i, i, n_ - i, ib), a_.block(i, i, n_ - i, ib));
      copy_d2h_async(s_, d_a_.block(i, i + ib, ib, tn), a_.block(i, i + ib, ib, tn));
      copy_d2h_async(s_, d_chkc_.view(), ckpt_chkc_.view());
      copy_d2h(s_, d_chkr_.view(), ckpt_chkr_.view());
      fth::copy(MatrixView<const double>(a_.block(i, i, n_ - i, ib)),
                ckpt_cols_.block(0, 0, n_ - i, ib));
      fth::copy(MatrixView<const double>(a_.block(i, i + ib, ib, tn)),
                ckpt_rows_.block(0, 0, ib, tn));
      // The d2h that filled the vector checkpoints is itself fault-eligible
      // and the dual-sum verify can only vouch for what was stored, not for
      // the transfer. Cross-check bitwise against the device's maintained
      // vectors via a raw task readback (not a copy_* transfer, hence not
      // fault-eligible) and repair on mismatch.
      verify_chk_checkpoint_save();
      save_checkpoint_sums(i, ib);
      if (plane_ != nullptr)
        plane_->register_surface(fault::Surface::Checkpoint,
                                 ckpt_cols_.block(0, 0, n_ - i, ib));
    }

    bool poisoned = false;
    {
      obs::TraceSpan panel_span("hybrid", "panel", "col", static_cast<double>(i));
      try {
        lapack::detail::labrd_panel(
            a_, i, ib, d_.sub(i, ib), e_.sub(i, ib), tauq_.sub(i, ib), taup_.sub(i, ib),
            x_host_.view(), y_host_.view(),
            [&](index_t j, VectorView<const double> v, VectorView<double> ycol) {
              const index_t cj = i + j;
              const index_t mlen = n_ - cj;
              const index_t nlen = n_ - cj - 1;
              copy_h2d_async(s_, MatrixView<const double>(v.data(), mlen, 1, mlen),
                             d_vec_.block(0, 0, mlen, 1));
              hybrid::gemv_async(s_, Trans::Yes, 1.0, d_a_.block(cj, cj + 1, mlen, nlen),
                                 d_vec_.view().col(0).sub(0, mlen), 0.0,
                                 d_res_.view().col(0).sub(0, nlen));
              copy_d2h(s_, d_res_.block(0, 0, nlen, 1),
                       MatrixView<double>(ycol.data(), nlen, 1, nlen));
              // Tripwire: a non-finite product means a NaN/Inf strike
              // reached the trailing matrix mid-panel.
              for (index_t r = 0; r < nlen; ++r)
                if (!std::isfinite(ycol[r])) throw panel_poisoned_error{};
            },
            [&](index_t j, VectorView<const double> u, VectorView<double> xcol) {
              const index_t cj = i + j;
              const index_t nlen = n_ - cj - 1;
              Matrix<double> dense(nlen, 1);
              for (index_t r = 0; r < nlen; ++r) dense(r, 0) = u[r];
              copy_h2d_async(s_, dense.cview(), d_vec_.block(0, 0, nlen, 1));
              hybrid::gemv_async(s_, Trans::No, 1.0, d_a_.block(cj + 1, cj + 1, nlen, nlen),
                                 d_vec_.view().col(0).sub(0, nlen), 0.0,
                                 d_res_.view().col(0).sub(0, nlen));
              copy_d2h(s_, d_res_.block(0, 0, nlen, 1),
                       MatrixView<double>(xcol.data(), nlen, 1, nlen));
              for (index_t r = 0; r < nlen; ++r)
                if (!std::isfinite(xcol[r])) throw panel_poisoned_error{};
            });
      } catch (const panel_poisoned_error&) {
        poisoned = true;
      }
    }
    st_.panel_seconds += panel_timer.seconds();
    if (poisoned) {
      s_.synchronize();
      ++rep_.panel_aborts;
      obs::counter_metric("ft.panel_aborts").add();
      obs::instant("ft", "panel_abort");
      obs::journal_log(obs::JournalSeverity::Warn, "ft", "panel_abort", -1, 0.0, i);
      return false;
    }

    WallTimer update_timer;
    {
      obs::TraceSpan update_span("hybrid", "update", "col", static_cast<double>(i));
      // Ship the four trailing-update operands.
      copy_h2d_async(s_, MatrixView<const double>(a_.block(i + ib, i, tn, ib)),
                     d_v2_.block(0, 0, tn, ib));
      copy_h2d_async(s_, MatrixView<const double>(y_host_.block(i + ib, 0, tn, ib)),
                     d_y2_.block(0, 0, tn, ib));
      copy_h2d_async(s_, MatrixView<const double>(x_host_.block(i + ib, 0, tn, ib)),
                     d_x2_.block(0, 0, tn, ib));
      copy_h2d_async(s_, MatrixView<const double>(a_.block(i, i + ib, ib, tn)),
                     d_u2_.block(0, 0, ib, tn));
      // The U2 transfer must observe the panel's unit entries; the host may
      // only restore the pivots after it completed (see the wait below).
      const hybrid::Event operands_shipped = s_.record();

      auto v2 = d_v2_.block(0, 0, tn, ib);
      auto y2 = d_y2_.block(0, 0, tn, ib);
      auto x2 = d_x2_.block(0, 0, tn, ib);
      auto u2 = d_u2_.block(0, 0, ib, tn);
      auto ones_tn = d_ones_.view().col(0).sub(0, tn);
      auto ones_ib = d_ones_.view().col(0).sub(0, ib);

      // Aggregate sums for the checksum algebra.
      hybrid::gemv_async(s_, Trans::Yes, 1.0, y2, ones_tn, 0.0, d_sums_.view().col(0).sub(0, ib));
      hybrid::gemv_async(s_, Trans::No, 1.0, u2, ones_tn, 0.0, d_sums_.view().col(1).sub(0, ib));
      hybrid::gemv_async(s_, Trans::Yes, 1.0, v2, ones_tn, 0.0, d_sums_.view().col(2).sub(0, ib));
      hybrid::gemv_async(s_, Trans::Yes, 1.0, x2, ones_tn, 0.0, d_sums_.view().col(3).sub(0, ib));
      // Old panel-column / panel-row contributions (the device's panel data
      // is still pristine start-of-iteration state).
      hybrid::gemv_async(s_, Trans::No, 1.0, d_a_.block(i + ib, i, tn, ib), ones_ib, 0.0,
                         d_pc_.view().col(0).sub(0, tn));
      hybrid::gemv_async(s_, Trans::Yes, 1.0, d_a_.block(i, i + ib, ib, tn), ones_ib, 0.0,
                         d_pc_.view().col(1).sub(0, tn));

      // Maintained checksums, trailing segments:
      //   Δchk_col = −pc_cols − V2·(Y2ᵀe) − X2·(U2·e)
      //   Δchk_row = −pc_rows − Y2·(V2ᵀe) − U2ᵀ·(X2ᵀe)
      auto sy2 = d_sums_.view().col(0).sub(0, ib);
      auto su2 = d_sums_.view().col(1).sub(0, ib);
      auto sv2 = d_sums_.view().col(2).sub(0, ib);
      auto sx2 = d_sums_.view().col(3).sub(0, ib);
      auto chkc_tail = d_chkc_.view().col(0).sub(i + ib, tn);
      auto chkr_tail = d_chkr_.view().col(0).sub(i + ib, tn);
      hybrid::axpy_async(s_, -1.0, d_pc_.view().col(0).sub(0, tn), chkc_tail);
      hybrid::gemv_async(s_, Trans::No, -1.0, v2, sy2, 1.0, chkc_tail);
      hybrid::gemv_async(s_, Trans::No, -1.0, x2, su2, 1.0, chkc_tail);
      hybrid::axpy_async(s_, -1.0, d_pc_.view().col(1).sub(0, tn), chkr_tail);
      hybrid::gemv_async(s_, Trans::No, -1.0, y2, sv2, 1.0, chkr_tail);
      hybrid::gemv_async(s_, Trans::Yes, -1.0, u2, sx2, 1.0, chkr_tail);

      // Trailing update: A −= V2·Y2ᵀ + X2·U2 — the right (Q-side) and left
      // (P-side) halves; the seam between them is the between-updates
      // window of the fault plane.
      hybrid::gemm_async(s_, Trans::No, Trans::Yes, -1.0, v2, y2, 1.0,
                         d_a_.block(i + ib, i + ib, tn, tn));
      if (plane_ != nullptr) plane_->on_between_updates(s_);
      hybrid::gemm_async(s_, Trans::No, Trans::No, -1.0, x2, u2, 1.0,
                         d_a_.block(i + ib, i + ib, tn, tn));

      // Host work overlapped with the device GEMMs: pivots back in place,
      // Householder-protection panel sums, transposed mirror of the rows.
      operands_shipped.wait();
      for (index_t j = 0; j < ib; ++j) {
        a_(i + j, i + j) = d_[i + j];
        a_(i + j, i + j + 1) = e_[i + j];
      }
      if (opt_.protect_qp) {
        WallTimer qt;
        obs::TraceSpan q_span("ft", "q_checksum");
        pending_v_ = qp_v_.compute_panel(MatrixView<const double>(a_), i, ib);
        for (index_t j = 0; j < ib; ++j) {
          const index_t r = i + j;
          for (index_t c = 0; c < n_; ++c) at_mirror_(c, r) = a_(r, c);
        }
        pending_u_ = qp_u_.compute_panel(at_mirror_.cview(), i, ib);
        rep_.q_seconds += qt.seconds();
      }

      // Finished panel rows/columns of the checksums: re-encode from the
      // final bidiagonal data, and account the new coupling entry
      // e_last = B(i+ib−1, i+ib) in the trailing column i+ib.
      for (index_t j = 0; j < ib; ++j) {
        const index_t r = i + j;
        seg_(j, 0) = a_(r, r) + a_(r, r + 1);                      // row sum of B row r
        seg_(j, 1) = a_(r, r) + (r > 0 ? a_(r - 1, r) : 0.0);      // col sum of B col r
      }
      copy_h2d_async(s_, seg_.block(0, 0, ib, 1), d_chkc_.block(i, 0, ib, 1));
      copy_h2d_async(s_, seg_.block(0, 1, ib, 1), d_chkr_.block(i, 0, ib, 1));
      const double e_last = e_[i + ib - 1];
      auto cr = d_chkr_.view();
      s_.enqueue("ft.couple", FTH_TASK_EFFECTS(FTH_WRITES(d_chkr_.view())),
                 [cr, i, ib, e_last] { cr.in_task()(i + ib, 0) += e_last; });
      // No loop-bottom synchronize: the seg_ uploads and the couple task
      // stay in flight and are retired by detect()'s synchronous fetch
      // before the host refills seg_ (fth_analyze --perf flagged the old
      // barrier as coarse-synchronize).
    }
    st_.update_seconds += update_timer.seconds();
    return true;
  }

  /// Fresh logical row sums (col == false) or column sums (col == true) of
  /// the current state with finished region [0, i2).
  std::vector<double> fresh_sums(index_t i2, bool col) {
    std::vector<double> fresh(static_cast<std::size_t>(n_), 0.0);
    // Finished rows/columns: bidiagonal entries from the host matrix.
    for (index_t r = 0; r < i2 && r < n_; ++r) {
      fresh[static_cast<std::size_t>(r)] =
          col ? a_(r, r) + (r > 0 ? a_(r - 1, r) : 0.0)
              : a_(r, r) + (r + 1 < n_ ? a_(r, r + 1) : 0.0);
    }
    if (i2 >= n_) return fresh;
    const index_t tn = n_ - i2;
    hybrid::gemv_async(s_, col ? Trans::Yes : Trans::No, 1.0, d_a_.block(i2, i2, tn, tn),
                       d_ones_.view().col(0).sub(0, tn), 0.0,
                       d_fresh_.view().col(0).sub(0, tn));
    std::vector<double> trail(static_cast<std::size_t>(tn));
    s_.enqueue("ft.fresh_readback", FTH_TASK_EFFECTS(FTH_READS(d_fresh_.view())),
                [this, tn, &trail] {
      auto f = d_fresh_.view().col(0).in_task();
      for (index_t r = 0; r < tn; ++r) trail[static_cast<std::size_t>(r)] = f[r];
    });
    s_.synchronize();
    for (index_t r = 0; r < tn; ++r)
      fresh[static_cast<std::size_t>(i2 + r)] = trail[static_cast<std::size_t>(r)];
    // Coupling: the superdiagonal entry B(i2−1, i2) belongs to trailing
    // column i2 but lives in a finished row.
    if (col && i2 > 0) fresh[static_cast<std::size_t>(i2)] += a_(i2 - 1, i2);
    return fresh;
  }

  std::vector<double> fetch_chk(bool col) {
    std::vector<double> out(static_cast<std::size_t>(n_));
    s_.enqueue("ft.chk_readback",
                FTH_TASK_EFFECTS(FTH_READS(d_chkc_.view(), d_chkr_.view())),
                [this, &out, col] {
      auto c = (col ? d_chkr_.view() : d_chkc_.view()).col(0).in_task();
      for (index_t r = 0; r < n_; ++r) out[static_cast<std::size_t>(r)] = c[r];
    });
    s_.synchronize();
    return out;
  }

  /// One full fresh-vs-maintained comparison at finished boundary `i2`.
  /// NaN-safe: a non-finite delta always flags its line (the plain
  /// `> threshold` comparison is false for NaN) and raises has_nonfinite_.
  Discrepancy compare(index_t i2, FreshSums* fresh_out) {
    FreshSums fresh;
    fresh.row = fresh_sums(i2, false);
    fresh.col = fresh_sums(i2, true);
    const std::vector<double> chkc = fetch_chk(false);
    const std::vector<double> chkr = fetch_chk(true);
    has_nonfinite_ = false;
    Discrepancy d;
    for (index_t r = 0; r < n_; ++r) {
      const double delta = fresh.row[static_cast<std::size_t>(r)] - chkc[static_cast<std::size_t>(r)];
      if (!(std::abs(delta) <= threshold_)) {
        d.rows.push_back(r);
        d.row_delta.push_back(delta);
      }
      if (std::isfinite(delta)) {
        worst_gap_ = std::max(worst_gap_, std::abs(delta));
      } else {
        has_nonfinite_ = true;
      }
    }
    for (index_t c = 0; c < n_; ++c) {
      const double delta = fresh.col[static_cast<std::size_t>(c)] - chkr[static_cast<std::size_t>(c)];
      if (!(std::abs(delta) <= threshold_)) {
        d.cols.push_back(c);
        d.col_delta.push_back(delta);
      }
      if (std::isfinite(delta)) {
        worst_gap_ = std::max(worst_gap_, std::abs(delta));
      } else {
        has_nonfinite_ = true;
      }
    }
    if (fresh_out != nullptr) *fresh_out = std::move(fresh);
    return d;
  }

  void ensure_clean(index_t boundary, index_t i, index_t ib, bool completed) {
    int attempts = 0;
    for (;;) {
      WallTimer dt;
      worst_gap_ = 0.0;
      Discrepancy disc;
      bool clean;
      if (completed) {
        obs::TraceSpan det_span("ft", "detect");
        disc = compare(i + ib, nullptr);
        clean = disc.clean();
      } else {
        // The panel tripwire already proved the iteration unusable; there
        // is nothing meaningful to measure, so synthesize the detection.
        has_nonfinite_ = true;
        clean = false;
      }
      rep_.detect_seconds += dt.seconds();
      if (!has_nonfinite_) {
        obs::histogram_metric("ft.detect_gap").observe(worst_gap_);
        obs::counter("ft.detect_gap", worst_gap_);
      }
      if (clean) {
        rep_.max_fault_free_gap = std::max(rep_.max_fault_free_gap, worst_gap_);
        return;
      }
      const double gap =
          has_nonfinite_ ? std::numeric_limits<double>::quiet_NaN() : worst_gap_;

      ++rep_.detections;
      obs::instant("ft", "detection");
      obs::counter_metric("ft.detections").add();
      obs::journal_log(obs::JournalSeverity::Warn, "ft", "detect", -1, gap, boundary);
      if (has_nonfinite_) obs::counter_metric("ft.nonfinite_detections").add();
      if (++attempts > opt_.max_retries) {
        std::ostringstream os;
        os << "gap " << gap << " > threshold " << threshold_
           << " after exhausting retries";
        abort_recovery(rep_.outcome, "ft_gebrd", AbortReason::RetriesExhausted, boundary,
                       attempts - 1, gap, threshold_, os.str());
      }

      WallTimer rt;
      FtEvent ev;
      ev.boundary = boundary;
      ev.gap = gap;
      ev.panel_poisoned = !completed;
      {
        obs::TraceSpan rb_span("ft", "rollback", "col", static_cast<double>(i));
        rollback(i, ib, completed);
      }
      ++rep_.rollbacks;
      obs::counter_metric("ft.rollbacks").add();
      obs::journal_log(obs::JournalSeverity::Info, "ft", "rollback", -1,
                       static_cast<double>(attempts), boundary);

      try {
        // Pass 1 may reconstruct non-finite elements from the orthogonal
        // code; a second pass mops up finite residue and re-encodes any
        // checksum storage the damage propagated through.
        for (int pass = 0; pass < 2; ++pass) {
          obs::TraceSpan loc_span("ft", "locate");
          FreshSums fresh;
          const Discrepancy pre = compare(i, &fresh);
          const LocateResult res = locate(pre, fresh, threshold_);
          apply_corrections(res, i, ev);
          if (res.reconstructions.empty()) break;
        }
      } catch (const recovery_error& e) {
        const AbortReason why = has_nonfinite_ ? AbortReason::NonfiniteDamage
                                               : AbortReason::AmbiguousPattern;
        rep_.events.push_back(std::move(ev));
        abort_recovery(rep_.outcome, "ft_gebrd", why, boundary, attempts, gap, threshold_,
                       e.what());
      }
      ev.checkpoint_only = ev.data_corrections == 0 && ev.checksum_corrections == 0 &&
                           ev.reconstructions == 0;
      rep_.data_corrections += ev.data_corrections;
      rep_.checksum_corrections += ev.checksum_corrections;
      obs::counter_metric("ft.data_corrections").add(static_cast<std::uint64_t>(ev.data_corrections));
      obs::counter_metric("ft.checksum_corrections")
          .add(static_cast<std::uint64_t>(ev.checksum_corrections));
      if (ev.checkpoint_only) obs::counter_metric("ft.checkpoint_only_recoveries").add();
      rep_.events.push_back(std::move(ev));

      {
        obs::TraceSpan redo_span("ft", "reexec", "col", static_cast<double>(i));
        obs::counter_metric("ft.reexecutions").add();
        obs::journal_log(obs::JournalSeverity::Info, "ft", "reexec", -1,
                         static_cast<double>(attempts), boundary);
        const RecoveryScope in_recovery(plane_);
        completed = run_iteration(i, ib);
      }
      rep_.recovery_seconds += rt.seconds();
    }
  }

  void rollback(index_t i, index_t ib, bool completed) {
    const index_t tn = n_ - i - ib;
    if (completed) {
      // Reverse the two trailing GEMMs exactly (retained operands). A
      // poisoned panel never applied them.
      hybrid::gemm_async(s_, Trans::No, Trans::Yes, 1.0, d_v2_.block(0, 0, tn, ib),
                         d_y2_.block(0, 0, tn, ib), 1.0,
                         d_a_.block(i + ib, i + ib, tn, tn));
      hybrid::gemm_async(s_, Trans::No, Trans::No, 1.0, d_x2_.block(0, 0, tn, ib),
                         d_u2_.block(0, 0, ib, tn), 1.0,
                         d_a_.block(i + ib, i + ib, tn, tn));
    }
    // Drain before touching the checkpoints from the host: in-flight faults
    // fire on the worker thread and may target the checkpoint buffers.
    // Recovery cold path, not worth an Event edge. fth-perf: expect coarse-synchronize
    s_.synchronize();
    obs::TraceSpan restore_span("ft", "checkpoint_restore", "col", static_cast<double>(i));
    verify_or_rederive_panel_checkpoints(i, ib);
    fth::copy(MatrixView<const double>(ckpt_cols_.block(0, 0, n_ - i, ib)),
              a_.block(i, i, n_ - i, ib));
    fth::copy(MatrixView<const double>(ckpt_rows_.block(0, 0, ib, tn)),
              a_.block(i, i + ib, ib, tn));
    // The vector checkpoints are verified after the data rollback so that a
    // corrupt one can be re-derived from the restored state; only then are
    // they pushed back to the device.
    verify_or_rederive_chk_checkpoints(i);
    copy_h2d_async(s_, ckpt_chkc_.cview(), d_chkc_.view());
    copy_h2d(s_, ckpt_chkr_.cview(), d_chkr_.view());
  }

  // -- Checkpoint integrity (the checkpoint itself is a fault target). ------
  // Dual sums (plain + position-weighted) compared bitwise at restore time:
  // any corruption of the host buffers between save and restore — including
  // NaN, which is unequal to itself — flips at least one sum. Panels and
  // checksum vectors carry separate sum pairs because their re-derivation
  // sources differ.
  static bool bits_equal(double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  }

  void panel_checkpoint_sums(double& s1, double& s2, index_t i, index_t ib) const {
    const index_t tn = n_ - i - ib;
    s1 = 0.0;
    s2 = 0.0;
    for (index_t j = 0; j < ib; ++j) {
      for (index_t r = 0; r < n_ - i; ++r) {
        const double v = ckpt_cols_(r, j);
        s1 += v;
        s2 += v * static_cast<double>((r + 1) + (j + 1) * n_);
      }
      for (index_t c = 0; c < tn; ++c) {
        const double v = ckpt_rows_(j, c);
        s1 += v;
        s2 += v * static_cast<double>((c + 1) + (j + 1) * (n_ + 7));
      }
    }
  }

  void chk_checkpoint_sums(double& s1, double& s2) const {
    s1 = 0.0;
    s2 = 0.0;
    for (index_t r = 0; r < n_; ++r) {
      s1 += ckpt_chkc_(r, 0) + ckpt_chkr_(r, 0);
      s2 += ckpt_chkc_(r, 0) * static_cast<double>(r + 1) +
            ckpt_chkr_(r, 0) * static_cast<double>(n_ + r + 1);
    }
  }

  void save_checkpoint_sums(index_t i, index_t ib) {
    panel_checkpoint_sums(ckpt_sum1_, ckpt_sum2_, i, ib);
    chk_checkpoint_sums(ckpt_csum1_, ckpt_csum2_);
  }

  /// Bitwise cross-check of the freshly saved vector checkpoints against
  /// the device's maintained vectors (raw task readback, not a transfer —
  /// so a transfer fault cannot strike both sides).
  void verify_chk_checkpoint_save() {
    Matrix<double> ref(n_, 2);
    auto rv = ref.view();
    auto cc = d_chkc_.view();
    auto cr = d_chkr_.view();
    s_.enqueue("ft.ckpt_readback", FTH_TASK_EFFECTS(FTH_READS(cc, cr) FTH_WRITES(rv)),
                [rv, cc, cr, n = n_]() mutable {
      auto cch = cc.in_task();
      auto crh = cr.in_task();
      for (index_t r = 0; r < n; ++r) {
        rv(r, 0) = cch(r, 0);
        rv(r, 1) = crh(r, 0);
      }
    });
    s_.synchronize();
    for (index_t r = 0; r < n_; ++r) {
      if (!bits_equal(ckpt_chkc_(r, 0), ref(r, 0))) {
        ckpt_chkc_(r, 0) = ref(r, 0);
        ++rep_.ckpt_rederivations;
        obs::counter_metric("ft.ckpt_rederivations").add();
        obs::instant("ft", "ckpt_rederive");
      }
      if (!bits_equal(ckpt_chkr_(r, 0), ref(r, 1))) {
        ckpt_chkr_(r, 0) = ref(r, 1);
        ++rep_.ckpt_rederivations;
        obs::counter_metric("ft.ckpt_rederivations").add();
        obs::instant("ft", "ckpt_rederive");
      }
    }
  }

  void verify_or_rederive_panel_checkpoints(index_t i, index_t ib) {
    double s1 = 0.0;
    double s2 = 0.0;
    panel_checkpoint_sums(s1, s2, i, ib);
    if (bits_equal(s1, ckpt_sum1_) && bits_equal(s2, ckpt_sum2_)) return;
    // Struck after save. The device's panel blocks are never written during
    // the iteration (the panels are factored on the host, the GEMMs start
    // at i+ib), so they still hold the exact pre-iteration image.
    const index_t tn = n_ - i - ib;
    copy_d2h_async(s_, d_a_.block(i, i, n_ - i, ib), ckpt_cols_.block(0, 0, n_ - i, ib));
    copy_d2h(s_, d_a_.block(i, i + ib, ib, tn), ckpt_rows_.block(0, 0, ib, tn));
    panel_checkpoint_sums(ckpt_sum1_, ckpt_sum2_, i, ib);
    ++rep_.ckpt_rederivations;
    obs::counter_metric("ft.ckpt_rederivations").add();
    obs::instant("ft", "ckpt_rederive");
  }

  void verify_or_rederive_chk_checkpoints(index_t i) {
    double s1 = 0.0;
    double s2 = 0.0;
    chk_checkpoint_sums(s1, s2);
    if (bits_equal(s1, ckpt_csum1_) && bits_equal(s2, ckpt_csum2_)) return;
    // Struck after save: re-derive both codes from the rolled-back data
    // (the caller restored the trailing matrix and the panels first). An
    // undetected fault older than the last check would be encoded
    // consistently here — the residual double-fault window DESIGN.md §9
    // documents.
    const std::vector<double> fc = fresh_sums(i, /*col=*/false);
    const std::vector<double> fr = fresh_sums(i, /*col=*/true);
    for (index_t r = 0; r < n_; ++r) {
      ckpt_chkc_(r, 0) = fc[static_cast<std::size_t>(r)];
      ckpt_chkr_(r, 0) = fr[static_cast<std::size_t>(r)];
    }
    chk_checkpoint_sums(ckpt_csum1_, ckpt_csum2_);
    ++rep_.ckpt_rederivations;
    obs::counter_metric("ft.ckpt_rederivations").add();
    obs::instant("ft", "ckpt_rederive");
  }

  void set_element(index_t row, index_t col, double v, index_t i) {
    if (row >= i && col >= i) {
      auto da = d_a_.view();
      s_.enqueue("ft.correct", FTH_TASK_EFFECTS(FTH_WRITES(da)),
                  [da, row, col, v] { da.in_task()(row, col) = v; });
      s_.synchronize();
    } else {
      a_(row, col) = v;
    }
  }

  // -- Non-finite recovery: element reconstruction from the orthogonal code.
  // Rollback cannot cancel NaN/Inf; locate() hands back line-confined
  // targets. Re-derive each element as (maintained code) − (line sum with
  // the damaged elements zeroed), then re-encode any checksum storage the
  // damage propagated through.
  void reconstruct(const std::vector<ReconstructTarget>& targets, index_t i, FtEvent& ev) {
    for (const auto& t : targets) set_element(t.row, t.col, 0.0, i);
    const std::vector<double> base_row = fresh_sums(i, false);
    const std::vector<double> base_col = fresh_sums(i, true);
    const std::vector<double> chkc = fetch_chk(false);
    const std::vector<double> chkr = fetch_chk(true);
    for (const auto& t : targets) {
      const double code = t.use_row_code ? chkc[static_cast<std::size_t>(t.row)]
                                         : chkr[static_cast<std::size_t>(t.col)];
      const double rest = t.use_row_code ? base_row[static_cast<std::size_t>(t.row)]
                                         : base_col[static_cast<std::size_t>(t.col)];
      if (!std::isfinite(code) || !std::isfinite(rest)) {
        throw recovery_error(
            "ft_gebrd: non-finite damage: the code needed for element "
            "reconstruction is itself lost");
      }
      set_element(t.row, t.col, code - rest, i);
      ev.errors.push_back({t.row, t.col, 0.0});
      ++ev.reconstructions;
      ++rep_.reconstructions;
      obs::counter_metric("ft.reconstructions").add();
      obs::instant("ft", "reconstruction");
    }
    // Checksum storage the non-finite values propagated through is
    // re-encoded from the now-finite data.
    const std::vector<double> fixed_row = fresh_sums(i, false);
    const std::vector<double> fixed_col = fresh_sums(i, true);
    auto cc = d_chkc_.view();
    auto cr = d_chkr_.view();
    bool synced = false;
    for (index_t r = 0; r < n_; ++r) {
      if (!std::isfinite(chkc[static_cast<std::size_t>(r)])) {
        const double f = fixed_row[static_cast<std::size_t>(r)];
        if (!std::isfinite(f))
          throw recovery_error("ft_gebrd: non-finite checksum with non-finite fresh sum");
        s_.enqueue("ft.correct", FTH_TASK_EFFECTS(FTH_WRITES(cc)),
                   [cc, r, f] { cc.in_task()(r, 0) = f; });
        synced = true;
        ++ev.checksum_corrections;
      }
      if (!std::isfinite(chkr[static_cast<std::size_t>(r)])) {
        const double f = fixed_col[static_cast<std::size_t>(r)];
        if (!std::isfinite(f))
          throw recovery_error("ft_gebrd: non-finite checksum with non-finite fresh sum");
        s_.enqueue("ft.correct", FTH_TASK_EFFECTS(FTH_WRITES(cr)),
                   [cr, r, f] { cr.in_task()(r, 0) = f; });
        synced = true;
        ++ev.checksum_corrections;
      }
    }
    if (synced) s_.synchronize();
  }

  void apply_corrections(const LocateResult& res, index_t i, FtEvent& ev) {
    auto da = d_a_.view();
    for (const auto& err : res.data_errors) {
      if (err.row >= i && err.col >= i) {
        s_.enqueue("ft.correct", FTH_TASK_EFFECTS(FTH_WRITES(da)),
                   [da, err] { da.in_task()(err.row, err.col) -= err.delta; });
        s_.synchronize();
      } else {
        a_(err.row, err.col) -= err.delta;
      }
      ev.errors.push_back(err);
      ++ev.data_corrections;
    }
    auto cc = d_chkc_.view();
    for (const auto& c : res.chk_col_errors) {
      s_.enqueue("ft.correct", FTH_TASK_EFFECTS(FTH_WRITES(cc)),
                 [cc, c] { cc.in_task()(c.index, 0) = c.fresh; });
      ++ev.checksum_corrections;
    }
    auto cr = d_chkr_.view();
    for (const auto& c : res.chk_row_errors) {
      s_.enqueue("ft.correct", FTH_TASK_EFFECTS(FTH_WRITES(cr)),
                 [cr, c] { cr.in_task()(c.index, 0) = c.fresh; });
      ++ev.checksum_corrections;
    }
    s_.synchronize();
    if (!res.reconstructions.empty()) reconstruct(res.reconstructions, i, ev);
  }

  void inject_at_boundary(index_t boundary, index_t i_next) {
    const auto due = inj_->due(boundary, total_boundaries_, i_next, n_, scale_max_);
    bool device_faults = false;
    for (const auto& f : due) {
      if (f.row >= i_next && f.col >= i_next) {
        auto da = d_a_.view();
        const auto ff = f;
        s_.enqueue("fault.inject", FTH_TASK_EFFECTS(FTH_WRITES(da)), [da, ff] {
          auto dah = da.in_task();
          dah(ff.row, ff.col) = ff.apply(dah(ff.row, ff.col));
        });
        device_faults = true;
      } else {
        // Finished rows hold P's Householder storage; finished columns
        // hold Q's; the bidiagonal band itself is host data too.
        a_(f.row, f.col) = f.apply(a_(f.row, f.col));
      }
      inj_->record(boundary, f);
    }
    // One drain for the whole batch: a per-fault synchronize would
    // serialize multi-fault injection for no benefit.
    if (device_faults) s_.synchronize();
  }

  void final_phase() {
    copy_d2h(s_, d_a_.block(n_ - 1, n_ - 1, 1, 1), a_.block(n_ - 1, n_ - 1, 1, 1));

    if (opt_.final_sweep) {
      rep_.final_sweep_ran = true;
      WallTimer t;
      obs::TraceSpan sweep_span("ft", "final_sweep");
      worst_gap_ = 0.0;
      FreshSums fresh;
      const Discrepancy disc = compare(n_ - 1, &fresh);
      if (!disc.clean()) {
        FtEvent ev;
        try {
          const LocateResult res = locate(disc, fresh, threshold_);
          apply_corrections(res, n_ - 1, ev);
        } catch (const recovery_error& e) {
          abort_recovery(rep_.outcome, "ft_gebrd", AbortReason::AmbiguousPattern,
                         total_boundaries_, 0, 0.0, threshold_,
                         std::string("final sweep: ") + e.what());
        }
        rep_.final_sweep_corrections =
            ev.data_corrections + ev.checksum_corrections + ev.reconstructions;
        rep_.data_corrections += ev.data_corrections;
        rep_.checksum_corrections += ev.checksum_corrections;
        obs::counter_metric("ft.data_corrections")
            .add(static_cast<std::uint64_t>(ev.data_corrections));
        obs::counter_metric("ft.checksum_corrections")
            .add(static_cast<std::uint64_t>(ev.checksum_corrections));
        copy_d2h(s_, d_a_.block(n_ - 1, n_ - 1, 1, 1), a_.block(n_ - 1, n_ - 1, 1, 1));
      }
      rep_.detect_seconds += t.seconds();
    }

    if (opt_.protect_qp) {
      WallTimer qt;
      obs::TraceSpan q_span("ft", "q_verify");
      const double q_tol =
          1e3 * eps<double>() * static_cast<double>(n_) * std::max(1.0, scale_max_);
      const auto vres = qp_v_.verify_and_correct(a_, n_ - 1, q_tol);
      rep_.q_corrections += vres.corrections;
      // The P family is verified on the transposed mirror. Refresh it from
      // the live row storage first — the point is to check the *current*
      // bytes against the generation-time checksums — then copy any
      // corrections back.
      for (index_t r = 0; r + 1 < n_; ++r)
        for (index_t c = r + 2; c < n_; ++c) at_mirror_(c, r) = a_(r, c);
      const auto ures = qp_u_.verify_and_correct(at_mirror_.view(), n_ - 1, q_tol);
      if (ures.corrections > 0) {
        for (index_t r = 0; r + 1 < n_; ++r)
          for (index_t c = r + 2; c < n_; ++c) a_(r, c) = at_mirror_(c, r);
      }
      rep_.q_corrections += ures.corrections;
      obs::counter_metric("ft.q_corrections")
          .add(static_cast<std::uint64_t>(vres.corrections + ures.corrections));
      rep_.q_seconds += qt.seconds();
    }

    // Single source of truth: extract d and e from the host matrix.
    for (index_t r = 0; r < n_; ++r) d_[r] = a_(r, r);
    for (index_t r = 0; r + 1 < n_; ++r) e_[r] = a_(r, r + 1);
    tauq_[n_ - 1] = 0.0;  // the last left reflector has an empty tail
  }

  hybrid::Stream& s_;
  MatrixView<double> a_;
  VectorView<double> d_;
  VectorView<double> e_;
  VectorView<double> tauq_;
  VectorView<double> taup_;
  const FtGebrdOptions& opt_;
  fault::Injector* inj_;
  FtReport& rep_;
  hybrid::HybridGehrdStats& st_;

  index_t n_;
  double threshold_ = 0.0;
  double scale_max_ = 0.0;
  double worst_gap_ = 0.0;
  bool has_nonfinite_ = false;
  index_t total_boundaries_ = 0;
  fault::FaultPlane* plane_ = nullptr;
  double ckpt_sum1_ = 0.0;
  double ckpt_sum2_ = 0.0;
  double ckpt_csum1_ = 0.0;
  double ckpt_csum2_ = 0.0;

  hybrid::DeviceMatrix<double> d_a_;
  hybrid::DeviceMatrix<double> d_v2_;
  hybrid::DeviceMatrix<double> d_y2_;
  hybrid::DeviceMatrix<double> d_x2_;
  hybrid::DeviceMatrix<double> d_u2_;
  hybrid::DeviceMatrix<double> d_chkc_;
  hybrid::DeviceMatrix<double> d_chkr_;
  hybrid::DeviceMatrix<double> d_ones_;
  hybrid::DeviceMatrix<double> d_vec_;
  hybrid::DeviceMatrix<double> d_res_;
  hybrid::DeviceMatrix<double> d_sums_;
  hybrid::DeviceMatrix<double> d_pc_;
  hybrid::DeviceMatrix<double> d_fresh_;

  Matrix<double> x_host_;
  Matrix<double> y_host_;
  Matrix<double> ckpt_cols_;
  Matrix<double> ckpt_rows_;
  Matrix<double> ckpt_chkc_;
  Matrix<double> ckpt_chkr_;
  // Re-encode staging segment, hoisted out of the update loop: the async
  // h2d that reads it stays in flight past the loop bottom and is retired
  // by detect()'s synchronous fetch before the next refill.
  Matrix<double> seg_;
  Matrix<double> at_mirror_;
  QProtector qp_v_;
  QProtector qp_u_;
  QProtector::PanelChecksums pending_v_;
  QProtector::PanelChecksums pending_u_;
};

}  // namespace

void ft_gebrd(hybrid::Device& dev, MatrixView<double> a, VectorView<double> d,
              VectorView<double> e, VectorView<double> tauq, VectorView<double> taup,
              const FtGebrdOptions& opt, fault::Injector* injector, FtReport* report,
              hybrid::HybridGehrdStats* stats) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "ft_gebrd: matrix must be square");
  FTH_CHECK(d.size() >= n && tauq.size() >= n, "ft_gebrd: d/tauq too short");
  FTH_CHECK(e.size() >= std::max<index_t>(n - 1, 0) &&
                taup.size() >= std::max<index_t>(n - 1, 0),
            "ft_gebrd: e/taup too short");
  FTH_CHECK(opt.nb >= 1 && opt.detect_every >= 1, "ft_gebrd: bad options");

  FtReport local_rep;
  hybrid::HybridGehrdStats local_st;
  FtReport& rep = report != nullptr ? *report : local_rep;
  hybrid::HybridGehrdStats& st = stats != nullptr ? *stats : local_st;
  rep = {};
  st = {};

  obs::TraceSpan run_span("ft", "gebrd", "n", static_cast<double>(n));
  WallTimer total;
  const hybrid::detail::StatsScope scope(dev);

  if (n > 2) {
    FtGebrdDriver driver(dev, a, d, e, tauq, taup, opt, injector, rep, st);
    driver.run();
  } else if (n > 0) {
    // Trivial sizes: the unblocked code is exact and cheap.
    lapack::gebd2(a, d, e, tauq, taup);
  }

  st.total_seconds = total.seconds();
  scope.finish(st);
}

}  // namespace fth::ft

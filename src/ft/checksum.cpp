#include "ft/checksum.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/types.hpp"

namespace fth::ft {

Matrix<double> encode_extended(MatrixView<const double> a) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "encode_extended: matrix must be square");
  Matrix<double> ext(n + 1, n + 1);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) ext(i, j) = a(i, j);
  // Checksum column: row sums.
  for (index_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (index_t j = 0; j < n; ++j) s += a(i, j);
    ext(i, n) = s;
  }
  // Checksum row: column sums; corner: grand total.
  double total = 0.0;
  for (index_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (index_t i = 0; i < n; ++i) s += a(i, j);
    ext(n, j) = s;
    total += s;
  }
  ext(n, n) = total;
  return ext;
}

FreshSums fresh_logical_sums(MatrixView<const double> host_a, MatrixView<const double> ext,
                             index_t i) {
  const index_t n = host_a.rows();
  FTH_CHECK(host_a.cols() == n, "fresh_logical_sums: host matrix must be square");
  FTH_CHECK(ext.rows() == n + 1 && ext.cols() == n + 1,
            "fresh_logical_sums: extended matrix must be (n+1)x(n+1)");
  FTH_CHECK(i >= 0 && i <= n, "fresh_logical_sums: panel start out of range");

  FreshSums out;
  out.row.assign(static_cast<std::size_t>(n), 0.0);
  out.col.assign(static_cast<std::size_t>(n), 0.0);

  // Finished columns: upper-Hessenberg entries only, from the host matrix.
  for (index_t c = 0; c < i; ++c) {
    const index_t last = std::min(c + 1, n - 1);
    double cs = 0.0;
    for (index_t r = 0; r <= last; ++r) {
      const double v = host_a(r, c);
      out.row[static_cast<std::size_t>(r)] += v;
      cs += v;
    }
    out.col[static_cast<std::size_t>(c)] = cs;
  }
  // Trailing columns: full height, from the extended (device) matrix.
  for (index_t c = i; c < n; ++c) {
    double cs = 0.0;
    for (index_t r = 0; r < n; ++r) {
      const double v = ext(r, c);
      out.row[static_cast<std::size_t>(r)] += v;
      cs += v;
    }
    out.col[static_cast<std::size_t>(c)] = cs;
  }
  return out;
}

Discrepancy compare_checksums(const FreshSums& fresh, MatrixView<const double> ext,
                              double tol) {
  const index_t n = ext.rows() - 1;
  FTH_CHECK(static_cast<index_t>(fresh.row.size()) == n &&
                static_cast<index_t>(fresh.col.size()) == n,
            "compare_checksums: sum length mismatch");
  Discrepancy d;
  // Negated comparisons so a NaN delta (fresh or maintained sum poisoned by
  // a non-finite element) is *flagged* rather than silently passing: for
  // NaN, `abs(delta) > tol` is false but `!(abs(delta) <= tol)` is true.
  for (index_t r = 0; r < n; ++r) {
    const double delta = fresh.row[static_cast<std::size_t>(r)] - ext(r, n);
    if (!(std::abs(delta) <= tol)) {
      d.rows.push_back(r);
      d.row_delta.push_back(delta);
    }
  }
  for (index_t c = 0; c < n; ++c) {
    const double delta = fresh.col[static_cast<std::size_t>(c)] - ext(n, c);
    if (!(std::abs(delta) <= tol)) {
      d.cols.push_back(c);
      d.col_delta.push_back(delta);
    }
  }
  return d;
}

double detection_gap(MatrixView<const double> ext) {
  const index_t n = ext.rows() - 1;
  double sre = 0.0;
  for (index_t r = 0; r < n; ++r) sre += ext(r, n);
  double sce = 0.0;
  for (index_t c = 0; c < n; ++c) sce += ext(n, c);
  return std::abs(sre - sce);
}

double default_threshold(double fro_norm, index_t n, double factor) {
  const double eps = std::numeric_limits<double>::epsilon();
  return factor * eps * static_cast<double>(std::max<index_t>(n, 1)) *
         std::max(fro_norm, 1.0);
}

}  // namespace fth::ft

// Protection of the Q factor's Householder vectors (Section IV-E).
//
// The vectors are generated on the host, never modified afterwards, and
// not even read again once their panel's iteration completes — so a row
// checksum vector (accumulated panel by panel) and a column checksum
// vector (emitted one segment per panel) suffice, verified once at the
// end of the factorization. The two GEMV-shaped passes per panel are what
// the paper overlaps with the device-side trailing update.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace fth::ft {

/// Maintains and verifies the checksums of the Householder-vector storage
/// (rows c+2..n−1 of each finished column c of the factored matrix).
class QProtector {
 public:
  /// `row_offset` selects the protected trapezoid: column c covers rows
  /// c+row_offset..n−1. The Hessenberg/tridiagonal reductions store their
  /// Householder tails from row c+2 (offset 2, the default); the
  /// bidiagonal reduction's left reflectors start one row higher
  /// (offset 1).
  explicit QProtector(index_t n, index_t row_offset = 2);

  /// Per-panel contribution, computable while the device updates the
  /// trailing matrix. Does not modify the protector — the driver commits
  /// it only after the iteration's error check passes, so a rolled-back
  /// iteration never double-counts.
  struct PanelChecksums {
    index_t k = 0;                   ///< panel start column
    index_t ib = 0;                  ///< panel width
    std::vector<double> row_partial; ///< length n: row sums of the panel's v entries
    std::vector<double> col_segment; ///< length ib: column sums of the panel's v entries
  };
  [[nodiscard]] PanelChecksums compute_panel(MatrixView<const double> a, index_t k,
                                             index_t ib) const;
  void commit(const PanelChecksums& pc);

  /// Verify every protected element of columns 0..upto−1 against both
  /// checksum vectors; locate and correct any mismatching element in
  /// place. Returns the number of corrections applied.
  struct Result {
    int corrections = 0;
    double max_row_gap = 0.0;  ///< largest |fresh − maintained| row discrepancy seen
    double max_col_gap = 0.0;
  };
  Result verify_and_correct(MatrixView<double> a, index_t upto, double tol) const;

  [[nodiscard]] const std::vector<double>& row_chk() const { return row_chk_; }
  [[nodiscard]] const std::vector<double>& col_chk() const { return col_chk_; }
  [[nodiscard]] index_t committed_columns() const { return committed_; }

 private:
  index_t n_;
  index_t off_ = 2;
  index_t committed_ = 0;
  std::vector<double> row_chk_;  ///< length n: Σ over finished columns of v(r, c)
  std::vector<double> col_chk_;  ///< length n: Σ over rows of v(·, c), one entry per column
};

}  // namespace fth::ft

// Column-sharded trailing matrix with a coded redundancy group.
//
// The trailing update of the Hessenberg reduction is column-parallel, so
// the pool driver (ft/pool_gehrd.*) splits the trailing columns round-robin
// over the data members of a DevicePool and keeps one extra member as a
// parity device. Every shard is stored in a uniform (n+1) × w_max buffer:
//
//   * data shard d, local column l  ↦  global column c = l·Ddata + d
//     (zero-filled when c ≥ n, so all shards have identical geometry);
//   * row n of every shard is a per-column sum code row (the column sums
//     of rows 0..n-1), the same maintained-checksum idea as ft_gehrd's
//     checksum row but per shard — it is what the per-device poison
//     detection verifies;
//   * the parity shard is the elementwise sum of the data shards.
//
// Because both block updates of the reduction are linear and are applied
// in lockstep over the same local column domain on every member (see
// DESIGN.md §13), the parity stays the exact elementwise sum throughout
// the factorization (up to floating-point reassociation, which is why
// detection is tolerance-based). A device declared lost is then
// reconstructible on the host as   lost = parity − Σ survivors,   valid at
// whatever boundary the survivors are consistent at. Two losses in one
// group exceed the code's correction radius; RedundancyGroup makes that
// escalation decision explicit so the driver cannot silently return
// garbage.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "la/matrix.hpp"

namespace fth::ft {

/// Geometry of the round-robin column sharding. Rows are always n+1: the
/// n data rows plus the code row.
struct ShardLayout {
  index_t n = 0;       ///< global matrix dimension (columns 0..n-1)
  int data_shards = 1; ///< Ddata ≥ 1
  index_t w_max = 0;   ///< local columns per shard buffer, ceil(n / Ddata)

  [[nodiscard]] index_t rows() const noexcept { return n + 1; }
  [[nodiscard]] int slot_of(index_t c) const noexcept {
    return static_cast<int>(c % data_shards);
  }
  [[nodiscard]] index_t local_of(index_t c) const noexcept { return c / data_shards; }
  [[nodiscard]] index_t global_of(int slot, index_t l) const noexcept {
    return l * data_shards + slot;
  }
  /// Number of valid (non-padding) local columns of `slot`.
  [[nodiscard]] index_t owned_cols(int slot) const noexcept {
    const index_t c0 = static_cast<index_t>(slot);
    if (c0 >= n) return 0;
    return (n - 1 - c0) / data_shards + 1;
  }
  /// First local column whose global column is ≥ `c` in SOME slot — the
  /// lockstep update domain for an iteration whose trailing block starts
  /// at global column `c` is local columns [domain_start(c), w_max).
  [[nodiscard]] index_t domain_start(index_t c) const noexcept {
    index_t s = w_max;
    for (int d = 0; d < data_shards; ++d) {
      // first l with l·Ddata + d ≥ c
      const index_t l = (c > d) ? (c - d + data_shards - 1) / data_shards : 0;
      if (l < s) s = l;
    }
    return s;
  }
};

[[nodiscard]] ShardLayout make_shard_layout(index_t n, int data_shards);

/// Scatter `a` (n×n) into Ddata coded shards, each (n+1)×w_max with the
/// code row filled. Out-of-range columns are zero (zero columns satisfy
/// the code trivially and stay zero under the lockstep updates).
void scatter_shards(MatrixView<const double> a, const ShardLayout& lay,
                    std::vector<Matrix<double>>& shards);

/// parity = elementwise Σ shards ((n+1)×w_max).
void encode_parity(const ShardLayout& lay, const std::vector<Matrix<double>>& shards,
                   Matrix<double>& parity);

/// Reconstruct the shard at `lost_slot`:  out = parity − Σ survivors.
/// `shards[lost_slot]` is ignored (may hold garbage — that is the point).
void reconstruct_shard(const ShardLayout& lay, const std::vector<Matrix<double>>& shards,
                       MatrixView<const double> parity, int lost_slot,
                       Matrix<double>& out);

/// Max |code-row entry − column sum| over the first `cols` local columns
/// (all w_max when cols < 0). The per-device poison detector.
[[nodiscard]] double code_row_gap(MatrixView<const double> shard, index_t cols = -1);

/// Gather the data rows of the shards back into `a` for columns
/// [first_col, n). Padding columns and the code row are skipped.
void gather_shards(const ShardLayout& lay, const std::vector<Matrix<double>>& shards,
                   MatrixView<double> a, index_t first_col);

/// Loss accounting for one redundancy group (Ddata data shards + 1
/// parity). declare_lost() returns true while the code can still
/// reconstruct (first loss); false once the group is degraded — the caller
/// must escalate through abort_recovery instead of reconstructing.
class RedundancyGroup {
 public:
  explicit RedundancyGroup(int data_shards) : data_shards_(data_shards) {}

  /// `slot` ∈ [0, Ddata] — Ddata denotes the parity shard.
  [[nodiscard]] bool declare_lost(int slot) {
    for (const int s : lost_)
      if (s == slot) return !degraded();  // re-detecting the same loss is not a second loss
    lost_.push_back(slot);
    return lost_.size() <= 1;
  }

  [[nodiscard]] bool degraded() const noexcept { return !lost_.empty(); }
  [[nodiscard]] int losses() const noexcept { return static_cast<int>(lost_.size()); }
  [[nodiscard]] int parity_slot() const noexcept { return data_shards_; }

 private:
  int data_shards_;
  std::vector<int> lost_;
};

}  // namespace fth::ft

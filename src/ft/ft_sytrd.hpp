// Fault-tolerant hybrid symmetric tridiagonal reduction.
//
// The paper closes by noting its methodology "is generic enough to be
// applicable to the entire spectrum of two-sided factorizations" and names
// the MAGMA hybrid two-sided family as future work; this module carries
// the construction over to sytrd. The symmetric case changes the encoding
// in one interesting way: a stored-triangle error is a *symmetric* logical
// corruption, so any comparison of two linearly-maintained checksums
// cancels it — the Sre-vs-Sce trick of Algorithm 3 is blind here. Instead:
//
//  * two checksum columns are maintained through the rank-2k updates,
//    chk_e = A·e (ones) and chk_w = A·ω (linear weights ω_r = r+1) —
//    the classic two-code ABFT pair;
//  * detection compares chk_e against *freshly recomputed* logical row
//    sums (one SYMV with the ones vector per check — ~1/(2·nb) of the
//    iteration's flops; the `detect_every` knob amortizes it further);
//  * location needs no row/column pairing at all: for a flagged row p the
//    weighted/plain delta ratio yields the column directly
//    (q = Δw(p)/Δe(p) − 1), which also disambiguates diagonal errors from
//    corrupted checksum elements (flagged in chk_e but not chk_w);
//  * recovery reuses the Algorithm 3 machinery unchanged: exact reverse
//    computation of the retained rank-2k products and checksum updates,
//    diskless panel checkpoint, re-execution, and the same QProtector for
//    the Householder storage.
#pragma once

#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"  // FtReport / FtEvent / LocatedError
#include "hybrid/hybrid_gehrd.hpp"

namespace fth::ft {

struct FtSytrdOptions {
  index_t nb = 32;
  double threshold = 0.0;        ///< per-row detection tolerance; 0 → scaled default
  double threshold_factor = 500.0;
  bool protect_q = true;
  bool final_sweep = true;
  int max_retries = 3;
  /// Run the (SYMV-priced) detection every k iterations. k > 1 lowers the
  /// overhead but recovery is only guaranteed for errors struck since the
  /// previous check — a documented trade-off knob for the ablation bench.
  index_t detect_every = 1;
  /// Optional in-flight fault plane (see FtOptions::fault_plane).
  fault::FaultPlane* fault_plane = nullptr;
};

/// Reduce the symmetric matrix `a` (lower triangle authoritative) to
/// tridiagonal form with transient-error resilience. Output contract of
/// lapack::sytrd; `report`/`stats` as in ft_gehrd.
void ft_sytrd(hybrid::Device& dev, MatrixView<double> a, VectorView<double> d,
              VectorView<double> e, VectorView<double> tau, const FtSytrdOptions& opt = {},
              fault::Injector* injector = nullptr, FtReport* report = nullptr,
              hybrid::HybridGehrdStats* stats = nullptr);

/// Number of panel iterations ft_sytrd executes for size n, block nb.
index_t ft_sytrd_boundaries(index_t n, index_t nb);

}  // namespace fth::ft

#include "ft/ft_sytrd.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "ft/checksum.hpp"
#include "ft/q_protect.hpp"
#include "hybrid/dev_blas.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/norms.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "lapack/orghr.hpp"
#include "lapack/sytrd_impl.hpp"

namespace fth::ft {

index_t ft_sytrd_boundaries(index_t n, index_t nb) {
  index_t count = 0;
  index_t i = 0;
  while (i < n - 1) {
    i += std::min(nb, n - 1 - i);
    ++count;
  }
  return count;
}

namespace {

using hybrid::copy_d2h;
using hybrid::copy_d2h_async;
using hybrid::copy_h2d;
using hybrid::copy_h2d_async;

class FtSytrdDriver {
 public:
  FtSytrdDriver(hybrid::Device& dev, MatrixView<double> a, VectorView<double> d,
                VectorView<double> e, VectorView<double> tau, const FtSytrdOptions& opt,
                fault::Injector* inj, FtReport& rep, hybrid::HybridGehrdStats& st)
      : s_(dev.stream()),
        a_(a),
        d_(d),
        e_(e),
        tau_(tau),
        opt_(opt),
        inj_(inj),
        rep_(rep),
        st_(st),
        n_(a.rows()),
        d_a_(dev, n_, n_),
        d_v_(dev, n_, std::max<index_t>(opt.nb, 1)),
        d_w_(dev, n_, std::max<index_t>(opt.nb, 1)),
        d_chke_(dev, n_, 1),
        d_chkw_(dev, n_, 1),
        d_ones_(dev, n_, 1),
        d_wvec_(dev, n_, 1),
        d_sums_(dev, std::max<index_t>(opt.nb, 1), 4),
        d_pc_(dev, n_, 2),
        d_fresh_(dev, n_, 1),
        w_host_(n_, std::max<index_t>(opt.nb, 1)),
        ckpt_(n_, std::max<index_t>(opt.nb, 1)),
        ckpt_chke_(n_, 1),
        ckpt_chkw_(n_, 1),
        qp_(n_) {
    const double fro = norm_fro(MatrixView<const double>(a_));
    scale_max_ = norm_max(MatrixView<const double>(a_));
    threshold_ = opt.threshold > 0
                     ? opt.threshold
                     : default_threshold(fro, n_, opt.threshold_factor) /
                           static_cast<double>(std::max<index_t>(n_, 1));
    // ^ per-row tolerance: the gehrd default bounds a grand total over n
    //   rows; divide the n factor back out but keep a comfortable margin.
    threshold_ *= 50.0;
    total_boundaries_ = ft_sytrd_boundaries(n_, opt.nb);
    rep_.threshold = threshold_;
  }

  void run() {
    encode();
    index_t i = 0;
    index_t boundary = 0;
    while (i < n_ - 1) {
      const index_t ib = std::min(opt_.nb, n_ - 1 - i);
      run_iteration(i, ib);
      ++boundary;
      // Faults strike at the boundary, i.e. before the end-of-iteration
      // check — so a hit anywhere (including the next panel's interior) is
      // detected and repaired before the next factorization step consumes
      // it, exactly the "correct before it propagates" discipline of the
      // paper.
      if (inj_ != nullptr) inject_at_boundary(boundary, i + ib);
      const bool check_now = opt_.detect_every <= 1 ||
                             boundary % opt_.detect_every == 0 || i + ib >= n_ - 1;
      if (check_now) ensure_clean(boundary, i, ib);
      if (opt_.protect_q) qp_.commit(pending_q_);
      ++st_.panels;
      i += ib;
    }
    final_phase();
  }

 private:
  void encode() {
    WallTimer t;
    obs::TraceSpan span("ft", "encode", "n", static_cast<double>(n_));
    copy_h2d_async(s_, MatrixView<const double>(a_), d_a_.view());
    hybrid::fill_async(s_, d_ones_.view(), 1.0);
    s_.enqueue([wv = d_wvec_.view()]() mutable {
      for (index_t r = 0; r < wv.rows(); ++r) wv(r, 0) = static_cast<double>(r + 1);
    });
    // chk_e = A_sym·e, chk_w = A_sym·ω (device SYMVs over the lower triangle).
    hybrid::symv_async(s_, Uplo::Lower, 1.0, MatrixView<const double>(d_a_.view()),
                       VectorView<const double>(d_ones_.view().col(0)), 0.0,
                       d_chke_.view().col(0));
    hybrid::symv_async(s_, Uplo::Lower, 1.0, MatrixView<const double>(d_a_.view()),
                       VectorView<const double>(d_wvec_.view().col(0)), 0.0,
                       d_chkw_.view().col(0));
    s_.synchronize();
    rep_.encode_seconds += t.seconds();
  }

  void run_iteration(index_t i, index_t ib) {
    const index_t vrows = n_ - i - 1;

    // Panel to host + diskless checkpoints (panel pre-image and both
    // checksum vectors — the vectors are O(n), so checkpointing beats
    // reverse-computing them).
    WallTimer panel_timer;
    {
      obs::TraceSpan ckpt_span("ft", "checkpoint_save", "col", static_cast<double>(i));
      copy_d2h_async(s_, MatrixView<const double>(d_a_.block(0, i, n_, ib)),
                     a_.block(0, i, n_, ib));
      copy_d2h_async(s_, MatrixView<const double>(d_chke_.view()), ckpt_chke_.view());
      copy_d2h(s_, MatrixView<const double>(d_chkw_.view()), ckpt_chkw_.view());
      fth::copy(MatrixView<const double>(a_.block(0, i, n_, ib)), ckpt_.block(0, 0, n_, ib));
    }

    // Host panel with device-assisted SYMV.
    {
      obs::TraceSpan panel_span("hybrid", "panel", "col", static_cast<double>(i));
      lapack::detail::latrd_panel(
          a_, i, ib, e_.sub(i, ib), tau_.sub(i, ib), w_host_.view(),
          [&](index_t j, VectorView<const double> vj, VectorView<double> w_col) {
            const index_t cj = i + j;
            const index_t vlen = n_ - cj - 1;
            auto d_vcol = d_v_.block(j, j, vlen, 1);
            copy_h2d_async(s_, MatrixView<const double>(vj.data(), vlen, 1, vlen), d_vcol);
            hybrid::symv_async(s_, Uplo::Lower, 1.0,
                               MatrixView<const double>(d_a_.block(cj + 1, cj + 1, vlen, vlen)),
                               VectorView<const double>(d_vcol.col(0)),
                               0.0, d_w_.block(j, j, vlen, 1).col(0));
            copy_d2h(s_, MatrixView<const double>(d_w_.block(j, j, vlen, 1)),
                     MatrixView<double>(w_col.data(), vlen, 1, vlen));
          });
    }
    st_.panel_seconds += panel_timer.seconds();

    WallTimer update_timer;
    {
      obs::TraceSpan update_span("hybrid", "update", "col", static_cast<double>(i));
      // Clean V (explicit unit) and the finished W block to the device.
      Matrix<double> v = lapack::materialize_v(MatrixView<const double>(a_), i, ib);
      copy_h2d_async(s_, v.cview(), d_v_.block(0, 0, vrows, ib));
      copy_h2d_async(s_, MatrixView<const double>(w_host_.block(i + 1, 0, vrows, ib)),
                     d_w_.block(0, 0, vrows, ib));

      // --- Checksum maintenance --------------------------------------------
      // After this iteration the logical row sum of a trailing row r ≥ i+ib is
      //   old_sum(r) − (old panel-column entries of row r)        [zeroed]
      //              − (V2·W2ᵀ + W2·V2ᵀ)(r, :)·vec  over c ≥ i+ib [rank-2k]
      //              + e_last·vec(i+ib−1) for r == i+ib           [coupling]
      // and panel rows i..i+ib−1 become plain tridiagonal rows, re-encoded
      // from the finished host data (their pre-images are checkpointed).
      const index_t tn = n_ - i - ib;
      auto v2 = MatrixView<const double>(d_v_.block(ib - 1, 0, tn, ib));
      auto w2 = MatrixView<const double>(d_w_.block(ib - 1, 0, tn, ib));
      auto ones_tn = VectorView<const double>(d_ones_.view().col(0).sub(0, tn));
      auto ones_ib = VectorView<const double>(d_ones_.view().col(0).sub(0, ib));
      auto wvec_tail = VectorView<const double>(d_wvec_.view().col(0).sub(i + ib, tn));
      auto wvec_panel = VectorView<const double>(d_wvec_.view().col(0).sub(i, ib));

      // Tail column sums of V2/W2 against e and ω (paper line 6/7 analogues).
      hybrid::gemv_async(s_, Trans::Yes, 1.0, v2, ones_tn, 0.0, d_sums_.view().col(0).sub(0, ib));
      hybrid::gemv_async(s_, Trans::Yes, 1.0, w2, ones_tn, 0.0, d_sums_.view().col(1).sub(0, ib));
      hybrid::gemv_async(s_, Trans::Yes, 1.0, v2, wvec_tail, 0.0, d_sums_.view().col(2).sub(0, ib));
      hybrid::gemv_async(s_, Trans::Yes, 1.0, w2, wvec_tail, 0.0, d_sums_.view().col(3).sub(0, ib));
      // Old panel-column contributions of the trailing rows (the device's
      // panel columns still hold the pristine start-of-iteration values).
      auto panel_tail = MatrixView<const double>(d_a_.block(i + ib, i, tn, ib));
      hybrid::gemv_async(s_, Trans::No, 1.0, panel_tail, ones_ib, 0.0,
                         d_pc_.view().col(0).sub(0, tn));
      hybrid::gemv_async(s_, Trans::No, 1.0, panel_tail, wvec_panel, 0.0,
                         d_pc_.view().col(1).sub(0, tn));

      auto se_v2 = VectorView<const double>(d_sums_.view().col(0).sub(0, ib));
      auto se_w2 = VectorView<const double>(d_sums_.view().col(1).sub(0, ib));
      auto sw_v2 = VectorView<const double>(d_sums_.view().col(2).sub(0, ib));
      auto sw_w2 = VectorView<const double>(d_sums_.view().col(3).sub(0, ib));
      auto chke_tail = d_chke_.view().col(0).sub(i + ib, tn);
      auto chkw_tail = d_chkw_.view().col(0).sub(i + ib, tn);
      hybrid::axpy_async(s_, -1.0, VectorView<const double>(d_pc_.view().col(0).sub(0, tn)),
                         chke_tail);
      hybrid::gemv_async(s_, Trans::No, -1.0, v2, se_w2, 1.0, chke_tail);
      hybrid::gemv_async(s_, Trans::No, -1.0, w2, se_v2, 1.0, chke_tail);
      hybrid::axpy_async(s_, -1.0, VectorView<const double>(d_pc_.view().col(1).sub(0, tn)),
                         chkw_tail);
      hybrid::gemv_async(s_, Trans::No, -1.0, v2, sw_w2, 1.0, chkw_tail);
      hybrid::gemv_async(s_, Trans::No, -1.0, w2, sw_v2, 1.0, chkw_tail);

      // Trailing rank-2k (lower triangle) on the device.
      hybrid::syr2k_async(s_, Uplo::Lower, Trans::No, -1.0, v2, w2, 1.0,
                          d_a_.block(i + ib, i + ib, tn, tn));

      // Host work overlapped with the device update.
      if (opt_.protect_q) {
        WallTimer qt;
        obs::TraceSpan q_span("ft", "q_checksum");
        pending_q_ = qp_.compute_panel(MatrixView<const double>(a_), i, ib);
        rep_.q_seconds += qt.seconds();
      }
      for (index_t j = 0; j < ib; ++j) {
        a_(i + j + 1, i + j) = e_[i + j];  // replace the panel's unit entries
      }

      // Re-encode the finished panel rows of both checksums from the final
      // tridiagonal data, and add the new coupling entry to row i+ib.
      Matrix<double> seg(ib, 2);
      for (index_t j = 0; j < ib; ++j) {
        const index_t r = i + j;
        const double dl = r > 0 ? a_(r, r - 1) : 0.0;
        const double dd = a_(r, r);
        const double du = a_(r + 1, r);  // superdiagonal by symmetry
        seg(j, 0) = dl + dd + du;
        seg(j, 1) = dl * static_cast<double>(r) + dd * static_cast<double>(r + 1) +
                    du * static_cast<double>(r + 2);
      }
      copy_h2d_async(s_, MatrixView<const double>(seg.block(0, 0, ib, 1)),
                     MatrixView<double>(&d_chke_.view()(i, 0), ib, 1, d_chke_.view().ld()));
      copy_h2d_async(s_, MatrixView<const double>(seg.block(0, 1, ib, 1)),
                     MatrixView<double>(&d_chkw_.view()(i, 0), ib, 1, d_chkw_.view().ld()));
      const double e_last = e_[i + ib - 1];
      auto ce = d_chke_.view();
      auto cw = d_chkw_.view();
      s_.enqueue([ce, cw, i, ib, e_last]() mutable {
        ce(i + ib, 0) += e_last;
        cw(i + ib, 0) += e_last * static_cast<double>(i + ib);  // weight of col i+ib−1
      });
      s_.synchronize();
    }
    st_.update_seconds += update_timer.seconds();
  }

  /// Fresh logical row sums of the current state: finished rows from the
  /// host tridiagonal entries, trailing rows from a device SYMV; `i2` is
  /// the first trailing index.
  std::vector<double> fresh_sums(index_t i2, bool weighted) {
    std::vector<double> fresh(static_cast<std::size_t>(n_), 0.0);
    auto weight = [&](index_t c) { return weighted ? static_cast<double>(c + 1) : 1.0; };
    // Finished rows: tridiagonal entries read from the host matrix.
    for (index_t r = 0; r < i2 && r < n_; ++r) {
      double s = a_(r, r) * weight(r);
      if (r > 0) s += a_(r, r - 1) * weight(r - 1);
      if (r + 1 < n_) s += a_(r + 1, r) * weight(r + 1);  // superdiag by symmetry
      fresh[static_cast<std::size_t>(r)] = s;
    }
    if (i2 >= n_) return fresh;
    // Trailing rows: SYMV over the live lower triangle on the device.
    const index_t tn = n_ - i2;
    auto vec = weighted ? d_wvec_.view().col(0).sub(i2, tn)
                        : d_ones_.view().col(0).sub(0, tn);
    hybrid::symv_async(s_, Uplo::Lower, 1.0,
                       MatrixView<const double>(d_a_.block(i2, i2, tn, tn)),
                       VectorView<const double>(vec), 0.0,
                       d_fresh_.view().col(0).sub(0, tn));
    std::vector<double> trail(static_cast<std::size_t>(tn));
    s_.enqueue([this, tn, &trail] {
      auto f = d_fresh_.view().col(0);
      for (index_t r = 0; r < tn; ++r) trail[static_cast<std::size_t>(r)] = f[r];
    });
    s_.synchronize();
    for (index_t r = 0; r < tn; ++r)
      fresh[static_cast<std::size_t>(i2 + r)] = trail[static_cast<std::size_t>(r)];
    // The coupling entry e[i2−1] contributes to trailing row i2 (column
    // i2−1) and was counted in neither part above.
    if (i2 > 0) fresh[static_cast<std::size_t>(i2)] += a_(i2, i2 - 1) * weight(i2 - 1);
    return fresh;
  }

  std::vector<double> fetch_chk(bool weighted) {
    std::vector<double> out(static_cast<std::size_t>(n_));
    s_.enqueue([this, &out, weighted] {
      auto c = (weighted ? d_chkw_.view() : d_chke_.view()).col(0);
      for (index_t r = 0; r < n_; ++r) out[static_cast<std::size_t>(r)] = c[r];
    });
    s_.synchronize();
    return out;
  }

  void ensure_clean(index_t boundary, index_t i, index_t ib) {
    int attempts = 0;
    for (;;) {
      WallTimer dt;
      double worst = 0.0;
      bool bad = false;
      {
        obs::TraceSpan det_span("ft", "detect");
        const std::vector<double> fresh = fresh_sums(i + ib, /*weighted=*/false);
        const std::vector<double> chke = fetch_chk(false);
        for (index_t r = 0; r < n_; ++r) {
          const double gap = std::abs(fresh[static_cast<std::size_t>(r)] -
                                      chke[static_cast<std::size_t>(r)]);
          worst = std::max(worst, gap);
          if (gap > threshold_) bad = true;
        }
      }
      rep_.detect_seconds += dt.seconds();
      obs::histogram_metric("ft.detect_gap").observe(worst);
      obs::counter("ft.detect_gap", worst);
      if (!bad) {
        rep_.max_fault_free_gap = std::max(rep_.max_fault_free_gap, worst);
        return;
      }

      ++rep_.detections;
      obs::instant("ft", "detection");
      obs::counter_metric("ft.detections").add();
      if (++attempts > opt_.max_retries) {
        std::ostringstream os;
        os << "ft_sytrd: iteration " << boundary << " still inconsistent after "
           << opt_.max_retries << " recovery attempts (worst gap " << worst << ")";
        throw recovery_error(os.str());
      }

      WallTimer rt;
      FtEvent ev;
      ev.boundary = boundary;
      ev.gap = worst;
      {
        obs::TraceSpan rb_span("ft", "rollback", "col", static_cast<double>(i));
        rollback(i, ib);
      }
      ++rep_.rollbacks;
      obs::counter_metric("ft.rollbacks").add();
      {
        obs::TraceSpan loc_span("ft", "locate");
        locate_and_correct(i, ev);
      }
      rep_.data_corrections += ev.data_corrections;
      rep_.checksum_corrections += ev.checksum_corrections;
      obs::counter_metric("ft.data_corrections").add(static_cast<std::uint64_t>(ev.data_corrections));
      obs::counter_metric("ft.checksum_corrections")
          .add(static_cast<std::uint64_t>(ev.checksum_corrections));
      if (ev.checkpoint_only) obs::counter_metric("ft.checkpoint_only_recoveries").add();
      rep_.events.push_back(std::move(ev));
      {
        obs::TraceSpan redo_span("ft", "reexec", "col", static_cast<double>(i));
        obs::counter_metric("ft.reexecutions").add();
        run_iteration(i, ib);
      }
      rep_.recovery_seconds += rt.seconds();
    }
  }

  void rollback(index_t i, index_t ib) {
    const index_t tn = n_ - i - ib;
    // Reverse the trailing rank-2k exactly (deterministic kernel, same
    // retained operands).
    hybrid::syr2k_async(s_, Uplo::Lower, Trans::No, 1.0,
                        MatrixView<const double>(d_v_.block(ib - 1, 0, tn, ib)),
                        MatrixView<const double>(d_w_.block(ib - 1, 0, tn, ib)), 1.0,
                        d_a_.block(i + ib, i + ib, tn, tn));
    // Restore both checksum vectors and the panel from the checkpoints.
    obs::TraceSpan restore_span("ft", "checkpoint_restore", "col", static_cast<double>(i));
    copy_h2d_async(s_, ckpt_chke_.cview(), d_chke_.view());
    copy_h2d(s_, ckpt_chkw_.cview(), d_chkw_.view());
    fth::copy(MatrixView<const double>(ckpt_.block(0, 0, n_, ib)), a_.block(0, i, n_, ib));
  }

  void locate_and_correct(index_t i, FtEvent& ev) {
    const std::vector<double> fresh_e = fresh_sums(i, false);
    const std::vector<double> fresh_w = fresh_sums(i, true);
    const std::vector<double> chke = fetch_chk(false);
    const std::vector<double> chkw = fetch_chk(true);

    struct Flag {
      index_t row;
      double de, dw;
    };
    std::vector<Flag> flags;
    for (index_t r = 0; r < n_; ++r) {
      const double de = fresh_e[static_cast<std::size_t>(r)] - chke[static_cast<std::size_t>(r)];
      const double dw = fresh_w[static_cast<std::size_t>(r)] - chkw[static_cast<std::size_t>(r)];
      if (std::abs(de) > threshold_ || std::abs(dw) > threshold_ * static_cast<double>(n_)) {
        flags.push_back({r, de, dw});
      }
    }
    if (flags.size() > 16) {
      throw recovery_error("ft_sytrd: too many simultaneous discrepancies to resolve");
    }

    std::vector<bool> consumed(flags.size(), false);
    for (std::size_t t = 0; t < flags.size(); ++t) {
      if (consumed[t]) continue;
      const Flag& f = flags[t];
      if (std::abs(f.de) <= threshold_) {
        // Weighted-only discrepancy: the chk_w element itself is corrupt.
        // Repair by re-encoding from the fresh value.
        auto cw = d_chkw_.view();
        const double fw = fresh_w[static_cast<std::size_t>(f.row)];
        s_.enqueue([cw, f, fw]() mutable { cw(f.row, 0) = fw; });
        s_.synchronize();
        ++ev.checksum_corrections;
        continue;
      }
      // Column from the two-code ratio: ω_q = Δw/Δe ⇒ q = ratio − 1.
      const double ratio = f.dw / f.de;
      const double qf = ratio - 1.0;
      const index_t q = static_cast<index_t>(std::llround(qf));
      if (q < 0 || q >= n_ || std::abs(qf - static_cast<double>(q)) > 0.25) {
        // No consistent column: the chk_e element itself must be corrupt
        // (Δw ≈ 0 handled above; an incoherent ratio with Δw ≈ 0 relative
        // to Δe·n also lands here).
        if (std::abs(f.dw) <= threshold_ * static_cast<double>(n_)) {
          auto ce = d_chke_.view();
          const double fe = fresh_e[static_cast<std::size_t>(f.row)];
          s_.enqueue([ce, f, fe]() mutable { ce(f.row, 0) = fe; });
          s_.synchronize();
          ++ev.checksum_corrections;
          continue;
        }
        throw recovery_error("ft_sytrd: discrepancy ratio does not identify a column — "
                             "errors may share a row");
      }
      // Stored element in the lower triangle.
      const index_t p = std::max(f.row, q);
      const index_t qq = std::min(f.row, q);
      const double delta = f.de;
      if (qq >= i) {
        auto da = d_a_.view();
        s_.enqueue([da, p, qq, delta]() mutable { da(p, qq) -= delta; });
        s_.synchronize();
      } else {
        a_(p, qq) -= delta;  // finished (tridiagonal) region on the host
      }
      ev.errors.push_back({p, qq, delta});
      ++ev.data_corrections;
      // Off-diagonal errors flag the partner row too; mark it consumed.
      if (q != f.row) {
        for (std::size_t u = t + 1; u < flags.size(); ++u) {
          if (flags[u].row == q && std::abs(flags[u].de - f.de) <=
                                       2.0 * threshold_ + 1e-9 * std::abs(f.de)) {
            consumed[u] = true;
            break;
          }
        }
      }
    }
  }

  void inject_at_boundary(index_t boundary, index_t i_next) {
    const auto due = inj_->due(boundary, total_boundaries_, i_next, n_, scale_max_);
    for (auto f : due) {
      // Symmetric lower storage: fold the coordinates into the triangle.
      const index_t p = std::max(f.row, f.col);
      const index_t q = std::min(f.row, f.col);
      if (q >= i_next) {
        auto da = d_a_.view();
        const double delta = f.delta;
        s_.enqueue([da, p, q, delta]() mutable { da(p, q) += delta; });
        s_.synchronize();
      } else {
        a_(p, q) += f.delta;
      }
      inj_->record(boundary, f);
    }
  }

  void final_phase() {
    // Fetch the last diagonal element (never part of a panel).
    copy_d2h(s_, MatrixView<const double>(d_a_.block(n_ - 1, n_ - 1, 1, 1)),
             a_.block(n_ - 1, n_ - 1, 1, 1));

    if (opt_.final_sweep) {
      rep_.final_sweep_ran = true;
      WallTimer t;
      obs::TraceSpan sweep_span("ft", "final_sweep");
      FtEvent ev;
      // i = n−1: everything finished except the 1×1 trailing block.
      const std::vector<double> fresh_e = fresh_sums(n_ - 1, false);
      const std::vector<double> chke = fetch_chk(false);
      bool bad = false;
      for (index_t r = 0; r < n_ && !bad; ++r) {
        bad = std::abs(fresh_e[static_cast<std::size_t>(r)] -
                       chke[static_cast<std::size_t>(r)]) > threshold_;
      }
      if (bad) {
        locate_and_correct(n_ - 1, ev);
        rep_.final_sweep_corrections = ev.data_corrections + ev.checksum_corrections;
        rep_.data_corrections += ev.data_corrections;
        rep_.checksum_corrections += ev.checksum_corrections;
        obs::counter_metric("ft.data_corrections")
            .add(static_cast<std::uint64_t>(ev.data_corrections));
        obs::counter_metric("ft.checksum_corrections")
            .add(static_cast<std::uint64_t>(ev.checksum_corrections));
        // Refresh the host copy of the last element if it was the target.
        copy_d2h(s_, MatrixView<const double>(d_a_.block(n_ - 1, n_ - 1, 1, 1)),
                 a_.block(n_ - 1, n_ - 1, 1, 1));
      }
      rep_.detect_seconds += t.seconds();
    }

    if (opt_.protect_q) {
      WallTimer qt;
      obs::TraceSpan q_span("ft", "q_verify");
      const double q_tol =
          1e3 * eps<double>() * static_cast<double>(n_) * std::max(1.0, scale_max_);
      const auto qres = qp_.verify_and_correct(a_, n_ - 1, q_tol);
      rep_.q_corrections += qres.corrections;
      obs::counter_metric("ft.q_corrections").add(static_cast<std::uint64_t>(qres.corrections));
      rep_.q_seconds += qt.seconds();
    }

    // Single source of truth: extract d and e from the (possibly repaired)
    // host matrix.
    for (index_t r = 0; r < n_; ++r) d_[r] = a_(r, r);
    for (index_t r = 0; r + 1 < n_; ++r) e_[r] = a_(r + 1, r);
  }

  hybrid::Stream& s_;
  MatrixView<double> a_;
  VectorView<double> d_;
  VectorView<double> e_;
  VectorView<double> tau_;
  const FtSytrdOptions& opt_;
  fault::Injector* inj_;
  FtReport& rep_;
  hybrid::HybridGehrdStats& st_;

  index_t n_;
  double threshold_ = 0.0;
  double scale_max_ = 0.0;
  index_t total_boundaries_ = 0;

  hybrid::DeviceMatrix<double> d_a_;
  hybrid::DeviceMatrix<double> d_v_;
  hybrid::DeviceMatrix<double> d_w_;
  hybrid::DeviceMatrix<double> d_chke_;
  hybrid::DeviceMatrix<double> d_chkw_;
  hybrid::DeviceMatrix<double> d_ones_;
  hybrid::DeviceMatrix<double> d_wvec_;
  hybrid::DeviceMatrix<double> d_sums_;
  hybrid::DeviceMatrix<double> d_pc_;
  hybrid::DeviceMatrix<double> d_fresh_;

  Matrix<double> w_host_;
  Matrix<double> ckpt_;
  Matrix<double> ckpt_chke_;
  Matrix<double> ckpt_chkw_;
  QProtector qp_;
  QProtector::PanelChecksums pending_q_;
};

}  // namespace

void ft_sytrd(hybrid::Device& dev, MatrixView<double> a, VectorView<double> d,
              VectorView<double> e, VectorView<double> tau, const FtSytrdOptions& opt,
              fault::Injector* injector, FtReport* report,
              hybrid::HybridGehrdStats* stats) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "ft_sytrd: matrix must be square");
  FTH_CHECK(d.size() >= n, "ft_sytrd: d too short");
  FTH_CHECK(e.size() >= std::max<index_t>(n - 1, 0) &&
                tau.size() >= std::max<index_t>(n - 1, 0),
            "ft_sytrd: e/tau too short");
  FTH_CHECK(opt.nb >= 1 && opt.detect_every >= 1, "ft_sytrd: bad options");

  FtReport local_rep;
  hybrid::HybridGehrdStats local_st;
  FtReport& rep = report != nullptr ? *report : local_rep;
  hybrid::HybridGehrdStats& st = stats != nullptr ? *stats : local_st;
  rep = {};
  st = {};

  obs::TraceSpan run_span("ft", "sytrd", "n", static_cast<double>(n));
  WallTimer total;
  const hybrid::detail::StatsScope scope(dev);

  if (n > 2) {
    FtSytrdDriver driver(dev, a, d, e, tau, opt, injector, rep, st);
    driver.run();
  } else {
    for (index_t r = 0; r < n; ++r) d[r] = a(r, r);
    for (index_t r = 0; r + 1 < n; ++r) {
      e[r] = a(r + 1, r);
      tau[r] = 0.0;
    }
  }

  st.total_seconds = total.seconds();
  scope.finish(st);
}

}  // namespace fth::ft

#include "ft/ft_sytrd.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "fault/fault_plane.hpp"
#include "ft/checksum.hpp"
#include "ft/q_protect.hpp"
#include "ft/recovery.hpp"
#include "hybrid/dev_blas.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/norms.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "lapack/orghr.hpp"
#include "lapack/sytrd_impl.hpp"

namespace fth::ft {

index_t ft_sytrd_boundaries(index_t n, index_t nb) {
  index_t count = 0;
  index_t i = 0;
  while (i < n - 1) {
    i += std::min(nb, n - 1 - i);
    ++count;
  }
  return count;
}

namespace {

using hybrid::copy_d2h;
using hybrid::copy_d2h_async;
using hybrid::copy_h2d;
using hybrid::copy_h2d_async;

/// Thrown by the panel tripwire when a device-assisted SYMV column comes
/// back non-finite: the reflector chain would smear NaN/Inf across the
/// whole trailing matrix, so the panel is abandoned before any update.
struct panel_poisoned_error {};

/// RAII bracket telling the fault plane a recovery re-execution is active
/// (DuringRecovery faults only count triggers inside the bracket).
class RecoveryScope {
 public:
  explicit RecoveryScope(fault::FaultPlane* p) : p_(p) {
    if (p_ != nullptr) p_->set_in_recovery(true);
  }
  ~RecoveryScope() {
    if (p_ != nullptr) p_->set_in_recovery(false);
  }
  RecoveryScope(const RecoveryScope&) = delete;
  RecoveryScope& operator=(const RecoveryScope&) = delete;

 private:
  fault::FaultPlane* p_;
};

/// Per-check detection result: the worst finite per-row gap plus a flag
/// for non-finite discrepancies (a NaN gap must count as detected — the
/// plain `gap > threshold` comparison is false for NaN and would wave the
/// corruption straight through).
struct SytrdDetect {
  double worst = 0.0;
  bool bad = false;
  bool nonfinite = false;
  [[nodiscard]] double gap() const {
    return nonfinite ? std::numeric_limits<double>::quiet_NaN() : worst;
  }
};

class FtSytrdDriver {
 public:
  FtSytrdDriver(hybrid::Device& dev, MatrixView<double> a, VectorView<double> d,
                VectorView<double> e, VectorView<double> tau, const FtSytrdOptions& opt,
                fault::Injector* inj, FtReport& rep, hybrid::HybridGehrdStats& st)
      : s_(dev.stream()),
        a_(a),
        d_(d),
        e_(e),
        tau_(tau),
        opt_(opt),
        inj_(inj),
        rep_(rep),
        st_(st),
        n_(a.rows()),
        d_a_(dev, n_, n_, "sytrd.ft.d_a"),
        d_v_(dev, n_, std::max<index_t>(opt.nb, 1), "sytrd.ft.d_v"),
        d_w_(dev, n_, std::max<index_t>(opt.nb, 1), "sytrd.ft.d_w"),
        d_chke_(dev, n_, 1, "sytrd.ft.d_chke"),
        d_chkw_(dev, n_, 1, "sytrd.ft.d_chkw"),
        d_ones_(dev, n_, 1, "sytrd.ft.d_ones"),
        d_wvec_(dev, n_, 1, "sytrd.ft.d_wvec"),
        d_sums_(dev, std::max<index_t>(opt.nb, 1), 4, "sytrd.ft.d_sums"),
        d_pc_(dev, n_, 2, "sytrd.ft.d_pc"),
        d_fresh_(dev, n_, 1, "sytrd.ft.d_fresh"),
        w_host_(n_, std::max<index_t>(opt.nb, 1)),
        v_host_(n_, std::max<index_t>(opt.nb, 1)),
        ckpt_(n_, std::max<index_t>(opt.nb, 1)),
        ckpt_chke_(n_, 1),
        ckpt_chkw_(n_, 1),
        seg_(std::max<index_t>(opt.nb, 1), 2),
        qp_(n_) {
    const double fro = norm_fro(MatrixView<const double>(a_));
    scale_max_ = norm_max(MatrixView<const double>(a_));
    threshold_ = opt.threshold > 0
                     ? opt.threshold
                     : default_threshold(fro, n_, opt.threshold_factor) /
                           static_cast<double>(std::max<index_t>(n_, 1));
    // ^ per-row tolerance: the gehrd default bounds a grand total over n
    //   rows; divide the n factor back out but keep a comfortable margin.
    threshold_ *= 50.0;
    total_boundaries_ = ft_sytrd_boundaries(n_, opt.nb);
    rep_.threshold = threshold_;
    plane_ = opt.fault_plane;
    if (plane_ != nullptr) plane_->bind(dev);
  }

  ~FtSytrdDriver() {
    if (plane_ != nullptr) {
      // Drain the stream so no hook invocation is in flight when the hooks
      // come down (the plane may be destroyed right after the driver).
      try {
        s_.synchronize();
      } catch (...) {  // NOLINT(bugprone-empty-catch): unwinding already
      }
      plane_->unbind();
    }
  }

  void run() {
    encode();
    index_t i = 0;
    index_t boundary = 0;
    while (i < n_ - 1) {
      const index_t ib = std::min(opt_.nb, n_ - 1 - i);
      const bool completed = run_iteration(i, ib);
      ++boundary;
      // Faults strike at the boundary, i.e. before the end-of-iteration
      // check — so a hit anywhere (including the next panel's interior) is
      // detected and repaired before the next factorization step consumes
      // it, exactly the "correct before it propagates" discipline of the
      // paper.
      if (inj_ != nullptr) inject_at_boundary(boundary, i + ib);
      const bool check_now = opt_.detect_every <= 1 ||
                             boundary % opt_.detect_every == 0 || i + ib >= n_ - 1;
      // A poisoned panel forces a check regardless of the amortization
      // knob: the next iteration would otherwise consume the damage.
      if (check_now || !completed) ensure_clean(boundary, i, ib, completed);
      if (opt_.protect_q) qp_.commit(pending_q_);
      ++st_.panels;
      i += ib;
    }
    final_phase();
    // Clean means NOTHING fired: a run that survived only because a
    // checkpoint was re-derived, a non-finite element reconstructed, or a
    // poisoned panel abandoned was still a recovery.
    rep_.outcome.status = (rep_.detections > 0 || rep_.final_sweep_corrections > 0 ||
                           rep_.q_corrections > 0 || rep_.ckpt_rederivations > 0 ||
                           rep_.reconstructions > 0 || rep_.panel_aborts > 0)
                              ? RecoveryStatus::Recovered
                              : RecoveryStatus::Clean;
  }

 private:
  void encode() {
    WallTimer t;
    obs::TraceSpan span("ft", "encode", "n", static_cast<double>(n_));
    copy_h2d_async(s_, MatrixView<const double>(a_), d_a_.view());
    hybrid::fill_async(s_, d_ones_.view(), 1.0);
    s_.enqueue("ft.iota", FTH_TASK_EFFECTS(FTH_WRITES(d_wvec_.view())),
                [wv = d_wvec_.view()] {
      auto wvh = wv.in_task();
      for (index_t r = 0; r < wvh.rows(); ++r) wvh(r, 0) = static_cast<double>(r + 1);
    });
    // chk_e = A_sym·e, chk_w = A_sym·ω (device SYMVs over the lower triangle).
    hybrid::symv_async(s_, Uplo::Lower, 1.0, d_a_.view(), d_ones_.view().col(0), 0.0,
                       d_chke_.view().col(0));
    hybrid::symv_async(s_, Uplo::Lower, 1.0, d_a_.view(), d_wvec_.view().col(0), 0.0,
                       d_chkw_.view().col(0));
    // Intentional full barrier, once per run: mark_encoded() below opens
    // the fault gate, and both codes must exist on the device before any
    // strike is allowed. fth-perf: expect coarse-synchronize
    s_.synchronize();
    rep_.encode_seconds += t.seconds();
    // Faults are gated until the codes exist: an earlier strike would be
    // encoded consistently and become a different (but protected) input.
    if (plane_ != nullptr) plane_->mark_encoded();
  }

  // Returns false if the panel tripwire abandoned the iteration before any
  // update touched the trailing matrix (caller rolls back and redoes).
  bool run_iteration(index_t i, index_t ib) {
    const index_t vrows = n_ - i - 1;
    const index_t tn = n_ - i - ib;

    // Re-aim the fault plane at this iteration's live regions. The device
    // panel columns are excluded: the panel is factored from host data and
    // the finished rows are re-encoded from host values, so a strike there
    // becomes consistent-wrong dead storage the accounting cannot see. The
    // strictly upper triangle of d_a_ is likewise never read (LowerTriangle
    // shape). The checkpoint surface is registered only after its integrity
    // sums are taken, so a strike cannot pre-date the reference.
    if (plane_ != nullptr) {
      plane_->register_surface(fault::Surface::TrailingMatrix,
                               d_a_.block(i + ib, i + ib, tn, tn),
                               fault::SurfaceShape::LowerTriangle);
      // Trailing segments only: the panel segments [i, i+ib) are re-encoded
      // from the finished host rows at the end of the iteration, so a strike
      // there before the re-encode is dead storage the comparison never sees.
      plane_->register_surface(fault::Surface::ChecksumCol,
                               d_chke_.block(i + ib, 0, tn, 1));
      // The weighted code rides under the ChecksumRow label — sytrd has no
      // checksum row; its second line of defense is the ω-weighted column.
      plane_->register_surface(fault::Surface::ChecksumRow,
                               d_chkw_.block(i + ib, 0, tn, 1));
      plane_->clear_surface(fault::Surface::Checkpoint);
      plane_->clear_transfer_targets();
      // Fault-eligible transfer destinations inside the protected domain:
      // the checkpointed checksum-vector pre-images (d2h, checkpoint save).
      // The panel d2h lands in host a_, the reliable domain by the paper's
      // model — corrupting it would be a silently wrong result everywhere.
      plane_->add_transfer_target(fault::Surface::Checkpoint, ckpt_chke_.view());
      plane_->add_transfer_target(fault::Surface::Checkpoint, ckpt_chkw_.view());
    }

    // Panel to host + diskless checkpoints (panel pre-image and both
    // checksum vectors — the vectors are O(n), so checkpointing beats
    // reverse-computing them).
    WallTimer panel_timer;
    {
      obs::TraceSpan ckpt_span("ft", "checkpoint_save", "col", static_cast<double>(i));
      copy_d2h_async(s_, d_a_.block(0, i, n_, ib), a_.block(0, i, n_, ib));
      copy_d2h_async(s_, d_chke_.view(), ckpt_chke_.view());
      copy_d2h(s_, d_chkw_.view(), ckpt_chkw_.view());
      fth::copy(MatrixView<const double>(a_.block(0, i, n_, ib)), ckpt_.block(0, 0, n_, ib));
      // The d2h that filled the vector checkpoints is itself fault-eligible
      // and the dual-sum verify can only vouch for what was stored, not for
      // the transfer. Cross-check bitwise against the device's maintained
      // vectors via a raw task readback (not a copy_* transfer, hence not
      // fault-eligible) and repair on mismatch.
      verify_chk_checkpoint_save();
      save_checkpoint_sums(ib);
      if (plane_ != nullptr)
        plane_->register_surface(fault::Surface::Checkpoint, ckpt_.block(0, 0, n_, ib));
    }

    // Host panel with device-assisted SYMV.
    bool poisoned = false;
    {
      obs::TraceSpan panel_span("hybrid", "panel", "col", static_cast<double>(i));
      try {
        lapack::detail::latrd_panel(
            a_, i, ib, e_.sub(i, ib), tau_.sub(i, ib), w_host_.view(),
            [&](index_t j, VectorView<const double> vj, VectorView<double> w_col) {
              const index_t cj = i + j;
              const index_t vlen = n_ - cj - 1;
              auto d_vcol = d_v_.block(j, j, vlen, 1);
              copy_h2d_async(s_, MatrixView<const double>(vj.data(), vlen, 1, vlen), d_vcol);
              hybrid::symv_async(s_, Uplo::Lower, 1.0,
                                 d_a_.block(cj + 1, cj + 1, vlen, vlen), d_vcol.col(0), 0.0,
                                 d_w_.block(j, j, vlen, 1).col(0));
              copy_d2h(s_, d_w_.block(j, j, vlen, 1),
                       MatrixView<double>(w_col.data(), vlen, 1, vlen));
              // Tripwire: a non-finite w means a NaN/Inf strike reached the
              // trailing matrix mid-panel. Abandon the panel before any
              // update smears it.
              for (index_t r = 0; r < vlen; ++r)
                if (!std::isfinite(w_col[r])) throw panel_poisoned_error{};
            });
      } catch (const panel_poisoned_error&) {
        poisoned = true;
      }
    }
    st_.panel_seconds += panel_timer.seconds();
    if (poisoned) {
      s_.synchronize();
      ++rep_.panel_aborts;
      obs::counter_metric("ft.panel_aborts").add();
      obs::instant("ft", "panel_abort");
      obs::journal_log(obs::JournalSeverity::Warn, "ft", "panel_abort", -1, 0.0, i);
      return false;
    }

    WallTimer update_timer;
    {
      obs::TraceSpan update_span("hybrid", "update", "col", static_cast<double>(i));
      // Clean V (explicit unit) and the finished W block to the device,
      // staged in the loop-hoisted v_host_ (the upload is only retired by
      // detect()'s synchronous fetch, after this scope ends).
      lapack::materialize_v_into(MatrixView<const double>(a_), i, ib,
                                 v_host_.block(0, 0, vrows, ib));
      copy_h2d_async(s_, MatrixView<const double>(v_host_.block(0, 0, vrows, ib)),
                     d_v_.block(0, 0, vrows, ib));
      copy_h2d_async(s_, MatrixView<const double>(w_host_.block(i + 1, 0, vrows, ib)),
                     d_w_.block(0, 0, vrows, ib));

      // --- Checksum maintenance --------------------------------------------
      // After this iteration the logical row sum of a trailing row r ≥ i+ib is
      //   old_sum(r) − (old panel-column entries of row r)        [zeroed]
      //              − (V2·W2ᵀ + W2·V2ᵀ)(r, :)·vec  over c ≥ i+ib [rank-2k]
      //              + e_last·vec(i+ib−1) for r == i+ib           [coupling]
      // and panel rows i..i+ib−1 become plain tridiagonal rows, re-encoded
      // from the finished host data (their pre-images are checkpointed).
      auto v2 = d_v_.block(ib - 1, 0, tn, ib);
      auto w2 = d_w_.block(ib - 1, 0, tn, ib);
      auto ones_tn = d_ones_.view().col(0).sub(0, tn);
      auto ones_ib = d_ones_.view().col(0).sub(0, ib);
      auto wvec_tail = d_wvec_.view().col(0).sub(i + ib, tn);
      auto wvec_panel = d_wvec_.view().col(0).sub(i, ib);

      // Tail column sums of V2/W2 against e and ω (paper line 6/7 analogues).
      hybrid::gemv_async(s_, Trans::Yes, 1.0, v2, ones_tn, 0.0, d_sums_.view().col(0).sub(0, ib));
      hybrid::gemv_async(s_, Trans::Yes, 1.0, w2, ones_tn, 0.0, d_sums_.view().col(1).sub(0, ib));
      hybrid::gemv_async(s_, Trans::Yes, 1.0, v2, wvec_tail, 0.0, d_sums_.view().col(2).sub(0, ib));
      hybrid::gemv_async(s_, Trans::Yes, 1.0, w2, wvec_tail, 0.0, d_sums_.view().col(3).sub(0, ib));
      // Old panel-column contributions of the trailing rows (the device's
      // panel columns still hold the pristine start-of-iteration values).
      auto panel_tail = d_a_.block(i + ib, i, tn, ib);
      hybrid::gemv_async(s_, Trans::No, 1.0, panel_tail, ones_ib, 0.0,
                         d_pc_.view().col(0).sub(0, tn));
      hybrid::gemv_async(s_, Trans::No, 1.0, panel_tail, wvec_panel, 0.0,
                         d_pc_.view().col(1).sub(0, tn));

      auto se_v2 = d_sums_.view().col(0).sub(0, ib);
      auto se_w2 = d_sums_.view().col(1).sub(0, ib);
      auto sw_v2 = d_sums_.view().col(2).sub(0, ib);
      auto sw_w2 = d_sums_.view().col(3).sub(0, ib);
      auto chke_tail = d_chke_.view().col(0).sub(i + ib, tn);
      auto chkw_tail = d_chkw_.view().col(0).sub(i + ib, tn);
      hybrid::axpy_async(s_, -1.0, d_pc_.view().col(0).sub(0, tn), chke_tail);
      hybrid::gemv_async(s_, Trans::No, -1.0, v2, se_w2, 1.0, chke_tail);
      hybrid::gemv_async(s_, Trans::No, -1.0, w2, se_v2, 1.0, chke_tail);
      hybrid::axpy_async(s_, -1.0, d_pc_.view().col(1).sub(0, tn), chkw_tail);
      hybrid::gemv_async(s_, Trans::No, -1.0, v2, sw_w2, 1.0, chkw_tail);
      hybrid::gemv_async(s_, Trans::No, -1.0, w2, sw_v2, 1.0, chkw_tail);

      // The window between the checksum maintenance and the rank-2k data
      // update is sytrd's analogue of gehrd's between-updates window.
      if (plane_ != nullptr) plane_->on_between_updates(s_);

      // Trailing rank-2k (lower triangle) on the device.
      hybrid::syr2k_async(s_, Uplo::Lower, Trans::No, -1.0, v2, w2, 1.0,
                          d_a_.block(i + ib, i + ib, tn, tn));

      // Host work overlapped with the device update.
      if (opt_.protect_q) {
        WallTimer qt;
        obs::TraceSpan q_span("ft", "q_checksum");
        pending_q_ = qp_.compute_panel(MatrixView<const double>(a_), i, ib);
        rep_.q_seconds += qt.seconds();
      }
      for (index_t j = 0; j < ib; ++j) {
        a_(i + j + 1, i + j) = e_[i + j];  // replace the panel's unit entries
      }

      // Re-encode the finished panel rows of both checksums from the final
      // tridiagonal data, and add the new coupling entry to row i+ib.
      for (index_t j = 0; j < ib; ++j) {
        const index_t r = i + j;
        const double dl = r > 0 ? a_(r, r - 1) : 0.0;
        const double dd = a_(r, r);
        const double du = a_(r + 1, r);  // superdiagonal by symmetry
        seg_(j, 0) = dl + dd + du;
        seg_(j, 1) = dl * static_cast<double>(r) + dd * static_cast<double>(r + 1) +
                     du * static_cast<double>(r + 2);
      }
      copy_h2d_async(s_, seg_.block(0, 0, ib, 1), d_chke_.block(i, 0, ib, 1));
      copy_h2d_async(s_, seg_.block(0, 1, ib, 1), d_chkw_.block(i, 0, ib, 1));
      const double e_last = e_[i + ib - 1];
      auto ce = d_chke_.view();
      auto cw = d_chkw_.view();
      s_.enqueue("ft.couple", FTH_TASK_EFFECTS(FTH_WRITES(d_chke_.view(), d_chkw_.view())),
                 [ce, cw, i, ib, e_last] {
        ce.in_task()(i + ib, 0) += e_last;
        cw.in_task()(i + ib, 0) += e_last * static_cast<double>(i + ib);  // weight of col i+ib−1
      });
      // No loop-bottom synchronize: the seg_ uploads and the couple task
      // stay in flight and are retired by detect()'s synchronous fetch
      // before the host refills seg_ (fth_analyze --perf flagged the old
      // barrier as coarse-synchronize).
    }
    st_.update_seconds += update_timer.seconds();
    return true;
  }

  /// Fresh logical row sums of the current state: finished rows from the
  /// host tridiagonal entries, trailing rows from a device SYMV; `i2` is
  /// the first trailing index.
  std::vector<double> fresh_sums(index_t i2, bool weighted) {
    std::vector<double> fresh(static_cast<std::size_t>(n_), 0.0);
    auto weight = [&](index_t c) { return weighted ? static_cast<double>(c + 1) : 1.0; };
    // Finished rows: tridiagonal entries read from the host matrix.
    for (index_t r = 0; r < i2 && r < n_; ++r) {
      double s = a_(r, r) * weight(r);
      if (r > 0) s += a_(r, r - 1) * weight(r - 1);
      if (r + 1 < n_) s += a_(r + 1, r) * weight(r + 1);  // superdiag by symmetry
      fresh[static_cast<std::size_t>(r)] = s;
    }
    if (i2 >= n_) return fresh;
    // Trailing rows: SYMV over the live lower triangle on the device.
    const index_t tn = n_ - i2;
    auto vec = weighted ? d_wvec_.view().col(0).sub(i2, tn)
                        : d_ones_.view().col(0).sub(0, tn);
    hybrid::symv_async(s_, Uplo::Lower, 1.0, d_a_.block(i2, i2, tn, tn), vec, 0.0,
                       d_fresh_.view().col(0).sub(0, tn));
    std::vector<double> trail(static_cast<std::size_t>(tn));
    s_.enqueue("ft.fresh_readback", FTH_TASK_EFFECTS(FTH_READS(d_fresh_.view())),
                [this, tn, &trail] {
      auto f = d_fresh_.view().col(0).in_task();
      for (index_t r = 0; r < tn; ++r) trail[static_cast<std::size_t>(r)] = f[r];
    });
    s_.synchronize();
    for (index_t r = 0; r < tn; ++r)
      fresh[static_cast<std::size_t>(i2 + r)] = trail[static_cast<std::size_t>(r)];
    // The coupling entry e[i2−1] contributes to trailing row i2 (column
    // i2−1) and was counted in neither part above.
    if (i2 > 0) fresh[static_cast<std::size_t>(i2)] += a_(i2, i2 - 1) * weight(i2 - 1);
    return fresh;
  }

  std::vector<double> fetch_chk(bool weighted) {
    std::vector<double> out(static_cast<std::size_t>(n_));
    s_.enqueue("ft.chk_readback",
                FTH_TASK_EFFECTS(FTH_READS(d_chke_.view(), d_chkw_.view())),
                [this, &out, weighted] {
      auto c = (weighted ? d_chkw_.view() : d_chke_.view()).col(0).in_task();
      for (index_t r = 0; r < n_; ++r) out[static_cast<std::size_t>(r)] = c[r];
    });
    s_.synchronize();
    return out;
  }

  SytrdDetect detect(index_t i2) {
    SytrdDetect det;
    const std::vector<double> fresh = fresh_sums(i2, /*weighted=*/false);
    const std::vector<double> chke = fetch_chk(false);
    for (index_t r = 0; r < n_; ++r) {
      const double gap = std::abs(fresh[static_cast<std::size_t>(r)] -
                                  chke[static_cast<std::size_t>(r)]);
      if (!std::isfinite(gap)) {
        det.nonfinite = true;
        det.bad = true;
      } else {
        det.worst = std::max(det.worst, gap);
        if (gap > threshold_) det.bad = true;
      }
    }
    return det;
  }

  void ensure_clean(index_t boundary, index_t i, index_t ib, bool completed) {
    int attempts = 0;
    for (;;) {
      WallTimer dt;
      SytrdDetect det;
      if (completed) {
        obs::TraceSpan det_span("ft", "detect");
        det = detect(i + ib);
      } else {
        // The panel tripwire already proved the iteration unusable; there
        // is nothing meaningful to measure, so synthesize the detection.
        det.bad = true;
        det.nonfinite = true;
      }
      rep_.detect_seconds += dt.seconds();
      if (std::isfinite(det.gap())) {
        obs::histogram_metric("ft.detect_gap").observe(det.worst);
        obs::counter("ft.detect_gap", det.worst);
      }
      if (!det.bad) {
        rep_.max_fault_free_gap = std::max(rep_.max_fault_free_gap, det.worst);
        return;
      }

      ++rep_.detections;
      obs::instant("ft", "detection");
      obs::counter_metric("ft.detections").add();
      obs::journal_log(obs::JournalSeverity::Warn, "ft", "detect", -1, det.gap(), boundary);
      if (det.nonfinite) obs::counter_metric("ft.nonfinite_detections").add();
      if (++attempts > opt_.max_retries) {
        std::ostringstream os;
        os << "per-row gap " << det.gap() << " > threshold " << threshold_
           << " after exhausting retries";
        abort_recovery(rep_.outcome, "ft_sytrd", AbortReason::RetriesExhausted, boundary,
                       attempts - 1, det.gap(), threshold_, os.str());
      }

      WallTimer rt;
      FtEvent ev;
      ev.boundary = boundary;
      ev.gap = det.gap();
      ev.panel_poisoned = !completed;
      {
        obs::TraceSpan rb_span("ft", "rollback", "col", static_cast<double>(i));
        rollback(i, ib, completed);
      }
      ++rep_.rollbacks;
      obs::counter_metric("ft.rollbacks").add();
      obs::journal_log(obs::JournalSeverity::Info, "ft", "rollback", -1,
                       static_cast<double>(attempts), boundary);
      try {
        obs::TraceSpan loc_span("ft", "locate");
        locate_and_correct(i, ev);
      } catch (const recovery_error& e) {
        // Location gave up: the pattern exceeds the two-code capability.
        // Record the abandoned iteration, then abort with the cause.
        const AbortReason why = det.nonfinite ? AbortReason::NonfiniteDamage
                                              : AbortReason::AmbiguousPattern;
        rep_.events.push_back(std::move(ev));
        abort_recovery(rep_.outcome, "ft_sytrd", why, boundary, attempts, det.gap(),
                       threshold_, e.what());
      }
      ev.checkpoint_only = ev.data_corrections == 0 && ev.checksum_corrections == 0 &&
                           ev.reconstructions == 0;
      rep_.data_corrections += ev.data_corrections;
      rep_.checksum_corrections += ev.checksum_corrections;
      obs::counter_metric("ft.data_corrections").add(static_cast<std::uint64_t>(ev.data_corrections));
      obs::counter_metric("ft.checksum_corrections")
          .add(static_cast<std::uint64_t>(ev.checksum_corrections));
      if (ev.checkpoint_only) obs::counter_metric("ft.checkpoint_only_recoveries").add();
      rep_.events.push_back(std::move(ev));
      {
        obs::TraceSpan redo_span("ft", "reexec", "col", static_cast<double>(i));
        obs::counter_metric("ft.reexecutions").add();
        obs::journal_log(obs::JournalSeverity::Info, "ft", "reexec", -1,
                         static_cast<double>(attempts), boundary);
        const RecoveryScope in_recovery(plane_);
        completed = run_iteration(i, ib);
      }
      rep_.recovery_seconds += rt.seconds();
    }
  }

  void rollback(index_t i, index_t ib, bool completed) {
    const index_t tn = n_ - i - ib;
    if (completed) {
      // Reverse the trailing rank-2k exactly (deterministic kernel, same
      // retained operands). A poisoned panel never applied it.
      hybrid::syr2k_async(s_, Uplo::Lower, Trans::No, 1.0, d_v_.block(ib - 1, 0, tn, ib),
                          d_w_.block(ib - 1, 0, tn, ib), 1.0,
                          d_a_.block(i + ib, i + ib, tn, tn));
    }
    // Drain before touching the checkpoints from the host: in-flight faults
    // fire on the worker thread and may target the checkpoint buffers.
    // Recovery cold path, not worth an Event edge. fth-perf: expect coarse-synchronize
    s_.synchronize();
    obs::TraceSpan restore_span("ft", "checkpoint_restore", "col", static_cast<double>(i));
    verify_or_rederive_panel_checkpoint(i, ib);
    fth::copy(MatrixView<const double>(ckpt_.block(0, 0, n_, ib)), a_.block(0, i, n_, ib));
    // The vector checkpoints are verified after the data rollback so that a
    // corrupt one can be re-derived from the restored state; only then are
    // they pushed back to the device.
    verify_or_rederive_chk_checkpoints(i);
    copy_h2d_async(s_, ckpt_chke_.cview(), d_chke_.view());
    copy_h2d(s_, ckpt_chkw_.cview(), d_chkw_.view());
  }

  // -- Checkpoint integrity (the checkpoint itself is a fault target). ------
  // Dual sums (plain + position-weighted) compared bitwise at restore time:
  // any corruption of the host buffers between save and restore — including
  // NaN, which is unequal to itself — flips at least one sum. The panel and
  // the checksum vectors carry separate sum pairs because their
  // re-derivation sources differ.
  static bool bits_equal(double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  }

  void panel_checkpoint_sums(double& s1, double& s2, index_t ib) const {
    s1 = 0.0;
    s2 = 0.0;
    for (index_t j = 0; j < ib; ++j) {
      for (index_t r = 0; r < n_; ++r) {
        const double v = ckpt_(r, j);
        s1 += v;
        s2 += v * static_cast<double>((r + 1) + (j + 1) * n_);
      }
    }
  }

  void chk_checkpoint_sums(double& s1, double& s2) const {
    s1 = 0.0;
    s2 = 0.0;
    for (index_t r = 0; r < n_; ++r) {
      s1 += ckpt_chke_(r, 0) + ckpt_chkw_(r, 0);
      s2 += ckpt_chke_(r, 0) * static_cast<double>(r + 1) +
            ckpt_chkw_(r, 0) * static_cast<double>(n_ + r + 1);
    }
  }

  void save_checkpoint_sums(index_t ib) {
    panel_checkpoint_sums(ckpt_sum1_, ckpt_sum2_, ib);
    chk_checkpoint_sums(ckpt_csum1_, ckpt_csum2_);
  }

  /// Bitwise cross-check of the freshly saved vector checkpoints against
  /// the device's maintained vectors (raw task readback, not a transfer —
  /// so a transfer fault cannot strike both sides).
  void verify_chk_checkpoint_save() {
    Matrix<double> ref(n_, 2);
    auto rv = ref.view();
    auto ce = d_chke_.view();
    auto cw = d_chkw_.view();
    s_.enqueue("ft.ckpt_readback", FTH_TASK_EFFECTS(FTH_READS(ce, cw) FTH_WRITES(rv)),
                [rv, ce, cw, n = n_]() mutable {
      auto ceh = ce.in_task();
      auto cwh = cw.in_task();
      for (index_t r = 0; r < n; ++r) {
        rv(r, 0) = ceh(r, 0);
        rv(r, 1) = cwh(r, 0);
      }
    });
    s_.synchronize();
    for (index_t r = 0; r < n_; ++r) {
      if (!bits_equal(ckpt_chke_(r, 0), ref(r, 0))) {
        ckpt_chke_(r, 0) = ref(r, 0);
        ++rep_.ckpt_rederivations;
        obs::counter_metric("ft.ckpt_rederivations").add();
        obs::instant("ft", "ckpt_rederive");
      }
      if (!bits_equal(ckpt_chkw_(r, 0), ref(r, 1))) {
        ckpt_chkw_(r, 0) = ref(r, 1);
        ++rep_.ckpt_rederivations;
        obs::counter_metric("ft.ckpt_rederivations").add();
        obs::instant("ft", "ckpt_rederive");
      }
    }
  }

  void verify_or_rederive_panel_checkpoint(index_t i, index_t ib) {
    double s1 = 0.0;
    double s2 = 0.0;
    panel_checkpoint_sums(s1, s2, ib);
    if (bits_equal(s1, ckpt_sum1_) && bits_equal(s2, ckpt_sum2_)) return;
    // The diskless panel checkpoint was struck after save. The device's
    // panel columns are never written during the iteration (the panel is
    // factored on the host, the rank-2k starts at column i+ib), so they
    // still hold the exact pre-iteration image.
    copy_d2h(s_, d_a_.block(0, i, n_, ib), ckpt_.block(0, 0, n_, ib));
    panel_checkpoint_sums(ckpt_sum1_, ckpt_sum2_, ib);
    ++rep_.ckpt_rederivations;
    obs::counter_metric("ft.ckpt_rederivations").add();
    obs::instant("ft", "ckpt_rederive");
  }

  void verify_or_rederive_chk_checkpoints(index_t i) {
    double s1 = 0.0;
    double s2 = 0.0;
    chk_checkpoint_sums(s1, s2);
    if (bits_equal(s1, ckpt_csum1_) && bits_equal(s2, ckpt_csum2_)) return;
    // Struck after save: re-derive both codes from the rolled-back data
    // (the caller restored the trailing matrix and the panel first). An
    // undetected fault older than the last check would be encoded
    // consistently here — the residual double-fault window DESIGN.md §9
    // documents.
    const std::vector<double> fe = fresh_sums(i, /*weighted=*/false);
    const std::vector<double> fw = fresh_sums(i, /*weighted=*/true);
    for (index_t r = 0; r < n_; ++r) {
      ckpt_chke_(r, 0) = fe[static_cast<std::size_t>(r)];
      ckpt_chkw_(r, 0) = fw[static_cast<std::size_t>(r)];
    }
    chk_checkpoint_sums(ckpt_csum1_, ckpt_csum2_);
    ++rep_.ckpt_rederivations;
    obs::counter_metric("ft.ckpt_rederivations").add();
    obs::instant("ft", "ckpt_rederive");
  }

  // -- Non-finite recovery: element reconstruction from the plain code. -----
  // Rollback cannot cancel NaN/Inf (x + NaN − NaN stays NaN). A non-finite
  // strike at stored element (p,q) poisons exactly the fresh sums of rows p
  // and q (SYMV reads it for both); re-derive the element as
  // chk_e(p) − (row-p sum with the element zeroed).
  void reconstruct_nonfinite(const std::vector<index_t>& nf_rows, index_t i, FtEvent& ev) {
    if (nf_rows.size() > 2) {
      throw recovery_error(
          "ft_sytrd: non-finite contamination spans more than one stored element");
    }
    const index_t p = nf_rows.back();
    const index_t q = nf_rows.front();  // p == q → diagonal element
    if (q >= i) {
      auto da = d_a_.view();
      s_.enqueue("ft.reconstruct", FTH_TASK_EFFECTS(FTH_WRITES(da)),
                  [da, p, q] { da.in_task()(p, q) = 0.0; });
      s_.synchronize();
    } else {
      a_(p, q) = 0.0;
    }
    const std::vector<double> base = fresh_sums(i, /*weighted=*/false);
    const std::vector<double> chke = fetch_chk(false);
    const double code = chke[static_cast<std::size_t>(p)];
    const double rest = base[static_cast<std::size_t>(p)];
    if (!std::isfinite(code) || !std::isfinite(rest)) {
      throw recovery_error(
          "ft_sytrd: non-finite damage: the code needed for element "
          "reconstruction is itself lost");
    }
    const double v = code - rest;
    if (q >= i) {
      auto da = d_a_.view();
      s_.enqueue("ft.reconstruct", FTH_TASK_EFFECTS(FTH_WRITES(da)),
                  [da, p, q, v] { da.in_task()(p, q) = v; });
      s_.synchronize();
    } else {
      a_(p, q) = v;
    }
    ev.errors.push_back({p, q, 0.0});
    ++ev.reconstructions;
    ++rep_.reconstructions;
    obs::counter_metric("ft.reconstructions").add();
    obs::instant("ft", "reconstruction");
  }

  void locate_and_correct(index_t i, FtEvent& ev) {
    std::vector<double> fresh_e = fresh_sums(i, false);
    std::vector<double> chke = fetch_chk(false);

    // Non-finite pre-pass. Data damage shows as non-finite fresh sums and
    // is reconstructed element-wise from the plain code; non-finite
    // checksum storage with finite fresh sums is re-encoded directly. Any
    // residue is caught by the caller's retry loop.
    std::vector<index_t> nf_rows;
    for (index_t r = 0; r < n_; ++r) {
      if (!std::isfinite(fresh_e[static_cast<std::size_t>(r)])) nf_rows.push_back(r);
    }
    if (!nf_rows.empty()) {
      reconstruct_nonfinite(nf_rows, i, ev);
      fresh_e = fresh_sums(i, false);
    }
    {
      auto ce = d_chke_.view();
      auto cw = d_chkw_.view();
      std::vector<double> fresh_w_nf;  // computed lazily, only if chkw is damaged
      const std::vector<double> chkw_now = fetch_chk(true);
      bool synced = false;
      for (index_t r = 0; r < n_; ++r) {
        const double fe = fresh_e[static_cast<std::size_t>(r)];
        if (!std::isfinite(chke[static_cast<std::size_t>(r)]) && std::isfinite(fe)) {
          s_.enqueue("ft.correct", FTH_TASK_EFFECTS(FTH_WRITES(ce)),
                     [ce, r, fe] { ce.in_task()(r, 0) = fe; });
          synced = true;
          ++ev.checksum_corrections;
        }
        if (!std::isfinite(chkw_now[static_cast<std::size_t>(r)])) {
          if (fresh_w_nf.empty()) fresh_w_nf = fresh_sums(i, true);
          const double fw = fresh_w_nf[static_cast<std::size_t>(r)];
          if (std::isfinite(fw)) {
            s_.enqueue("ft.correct", FTH_TASK_EFFECTS(FTH_WRITES(cw)),
                       [cw, r, fw] { cw.in_task()(r, 0) = fw; });
            synced = true;
            ++ev.checksum_corrections;
          }
        }
      }
      if (synced) {
        s_.synchronize();
        chke = fetch_chk(false);
      }
    }

    const std::vector<double> fresh_w = fresh_sums(i, true);
    const std::vector<double> chkw = fetch_chk(true);

    struct Flag {
      index_t row;
      double de, dw;
    };
    std::vector<Flag> flags;
    for (index_t r = 0; r < n_; ++r) {
      const double de = fresh_e[static_cast<std::size_t>(r)] - chke[static_cast<std::size_t>(r)];
      const double dw = fresh_w[static_cast<std::size_t>(r)] - chkw[static_cast<std::size_t>(r)];
      if (!std::isfinite(de) || !std::isfinite(dw)) {
        throw recovery_error("ft_sytrd: non-finite discrepancy survived reconstruction");
      }
      if (std::abs(de) > threshold_ || std::abs(dw) > threshold_ * static_cast<double>(n_)) {
        flags.push_back({r, de, dw});
      }
    }
    if (flags.size() > 16) {
      throw recovery_error("ft_sytrd: too many simultaneous discrepancies to resolve");
    }

    std::vector<bool> consumed(flags.size(), false);
    for (std::size_t t = 0; t < flags.size(); ++t) {
      if (consumed[t]) continue;
      const Flag& f = flags[t];
      if (std::abs(f.de) <= threshold_) {
        // Weighted-only discrepancy: the chk_w element itself is corrupt.
        // Repair by re-encoding from the fresh value.
        auto cw = d_chkw_.view();
        const double fw = fresh_w[static_cast<std::size_t>(f.row)];
        s_.enqueue("ft.correct", FTH_TASK_EFFECTS(FTH_WRITES(cw)),
                   [cw, f, fw] { cw.in_task()(f.row, 0) = fw; });
        s_.synchronize();
        ++ev.checksum_corrections;
        continue;
      }
      // Column from the two-code ratio: ω_q = Δw/Δe ⇒ q = ratio − 1.
      const double ratio = f.dw / f.de;
      const double qf = ratio - 1.0;
      const index_t q = static_cast<index_t>(std::llround(qf));
      if (q < 0 || q >= n_ || std::abs(qf - static_cast<double>(q)) > 0.25) {
        // No consistent column: the chk_e element itself must be corrupt
        // (Δw ≈ 0 handled above; an incoherent ratio with Δw ≈ 0 relative
        // to Δe·n also lands here).
        if (std::abs(f.dw) <= threshold_ * static_cast<double>(n_)) {
          auto ce = d_chke_.view();
          const double fe = fresh_e[static_cast<std::size_t>(f.row)];
          s_.enqueue("ft.correct", FTH_TASK_EFFECTS(FTH_WRITES(ce)),
                     [ce, f, fe] { ce.in_task()(f.row, 0) = fe; });
          s_.synchronize();
          ++ev.checksum_corrections;
          continue;
        }
        throw recovery_error("ft_sytrd: discrepancy ratio does not identify a column — "
                             "errors may share a row");
      }
      // Stored element in the lower triangle.
      const index_t p = std::max(f.row, q);
      const index_t qq = std::min(f.row, q);
      const double delta = f.de;
      if (qq >= i) {
        auto da = d_a_.view();
        s_.enqueue("ft.correct", FTH_TASK_EFFECTS(FTH_WRITES(da)),
                   [da, p, qq, delta] { da.in_task()(p, qq) -= delta; });
        s_.synchronize();
      } else {
        a_(p, qq) -= delta;  // finished (tridiagonal) region on the host
      }
      ev.errors.push_back({p, qq, delta});
      ++ev.data_corrections;
      // Off-diagonal errors flag the partner row too; mark it consumed.
      if (q != f.row) {
        for (std::size_t u = t + 1; u < flags.size(); ++u) {
          if (flags[u].row == q && std::abs(flags[u].de - f.de) <=
                                       2.0 * threshold_ + 1e-9 * std::abs(f.de)) {
            consumed[u] = true;
            break;
          }
        }
      }
    }
  }

  void inject_at_boundary(index_t boundary, index_t i_next) {
    const auto due = inj_->due(boundary, total_boundaries_, i_next, n_, scale_max_);
    bool device_faults = false;
    for (auto f : due) {
      // Symmetric lower storage: fold the coordinates into the triangle.
      const index_t p = std::max(f.row, f.col);
      const index_t q = std::min(f.row, f.col);
      if (q >= i_next) {
        auto da = d_a_.view();
        s_.enqueue("fault.inject", FTH_TASK_EFFECTS(FTH_WRITES(da)), [da, p, q, f] {
          auto dah = da.in_task();
          dah(p, q) = f.apply(dah(p, q));
        });
        device_faults = true;
      } else {
        a_(p, q) = f.apply(a_(p, q));
      }
      inj_->record(boundary, f);
    }
    // One drain for the whole batch: a per-fault synchronize would
    // serialize multi-fault injection for no benefit.
    if (device_faults) s_.synchronize();
  }

  void final_phase() {
    // Fetch the last diagonal element (never part of a panel).
    copy_d2h(s_, d_a_.block(n_ - 1, n_ - 1, 1, 1), a_.block(n_ - 1, n_ - 1, 1, 1));

    if (opt_.final_sweep) {
      rep_.final_sweep_ran = true;
      WallTimer t;
      obs::TraceSpan sweep_span("ft", "final_sweep");
      FtEvent ev;
      // i = n−1: everything finished except the 1×1 trailing block. Sweep
      // both codes so a strike on the weighted vector (invisible to the
      // plain-code online check) is still found and repaired here.
      const std::vector<double> fresh_e = fresh_sums(n_ - 1, false);
      const std::vector<double> fresh_w = fresh_sums(n_ - 1, true);
      const std::vector<double> chke = fetch_chk(false);
      const std::vector<double> chkw = fetch_chk(true);
      bool bad = false;
      for (index_t r = 0; r < n_ && !bad; ++r) {
        const double ge = std::abs(fresh_e[static_cast<std::size_t>(r)] -
                                   chke[static_cast<std::size_t>(r)]);
        const double gw = std::abs(fresh_w[static_cast<std::size_t>(r)] -
                                   chkw[static_cast<std::size_t>(r)]);
        // NaN-safe: a non-finite gap must trigger the sweep.
        bad = !(ge <= threshold_) || !(gw <= threshold_ * static_cast<double>(n_));
      }
      if (bad) {
        try {
          locate_and_correct(n_ - 1, ev);
        } catch (const recovery_error& e) {
          abort_recovery(rep_.outcome, "ft_sytrd", AbortReason::AmbiguousPattern,
                         total_boundaries_, 0, 0.0, threshold_,
                         std::string("final sweep: ") + e.what());
        }
        rep_.final_sweep_corrections =
            ev.data_corrections + ev.checksum_corrections + ev.reconstructions;
        rep_.data_corrections += ev.data_corrections;
        rep_.checksum_corrections += ev.checksum_corrections;
        obs::counter_metric("ft.data_corrections")
            .add(static_cast<std::uint64_t>(ev.data_corrections));
        obs::counter_metric("ft.checksum_corrections")
            .add(static_cast<std::uint64_t>(ev.checksum_corrections));
        // Refresh the host copy of the last element if it was the target.
        copy_d2h(s_, d_a_.block(n_ - 1, n_ - 1, 1, 1), a_.block(n_ - 1, n_ - 1, 1, 1));
      }
      rep_.detect_seconds += t.seconds();
    }

    if (opt_.protect_q) {
      WallTimer qt;
      obs::TraceSpan q_span("ft", "q_verify");
      const double q_tol =
          1e3 * eps<double>() * static_cast<double>(n_) * std::max(1.0, scale_max_);
      const auto qres = qp_.verify_and_correct(a_, n_ - 1, q_tol);
      rep_.q_corrections += qres.corrections;
      obs::counter_metric("ft.q_corrections").add(static_cast<std::uint64_t>(qres.corrections));
      rep_.q_seconds += qt.seconds();
    }

    // Single source of truth: extract d and e from the (possibly repaired)
    // host matrix.
    for (index_t r = 0; r < n_; ++r) d_[r] = a_(r, r);
    for (index_t r = 0; r + 1 < n_; ++r) e_[r] = a_(r + 1, r);
  }

  hybrid::Stream& s_;
  MatrixView<double> a_;
  VectorView<double> d_;
  VectorView<double> e_;
  VectorView<double> tau_;
  const FtSytrdOptions& opt_;
  fault::Injector* inj_;
  FtReport& rep_;
  hybrid::HybridGehrdStats& st_;

  index_t n_;
  double threshold_ = 0.0;
  double scale_max_ = 0.0;
  index_t total_boundaries_ = 0;
  fault::FaultPlane* plane_ = nullptr;
  double ckpt_sum1_ = 0.0;
  double ckpt_sum2_ = 0.0;
  double ckpt_csum1_ = 0.0;
  double ckpt_csum2_ = 0.0;

  hybrid::DeviceMatrix<double> d_a_;
  hybrid::DeviceMatrix<double> d_v_;
  hybrid::DeviceMatrix<double> d_w_;
  hybrid::DeviceMatrix<double> d_chke_;
  hybrid::DeviceMatrix<double> d_chkw_;
  hybrid::DeviceMatrix<double> d_ones_;
  hybrid::DeviceMatrix<double> d_wvec_;
  hybrid::DeviceMatrix<double> d_sums_;
  hybrid::DeviceMatrix<double> d_pc_;
  hybrid::DeviceMatrix<double> d_fresh_;

  Matrix<double> w_host_;
  Matrix<double> v_host_;
  Matrix<double> ckpt_;
  Matrix<double> ckpt_chke_;
  Matrix<double> ckpt_chkw_;
  // Re-encode staging segment, hoisted out of the update loop: the async
  // h2d that reads it stays in flight past the loop bottom and is retired
  // by detect()'s synchronous fetch before the next refill.
  Matrix<double> seg_;
  QProtector qp_;
  QProtector::PanelChecksums pending_q_;
};

}  // namespace

void ft_sytrd(hybrid::Device& dev, MatrixView<double> a, VectorView<double> d,
              VectorView<double> e, VectorView<double> tau, const FtSytrdOptions& opt,
              fault::Injector* injector, FtReport* report,
              hybrid::HybridGehrdStats* stats) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "ft_sytrd: matrix must be square");
  FTH_CHECK(d.size() >= n, "ft_sytrd: d too short");
  FTH_CHECK(e.size() >= std::max<index_t>(n - 1, 0) &&
                tau.size() >= std::max<index_t>(n - 1, 0),
            "ft_sytrd: e/tau too short");
  FTH_CHECK(opt.nb >= 1 && opt.detect_every >= 1, "ft_sytrd: bad options");

  FtReport local_rep;
  hybrid::HybridGehrdStats local_st;
  FtReport& rep = report != nullptr ? *report : local_rep;
  hybrid::HybridGehrdStats& st = stats != nullptr ? *stats : local_st;
  rep = {};
  st = {};

  obs::TraceSpan run_span("ft", "sytrd", "n", static_cast<double>(n));
  WallTimer total;
  const hybrid::detail::StatsScope scope(dev);

  if (n > 2) {
    FtSytrdDriver driver(dev, a, d, e, tau, opt, injector, rep, st);
    driver.run();
  } else {
    for (index_t r = 0; r < n; ++r) d[r] = a(r, r);
    for (index_t r = 0; r + 1 < n; ++r) {
      e[r] = a(r + 1, r);
      tau[r] = 0.0;
    }
  }

  st.total_seconds = total.seconds();
  scope.finish(st);
}

}  // namespace fth::ft

// Error location from checksum discrepancies (Section IV-F).
//
// After rollback the corruption is confined again: each erroneous element
// (p, q, δ) shows up as a row discrepancy δ at p and a column discrepancy
// δ at q. Matching row deltas to column deltas by magnitude recovers the
// positions; the paper's solvability condition — the error positions must
// not form a rectangle — manifests here as the matching being unique.
#pragma once

#include <vector>

#include "ft/checksum.hpp"

namespace fth::ft {

/// One located data error: element (row, col) is off by `delta`
/// (stored = true + delta), so the correction is `element -= delta`.
struct LocatedError {
  index_t row = 0;
  index_t col = 0;
  double delta = 0.0;
};

/// One corrupted checksum element (the fault hit the redundancy itself).
/// Correction: set the maintained checksum to the recomputed value.
struct ChecksumError {
  index_t index = 0;   ///< row index (checksum column) or column index (checksum row)
  double fresh = 0.0;  ///< the recomputed, correct value
};

/// An element whose true value must be re-derived from a maintained code:
/// delta subtraction is meaningless because the stored value (or the delta)
/// is NaN/Inf. `use_row_code` selects the checksum-column (row-sum) code;
/// otherwise the checksum-row (column-sum) code is used. Non-finite damage
/// is self-locating — any line it touches flags with a non-finite delta —
/// so as long as the damage is confined to one row or one column, each
/// element is recoverable from the orthogonal code (the driver zeroes the
/// element, re-sums the line, and subtracts from the maintained checksum).
struct ReconstructTarget {
  index_t row = 0;
  index_t col = 0;
  bool use_row_code = true;
};

struct LocateResult {
  std::vector<LocatedError> data_errors;
  std::vector<ChecksumError> chk_col_errors;  ///< errors in the checksum column
  std::vector<ChecksumError> chk_row_errors;  ///< errors in the checksum row
  std::vector<ReconstructTarget> reconstructions;  ///< non-finite elements to re-derive
};

/// Resolve a discrepancy into error positions.
///
/// `fresh` must be the sums used to produce `d` (needed to report corrected
/// checksum values). `tol` bounds |row delta − column delta| for a pair to
/// match. Throws fth::recovery_error when the pattern is ambiguous (e.g. a
/// rectangle of equal-magnitude errors) or cannot be explained by one error
/// per mismatched row and column.
LocateResult locate(const Discrepancy& d, const FreshSums& fresh, double tol);

}  // namespace fth::ft

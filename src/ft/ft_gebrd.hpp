// Fault-tolerant hybrid bidiagonal reduction.
//
// The third member of the two-sided family the paper's conclusion targets.
// The general (non-symmetric) trailing update A −= V·Yᵀ + X·Uᵀ is covered
// by BOTH checksum vectors of the Hessenberg scheme — a maintained
// checksum column (row sums) and checksum row (column sums) — carried
// through the two trailing GEMMs by the same column-sum algebra, with the
// finished panel row/column segments re-encoded from the final bidiagonal
// data each iteration (their pre-images are checkpointed).
//
// Detection compares both maintained vectors against freshly recomputed
// logical sums once per iteration (two GEMVs over the trailing block);
// because a general-matrix error is asymmetric, the mismatched row and
// column identify it directly and the location/correction logic of
// ft::locate is reused verbatim.
//
// Both Householder families are write-once host data and get Section IV-E
// style protection: the left (Q) vectors through a QProtector with the
// QR-geometry offset, the right (P) vectors through a QProtector running
// on a transposed mirror of the finished rows.
#pragma once

#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"  // FtReport / FtEvent / LocatedError
#include "hybrid/hybrid_gehrd.hpp"

namespace fth::ft {

struct FtGebrdOptions {
  index_t nb = 32;
  double threshold = 0.0;  ///< per-line detection tolerance; 0 → scaled default
  double threshold_factor = 500.0;
  bool protect_qp = true;   ///< protect both Householder families
  bool final_sweep = true;
  int max_retries = 3;
  index_t detect_every = 1;  ///< same amortization knob as ft_sytrd
  /// Optional in-flight fault plane (see FtOptions::fault_plane).
  fault::FaultPlane* fault_plane = nullptr;
};

/// Reduce the square matrix `a` to upper bidiagonal form with
/// transient-error resilience. Output contract of lapack::gebrd.
void ft_gebrd(hybrid::Device& dev, MatrixView<double> a, VectorView<double> d,
              VectorView<double> e, VectorView<double> tauq, VectorView<double> taup,
              const FtGebrdOptions& opt = {}, fault::Injector* injector = nullptr,
              FtReport* report = nullptr, hybrid::HybridGehrdStats* stats = nullptr);

/// Number of panel iterations ft_gebrd executes for size n, block nb.
index_t ft_gebrd_boundaries(index_t n, index_t nb);

}  // namespace fth::ft

// Multi-device sharded Hessenberg reduction with coded device-loss
// recovery (DESIGN.md §13).
//
// Structure per iteration (same math as hybrid_gehrd, Algorithm 2):
//
//   panel      — the ib panel columns are fetched from their owning shards,
//                factorized on the host by the shared lahr2 loop; the big
//                GEMV runs as one partial product per data member, summed
//                on the host.
//   Y top      — one partial GEMM per data member, reduced into y_host by
//                a collector task on the collector device. The producers'
//                Events are bridged to the collector stream with
//                wait_event — the cross-device edge fth_analyze's
//                cross-stream-race rule (and its seeded test) pins.
//   update     — V/T/Yce are broadcast from the host; every member applies
//                the right and left block updates to the same local column
//                domain in lockstep (zero generator rows make the right
//                update a no-op on finished columns), which keeps the
//                parity member the exact elementwise sum of the data
//                shards and every shard's column-sum code row consistent.
//   verify     — each member re-checks its own code row on-device; the
//                host waits with a timeout. Timeout = silent stall or hard
//                death, code-row gap = poisoned output.
//
// A loss during the panel/Y-top phase restarts the iteration from a host
// panel checkpoint; a loss caught at the update boundary needs no retry —
// the update phase has no cross-device reads, so survivors are already
// consistent and the lost shard is reconstructed post-update as
// parity − Σ survivors and remapped onto the parity device. A second loss
// in the group escalates through abort_recovery (AbortReason::DeviceLost).
#include "ft/pool_gehrd.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "fault/fault_plane.hpp"
#include "ft/checksum.hpp"
#include "ft/shard_code.hpp"
#include "hybrid/dev_blas.hpp"
#include "la/blas1.hpp"
#include "la/blas3.hpp"
#include "la/norms.hpp"
#include "lapack/gehrd.hpp"
#include "lapack/lahr2_impl.hpp"
#include "lapack/orghr.hpp"
#include "lapack/reflectors.hpp"
#include "obs/dag.hpp"
#include "obs/incident.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fth::ft {
namespace {

/// Internal control-flow signal: `device` was declared lost. Caught by the
/// driver loop, never escapes pool_gehrd. `cause` feeds the journal /
/// incident capsule ("timeout", "poison", "nonfinite").
struct device_lost {
  int device = 0;
  const char* cause = "timeout";
};

class PoolDriver {
 public:
  PoolDriver(hybrid::DevicePool& pool, MatrixView<double> a, VectorView<double> tau,
             const PoolGehrdOptions& opt, PoolGehrdReport& rep)
      : pool_(pool),
        a_(a),
        tau_(tau),
        rep_(rep),
        plane_(opt.plane),
        n_(a.rows()),
        nb_(opt.nb),
        nx_(std::max(opt.nx, opt.nb)),
        D_(pool.size()),
        Ddata_(std::max(1, pool.size() - 1)),
        lay_(make_shard_layout(a.rows(), std::max(1, pool.size() - 1))),
        group_(std::max(1, pool.size() - 1)) {
    FTH_CHECK(a_.cols() == n_, "pool_gehrd: matrix must be square");
    FTH_CHECK(tau_.size() >= std::max<index_t>(n_ - 1, 0), "pool_gehrd: tau too short");
    FTH_CHECK(nb_ >= 1, "pool_gehrd: block size must be positive");
    FTH_CHECK(D_ >= 1, "pool_gehrd: empty pool");

    threshold_ = opt.threshold > 0.0
                     ? opt.threshold
                     : default_threshold(norm_fro(MatrixView<const double>(a_)), n_,
                                         opt.threshold_factor);
    rep_.devices = D_;
    rep_.data_shards = Ddata_;
    parity_dev_ = D_ >= 2 ? D_ - 1 : -1;
    slot_dev_.resize(static_cast<std::size_t>(Ddata_));
    for (int s = 0; s < Ddata_; ++s) slot_dev_[static_cast<std::size_t>(s)] = s;
    gaps_.assign(static_cast<std::size_t>(D_), std::numeric_limits<double>::quiet_NaN());

    // Health plane: every host wait on a member goes through the monitor,
    // which derives the adaptive allowance and the Degraded/Lost states
    // (obs/health.hpp). The ceiling honours FTH_POOL_TIMEOUT_MS.
    if (opt.health != nullptr) {
      health_ = opt.health;
    } else {
      obs::HealthConfig hc;
      hc.base_timeout_ms = obs::HealthMonitor::env_base_timeout_ms(opt.timeout_ms);
      hc.adaptive = opt.adaptive_timeout;
      health_owned_ = std::make_unique<obs::HealthMonitor>(D_, hc);
      health_ = health_owned_.get();
    }

    if (n_ > nx_ + 1) allocate_workspaces();
  }

  ~PoolDriver() {
    // Release the plane's hooks (and any still-blocked SilentStall worker)
    // before the device buffers it scribbles on go away.
    if (plane_ != nullptr) plane_->unbind();
  }

  void run() {
    obs::TraceSpan run_span("ft", "pool_gehrd", "n", static_cast<double>(n_));
    rep_.run_id = obs::journal_new_run();
    obs::journal_log(obs::JournalSeverity::Info, "pool", "started", -1,
                     static_cast<double>(n_));
    if (obs::incident_enabled()) counters_base_ = obs::Registry::global().counter_values();
    if (n_ <= nx_ + 1) {
      lapack::gehd2(a_, tau_);
      finish_outcome();
      return;
    }

    upload_and_encode();

    index_t i = 0;
    while (n_ - i > nx_ + 1) {
      const index_t ib = std::min(nb_, n_ - i - 1);
      checkpoint_panel(i, ib);
      for (;;) {
        try {
          panel_and_ytop(i, ib);
          break;
        } catch (const device_lost& dl) {
          // Panel-phase loss: quarantine + repair, then restart this panel
          // from the checkpoint. The shards were only read, so the
          // reconstruction is the start-of-iteration state.
          ++rep_.panel_retries;
          handle_loss(dl, i);
          obs::journal_log(obs::JournalSeverity::Warn, "pool", "panel_retry", dl.device,
                           static_cast<double>(rep_.panel_retries), i);
          restore_panel(i, ib);
        }
      }
      try {
        update(i, ib);
      } catch (const device_lost& dl) {
        // Boundary loss: survivors already carry this iteration's updates
        // (the update phase has no cross-device reads, so a struck member
        // cannot contaminate the others). Reconstruct and continue —
        // no rollback, no retry.
        handle_loss(dl, i);
      }
      i += ib;
    }

    for (;;) {
      try {
        final_gather(i);
        break;
      } catch (const device_lost& dl) {
        handle_loss(dl, i);
      }
    }
    host_finish(i);
    finish_outcome();
  }

 private:
  // --- setup -----------------------------------------------------------

  void allocate_workspaces() {
    const index_t w = lay_.w_max;
    d_e_.reserve(static_cast<std::size_t>(D_));
    d_vg_.reserve(static_cast<std::size_t>(D_));
    d_py_.reserve(static_cast<std::size_t>(D_));
    d_ve_.reserve(static_cast<std::size_t>(D_));
    d_t_.reserve(static_cast<std::size_t>(D_));
    d_yce_.reserve(static_cast<std::size_t>(D_));
    d_g_.reserve(static_cast<std::size_t>(D_));
    d_w_.reserve(static_cast<std::size_t>(D_));
    for (int d = 0; d < D_; ++d) {
      // Every member gets the full workspace set so a shard can be
      // remapped onto the parity device without reallocation.
      hybrid::Device& dv = pool_.device(d);
      d_e_.emplace_back(dv, n_ + 1, w, "pool.d_e");
      d_vg_.emplace_back(dv, w, 1, "pool.d_vg");
      d_py_.emplace_back(dv, n_, 1, "pool.d_py");
      d_ve_.emplace_back(dv, n_, nb_, "pool.d_ve");
      d_t_.emplace_back(dv, nb_, nb_, "pool.d_t");
      d_yce_.emplace_back(dv, n_ + 1, nb_, "pool.d_yce");
      d_g_.emplace_back(dv, w, nb_, "pool.d_g");
      d_w_.emplace_back(dv, nb_, w, "pool.d_w");
    }
    host_sh_.resize(static_cast<std::size_t>(Ddata_));
    for (int s = 0; s < Ddata_; ++s)
      host_sh_[static_cast<std::size_t>(s)] = Matrix<double>(n_ + 1, w);
    parity_host_ = Matrix<double>(n_ + 1, w);
    t_host_ = Matrix<double>(nb_, nb_);
    y_host_ = Matrix<double>(n_, nb_);
    yce_host_ = Matrix<double>(n_ + 1, nb_);
    ve_host_ = Matrix<double>(n_, nb_);
    stage_y_ = Matrix<double>(n_, Ddata_);
    stage_g_ = Matrix<double>(n_, static_cast<index_t>(Ddata_) * nb_);
    ckpt_ = Matrix<double>(n_, nb_);
    g_host_.resize(static_cast<std::size_t>(D_));
    for (int d = 0; d < D_; ++d) g_host_[static_cast<std::size_t>(d)] = Matrix<double>(w, nb_);
    vg_host_.resize(static_cast<std::size_t>(Ddata_));
    for (int s = 0; s < Ddata_; ++s)
      vg_host_[static_cast<std::size_t>(s)] = Matrix<double>(w, 1);
  }

  void upload_and_encode() {
    obs::TraceSpan span("ft", "pool.encode", "D", static_cast<double>(D_));
    if (plane_ != nullptr) plane_->bind_pool(pool_);
    scatter_shards(MatrixView<const double>(a_), lay_, host_sh_);
    for (int sl = 0; sl < Ddata_; ++sl) {
      const int dev = slot_dev_[static_cast<std::size_t>(sl)];
      hybrid::Stream& sd = pool_.stream(dev);
      hybrid::copy_h2d_async(sd, host_sh_[static_cast<std::size_t>(sl)].cview(),
                             d_e_[static_cast<std::size_t>(dev)].view());
    }
    if (parity_dev_ >= 0) {
      encode_parity(lay_, host_sh_, parity_host_);
      hybrid::Stream& sd = pool_.stream(parity_dev_);
      hybrid::copy_h2d_async(sd, parity_host_.cview(),
                             d_e_[static_cast<std::size_t>(parity_dev_)].view());
    }
    for (int d = 0; d < D_; ++d) {
      hybrid::Stream& sd = pool_.stream(d);
      sd.synchronize();
    }
    if (plane_ != nullptr) {
      for (int d = 0; d < D_; ++d)
        plane_->register_loss_surface(d, d_e_[static_cast<std::size_t>(d)].view());
      plane_->mark_encoded();
    }
  }

  // --- iteration phases ------------------------------------------------

  void checkpoint_panel(index_t i, index_t ib) {
    copy(MatrixView<const double>(a_.block(0, i, n_, ib)), ckpt_.block(0, 0, n_, ib));
  }

  void restore_panel(index_t i, index_t ib) {
    copy(MatrixView<const double>(ckpt_.block(0, 0, n_, ib)), a_.block(0, i, n_, ib));
  }

  void panel_and_ytop(index_t i, index_t ib) {
    obs::TraceSpan span("ft", "pool.panel", "col", static_cast<double>(i));
    const index_t vrows = n_ - i - 1;

    // Bring the panel columns to the host, full height, from their owners.
    for (index_t c = i; c < i + ib; ++c) {
      const int sl = lay_.slot_of(c);
      const index_t l = lay_.local_of(c);
      const int dev = slot_dev_[static_cast<std::size_t>(sl)];
      hybrid::Stream& sd = pool_.stream(dev);
      hybrid::copy_d2h_async(sd, d_e_[static_cast<std::size_t>(dev)].block(0, l, n_, 1),
                             a_.block(0, c, n_, 1));
    }
    for (int sl = 0; sl < Ddata_; ++sl) {
      const int dev = slot_dev_[static_cast<std::size_t>(sl)];
      hybrid::Stream& sd = pool_.stream(dev);
      const hybrid::Event pf = sd.record();
      const double w0 = health_->wait_begin();
      const bool ok = pf.wait_for(health_->allowed(dev));
      if (!health_->wait_end(dev, w0, ok) || pool_.lost(dev)) throw device_lost{dev};
    }

    // Host panel factorization; the big GEMV is one partial product per
    // data member against its own shard, summed on the host.
    lapack::detail::lahr2_panel(
        a_, i, ib, t_host_.view(), y_host_.view(), tau_.sub(i, ib),
        [&](index_t j, VectorView<const double> vj, VectorView<double> y_col) {
          const index_t cj = i + j;
          build_gathered_vectors(cj, vj);
          for (int sl = 0; sl < Ddata_; ++sl) {
            const index_t l0 = first_local(sl, cj + 1);
            const index_t wcols = lay_.w_max - l0;
            if (wcols <= 0) continue;
            const int dev = slot_dev_[static_cast<std::size_t>(sl)];
            hybrid::Stream& sd = pool_.stream(dev);
            hybrid::copy_h2d_async(sd, vg_host_[static_cast<std::size_t>(sl)].block(0, 0, wcols, 1),
                                   d_vg_[static_cast<std::size_t>(dev)].block(0, 0, wcols, 1));
            hybrid::gemv_async(sd, Trans::No, 1.0,
                               d_e_[static_cast<std::size_t>(dev)].block(i + 1, l0, vrows, wcols),
                               d_vg_[static_cast<std::size_t>(dev)].block(0, 0, wcols, 1).col(0),
                               0.0,
                               d_py_[static_cast<std::size_t>(dev)].block(0, 0, vrows, 1).col(0));
            hybrid::copy_d2h_async(sd, d_py_[static_cast<std::size_t>(dev)].block(0, 0, vrows, 1),
                                   stage_y_.block(0, sl, vrows, 1));
          }
          for (int sl = 0; sl < Ddata_; ++sl) {
            const int dev = slot_dev_[static_cast<std::size_t>(sl)];
            hybrid::Stream& sd = pool_.stream(dev);
            const hybrid::Event pg = sd.record();
            const double w0 = health_->wait_begin();
            const bool ok = pg.wait_for(health_->allowed(dev));
            if (!health_->wait_end(dev, w0, ok) || pool_.lost(dev)) throw device_lost{dev};
          }
          // A non-finite partial names its culprit before it can spread.
          for (int sl = 0; sl < Ddata_; ++sl) {
            for (index_t r = 0; r < vrows; ++r) {
              if (!std::isfinite(stage_y_(r, sl)))
                throw device_lost{slot_dev_[static_cast<std::size_t>(sl)], "nonfinite"};
            }
          }
          for (index_t r = 0; r < vrows; ++r) {
            double acc = 0.0;
            for (int sl = 0; sl < Ddata_; ++sl) acc += stage_y_(r, sl);
            y_col[r] = acc;
          }
        });

    // Y top rows, Y(0:i+1,:) = A(0:i+1, i+1:n)·V·T: one partial GEMM per
    // data member, reduced by a collector task on the collector device.
    Matrix<double> v = lapack::materialize_v(MatrixView<const double>(a_), i, ib);
    build_ytop_generators(v, i, ib);
    const int cdev = collector_device();
    hybrid::Stream& sc = pool_.stream(cdev);
    for (int sl = 0; sl < Ddata_; ++sl) {
      const index_t l1 = first_local(sl, i + 1);
      const index_t wcols = lay_.w_max - l1;
      if (wcols <= 0) continue;
      const int dev = slot_dev_[static_cast<std::size_t>(sl)];
      hybrid::Stream& sd = pool_.stream(dev);
      hybrid::copy_h2d_async(sd, g_host_[static_cast<std::size_t>(dev)].block(0, 0, wcols, ib),
                             d_g_[static_cast<std::size_t>(dev)].block(0, 0, wcols, ib));
      hybrid::gemm_async(sd, Trans::No, Trans::No, 1.0,
                         d_e_[static_cast<std::size_t>(dev)].block(0, l1, i + 1, wcols),
                         d_g_[static_cast<std::size_t>(dev)].block(0, 0, wcols, ib), 0.0,
                         d_yce_[static_cast<std::size_t>(dev)].block(0, 0, i + 1, ib));
      hybrid::copy_d2h_async(sd, d_yce_[static_cast<std::size_t>(dev)].block(0, 0, i + 1, ib),
                             stage_g_.block(0, static_cast<index_t>(sl) * nb_, i + 1, ib));
      // The cross-device edge: the collector's reduce task must not start
      // before this member's partial landed in stage_g_.
      const hybrid::Event shard_done = sd.record();
      sc.wait_event(shard_done);
    }
    sc.enqueue("pool.ytop_reduce",
               FTH_TASK_EFFECTS(FTH_READS(stage_g_.block(0, 0, i + 1, stage_g_.cols()))
                                    FTH_WRITES(y_host_.block(0, 0, i + 1, ib))),
               [sg = stage_g_.cview(), yt = y_host_.view(), i, ib, dd = Ddata_, w = nb_] {
                 for (index_t q = 0; q < ib; ++q) {
                   for (index_t r = 0; r <= i; ++r) {
                     double acc = 0.0;
                     for (int sl = 0; sl < dd; ++sl)
                       acc += sg(r, static_cast<index_t>(sl) * w + q);
                     yt(r, q) = acc;
                   }
                 }
               });
    const hybrid::Event reduced = sc.record();
    for (int sl = 0; sl < Ddata_; ++sl) {
      const int dev = slot_dev_[static_cast<std::size_t>(sl)];
      hybrid::Stream& sd = pool_.stream(dev);
      const hybrid::Event yb = sd.record();
      const double w0 = health_->wait_begin();
      const bool ok = yb.wait_for(health_->allowed(dev));
      if (!health_->wait_end(dev, w0, ok) || pool_.lost(dev)) throw device_lost{dev};
    }
    const double wc0 = health_->wait_begin();
    const bool cok = reduced.wait_for(health_->allowed(cdev));
    if (!health_->wait_end(cdev, wc0, cok) || pool_.lost(cdev)) throw device_lost{cdev};
    blas::trmm(Side::Right, Uplo::Upper, Trans::No, Diag::NonUnit, 1.0,
               MatrixView<const double>(t_host_.block(0, 0, ib, ib)),
               y_host_.block(0, 0, i + 1, ib));

    // Panel-phase integrity gate: a poison strike during the panel fed
    // garbage into y_col/Y-top — catch it before any update commits, so
    // the checkpoint retry still applies.
    verify_members(i);
  }

  void update(index_t i, index_t ib) {
    obs::TraceSpan span("ft", "pool.update", "col", static_cast<double>(i));
    const index_t vrows = n_ - i - 1;
    const index_t dstart = lay_.domain_start(i + ib);
    const index_t wdom = lay_.w_max - dstart;

    Matrix<double> v = lapack::materialize_v(MatrixView<const double>(a_), i, ib);
    build_ve(v, vrows, ib);
    build_yce(ib);
    build_update_generators(v, i, ib, dstart);

    // Broadcast V/T/Yce and run both block updates on every member over
    // the same local domain, in lockstep. No member reads another member's
    // memory here — that containment is what makes boundary recovery
    // retry-free.
    for (int m = 0; m < active_count(); ++m) {
      const int dev = active_device(m);
      hybrid::Stream& sd = pool_.stream(dev);
      hybrid::copy_h2d_async(sd, yce_host_.block(0, 0, n_ + 1, ib),
                             d_yce_[static_cast<std::size_t>(dev)].block(0, 0, n_ + 1, ib));
      hybrid::copy_h2d_async(sd, ve_host_.block(0, 0, vrows + 1, ib),
                             d_ve_[static_cast<std::size_t>(dev)].block(0, 0, vrows + 1, ib));
      hybrid::copy_h2d_async(sd, t_host_.block(0, 0, ib, ib),
                             d_t_[static_cast<std::size_t>(dev)].block(0, 0, ib, ib));
      hybrid::copy_h2d_async(sd, g_host_[static_cast<std::size_t>(dev)].block(0, 0, wdom, ib),
                             d_g_[static_cast<std::size_t>(dev)].block(0, 0, wdom, ib));
      // Right update: E −= Yce·Wgᵀ. Generator rows for finished/panel/
      // padding columns are zero, so only trailing columns change; the
      // code row rides along via Yce's column-sum row.
      hybrid::gemm_async(sd, Trans::No, Trans::Yes, -1.0,
                         d_yce_[static_cast<std::size_t>(dev)].block(0, 0, n_ + 1, ib),
                         d_g_[static_cast<std::size_t>(dev)].block(0, 0, wdom, ib), 1.0,
                         d_e_[static_cast<std::size_t>(dev)].block(0, dstart, n_ + 1, wdom));
      // Left update: E := (I − V·Tᵀ·Vᵀ)·E over the whole domain (finished
      // columns receive the same garbage-lockstep update on every member,
      // which keeps parity and code row exact; host `a` stays
      // authoritative for them).
      hybrid::gemm_async(sd, Trans::Yes, Trans::No, 1.0,
                         d_ve_[static_cast<std::size_t>(dev)].block(0, 0, vrows, ib),
                         d_e_[static_cast<std::size_t>(dev)].block(i + 1, dstart, vrows, wdom),
                         0.0, d_w_[static_cast<std::size_t>(dev)].block(0, 0, ib, wdom));
      hybrid::trmm_async(sd, Side::Left, Uplo::Upper, Trans::Yes, Diag::NonUnit, 1.0,
                         d_t_[static_cast<std::size_t>(dev)].block(0, 0, ib, ib),
                         d_w_[static_cast<std::size_t>(dev)].block(0, 0, ib, wdom));
      hybrid::gemm_async(sd, Trans::No, Trans::No, -1.0,
                         d_ve_[static_cast<std::size_t>(dev)].block(0, 0, vrows + 1, ib),
                         d_w_[static_cast<std::size_t>(dev)].block(0, 0, ib, wdom), 1.0,
                         d_e_[static_cast<std::size_t>(dev)].block(i + 1, dstart, vrows + 1, wdom));
    }

    // Host, overlapped with the device updates: finish the upper rows of
    // the panel columns, A(0:i+1, i+1:i+ib) −= Y·V1ᵀ (hybrid_gehrd's fix;
    // Yce already captured the pristine Y, so mutating y_host_ is fine).
    blas::trmm(Side::Right, Uplo::Lower, Trans::Yes, Diag::Unit, 1.0,
               MatrixView<const double>(a_.block(i + 1, i, ib - 1, ib - 1)),
               y_host_.block(0, 0, i + 1, ib - 1));
    for (index_t j = 0; j + 1 < ib; ++j) {
      blas::axpy(-1.0, VectorView<const double>(y_host_.block(0, j, i + 1, 1).col(0)),
                 a_.block(0, i + 1 + j, i + 1, 1).col(0));
    }

    verify_members(i);
  }

  /// Boundary health check: every active member recomputes its code-row
  /// gap on-device; the host collects with timeouts. Detects all three
  /// loss kinds: timeout (stall), killed stream or NaN sentinel (hard
  /// death — the marker completes but the verify task was discarded), and
  /// gap over threshold (poison).
  void verify_members(index_t boundary) {
    (void)boundary;
    for (int m = 0; m < active_count(); ++m) {
      const int dev = active_device(m);
      gaps_[static_cast<std::size_t>(dev)] = std::numeric_limits<double>::quiet_NaN();
      double* gp = &gaps_[static_cast<std::size_t>(dev)];
      hybrid::Stream& sd = pool_.stream(dev);
      // Occupancy sample for the health plane: was the member still
      // working when the boundary check arrived?
      health_->sample_occupancy(dev, !sd.idle());
      sd.enqueue("pool.verify",
                 FTH_TASK_EFFECTS(FTH_READS(d_e_[static_cast<std::size_t>(dev)].view())),
                 [de = DMatrixView<const double>(d_e_[static_cast<std::size_t>(dev)].view()),
                  gp] { *gp = code_row_gap(de.in_task()); });
    }
    for (int m = 0; m < active_count(); ++m) {
      const int dev = active_device(m);
      hybrid::Stream& sd = pool_.stream(dev);
      const hybrid::Event ve = sd.record();
      const double w0 = health_->wait_begin();
      const bool ok = ve.wait_for(health_->allowed(dev));
      if (!health_->wait_end(dev, w0, ok) || pool_.lost(dev)) throw device_lost{dev};
    }
    for (int m = 0; m < active_count(); ++m) {
      const int dev = active_device(m);
      const double g = gaps_[static_cast<std::size_t>(dev)];
      if (!(g <= threshold_)) throw device_lost{dev, "poison"};
    }
  }

  void final_gather(index_t i) {
    obs::TraceSpan span("ft", "pool.gather", "col", static_cast<double>(i));
    for (int sl = 0; sl < Ddata_; ++sl) {
      const int dev = slot_dev_[static_cast<std::size_t>(sl)];
      hybrid::Stream& sd = pool_.stream(dev);
      hybrid::copy_d2h_async(sd, d_e_[static_cast<std::size_t>(dev)].view(),
                             host_sh_[static_cast<std::size_t>(sl)].view());
    }
    for (int sl = 0; sl < Ddata_; ++sl) {
      const int dev = slot_dev_[static_cast<std::size_t>(sl)];
      hybrid::Stream& sd = pool_.stream(dev);
      const hybrid::Event gf = sd.record();
      const double w0 = health_->wait_begin();
      const bool ok = gf.wait_for(health_->allowed(dev));
      if (!health_->wait_end(dev, w0, ok) || pool_.lost(dev)) throw device_lost{dev};
    }
    for (int sl = 0; sl < Ddata_; ++sl) {
      const double g = code_row_gap(host_sh_[static_cast<std::size_t>(sl)].cview());
      if (!(g <= threshold_))
        throw device_lost{slot_dev_[static_cast<std::size_t>(sl)], "poison"};
    }
    gather_shards(lay_, host_sh_, a_, i);
  }

  void host_finish(index_t i) {
    obs::TraceSpan span("ft", "pool.finish", "col", static_cast<double>(i));
    if (i + 1 >= n_) return;
    std::vector<double> wbuf(static_cast<std::size_t>(n_));
    VectorView<double> w(wbuf.data(), n_);
    for (index_t c = i; c + 1 < n_; ++c) {
      double alpha = a_(c + 1, c);
      auto x = (c + 2 < n_) ? a_.col(c).sub(c + 2, n_ - c - 2) : VectorView<double>();
      lapack::larfg(alpha, x, tau_[c]);
      const double ei = alpha;
      a_(c + 1, c) = 1.0;
      VectorView<const double> vc(a_.block(c + 1, c, n_ - c - 1, 1).col(0).data(), n_ - c - 1, 1);
      lapack::larf(Side::Right, vc, tau_[c], a_.block(0, c + 1, n_, n_ - c - 1), w);
      lapack::larf(Side::Left, vc, tau_[c], a_.block(c + 1, c + 1, n_ - c - 1, n_ - c - 1), w);
      a_(c + 1, c) = ei;
    }
  }

  // --- loss handling ---------------------------------------------------

  /// Quarantine the lost member, account the loss against the redundancy
  /// group, and either reconstruct + remap (first loss of a data shard),
  /// degrade (parity loss), or escalate (beyond the correction radius).
  void handle_loss(const device_lost& dl, index_t boundary) {
    const int dev = dl.device;
    ++rep_.losses;
    if (rep_.lost_device < 0) rep_.lost_device = dev;
    obs::counter_metric("fault.device_loss.detected").add();
    obs::counter_metric("fault.device_loss.detected.dev" + std::to_string(dev)).add();
    obs::instant("fault", "device_loss_detected");
    if (obs::journal_enabled()) {
      const double g = gaps_[static_cast<std::size_t>(dev)];
      obs::journal_log(obs::JournalSeverity::Error, "pool", "loss_detected", dev,
                       std::isfinite(g) ? g : 0.0, boundary, dl.cause);
    }

    health_->mark_lost(dev);
    pool_.mark_lost(dev);
    const int straggler = drain_all();
    if (straggler >= 0 && straggler != dev) {
      // A second member stalled while we quarantined the first; count it
      // so the radius check below escalates.
      const int xslot = straggler == parity_dev_ ? group_.parity_slot()
                                                 : slot_of_device(straggler);
      if (xslot >= 0) (void)group_.declare_lost(xslot);
    }

    const bool was_parity = dev == parity_dev_;
    const int slot = was_parity ? group_.parity_slot() : slot_of_device(dev);
    FTH_CHECK(slot >= 0, "pool_gehrd: loss on a device that holds no shard");
    const bool within_radius = group_.declare_lost(slot) && (was_parity || parity_dev_ >= 0);
    if (!within_radius) escalate(dev, boundary);

    rep_.degraded = true;
    if (was_parity) {
      // Parity died: nothing to reconstruct, but the group can no longer
      // correct — future losses escalate.
      parity_dev_ = -1;
      obs::counter_metric("fault.device_loss.parity_degraded").add();
      obs::journal_log(obs::JournalSeverity::Warn, "pool", "parity_degraded", dev, 0.0,
                       boundary);
      finish_repair(dev, boundary, "degraded");
      return;
    }

    // Reconstruct the lost data shard as parity − Σ survivors and remap it
    // onto the parity device (which stops being parity).
    fetch_group(slot, boundary);
    reconstruct_shard(lay_, host_sh_, parity_host_.cview(), slot,
                      host_sh_[static_cast<std::size_t>(slot)]);
    ++rep_.reconstructions;
    obs::counter_metric("fault.device_loss.reconstructed").add();
    obs::journal_log(obs::JournalSeverity::Info, "pool", "reconstructed", dev,
                     static_cast<double>(slot), boundary);
    const int target = parity_dev_;
    {
      hybrid::Stream& sd = pool_.stream(target);
      hybrid::copy_h2d_async(sd, host_sh_[static_cast<std::size_t>(slot)].cview(),
                             d_e_[static_cast<std::size_t>(target)].view());
      const hybrid::Event rm = sd.record();
      const double w0 = health_->wait_begin();
      const bool ok = rm.wait_for(health_->allowed(target));
      if (!health_->wait_end(target, w0, ok) || pool_.lost(target))
        escalate(target, boundary);
    }
    slot_dev_[static_cast<std::size_t>(slot)] = target;
    parity_dev_ = -1;
    ++rep_.remaps;
    obs::counter_metric("fault.device_loss.remapped").add();
    obs::journal_log(obs::JournalSeverity::Info, "pool", "remapped", dev,
                     static_cast<double>(target), boundary);
    finish_repair(dev, boundary, "recovered");
  }

  /// Close out an absorbed loss: stamp the repair-done journal record (the
  /// recovery-cost endpoint fth_incident measures to) and emit the
  /// device-loss incident capsule.
  void finish_repair(int dev, index_t boundary, const char* status) {
    obs::journal_log(obs::JournalSeverity::Info, "pool", "repair_done", dev,
                     static_cast<double>(rep_.losses), boundary);
    emit_incident("device_loss", dev, boundary, status, "device_lost",
                  "loss absorbed by coded reconstruction");
  }

  /// Assemble and write one incident capsule (no-op unless capsule
  /// emission is armed). The journal slice is keyed by this run's id; the
  /// flight/DAG fragments are whatever recorders happen to be armed.
  void emit_incident(const char* trigger, int dev, index_t boundary, const char* status,
                     const char* reason, std::string detail) {
    if (!obs::incident_enabled()) return;
    obs::IncidentReport inc;
    inc.trigger = trigger;
    inc.who = "pool_gehrd";
    inc.run_id = rep_.run_id;
    inc.device = dev;
    inc.boundary = boundary;
    inc.outcome.status = status;
    inc.outcome.reason = reason;
    inc.outcome.detail = std::move(detail);
    inc.outcome.attempts = rep_.losses;
    const auto now = obs::Registry::global().counter_values();
    for (const auto& [name, delta] : obs::Registry::counter_delta(now, counters_base_))
      inc.metrics_delta.emplace_back(name, delta);
    inc.journal = obs::journal_snapshot(rep_.run_id);
    inc.health = health_->snapshot();
    if (plane_ != nullptr) inc.strikes_json = fault::strikes_json(*plane_);
    inc.flight_json = obs::flight_tail_json(512);
    inc.dag_json = obs::dag::tail_json(128);
    const std::string path = obs::write_incident(inc);
    if (!path.empty()) rep_.incidents.push_back(path);
  }

  /// Synchronize every stream, with a timeout per member so a second
  /// stalled device cannot hang the repair: stragglers are killed (which
  /// releases them — Stream::kill doom semantics) and reported back.
  int drain_all() {
    int straggler = -1;
    for (int d = 0; d < D_; ++d) {
      hybrid::Stream& sd = pool_.stream(d);
      const hybrid::Event dr = sd.record();
      const double w0 = health_->wait_begin();
      const bool ok = dr.wait_for(health_->allowed(d));
      if (!health_->wait_end(d, w0, ok)) {
        health_->mark_lost(d);
        pool_.mark_lost(d);
        if (straggler < 0) straggler = d;
      }
      sd.synchronize();
    }
    return straggler;
  }

  /// Fetch the survivor shards and the parity to the host for a
  /// reconstruction. A timeout here is a second loss — escalate.
  void fetch_group(int lost_slot, index_t boundary) {
    for (int sl = 0; sl < Ddata_; ++sl) {
      if (sl == lost_slot) continue;
      const int dev = slot_dev_[static_cast<std::size_t>(sl)];
      hybrid::Stream& sd = pool_.stream(dev);
      hybrid::copy_d2h_async(sd, d_e_[static_cast<std::size_t>(dev)].view(),
                             host_sh_[static_cast<std::size_t>(sl)].view());
    }
    {
      hybrid::Stream& sd = pool_.stream(parity_dev_);
      hybrid::copy_d2h_async(sd, d_e_[static_cast<std::size_t>(parity_dev_)].view(),
                             parity_host_.view());
    }
    for (int sl = 0; sl < Ddata_; ++sl) {
      if (sl == lost_slot) continue;
      const int dev = slot_dev_[static_cast<std::size_t>(sl)];
      hybrid::Stream& sd = pool_.stream(dev);
      const hybrid::Event fg = sd.record();
      const double w0 = health_->wait_begin();
      const bool ok = fg.wait_for(health_->allowed(dev));
      if (!health_->wait_end(dev, w0, ok) || pool_.lost(dev)) escalate(dev, boundary);
    }
    {
      hybrid::Stream& sd = pool_.stream(parity_dev_);
      const hybrid::Event fp = sd.record();
      const double w0 = health_->wait_begin();
      const bool ok = fp.wait_for(health_->allowed(parity_dev_));
      if (!health_->wait_end(parity_dev_, w0, ok) || pool_.lost(parity_dev_))
        escalate(parity_dev_, boundary);
    }
  }

  [[noreturn]] void escalate(int dev, index_t boundary) {
    obs::counter_metric("fault.device_loss.escalated").add();
    const double g = gaps_[static_cast<std::size_t>(dev)];
    obs::journal_log(obs::JournalSeverity::Error, "pool", "escalated", dev,
                     static_cast<double>(group_.losses()), boundary);
    emit_incident("escalation", dev, boundary, "escalated", "device_lost",
                  "losses exceeded the redundancy group's correction radius");
    abort_recovery(rep_.outcome, "pool_gehrd", AbortReason::DeviceLost, boundary, rep_.losses,
                   std::isfinite(g) ? g : 0.0, threshold_,
                   "device " + std::to_string(dev) + " lost with " +
                       std::to_string(group_.losses()) +
                       " loss(es) already charged to the redundancy group");
  }

  // --- host-side assembly helpers --------------------------------------

  /// First local column of `slot` whose global column is ≥ c (clamped to
  /// w_max when the slot owns nothing that far right).
  [[nodiscard]] index_t first_local(int slot, index_t c) const {
    const index_t s = static_cast<index_t>(slot);
    const index_t l = c > s ? (c - s + Ddata_ - 1) / Ddata_ : 0;
    return std::min<index_t>(l, lay_.w_max);
  }

  /// Per-slot gathered copies of the reflector vector for the panel GEMV:
  /// vg_s[l − l0] = vj[c − cj − 1] for the slot's columns c ≥ cj+1.
  void build_gathered_vectors(index_t cj, VectorView<const double> vj) {
    for (int sl = 0; sl < Ddata_; ++sl) {
      const index_t l0 = first_local(sl, cj + 1);
      MatrixView<double> vg = vg_host_[static_cast<std::size_t>(sl)].view();
      for (index_t l = l0; l < lay_.w_max; ++l) {
        const index_t c = lay_.global_of(sl, l);
        vg(l - l0, 0) = c < n_ ? vj[c - cj - 1] : 0.0;
      }
      if (l0 >= lay_.w_max) {
        // Slot owns nothing in range: its partial column must read as 0.
        for (index_t r = 0; r < n_; ++r) stage_y_(r, sl) = 0.0;
      }
    }
  }

  /// Per-slot Y-top generators: row (l − l1) = V(c − i − 1, :) for the
  /// slot's columns c ≥ i+1 (zero for padding).
  void build_ytop_generators(const Matrix<double>& v, index_t i, index_t ib) {
    for (int sl = 0; sl < Ddata_; ++sl) {
      const index_t l1 = first_local(sl, i + 1);
      const int dev = slot_dev_[static_cast<std::size_t>(sl)];
      MatrixView<double> g = g_host_[static_cast<std::size_t>(dev)].view();
      for (index_t l = l1; l < lay_.w_max; ++l) {
        const index_t c = lay_.global_of(sl, l);
        for (index_t q = 0; q < ib; ++q) g(l - l1, q) = c < n_ ? v(c - i - 1, q) : 0.0;
      }
      if (l1 >= lay_.w_max) {
        for (index_t q = 0; q < ib; ++q)
          for (index_t r = 0; r <= i; ++r)
            stage_g_(r, static_cast<index_t>(sl) * nb_ + q) = 0.0;
      }
    }
  }

  /// Ve = [V; colsum(V)], the left-update operator extended by the code
  /// row's share (same shape as ft_gehrd's Vce).
  void build_ve(const Matrix<double>& v, index_t vrows, index_t ib) {
    MatrixView<double> ve = ve_host_.view();
    for (index_t q = 0; q < ib; ++q) {
      double cs = 0.0;
      for (index_t r = 0; r < vrows; ++r) {
        ve(r, q) = v(r, q);
        cs += v(r, q);
      }
      ve(vrows, q) = cs;
    }
  }

  /// Yce = [Y; colsum(Y)], the right-update operand extended by the code
  /// row's share. Reads the pristine (post-trmm, pre-fix) y_host_.
  void build_yce(index_t ib) {
    MatrixView<double> yce = yce_host_.view();
    for (index_t q = 0; q < ib; ++q) {
      double cs = 0.0;
      for (index_t r = 0; r < n_; ++r) {
        yce(r, q) = y_host_(r, q);
        cs += y_host_(r, q);
      }
      yce(n_, q) = cs;
    }
  }

  /// Right-update generators over the lockstep domain [dstart, w_max):
  /// row (l − dstart) = V(c − i − 1, :) when c is a trailing column
  /// (i+ib ≤ c < n), zero otherwise; the parity member uses the sum of the
  /// data generators, which is exactly what keeps parity = Σ shards.
  void build_update_generators(const Matrix<double>& v, index_t i, index_t ib,
                               index_t dstart) {
    for (int sl = 0; sl < Ddata_; ++sl) {
      const int dev = slot_dev_[static_cast<std::size_t>(sl)];
      MatrixView<double> g = g_host_[static_cast<std::size_t>(dev)].view();
      for (index_t l = dstart; l < lay_.w_max; ++l) {
        const index_t c = lay_.global_of(sl, l);
        const bool live = c >= i + ib && c < n_;
        for (index_t q = 0; q < ib; ++q) g(l - dstart, q) = live ? v(c - i - 1, q) : 0.0;
      }
    }
    if (parity_dev_ >= 0) {
      MatrixView<double> gp = g_host_[static_cast<std::size_t>(parity_dev_)].view();
      for (index_t l = dstart; l < lay_.w_max; ++l) {
        for (index_t q = 0; q < ib; ++q) {
          double acc = 0.0;
          for (int sl = 0; sl < Ddata_; ++sl) {
            const int dev = slot_dev_[static_cast<std::size_t>(sl)];
            acc += g_host_[static_cast<std::size_t>(dev)](l - dstart, q);
          }
          gp(l - dstart, q) = acc;
        }
      }
    }
  }

  // --- membership ------------------------------------------------------

  [[nodiscard]] int collector_device() const {
    return parity_dev_ >= 0 ? parity_dev_ : slot_dev_[0];
  }

  [[nodiscard]] int active_count() const { return Ddata_ + (parity_dev_ >= 0 ? 1 : 0); }

  [[nodiscard]] int active_device(int member) const {
    return member < Ddata_ ? slot_dev_[static_cast<std::size_t>(member)] : parity_dev_;
  }

  [[nodiscard]] int slot_of_device(int dev) const {
    for (int sl = 0; sl < Ddata_; ++sl)
      if (slot_dev_[static_cast<std::size_t>(sl)] == dev) return sl;
    return -1;
  }

  void finish_outcome() {
    rep_.outcome.status =
        rep_.losses > 0 ? RecoveryStatus::Recovered : RecoveryStatus::Clean;
    rep_.outcome.reason = AbortReason::None;
    rep_.outcome.attempts = rep_.losses;
    rep_.outcome.threshold = threshold_;
    rep_.health = health_->snapshot();
    obs::journal_log(obs::JournalSeverity::Info, "pool", "finished", -1,
                     static_cast<double>(rep_.losses));
  }

  // --- state -----------------------------------------------------------

  hybrid::DevicePool& pool_;
  MatrixView<double> a_;
  VectorView<double> tau_;
  PoolGehrdReport& rep_;
  fault::FaultPlane* plane_;
  index_t n_;
  index_t nb_;
  index_t nx_;
  int D_;
  int Ddata_;
  ShardLayout lay_;
  RedundancyGroup group_;
  std::unique_ptr<obs::HealthMonitor> health_owned_;
  obs::HealthMonitor* health_ = nullptr;  ///< opt.health or health_owned_
  obs::Registry::CounterValues counters_base_;  ///< capsule snapshot-delta base
  double threshold_ = 0.0;
  int parity_dev_ = -1;
  std::vector<int> slot_dev_;  ///< data slot → pool ordinal (remapped on loss)
  std::vector<double> gaps_;   ///< per-ordinal verify result (NaN sentinel)

  std::vector<hybrid::DeviceMatrix<double>> d_e_, d_vg_, d_py_, d_ve_, d_t_, d_yce_, d_g_,
      d_w_;
  std::vector<Matrix<double>> host_sh_;  ///< scatter/gather/reconstruct staging
  Matrix<double> parity_host_;
  Matrix<double> t_host_, y_host_, yce_host_, ve_host_;
  Matrix<double> stage_y_;             ///< (n × Ddata) panel GEMV partials
  Matrix<double> stage_g_;             ///< (n × Ddata·nb) Y-top partials
  Matrix<double> ckpt_;                ///< host panel checkpoint
  std::vector<Matrix<double>> g_host_;   ///< per-ordinal generator staging
  std::vector<Matrix<double>> vg_host_;  ///< per-slot gathered vector staging
};

}  // namespace

void pool_gehrd(hybrid::DevicePool& pool, MatrixView<double> a, VectorView<double> tau,
                const PoolGehrdOptions& opt, PoolGehrdReport* rep) {
  PoolGehrdReport local;
  PoolGehrdReport& r = rep != nullptr ? *rep : local;
  r = {};
  PoolDriver drv(pool, a, tau, opt, r);
  drv.run();
}

}  // namespace fth::ft

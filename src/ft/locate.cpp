#include "ft/locate.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace fth::ft {

namespace {

/// Count (up to 2) perfect matchings between row and column deltas where
/// matched pairs agree within tol; records the first matching found.
///
/// k ≤ 8 is enforced by the caller, so the k! enumeration is cheap; the
/// early exit at 2 keeps the worst case tiny anyway.
int count_matchings(const std::vector<double>& rd, const std::vector<double>& cd, double tol,
                    std::vector<index_t>& first_match) {
  const std::size_t k = rd.size();
  std::vector<index_t> perm(k);
  std::iota(perm.begin(), perm.end(), 0);
  int found = 0;
  do {
    bool ok = true;
    for (std::size_t r = 0; r < k && ok; ++r) {
      const double diff = std::abs(rd[r] - cd[static_cast<std::size_t>(perm[r])]);
      ok = diff <= tol;
    }
    if (ok) {
      if (found == 0) first_match = perm;
      if (++found >= 2) return found;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return found;
}

}  // namespace

LocateResult locate(const Discrepancy& d, const FreshSums& fresh, double tol) {
  LocateResult out;
  if (d.clean()) return out;

  // Only rows mismatch → the checksum column itself was corrupted.
  if (d.cols.empty()) {
    for (std::size_t t = 0; t < d.rows.size(); ++t) {
      out.chk_col_errors.push_back(
          {d.rows[t], fresh.row[static_cast<std::size_t>(d.rows[t])]});
    }
    return out;
  }
  // Only columns mismatch → the checksum row was corrupted.
  if (d.rows.empty()) {
    for (std::size_t t = 0; t < d.cols.size(); ++t) {
      out.chk_row_errors.push_back(
          {d.cols[t], fresh.col[static_cast<std::size_t>(d.cols[t])]});
    }
    return out;
  }

  if (d.rows.size() != d.cols.size()) {
    std::ostringstream os;
    os << "unrecoverable error pattern: " << d.rows.size() << " mismatched rows vs "
       << d.cols.size() << " mismatched columns (errors sharing a row or column "
          "exceed the one-error-per-line code distance)";
    throw recovery_error(os.str());
  }
  if (d.rows.size() > 8) {
    throw recovery_error("unrecoverable error pattern: more than 8 simultaneous errors");
  }

  // The matching tolerance must dominate the per-line tolerance that
  // produced the discrepancy lists; matched deltas each carry up to `tol`
  // of noise.
  const double match_tol =
      2.0 * tol +
      1e-9 * std::max({std::abs(d.row_delta.front()), std::abs(d.col_delta.front()), 1.0});

  std::vector<index_t> match;
  const int matchings = count_matchings(d.row_delta, d.col_delta, match_tol, match);
  if (matchings == 0) {
    throw recovery_error(
        "unrecoverable error pattern: row and column checksum deltas cannot be paired "
        "(multiple errors in one row or column)");
  }
  if (matchings > 1) {
    throw recovery_error(
        "ambiguous error pattern: the error positions form a rectangle with matching "
        "magnitudes (paper Section I: such patterns are not correctable)");
  }

  for (std::size_t t = 0; t < d.rows.size(); ++t) {
    out.data_errors.push_back({d.rows[t], d.cols[static_cast<std::size_t>(match[t])],
                               d.row_delta[t]});
  }
  return out;
}

}  // namespace fth::ft

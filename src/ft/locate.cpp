#include "ft/locate.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace fth::ft {

namespace {

/// Count (up to 2) perfect matchings between row and column deltas where
/// matched pairs agree within tol; records the first matching found.
///
/// k ≤ 8 is enforced by the caller, so the k! enumeration is cheap; the
/// early exit at 2 keeps the worst case tiny anyway.
int count_matchings(const std::vector<double>& rd, const std::vector<double>& cd, double tol,
                    std::vector<index_t>& first_match) {
  const std::size_t k = rd.size();
  std::vector<index_t> perm(k);
  std::iota(perm.begin(), perm.end(), 0);
  int found = 0;
  do {
    bool ok = true;
    for (std::size_t r = 0; r < k && ok; ++r) {
      const double diff = std::abs(rd[r] - cd[static_cast<std::size_t>(perm[r])]);
      ok = diff <= tol;
    }
    if (ok) {
      if (found == 0) first_match = perm;
      if (++found >= 2) return found;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return found;
}

}  // namespace

namespace {

/// Indices (into d.rows / d.cols) whose delta is non-finite.
std::vector<std::size_t> nonfinite_indices(const std::vector<double>& deltas) {
  std::vector<std::size_t> out;
  for (std::size_t t = 0; t < deltas.size(); ++t)
    if (!std::isfinite(deltas[t])) out.push_back(t);
  return out;
}

}  // namespace

LocateResult locate(const Discrepancy& d, const FreshSums& fresh, double tol) {
  LocateResult out;
  if (d.clean()) return out;

  // Non-finite deltas first: NaN/Inf poisons magnitude matching, but it is
  // also self-locating — every line the damage touches flags non-finite.
  // Damage confined to one row or one column is reconstructible element by
  // element from the orthogonal code; anything wider has lost both codes.
  const std::vector<std::size_t> nf_rows = nonfinite_indices(d.row_delta);
  const std::vector<std::size_t> nf_cols = nonfinite_indices(d.col_delta);
  if (!nf_rows.empty() || !nf_cols.empty()) {
    if (!nf_rows.empty() && nf_cols.empty()) {
      // Data rows are clean (no column flagged non-finite) → the checksum
      // column storage itself went non-finite; the fresh row sums are the
      // correct replacements.
      for (const std::size_t t : nf_rows) {
        const double f = fresh.row[static_cast<std::size_t>(d.rows[t])];
        if (!std::isfinite(f))
          throw recovery_error(
              "non-finite checksum-column entry with non-finite fresh row sum");
        out.chk_col_errors.push_back({d.rows[t], f});
      }
      return out;
    }
    if (!nf_cols.empty() && nf_rows.empty()) {
      for (const std::size_t t : nf_cols) {
        const double f = fresh.col[static_cast<std::size_t>(d.cols[t])];
        if (!std::isfinite(f))
          throw recovery_error(
              "non-finite checksum-row entry with non-finite fresh column sum");
        out.chk_row_errors.push_back({d.cols[t], f});
      }
      return out;
    }
    if (nf_cols.size() == 1) {
      // All non-finite damage confined to one column (the typical shape of
      // a NaN/Inf strike propagated by a block update): one damaged element
      // per flagged row, each recoverable from its row code.
      const index_t c = d.cols[nf_cols.front()];
      for (const std::size_t t : nf_rows)
        out.reconstructions.push_back({d.rows[t], c, /*use_row_code=*/true});
      return out;
    }
    if (nf_rows.size() == 1) {
      const index_t r = d.rows[nf_rows.front()];
      for (const std::size_t t : nf_cols)
        out.reconstructions.push_back({r, d.cols[t], /*use_row_code=*/false});
      return out;
    }
    std::ostringstream os;
    os << "unrecoverable non-finite contamination: " << nf_rows.size()
       << " rows x " << nf_cols.size()
       << " columns poisoned (both codes lost, reconstruction impossible)";
    throw recovery_error(os.str());
  }

  // Only rows mismatch → the checksum column itself was corrupted.
  if (d.cols.empty()) {
    for (std::size_t t = 0; t < d.rows.size(); ++t) {
      out.chk_col_errors.push_back(
          {d.rows[t], fresh.row[static_cast<std::size_t>(d.rows[t])]});
    }
    return out;
  }
  // Only columns mismatch → the checksum row was corrupted.
  if (d.rows.empty()) {
    for (std::size_t t = 0; t < d.cols.size(); ++t) {
      out.chk_row_errors.push_back(
          {d.cols[t], fresh.col[static_cast<std::size_t>(d.cols[t])]});
    }
    return out;
  }

  if (d.rows.size() != d.cols.size()) {
    // Line-confined pattern: k errors in a single column flag k rows (one
    // delta each) and one column (the summed delta), or transposed. Each
    // element's own line delta is its exact correction, so this stays
    // within the code distance as long as the sums agree.
    if (d.cols.size() == 1 || d.rows.size() == 1) {
      const bool by_rows = d.cols.size() == 1;
      const auto& line_deltas = by_rows ? d.row_delta : d.col_delta;
      const double total = by_rows ? d.col_delta.front() : d.row_delta.front();
      double sum = 0.0;
      double scale = 1.0;
      for (const double v : line_deltas) {
        sum += v;
        scale = std::max(scale, std::abs(v));
      }
      const double line_tol =
          static_cast<double>(line_deltas.size() + 1) * tol + 1e-9 * scale;
      if (std::abs(sum - total) <= line_tol) {
        for (std::size_t t = 0; t < line_deltas.size(); ++t) {
          if (by_rows)
            out.data_errors.push_back({d.rows[t], d.cols.front(), d.row_delta[t]});
          else
            out.data_errors.push_back({d.rows.front(), d.cols[t], d.col_delta[t]});
        }
        return out;
      }
    }
    std::ostringstream os;
    os << "unrecoverable error pattern: " << d.rows.size() << " mismatched rows vs "
       << d.cols.size() << " mismatched columns (errors sharing a row or column "
          "exceed the one-error-per-line code distance)";
    throw recovery_error(os.str());
  }
  if (d.rows.size() > 8) {
    throw recovery_error("unrecoverable error pattern: more than 8 simultaneous errors");
  }

  // The matching tolerance must dominate the per-line tolerance that
  // produced the discrepancy lists; matched deltas each carry up to `tol`
  // of noise.
  const double match_tol =
      2.0 * tol +
      1e-9 * std::max({std::abs(d.row_delta.front()), std::abs(d.col_delta.front()), 1.0});

  std::vector<index_t> match;
  const int matchings = count_matchings(d.row_delta, d.col_delta, match_tol, match);
  if (matchings == 0) {
    throw recovery_error(
        "unrecoverable error pattern: row and column checksum deltas cannot be paired "
        "(multiple errors in one row or column)");
  }
  if (matchings > 1) {
    throw recovery_error(
        "ambiguous error pattern: the error positions form a rectangle with matching "
        "magnitudes (paper Section I: such patterns are not correctable)");
  }

  for (std::size_t t = 0; t < d.rows.size(); ++t) {
    out.data_errors.push_back({d.rows[t], d.cols[static_cast<std::size_t>(match[t])],
                               d.row_delta[t]});
  }
  return out;
}

}  // namespace fth::ft

// ABFT checksum encoding and verification (Sections IV-B, IV-D, IV-F).
//
// The protected object is the *logical* matrix of the factorization: the
// already-finished columns contribute only their upper-Hessenberg entries
// (the Householder vectors stored below them belong to Q and are protected
// separately), while the trailing columns contribute every row. The
// extended matrix carries one checksum column (row sums) at column n, one
// checksum row (column sums) at row n, and the grand total at (n, n).
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace fth::ft {

/// Build the (n+1)×(n+1) fully-encoded extension of `a` (host-side; the
/// driver performs the same encoding with device kernels).
Matrix<double> encode_extended(MatrixView<const double> a);

/// Fresh logical row/column sums of the protected matrix, split across the
/// two memory spaces exactly as the driver stores it:
///  * `host_a` — n×n host matrix whose finished columns (< i) are valid;
///    only rows 0..c+1 of a finished column c are summed,
///  * `ext` — the (n+1)×(n+1) extended matrix whose trailing columns
///    (≥ i) hold live data.
struct FreshSums {
  std::vector<double> row;  ///< length n
  std::vector<double> col;  ///< length n
};
FreshSums fresh_logical_sums(MatrixView<const double> host_a, MatrixView<const double> ext,
                             index_t i);

/// Indices (and fresh−maintained deltas) where the recomputed sums diverge
/// from the maintained checksums by more than `tol`.
struct Discrepancy {
  std::vector<index_t> rows;
  std::vector<double> row_delta;  ///< fresh − maintained, per entry of `rows`
  std::vector<index_t> cols;
  std::vector<double> col_delta;
  [[nodiscard]] bool clean() const { return rows.empty() && cols.empty(); }
};
Discrepancy compare_checksums(const FreshSums& fresh, MatrixView<const double> ext,
                              double tol);

/// |Sre − Sce|: the per-iteration detection statistic (Algorithm 3 line 13).
double detection_gap(MatrixView<const double> ext);

/// Default detection threshold: factor · eps · n · ‖A‖_F. The paper asks
/// for a value 2–3 orders of magnitude above machine epsilon relative to
/// the data scale; the n factor absorbs the growth of the grand sums.
double default_threshold(double fro_norm, index_t n, double factor = 500.0);

}  // namespace fth::ft

// Structured recovery outcomes for the FT drivers.
//
// Recovery used to end in one of two ways: silence (it worked) or a bare
// recovery_error with a formatted message. Campaigns aggregating thousands
// of trials need more: every run terminates with a RecoveryOutcome stored
// in its FtReport, and an abandoned recovery additionally throws a
// recovery_error carrying the same structured fields (common/error.hpp).
#pragma once

#include <string>

#include "common/error.hpp"
#include "common/types.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace fth::ft {

/// Final status of a fault-tolerant factorization run.
enum class RecoveryStatus {
  Clean,          ///< no detection fired; nothing to recover
  Recovered,      ///< every detection was rolled back and corrected
  Unrecoverable,  ///< recovery was abandoned; the run threw recovery_error
};

/// Why a recovery was abandoned.
enum class AbortReason {
  None,              ///< not abandoned
  RetriesExhausted,  ///< detection kept firing after max_retries attempts
  AmbiguousPattern,  ///< locate() could not resolve the error pattern (e.g. rectangle)
  NonfiniteDamage,   ///< NaN/Inf contamination the codes cannot reconstruct
  CheckpointLost,    ///< checkpoint corrupt and re-derivation impossible
  DeviceLost,        ///< device losses exceeded the redundancy group's correction radius
};

std::string to_string(RecoveryStatus s);
std::string to_string(AbortReason r);

/// Structured summary of how a run ended, recorded in FtReport. For an
/// Unrecoverable outcome the boundary/attempts/gap/threshold fields mirror
/// the recovery_error that was thrown.
struct RecoveryOutcome {
  RecoveryStatus status = RecoveryStatus::Clean;
  AbortReason reason = AbortReason::None;
  index_t boundary = -1;   ///< iteration boundary that was abandoned
  int attempts = 0;        ///< recovery attempts spent at that boundary
  double gap = 0.0;        ///< detection gap observed on the last attempt
  double threshold = 0.0;  ///< detection threshold in force
  std::string detail;      ///< human-readable context (locate message, …)
};

/// Fill `out`, bump the ft.unrecoverable counter, and throw the matching
/// structured recovery_error. `who` names the driver for the message.
[[noreturn]] inline void abort_recovery(RecoveryOutcome& out, const char* who,
                                        AbortReason reason, index_t boundary, int attempts,
                                        double gap, double threshold,
                                        const std::string& detail) {
  out.status = RecoveryStatus::Unrecoverable;
  out.reason = reason;
  out.boundary = boundary;
  out.attempts = attempts;
  out.gap = gap;
  out.threshold = threshold;
  out.detail = detail;
  obs::counter_metric("ft.unrecoverable").add();
  if (obs::journal_enabled())
    obs::journal_log(obs::JournalSeverity::Error, "ft", "abort", -1, gap, boundary,
                     std::string(who) + ": " + to_string(reason) +
                         (detail.empty() ? "" : ": " + detail));
  std::string msg = std::string(who) + ": recovery abandoned at boundary " +
                    std::to_string(boundary) + " after " + std::to_string(attempts) +
                    " attempt(s) [" + to_string(reason) + "]";
  if (!detail.empty()) msg += ": " + detail;
  throw recovery_error(msg, boundary, attempts, gap, threshold);
}

inline std::string to_string(RecoveryStatus s) {
  switch (s) {
    case RecoveryStatus::Clean: return "clean";
    case RecoveryStatus::Recovered: return "recovered";
    case RecoveryStatus::Unrecoverable: return "unrecoverable";
  }
  return "?";
}

inline std::string to_string(AbortReason r) {
  switch (r) {
    case AbortReason::None: return "none";
    case AbortReason::RetriesExhausted: return "retries-exhausted";
    case AbortReason::AmbiguousPattern: return "ambiguous-pattern";
    case AbortReason::NonfiniteDamage: return "nonfinite-damage";
    case AbortReason::CheckpointLost: return "checkpoint-lost";
    case AbortReason::DeviceLost: return "device-lost";
  }
  return "?";
}

}  // namespace fth::ft

#include "ft/reverse.hpp"

#include "common/error.hpp"
#include "la/blas3.hpp"

namespace fth::ft {

void reverse_right_update(MatrixView<double> ext_cols, MatrixView<const double> yce,
                          MatrixView<const double> v_tail) {
  FTH_CHECK(yce.rows() == ext_cols.rows() && v_tail.rows() == ext_cols.cols() &&
                v_tail.cols() == yce.cols(),
            "reverse_right_update: dimension mismatch");
  blas::gemm(Trans::No, Trans::Yes, 1.0, yce, v_tail, 1.0, ext_cols);
}

void reverse_left_update(MatrixView<double> ext_rows, MatrixView<const double> vce,
                         MatrixView<const double> w) {
  FTH_CHECK(vce.rows() == ext_rows.rows() && w.cols() == ext_rows.cols() &&
                w.rows() == vce.cols(),
            "reverse_left_update: dimension mismatch");
  blas::gemm(Trans::No, Trans::No, 1.0, vce, w, 1.0, ext_rows);
}

}  // namespace fth::ft

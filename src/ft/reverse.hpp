// Reverse computation of the block updates (Algorithm 3, line 14).
//
// Both trailing updates subtract a product whose factors (Yce, Vce, and
// the left update's intermediate W = Tᵀ·Vᵀ·A) are still live at the end of
// the iteration — the paper's observation that "the intermediate data ...
// are not destroyed until the next panel factorization". Reversal therefore
// *adds the identical products back*, restoring the matrix and both
// checksum vectors to their previous consistent state up to one rounding.
#pragma once

#include "la/matrix.hpp"

namespace fth::ft {

/// Undo the extended right update `ext_cols −= yce·v_tailᵀ`:
/// ext_cols += yce·v_tailᵀ. `ext_cols` is the updated column block
/// (data columns i+ib..n−1 plus the checksum column), all n+1 rows.
void reverse_right_update(MatrixView<double> ext_cols, MatrixView<const double> yce,
                          MatrixView<const double> v_tail);

/// Undo the extended left update `ext_rows −= vce·w`:
/// ext_rows += vce·w. `ext_rows` is the updated row block (data rows
/// i+1..n−1 plus the checksum row) over the updated columns; `w` is the
/// retained intermediate W = Tᵀ·Vᵀ·A of the forward update.
void reverse_left_update(MatrixView<double> ext_rows, MatrixView<const double> vce,
                         MatrixView<const double> w);

}  // namespace fth::ft

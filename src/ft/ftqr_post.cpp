#include "ft/ftqr_post.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "ft/checksum.hpp"
#include "la/norms.hpp"
#include "lapack/geqrf.hpp"
#include "lapack/reflectors.hpp"

namespace fth::ft {

void ftqr_post(MatrixView<double> a, VectorView<double> tau,
               const std::vector<QrFault>& faults, FtQrReport* report, index_t nb) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  FTH_CHECK(m >= n, "ftqr_post: m >= n required");
  FTH_CHECK(tau.size() >= n, "ftqr_post: tau too short");

  FtQrReport local;
  FtQrReport& rep = report != nullptr ? *report : local;
  rep = {};

  const double fro = norm_fro(MatrixView<const double>(a));
  rep.threshold = default_threshold(fro, std::max(m, n));

  // Encode: two checksum columns ride along ([A | A·e | A·ω]).
  Matrix<double> enc(m, n + 2);
  copy(MatrixView<const double>(a), enc.block(0, 0, m, n));
  for (index_t r = 0; r < m; ++r) {
    double se = 0.0, sw = 0.0;
    for (index_t c = 0; c < n; ++c) {
      se += a(r, c);
      sw += a(r, c) * static_cast<double>(c + 1);
    }
    enc(r, n) = se;
    enc(r, n + 1) = sw;
  }

  // Blocked QR over the data columns only; every block reflector is also
  // applied to the carried checksum columns (they are just trailing
  // columns of the encoded matrix). Faults strike at panel boundaries.
  Matrix<double> t(nb, nb);
  Matrix<double> work(std::max(m, n + 2), nb);
  index_t i = 0;
  index_t boundary = 0;
  auto ev = enc.view();
  while (i < n) {
    const index_t ib = std::min(nb, n - i);
    lapack::geqr2(ev.block(i, i, m - i, ib), tau.sub(i, ib));
    if (i + ib < n + 2) {
      // Materialize the panel's reflectors and sweep the trailing columns
      // (data + carried checksums) in one block application.
      Matrix<double> v(m - i, ib);
      for (index_t j = 0; j < ib; ++j) {
        v(j, j) = 1.0;
        for (index_t r = j + 1; r < m - i; ++r) v(r, j) = enc(i + r, i + j);
      }
      lapack::larft(Direction::Forward, StoreV::Columnwise, v.cview(), tau.sub(i, ib),
                    t.view());
      lapack::larfb(Side::Left, Trans::Yes, Direction::Forward, StoreV::Columnwise,
                    v.cview(), t.cview(), ev.block(i, i + ib, m - i, n + 2 - i - ib),
                    work.view());
    }
    i += ib;
    ++boundary;
    for (const QrFault& f : faults) {
      if (f.boundary == boundary) ev(f.row, f.col) += f.delta;
    }
  }

  // Copy the factored data columns back to the caller's matrix.
  copy(MatrixView<const double>(enc.block(0, 0, m, n)), a);

  // ---- The single post-processing pass. ---------------------------------
  // d  = carried_e − R·e,  d_w = carried_w − R·ω  (R rows only exist for
  // r ≤ c, but the carried columns have all m rows — the part below row n
  // must be ~0 for a clean run).
  rep.r = lapack::extract_r(MatrixView<const double>(a));
  std::vector<double> d(static_cast<std::size_t>(m), 0.0);
  std::vector<double> dw(static_cast<std::size_t>(m), 0.0);
  for (index_t r = 0; r < m; ++r) {
    double se = 0.0, sw = 0.0;
    for (index_t c = r; c < n; ++c) {  // upper-triangular R
      se += rep.r(r, c);
      sw += rep.r(r, c) * static_cast<double>(c + 1);
    }
    d[static_cast<std::size_t>(r)] = enc(r, n) - se;
    dw[static_cast<std::size_t>(r)] = enc(r, n + 1) - sw;
    rep.gap = std::max(rep.gap, std::abs(d[static_cast<std::size_t>(r)]));
  }
  if (rep.gap <= rep.threshold) return;  // clean

  rep.fault_detected = true;
  // One corrupted column ⇒ d_w = ω_q·d elementwise; a consistent ratio
  // identifies q. Inconsistent ratios mean the two-code reach is exceeded.
  double ratio = 0.0;
  bool have_ratio = false;
  for (index_t r = 0; r < m; ++r) {
    if (std::abs(d[static_cast<std::size_t>(r)]) <= rep.threshold) continue;
    const double rr = dw[static_cast<std::size_t>(r)] / d[static_cast<std::size_t>(r)];
    if (!have_ratio) {
      ratio = rr;
      have_ratio = true;
    } else if (std::abs(rr - ratio) > 0.25) {
      rep.failure =
          "post-processing ABFT: inconsistent column ratios — more than one corrupted "
          "column, beyond the two-code correction capacity (the limitation the paper's "
          "on-line scheme removes)";
      return;
    }
  }
  const index_t q = static_cast<index_t>(std::llround(ratio)) - 1;
  if (q < 0 || q >= n || std::abs(ratio - static_cast<double>(q + 1)) > 0.25) {
    rep.failure = "post-processing ABFT: ratio does not identify a column";
    return;
  }
  // Repair: R(:, q) += d. The correction may have components below the
  // diagonal (the corrupted-data Q is not exactly the clean-data Q); they
  // are kept in the dense corrected R so that Q·R reconstructs A exactly.
  for (index_t r = 0; r < m; ++r) rep.r(r, q) += d[static_cast<std::size_t>(r)];
  rep.corrected = true;
  rep.corrected_column = q;
}

}  // namespace fth::ft

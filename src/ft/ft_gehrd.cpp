#include "ft/ft_gehrd.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "fault/fault_plane.hpp"
#include "ft/checksum.hpp"
#include "ft/q_protect.hpp"
#include "ft/recovery.hpp"
#include "ft/reverse.hpp"
#include "hybrid/dev_blas.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/blas3.hpp"
#include "la/norms.hpp"
#include "obs/dag.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "lapack/lahr2_impl.hpp"
#include "lapack/orghr.hpp"
#include "lapack/reflectors.hpp"

namespace fth::ft {

index_t ft_total_boundaries(index_t n, index_t nb) {
  index_t count = 0;
  index_t i = 0;
  while (i < n - 1) {
    i += std::min(nb, n - 1 - i);
    ++count;
  }
  return count;
}

namespace {

using hybrid::copy_d2h;
using hybrid::copy_d2h_async;
using hybrid::copy_h2d;
using hybrid::copy_h2d_async;

/// Thrown by the panel tripwire when a device-assisted y column comes back
/// non-finite: the reflector chain would smear NaN/Inf across the whole
/// trailing matrix, so the panel is abandoned before any update is applied.
struct panel_poisoned_error {};

/// RAII bracket telling the fault plane a recovery re-execution is active
/// (DuringRecovery faults only count triggers inside the bracket).
class RecoveryScope {
 public:
  explicit RecoveryScope(fault::FaultPlane* p) : p_(p) {
    if (p_ != nullptr) p_->set_in_recovery(true);
  }
  ~RecoveryScope() {
    if (p_ != nullptr) p_->set_in_recovery(false);
  }
  RecoveryScope(const RecoveryScope&) = delete;
  RecoveryScope& operator=(const RecoveryScope&) = delete;

 private:
  fault::FaultPlane* p_;
};

/// Detection result: the grand-total gap plus a count of non-finite
/// entries anywhere in the extended matrix. The scan is needed because an
/// unpropagated NaN in the data leaves both grand totals NaN — detected —
/// but a NaN pair can also cancel into a *finite* bogus gap, and an Inf
/// strike that has not reached a checksum yet changes neither total.
struct DetectResult {
  double gap = 0.0;
  index_t nonfinite = 0;
  [[nodiscard]] bool clean(double threshold) const {
    return gap <= threshold && nonfinite == 0;  // NaN gap fails the comparison
  }
};

/// All state of one fault-tolerant reduction (Algorithm 3).
class FtDriver {
 public:
  FtDriver(hybrid::Device& dev, MatrixView<double> a, VectorView<double> tau,
           const FtOptions& opt, fault::Injector* inj, FtReport& rep,
           hybrid::HybridGehrdStats& st)
      : dev_(dev),
        s_(dev.stream()),
        a_(a),
        tau_(tau),
        opt_(opt),
        inj_(inj),
        rep_(rep),
        st_(st),
        n_(a.rows()),
        d_e_(dev, n_ + 1, n_ + 1, "ft.d_e"),
        d_vce_(dev, n_, std::max<index_t>(opt.nb, 1), "ft.d_vce"),
        d_t_(dev, std::max<index_t>(opt.nb, 1), std::max<index_t>(opt.nb, 1), "ft.d_t"),
        d_yce_(dev, n_ + 1, std::max<index_t>(opt.nb, 1), "ft.d_yce"),
        d_w_(dev, std::max<index_t>(opt.nb, 1), n_ + 1, "ft.d_w"),
        d_ones_(dev, n_ + 1, 1, "ft.d_ones"),
        t_host_(std::max<index_t>(opt.nb, 1), std::max<index_t>(opt.nb, 1)),
        y_host_(n_, std::max<index_t>(opt.nb, 1)),
        ckpt_(n_, std::max<index_t>(opt.nb, 1)),
        ckpt_chkrow_(1, std::max<index_t>(opt.nb, 1)),
        new_chkrow_(1, std::max<index_t>(opt.nb, 1)),
        ext_scratch_(n_ + 1, n_ + 1),
        qp_(n_) {
    const double fro = norm_fro(MatrixView<const double>(a_));
    scale_max_ = norm_max(MatrixView<const double>(a_));
    threshold_ = opt.threshold > 0 ? opt.threshold
                                   : default_threshold(fro, n_, opt.threshold_factor);
    loc_tol_ = opt.locate_tol > 0 ? opt.locate_tol : threshold_;
    rep_.threshold = threshold_;
    total_boundaries_ = ft_total_boundaries(n_, opt.nb);
    plane_ = opt.fault_plane;
    if (plane_ != nullptr) plane_->bind(dev);
  }

  ~FtDriver() {
    if (plane_ != nullptr) {
      // Drain the stream so no hook invocation is in flight when the hooks
      // come down (the plane may be destroyed right after the driver).
      try {
        s_.synchronize();
      } catch (...) {  // NOLINT(bugprone-empty-catch): unwinding already
      }
      plane_->unbind();
    }
  }

  void run() {
    encode();
    index_t i = 0;
    index_t boundary = 0;
    while (i < n_ - 1) {
      const index_t ib = std::min(opt_.nb, n_ - 1 - i);
      const bool completed = run_iteration(i, ib);
      ensure_clean(boundary + 1, i, ib, completed);
      if (opt_.protect_q) qp_.commit(pending_q_);
      ++boundary;
      ++st_.panels;
      i += ib;
      if (inj_ != nullptr) inject_at_boundary(boundary, i);
    }
    final_phase();
    // Clean means NOTHING fired: a run that survived only because a
    // checkpoint was re-derived, a non-finite element reconstructed, or a
    // poisoned panel abandoned was still a recovery.
    rep_.outcome.status = (rep_.detections > 0 || rep_.final_sweep_corrections > 0 ||
                           rep_.q_corrections > 0 || rep_.ckpt_rederivations > 0 ||
                           rep_.reconstructions > 0 || rep_.panel_aborts > 0)
                              ? RecoveryStatus::Recovered
                              : RecoveryStatus::Clean;
  }

 private:
  // -- Algorithm 3 line 2: encode the matrix on the device. ----------------
  void encode() {
    WallTimer t;
    obs::TraceSpan span("ft", "encode", "n", static_cast<double>(n_));
    copy_h2d_async(s_, MatrixView<const double>(a_), d_e_.block(0, 0, n_, n_));
    hybrid::fill_async(s_, d_ones_.view(), 1.0);
    auto ones_n = d_ones_.view().col(0).sub(0, n_);
    // Checksum column: row sums.
    hybrid::gemv_async(s_, Trans::No, 1.0, d_e_.block(0, 0, n_, n_), ones_n, 0.0,
                       d_e_.block(0, n_, n_, 1).col(0));
    // Checksum row: column sums; corner: grand total.
    auto e = d_e_.view();
    hybrid::gemv_async(s_, Trans::Yes, 1.0, d_e_.block(0, 0, n_, n_), ones_n, 0.0,
                       e.row(n_).sub(0, n_));
    s_.enqueue("ft.encode_corner", FTH_TASK_EFFECTS(FTH_WRITES(e)), [e, n = n_] {
      auto eh = e.in_task();
      eh(n, n) = blas::sum(VectorView<const double>(eh.row(n).sub(0, n)));
    });
    // Intentional full barrier, once per run: mark_encoded() below opens
    // the fault gate, and the codes must exist on the device before any
    // strike is allowed — a narrower transfer-only edge would let faults
    // fire under the encode kernels. fth-perf: expect coarse-synchronize
    s_.synchronize();
    rep_.encode_seconds += t.seconds();
    // Faults are gated until the codes exist: an earlier strike would be
    // encoded consistently and become a different (but protected) input.
    if (plane_ != nullptr) plane_->mark_encoded();
  }

  // -- One full panel iteration (Algorithm 3 lines 4–11). ------------------
  // Returns false if the panel tripwire aborted the iteration before any
  // update was applied (the caller then rolls back the panel and redoes it).
  bool run_iteration(index_t i, index_t ib) {
    const index_t vrows = n_ - i - 1;
    const index_t width = n_ + 1 - i - ib;  // trailing data columns + checksum column
    auto e = d_e_.view();

    // Re-aim the fault plane at this iteration's live regions. Finished
    // device columns and the checksum-row segment over the panel are dead
    // storage (their truth lives on the host / is re-encoded below);
    // corrupting them would be a silent no-op that breaks campaign
    // accounting. The checkpoint surface is registered only after its
    // integrity sums are taken, so a strike cannot pre-date the reference.
    if (plane_ != nullptr) {
      plane_->register_surface(fault::Surface::TrailingMatrix,
                               d_e_.block(0, i + ib, n_, n_ - i - ib));
      plane_->register_surface(fault::Surface::ChecksumCol, d_e_.block(0, n_, n_, 1));
      plane_->register_surface(fault::Surface::ChecksumRow,
                               d_e_.block(n_, i + ib, 1, n_ - i - ib));
      plane_->clear_surface(fault::Surface::Checkpoint);
      plane_->clear_transfer_targets();
      // The two fault-eligible transfer destinations inside the protected
      // domain: the checksum-row re-encode (h2d, end of iteration) and the
      // checkpointed checksum-row pre-image (d2h, checkpoint save).
      plane_->add_transfer_target(fault::Surface::ChecksumRow, d_e_.block(n_, i, 1, ib));
      plane_->add_transfer_target(fault::Surface::Checkpoint,
                                  ckpt_chkrow_.block(0, 0, 1, ib));
    }

    // Line 4: panel to host + diskless checkpoint of its pre-image. The
    // checkpoint includes the checksum-row segment over the panel columns:
    // those entries are re-encoded at the end of the iteration (see below)
    // and must be restorable on rollback.
    WallTimer panel_timer;
    {
      obs::TraceSpan ckpt_span("ft", "checkpoint_save", "col", static_cast<double>(i));
      copy_d2h_async(s_, d_e_.block(0, i, n_, ib),
                     a_.block(0, i, n_, ib));
      copy_d2h(s_, d_e_.block(n_, i, 1, ib),
               ckpt_chkrow_.block(0, 0, 1, ib));
      fth::copy(MatrixView<const double>(a_.block(0, i, n_, ib)), ckpt_.block(0, 0, n_, ib));
      // The d2h that filled ckpt_chkrow_ is itself fault-eligible, and the
      // dual-sum verify below can only vouch for what was stored — not for
      // the transfer. Cross-check bitwise against the device's maintained
      // segment via a raw task readback (which is not a copy_* transfer and
      // therefore not fault-eligible) and re-derive on mismatch. Comparing
      // against recomputed column sums would be wrong here: an undetected
      // boundary fault sitting in the panel makes the data legitimately
      // disagree with the maintained code, and that disagreement is exactly
      // what locates the fault after rollback.
      verify_chkrow_checkpoint(i, ib);
      save_checkpoint_sums(ib);
      if (plane_ != nullptr)
        plane_->register_surface(fault::Surface::Checkpoint, ckpt_.block(0, 0, n_, ib));
    }

    // Line 5: host panel factorization; big Y products on the device.
    bool poisoned = false;
    {
      obs::TraceSpan panel_span("hybrid", "panel", "col", static_cast<double>(i));
      try {
        lapack::detail::lahr2_panel(
            a_, i, ib, t_host_.view(), y_host_.view(), tau_.sub(i, ib),
            [&](index_t j, VectorView<const double> vj, VectorView<double> y_col) {
              const index_t cj = i + j;
              auto d_vcol = d_vce_.block(j, j, vj.size(), 1);
              copy_h2d_async(s_, MatrixView<const double>(vj.data(), vj.size(), 1, vj.size()),
                             d_vcol);
              hybrid::gemv_async(s_, Trans::No, 1.0,
                                 d_e_.block(i + 1, cj + 1, vrows, n_ - cj - 1),
                                 d_vcol.col(0), 0.0,
                                 d_yce_.block(i + 1, j, vrows, 1).col(0));
              copy_d2h(s_, d_yce_.block(i + 1, j, vrows, 1),
                       MatrixView<double>(y_col.data(), vrows, 1, vrows));
              // Tripwire: a non-finite y means a NaN/Inf strike reached the
              // trailing matrix mid-panel. Applying the reflector chain
              // would smear it everywhere; abandon the panel instead, while
              // no update has touched the extended matrix yet.
              for (index_t r = 0; r < vrows; ++r)
                if (!std::isfinite(y_col[r])) throw panel_poisoned_error{};
            });
      } catch (const panel_poisoned_error&) {
        poisoned = true;
      }
    }
    st_.panel_seconds += panel_timer.seconds();
    if (poisoned) {
      s_.synchronize();
      ++rep_.panel_aborts;
      obs::counter_metric("ft.panel_aborts").add();
      obs::instant("ft", "panel_abort");
      obs::journal_log(obs::JournalSeverity::Warn, "ft", "panel_abort", -1, 0.0, i);
      return false;
    }

    WallTimer update_timer;
    {
      obs::TraceSpan update_span("hybrid", "update", "col", static_cast<double>(i));
      // Ship clean V / T / corrected lower Y.
      Matrix<double> v = lapack::materialize_v(MatrixView<const double>(a_), i, ib);
      copy_h2d_async(s_, v.cview(), d_vce_.block(0, 0, vrows, ib));
      copy_h2d_async(s_, t_host_.block(0, 0, ib, ib), d_t_.block(0, 0, ib, ib));
      copy_h2d_async(s_, y_host_.block(i + 1, 0, vrows, ib), d_yce_.block(i + 1, 0, vrows, ib));

      // Line 7: column checksums of V (device GEMV with the ones vector).
      auto ones_v = d_ones_.view().col(0).sub(0, vrows);
      auto dv = d_vce_.view();
      s_.enqueue("ft.v_chk", FTH_TASK_EFFECTS(FTH_READS(ones_v) FTH_WRITES(dv)),
                 [this, dv, ones_v, vrows, ib] {
        WallTimer t;
        auto dvh = dv.in_task();
        blas::gemv(Trans::Yes, 1.0, MatrixView<const double>(dvh.block(0, 0, vrows, ib)),
                   VectorView<const double>(ones_v.in_task()), 0.0,
                   dvh.row(vrows).sub(0, ib));
        chk_update_seconds_ += t.seconds();
      });

      // Top rows of Yce: Y(0:i+1,:) = A(0:i+1, i+1:n)·V·T.
      hybrid::gemm_async(s_, Trans::No, Trans::No, 1.0, d_e_.block(0, i + 1, i + 1, vrows),
                         d_vce_.block(0, 0, vrows, ib), 0.0, d_yce_.block(0, 0, i + 1, ib));
      hybrid::trmm_async(s_, Side::Right, Uplo::Upper, Trans::No, Diag::NonUnit, 1.0,
                         d_t_.block(0, 0, ib, ib), d_yce_.block(0, 0, i + 1, ib));

      // Line 6: checksum row of Y, Ychk = Ac_chk(i+1:n)·V·T (device).
      auto dy = d_yce_.view();
      auto dt = d_t_.view();
      s_.enqueue("ft.y_chk", FTH_TASK_EFFECTS(FTH_READS(e, dv, dt) FTH_WRITES(dy)),
                 [this, e, dv, dy, dt, i, ib, vrows] {
        WallTimer t;
        auto eh = e.in_task();
        auto chk_seg = VectorView<const double>(eh.row(n_).sub(i + 1, vrows));
        auto ychk = dy.in_task().row(n_).sub(0, ib);
        blas::gemv(Trans::Yes, 1.0, MatrixView<const double>(dv.in_task().block(0, 0, vrows, ib)),
                   chk_seg, 0.0, ychk);
        blas::trmv(Uplo::Upper, Trans::Yes, Diag::NonUnit,
                   MatrixView<const double>(dt.in_task().block(0, 0, ib, ib)), ychk);
        chk_update_seconds_ += t.seconds();
      });

      // Fetch the finished top rows of Y for the host-side panel fix.
      copy_d2h_async(s_, d_yce_.block(0, 0, i + 1, ib),
                     y_host_.block(0, 0, i + 1, ib));
      const hybrid::Event y_upper_ready = s_.record();

      // Line 8+10: extended right update, M and G plus both checksums in one
      // GEMM over the trailing columns and the checksum column.
      hybrid::gemm_async(s_, Trans::No, Trans::Yes, -1.0, d_yce_.block(0, 0, n_ + 1, ib),
                         d_vce_.block(ib - 1, 0, vrows - ib + 2, ib), 1.0,
                         d_e_.block(0, i + ib, n_ + 1, width));

      // BetweenUpdates faults strike here: after the extended right update,
      // before the left one (enqueued, so ordering on the stream is exact).
      if (plane_ != nullptr) plane_->on_between_updates(s_);

      // Line 11: extended left update; W is retained for reverse computation.
      // Enqueued BEFORE the host panel fix below — it reads only
      // device-resident operands (Vce, T, the extended trailing columns),
      // so the host work overlaps both big updates instead of just the
      // right one (the paper's line 9/line 10 overlap, widened).
      hybrid::gemm_async(s_, Trans::Yes, Trans::No, 1.0, d_vce_.block(0, 0, vrows, ib),
                         d_e_.block(i + 1, i + ib, vrows, width), 0.0,
                         d_w_.block(0, 0, ib, width));
      hybrid::trmm_async(s_, Side::Left, Uplo::Upper, Trans::Yes, Diag::NonUnit, 1.0,
                         d_t_.block(0, 0, ib, ib), d_w_.block(0, 0, ib, width));
      hybrid::gemm_async(s_, Trans::No, Trans::No, -1.0, d_vce_.block(0, 0, vrows + 1, ib),
                         d_w_.block(0, 0, ib, width), 1.0,
                         d_e_.block(i + 1, i + ib, vrows + 1, width));

      // Host work overlapped with the device GEMMs (Q checksum generation
      // of Section IV-E, then the panel-column fix).
      if (opt_.protect_q) {
        WallTimer qt;
        obs::TraceSpan q_span("ft", "q_checksum");
        pending_q_ = qp_.compute_panel(MatrixView<const double>(a_), i, ib);
        rep_.q_seconds += qt.seconds();
      }
      // The wait also retires the V/T/Y uploads, so the stack-local V
      // staging buffer may die at the end of this scope with no transfer
      // still reading it.
      y_upper_ready.wait();
      blas::trmm(Side::Right, Uplo::Lower, Trans::Yes, Diag::Unit, 1.0,
                 MatrixView<const double>(a_.block(i + 1, i, ib - 1, ib - 1)),
                 y_host_.block(0, 0, i + 1, ib - 1));
      for (index_t j = 0; j + 1 < ib; ++j) {
        blas::axpy(-1.0, VectorView<const double>(y_host_.block(0, j, i + 1, 1).col(0)),
                   a_.block(0, i + 1 + j, i + 1, 1).col(0));
      }

      // The panel columns transition from "trailing data" (checksummed over
      // the full height) to "finished H columns" (checksummed over rows
      // 0..c+1 only — the Householder entries below move under Q's
      // protection). Re-encode the checksum-row segment for the finished
      // columns from the final host data; the pre-image was checkpointed
      // above so rollback can restore it.
      for (index_t j = 0; j < ib; ++j) {
        const index_t c = i + j;
        double cs = 0.0;
        const index_t last = std::min(c + 1, n_ - 1);
        for (index_t r = 0; r <= last; ++r) cs += a_(r, c);
        new_chkrow_(0, j) = cs;
      }
      copy_h2d_async(s_, MatrixView<const double>(new_chkrow_.block(0, 0, 1, ib)),
                     d_e_.block(n_, i, 1, ib));
      // No loop-bottom synchronize: the re-encode h2d stays in flight and
      // is retired by detect()'s synchronous fetch before the host rewrites
      // new_chkrow_ next iteration (fth_analyze --perf flagged the old
      // barrier as coarse-synchronize, and the loop-carried pass proves the
      // detect edge covers it).
    }
    st_.update_seconds += update_timer.seconds();
    return true;
  }

  // -- Lines 12–16: detect, and if needed roll back / locate / correct / redo.
  // The escalation ladder on a dirty boundary: bounded retries of
  // (rollback → checkpoint verify/re-derive → locate → correct → redo);
  // every exit that cannot restore a consistent state goes through
  // abort_recovery, which fills rep_.outcome before throwing.
  void ensure_clean(index_t boundary, index_t i, index_t ib, bool completed) {
    int attempts = 0;
    for (;;) {
      DetectResult det;
      if (completed) {
        det = detect(i + ib);
        if (det.clean(threshold_)) {
          rep_.max_fault_free_gap = std::max(rep_.max_fault_free_gap, det.gap);
          return;
        }
      } else {
        // The panel tripwire already proved the iteration unusable; there
        // is nothing meaningful to measure, so synthesize the detection.
        det.gap = std::numeric_limits<double>::quiet_NaN();
        det.nonfinite = 1;
      }
      ++rep_.detections;
      obs::instant("ft", "detection");
      obs::counter_metric("ft.detections").add();
      obs::journal_log(obs::JournalSeverity::Warn, "ft", "detect", -1, det.gap, boundary);
      if (det.nonfinite > 0) obs::counter_metric("ft.nonfinite_detections").add();
      if (++attempts > opt_.max_retries) {
        std::ostringstream os;
        os << "gap " << det.gap << " > threshold " << threshold_ << " with "
           << det.nonfinite << " non-finite entries after exhausting retries";
        abort_recovery(rep_.outcome, "ft_gehrd", AbortReason::RetriesExhausted, boundary,
                       attempts - 1, det.gap, threshold_, os.str());
      }

      WallTimer rt;
      FtEvent ev;
      ev.boundary = boundary;
      ev.gap = det.gap;
      ev.panel_poisoned = !completed;

      {
        // The DAG mark makes recovery episodes visible on the host chain,
        // so fth_why can separate rollback-induced stalls from steady-state
        // pipeline waits.
        obs::dag::mark("ft.rollback");
        obs::TraceSpan rb_span("ft", "rollback", "col", static_cast<double>(i));
        rollback(i, ib, completed);
      }
      ++rep_.rollbacks;
      obs::counter_metric("ft.rollbacks").add();
      obs::journal_log(obs::JournalSeverity::Info, "ft", "rollback", -1,
                       static_cast<double>(attempts), boundary);

      try {
        // Pass 1 may reconstruct non-finite elements from the orthogonal
        // code; when huge intermediates were involved the rollback leaves
        // finite round-off residue behind, so a second pass mops that up.
        for (int pass = 0; pass < 2; ++pass) {
          LocateResult res;
          {
            obs::TraceSpan loc_span("ft", "locate");
            res = locate_errors(i);
          }
          int chk_repairs = 0;
          {
            obs::TraceSpan fix_span("ft", "correct");
            chk_repairs = apply_corrections(res, i);
          }
          ev.errors.insert(ev.errors.end(), res.data_errors.begin(), res.data_errors.end());
          ev.data_corrections += static_cast<int>(res.data_errors.size());
          ev.checksum_corrections = ev.checksum_corrections + chk_repairs +
                                    static_cast<int>(res.chk_col_errors.size() +
                                                     res.chk_row_errors.size());
          ev.reconstructions += static_cast<int>(res.reconstructions.size());
          if (res.reconstructions.empty()) break;  // nothing re-derived → no residue
        }
      } catch (const recovery_error& e) {
        // Location (or reconstruction) gave up: the pattern exceeds the
        // code's correction capability. Record the abandoned iteration,
        // then abort with the structured cause.
        const AbortReason why = det.nonfinite > 0 ? AbortReason::NonfiniteDamage
                                                  : AbortReason::AmbiguousPattern;
        rep_.events.push_back(std::move(ev));
        abort_recovery(rep_.outcome, "ft_gehrd", why, boundary, attempts, det.gap,
                       threshold_, e.what());
      }
      ev.checkpoint_only = ev.data_corrections == 0 && ev.checksum_corrections == 0 &&
                           ev.reconstructions == 0;
      rep_.data_corrections += ev.data_corrections;
      rep_.checksum_corrections += ev.checksum_corrections;
      obs::counter_metric("ft.data_corrections").add(static_cast<std::uint64_t>(ev.data_corrections));
      obs::counter_metric("ft.checksum_corrections")
          .add(static_cast<std::uint64_t>(ev.checksum_corrections));
      if (ev.checkpoint_only) obs::counter_metric("ft.checkpoint_only_recoveries").add();
      rep_.events.push_back(std::move(ev));

      {
        obs::dag::mark("ft.reexec");
        obs::TraceSpan redo_span("ft", "reexec", "col", static_cast<double>(i));
        obs::counter_metric("ft.reexecutions").add();
        obs::journal_log(obs::JournalSeverity::Info, "ft", "reexec", -1,
                         static_cast<double>(attempts), boundary);
        const RecoveryScope in_recovery(plane_);
        completed = run_iteration(i, ib);  // redo from the restored checkpoint
      }
      rep_.recovery_seconds += rt.seconds();
    }
  }

  // Detection: grand-total gap plus a non-finite scan over the live region
  // (trailing columns + both checksum lines; finished device columns are
  // dead storage whose truth lives on the host). `first_col` is the first
  // trailing column at this boundary.
  DetectResult detect(index_t first_col) {
    WallTimer t;
    obs::TraceSpan span("ft", "detect");
    DetectResult det;
    auto e = d_e_.view();
    s_.enqueue("ft.detect", FTH_TASK_EFFECTS(FTH_READS(e)), [e, n = n_, first_col, &det] {
      auto eh = e.in_task();
      const double sre = blas::sum(VectorView<const double>(eh.col(n).sub(0, n)));
      const double sce = blas::sum(VectorView<const double>(eh.row(n).sub(0, n)));
      det.gap = std::abs(sre - sce);
      index_t nf = 0;
      for (index_t c = first_col; c <= n; ++c)
        for (index_t r = 0; r <= n; ++r)
          if (!std::isfinite(eh(r, c))) ++nf;
      for (index_t c = 0; c < first_col; ++c)
        if (!std::isfinite(eh(n, c))) ++nf;
      det.nonfinite = nf;
    });
    s_.synchronize();
    rep_.detect_seconds += t.seconds();
    if (std::isfinite(det.gap)) {
      obs::histogram_metric("ft.detect_gap").observe(det.gap);
      obs::counter("ft.detect_gap", det.gap);
    }
    return det;
  }

  // -- Line 14: reverse computation (exact, the factors are still live). ---
  void rollback(index_t i, index_t ib, bool completed) {
    const index_t vrows = n_ - i - 1;
    const index_t width = n_ + 1 - i - ib;
    auto e = d_e_.view();
    auto dv = d_vce_.view();
    auto dy = d_yce_.view();
    auto dw = d_w_.view();
    if (completed) {
      s_.enqueue("ft.reverse_update", FTH_TASK_EFFECTS(FTH_READS(dv, dy) FTH_WRITES(e, dw)),
                  [e, dv, dy, dw, i, ib, vrows, width] {
        // Undo the left update first (it was applied last), then the right.
        auto eh = e.in_task();
        auto dvh = dv.in_task();
        reverse_left_update(eh.block(i + 1, i + ib, vrows + 1, width),
                            dvh.block(0, 0, vrows + 1, ib),
                            dw.in_task().block(0, 0, ib, width));
        reverse_right_update(eh.block(0, i + ib, eh.rows(), width),
                             dy.in_task().block(0, 0, eh.rows(), ib),
                             dvh.block(ib - 1, 0, vrows - ib + 2, ib));
      });
    }
    // Drain before touching the checkpoint from the host: in-flight faults
    // fire on the worker thread and may target the checkpoint buffers.
    s_.synchronize();
    obs::TraceSpan restore_span("ft", "checkpoint_restore", "col", static_cast<double>(i));
    verify_or_rederive_checkpoint(i, ib, completed);
    // Restore the panel (and its host-side upper rows) from the checkpoint
    // while the stream is idle, then the checksum-row segment the completed
    // iteration re-encoded (the h2d runs last so a transfer fault striking
    // it can no longer reach the already-consumed host buffers; the redo
    // re-encodes the segment anyway).
    fth::copy(MatrixView<const double>(ckpt_.block(0, 0, n_, ib)), a_.block(0, i, n_, ib));
    if (completed) {
      copy_h2d(s_, ckpt_chkrow_.block(0, 0, 1, ib), d_e_.block(n_, i, 1, ib));
    }
  }

  // -- Checkpoint integrity (the checkpoint itself is a fault target). ------
  // Dual sums (plain + position-weighted) compared bitwise at restore time:
  // any corruption of the host buffers between save and restore — including
  // NaN, which is unequal to itself — flips at least one sum. The panel data
  // and the checksum-row pre-image carry SEPARATE sum pairs on purpose: an
  // undetected boundary fault may legitimately sit in the panel data while
  // the maintained code in ckpt_chkrow_ does not include it, and that
  // disagreement is what locates the fault after rollback. A fused pair
  // would force a data-only strike to re-derive the (pristine) code from
  // the faulty data, encoding the fault as correct — a silent-wrong result.
  void panel_checkpoint_sums(double& s1, double& s2, index_t ib) const {
    s1 = 0.0;
    s2 = 0.0;
    for (index_t j = 0; j < ib; ++j) {
      for (index_t r = 0; r < n_; ++r) {
        const double v = ckpt_(r, j);
        s1 += v;
        s2 += v * static_cast<double>((r + 1) + (j + 1) * (n_ + 1));
      }
    }
  }

  void chkrow_checkpoint_sums(double& s1, double& s2, index_t ib) const {
    s1 = 0.0;
    s2 = 0.0;
    for (index_t j = 0; j < ib; ++j) {
      const double c = ckpt_chkrow_(0, j);
      s1 += c;
      s2 += c * static_cast<double>((n_ + 1) + (j + 1) * (n_ + 1));
    }
  }

  static bool bits_equal(double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  }

  void save_checkpoint_sums(index_t ib) {
    panel_checkpoint_sums(ckpt_sum1_, ckpt_sum2_, ib);
    chkrow_checkpoint_sums(ckpt_csum1_, ckpt_csum2_, ib);
  }

  void verify_chkrow_checkpoint(index_t i, index_t ib) {
    Matrix<double> ref(1, ib);
    auto e = d_e_.view();
    auto rv = ref.view();
    s_.enqueue("ft.chkrow_readback", FTH_TASK_EFFECTS(FTH_READS(e) FTH_WRITES(rv)),
                [e, rv, i, ib, n = n_]() mutable {
      auto eh = e.in_task();
      for (index_t j = 0; j < ib; ++j) rv(0, j) = eh(n, i + j);
    });
    s_.synchronize();
    for (index_t j = 0; j < ib; ++j) {
      if (!bits_equal(ckpt_chkrow_(0, j), ref(0, j))) {
        ckpt_chkrow_(0, j) = ref(0, j);
        ++rep_.ckpt_rederivations;
        obs::counter_metric("ft.ckpt_rederivations").add();
        obs::instant("ft", "ckpt_rederive");
      }
    }
  }

  void verify_or_rederive_checkpoint(index_t i, index_t ib, bool completed) {
    double s1 = 0.0;
    double s2 = 0.0;
    panel_checkpoint_sums(s1, s2, ib);
    if (!bits_equal(s1, ckpt_sum1_) || !bits_equal(s2, ckpt_sum2_)) {
      // The panel image was struck after save. Escalate to re-derivation:
      // both block updates start at column i+ib, so the device panel
      // columns still hold the exact pre-iteration image. The checksum-row
      // pre-image is NOT touched here — its truth is the maintained code,
      // which may legitimately disagree with the panel data (that
      // disagreement locates a fault that was saved into the checkpoint).
      copy_d2h(s_, d_e_.block(0, i, n_, ib), ckpt_.block(0, 0, n_, ib));
      panel_checkpoint_sums(ckpt_sum1_, ckpt_sum2_, ib);
      ++rep_.ckpt_rederivations;
      obs::counter_metric("ft.ckpt_rederivations").add();
      obs::instant("ft", "ckpt_rederive");
    }
    double c1 = 0.0;
    double c2 = 0.0;
    chkrow_checkpoint_sums(c1, c2, ib);
    if (!bits_equal(c1, ckpt_csum1_) || !bits_equal(c2, ckpt_csum2_)) {
      // The checksum-row pre-image was struck. Prefer the device's
      // maintained segment (still pristine when the iteration never reached
      // its re-encode); once the re-encode has run, fall back to the
      // panel's full-height column sums — the panel columns were trailing
      // data when the iteration began, so those sums ARE the code (up to
      // the rounding the threshold absorbs). Residual window: if a boundary
      // fault also sits inside the checkpointed panel, the fallback encodes
      // it into the column code and only the orthogonal row code can still
      // see it — a documented double-fault limitation (DESIGN.md §9).
      if (!completed) {
        auto e = d_e_.view();
        auto cv = ckpt_chkrow_.view();
        s_.enqueue("ft.chkrow_readback", FTH_TASK_EFFECTS(FTH_READS(e) FTH_WRITES(cv)),
                    [e, cv, i, ib, n = n_]() mutable {
          auto eh = e.in_task();
          for (index_t j = 0; j < ib; ++j) cv(0, j) = eh(n, i + j);
        });
        s_.synchronize();
      } else {
        for (index_t j = 0; j < ib; ++j) {
          double cs = 0.0;
          for (index_t r = 0; r < n_; ++r) cs += ckpt_(r, j);
          ckpt_chkrow_(0, j) = cs;
        }
      }
      chkrow_checkpoint_sums(ckpt_csum1_, ckpt_csum2_, ib);
      ++rep_.ckpt_rederivations;
      obs::counter_metric("ft.ckpt_rederivations").add();
      obs::instant("ft", "ckpt_rederive");
    }
  }

  // -- Section IV-F: fresh checksums → locate. ------------------------------
  LocateResult locate_errors(index_t i) {
    copy_d2h(s_, d_e_.view(), ext_scratch_.view());
    const FreshSums fresh =
        fresh_logical_sums(MatrixView<const double>(a_), ext_scratch_.cview(), i);
    const Discrepancy disc = compare_checksums(fresh, ext_scratch_.cview(), loc_tol_);
    return locate(disc, fresh, loc_tol_);
  }

  // Returns the number of checksum entries repaired by the reconstruction
  // path (0 when there was no non-finite damage).
  int apply_corrections(const LocateResult& res, index_t i) {
    auto e = d_e_.view();
    for (const auto& err : res.data_errors) {
      if (err.col >= i) {
        s_.enqueue("ft.correct", FTH_TASK_EFFECTS(FTH_WRITES(e)),
                   [e, err] { e.in_task()(err.row, err.col) -= err.delta; });
      } else {
        a_(err.row, err.col) -= err.delta;
      }
    }
    for (const auto& c : res.chk_col_errors) {
      s_.enqueue("ft.correct", FTH_TASK_EFFECTS(FTH_WRITES(e)),
                 [e, c, n = n_] { e.in_task()(c.index, n) = c.fresh; });
    }
    for (const auto& c : res.chk_row_errors) {
      s_.enqueue("ft.correct", FTH_TASK_EFFECTS(FTH_WRITES(e)),
                 [e, c, n = n_] { e.in_task()(n, c.index) = c.fresh; });
    }
    int chk_repairs = 0;
    if (!res.reconstructions.empty()) chk_repairs = reconstruct(res.reconstructions, i);
    s_.synchronize();
    return chk_repairs;
  }

  // -- Non-finite recovery: element reconstruction from the orthogonal code.
  // Rollback cannot cancel NaN/Inf (x + NaN − NaN stays NaN), but the
  // damage is line-confined by construction when locate() hands out
  // targets: re-derive each element as (maintained code) − (line sum with
  // the damaged elements zeroed), then repair any checksum storage the
  // damage propagated through. Uses ext_scratch_, which locate_errors just
  // filled with the post-rollback extended matrix.
  int reconstruct(const std::vector<ReconstructTarget>& targets, index_t i) {
    auto ext = ext_scratch_.view();
    for (const auto& t : targets) ext(t.row, t.col) = 0.0;
    const FreshSums base =
        fresh_logical_sums(MatrixView<const double>(a_), ext_scratch_.cview(), i);
    auto e = d_e_.view();
    for (const auto& t : targets) {
      const double code = t.use_row_code ? ext(t.row, n_) : ext(n_, t.col);
      const double rest = t.use_row_code ? base.row[static_cast<std::size_t>(t.row)]
                                         : base.col[static_cast<std::size_t>(t.col)];
      if (!std::isfinite(code) || !std::isfinite(rest)) {
        throw recovery_error(
            "non-finite damage: the orthogonal code needed for element "
            "reconstruction is itself lost");
      }
      const double v = code - rest;
      ext(t.row, t.col) = v;
      if (t.col >= i) {
        s_.enqueue("ft.reconstruct", FTH_TASK_EFFECTS(FTH_WRITES(e)),
                    [e, t, v] { e.in_task()(t.row, t.col) = v; });
      } else {
        a_(t.row, t.col) = v;
      }
      ++rep_.reconstructions;
      obs::counter_metric("ft.reconstructions").add();
      obs::instant("ft", "reconstruction");
    }
    // Checksum storage the non-finite values propagated through (e.g. the
    // checksum-row entry of a poisoned column) is re-derived from the
    // now-finite data; the corner is the checksum-row total.
    const FreshSums fixed =
        fresh_logical_sums(MatrixView<const double>(a_), ext_scratch_.cview(), i);
    int chk_repairs = 0;
    for (index_t r = 0; r < n_; ++r) {
      if (std::isfinite(ext(r, n_))) continue;
      const double f = fixed.row[static_cast<std::size_t>(r)];
      if (!std::isfinite(f))
        throw recovery_error("non-finite checksum column with non-finite fresh row sum");
      ext(r, n_) = f;
      s_.enqueue("ft.reconstruct", FTH_TASK_EFFECTS(FTH_WRITES(e)),
                  [e, r, n = n_, f] { e.in_task()(r, n) = f; });
      ++chk_repairs;
    }
    for (index_t c = 0; c < n_; ++c) {
      if (std::isfinite(ext(n_, c))) continue;
      const double f = fixed.col[static_cast<std::size_t>(c)];
      if (!std::isfinite(f))
        throw recovery_error("non-finite checksum row with non-finite fresh column sum");
      ext(n_, c) = f;
      s_.enqueue("ft.reconstruct", FTH_TASK_EFFECTS(FTH_WRITES(e)),
                  [e, c, n = n_, f] { e.in_task()(n, c) = f; });
      ++chk_repairs;
    }
    if (!std::isfinite(ext(n_, n_))) {
      double corner = 0.0;
      for (index_t c = 0; c < n_; ++c) corner += ext(n_, c);
      ext(n_, n_) = corner;
      s_.enqueue("ft.reconstruct", FTH_TASK_EFFECTS(FTH_WRITES(e)),
                  [e, n = n_, corner] { e.in_task()(n, n) = corner; });
      ++chk_repairs;
    }
    return chk_repairs;
  }

  void inject_at_boundary(index_t boundary, index_t i_next) {
    const auto due = inj_->due(boundary, total_boundaries_, i_next, n_, scale_max_);
    auto e = d_e_.view();
    bool device_faults = false;
    for (const auto& f : due) {
      if (f.col >= i_next) {
        s_.enqueue("fault.inject", FTH_TASK_EFFECTS(FTH_WRITES(e)), [e, f] {
          auto eh = e.in_task();
          eh(f.row, f.col) = f.apply(eh(f.row, f.col));
        });
        device_faults = true;
      } else {
        a_(f.row, f.col) = f.apply(a_(f.row, f.col));
      }
      inj_->record(boundary, f);
    }
    // One drain for the whole batch: the per-fault synchronize of the first
    // implementation serialized multi-fault injection for no benefit.
    if (device_faults) s_.synchronize();
  }

  void final_phase() {
    // Final sweep: catches errors that never propagated (finished H, the
    // last trailing column, or checksum elements hit after the last check).
    if (opt_.final_sweep) {
      rep_.final_sweep_ran = true;
      WallTimer t;
      obs::TraceSpan sweep_span("ft", "final_sweep");
      LocateResult res;
      try {
        res = locate_errors(n_ - 1);
      } catch (const recovery_error& e) {
        abort_recovery(rep_.outcome, "ft_gehrd", AbortReason::AmbiguousPattern,
                       total_boundaries_, 0, 0.0, threshold_,
                       std::string("final sweep: ") + e.what());
      }
      const int chk_repairs = apply_corrections(res, n_ - 1);
      rep_.final_sweep_corrections =
          static_cast<int>(res.data_errors.size() + res.chk_col_errors.size() +
                           res.chk_row_errors.size() + res.reconstructions.size()) +
          chk_repairs;
      rep_.data_corrections += static_cast<int>(res.data_errors.size());
      rep_.checksum_corrections +=
          static_cast<int>(res.chk_col_errors.size() + res.chk_row_errors.size()) +
          chk_repairs;
      obs::counter_metric("ft.data_corrections").add(res.data_errors.size());
      obs::counter_metric("ft.checksum_corrections")
          .add(res.chk_col_errors.size() + res.chk_row_errors.size() +
               static_cast<std::size_t>(chk_repairs));
      rep_.detect_seconds += t.seconds();
    }

    // Bring down the last column (never part of any panel).
    copy_d2h(s_, d_e_.block(0, n_ - 1, n_, 1), a_.block(0, n_ - 1, n_, 1));

    // Section IV-E: verify + correct the Householder storage once.
    if (opt_.protect_q) {
      WallTimer qt;
      obs::TraceSpan q_span("ft", "q_verify");
      const double q_tol = 1e3 * eps<double>() * static_cast<double>(n_) *
                           std::max(1.0, scale_max_);
      const auto qres = qp_.verify_and_correct(a_, n_ - 1, q_tol);
      rep_.q_corrections += qres.corrections;
      obs::counter_metric("ft.q_corrections").add(static_cast<std::uint64_t>(qres.corrections));
      rep_.q_seconds += qt.seconds();
    }
    rep_.checksum_update_seconds = chk_update_seconds_;
  }

  hybrid::Device& dev_;
  hybrid::Stream& s_;
  MatrixView<double> a_;
  VectorView<double> tau_;
  const FtOptions& opt_;
  fault::Injector* inj_;
  FtReport& rep_;
  hybrid::HybridGehrdStats& st_;

  index_t n_;
  double threshold_ = 0.0;
  double loc_tol_ = 0.0;
  double scale_max_ = 0.0;
  index_t total_boundaries_ = 0;
  double chk_update_seconds_ = 0.0;  // written by stream tasks, read after sync

  hybrid::DeviceMatrix<double> d_e_;
  hybrid::DeviceMatrix<double> d_vce_;
  hybrid::DeviceMatrix<double> d_t_;
  hybrid::DeviceMatrix<double> d_yce_;
  hybrid::DeviceMatrix<double> d_w_;
  hybrid::DeviceMatrix<double> d_ones_;

  Matrix<double> t_host_;
  Matrix<double> y_host_;
  Matrix<double> ckpt_;
  Matrix<double> ckpt_chkrow_;  ///< pre-iteration checksum-row segment over the panel
  Matrix<double> new_chkrow_;   ///< re-encoded segment for the finished panel
  Matrix<double> ext_scratch_;  ///< host snapshot of the extended matrix (locate/reconstruct)
  QProtector qp_;
  QProtector::PanelChecksums pending_q_;

  fault::FaultPlane* plane_ = nullptr;  ///< optional in-flight fault plane (not owned)
  double ckpt_sum1_ = 0.0;  ///< dual integrity sums of the panel checkpoint, at save
  double ckpt_sum2_ = 0.0;
  double ckpt_csum1_ = 0.0;  ///< dual integrity sums of the checksum-row pre-image
  double ckpt_csum2_ = 0.0;
};

}  // namespace

void ft_gehrd(hybrid::Device& dev, MatrixView<double> a, VectorView<double> tau,
              const FtOptions& opt, fault::Injector* injector, FtReport* report,
              hybrid::HybridGehrdStats* stats) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "ft_gehrd: matrix must be square");
  FTH_CHECK(tau.size() >= std::max<index_t>(n - 1, 0), "ft_gehrd: tau too short");
  FTH_CHECK(opt.nb >= 1, "ft_gehrd: block size must be positive");

  FtReport local_rep;
  hybrid::HybridGehrdStats local_st;
  FtReport& rep = report != nullptr ? *report : local_rep;
  hybrid::HybridGehrdStats& st = stats != nullptr ? *stats : local_st;
  rep = {};
  st = {};

  obs::TraceSpan run_span("ft", "gehrd", "n", static_cast<double>(n));
  WallTimer total;
  const hybrid::detail::StatsScope scope(dev);

  if (n > 2) {
    FtDriver driver(dev, a, tau, opt, injector, rep, st);
    driver.run();
  } else {
    for (index_t i = 0; i + 1 < n; ++i) tau[i] = 0.0;
  }

  st.total_seconds = total.seconds();
  scope.finish(st);
}

}  // namespace fth::ft

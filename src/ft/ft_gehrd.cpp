#include "ft/ft_gehrd.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "ft/checksum.hpp"
#include "ft/q_protect.hpp"
#include "ft/reverse.hpp"
#include "hybrid/dev_blas.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/blas3.hpp"
#include "la/norms.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "lapack/lahr2_impl.hpp"
#include "lapack/orghr.hpp"
#include "lapack/reflectors.hpp"

namespace fth::ft {

index_t ft_total_boundaries(index_t n, index_t nb) {
  index_t count = 0;
  index_t i = 0;
  while (i < n - 1) {
    i += std::min(nb, n - 1 - i);
    ++count;
  }
  return count;
}

namespace {

using hybrid::copy_d2h;
using hybrid::copy_d2h_async;
using hybrid::copy_h2d;
using hybrid::copy_h2d_async;

/// All state of one fault-tolerant reduction (Algorithm 3).
class FtDriver {
 public:
  FtDriver(hybrid::Device& dev, MatrixView<double> a, VectorView<double> tau,
           const FtOptions& opt, fault::Injector* inj, FtReport& rep,
           hybrid::HybridGehrdStats& st)
      : dev_(dev),
        s_(dev.stream()),
        a_(a),
        tau_(tau),
        opt_(opt),
        inj_(inj),
        rep_(rep),
        st_(st),
        n_(a.rows()),
        d_e_(dev, n_ + 1, n_ + 1),
        d_vce_(dev, n_, std::max<index_t>(opt.nb, 1)),
        d_t_(dev, std::max<index_t>(opt.nb, 1), std::max<index_t>(opt.nb, 1)),
        d_yce_(dev, n_ + 1, std::max<index_t>(opt.nb, 1)),
        d_w_(dev, std::max<index_t>(opt.nb, 1), n_ + 1),
        d_ones_(dev, n_ + 1, 1),
        t_host_(std::max<index_t>(opt.nb, 1), std::max<index_t>(opt.nb, 1)),
        y_host_(n_, std::max<index_t>(opt.nb, 1)),
        ckpt_(n_, std::max<index_t>(opt.nb, 1)),
        ckpt_chkrow_(1, std::max<index_t>(opt.nb, 1)),
        new_chkrow_(1, std::max<index_t>(opt.nb, 1)),
        qp_(n_) {
    const double fro = norm_fro(MatrixView<const double>(a_));
    scale_max_ = norm_max(MatrixView<const double>(a_));
    threshold_ = opt.threshold > 0 ? opt.threshold
                                   : default_threshold(fro, n_, opt.threshold_factor);
    loc_tol_ = opt.locate_tol > 0 ? opt.locate_tol : threshold_;
    rep_.threshold = threshold_;
    total_boundaries_ = ft_total_boundaries(n_, opt.nb);
  }

  void run() {
    encode();
    index_t i = 0;
    index_t boundary = 0;
    while (i < n_ - 1) {
      const index_t ib = std::min(opt_.nb, n_ - 1 - i);
      run_iteration(i, ib);
      ensure_clean(boundary + 1, i, ib);
      if (opt_.protect_q) qp_.commit(pending_q_);
      ++boundary;
      ++st_.panels;
      i += ib;
      if (inj_ != nullptr) inject_at_boundary(boundary, i);
    }
    final_phase();
  }

 private:
  // -- Algorithm 3 line 2: encode the matrix on the device. ----------------
  void encode() {
    WallTimer t;
    obs::TraceSpan span("ft", "encode", "n", static_cast<double>(n_));
    copy_h2d_async(s_, MatrixView<const double>(a_), d_e_.block(0, 0, n_, n_));
    hybrid::fill_async(s_, d_ones_.view(), 1.0);
    auto ones_n = VectorView<const double>(d_ones_.view().col(0).data(), n_, 1);
    // Checksum column: row sums.
    hybrid::gemv_async(s_, Trans::No, 1.0,
                       MatrixView<const double>(d_e_.block(0, 0, n_, n_)), ones_n, 0.0,
                       d_e_.block(0, n_, n_, 1).col(0));
    // Checksum row: column sums; corner: grand total.
    auto e = d_e_.view();
    hybrid::gemv_async(s_, Trans::Yes, 1.0,
                       MatrixView<const double>(d_e_.block(0, 0, n_, n_)), ones_n, 0.0,
                       e.row(n_).sub(0, n_));
    s_.enqueue([e, n = n_]() mutable {
      e(n, n) = blas::sum(VectorView<const double>(e.row(n).sub(0, n).data(), n, e.ld()));
    });
    s_.synchronize();
    rep_.encode_seconds += t.seconds();
  }

  // -- One full panel iteration (Algorithm 3 lines 4–11). ------------------
  void run_iteration(index_t i, index_t ib) {
    const index_t vrows = n_ - i - 1;
    const index_t width = n_ + 1 - i - ib;  // trailing data columns + checksum column
    auto e = d_e_.view();

    // Line 4: panel to host + diskless checkpoint of its pre-image. The
    // checkpoint includes the checksum-row segment over the panel columns:
    // those entries are re-encoded at the end of the iteration (see below)
    // and must be restorable on rollback.
    WallTimer panel_timer;
    {
      obs::TraceSpan ckpt_span("ft", "checkpoint_save", "col", static_cast<double>(i));
      copy_d2h_async(s_, MatrixView<const double>(d_e_.block(0, i, n_, ib)),
                     a_.block(0, i, n_, ib));
      copy_d2h(s_, MatrixView<const double>(d_e_.block(n_, i, 1, ib)),
               ckpt_chkrow_.block(0, 0, 1, ib));
      fth::copy(MatrixView<const double>(a_.block(0, i, n_, ib)), ckpt_.block(0, 0, n_, ib));
    }

    // Line 5: host panel factorization; big Y products on the device.
    {
      obs::TraceSpan panel_span("hybrid", "panel", "col", static_cast<double>(i));
      lapack::detail::lahr2_panel(
          a_, i, ib, t_host_.view(), y_host_.view(), tau_.sub(i, ib),
          [&](index_t j, VectorView<const double> vj, VectorView<double> y_col) {
            const index_t cj = i + j;
            auto d_vcol = d_vce_.block(j, j, vj.size(), 1);
            copy_h2d_async(s_, MatrixView<const double>(vj.data(), vj.size(), 1, vj.size()),
                           d_vcol);
            hybrid::gemv_async(
                s_, Trans::No, 1.0,
                MatrixView<const double>(d_e_.block(i + 1, cj + 1, vrows, n_ - cj - 1)),
                VectorView<const double>(d_vcol.col(0)), 0.0,
                d_yce_.block(i + 1, j, vrows, 1).col(0));
            copy_d2h(s_, MatrixView<const double>(d_yce_.block(i + 1, j, vrows, 1)),
                     MatrixView<double>(y_col.data(), vrows, 1, vrows));
          });
    }
    st_.panel_seconds += panel_timer.seconds();

    WallTimer update_timer;
    {
      obs::TraceSpan update_span("hybrid", "update", "col", static_cast<double>(i));
      // Ship clean V / T / corrected lower Y.
      Matrix<double> v = lapack::materialize_v(MatrixView<const double>(a_), i, ib);
      copy_h2d_async(s_, v.cview(), d_vce_.block(0, 0, vrows, ib));
      copy_h2d_async(s_, t_host_.block(0, 0, ib, ib), d_t_.block(0, 0, ib, ib));
      copy_h2d_async(s_, y_host_.block(i + 1, 0, vrows, ib), d_yce_.block(i + 1, 0, vrows, ib));

      // Line 7: column checksums of V (device GEMV with the ones vector).
      auto ones_v = VectorView<const double>(d_ones_.view().col(0).data(), vrows, 1);
      auto dv = d_vce_.view();
      s_.enqueue([this, dv, ones_v, vrows, ib]() mutable {
        WallTimer t;
        blas::gemv(Trans::Yes, 1.0, MatrixView<const double>(dv.block(0, 0, vrows, ib)), ones_v,
                   0.0, dv.row(vrows).sub(0, ib));
        chk_update_seconds_ += t.seconds();
      });

      // Top rows of Yce: Y(0:i+1,:) = A(0:i+1, i+1:n)·V·T.
      hybrid::gemm_async(s_, Trans::No, Trans::No, 1.0,
                         MatrixView<const double>(d_e_.block(0, i + 1, i + 1, vrows)),
                         MatrixView<const double>(d_vce_.block(0, 0, vrows, ib)), 0.0,
                         d_yce_.block(0, 0, i + 1, ib));
      hybrid::trmm_async(s_, Side::Right, Uplo::Upper, Trans::No, Diag::NonUnit, 1.0,
                         MatrixView<const double>(d_t_.block(0, 0, ib, ib)),
                         d_yce_.block(0, 0, i + 1, ib));

      // Line 6: checksum row of Y, Ychk = Ac_chk(i+1:n)·V·T (device).
      auto dy = d_yce_.view();
      auto dt = d_t_.view();
      s_.enqueue([this, e, dv, dy, dt, i, ib, vrows]() mutable {
        WallTimer t;
        auto chk_seg = VectorView<const double>(&e(n_, i + 1), vrows, e.ld());
        auto ychk = dy.row(n_).sub(0, ib);
        blas::gemv(Trans::Yes, 1.0, MatrixView<const double>(dv.block(0, 0, vrows, ib)), chk_seg,
                   0.0, ychk);
        blas::trmv(Uplo::Upper, Trans::Yes, Diag::NonUnit,
                   MatrixView<const double>(dt.block(0, 0, ib, ib)), ychk);
        chk_update_seconds_ += t.seconds();
      });

      // Fetch the finished top rows of Y for the host-side panel fix.
      copy_d2h_async(s_, MatrixView<const double>(d_yce_.block(0, 0, i + 1, ib)),
                     y_host_.block(0, 0, i + 1, ib));
      const hybrid::Event y_upper_ready = s_.record();

      // Line 8+10: extended right update, M and G plus both checksums in one
      // GEMM over the trailing columns and the checksum column.
      hybrid::gemm_async(s_, Trans::No, Trans::Yes, -1.0,
                         MatrixView<const double>(d_yce_.block(0, 0, n_ + 1, ib)),
                         MatrixView<const double>(d_vce_.block(ib - 1, 0, vrows - ib + 2, ib)),
                         1.0, d_e_.block(0, i + ib, n_ + 1, width));

      // Host work overlapped with the device GEMM (the paper's line 9/line 10
      // overlap, plus the Q checksum generation of Section IV-E).
      if (opt_.protect_q) {
        WallTimer qt;
        obs::TraceSpan q_span("ft", "q_checksum");
        pending_q_ = qp_.compute_panel(MatrixView<const double>(a_), i, ib);
        rep_.q_seconds += qt.seconds();
      }
      y_upper_ready.wait();
      blas::trmm(Side::Right, Uplo::Lower, Trans::Yes, Diag::Unit, 1.0,
                 MatrixView<const double>(a_.block(i + 1, i, ib - 1, ib - 1)),
                 y_host_.block(0, 0, i + 1, ib - 1));
      for (index_t j = 0; j + 1 < ib; ++j) {
        blas::axpy(-1.0, VectorView<const double>(y_host_.block(0, j, i + 1, 1).col(0)),
                   a_.block(0, i + 1 + j, i + 1, 1).col(0));
      }

      // Line 11: extended left update; W is retained for reverse computation.
      hybrid::gemm_async(s_, Trans::Yes, Trans::No, 1.0,
                         MatrixView<const double>(d_vce_.block(0, 0, vrows, ib)),
                         MatrixView<const double>(d_e_.block(i + 1, i + ib, vrows, width)), 0.0,
                         d_w_.block(0, 0, ib, width));
      hybrid::trmm_async(s_, Side::Left, Uplo::Upper, Trans::Yes, Diag::NonUnit, 1.0,
                         MatrixView<const double>(d_t_.block(0, 0, ib, ib)),
                         d_w_.block(0, 0, ib, width));
      hybrid::gemm_async(s_, Trans::No, Trans::No, -1.0,
                         MatrixView<const double>(d_vce_.block(0, 0, vrows + 1, ib)),
                         MatrixView<const double>(d_w_.block(0, 0, ib, width)), 1.0,
                         d_e_.block(i + 1, i + ib, vrows + 1, width));

      // The panel columns transition from "trailing data" (checksummed over
      // the full height) to "finished H columns" (checksummed over rows
      // 0..c+1 only — the Householder entries below move under Q's
      // protection). Re-encode the checksum-row segment for the finished
      // columns from the final host data; the pre-image was checkpointed
      // above so rollback can restore it.
      for (index_t j = 0; j < ib; ++j) {
        const index_t c = i + j;
        double cs = 0.0;
        const index_t last = std::min(c + 1, n_ - 1);
        for (index_t r = 0; r <= last; ++r) cs += a_(r, c);
        new_chkrow_(0, j) = cs;
      }
      copy_h2d_async(s_, MatrixView<const double>(new_chkrow_.block(0, 0, 1, ib)),
                     d_e_.block(n_, i, 1, ib));
      s_.synchronize();
    }
    st_.update_seconds += update_timer.seconds();
  }

  // -- Lines 12–16: detect, and if needed roll back / locate / correct / redo.
  void ensure_clean(index_t boundary, index_t i, index_t ib) {
    int attempts = 0;
    for (;;) {
      const double gap = detect();
      if (gap <= threshold_) {
        rep_.max_fault_free_gap = std::max(rep_.max_fault_free_gap, gap);
        return;
      }
      ++rep_.detections;
      obs::instant("ft", "detection");
      obs::counter_metric("ft.detections").add();
      if (++attempts > opt_.max_retries) {
        std::ostringstream os;
        os << "ft_gehrd: iteration " << boundary << " still inconsistent after "
           << opt_.max_retries << " recovery attempts (gap " << gap << " > threshold "
           << threshold_ << ")";
        throw recovery_error(os.str());
      }

      WallTimer rt;
      FtEvent ev;
      ev.boundary = boundary;
      ev.gap = gap;

      {
        obs::TraceSpan rb_span("ft", "rollback", "col", static_cast<double>(i));
        rollback(i, ib);
      }
      ++rep_.rollbacks;
      obs::counter_metric("ft.rollbacks").add();

      LocateResult res;
      {
        obs::TraceSpan loc_span("ft", "locate");
        res = locate_errors(i);
      }
      {
        obs::TraceSpan fix_span("ft", "correct");
        apply_corrections(res, i);
      }
      ev.errors = res.data_errors;
      ev.data_corrections = static_cast<int>(res.data_errors.size());
      ev.checksum_corrections =
          static_cast<int>(res.chk_col_errors.size() + res.chk_row_errors.size());
      ev.checkpoint_only = res.data_errors.empty() && res.chk_col_errors.empty() &&
                           res.chk_row_errors.empty();
      rep_.data_corrections += ev.data_corrections;
      rep_.checksum_corrections += ev.checksum_corrections;
      obs::counter_metric("ft.data_corrections").add(static_cast<std::uint64_t>(ev.data_corrections));
      obs::counter_metric("ft.checksum_corrections")
          .add(static_cast<std::uint64_t>(ev.checksum_corrections));
      if (ev.checkpoint_only) obs::counter_metric("ft.checkpoint_only_recoveries").add();
      rep_.events.push_back(std::move(ev));

      {
        obs::TraceSpan redo_span("ft", "reexec", "col", static_cast<double>(i));
        obs::counter_metric("ft.reexecutions").add();
        run_iteration(i, ib);  // redo from the restored checkpoint
      }
      rep_.recovery_seconds += rt.seconds();
    }
  }

  double detect() {
    WallTimer t;
    obs::TraceSpan span("ft", "detect");
    double gap = 0.0;
    auto e = d_e_.view();
    s_.enqueue([e, n = n_, &gap] {
      const double sre = blas::sum(VectorView<const double>(&e(0, n), n, 1));
      const double sce = blas::sum(VectorView<const double>(&e(n, 0), n, e.ld()));
      gap = std::abs(sre - sce);
    });
    s_.synchronize();
    rep_.detect_seconds += t.seconds();
    obs::histogram_metric("ft.detect_gap").observe(gap);
    obs::counter("ft.detect_gap", gap);
    return gap;
  }

  // -- Line 14: reverse computation (exact, the factors are still live). ---
  void rollback(index_t i, index_t ib) {
    const index_t vrows = n_ - i - 1;
    const index_t width = n_ + 1 - i - ib;
    auto e = d_e_.view();
    auto dv = d_vce_.view();
    auto dy = d_yce_.view();
    auto dw = d_w_.view();
    s_.enqueue([e, dv, dy, dw, i, ib, vrows, width]() mutable {
      // Undo the left update first (it was applied last), then the right.
      reverse_left_update(e.block(i + 1, i + ib, vrows + 1, width),
                          MatrixView<const double>(dv.block(0, 0, vrows + 1, ib)),
                          MatrixView<const double>(dw.block(0, 0, ib, width)));
      reverse_right_update(e.block(0, i + ib, e.rows(), width),
                           MatrixView<const double>(dy.block(0, 0, e.rows(), ib)),
                           MatrixView<const double>(dv.block(ib - 1, 0, vrows - ib + 2, ib)));
    });
    // Restore the checksum-row segment the iteration re-encoded.
    obs::TraceSpan restore_span("ft", "checkpoint_restore", "col", static_cast<double>(i));
    copy_h2d(s_, MatrixView<const double>(ckpt_chkrow_.block(0, 0, 1, ib)),
             d_e_.block(n_, i, 1, ib));
    // Restore the panel (and its host-side upper rows) from the checkpoint.
    fth::copy(MatrixView<const double>(ckpt_.block(0, 0, n_, ib)), a_.block(0, i, n_, ib));
  }

  // -- Section IV-F: fresh checksums → locate. ------------------------------
  LocateResult locate_errors(index_t i) {
    Matrix<double> ext(n_ + 1, n_ + 1);
    copy_d2h(s_, d_e_.view(), ext.view());
    const FreshSums fresh = fresh_logical_sums(MatrixView<const double>(a_), ext.cview(), i);
    const Discrepancy disc = compare_checksums(fresh, ext.cview(), loc_tol_);
    return locate(disc, fresh, loc_tol_);
  }

  void apply_corrections(const LocateResult& res, index_t i) {
    auto e = d_e_.view();
    for (const auto& err : res.data_errors) {
      if (err.col >= i) {
        s_.enqueue([e, err]() mutable { e(err.row, err.col) -= err.delta; });
      } else {
        a_(err.row, err.col) -= err.delta;
      }
    }
    for (const auto& c : res.chk_col_errors) {
      s_.enqueue([e, c, n = n_]() mutable { e(c.index, n) = c.fresh; });
    }
    for (const auto& c : res.chk_row_errors) {
      s_.enqueue([e, c, n = n_]() mutable { e(n, c.index) = c.fresh; });
    }
    s_.synchronize();
  }

  void inject_at_boundary(index_t boundary, index_t i_next) {
    const auto due = inj_->due(boundary, total_boundaries_, i_next, n_, scale_max_);
    auto e = d_e_.view();
    for (const auto& f : due) {
      if (f.col >= i_next) {
        s_.enqueue([e, f]() mutable { e(f.row, f.col) += f.delta; });
        s_.synchronize();
      } else {
        a_(f.row, f.col) += f.delta;
      }
      inj_->record(boundary, f);
    }
  }

  void final_phase() {
    // Final sweep: catches errors that never propagated (finished H, the
    // last trailing column, or checksum elements hit after the last check).
    if (opt_.final_sweep) {
      rep_.final_sweep_ran = true;
      WallTimer t;
      obs::TraceSpan sweep_span("ft", "final_sweep");
      const LocateResult res = locate_errors(n_ - 1);
      apply_corrections(res, n_ - 1);
      rep_.final_sweep_corrections =
          static_cast<int>(res.data_errors.size() + res.chk_col_errors.size() +
                           res.chk_row_errors.size());
      rep_.data_corrections += static_cast<int>(res.data_errors.size());
      rep_.checksum_corrections +=
          static_cast<int>(res.chk_col_errors.size() + res.chk_row_errors.size());
      obs::counter_metric("ft.data_corrections").add(res.data_errors.size());
      obs::counter_metric("ft.checksum_corrections")
          .add(res.chk_col_errors.size() + res.chk_row_errors.size());
      rep_.detect_seconds += t.seconds();
    }

    // Bring down the last column (never part of any panel).
    copy_d2h(s_, MatrixView<const double>(d_e_.block(0, n_ - 1, n_, 1)),
             a_.block(0, n_ - 1, n_, 1));

    // Section IV-E: verify + correct the Householder storage once.
    if (opt_.protect_q) {
      WallTimer qt;
      obs::TraceSpan q_span("ft", "q_verify");
      const double q_tol = 1e3 * eps<double>() * static_cast<double>(n_) *
                           std::max(1.0, scale_max_);
      const auto qres = qp_.verify_and_correct(a_, n_ - 1, q_tol);
      rep_.q_corrections += qres.corrections;
      obs::counter_metric("ft.q_corrections").add(static_cast<std::uint64_t>(qres.corrections));
      rep_.q_seconds += qt.seconds();
    }
    rep_.checksum_update_seconds = chk_update_seconds_;
  }

  hybrid::Device& dev_;
  hybrid::Stream& s_;
  MatrixView<double> a_;
  VectorView<double> tau_;
  const FtOptions& opt_;
  fault::Injector* inj_;
  FtReport& rep_;
  hybrid::HybridGehrdStats& st_;

  index_t n_;
  double threshold_ = 0.0;
  double loc_tol_ = 0.0;
  double scale_max_ = 0.0;
  index_t total_boundaries_ = 0;
  double chk_update_seconds_ = 0.0;  // written by stream tasks, read after sync

  hybrid::DeviceMatrix<double> d_e_;
  hybrid::DeviceMatrix<double> d_vce_;
  hybrid::DeviceMatrix<double> d_t_;
  hybrid::DeviceMatrix<double> d_yce_;
  hybrid::DeviceMatrix<double> d_w_;
  hybrid::DeviceMatrix<double> d_ones_;

  Matrix<double> t_host_;
  Matrix<double> y_host_;
  Matrix<double> ckpt_;
  Matrix<double> ckpt_chkrow_;  ///< pre-iteration checksum-row segment over the panel
  Matrix<double> new_chkrow_;   ///< re-encoded segment for the finished panel
  QProtector qp_;
  QProtector::PanelChecksums pending_q_;
};

}  // namespace

void ft_gehrd(hybrid::Device& dev, MatrixView<double> a, VectorView<double> tau,
              const FtOptions& opt, fault::Injector* injector, FtReport* report,
              hybrid::HybridGehrdStats* stats) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "ft_gehrd: matrix must be square");
  FTH_CHECK(tau.size() >= std::max<index_t>(n - 1, 0), "ft_gehrd: tau too short");
  FTH_CHECK(opt.nb >= 1, "ft_gehrd: block size must be positive");

  FtReport local_rep;
  hybrid::HybridGehrdStats local_st;
  FtReport& rep = report != nullptr ? *report : local_rep;
  hybrid::HybridGehrdStats& st = stats != nullptr ? *stats : local_st;
  rep = {};
  st = {};

  obs::TraceSpan run_span("ft", "gehrd", "n", static_cast<double>(n));
  WallTimer total;
  const hybrid::detail::StatsScope scope(dev);

  if (n > 2) {
    FtDriver driver(dev, a, tau, opt, injector, rep, st);
    driver.run();
  } else {
    for (index_t i = 0; i + 1 < n; ++i) tau[i] = 0.0;
  }

  st.total_seconds = total.seconds();
  scope.finish(st);
}

}  // namespace fth::ft

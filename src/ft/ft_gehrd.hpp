// Fault-tolerant hybrid Hessenberg reduction — Algorithm 3 of the paper.
//
// Extends the hybrid reduction with:
//  * ABFT encoding of the device matrix (one checksum column + row),
//  * checksum-preserving extended right/left block updates (Theorem 1),
//  * per-iteration detection by comparing the two checksum grand totals,
//  * bitwise reverse computation of the last block updates on detection,
//  * a diskless checkpoint of the panel, restored before re-execution,
//  * location by fresh-vs-maintained checksum comparison and in-place
//    correction (multiple simultaneous errors allowed when their positions
//    do not form a rectangle),
//  * separate host-side checksums for the write-once Householder vectors
//    (the Q factor), generated on the otherwise idle CPU while the device
//    updates the trailing matrix and verified once at the end.
#pragma once

#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "ft/locate.hpp"
#include "ft/recovery.hpp"
#include "hybrid/hybrid_gehrd.hpp"

namespace fth::fault {
class FaultPlane;
}

namespace fth::ft {

struct FtOptions {
  index_t nb = 32;  ///< panel width (the FT loop is blocked all the way down)
  /// Detection threshold for |Sre − Sce|; 0 selects
  /// threshold_factor·eps·n·‖A‖_F (see default_threshold()).
  double threshold = 0.0;
  double threshold_factor = 500.0;
  /// Location tolerance for per-row/column fresh-vs-maintained comparison;
  /// 0 selects a scaled default.
  double locate_tol = 0.0;
  bool protect_q = true;   ///< maintain + verify the Q checksums
  bool final_sweep = true; ///< full checksum verification after the last iteration
  int max_retries = 3;     ///< re-executions of a single iteration before giving up
  /// Optional in-flight fault plane: the driver binds it to the device,
  /// registers its protected surfaces, and brackets recovery re-execution
  /// so armed faults can strike mid-update / mid-transfer / mid-recovery.
  fault::FaultPlane* fault_plane = nullptr;
};

/// One detection + recovery episode.
struct FtEvent {
  index_t boundary = 0;  ///< iteration (1-based) whose end-of-iteration check fired
  double gap = 0.0;      ///< |Sre − Sce| observed
  int data_corrections = 0;
  int checksum_corrections = 0;
  int reconstructions = 0;       ///< non-finite elements re-derived from the codes
  bool checkpoint_only = false;  ///< rollback+restore sufficed (error was in the panel copy)
  bool panel_poisoned = false;   ///< the panel tripwire aborted mid-factorization
  std::vector<LocatedError> errors;
};

struct FtReport {
  int detections = 0;
  int rollbacks = 0;
  int data_corrections = 0;
  int checksum_corrections = 0;
  int q_corrections = 0;
  int reconstructions = 0;      ///< non-finite elements re-derived from the codes
  int ckpt_rederivations = 0;   ///< corrupt checkpoints rebuilt from the device pre-image
  int panel_aborts = 0;         ///< panel factorizations aborted by the non-finite tripwire
  bool final_sweep_ran = false;
  int final_sweep_corrections = 0;
  double threshold = 0.0;
  double max_fault_free_gap = 0.0;  ///< largest |Sre−Sce| seen on clean iterations
  // Host-observed time in the resilience machinery:
  double encode_seconds = 0.0;
  double checksum_update_seconds = 0.0;  ///< Vce/Yce construction (device)
  double detect_seconds = 0.0;
  double recovery_seconds = 0.0;  ///< rollback + locate + correct + redo
  double q_seconds = 0.0;
  std::vector<FtEvent> events;
  /// How the run ended. Clean/Recovered on normal return; Unrecoverable is
  /// filled in before the structured recovery_error is thrown, so a caller
  /// catching the throw still gets the full context here.
  RecoveryOutcome outcome;
};

/// Reduce `a` to Hessenberg form with transient-error resilience.
///
/// Same contract as hybrid::hybrid_gehrd (LAPACK-layout output in `a`,
/// scalars in `tau`); `injector` optionally plants soft errors at iteration
/// boundaries; `report`/`stats` receive resilience and performance
/// telemetry. Throws fth::recovery_error if an error pattern exceeds the
/// code's correction capability after max_retries attempts.
void ft_gehrd(hybrid::Device& dev, MatrixView<double> a, VectorView<double> tau,
              const FtOptions& opt = {}, fault::Injector* injector = nullptr,
              FtReport* report = nullptr, hybrid::HybridGehrdStats* stats = nullptr);

/// Number of panel iterations ft_gehrd will execute for size n, block nb
/// (needed to aim Moment-based fault specs).
index_t ft_total_boundaries(index_t n, index_t nb);

}  // namespace fth::ft

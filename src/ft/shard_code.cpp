#include "ft/shard_code.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace fth::ft {

ShardLayout make_shard_layout(index_t n, int data_shards) {
  FTH_CHECK(n >= 0, "shard layout dimension must be non-negative");
  FTH_CHECK(data_shards >= 1, "a shard layout needs at least one data shard");
  ShardLayout lay;
  lay.n = n;
  lay.data_shards = data_shards;
  lay.w_max = (n + data_shards - 1) / data_shards;
  return lay;
}

void scatter_shards(MatrixView<const double> a, const ShardLayout& lay,
                    std::vector<Matrix<double>>& shards) {
  FTH_CHECK(a.rows() == lay.n && a.cols() == lay.n, "scatter_shards: matrix/layout mismatch");
  shards.clear();
  shards.reserve(static_cast<std::size_t>(lay.data_shards));
  for (int d = 0; d < lay.data_shards; ++d) {
    Matrix<double>& sh = shards.emplace_back(lay.rows(), lay.w_max);
    sh.fill(0.0);
    const index_t owned = lay.owned_cols(d);
    for (index_t l = 0; l < owned; ++l) {
      const index_t c = lay.global_of(d, l);
      double sum = 0.0;
      for (index_t r = 0; r < lay.n; ++r) {
        const double v = a(r, c);
        sh.view()(r, l) = v;
        sum += v;
      }
      sh.view()(lay.n, l) = sum;
    }
  }
}

void encode_parity(const ShardLayout& lay, const std::vector<Matrix<double>>& shards,
                   Matrix<double>& parity) {
  FTH_CHECK(static_cast<int>(shards.size()) == lay.data_shards,
            "encode_parity: shard count mismatch");
  parity = Matrix<double>(lay.rows(), lay.w_max);
  parity.fill(0.0);
  MatrixView<double> p = parity.view();
  for (const Matrix<double>& sh : shards) {
    MatrixView<const double> s = sh.cview();
    for (index_t l = 0; l < lay.w_max; ++l)
      for (index_t r = 0; r < lay.rows(); ++r) p(r, l) += s(r, l);
  }
}

void reconstruct_shard(const ShardLayout& lay, const std::vector<Matrix<double>>& shards,
                       MatrixView<const double> parity, int lost_slot,
                       Matrix<double>& out) {
  FTH_CHECK(lost_slot >= 0 && lost_slot < lay.data_shards,
            "reconstruct_shard: lost slot out of range");
  FTH_CHECK(parity.rows() == lay.rows() && parity.cols() == lay.w_max,
            "reconstruct_shard: parity geometry mismatch");
  out = Matrix<double>(lay.rows(), lay.w_max);
  MatrixView<double> o = out.view();
  fth::copy(parity, o);
  for (int d = 0; d < lay.data_shards; ++d) {
    if (d == lost_slot) continue;
    MatrixView<const double> s = shards[static_cast<std::size_t>(d)].cview();
    for (index_t l = 0; l < lay.w_max; ++l)
      for (index_t r = 0; r < lay.rows(); ++r) o(r, l) -= s(r, l);
  }
}

double code_row_gap(MatrixView<const double> shard, index_t cols) {
  const index_t n = shard.rows() - 1;
  const index_t w = cols < 0 ? shard.cols() : std::min(cols, shard.cols());
  double gap = 0.0;
  for (index_t l = 0; l < w; ++l) {
    double sum = 0.0;
    for (index_t r = 0; r < n; ++r) {
      const double v = shard(r, l);
      if (!std::isfinite(v)) return std::numeric_limits<double>::infinity();
      sum += v;
    }
    const double g = std::abs(shard(n, l) - sum);
    if (!(g <= gap)) gap = std::isfinite(g) ? g : std::numeric_limits<double>::infinity();
  }
  return gap;
}

void gather_shards(const ShardLayout& lay, const std::vector<Matrix<double>>& shards,
                   MatrixView<double> a, index_t first_col) {
  FTH_CHECK(a.rows() == lay.n && a.cols() == lay.n, "gather_shards: matrix/layout mismatch");
  for (index_t c = first_col; c < lay.n; ++c) {
    MatrixView<const double> s = shards[static_cast<std::size_t>(lay.slot_of(c))].cview();
    const index_t l = lay.local_of(c);
    for (index_t r = 0; r < lay.n; ++r) a(r, c) = s(r, l);
  }
}

}  // namespace fth::ft

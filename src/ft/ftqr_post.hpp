// Post-processing ABFT QR — the related-work baseline (Du, Luszczek,
// Tomov, Dongarra, ScalA'11: "Soft error resilient QR factorization for
// hybrid system with GPGPU").
//
// The scheme the paper contrasts itself against (Section I/II): encode the
// input with checksum COLUMNS ([A | A·e | A·ω]) and let them ride through
// the factorization untouched — Qᵀ applied to A also transforms the
// carried columns, so at the end Qᵀ·(Ae) must equal R·e. Errors are
// neither detected nor corrected during the run; a single post-processing
// pass at the end:
//  * computes d = carried − R·e (and d_w with the weighted code),
//  * a non-zero d reveals a fault; the elementwise ratio d_w/d identifies
//    the corrupted column q (one ratio per error — with the two codes
//    carried here, ONE error is correctable),
//  * the column is repaired in place: R(:, q) += d.
//
// The contrast this enables experimentally (bench_related_qr):
//  * one error anywhere in the trailing matrix → both schemes recover;
//  * errors in two different iterations → the post-processing scheme's
//    discrepancies superpose and correction fails, while the on-line
//    scheme of the paper recovers one (or more) per iteration boundary;
//  * the error propagates through the whole trailing matrix before the
//    post-processing pass even looks (Fig. 2's motivation).
#pragma once

#include <string>
#include <vector>

#include "la/matrix.hpp"

namespace fth::ft {

struct FtQrReport {
  bool fault_detected = false;
  bool corrected = false;
  index_t corrected_column = -1;
  double gap = 0.0;         ///< max |carried − R·e| discrepancy observed
  double threshold = 0.0;
  std::string failure;      ///< non-empty when the pattern exceeds the code's reach
  /// The (possibly repaired) dense R factor. After a successful correction
  /// Q·r reconstructs the clean input exactly; note the repaired column may
  /// carry sub-diagonal components (the corrupted-data Q is not the
  /// clean-data Q — the price of fixing only the right factor).
  Matrix<double> r{0, 0};
};

/// One planned fault for the QR study: element (row, col) of the working
/// matrix gets `delta` added after `boundary` panels have completed.
struct QrFault {
  index_t boundary = 1;
  index_t row = 0;
  index_t col = 0;
  double delta = 0.0;
};

/// Factor `a` (m×n, m ≥ n) by QR with post-processing ABFT. On success the
/// factored form (R + reflectors, LAPACK layout) is in `a` with scalars in
/// `tau`. Faults in `faults` are injected at the given panel boundaries.
/// Correction capacity: one corrupted column total (the two-code limit the
/// paper quotes for this family); beyond it the report carries `failure`.
void ftqr_post(MatrixView<double> a, VectorView<double> tau,
               const std::vector<QrFault>& faults = {}, FtQrReport* report = nullptr,
               index_t nb = 32);

}  // namespace fth::ft

// Multi-device Hessenberg reduction with coded device-loss recovery.
//
// pool_gehrd runs the hybrid blocked reduction (hybrid_gehrd, Algorithm 2)
// with the trailing matrix column-sharded round-robin over the data
// members of a DevicePool plus one parity member holding the elementwise
// sum of the data shards (ft/shard_code.hpp). Every shard additionally
// carries a maintained column-sum code row, so each member's integrity is
// verifiable locally.
//
// Loss protocol (DESIGN.md §13):
//   detect   — every host wait on a device is an Event::wait_for with a
//              timeout (silent stall / hard death), and every iteration
//              boundary verifies each member's code row (poisoned output);
//   contain  — the lost member's stream is killed (DevicePool::mark_lost),
//              which discards its queue but lets Event markers complete so
//              no host wait can hang;
//   repair   — the lost shard is reconstructed on the host as
//              parity − Σ survivors and remapped onto the parity device;
//              the group is then degraded (no parity left). A loss detected
//              during a panel restarts that panel from a host checkpoint; a
//              loss detected at the update boundary needs no retry at all —
//              survivors already carry the iteration's updates.
//   escalate — a second loss (or any loss with D == 1) exceeds the code's
//              correction radius: abort_recovery throws recovery_error with
//              AbortReason::DeviceLost. Never returns garbage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plane.hpp"
#include "ft/recovery.hpp"
#include "hybrid/pool.hpp"
#include "la/matrix.hpp"
#include "obs/health.hpp"

namespace fth::ft {

struct PoolGehrdOptions {
  index_t nb = 32;   ///< panel width
  index_t nx = 128;  ///< crossover: below this the reduction runs on the host
  /// Detection threshold for the per-shard code-row gap; 0 derives
  /// default_threshold(‖A‖_F, n, threshold_factor) like ft_gehrd.
  double threshold = 0.0;
  double threshold_factor = 500.0;
  /// Health-check timeout *ceiling* for every host wait on a device.
  /// Generous by default: a false timeout on a slow-but-healthy member
  /// would declare a spurious loss (safe, but burns the redundancy
  /// budget). `FTH_POOL_TIMEOUT_MS` overrides it at run time.
  double timeout_ms = 2000.0;
  /// Let the HealthMonitor shrink the wait allowance below the ceiling
  /// once it has seen enough wait latencies (obs/health.hpp); the
  /// allowance never exceeds timeout_ms, so false losses stay no more
  /// likely than with the fixed timeout.
  bool adaptive_timeout = true;
  /// Share an externally owned monitor (tests, the future service); the
  /// driver owns a private one when null.
  obs::HealthMonitor* health = nullptr;
  /// Optional fault plane; the driver binds it to the pool, registers each
  /// member's shard buffer as the loss surface, and marks encoding done.
  fault::FaultPlane* plane = nullptr;
};

struct PoolGehrdReport {
  RecoveryOutcome outcome;   ///< Clean / Recovered / (throw on Unrecoverable)
  int devices = 0;           ///< pool size the run started with
  int data_shards = 0;       ///< Ddata (devices − 1, or 1 when devices == 1)
  int losses = 0;            ///< device losses detected
  int reconstructions = 0;   ///< shards rebuilt from parity + survivors
  int remaps = 0;            ///< shards remapped onto the parity device
  int panel_retries = 0;     ///< iterations restarted from the panel checkpoint
  bool degraded = false;     ///< finished without a live parity member
  int lost_device = -1;      ///< ordinal of the (first) lost member
  std::uint64_t run_id = 0;  ///< journal run id this run was stamped with
  /// Incident capsule paths written during the run (empty unless capsule
  /// emission is armed, obs/incident.hpp).
  std::vector<std::string> incidents;
  /// Final per-member health snapshots, one per pool ordinal. Always
  /// filled (the driver owns or borrows a monitor for every run); on the
  /// n ≤ nx host-only path the members simply saw no waits.
  std::vector<obs::DeviceHealthSnapshot> health;
};

/// Reduce `a` (n×n, column-major) to upper Hessenberg form, reflectors
/// stored LAPACK-style below the subdiagonal and in `tau` — same contract
/// as lapack::gehrd / hybrid::hybrid_gehrd. Throws recovery_error with
/// AbortReason::DeviceLost when losses exceed the redundancy group's
/// correction radius.
void pool_gehrd(hybrid::DevicePool& pool, MatrixView<double> a, VectorView<double> tau,
                const PoolGehrdOptions& opt = {}, PoolGehrdReport* rep = nullptr);

}  // namespace fth::ft

#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace fth::obs {

int Histogram::bucket_of(double v) noexcept {
  if (!(v > 0.0)) return 0;  // zero, negatives and NaN land in the underflow bucket
  // Boundary table instead of floor(log10(v)): log10 is not guaranteed
  // correctly rounded, so exact decade boundaries (1e-18, 1e12, ...) could
  // land one bucket off. The boundaries are parsed with strtod, which IS
  // correctly rounded and therefore bit-identical to the literals callers
  // compare against. bounds[i] = 10^(kMinExp+i), one past each decade, so
  // the bucket index is simply the count of boundaries ≤ v: 0 = underflow,
  // kBuckets-1 = overflow (reached at 10^(kMaxExp+1), and by ±inf).
  static const std::array<double, kBuckets - 1> bounds = [] {
    std::array<double, kBuckets - 1> b{};
    for (int i = 0; i < kBuckets - 1; ++i) {
      char lit[16];
      std::snprintf(lit, sizeof lit, "1e%d", kMinExp + i);
      b[static_cast<std::size_t>(i)] = std::strtod(lit, nullptr);
    }
    return b;
  }();
  return static_cast<int>(std::upper_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
}

void Histogram::observe(double v) noexcept {
  std::lock_guard lock(m_);
  if (data_.count == 0) {
    data_.min = v;
    data_.max = v;
  } else {
    data_.min = std::min(data_.min, v);
    data_.max = std::max(data_.max, v);
  }
  ++data_.count;
  data_.sum += v;
  ++data_.buckets[static_cast<std::size_t>(bucket_of(v))];
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard lock(m_);
  return data_;
}

void Histogram::reset() {
  std::lock_guard lock(m_);
  data_ = Snapshot{};
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(m_);
  return counters_[name];  // value-constructed at zero on first use
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard lock(m_);
  return histograms_[name];
}

void Registry::reset() {
  std::lock_guard lock(m_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

Registry::CounterValues Registry::counter_values() const {
  std::lock_guard lock(m_);
  CounterValues out;
  for (const auto& [name, c] : counters_) out.emplace(name, c.value());
  return out;
}

Registry::CounterValues Registry::counter_delta(const CounterValues& now,
                                                const CounterValues& base) {
  CounterValues out;
  for (const auto& [name, v] : now) {
    const auto it = base.find(name);
    const std::uint64_t b = it == base.end() ? 0 : it->second;
    if (v > b) out.emplace(name, v - b);
  }
  return out;
}

namespace {

void append_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof hex, "\\u%04x", c);
      os << hex;
    } else {
      os << c;
    }
  }
  os << '"';
}

void append_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    os << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

}  // namespace

void Registry::write_json(std::ostream& os) const {
  std::lock_guard lock(m_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    append_json_string(os, name);
    os << ':' << c.value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    const auto s = h.snapshot();
    append_json_string(os, name);
    os << ":{\"count\":" << s.count << ",\"sum\":";
    append_double(os, s.sum);
    os << ",\"min\":";
    append_double(os, s.count > 0 ? s.min : 0.0);
    os << ",\"max\":";
    append_double(os, s.count > 0 ? s.max : 0.0);
    os << ",\"min_exp\":" << Histogram::kMinExp << ",\"buckets\":[";
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (b > 0) os << ',';
      os << s.buckets[static_cast<std::size_t>(b)];
    }
    os << "]}";
  }
  os << "}}";
}

std::string Registry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

Counter& counter_metric(const std::string& name) { return Registry::global().counter(name); }

Histogram& histogram_metric(const std::string& name) {
  return Registry::global().histogram(name);
}

}  // namespace fth::obs

#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace fth::obs {

int Histogram::bucket_of(double v) noexcept {
  if (!(v > 0.0)) return 0;  // zero, negatives and NaN land in the underflow bucket
  if (std::isinf(v)) return kBuckets - 1;  // the int cast below would be UB
  const int exp = static_cast<int>(std::floor(std::log10(v)));
  if (exp < kMinExp) return 0;
  if (exp > kMaxExp) return kBuckets - 1;
  return exp - kMinExp + 1;
}

void Histogram::observe(double v) noexcept {
  std::lock_guard lock(m_);
  if (data_.count == 0) {
    data_.min = v;
    data_.max = v;
  } else {
    data_.min = std::min(data_.min, v);
    data_.max = std::max(data_.max, v);
  }
  ++data_.count;
  data_.sum += v;
  ++data_.buckets[static_cast<std::size_t>(bucket_of(v))];
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard lock(m_);
  return data_;
}

void Histogram::reset() {
  std::lock_guard lock(m_);
  data_ = Snapshot{};
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(m_);
  return counters_[name];  // value-constructed at zero on first use
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard lock(m_);
  return histograms_[name];
}

void Registry::reset() {
  std::lock_guard lock(m_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

namespace {

void append_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof hex, "\\u%04x", c);
      os << hex;
    } else {
      os << c;
    }
  }
  os << '"';
}

void append_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    os << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

}  // namespace

void Registry::write_json(std::ostream& os) const {
  std::lock_guard lock(m_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    append_json_string(os, name);
    os << ':' << c.value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    const auto s = h.snapshot();
    append_json_string(os, name);
    os << ":{\"count\":" << s.count << ",\"sum\":";
    append_double(os, s.sum);
    os << ",\"min\":";
    append_double(os, s.count > 0 ? s.min : 0.0);
    os << ",\"max\":";
    append_double(os, s.count > 0 ? s.max : 0.0);
    os << ",\"min_exp\":" << Histogram::kMinExp << ",\"buckets\":[";
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (b > 0) os << ',';
      os << s.buckets[static_cast<std::size_t>(b)];
    }
    os << "]}";
  }
  os << "}}";
}

std::string Registry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

Counter& counter_metric(const std::string& name) { return Registry::global().counter(name); }

Histogram& histogram_metric(const std::string& name) {
  return Registry::global().histogram(name);
}

}  // namespace fth::obs

#include "obs/dag.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/json.hpp"
#include "obs/trace.hpp"

namespace fth::obs::dag {

namespace {

// ---------------------------------------------------------------------------
// Recording: per-thread event buffers behind uncontended mutexes — the same
// shape as the trace recorder's ThreadBuffers. Every hook bails on one
// relaxed atomic load while the recorder is idle, which is the whole
// zero-overhead-when-off story fth_checkinfo asserts for Release benches.

enum class Ev : std::uint8_t {
  Enqueue,
  TaskBegin,
  TaskEnd,
  Transfer,
  WaitBegin,
  WaitEnd,
  SpanBegin,
  SpanEnd,
  Mark,
};

struct DagEvent {
  double ts = 0.0;
  double value = 0.0;        // transfer payload bytes
  std::uint64_t stream = 0;
  std::uint64_t ticket = 0;
  const char* a = "";        // task label / span cat / wait kind / mark label
  const char* b = "";        // span name / wait call site
  Ev kind = Ev::Mark;
  bool in_task = false;      // wait executed on a stream worker (dev.wait_event)
};

struct DagBuffer {
  std::mutex m;
  std::vector<DagEvent> events;
  std::uint32_t tid = 0;     // trace-recorder tid, shared with trace files
  bool is_worker = false;    // saw a TaskBegin (stream worker thread)
};

std::atomic<bool> g_on{false};
thread_local bool t_in_task = false;
thread_local int t_skipped_spans = 0;  // open stream-category spans (see on_span)

class DagRecorder {
 public:
  static DagRecorder& instance() {
    static DagRecorder r;
    return r;
  }

  void start() {
    std::lock_guard lock(registry_m_);
    for (auto& b : buffers_) {
      std::lock_guard bl(b->m);
      b->events.clear();
      b->is_worker = false;
    }
    g_on.store(true, std::memory_order_relaxed);
  }

  /// Non-destructive copy of every thread's buffered events (tid-tagged);
  /// the recorder stays armed. Feeds dag::tail_json for incident capsules.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::vector<DagEvent>>> snapshot_events() {
    std::lock_guard lock(registry_m_);
    std::vector<std::pair<std::uint32_t, std::vector<DagEvent>>> out;
    out.reserve(buffers_.size());
    for (auto& b : buffers_) {
      std::lock_guard bl(b->m);
      if (b->events.empty()) continue;
      out.emplace_back(b->tid, b->events);
    }
    return out;
  }

  /// Disarm and move out every thread's events (tid-tagged).
  std::vector<std::pair<std::uint32_t, std::vector<DagEvent>>> drain() {
    g_on.store(false, std::memory_order_relaxed);
    std::lock_guard lock(registry_m_);
    std::vector<std::pair<std::uint32_t, std::vector<DagEvent>>> out;
    out.reserve(buffers_.size());
    for (auto& b : buffers_) {
      std::lock_guard bl(b->m);
      if (b->events.empty()) continue;
      out.emplace_back(b->tid, std::move(b->events));
      b->events.clear();
    }
    return out;
  }

  void record(const DagEvent& ev) noexcept {
    DagBuffer& b = local_buffer();
    std::lock_guard lock(b.m);
    if (ev.kind == Ev::TaskBegin) b.is_worker = true;
    b.events.push_back(ev);
  }

 private:
  DagRecorder() = default;

  DagBuffer& local_buffer() {
    thread_local std::shared_ptr<DagBuffer> buf = [this] {
      auto b = std::make_shared<DagBuffer>();
      b->tid = obs::detail::current_tid();
      std::lock_guard lock(registry_m_);
      buffers_.push_back(b);
      return b;
    }();
    return *buf;
  }

  std::mutex registry_m_;
  std::vector<std::shared_ptr<DagBuffer>> buffers_;
};

// ---------------------------------------------------------------------------
// JSON helpers (same idiom as obs/profile.cpp).

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof hex, "\\u%04x", c);
      out += hex;
    } else {
      out.push_back(c);
    }
  }
}

void append_num(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

/// Device compute (as opposed to transfers / markers / the cross-stream
/// wait task): the tasks the roofline scenario scales and the lookahead
/// scenarios may leave in flight.
[[nodiscard]] bool is_dev_compute(std::string_view label) {
  return starts_with(label, "dev.") && label != "dev.wait_event";
}

struct Interval {
  double b, e;
};

double merge_union(std::vector<Interval>& v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end(), [](const Interval& a, const Interval& b) { return a.b < b.b; });
  std::size_t out = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i].b <= v[out].e) {
      v[out].e = std::max(v[out].e, v[i].e);
    } else {
      v[++out] = v[i];
    }
  }
  v.resize(out + 1);
  double len = 0.0;
  for (const Interval& iv : v) len += iv.e - iv.b;
  return len;
}

double intersect_len(const std::vector<Interval>& a, const std::vector<Interval>& b) {
  double len = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].b, b[j].b);
    const double hi = std::min(a[i].e, b[j].e);
    if (hi > lo) len += hi - lo;
    if (a[i].e < b[j].e) ++i;
    else ++j;
  }
  return len;
}

// ---------------------------------------------------------------------------
// Assembly: turn the drained per-thread event streams into a Graph.

using TaskKey = std::pair<std::uint64_t, std::uint64_t>;  // (stream, ticket)

struct Assembler {
  Graph g;
  std::map<TaskKey, std::int64_t> task_of;

  [[nodiscard]] std::int64_t lookup(std::uint64_t stream, std::uint64_t ticket) const {
    const auto it = task_of.find({stream, ticket});
    return it == task_of.end() ? -1 : it->second;
  }

  void run(std::vector<std::pair<std::uint32_t, std::vector<DagEvent>>>& bufs) {
    if (bufs.empty()) return;

    bool any_ts = false;
    for (const auto& [tid, evs] : bufs) {
      for (const DagEvent& ev : evs) {
        if (!any_ts) {
          g.t0_us = g.t1_us = ev.ts;
          any_ts = true;
        } else {
          g.t0_us = std::min(g.t0_us, ev.ts);
          g.t1_us = std::max(g.t1_us, ev.ts);
        }
      }
    }

    // 1. Task nodes, created in (stream, ticket) order so node indices do
    //    not depend on which thread registered its buffer first.
    struct EnqRef {
      std::uint64_t stream, ticket;
      const char* label;
      double ts;
    };
    std::vector<EnqRef> enqs;
    for (const auto& [tid, evs] : bufs)
      for (const DagEvent& ev : evs)
        if (ev.kind == Ev::Enqueue)
          enqs.push_back(EnqRef{ev.stream, ev.ticket, ev.a, ev.ts});
    std::sort(enqs.begin(), enqs.end(), [](const EnqRef& a, const EnqRef& b) {
      return std::tie(a.stream, a.ticket) < std::tie(b.stream, b.ticket);
    });
    for (const EnqRef& e : enqs) {
      Node nd;
      nd.kind = NodeKind::Task;
      nd.label = e.label;
      nd.stream = e.stream;
      nd.ticket = e.ticket;
      nd.enq_us = e.ts;
      nd.t0_us = nd.t1_us = e.ts;  // refined by TaskBegin/TaskEnd below
      task_of.emplace(TaskKey{e.stream, e.ticket}, static_cast<std::int64_t>(g.nodes.size()));
      g.nodes.push_back(std::move(nd));
    }

    // 2. Worker threads: task execution intervals, transfer payloads, and
    //    cross-stream waits executed inside dev.wait_event tasks.
    for (const auto& [tid, evs] : bufs) {
      std::int64_t cur = -1;
      double pending_wait_ts = -1.0;
      std::int64_t pending_cause = -1;
      for (const DagEvent& ev : evs) {
        switch (ev.kind) {
          case Ev::TaskBegin:
            cur = lookup(ev.stream, ev.ticket);
            if (cur >= 0) {
              g.nodes[cur].t0_us = ev.ts;
              g.nodes[cur].tid = tid;
            }
            break;
          case Ev::TaskEnd:
            if (cur >= 0) g.nodes[cur].t1_us = ev.ts;
            cur = -1;
            break;
          case Ev::Transfer: {
            const std::int64_t t = lookup(ev.stream, ev.ticket);
            if (t >= 0) g.nodes[t].bytes += ev.value;
            break;
          }
          case Ev::WaitBegin:
            if (ev.in_task) {
              pending_wait_ts = ev.ts;
              pending_cause = ev.ticket > 0 ? lookup(ev.stream, ev.ticket) : -1;
            }
            break;
          case Ev::WaitEnd:
            if (ev.in_task && pending_wait_ts >= 0.0) {
              if (pending_cause >= 0 && cur >= 0)
                g.edges.push_back(Edge{pending_cause, cur, EdgeKind::Cause});
              pending_wait_ts = -1.0;
              pending_cause = -1;
            }
            break;
          default:
            break;
        }
      }
    }
    for (Node& nd : g.nodes)
      if (nd.kind == NodeKind::Task && nd.t1_us < nd.t0_us) nd.t1_us = g.t1_us;

    // 3. Host threads: span nodes, the Work/Wait/Mark chain, task tags and
    //    Enq/Cause edges. A thread is "host" iff it never began a task.
    struct HostRef {
      std::uint32_t tid;
      const std::vector<DagEvent>* evs;
      std::size_t enq_count;
      double first_ts;
    };
    std::vector<HostRef> hosts;
    for (const auto& [tid, evs] : bufs) {
      bool worker = false;
      std::size_t boundary = 0, enq_count = 0;
      for (const DagEvent& ev : evs) {
        if (ev.kind == Ev::TaskBegin) worker = true;
        if (ev.kind == Ev::Enqueue) ++enq_count;
        if (ev.kind == Ev::Enqueue || ev.kind == Ev::WaitBegin || ev.kind == Ev::Mark ||
            ev.kind == Ev::SpanBegin)
          ++boundary;
      }
      if (!worker && boundary > 0) hosts.push_back(HostRef{tid, &evs, enq_count, evs.front().ts});
    }
    std::sort(hosts.begin(), hosts.end(), [](const HostRef& a, const HostRef& b) {
      return std::tie(b.enq_count, a.first_ts, a.tid) < std::tie(a.enq_count, b.first_ts, b.tid);
    });

    for (std::size_t h = 0; h < hosts.size(); ++h)
      build_host_chain(hosts[h].tid, *hosts[h].evs, /*primary=*/h == 0);

    // 4. Fifo edges: ticket order within each stream. Task nodes were
    //    created sorted by (stream, ticket), so neighbours suffice.
    for (std::size_t i = 1; i < g.nodes.size(); ++i) {
      if (g.nodes[i].kind != NodeKind::Task) break;  // tasks are a prefix
      if (g.nodes[i].stream == g.nodes[i - 1].stream)
        g.edges.push_back(
            Edge{static_cast<std::int64_t>(i - 1), static_cast<std::int64_t>(i), EdgeKind::Fifo});
    }

    // 5. An event_record task signals its Event from inside the task body,
    //    so a dependent wait can wake a few µs before the worker stamps
    //    TaskEnd. The signal is the task's true completion: clamp its end
    //    down to the earliest dependent wake so every Cause edge satisfies
    //    pred.t1 ≤ succ's CPM position (the CP ≤ wall invariant). Only
    //    lowers t1, so the task's outgoing Fifo edges stay consistent.
    for (const Edge& e : g.edges) {
      if (e.kind != EdgeKind::Cause) continue;
      Node& src = g.nodes[static_cast<std::size_t>(e.src)];
      const Node& dst = g.nodes[static_cast<std::size_t>(e.dst)];
      if (src.t1_us > dst.t1_us && dst.t1_us >= src.t0_us) src.t1_us = dst.t1_us;
    }
  }

 private:
  void build_host_chain(std::uint32_t tid, const std::vector<DagEvent>& evs, bool primary) {
    bool has_chain = false;
    for (const DagEvent& ev : evs)
      if (ev.kind == Ev::Enqueue || ev.kind == Ev::WaitBegin || ev.kind == Ev::Mark)
        has_chain = true;

    std::int64_t prev = -1;
    double seg_start = evs.front().ts;
    std::int32_t iter = -1;
    std::int8_t phase = 0;
    double wait_t0 = -1.0;
    const char* wait_kind = "";
    const char* wait_site = "";
    std::uint64_t wait_stream = 0, wait_ticket = 0;
    std::vector<std::int64_t> span_stack;

    const auto add_chain = [&](Node&& nd) -> std::int64_t {
      nd.tid = tid;
      const auto idx = static_cast<std::int64_t>(g.nodes.size());
      g.nodes.push_back(std::move(nd));
      if (prev >= 0) g.edges.push_back(Edge{prev, idx, EdgeKind::Seq});
      prev = idx;
      if (primary) g.host_order.push_back(idx);
      return idx;
    };
    const auto close_work = [&](double ts) -> std::int64_t {
      Node nd;
      nd.kind = NodeKind::Work;
      nd.label = "host";
      nd.t0_us = seg_start;
      nd.t1_us = std::max(seg_start, ts);
      nd.iter = iter;
      nd.phase = phase;
      seg_start = ts;
      return add_chain(std::move(nd));
    };

    for (const DagEvent& ev : evs) {
      switch (ev.kind) {
        case Ev::SpanBegin: {
          Node nd;
          nd.kind = NodeKind::Span;
          nd.label = std::string(ev.a) + "/" + ev.b;
          nd.t0_us = ev.ts;
          nd.t1_us = g.t1_us;  // refined when the matching end arrives
          nd.tid = tid;
          if (std::strcmp(ev.a, "hybrid") == 0) {
            if (std::strcmp(ev.b, "panel") == 0) {
              ++iter;
              phase = 1;
            } else if (std::strcmp(ev.b, "update") == 0) {
              phase = 2;
            }
          }
          nd.iter = iter;
          nd.phase = phase;
          span_stack.push_back(static_cast<std::int64_t>(g.nodes.size()));
          g.nodes.push_back(std::move(nd));
          break;
        }
        case Ev::SpanEnd:
          if (!span_stack.empty()) {
            Node& nd = g.nodes[span_stack.back()];
            nd.t1_us = ev.ts;
            if (nd.label == "hybrid/panel" || nd.label == "hybrid/update") phase = 0;
            span_stack.pop_back();
          }
          break;
        case Ev::Enqueue: {
          const std::int64_t work = close_work(ev.ts);
          const std::int64_t task = lookup(ev.stream, ev.ticket);
          if (task >= 0) {
            g.nodes[task].iter = iter;
            g.nodes[task].phase = phase;
            g.nodes[task].enq_after = work;
            g.edges.push_back(Edge{work, task, EdgeKind::Enq});
          }
          break;
        }
        case Ev::WaitBegin:
          if (!ev.in_task) {
            close_work(ev.ts);
            wait_t0 = ev.ts;
            wait_kind = ev.a;
            wait_site = ev.b;
            wait_stream = ev.stream;
            wait_ticket = ev.ticket;
          }
          break;
        case Ev::WaitEnd: {
          if (ev.in_task || wait_t0 < 0.0) break;
          Node nd;
          nd.kind = NodeKind::Wait;
          nd.label = wait_kind;
          nd.site = wait_site;
          nd.stream = wait_stream;
          nd.ticket = wait_ticket;
          nd.t0_us = wait_t0;
          nd.t1_us = ev.ts;
          nd.iter = iter;
          nd.phase = phase;
          nd.cause = wait_ticket > 0 ? lookup(wait_stream, wait_ticket) : -1;
          const std::int64_t cause = nd.cause;
          const std::int64_t idx = add_chain(std::move(nd));
          if (cause >= 0) g.edges.push_back(Edge{cause, idx, EdgeKind::Cause});
          seg_start = ev.ts;
          wait_t0 = -1.0;
          break;
        }
        case Ev::Mark: {
          close_work(ev.ts);
          Node nd;
          nd.kind = NodeKind::Mark;
          nd.label = ev.a;
          nd.t0_us = nd.t1_us = ev.ts;
          nd.iter = iter;
          nd.phase = phase;
          add_chain(std::move(nd));
          break;
        }
        default:
          break;
      }
    }
    // Tail segment: host activity after the last boundary (result checks,
    // report writing) still belongs on the chain.
    if (has_chain) close_work(evs.back().ts);
  }
};

/// CPM node duration: Wait nodes are points at t1 (their blocked interval
/// overlaps the cause task — counting it would double-book the path), and
/// Span nodes are context only.
[[nodiscard]] double cpm_dur_us(const Node& nd) {
  if (nd.kind == NodeKind::Wait || nd.kind == NodeKind::Span) return 0.0;
  return nd.dur_us();
}

/// Display label used in path aggregation and blocking tables.
[[nodiscard]] std::string display_label(const Node& nd) {
  switch (nd.kind) {
    case NodeKind::Work: return "host";
    case NodeKind::Wait: return nd.site.empty() ? nd.label : nd.site;
    default: return nd.label;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public recorder surface.

bool enabled() noexcept { return g_on.load(std::memory_order_relaxed); }

void start() { DagRecorder::instance().start(); }

Graph stop() {
  if (!enabled()) {
    g_on.store(false, std::memory_order_relaxed);
    return Graph{};
  }
  auto bufs = DagRecorder::instance().drain();
  Assembler as;
  as.run(bufs);
  // Render the cause edges as Perfetto flow arrows when a trace file is
  // being recorded alongside: finished task → the host wait it released.
  if (obs::detail::trace_file_active()) {
    double id = 1.0;
    for (const Edge& e : as.g.edges) {
      if (e.kind != EdgeKind::Cause) continue;
      const Node& src = as.g.nodes[e.src];
      const Node& dst = as.g.nodes[e.dst];
      obs::detail::raw_event('s', "dag", "dep", src.t1_us, src.tid, id);
      obs::detail::raw_event('f', "dag", "dep", dst.t1_us, dst.tid, id);
      id += 1.0;
    }
  }
  return as.g;
}

std::string tail_json(std::size_t max_nodes) {
  if (!enabled()) return "[]";
  auto bufs = DagRecorder::instance().snapshot_events();
  Assembler as;
  as.run(bufs);
  const std::vector<Node>& nodes = as.g.nodes;
  // Newest slice of the timeline: sort node indices by end time, keep the
  // trailing max_nodes, then render them back in chronological order.
  std::vector<std::size_t> idx(nodes.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return nodes[a].t1_us < nodes[b].t1_us;
  });
  if (idx.size() > max_nodes)
    idx.erase(idx.begin(), idx.end() - static_cast<std::ptrdiff_t>(max_nodes));
  static constexpr const char* kKindName[] = {"task", "wait", "work", "span", "mark"};
  std::string out = "[";
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const Node& nd = nodes[idx[i]];
    if (i > 0) out += ',';
    out += "{\"kind\":\"";
    out += kKindName[static_cast<std::size_t>(nd.kind)];
    out += "\",\"label\":\"";
    append_escaped(out, nd.label);
    out += "\",\"iter\":" + std::to_string(nd.iter);
    out += ",\"tid\":" + std::to_string(nd.tid);
    out += ",\"stream\":" + std::to_string(nd.stream);
    out += ",\"t0_us\":";
    append_num(out, nd.t0_us);
    out += ",\"t1_us\":";
    append_num(out, nd.t1_us);
    if (!nd.site.empty()) {
      out += ",\"site\":\"";
      append_escaped(out, nd.site);
      out += "\"";
    }
    out += "}";
  }
  out += "]";
  return out;
}

void mark(const char* label) noexcept {
  if (!enabled()) return;
  DagEvent ev;
  ev.ts = obs::detail::now_us();
  ev.kind = Ev::Mark;
  ev.a = label;
  DagRecorder::instance().record(ev);
}

void init_from_env() {
  static bool armed = false;
  const char* env = std::getenv("FTH_DAG");
  if (armed || env == nullptr || env[0] == '\0' || std::strcmp(env, "0") == 0) return;
  armed = true;
  start();
  static std::string path = std::strcmp(env, "1") == 0
                                ? "fth_dag_" + std::to_string(static_cast<long>(::getpid())) +
                                      ".json"
                                : std::string(env);
  std::atexit([] {
    if (!enabled()) return;
    const Graph g = stop();
    std::ofstream os(path);
    if (os) os << g.to_json() << "\n";
  });
}

namespace detail {

bool active() noexcept { return enabled(); }

bool thread_in_task() noexcept { return t_in_task; }

void on_enqueue(std::uint64_t stream, std::uint64_t ticket, const char* label) noexcept {
  if (!enabled()) return;
  DagEvent ev;
  ev.ts = obs::detail::now_us();
  ev.kind = Ev::Enqueue;
  ev.stream = stream;
  ev.ticket = ticket;
  ev.a = label;
  DagRecorder::instance().record(ev);
}

void on_task_begin(std::uint64_t stream, std::uint64_t ticket, const char* label) noexcept {
  t_in_task = true;
  if (!enabled()) return;
  DagEvent ev;
  ev.ts = obs::detail::now_us();
  ev.kind = Ev::TaskBegin;
  ev.stream = stream;
  ev.ticket = ticket;
  ev.a = label;
  DagRecorder::instance().record(ev);
}

void on_task_end(std::uint64_t stream, std::uint64_t ticket) noexcept {
  t_in_task = false;
  if (!enabled()) return;
  DagEvent ev;
  ev.ts = obs::detail::now_us();
  ev.kind = Ev::TaskEnd;
  ev.stream = stream;
  ev.ticket = ticket;
  DagRecorder::instance().record(ev);
}

void on_transfer(std::uint64_t stream, std::uint64_t ticket, double bytes) noexcept {
  if (!enabled()) return;
  DagEvent ev;
  ev.ts = obs::detail::now_us();
  ev.kind = Ev::Transfer;
  ev.stream = stream;
  ev.ticket = ticket;
  ev.value = bytes;
  DagRecorder::instance().record(ev);
}

void on_wait_begin(const char* kind, const char* site, std::uint64_t stream,
                   std::uint64_t ticket) noexcept {
  if (!enabled()) return;
  DagEvent ev;
  ev.ts = obs::detail::now_us();
  ev.kind = Ev::WaitBegin;
  ev.stream = stream;
  ev.ticket = ticket;
  ev.a = kind;
  ev.b = site != nullptr ? site : "";
  ev.in_task = t_in_task;
  DagRecorder::instance().record(ev);
}

void on_wait_end() noexcept {
  if (!enabled()) return;
  DagEvent ev;
  ev.ts = obs::detail::now_us();
  ev.kind = Ev::WaitEnd;
  ev.in_task = t_in_task;
  DagRecorder::instance().record(ev);
}

void on_span(char ph, const char* cat, const char* name, double ts_us) noexcept {
  if (!enabled() || t_in_task) return;
  // Stream spans (tasks, synchronize, event_wait) arrive through the
  // dedicated hooks; recording them again would double-count. 'E' events
  // carry no category, so balance the skipped 'B' with a per-thread depth.
  if (ph == 'B' && std::strcmp(cat, "stream") == 0) {
    ++t_skipped_spans;
    return;
  }
  if (ph == 'E' && t_skipped_spans > 0) {
    --t_skipped_spans;
    return;
  }
  DagEvent ev;
  ev.ts = ts_us;
  ev.kind = ph == 'B' ? Ev::SpanBegin : Ev::SpanEnd;
  ev.a = cat;
  ev.b = name;
  DagRecorder::instance().record(ev);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Graph serialization.

std::size_t Graph::count(NodeKind k) const noexcept {
  std::size_t c = 0;
  for (const Node& nd : nodes)
    if (nd.kind == k) ++c;
  return c;
}

std::size_t Graph::count(EdgeKind k) const noexcept {
  std::size_t c = 0;
  for (const Edge& e : edges)
    if (e.kind == k) ++c;
  return c;
}

std::string Graph::to_json() const {
  std::string out;
  out.reserve(64 + nodes.size() * 96 + edges.size() * 16);
  out += "{\"version\":1,\"t0_us\":";
  append_num(out, t0_us);
  out += ",\"t1_us\":";
  append_num(out, t1_us);
  out += ",\"host_order\":[";
  for (std::size_t i = 0; i < host_order.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(host_order[i]);
  }
  out += "],\"nodes\":[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& nd = nodes[i];
    if (i > 0) out += ',';
    out += '[';
    out += std::to_string(static_cast<int>(nd.kind));
    out += ',';
    out += std::to_string(static_cast<int>(nd.phase));
    out += ',';
    out += std::to_string(nd.iter);
    out += ',';
    out += std::to_string(nd.tid);
    out += ',';
    out += std::to_string(nd.stream);
    out += ',';
    out += std::to_string(nd.ticket);
    out += ',';
    append_num(out, nd.t0_us);
    out += ',';
    append_num(out, nd.t1_us);
    out += ',';
    append_num(out, nd.enq_us);
    out += ',';
    append_num(out, nd.bytes);
    out += ',';
    out += std::to_string(nd.cause);
    out += ',';
    out += std::to_string(nd.enq_after);
    out += ",\"";
    append_escaped(out, nd.label);
    out += "\",\"";
    append_escaped(out, nd.site);
    out += "\"]";
  }
  out += "],\"edges\":[";
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i > 0) out += ',';
    out += '[';
    out += std::to_string(edges[i].src);
    out += ',';
    out += std::to_string(edges[i].dst);
    out += ',';
    out += std::to_string(static_cast<int>(edges[i].kind));
    out += ']';
  }
  out += "]}";
  return out;
}

Graph parse_graph(const json::Value& root) {
  Graph g;
  g.t0_us = root.at("t0_us").as_number();
  g.t1_us = root.at("t1_us").as_number();
  for (const json::Value& v : root.at("host_order").as_array())
    g.host_order.push_back(static_cast<std::int64_t>(v.as_number()));
  for (const json::Value& v : root.at("nodes").as_array()) {
    const json::Array& row = v.as_array();
    if (row.size() != 14) throw json::parse_error("dag: node row must have 14 fields");
    Node nd;
    nd.kind = static_cast<NodeKind>(static_cast<int>(row[0].as_number()));
    nd.phase = static_cast<std::int8_t>(row[1].as_number());
    nd.iter = static_cast<std::int32_t>(row[2].as_number());
    nd.tid = static_cast<std::uint32_t>(row[3].as_number());
    nd.stream = static_cast<std::uint64_t>(row[4].as_number());
    nd.ticket = static_cast<std::uint64_t>(row[5].as_number());
    nd.t0_us = row[6].as_number();
    nd.t1_us = row[7].as_number();
    nd.enq_us = row[8].as_number();
    nd.bytes = row[9].as_number();
    nd.cause = static_cast<std::int64_t>(row[10].as_number());
    nd.enq_after = static_cast<std::int64_t>(row[11].as_number());
    nd.label = row[12].as_string();
    nd.site = row[13].as_string();
    g.nodes.push_back(std::move(nd));
  }
  for (const json::Value& v : root.at("edges").as_array()) {
    const json::Array& row = v.as_array();
    if (row.size() != 3) throw json::parse_error("dag: edge row must have 3 fields");
    Edge e;
    e.src = static_cast<std::int64_t>(row[0].as_number());
    e.dst = static_cast<std::int64_t>(row[1].as_number());
    e.kind = static_cast<EdgeKind>(static_cast<int>(row[2].as_number()));
    if (e.src < 0 || e.dst < 0 || e.src >= static_cast<std::int64_t>(g.nodes.size()) ||
        e.dst >= static_cast<std::int64_t>(g.nodes.size()))
      throw json::parse_error("dag: edge endpoint out of range");
    g.edges.push_back(e);
  }
  return g;
}

// ---------------------------------------------------------------------------
// Analysis: CPM forward/backward passes + cause attribution.

Analysis analyze(const Graph& g) {
  Analysis an;
  an.wall_s = g.wall_s();
  const std::size_t count = g.nodes.size();
  an.slack_s.assign(count, 0.0);
  if (count == 0) return an;

  // Topological order by recorded time: every edge kind satisfies
  // pred.t1 ≤ succ.cpm_start, where a Wait's CPM position is its end.
  std::vector<std::size_t> order(count);
  for (std::size_t i = 0; i < count; ++i) order[i] = i;
  const auto key_ts = [&](std::size_t i) {
    const Node& nd = g.nodes[i];
    return nd.kind == NodeKind::Wait ? nd.t1_us : nd.t0_us;
  };
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ta = key_ts(a), tb = key_ts(b);
    return ta != tb ? ta < tb : a < b;
  });

  std::vector<std::vector<std::pair<std::int64_t, EdgeKind>>> in_edges(count), out_edges(count);
  for (const Edge& e : g.edges) {
    in_edges[static_cast<std::size_t>(e.dst)].emplace_back(e.src, e.kind);
    out_edges[static_cast<std::size_t>(e.src)].emplace_back(e.dst, e.kind);
  }

  const auto forward = [&](bool with_fifo, std::vector<double>& ef,
                           std::vector<std::int64_t>& pred) {
    ef.assign(count, 0.0);
    pred.assign(count, -1);
    for (const std::size_t idx : order) {
      const Node& nd = g.nodes[idx];
      if (nd.kind == NodeKind::Span) continue;
      double base = 0.0;
      std::int64_t best = -1;
      for (const auto& [src, kind] : in_edges[idx]) {
        if (!with_fifo && kind == EdgeKind::Fifo) continue;
        const double f = ef[static_cast<std::size_t>(src)];
        if (f > base) {
          base = f;
          best = src;
        }
      }
      ef[idx] = base + cpm_dur_us(nd);
      pred[idx] = best;
    }
  };

  std::vector<double> ef_full, ef_data;
  std::vector<std::int64_t> pred_full, pred_data;
  forward(/*with_fifo=*/true, ef_full, pred_full);
  forward(/*with_fifo=*/false, ef_data, pred_data);

  std::size_t sink = 0;
  for (std::size_t i = 0; i < count; ++i)
    if (ef_full[i] > ef_full[sink]) sink = i;
  an.critical_path_s = ef_full[sink] / 1e6;
  double makespan_data = 0.0;
  for (std::size_t i = 0; i < count; ++i) makespan_data = std::max(makespan_data, ef_data[i]);
  an.critical_path_data_s = makespan_data / 1e6;

  // Per-node slack on the data-only graph: makespan minus the longest path
  // through the node (backward pass over the reverse time order).
  std::vector<double> bl(count, 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t idx = *it;
    const Node& nd = g.nodes[idx];
    if (nd.kind == NodeKind::Span) continue;
    double tail = 0.0;
    for (const auto& [dst, kind] : out_edges[idx]) {
      if (kind == EdgeKind::Fifo) continue;
      tail = std::max(tail, bl[static_cast<std::size_t>(dst)]);
    }
    bl[idx] = tail + cpm_dur_us(nd);
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (g.nodes[i].kind == NodeKind::Span) continue;
    const double through = ef_data[i] + bl[i] - cpm_dur_us(g.nodes[i]);
    an.slack_s[i] = std::max(0.0, makespan_data - through) / 1e6;
  }

  // Critical-path composition (full graph), aggregated by (kind, label).
  {
    std::map<std::pair<int, std::string>, PathSegment> segs;
    std::int64_t cur = static_cast<std::int64_t>(sink);
    while (cur >= 0) {
      const Node& nd = g.nodes[cur];
      PathSegment& s = segs[{static_cast<int>(nd.kind), display_label(nd)}];
      s.kind = nd.kind;
      s.label = display_label(nd);
      ++s.count;
      s.seconds += cpm_dur_us(nd) / 1e6;
      cur = pred_full[static_cast<std::size_t>(cur)];
    }
    for (auto& [key, seg] : segs) an.path.push_back(std::move(seg));
    std::sort(an.path.begin(), an.path.end(),
              [](const PathSegment& a, const PathSegment& b) { return a.seconds > b.seconds; });
  }

  // Blocking-edge attribution.
  {
    std::map<std::string, CauseGroup> groups;
    for (const Node& nd : g.nodes) {
      if (nd.kind != NodeKind::Wait) continue;
      const double sec = nd.dur_us() / 1e6;
      an.host_blocked_s += sec;
      const bool attributed = nd.cause >= 0 && !nd.site.empty();
      if (attributed) an.attributed_s += sec;
      const std::string on =
          nd.cause >= 0 ? g.nodes[static_cast<std::size_t>(nd.cause)].label : "unresolved";
      const std::string key = nd.site + "|" + nd.label + "|" + on;
      CauseGroup& cg = groups[key];
      cg.site = nd.site;
      cg.kind = nd.label;
      cg.waiting_on = on;
      ++cg.count;
      cg.seconds += sec;
    }
    for (auto& [key, cg] : groups) an.blocking.push_back(std::move(cg));
    std::sort(an.blocking.begin(), an.blocking.end(),
              [](const CauseGroup& a, const CauseGroup& b) { return a.seconds > b.seconds; });
    an.attributed_frac = an.host_blocked_s > 0.0 ? an.attributed_s / an.host_blocked_s : 1.0;
  }
  return an;
}

// ---------------------------------------------------------------------------
// What-if list scheduler (model assumptions in DESIGN.md §12).

Prediction simulate(const Graph& g, const Scenario& sc) {
  Prediction p;
  p.scenario = sc;
  if (g.host_order.empty()) {
    p.wall_s = g.wall_s();
    p.speedup = 1.0;
    return p;
  }

  // Tasks each chain node enqueues, in enqueue order.
  std::unordered_map<std::int64_t, std::vector<std::size_t>> enq_at;
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    const Node& nd = g.nodes[i];
    if (nd.kind == NodeKind::Task && nd.enq_after >= 0) enq_at[nd.enq_after].push_back(i);
  }
  for (auto& [chain, tasks] : enq_at)
    std::sort(tasks.begin(), tasks.end(), [&](std::size_t a, std::size_t b) {
      return g.nodes[a].enq_us < g.nodes[b].enq_us;
    });

  // Cross-stream dependencies (dev.wait_event): task → its cause tasks.
  std::unordered_map<std::size_t, std::vector<std::size_t>> task_deps;
  for (const Edge& e : g.edges)
    if (e.kind == EdgeKind::Cause && g.nodes[e.dst].kind == NodeKind::Task)
      task_deps[static_cast<std::size_t>(e.dst)].push_back(static_cast<std::size_t>(e.src));

  const int vstreams = std::max(1, sc.streams);
  const auto vstream_of = [&](const Node& tk) -> int {
    // Update-phase work rotates over the extra streams by iteration; panel
    // and unphased work keeps virtual stream 0 (the paper's lookahead
    // pipeline shape: the panel round-trips must not queue behind the
    // trailing update).
    if (vstreams == 1 || tk.phase != 2 || tk.iter < 0) return 0;
    return 1 + static_cast<int>(tk.iter % (vstreams >= kInfiniteStreams
                                               ? kInfiniteStreams
                                               : vstreams - 1));
  };

  struct StreamState {
    double max_all = 0.0;              // finish of every simulated task
    double max_keep = 0.0;             // finish of non-elidable tasks
    std::map<std::int32_t, double> upd;  // per-iteration update-compute finish
  };
  std::map<std::uint64_t, StreamState> sstate;
  std::map<std::pair<std::uint64_t, int>, double> vready;
  std::unordered_map<std::size_t, double> finish;
  std::vector<Interval> busy, blocked;

  double t = 0.0;
  for (const std::int64_t idx : g.host_order) {
    const Node& nd = g.nodes[static_cast<std::size_t>(idx)];
    if (nd.kind == NodeKind::Work || nd.kind == NodeKind::Mark) {
      t += nd.dur_us();
      const auto it = enq_at.find(idx);
      if (it == enq_at.end()) continue;
      for (const std::size_t ti : it->second) {
        const Node& tk = g.nodes[ti];
        double d = tk.dur_us();
        if (sc.dev_scale != 1.0 && is_dev_compute(tk.label)) d *= sc.dev_scale;
        double begin = std::max(t, vready[{tk.stream, vstream_of(tk)}]);
        if (const auto dep = task_deps.find(ti); dep != task_deps.end())
          for (const std::size_t c : dep->second)
            if (const auto f = finish.find(c); f != finish.end())
              begin = std::max(begin, f->second);
        const double end = begin + d;
        vready[{tk.stream, vstream_of(tk)}] = end;
        finish[ti] = end;
        if (d > 0.0) busy.push_back(Interval{begin, end});
        StreamState& ss = sstate[tk.stream];
        ss.max_all = std::max(ss.max_all, end);
        // Lookahead may leave any update-phase task in flight except d2h:
        // a landed d2h is host data the driver may read right after the
        // wait, so eliding it would break a true dependency (DESIGN.md §12).
        const bool elidable =
            tk.phase == 2 && tk.iter >= 0 && !starts_with(tk.label, "d2h");
        if (elidable) {
          double& f = ss.upd[tk.iter];
          f = std::max(f, end);
        } else {
          ss.max_keep = std::max(ss.max_keep, end);
        }
      }
    } else if (nd.kind == NodeKind::Wait) {
      double until = t;
      if (starts_with(nd.label, "event_wait")) {
        // Event waits pin the host to a marker in the stream (the staging-
        // buffer reuse guards, DESIGN.md §7 U2). A lookahead pipeline
        // double-buffers those stages, so a wait on a recent update-phase
        // marker disappears; everything else remains a hard dependency.
        bool elided = false;
        if (nd.cause >= 0) {
          // The newest update generation in flight at this wait: the wait's
          // own iteration in update phase, the previous one in panel phase
          // (iteration j's update is not enqueued yet while panel j runs).
          const std::int32_t newest = nd.phase == 2 ? nd.iter : nd.iter - 1;
          const Node& cause = g.nodes[static_cast<std::size_t>(nd.cause)];
          elided = sc.lookahead > 0 && cause.phase == 2 && cause.iter >= 0 &&
                   cause.iter > newest - sc.lookahead;
        }
        if (const auto f = finish.find(static_cast<std::size_t>(nd.cause)); nd.cause >= 0 &&
            !elided && f != finish.end())
          until = std::max(until, f->second);
      } else {
        const StreamState& ss = sstate[nd.stream];
        if (sc.lookahead <= 0 || nd.iter < 0) {
          until = std::max(until, ss.max_all);
        } else {
          // k-panel lookahead: the newest k update generations in flight
          // may stay in flight; everything older (and every non-elidable
          // task) still drains. The newest generation is nd.iter in update
          // phase and nd.iter-1 in panel phase — see the event_wait case.
          const std::int32_t newest = nd.phase == 2 ? nd.iter : nd.iter - 1;
          double m = ss.max_keep;
          for (const auto& [it2, f] : ss.upd)
            if (it2 <= newest - sc.lookahead) m = std::max(m, f);
          until = std::max(until, m);
        }
      }
      if (until > t) {
        blocked.push_back(Interval{t, until});
        t = until;
      }
    }
  }
  double wall = t;
  for (const auto& [key, r] : vready) wall = std::max(wall, r);

  p.wall_s = wall / 1e6;
  p.device_busy_s = merge_union(busy) / 1e6;
  p.host_blocked_s = merge_union(blocked) / 1e6;
  const double both = intersect_len(busy, blocked) / 1e6;
  p.overlap_fraction =
      p.device_busy_s > 0.0 ? (p.device_busy_s - both) / p.device_busy_s : 0.0;
  p.speedup = p.wall_s > 0.0 ? g.wall_s() / p.wall_s : 0.0;
  return p;
}

std::vector<Scenario> default_scenarios(double dev_gemm_scale) {
  std::vector<Scenario> out;
  out.push_back(Scenario{"replay", 0, 1, 1.0});
  out.push_back(Scenario{"lookahead1_streams2", 1, 2, 1.0});
  out.push_back(Scenario{"lookahead2_streams3", 2, 3, 1.0});
  out.push_back(Scenario{"infinite_streams", 0, kInfiniteStreams, 1.0});
  if (dev_gemm_scale > 0.0 && dev_gemm_scale < 1.0)
    out.push_back(Scenario{"lookahead1_roofline_gemm", 1, 2, dev_gemm_scale});
  return out;
}

// ---------------------------------------------------------------------------
// Reporting.

std::string section_json(const Graph& g, const Analysis& a,
                         const std::vector<Prediction>& what_if) {
  std::string out;
  out.reserve(1024);
  out += "{\"nodes\":" + std::to_string(g.nodes.size());
  out += ",\"edges\":" + std::to_string(g.edges.size());
  out += ",\"tasks\":" + std::to_string(g.count(NodeKind::Task));
  out += ",\"waits\":" + std::to_string(g.count(NodeKind::Wait));
  out += ",\"spans\":" + std::to_string(g.count(NodeKind::Span));
  out += ",\"marks\":" + std::to_string(g.count(NodeKind::Mark));
  out += ",\"wall_s\":";
  append_num(out, a.wall_s);
  out += ",\"critical_path_s\":";
  append_num(out, a.critical_path_s);
  out += ",\"critical_path_data_s\":";
  append_num(out, a.critical_path_data_s);
  out += ",\"host_blocked_s\":";
  append_num(out, a.host_blocked_s);
  out += ",\"attributed_s\":";
  append_num(out, a.attributed_s);
  out += ",\"attributed_frac\":";
  append_num(out, a.attributed_frac);
  out += ",\"critical_path\":[";
  const std::size_t path_n = std::min<std::size_t>(a.path.size(), 10);
  for (std::size_t i = 0; i < path_n; ++i) {
    if (i > 0) out += ',';
    out += "{\"label\":\"";
    append_escaped(out, a.path[i].label);
    out += "\",\"count\":" + std::to_string(a.path[i].count);
    out += ",\"seconds\":";
    append_num(out, a.path[i].seconds);
    out += "}";
  }
  out += "],\"blocking_edges\":[";
  const std::size_t block_n = std::min<std::size_t>(a.blocking.size(), 5);
  for (std::size_t i = 0; i < block_n; ++i) {
    const CauseGroup& cg = a.blocking[i];
    if (i > 0) out += ',';
    out += "{\"site\":\"";
    append_escaped(out, cg.site);
    out += "\",\"kind\":\"";
    append_escaped(out, cg.kind);
    out += "\",\"waiting_on\":\"";
    append_escaped(out, cg.waiting_on);
    out += "\",\"count\":" + std::to_string(cg.count);
    out += ",\"seconds\":";
    append_num(out, cg.seconds);
    out += "}";
  }
  out += "],\"what_if\":[";
  for (std::size_t i = 0; i < what_if.size(); ++i) {
    const Prediction& p = what_if[i];
    if (i > 0) out += ',';
    out += "{\"scenario\":\"";
    append_escaped(out, p.scenario.name);
    out += "\",\"lookahead\":" + std::to_string(p.scenario.lookahead);
    out += ",\"streams\":" + std::to_string(p.scenario.streams);
    out += ",\"dev_scale\":";
    append_num(out, p.scenario.dev_scale);
    out += ",\"wall_s\":";
    append_num(out, p.wall_s);
    out += ",\"device_busy_s\":";
    append_num(out, p.device_busy_s);
    out += ",\"host_blocked_s\":";
    append_num(out, p.host_blocked_s);
    out += ",\"overlap_fraction\":";
    append_num(out, p.overlap_fraction);
    out += ",\"speedup_vs_recorded\":";
    append_num(out, p.speedup);
    out += "}";
  }
  out += "]}";
  return out;
}

void print_analysis(const Graph& g, const Analysis& a,
                    const std::vector<Prediction>& what_if, std::FILE* out) {
  std::fprintf(out, "\n-- dag: %zu nodes / %zu edges (%zu tasks, %zu waits) over %.4f s --\n",
               g.nodes.size(), g.edges.size(), g.count(NodeKind::Task), g.count(NodeKind::Wait),
               a.wall_s);
  std::fprintf(out,
               "critical path %.4f s (%.1f%% of wall), data-only %.4f s; "
               "host blocked %.4f s, %.1f%% attributed\n",
               a.critical_path_s, a.wall_s > 0.0 ? 100.0 * a.critical_path_s / a.wall_s : 0.0,
               a.critical_path_data_s, a.host_blocked_s, 100.0 * a.attributed_frac);
  if (!a.blocking.empty()) {
    std::fprintf(out, "top blocking edges:\n");
    const std::size_t top = std::min<std::size_t>(a.blocking.size(), 5);
    for (std::size_t i = 0; i < top; ++i) {
      const CauseGroup& cg = a.blocking[i];
      std::fprintf(out, "  %8.3f ms  x%-6llu %-44s -> %s\n", 1e3 * cg.seconds,
                   static_cast<unsigned long long>(cg.count),
                   cg.site.empty() ? cg.kind.c_str() : cg.site.c_str(), cg.waiting_on.c_str());
    }
  }
  if (!a.path.empty()) {
    std::fprintf(out, "critical path composition:\n");
    const std::size_t top = std::min<std::size_t>(a.path.size(), 5);
    for (std::size_t i = 0; i < top; ++i)
      std::fprintf(out, "  %8.3f ms  x%-6llu %s\n", 1e3 * a.path[i].seconds,
                   static_cast<unsigned long long>(a.path[i].count), a.path[i].label.c_str());
  }
  if (!what_if.empty()) {
    std::fprintf(out, "what-if (list-scheduled replay):\n");
    std::fprintf(out, "  %-26s %10s %8s %8s %11s\n", "scenario", "wall (s)", "speedup",
                 "overlap", "blocked (s)");
    for (const Prediction& p : what_if)
      std::fprintf(out, "  %-26s %10.4f %7.2fx %8.3f %11.4f\n", p.scenario.name.c_str(),
                   p.wall_s, p.speedup, p.overlap_fraction, p.host_blocked_s);
  }
}

}  // namespace fth::obs::dag

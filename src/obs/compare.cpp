#include "obs/compare.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace fth::obs {

bool glob_match(const std::string& pattern, const std::string& text) {
  // Iterative '*' backtracking (the classic two-pointer glob).
  std::size_t p = 0, t = 0, star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

void flatten_numbers(const json::Value& v, const std::string& prefix,
                     std::map<std::string, double>& out) {
  switch (v.type()) {
    case json::Type::Number: out[prefix] = v.as_number(); break;
    case json::Type::Object:
      for (const auto& [key, child] : v.as_object())
        flatten_numbers(child, prefix.empty() ? key : prefix + "." + key, out);
      break;
    case json::Type::Array: {
      std::size_t i = 0;
      for (const auto& child : v.as_array())
        flatten_numbers(child, prefix + "." + std::to_string(i++), out);
      break;
    }
    default: break;  // bools, strings and nulls are not gateable metrics
  }
}

std::vector<ThresholdRule> parse_thresholds(std::istream& in) {
  std::vector<ThresholdRule> rules;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string pattern, mode;
    if (!(ls >> pattern)) continue;  // blank / comment-only line
    if (!(ls >> mode))
      throw json::parse_error("thresholds line " + std::to_string(lineno) + ": missing mode");
    ThresholdRule r;
    r.pattern = pattern;
    if (mode == "rel") r.mode = ThresholdRule::Mode::Rel;
    else if (mode == "abs") r.mode = ThresholdRule::Mode::Abs;
    else if (mode == "max_increase") r.mode = ThresholdRule::Mode::MaxIncrease;
    else if (mode == "max_decrease") r.mode = ThresholdRule::Mode::MaxDecrease;
    else if (mode == "ignore") r.mode = ThresholdRule::Mode::Ignore;
    else
      throw json::parse_error("thresholds line " + std::to_string(lineno) + ": unknown mode '" +
                              mode + "'");
    if (r.mode != ThresholdRule::Mode::Ignore && !(ls >> r.tol))
      throw json::parse_error("thresholds line " + std::to_string(lineno) +
                              ": missing tolerance");
    rules.push_back(std::move(r));
  }
  return rules;
}

CompareResult compare_reports(const json::Value& base, const json::Value& cand,
                              const std::vector<ThresholdRule>& rules) {
  std::map<std::string, double> b, c;
  flatten_numbers(base, "", b);
  flatten_numbers(cand, "", c);

  CompareResult res;
  for (const auto& [path, bv] : b) {
    const ThresholdRule* rule = nullptr;
    for (const auto& r : rules) {
      if (glob_match(r.pattern, path)) {
        rule = &r;
        break;
      }
    }
    if (rule == nullptr || rule->mode == ThresholdRule::Mode::Ignore) continue;

    Comparison cmp;
    cmp.path = path;
    cmp.base = bv;
    cmp.rule = rule->pattern;
    auto it = c.find(path);
    if (it == c.end()) {
      // stream_occupancy grew from a scalar into a per-device array when the
      // device pool landed; a legacy scalar is the D=1 form of the same
      // metric, so match the two spellings against each other (entry 0 <->
      // scalar) instead of flagging a schema regression. Entries beyond .0
      // have no legacy counterpart and still gate as missing.
      static const std::string kOcc = ".stream_occupancy";
      if (path.size() >= kOcc.size() &&
          path.compare(path.size() - kOcc.size(), kOcc.size(), kOcc) == 0)
        it = c.find(path + ".0");  // scalar baseline vs array candidate
      else if (path.size() >= kOcc.size() + 2 &&
               path.compare(path.size() - kOcc.size() - 2, kOcc.size() + 2, kOcc + ".0") == 0)
        it = c.find(path.substr(0, path.size() - 2));  // array baseline vs scalar
    }
    if (it == c.end()) {
      // Legacy baselines recorded a meaningless roofline_frac=0 when no
      // roofline was measured; newer reports omit the key. Absent-vs-0 is
      // "still unmeasured", not a regression.
      if (bv == 0.0 && path.size() >= 14 &&
          path.compare(path.size() - 14, 14, ".roofline_frac") == 0)
        continue;
      cmp.missing = true;
      cmp.violated = true;  // a gated metric disappearing IS a regression
    } else {
      cmp.cand = it->second;
      const double denom = std::max({std::fabs(bv), std::fabs(cmp.cand), 1e-12});
      cmp.rel_delta = (cmp.cand - bv) / denom;
      switch (rule->mode) {
        case ThresholdRule::Mode::Rel:
          cmp.violated = std::fabs(cmp.rel_delta) > rule->tol;
          break;
        case ThresholdRule::Mode::Abs:
          cmp.violated = std::fabs(cmp.cand - bv) > rule->tol;
          break;
        case ThresholdRule::Mode::MaxIncrease:
          cmp.violated = cmp.cand - bv > rule->tol * std::max(std::fabs(bv), 1e-12);
          break;
        case ThresholdRule::Mode::MaxDecrease:
          cmp.violated = bv - cmp.cand > rule->tol * std::max(std::fabs(bv), 1e-12);
          break;
        case ThresholdRule::Mode::Ignore: break;
      }
    }
    if (cmp.violated) ++res.violations;
    res.gated.push_back(std::move(cmp));
  }
  return res;
}

void print_comparison(const CompareResult& res, std::FILE* out) {
  std::fprintf(out, "%-52s %14s %14s %9s  %s\n", "metric", "baseline", "candidate", "delta",
               "verdict");
  for (const auto& g : res.gated) {
    if (g.missing) {
      std::fprintf(out, "%-52s %14.6g %14s %9s  VIOLATION (missing)\n", g.path.c_str(), g.base,
                   "-", "-");
      continue;
    }
    std::fprintf(out, "%-52s %14.6g %14.6g %+8.2f%%  %s\n", g.path.c_str(), g.base, g.cand,
                 100.0 * g.rel_delta, g.violated ? "VIOLATION" : "ok");
  }
  std::fprintf(out, "%d gated metric(s), %d violation(s)\n",
               static_cast<int>(res.gated.size()), res.violations);
}

}  // namespace fth::obs

#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

namespace fth::obs {

namespace {

struct TraceEvent {
  double ts_us = 0.0;
  double value = 0.0;        // counter value or span argument
  const char* cat = "";      // string literal (see trace.hpp contract)
  const char* name = "";     // string literal
  const char* arg_key = "";  // optional span argument name (string literal)
  std::uint32_t tid = 0;
  char ph = '?';
};

/// Per-thread event buffer. Each thread locks only its own (uncontended)
/// mutex on the enabled path; the writer locks all of them at flush time.
struct ThreadBuffer {
  std::mutex m;
  std::vector<TraceEvent> events;
  std::string thread_name;
  std::uint32_t tid = 0;
};

class Recorder {
 public:
  static Recorder& instance() {
    static Recorder r;
    return r;
  }

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  void start(const std::string& path) {
    std::lock_guard lock(registry_m_);
    path_ = path;
    for (auto& b : buffers_) {
      std::lock_guard bl(b->m);
      b->events.clear();
    }
    if (!atexit_registered_) {
      atexit_registered_ = true;
      std::atexit([] { trace_stop(); });
    }
    enabled_.store(true, std::memory_order_relaxed);
  }

  std::size_t stop() {
    if (!enabled()) return 0;
    enabled_.store(false, std::memory_order_relaxed);
    std::lock_guard lock(registry_m_);
    std::vector<TraceEvent> all;
    for (auto& b : buffers_) {
      std::lock_guard bl(b->m);
      all.insert(all.end(), b->events.begin(), b->events.end());
      b->events.clear();
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceEvent& a, const TraceEvent& b) { return a.ts_us < b.ts_us; });
    write_file(all);
    return all.size();
  }

  void record(TraceEvent ev) noexcept {
    ThreadBuffer& b = local_buffer();
    ev.ts_us = now_us();
    ev.tid = b.tid;
    std::lock_guard lock(b.m);
    b.events.push_back(ev);
  }

  void name_thread(const char* name) {
    ThreadBuffer& b = local_buffer();
    std::lock_guard lock(b.m);
    b.thread_name = name;
  }

 private:
  Recorder() : t0_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double now_us() const noexcept {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0_)
        .count();
  }

  ThreadBuffer& local_buffer() {
    thread_local std::shared_ptr<ThreadBuffer> buf = [this] {
      auto b = std::make_shared<ThreadBuffer>();
      std::lock_guard lock(registry_m_);
      b->tid = next_tid_++;
      buffers_.push_back(b);
      return b;
    }();
    return *buf;
  }

  static void append_escaped(std::string& out, const char* s) {
    for (; *s != '\0'; ++s) {
      const char c = *s;
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char hex[8];
        std::snprintf(hex, sizeof hex, "\\u%04x", c);
        out += hex;
      } else {
        out.push_back(c);
      }
    }
  }

  void write_file(const std::vector<TraceEvent>& events) const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "fth::obs: cannot open trace output '%s'\n", path_.c_str());
      return;
    }
    const long pid = 1;  // single-process library; a stable dummy keeps tools happy
    std::string line;
    std::fprintf(f, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    bool first = true;
    auto emit = [&](const std::string& s) {
      std::fprintf(f, "%s%s", first ? "" : ",\n", s.c_str());
      first = false;
    };
    // Track-name metadata first (tools accept it anywhere; first is tidy).
    for (const auto& b : buffers_) {
      if (b->thread_name.empty()) continue;
      line.clear();
      line += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" + std::to_string(pid) +
              ",\"tid\":" + std::to_string(b->tid) + ",\"args\":{\"name\":\"";
      append_escaped(line, b->thread_name.c_str());
      line += "\"}}";
      emit(line);
    }
    char num[64];
    for (const auto& ev : events) {
      line.clear();
      line += "{\"ph\":\"";
      line.push_back(ev.ph);
      line += "\",\"pid\":" + std::to_string(pid) + ",\"tid\":" + std::to_string(ev.tid);
      std::snprintf(num, sizeof num, "%.3f", ev.ts_us);
      line += ",\"ts\":";
      line += num;
      if (ev.ph != 'E') {
        line += ",\"cat\":\"";
        append_escaped(line, ev.cat);
        line += "\",\"name\":\"";
        append_escaped(line, ev.name);
        line += "\"";
      }
      if (ev.ph == 'i') line += ",\"s\":\"t\"";
      if (ev.ph == 'C') {
        std::snprintf(num, sizeof num, "%.17g", ev.value);
        line += ",\"args\":{\"value\":";
        line += num;
        line += "}";
      } else if (ev.ph == 'B' && ev.arg_key[0] != '\0') {
        std::snprintf(num, sizeof num, "%.17g", ev.value);
        line += ",\"args\":{\"";
        append_escaped(line, ev.arg_key);
        line += "\":";
        line += num;
        line += "}";
      }
      line += "}";
      emit(line);
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
  }

  std::atomic<bool> enabled_{false};
  std::mutex registry_m_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::string path_;
  std::uint32_t next_tid_ = 0;
  bool atexit_registered_ = false;
  std::chrono::steady_clock::time_point t0_;
};

// Honour FTH_TRACE for any binary linking the library, independent of which
// entry point it uses. Idempotent; benches call trace_init_from_env() again.
[[maybe_unused]] const bool g_env_init = [] {
  trace_init_from_env();
  return true;
}();

}  // namespace

bool trace_enabled() noexcept { return Recorder::instance().enabled(); }

void trace_start(const std::string& path) { Recorder::instance().start(path); }

std::size_t trace_stop() { return Recorder::instance().stop(); }

void trace_init_from_env() {
  const char* path = std::getenv("FTH_TRACE");
  if (path != nullptr && path[0] != '\0' && !trace_enabled()) trace_start(path);
}

void set_thread_name(const char* name) { Recorder::instance().name_thread(name); }

namespace detail {

void begin_span(const char* cat, const char* name) noexcept {
  Recorder::instance().record(TraceEvent{.cat = cat, .name = name, .ph = 'B'});
}

void begin_span(const char* cat, const char* name, const char* arg_key,
                double arg_value) noexcept {
  Recorder::instance().record(
      TraceEvent{.value = arg_value, .cat = cat, .name = name, .arg_key = arg_key, .ph = 'B'});
}

void end_span() noexcept { Recorder::instance().record(TraceEvent{.ph = 'E'}); }

}  // namespace detail

void instant(const char* cat, const char* name) noexcept {
  if (!trace_enabled()) return;
  Recorder::instance().record(TraceEvent{.cat = cat, .name = name, .ph = 'i'});
}

void counter(const char* name, double value) noexcept {
  if (!trace_enabled()) return;
  Recorder::instance().record(TraceEvent{.value = value, .cat = "counter", .name = name, .ph = 'C'});
}

}  // namespace fth::obs

#include "obs/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/dag.hpp"
#include "obs/profile.hpp"

namespace fth::obs {

namespace {

struct TraceEvent {
  double ts_us = 0.0;
  double value = 0.0;        // counter value or span argument
  const char* cat = "";      // string literal or interned (see trace.hpp contract)
  const char* name = "";     // string literal or interned
  const char* arg_key = "";  // optional span argument name (string literal)
  std::uint32_t tid = 0;
  char ph = '?';
};

/// Per-thread buffers. Each thread locks only its own (uncontended) mutex on
/// the enabled path; the writer locks all of them at flush time. The trace
/// file uses the unbounded `events` vector; the flight recorder a bounded
/// ring that keeps only the newest `ring.size()` events.
struct ThreadBuffer {
  std::mutex m;
  std::vector<TraceEvent> events;
  std::vector<TraceEvent> ring;
  std::size_t ring_next = 0;
  bool ring_wrapped = false;
  std::string thread_name;
  std::uint32_t tid = 0;
};

class Recorder {
 public:
  static Recorder& instance() {
    static Recorder r;
    return r;
  }

  [[nodiscard]] bool enabled() const noexcept {
    return trace_on_.load(std::memory_order_relaxed) ||
           flight_on_.load(std::memory_order_relaxed) || profile_detail::active() ||
           dag::detail::active();
  }

  [[nodiscard]] bool trace_file_active() const noexcept {
    return trace_on_.load(std::memory_order_relaxed);
  }

  void start(const std::string& path) {
    std::lock_guard lock(registry_m_);
    path_ = path;
    for (auto& b : buffers_) {
      std::lock_guard bl(b->m);
      b->events.clear();
    }
    register_atexit();
    trace_on_.store(true, std::memory_order_relaxed);
  }

  std::size_t stop() {
    if (!trace_on_.load(std::memory_order_relaxed)) return 0;
    trace_on_.store(false, std::memory_order_relaxed);
    std::lock_guard lock(registry_m_);
    std::vector<TraceEvent> all;
    for (auto& b : buffers_) {
      std::lock_guard bl(b->m);
      all.insert(all.end(), b->events.begin(), b->events.end());
      b->events.clear();
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceEvent& a, const TraceEvent& b) { return a.ts_us < b.ts_us; });
    write_file(path_, all);
    return all.size();
  }

  void flight_start(std::size_t capacity) {
    capacity = std::max<std::size_t>(capacity, 16);
    std::lock_guard lock(registry_m_);
    flight_capacity_.store(capacity, std::memory_order_relaxed);
    for (auto& b : buffers_) {
      std::lock_guard bl(b->m);
      reset_ring(*b, capacity);
    }
    install_signal_handlers();
    flight_on_.store(true, std::memory_order_relaxed);
  }

  void flight_stop() {
    flight_on_.store(false, std::memory_order_relaxed);
    std::lock_guard lock(registry_m_);
    for (auto& b : buffers_) {
      std::lock_guard bl(b->m);
      b->ring.clear();
      b->ring.shrink_to_fit();
      b->ring_next = 0;
      b->ring_wrapped = false;
    }
  }

  [[nodiscard]] bool flight_active() const noexcept {
    return flight_on_.load(std::memory_order_relaxed);
  }

  /// Best-effort when called from a signal handler: try-lock everything and
  /// skip what cannot be acquired rather than deadlock on a lock the
  /// interrupted thread holds.
  std::string flight_dump(const char* reason, bool best_effort) noexcept {
    if (!flight_active()) return "";
    std::unique_lock<std::mutex> lock(registry_m_, std::defer_lock);
    if (best_effort) {
      if (!lock.try_lock()) return "";
    } else {
      lock.lock();
    }
    std::vector<TraceEvent> all;
    for (auto& b : buffers_) {
      std::unique_lock<std::mutex> bl(b->m, std::defer_lock);
      if (best_effort) {
        if (!bl.try_lock()) continue;
      } else {
        bl.lock();
      }
      // Oldest-first ring order: [next, end) then [0, next) once wrapped.
      if (b->ring_wrapped)
        all.insert(all.end(), b->ring.begin() + static_cast<std::ptrdiff_t>(b->ring_next),
                   b->ring.end());
      all.insert(all.end(), b->ring.begin(),
                 b->ring.begin() + static_cast<std::ptrdiff_t>(b->ring_next));
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceEvent& a, const TraceEvent& b) { return a.ts_us < b.ts_us; });
    // Stamp why the dump happened as a final instant on the dumping track.
    TraceEvent why;
    why.ts_us = now_us();
    why.cat = "flight";
    why.name = reason;
    why.ph = 'i';
    all.push_back(why);
    std::string path;
    if (const char* env = std::getenv("FTH_FLIGHT_PATH"); env != nullptr && env[0] != '\0') {
      path = env;
    } else {
      path = "fth_flight_" + std::to_string(static_cast<long>(::getpid())) + ".json";
    }
    if (!write_file(path, all)) return "";
    return path;
  }

  /// Ring contents as an embeddable JSON array (capsule form). Unlike
  /// flight_dump() this never touches the filesystem and keeps only the
  /// newest `max_events` after the cross-thread merge.
  [[nodiscard]] std::string flight_tail_json(std::size_t max_events) {
    if (!flight_active()) return "[]";
    std::vector<TraceEvent> all;
    {
      std::lock_guard lock(registry_m_);
      for (auto& b : buffers_) {
        std::lock_guard bl(b->m);
        if (b->ring_wrapped)
          all.insert(all.end(), b->ring.begin() + static_cast<std::ptrdiff_t>(b->ring_next),
                     b->ring.end());
        all.insert(all.end(), b->ring.begin(),
                   b->ring.begin() + static_cast<std::ptrdiff_t>(b->ring_next));
      }
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceEvent& a, const TraceEvent& b) { return a.ts_us < b.ts_us; });
    if (all.size() > max_events)
      all.erase(all.begin(), all.end() - static_cast<std::ptrdiff_t>(max_events));
    std::string out = "[";
    char num[64];
    for (std::size_t i = 0; i < all.size(); ++i) {
      const TraceEvent& ev = all[i];
      if (i > 0) out += ',';
      std::snprintf(num, sizeof num, "%.3f", ev.ts_us);
      out += "{\"ts_us\":";
      out += num;
      out += ",\"ph\":\"";
      out.push_back(ev.ph);
      out += "\",\"tid\":" + std::to_string(ev.tid);
      if (ev.ph != 'E') {
        out += ",\"cat\":\"";
        append_escaped(out, ev.cat);
        out += "\",\"name\":\"";
        append_escaped(out, ev.name);
        out += "\"";
      }
      if (ev.ph == 'C' || (ev.ph == 'B' && ev.arg_key[0] != '\0')) {
        std::snprintf(num, sizeof num, "%.17g", ev.value);
        out += ",\"value\":";
        out += num;
      }
      out += "}";
    }
    out += "]";
    return out;
  }

  void record(TraceEvent ev) noexcept {
    ThreadBuffer& b = local_buffer();
    ev.ts_us = now_us();
    ev.tid = b.tid;
    if (profile_detail::active() && (ev.ph == 'B' || ev.ph == 'E'))
      profile_detail::on_event(ev.ph, ev.cat, ev.name, ev.ts_us, ev.value);
    if (dag::detail::active() && (ev.ph == 'B' || ev.ph == 'E'))
      dag::detail::on_span(ev.ph, ev.cat, ev.name, ev.ts_us);
    const bool to_trace = trace_on_.load(std::memory_order_relaxed);
    const bool to_flight = flight_on_.load(std::memory_order_relaxed);
    if (!to_trace && !to_flight) return;
    std::lock_guard lock(b.m);
    if (to_trace) b.events.push_back(ev);
    if (to_flight) {
      const std::size_t cap = flight_capacity_.load(std::memory_order_relaxed);
      if (b.ring.size() != cap) reset_ring(b, cap);  // thread registered before flight_start
      b.ring[b.ring_next] = ev;
      if (++b.ring_next == b.ring.size()) {
        b.ring_next = 0;
        b.ring_wrapped = true;
      }
    }
  }

  /// Pre-stamped append to the trace-file buffer of the calling thread —
  /// the DAG recorder uses it to inject flow events at assembly time, after
  /// the fact, on the tracks the flows refer to.
  void record_raw(const TraceEvent& ev) noexcept {
    if (!trace_on_.load(std::memory_order_relaxed)) return;
    ThreadBuffer& b = local_buffer();
    std::lock_guard lock(b.m);
    b.events.push_back(ev);
  }

  [[nodiscard]] std::uint32_t current_tid() noexcept { return local_buffer().tid; }

  void name_thread(const char* name) {
    ThreadBuffer& b = local_buffer();
    std::lock_guard lock(b.m);
    b.thread_name = name;
  }

  [[nodiscard]] double now_us() const noexcept {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  Recorder() : t0_(std::chrono::steady_clock::now()) {}

  static void reset_ring(ThreadBuffer& b, std::size_t capacity) {
    b.ring.assign(capacity, TraceEvent{});
    b.ring_next = 0;
    b.ring_wrapped = false;
  }

  void register_atexit() {
    if (atexit_registered_) return;
    atexit_registered_ = true;
    std::atexit([] { trace_stop(); });
  }

  void install_signal_handlers() {
    if (signals_installed_) return;
    signals_installed_ = true;
    for (const int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
      std::signal(sig, [](int s) {
        // One dump attempt, then the default disposition so the crash is
        // still a crash (core dump, non-zero exit). Not strictly
        // async-signal-safe — a post-mortem best effort, nothing more.
        static std::atomic<bool> dumping{false};
        if (!dumping.exchange(true))
          Recorder::instance().flight_dump("fatal-signal", /*best_effort=*/true);
        std::signal(s, SIG_DFL);
        std::raise(s);
      });
    }
  }

  ThreadBuffer& local_buffer() {
    thread_local std::shared_ptr<ThreadBuffer> buf = [this] {
      auto b = std::make_shared<ThreadBuffer>();
      std::lock_guard lock(registry_m_);
      b->tid = next_tid_++;
      buffers_.push_back(b);
      return b;
    }();
    return *buf;
  }

  static void append_escaped(std::string& out, const char* s) {
    for (; *s != '\0'; ++s) {
      const char c = *s;
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char hex[8];
        std::snprintf(hex, sizeof hex, "\\u%04x", c);
        out += hex;
      } else {
        out.push_back(c);
      }
    }
  }

  bool write_file(const std::string& path, const std::vector<TraceEvent>& events) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "fth::obs: cannot open trace output '%s'\n", path.c_str());
      return false;
    }
    const long pid = 1;  // single-process library; a stable dummy keeps tools happy
    std::string line;
    std::fprintf(f, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    bool first = true;
    auto emit = [&](const std::string& s) {
      std::fprintf(f, "%s%s", first ? "" : ",\n", s.c_str());
      first = false;
    };
    // Track-name metadata first (tools accept it anywhere; first is tidy).
    for (const auto& b : buffers_) {
      if (b->thread_name.empty()) continue;
      line.clear();
      line += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" + std::to_string(pid) +
              ",\"tid\":" + std::to_string(b->tid) + ",\"args\":{\"name\":\"";
      append_escaped(line, b->thread_name.c_str());
      line += "\"}}";
      emit(line);
    }
    char num[64];
    for (const auto& ev : events) {
      line.clear();
      line += "{\"ph\":\"";
      line.push_back(ev.ph);
      line += "\",\"pid\":" + std::to_string(pid) + ",\"tid\":" + std::to_string(ev.tid);
      std::snprintf(num, sizeof num, "%.3f", ev.ts_us);
      line += ",\"ts\":";
      line += num;
      if (ev.ph != 'E') {
        line += ",\"cat\":\"";
        append_escaped(line, ev.cat);
        line += "\",\"name\":\"";
        append_escaped(line, ev.name);
        line += "\"";
      }
      if (ev.ph == 'i') line += ",\"s\":\"t\"";
      if (ev.ph == 's' || ev.ph == 'f') {
        // Flow events (the DAG's cause edges): shared "id" binds the pair;
        // "bp":"e" makes the arrow terminate at the enclosing slice's end,
        // which is where the wait actually released.
        line += ",\"id\":" + std::to_string(static_cast<long long>(ev.value));
        if (ev.ph == 'f') line += ",\"bp\":\"e\"";
      }
      if (ev.ph == 'C') {
        std::snprintf(num, sizeof num, "%.17g", ev.value);
        line += ",\"args\":{\"value\":";
        line += num;
        line += "}";
      } else if (ev.ph == 'B' && ev.arg_key[0] != '\0') {
        std::snprintf(num, sizeof num, "%.17g", ev.value);
        line += ",\"args\":{\"";
        append_escaped(line, ev.arg_key);
        line += "\":";
        line += num;
        line += "}";
      }
      line += "}";
      emit(line);
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    return true;
  }

  std::atomic<bool> trace_on_{false};
  std::atomic<bool> flight_on_{false};
  std::atomic<std::size_t> flight_capacity_{0};
  std::mutex registry_m_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::string path_;
  std::uint32_t next_tid_ = 0;
  bool atexit_registered_ = false;
  bool signals_installed_ = false;
  std::chrono::steady_clock::time_point t0_;
};

// Honour FTH_TRACE / FTH_FLIGHT for any binary linking the library,
// independent of which entry point it uses. Idempotent; benches call
// trace_init_from_env() again.
[[maybe_unused]] const bool g_env_init = [] {
  trace_init_from_env();
  return true;
}();

}  // namespace

bool trace_enabled() noexcept { return Recorder::instance().enabled(); }

void trace_start(const std::string& path) { Recorder::instance().start(path); }

std::size_t trace_stop() { return Recorder::instance().stop(); }

void trace_init_from_env() {
  const char* path = std::getenv("FTH_TRACE");
  if (path != nullptr && path[0] != '\0' && !Recorder::instance().trace_file_active())
    trace_start(path);
  const char* flight = std::getenv("FTH_FLIGHT");
  if (flight != nullptr && flight[0] != '\0' && !flight_active()) {
    const long n = std::strtol(flight, nullptr, 10);
    if (n > 0) flight_start(static_cast<std::size_t>(n));
  }
  dag::init_from_env();  // FTH_DAG rides the same env hook
}

void set_thread_name(const char* name) { Recorder::instance().name_thread(name); }

const char* intern_name(std::string_view name) {
  static std::mutex m;
  // Leaked on purpose: interned names must outlive every static destructor
  // and atexit flush that might still reference them.
  static auto* storage = new std::deque<std::string>();
  static auto* index = new std::unordered_map<std::string_view, const char*>();
  std::lock_guard lock(m);
  if (const auto it = index->find(name); it != index->end()) return it->second;
  storage->emplace_back(name);
  const std::string& stored = storage->back();
  index->emplace(std::string_view(stored), stored.c_str());
  return stored.c_str();
}

const char* site_label(const char* kind, const char* file, unsigned line) {
  struct SiteKey {
    const char* kind;
    const char* file;
    unsigned line;
    bool operator==(const SiteKey&) const = default;
  };
  struct SiteHash {
    std::size_t operator()(const SiteKey& s) const noexcept {
      std::size_t h = std::hash<const void*>()(s.kind);
      h = h * 31 + std::hash<const void*>()(s.file);
      return h * 31 + s.line;
    }
  };
  static std::mutex m;
  // Leaked like intern_name's tables, and for the same reason: sites are
  // referenced from buffered events until the atexit flush.
  static auto* cache = new std::unordered_map<SiteKey, const char*, SiteHash>();
  std::lock_guard lock(m);
  const SiteKey key{kind, file, line};
  if (const auto it = cache->find(key); it != cache->end()) return it->second;
  std::string_view base(file);
  if (const auto slash = base.rfind('/'); slash != std::string_view::npos)
    base.remove_prefix(slash + 1);
  std::string label(kind);
  label += '@';
  label += base;
  label += ':';
  label += std::to_string(line);
  const char* interned = intern_name(label);
  cache->emplace(key, interned);
  return interned;
}

void flight_start(std::size_t capacity) { Recorder::instance().flight_start(capacity); }

bool flight_active() noexcept { return Recorder::instance().flight_active(); }

std::string flight_dump(const char* reason) noexcept {
  return Recorder::instance().flight_dump(reason, /*best_effort=*/false);
}

void flight_stop() { Recorder::instance().flight_stop(); }

std::string flight_tail_json(std::size_t max_events) {
  return Recorder::instance().flight_tail_json(max_events);
}

namespace detail {

double now_us() noexcept { return Recorder::instance().now_us(); }

void begin_span(const char* cat, const char* name) noexcept {
  Recorder::instance().record(TraceEvent{.cat = cat, .name = name, .ph = 'B'});
}

void begin_span(const char* cat, const char* name, const char* arg_key,
                double arg_value) noexcept {
  Recorder::instance().record(
      TraceEvent{.value = arg_value, .cat = cat, .name = name, .arg_key = arg_key, .ph = 'B'});
}

void end_span() noexcept { Recorder::instance().record(TraceEvent{.ph = 'E'}); }

std::uint32_t current_tid() noexcept { return Recorder::instance().current_tid(); }

bool trace_file_active() noexcept { return Recorder::instance().trace_file_active(); }

void raw_event(char ph, const char* cat, const char* name, double ts_us, std::uint32_t tid,
               double value) noexcept {
  Recorder::instance().record_raw(
      TraceEvent{.ts_us = ts_us, .value = value, .cat = cat, .name = name, .tid = tid, .ph = ph});
}

}  // namespace detail

void instant(const char* cat, const char* name) noexcept {
  if (!trace_enabled()) return;
  Recorder::instance().record(TraceEvent{.cat = cat, .name = name, .ph = 'i'});
}

void counter(const char* name, double value) noexcept {
  if (!trace_enabled()) return;
  Recorder::instance().record(TraceEvent{.value = value, .cat = "counter", .name = name, .ph = 'C'});
}

}  // namespace fth::obs

#include "obs/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <tuple>
#include <unordered_map>

#include "common/flops.hpp"
#include "obs/trace.hpp"

namespace fth::obs {

namespace profile_detail {
std::atomic<bool> g_active{false};

namespace {
/// Pool ordinal the calling thread claims (device workers only; -1 host).
thread_local int t_device_ordinal = -1;
}  // namespace

void set_device_ordinal(int ordinal) noexcept { t_device_ordinal = ordinal; }
}  // namespace profile_detail

namespace {

// ---------------------------------------------------------------------------
// Aggregation core, shared by the live profiler (one Agg per thread) and the
// offline ProfileBuilder (one Agg per trace tid). Spans are keyed by their
// (cat, name) pointers but hashed/compared by content, so literals and
// interned names merge correctly.

struct PhaseKey {
  const char* cat;
  const char* name;
  bool operator==(const PhaseKey& o) const noexcept {
    return std::strcmp(cat, o.cat) == 0 && std::strcmp(name, o.name) == 0;
  }
};

struct PhaseKeyHash {
  std::size_t operator()(const PhaseKey& k) const noexcept {
    std::size_t h = 1469598103934665603ull;
    const auto mix = [&h](const char* p) {
      for (; *p != '\0'; ++p) h = (h ^ static_cast<unsigned char>(*p)) * 1099511628211ull;
    };
    mix(k.cat);
    h = (h ^ 0x2F) * 1099511628211ull;
    mix(k.name);
    return h;
  }
};

struct PhaseAccum {
  std::uint64_t calls = 0;
  double wall_us = 0.0;
  double self_us = 0.0;
  std::uint64_t flops = 0;
  double arg_sum = 0.0;
};

struct Frame {
  PhaseKey key;
  double t0 = 0.0;
  double mark_ts = 0.0;           // start of the current self segment
  std::uint64_t mark_flops = 0;   // thread-flops at the segment start
  double arg = 0.0;
  double self_us = 0.0;
  std::uint64_t self_flops = 0;
  bool is_task = false, is_wait = false, is_panel = false, is_update = false;
};

struct Interval {
  double b, e;
};

struct Agg {
  std::vector<Frame> stack;
  std::unordered_map<PhaseKey, PhaseAccum, PhaseKeyHash> phases;
  std::vector<Interval> device_busy;  // stream/task spans (device worker)
  std::vector<Interval> host_wait;    // stream/synchronize + stream/event_wait
  bool is_device = false;
  int device_ordinal = -1;  // pool ordinal self-reported by the worker (live)
  double pending_panel_t0 = -1.0;  // panel begin awaiting its update end
  std::uint64_t iters = 0;
  double iter_sum_us = 0.0;
  double iter_max_us = 0.0;
  double first_ts = 0.0, last_ts = 0.0;
  bool any = false;

  void note_ts(double ts) {
    if (!any) {
      first_ts = last_ts = ts;
      any = true;
    } else {
      first_ts = std::min(first_ts, ts);
      last_ts = std::max(last_ts, ts);
    }
  }

  void begin(const char* cat, const char* name, double ts, double arg, std::uint64_t fl) {
    note_ts(ts);
    if (!stack.empty()) {
      Frame& p = stack.back();
      p.self_us += ts - p.mark_ts;
      p.self_flops += fl - p.mark_flops;
    }
    Frame f;
    f.key = PhaseKey{cat, name};
    f.t0 = f.mark_ts = ts;
    f.mark_flops = fl;
    f.arg = arg;
    const bool stream_cat = std::strcmp(cat, "stream") == 0;
    // Prefix match: waits carry per-site names ("synchronize@file:line")
    // when any sink is live, so fth_prof can show which of the hundreds of
    // synchronize sites dominates instead of one aggregate row.
    f.is_wait = stream_cat && (std::strncmp(name, "synchronize", 11) == 0 ||
                               std::strncmp(name, "event_wait", 10) == 0);
    // Any other stream-category span is a worker task (they carry per-task
    // labels — "dev.gemm", "h2d", "ft.detect", plain "task", ...).
    f.is_task = stream_cat && !f.is_wait;
    const bool hybrid_cat = std::strcmp(cat, "hybrid") == 0;
    f.is_panel = hybrid_cat && std::strcmp(name, "panel") == 0;
    f.is_update = hybrid_cat && std::strcmp(name, "update") == 0;
    if (f.is_task) is_device = true;
    stack.push_back(f);
  }

  void end(double ts, std::uint64_t fl) {
    if (stack.empty()) return;  // the span began before the window opened
    note_ts(ts);
    Frame f = stack.back();
    stack.pop_back();
    f.self_us += ts - f.mark_ts;
    f.self_flops += fl - f.mark_flops;
    PhaseAccum& a = phases[f.key];
    ++a.calls;
    a.wall_us += ts - f.t0;
    a.self_us += f.self_us;
    a.flops += f.self_flops;
    a.arg_sum += f.arg;
    if (!stack.empty()) {
      stack.back().mark_ts = ts;
      stack.back().mark_flops = fl;
    }
    if (f.is_task) {
      device_busy.push_back(Interval{f.t0, ts});
    } else if (f.is_wait) {
      host_wait.push_back(Interval{f.t0, ts});
    } else if (f.is_panel) {
      pending_panel_t0 = f.t0;
    } else if (f.is_update && pending_panel_t0 >= 0.0) {
      const double d = ts - pending_panel_t0;
      ++iters;
      iter_sum_us += d;
      iter_max_us = std::max(iter_max_us, d);
      pending_panel_t0 = -1.0;
    }
  }

  /// Attribute still-open spans up to `ts` (window close mid-span). No new
  /// FLOPs are credited: the closing thread cannot read the owner's counter.
  void close_open(double ts) {
    while (!stack.empty()) end(ts, stack.back().mark_flops);
  }
};

/// Sort + merge in place; returns total covered length (µs).
double merge_union(std::vector<Interval>& v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end(), [](const Interval& a, const Interval& b) { return a.b < b.b; });
  std::size_t out = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i].b <= v[out].e) {
      v[out].e = std::max(v[out].e, v[i].e);
    } else {
      v[++out] = v[i];
    }
  }
  v.resize(out + 1);
  double len = 0.0;
  for (const Interval& iv : v) len += iv.e - iv.b;
  return len;
}

/// Overlap length of two already-merged interval lists (µs).
double intersect_len(const std::vector<Interval>& a, const std::vector<Interval>& b) {
  double len = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].b, b[j].b);
    const double hi = std::min(a[i].e, b[j].e);
    if (hi > lo) len += hi - lo;
    if (a[i].e < b[j].e) ++i;
    else ++j;
  }
  return len;
}

ProfileReport build_report(const std::vector<Agg*>& aggs, double roofline, double wall_hint_s,
                           std::uint64_t total_flops) {
  ProfileReport rep;
  rep.roofline_gflops = roofline;
  rep.total_flops = total_flops;

  std::map<std::tuple<std::string, std::string, std::string>, PhaseAccum> merged;
  std::vector<Interval> dev, wait;
  std::vector<double> per_dev_us;            // busy-union per device track
  std::map<int, std::vector<Interval>> ord;  // same, keyed by self-reported ordinal
  bool any = false;
  double first = 0.0, last = 0.0;
  for (Agg* a : aggs) {
    const char* track = a->is_device ? "device" : "host";
    if (a->is_device && !a->device_busy.empty()) {
      std::vector<Interval> own = a->device_busy;
      per_dev_us.push_back(merge_union(own));
      if (a->device_ordinal >= 0) {
        auto& iv = ord[a->device_ordinal];
        iv.insert(iv.end(), a->device_busy.begin(), a->device_busy.end());
      }
    }
    for (const auto& [k, acc] : a->phases) {
      PhaseAccum& m = merged[{track, k.cat, k.name}];
      m.calls += acc.calls;
      m.wall_us += acc.wall_us;
      m.self_us += acc.self_us;
      m.flops += acc.flops;
      m.arg_sum += acc.arg_sum;
    }
    dev.insert(dev.end(), a->device_busy.begin(), a->device_busy.end());
    wait.insert(wait.end(), a->host_wait.begin(), a->host_wait.end());
    rep.iterations += a->iters;
    rep.iter_max_s = std::max(rep.iter_max_s, a->iter_max_us / 1e6);
    rep.iter_avg_s += a->iter_sum_us;  // sum for now; divided below
    if (a->any) {
      if (!any) {
        first = a->first_ts;
        last = a->last_ts;
        any = true;
      } else {
        first = std::min(first, a->first_ts);
        last = std::max(last, a->last_ts);
      }
    }
  }
  rep.wall_s = wall_hint_s > 0.0 ? wall_hint_s : (any ? (last - first) / 1e6 : 0.0);

  rep.device_busy_s = merge_union(dev) / 1e6;
  rep.host_wait_s = merge_union(wait) / 1e6;
  const double both_s = intersect_len(dev, wait) / 1e6;
  rep.overlapped_s = rep.device_busy_s - both_s;
  rep.overlap_fraction = rep.device_busy_s > 0.0 ? rep.overlapped_s / rep.device_busy_s : 0.0;
  rep.stream_occupancy = rep.wall_s > 0.0 ? rep.device_busy_s / rep.wall_s : 0.0;
  // Pool runs have several device workers; attribute occupancy per track so
  // a member idling behind a skewed shard map (or dead after a loss) is
  // visible. Sorted descending: track registration order is not stable
  // across live/replay aggregation, and the multiset is the metric.
  std::sort(per_dev_us.begin(), per_dev_us.end(), std::greater<double>());
  for (const double us : per_dev_us)
    rep.per_device_occupancy.push_back(rep.wall_s > 0.0 ? us / 1e6 / rep.wall_s : 0.0);
  // Ordinal-keyed attribution (live mode: workers self-report their pool
  // ordinal). std::map iteration gives ascending ordinals for free.
  for (auto& [o, iv] : ord) {
    const double us = merge_union(iv);
    rep.per_device_by_ordinal.emplace_back(o, rep.wall_s > 0.0 ? us / 1e6 / rep.wall_s : 0.0);
  }

  rep.iter_avg_s = rep.iterations > 0 ? rep.iter_avg_s / 1e6 / static_cast<double>(rep.iterations)
                                      : 0.0;
  const auto avg_of = [&merged](const char* cat, const char* name) {
    const auto it = merged.find({"host", cat, name});
    if (it == merged.end() || it->second.calls == 0) return 0.0;
    return it->second.wall_us / 1e6 / static_cast<double>(it->second.calls);
  };
  rep.iter_avg_panel_s = avg_of("hybrid", "panel");
  rep.iter_avg_update_s = avg_of("hybrid", "update");

  for (const auto& [key, acc] : merged) {
    ProfilePhase p;
    p.track = std::get<0>(key);
    p.cat = std::get<1>(key);
    p.name = std::get<2>(key);
    p.calls = acc.calls;
    p.wall_s = acc.wall_us / 1e6;
    p.self_s = acc.self_us / 1e6;
    p.flops = acc.flops;
    p.arg_sum = acc.arg_sum;
    p.gflops = p.self_s > 0.0 ? static_cast<double>(p.flops) / p.self_s / 1e9 : 0.0;
    p.roofline_frac = roofline > 0.0 ? p.gflops / roofline : 0.0;
    rep.phases.push_back(std::move(p));
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Live profiler: per-thread Agg behind an uncontended mutex (the owning
// thread locks on every span boundary, the stopping thread at window close)
// — the same discipline as the trace recorder's ThreadBuffers.

struct LiveState {
  std::mutex m;
  Agg agg;
};

class LiveProfiler {
 public:
  static LiveProfiler& instance() {
    static LiveProfiler p;
    return p;
  }

  void start() {
    std::lock_guard lock(registry_m_);
    profile_detail::g_active.store(false, std::memory_order_relaxed);
    for (auto& s : states_) {
      std::lock_guard sl(s->m);
      s->agg = Agg{};
    }
    if (const char* env = std::getenv("FTH_ROOFLINE_GFLOPS");
        env != nullptr && env[0] != '\0') {
      const double v = std::strtod(env, nullptr);
      if (v > 0.0) roofline_.store(v, std::memory_order_relaxed);
    }
    prev_flops_enabled_ = flops::enabled();
    flops::enable(true);
    flops0_ = flops::count();
    start_ts_ = detail::now_us();
    running_ = true;
    profile_detail::g_active.store(true, std::memory_order_relaxed);
  }

  ProfileReport stop() {
    std::lock_guard lock(registry_m_);
    if (!running_) return ProfileReport{};
    profile_detail::g_active.store(false, std::memory_order_relaxed);
    running_ = false;
    const double stop_ts = detail::now_us();
    const std::uint64_t total = flops::count() - flops0_;
    flops::enable(prev_flops_enabled_);
    std::vector<std::unique_lock<std::mutex>> locks;
    std::vector<Agg*> aggs;
    locks.reserve(states_.size());
    for (auto& s : states_) {
      locks.emplace_back(s->m);
      s->agg.close_open(stop_ts);
      aggs.push_back(&s->agg);
    }
    return build_report(aggs, roofline_.load(std::memory_order_relaxed),
                        (stop_ts - start_ts_) / 1e6, total);
  }

  void on_event(char ph, const char* cat, const char* name, double ts, double arg) noexcept {
    LiveState& s = local();
    std::lock_guard lock(s.m);
    // Restamp on every event: start() resets the Agg, so a sticky stamp
    // taken once at thread start would not survive a new window.
    s.agg.device_ordinal = profile_detail::t_device_ordinal;
    const std::uint64_t fl = flops::thread_count();
    if (ph == 'B') s.agg.begin(cat, name, ts, arg, fl);
    else if (ph == 'E') s.agg.end(ts, fl);
  }

  void set_roofline(double v) noexcept { roofline_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double roofline() const noexcept {
    return roofline_.load(std::memory_order_relaxed);
  }

 private:
  LiveState& local() {
    thread_local std::shared_ptr<LiveState> st = [this] {
      auto s = std::make_shared<LiveState>();
      std::lock_guard lock(registry_m_);
      states_.push_back(s);
      return s;
    }();
    return *st;
  }

  std::mutex registry_m_;
  std::vector<std::shared_ptr<LiveState>> states_;
  std::atomic<double> roofline_{0.0};
  double start_ts_ = 0.0;
  std::uint64_t flops0_ = 0;
  bool prev_flops_enabled_ = false;
  bool running_ = false;
};

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof hex, "\\u%04x", c);
      out += hex;
    } else {
      out.push_back(c);
    }
  }
}

void append_num(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

}  // namespace

bool profile_enabled() noexcept { return profile_detail::active(); }

void profile_start() { LiveProfiler::instance().start(); }

ProfileReport profile_stop() { return LiveProfiler::instance().stop(); }

void set_profile_roofline(double gflops) noexcept {
  LiveProfiler::instance().set_roofline(gflops);
}

double profile_roofline() noexcept { return LiveProfiler::instance().roofline(); }

namespace profile_detail {
void on_event(char ph, const char* cat, const char* name, double ts_us,
              double arg_value) noexcept {
  LiveProfiler::instance().on_event(ph, cat, name, ts_us, arg_value);
}
}  // namespace profile_detail

// --- ProfileBuilder (offline replay) ----------------------------------------

struct ProfileBuilder::Impl {
  std::map<std::uint64_t, Agg> threads;
};

ProfileBuilder::ProfileBuilder() : impl_(std::make_unique<Impl>()) {}
ProfileBuilder::~ProfileBuilder() = default;

void ProfileBuilder::begin(std::uint64_t tid, const char* cat, const char* name, double ts_us,
                           double arg_value, std::uint64_t flops_now) {
  impl_->threads[tid].begin(cat, name, ts_us, arg_value, flops_now);
}

void ProfileBuilder::end(std::uint64_t tid, double ts_us, std::uint64_t flops_now) {
  impl_->threads[tid].end(ts_us, flops_now);
}

ProfileReport ProfileBuilder::finish(double roofline_gflops, double wall_hint_s) {
  std::vector<Agg*> aggs;
  std::uint64_t total = 0;
  for (auto& [tid, agg] : impl_->threads) {
    agg.close_open(agg.last_ts);  // a truncated trace may end mid-span
    aggs.push_back(&agg);
    for (const auto& [k, acc] : agg.phases) total += acc.flops;
  }
  return build_report(aggs, roofline_gflops, wall_hint_s, total);
}

// --- Report rendering --------------------------------------------------------

std::string ProfileReport::to_json() const {
  std::string out;
  out.reserve(512 + phases.size() * 160);
  out += "{\"wall_s\":";
  append_num(out, wall_s);
  out += ",\"roofline_gflops\":";
  append_num(out, roofline_gflops);
  out += ",\"total_flops\":" + std::to_string(total_flops);
  out += ",\"overlap\":{\"device_busy_s\":";
  append_num(out, device_busy_s);
  out += ",\"host_wait_s\":";
  append_num(out, host_wait_s);
  out += ",\"overlapped_s\":";
  append_num(out, overlapped_s);
  out += ",\"overlap_fraction\":";
  append_num(out, overlap_fraction);
  // Per-device array (one entry per device track); a window with no device
  // work emits the aggregate as a single entry so the path always exists.
  // Legacy baselines hold the pre-pool scalar spelling; bench_compare maps
  // scalar <-> entry 0 so a D=1 report gates cleanly against either.
  out += ",\"stream_occupancy\":[";
  if (per_device_occupancy.empty()) {
    append_num(out, stream_occupancy);
  } else {
    bool first_occ = true;
    for (const double occ : per_device_occupancy) {
      if (!first_occ) out += ',';
      first_occ = false;
      append_num(out, occ);
    }
  }
  out += "]";
  // Ordinal-keyed spelling (live runs only). A new key, so baselines that
  // predate it gate untouched; omitted entirely when no worker reported an
  // ordinal (replay, host-only windows).
  if (!per_device_by_ordinal.empty()) {
    out += ",\"stream_occupancy_by_device\":{";
    bool first_ord = true;
    for (const auto& [o, occ] : per_device_by_ordinal) {
      if (!first_ord) out += ',';
      first_ord = false;
      out += "\"" + std::to_string(o) + "\":";
      append_num(out, occ);
    }
    out += "}";
  }
  out += "},\"iterations\":{\"count\":" + std::to_string(iterations);
  out += ",\"avg_panel_s\":";
  append_num(out, iter_avg_panel_s);
  out += ",\"avg_update_s\":";
  append_num(out, iter_avg_update_s);
  out += ",\"avg_s\":";
  append_num(out, iter_avg_s);
  out += ",\"max_s\":";
  append_num(out, iter_max_s);
  out += "},\"phases\":[";
  bool first = true;
  for (const ProfilePhase& p : phases) {
    if (!first) out += ',';
    first = false;
    out += "{\"track\":\"";
    append_escaped(out, p.track);
    out += "\",\"cat\":\"";
    append_escaped(out, p.cat);
    out += "\",\"name\":\"";
    append_escaped(out, p.name);
    out += "\",\"calls\":" + std::to_string(p.calls);
    out += ",\"wall_s\":";
    append_num(out, p.wall_s);
    out += ",\"self_s\":";
    append_num(out, p.self_s);
    out += ",\"flops\":" + std::to_string(p.flops);
    out += ",\"gflops\":";
    append_num(out, p.gflops);
    // Omitted (not 0) when no roofline was configured: a meaningless zero
    // would read as a catastrophic regression to bench_compare.
    if (roofline_gflops > 0.0) {
      out += ",\"roofline_frac\":";
      append_num(out, p.roofline_frac);
    }
    out += ",\"arg_sum\":";
    append_num(out, p.arg_sum);
    out += "}";
  }
  out += "]}";
  return out;
}

void ProfileReport::print_table(std::FILE* out) const {
  std::fprintf(out, "\n-- profile: wall %.4f s", wall_s);
  if (roofline_gflops > 0.0) std::fprintf(out, ", roofline %.2f GF/s", roofline_gflops);
  if (total_flops > 0) std::fprintf(out, ", %.3g GFLOP total", static_cast<double>(total_flops) / 1e9);
  std::fprintf(out, " --\n");
  std::fprintf(out,
               "overlap: device busy %.4f s (occupancy %.1f%%), host wait %.4f s, "
               "overlapped %.4f s (%.1f%% of device busy)\n",
               device_busy_s, 100.0 * stream_occupancy, host_wait_s, overlapped_s,
               100.0 * overlap_fraction);
  if (per_device_by_ordinal.size() > 1) {
    std::fprintf(out, "per-device occupancy:");
    for (const auto& [o, occ] : per_device_by_ordinal)
      std::fprintf(out, " dev%d %.1f%%", o, 100.0 * occ);
    std::fprintf(out, "\n");
  } else if (per_device_occupancy.size() > 1) {
    std::fprintf(out, "per-device occupancy:");
    for (const double occ : per_device_occupancy) std::fprintf(out, " %.1f%%", 100.0 * occ);
    std::fprintf(out, "\n");
  }
  if (iterations > 0) {
    std::fprintf(out,
                 "iterations: %llu, avg panel %.3f ms, avg update %.3f ms, "
                 "critical path avg %.3f ms / max %.3f ms\n",
                 static_cast<unsigned long long>(iterations), 1e3 * iter_avg_panel_s,
                 1e3 * iter_avg_update_s, 1e3 * iter_avg_s, 1e3 * iter_max_s);
  }
  std::vector<const ProfilePhase*> by_self;
  by_self.reserve(phases.size());
  for (const ProfilePhase& p : phases) by_self.push_back(&p);
  std::sort(by_self.begin(), by_self.end(), [](const ProfilePhase* a, const ProfilePhase* b) {
    return a->self_s > b->self_s;
  });
  std::fprintf(out, "%-7s %-9s %-18s %8s %11s %11s %9s %7s\n", "track", "cat", "name", "calls",
               "wall (s)", "self (s)", "GF/s", "%roof");
  for (const ProfilePhase* p : by_self) {
    char roof[16] = "-";
    if (roofline_gflops > 0.0 && p->flops > 0)
      std::snprintf(roof, sizeof roof, "%.1f", 100.0 * p->roofline_frac);
    char gf[16] = "-";
    if (p->flops > 0) std::snprintf(gf, sizeof gf, "%.2f", p->gflops);
    std::fprintf(out, "%-7s %-9s %-18s %8llu %11.4f %11.4f %9s %7s\n", p->track.c_str(),
                 p->cat.c_str(), p->name.c_str(), static_cast<unsigned long long>(p->calls),
                 p->wall_s, p->self_s, gf, roof);
  }
}

}  // namespace fth::obs

// fth::obs profiling — in-process performance attribution built on the
// trace hooks.
//
// While a profile window is open, every span the tracing layer sees (the
// same TraceSpan call sites that feed the Chrome trace) is aggregated live
// into per-phase totals instead of (or in addition to) being buffered:
// per (cat, name, track) wall/self time and call counts, FLOPs attributed
// to the phase that executed them, host-panel vs device-stream overlap,
// stream occupancy, and the per-iteration critical path. The result is a
// ProfileReport — embedded as the `profile` section of every bench_*.json
// and printable as a table via the benches' `--profile` flag. DESIGN.md §8
// defines the overlap and critical-path quantities precisely; EXPERIMENTS.md
// documents the emitted JSON schema.
//
// The same aggregation core is exposed as ProfileBuilder so tools/fth_prof
// can replay an already-written trace file into an identical report.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace fth::obs {

/// One aggregated span kind. `track` is "host" or "device" — a thread is a
/// device track iff it executed stream tasks (the software-device worker).
struct ProfilePhase {
  std::string cat;
  std::string name;
  std::string track;
  std::uint64_t calls = 0;
  double wall_s = 0.0;  ///< inclusive time (sum over calls)
  double self_s = 0.0;  ///< wall minus time spent in nested spans
  std::uint64_t flops = 0;  ///< FLOPs executed while this span was innermost
  double arg_sum = 0.0;     ///< sum of the spans' numeric argument (bytes for h2d/d2h)
  double gflops = 0.0;        ///< flops / self_s / 1e9
  double roofline_frac = 0.0; ///< gflops / roofline (0 when no roofline given)
};

/// Aggregated result of one profile window (or one replayed trace).
struct ProfileReport {
  double wall_s = 0.0;            ///< window length
  double roofline_gflops = 0.0;   ///< dgemm roofline used as denominator (0 = unset)
  std::uint64_t total_flops = 0;  ///< all FLOPs in the window (live mode only)

  // Host/device overlap (DESIGN.md §8): device_busy is the union of stream
  // task spans on device tracks; host_wait the union of synchronize +
  // event_wait spans on host tracks; overlapped the part of device_busy
  // during which the host was NOT waiting.
  double device_busy_s = 0.0;
  double host_wait_s = 0.0;
  double overlapped_s = 0.0;
  double overlap_fraction = 0.0;   ///< overlapped / device_busy (0 when no device work)
  double stream_occupancy = 0.0;   ///< device_busy / wall (all device tracks unioned)
  /// Per-device-track occupancy (busy-union / wall, one entry per device
  /// worker thread, sorted descending — a pool run gets one entry per
  /// member). JSON emits these as the `stream_occupancy` array; a legacy
  /// scalar in an old baseline is the D=1 form of the same metric and
  /// bench_compare matches the two spellings against each other.
  std::vector<double> per_device_occupancy;
  /// Ordinal-keyed attribution of the same quantity: (pool ordinal,
  /// busy-union / wall), sorted by ordinal. Live mode only — worker threads
  /// self-report their ordinal (profile_detail::set_device_ordinal); a
  /// replayed trace has no ordinal channel, so the replay report leaves
  /// this empty. JSON emits it as the `stream_occupancy_by_device` object
  /// (a new key — the legacy `stream_occupancy` array and its scalar/
  /// entry-0 baseline carve-out are untouched).
  std::vector<std::pair<int, double>> per_device_by_ordinal;

  // Per-iteration critical path: panel begin → matching update end on the
  // host track (one pair per blocked iteration of a driver).
  std::uint64_t iterations = 0;
  double iter_avg_panel_s = 0.0;
  double iter_avg_update_s = 0.0;
  double iter_avg_s = 0.0;  ///< avg(update end − panel begin)
  double iter_max_s = 0.0;

  /// Sorted by (track, cat, name) for deterministic output.
  std::vector<ProfilePhase> phases;

  /// Compact JSON object (the `profile` section schema in EXPERIMENTS.md).
  [[nodiscard]] std::string to_json() const;
  /// Human-readable attribution table (phases sorted by self time).
  void print_table(std::FILE* out) const;
};

/// True between profile_start() and profile_stop().
[[nodiscard]] bool profile_enabled() noexcept;

/// Open a profile window: spans aggregate from this point on. Also enables
/// FLOP counting (fth::flops) for the window so per-phase GF/s can be
/// attributed. Re-opening an active window resets it.
void profile_start();

/// Close the window and return the aggregated report (a default-constructed
/// report when no window is open).
ProfileReport profile_stop();

/// Sticky roofline denominator (measured dgemm GF/s) used for each phase's
/// roofline_frac. Also read from `FTH_ROOFLINE_GFLOPS` at profile_start();
/// run_benches.sh measures it once (tools/fth_roofline) so every bench uses
/// the same denominator.
void set_profile_roofline(double gflops) noexcept;
[[nodiscard]] double profile_roofline() noexcept;

/// Offline aggregation core, for replaying a parsed trace file
/// (tools/fth_prof). Feed events in file order; per-tid nesting must be
/// well-formed (unmatched ends are ignored, unmatched begins dropped).
/// Event name/cat pointers must stay valid until finish() — use
/// obs::intern_name() when feeding parsed strings.
class ProfileBuilder {
 public:
  ProfileBuilder();
  ~ProfileBuilder();
  ProfileBuilder(const ProfileBuilder&) = delete;
  ProfileBuilder& operator=(const ProfileBuilder&) = delete;

  void begin(std::uint64_t tid, const char* cat, const char* name, double ts_us,
             double arg_value = 0.0, std::uint64_t flops_now = 0);
  void end(std::uint64_t tid, double ts_us, std::uint64_t flops_now = 0);
  /// Build the report. `wall_hint_s` overrides the window length (live mode
  /// passes stop−start); ≤0 derives it from the event timestamp range.
  [[nodiscard]] ProfileReport finish(double roofline_gflops, double wall_hint_s = 0.0);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

namespace profile_detail {
/// Hot-path gate read by the trace recorder on every event.
extern std::atomic<bool> g_active;
[[nodiscard]] inline bool active() noexcept {
  return g_active.load(std::memory_order_relaxed);
}
/// Live feed from obs/trace.cpp (already timestamped, calling thread's event).
void on_event(char ph, const char* cat, const char* name, double ts_us,
              double arg_value) noexcept;
/// Device workers self-report their pool ordinal (thread-local; the stream
/// worker loop calls this once at thread start) so live reports can key
/// occupancy by ordinal instead of only by anonymous track.
void set_device_ordinal(int ordinal) noexcept;
}  // namespace profile_detail

}  // namespace fth::obs

// fth::obs metrics — named monotonic counters and value histograms with a
// JSON snapshot writer.
//
// Unlike tracing (timeline reconstruction, off by default), metrics are
// always on: an fth::obs::Counter is one relaxed atomic add, cheap enough
// to leave in every path, and a Histogram is a short uncontended critical
// section on events that are rare by construction (detections, recoveries,
// per-iteration drift samples). The registry snapshot is what the benches
// embed in their `bench_*.json` reports and what the fault-injection tests
// cross-check against FtReport.
//
// Names are hierarchical by convention ("ft.detections", "device.h2d_bytes");
// EXPERIMENTS.md documents the schema of the emitted JSON.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

namespace fth::obs {

/// Monotonic event counter (thread-safe).
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Value histogram over decades: bucket k counts samples in
/// [10^(k+kMinExp), 10^(k+1+kMinExp)), clamped at both ends, plus exact
/// count/sum/min/max. Decade buckets suit the quantities recorded here
/// (checksum drift spans ~15 orders of magnitude; byte counts several).
class Histogram {
 public:
  static constexpr int kMinExp = -18;  ///< smallest resolved decade, 1e-18
  static constexpr int kMaxExp = 12;   ///< largest resolved decade, 1e12
  /// underflow + one bucket per decade kMinExp..kMaxExp (inclusive) + overflow
  static constexpr int kBuckets = kMaxExp - kMinExp + 3;

  void observe(double v) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< defined when count > 0
    double max = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};
  };
  [[nodiscard]] Snapshot snapshot() const;
  void reset();

  /// Index of the bucket a value falls into (exposed for tests).
  [[nodiscard]] static int bucket_of(double v) noexcept;

 private:
  mutable std::mutex m_;
  Snapshot data_;
};

/// Process-global name → instrument registry. Instruments are created on
/// first use and live forever; the returned references stay valid, so hot
/// paths should look up once and keep the pointer.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zero every registered instrument (for tests and per-bench scoping).
  void reset();

  /// Plain-value snapshot of every registered counter. Counters are
  /// monotonic and process-global, so attribution to one unit of work
  /// (a campaign trial, a bench size) is done by snapshot-delta:
  /// take counter_values() before and after, then counter_delta().
  using CounterValues = std::map<std::string, std::uint64_t>;
  [[nodiscard]] CounterValues counter_values() const;

  /// Per-name `now − base`; names absent from `base` count from zero, and
  /// names whose delta is zero are omitted (so a trial's map holds exactly
  /// the counters it moved).
  [[nodiscard]] static CounterValues counter_delta(const CounterValues& now,
                                                   const CounterValues& base);

  /// Snapshot as a JSON object: {"counters":{name:value,...},
  /// "histograms":{name:{count,sum,min,max,buckets:[...]},...}}.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex m_;
  // std::map: stable iteration order makes the JSON output deterministic.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

/// Shorthand for Registry::global().counter(name) / .histogram(name).
Counter& counter_metric(const std::string& name);
Histogram& histogram_metric(const std::string& name);

}  // namespace fth::obs

#include "obs/journal.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/trace.hpp"

namespace fth::obs {

namespace journal_detail {
std::atomic<bool> g_on{false};
}  // namespace journal_detail

namespace {

std::atomic<std::uint64_t> g_run{0};
std::atomic<std::uint64_t> g_next_run{0};

/// Ring of records behind one mutex. Journal events are rare by
/// construction (detections, losses, state changes — not per-element work),
/// so a single short critical section is cheaper than per-thread buffers
/// plus a merge, and keeps snapshot() trivially ordered.
class JournalRing {
 public:
  static JournalRing& instance() {
    static JournalRing r;
    return r;
  }

  void start(std::size_t capacity) {
    std::lock_guard lock(m_);
    ring_.assign(std::max<std::size_t>(capacity, 64), JournalEvent{});
    next_ = 0;
    wrapped_ = false;
    journal_detail::g_on.store(true, std::memory_order_relaxed);
  }

  void stop() {
    journal_detail::g_on.store(false, std::memory_order_relaxed);
    std::lock_guard lock(m_);
    ring_.clear();
    ring_.shrink_to_fit();
    next_ = 0;
    wrapped_ = false;
  }

  void log(JournalEvent&& e) noexcept {
    std::lock_guard lock(m_);
    if (ring_.empty()) return;  // raced journal_stop(); drop
    ring_[next_] = std::move(e);
    if (++next_ == ring_.size()) {
      next_ = 0;
      wrapped_ = true;
    }
  }

  [[nodiscard]] std::vector<JournalEvent> snapshot() const {
    std::lock_guard lock(m_);
    std::vector<JournalEvent> out;
    out.reserve(wrapped_ ? ring_.size() : next_);
    if (wrapped_)
      out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(next_));
    return out;
  }

 private:
  mutable std::mutex m_;
  std::vector<JournalEvent> ring_;
  std::size_t next_ = 0;
  bool wrapped_ = false;
};

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof hex, "\\u%04x", c);
      out += hex;
    } else {
      out.push_back(c);
    }
  }
}

void append_num(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

// Honour FTH_JOURNAL for any binary linking the library (same pattern as
// the trace recorder's env hook).
[[maybe_unused]] const bool g_env_init = [] {
  journal_init_from_env();
  return true;
}();

}  // namespace

const char* to_string(JournalSeverity s) noexcept {
  switch (s) {
    case JournalSeverity::Info: return "info";
    case JournalSeverity::Warn: return "warn";
    case JournalSeverity::Error: return "error";
  }
  return "?";
}

void journal_start(std::size_t capacity) { JournalRing::instance().start(capacity); }

void journal_stop() { JournalRing::instance().stop(); }

void journal_log(JournalSeverity sev, const char* component, const char* event, int device,
                 double value, std::int64_t boundary) noexcept {
  if (!journal_enabled()) return;
  journal_log(sev, component, event, device, value, boundary, std::string());
}

void journal_log(JournalSeverity sev, const char* component, const char* event, int device,
                 double value, std::int64_t boundary, std::string detail) noexcept {
  if (!journal_enabled()) return;
  JournalEvent e;
  e.t_us = detail::now_us();
  e.run_id = g_run.load(std::memory_order_relaxed);
  e.value = value;
  e.boundary = boundary;
  e.component = component;
  e.event = event;
  e.device = device;
  e.severity = sev;
  e.detail = std::move(detail);
  JournalRing::instance().log(std::move(e));
}

std::uint64_t journal_new_run() noexcept {
  const std::uint64_t id = g_next_run.fetch_add(1, std::memory_order_relaxed) + 1;
  g_run.store(id, std::memory_order_relaxed);
  return id;
}

void journal_set_run(std::uint64_t id) noexcept {
  g_run.store(id, std::memory_order_relaxed);
}

std::uint64_t journal_run() noexcept { return g_run.load(std::memory_order_relaxed); }

std::vector<JournalEvent> journal_snapshot() { return JournalRing::instance().snapshot(); }

std::vector<JournalEvent> journal_snapshot(std::uint64_t run_id) {
  std::vector<JournalEvent> all = JournalRing::instance().snapshot();
  std::vector<JournalEvent> out;
  out.reserve(all.size());
  for (auto& e : all)
    if (e.run_id == run_id) out.push_back(std::move(e));
  return out;
}

std::string journal_event_json(const JournalEvent& e) {
  std::string out;
  out.reserve(160 + e.detail.size());
  out += "{\"t_us\":";
  append_num(out, e.t_us);
  out += ",\"severity\":\"";
  out += to_string(e.severity);
  out += "\",\"run\":" + std::to_string(e.run_id);
  out += ",\"component\":\"";
  append_escaped(out, e.component);
  out += "\",\"event\":\"";
  append_escaped(out, e.event);
  out += "\",\"device\":" + std::to_string(e.device);
  out += ",\"boundary\":" + std::to_string(e.boundary);
  out += ",\"value\":";
  append_num(out, e.value);
  if (!e.detail.empty()) {
    out += ",\"detail\":\"";
    append_escaped(out, e.detail.c_str());
    out += "\"";
  }
  out += "}";
  return out;
}

std::string journal_to_jsonl(const std::vector<JournalEvent>& events) {
  std::string out;
  bool first = true;
  for (const JournalEvent& e : events) {
    if (!first) out += '\n';
    first = false;
    out += journal_event_json(e);
  }
  return out;
}

bool journal_write(const std::string& path) {
  if (!journal_enabled()) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fth::obs: cannot open journal output '%s'\n", path.c_str());
    return false;
  }
  const std::string body = journal_to_jsonl(journal_snapshot());
  if (!body.empty()) std::fprintf(f, "%s\n", body.c_str());
  std::fclose(f);
  return true;
}

void journal_init_from_env() {
  static bool armed = false;
  const char* path = std::getenv("FTH_JOURNAL");
  if (armed || path == nullptr || path[0] == '\0') return;
  armed = true;
  journal_start();
  static std::string dump_path;
  dump_path = path;
  std::atexit([] { journal_write(dump_path); });
}

}  // namespace fth::obs
